// Scenario: latency-critical serving through a demand surge.
//
// A cloud provider serves three models under per-task SLOs. A viral event
// (the paper cites the ChatGPT "Ghibli art" surge) floods the ResNet50
// endpoint: its SLO tightens sharply while the other tasks can tolerate
// more latency, and the facility raises the server's power budget for the
// duration of the burst. CapGPU handles both knobs at once — per-GPU
// frequency floors from the SLOs, total power tracked to the changing cap.
#include <cstdio>

#include "core/capgpu_controller.hpp"
#include "core/rig.hpp"

using namespace capgpu;

int main() {
  core::ServerRig rig;
  const control::IdentifiedModel identified = rig.identify();

  core::CapGpuController controller(core::CapGpuConfig{}, rig.device_ranges(),
                                    identified.model, 900_W,
                                    rig.latency_models());

  core::RunOptions options;
  options.periods = 90;
  options.set_point = 900_W;
  // Normal operation: relaxed SLOs.
  options.initial_slos = {{1, 0.8}, {2, 1.2}, {3, 1.0}};
  // Period 30: the surge hits. ResNet's SLO tightens 2x; the budget rises
  // to keep the rest of the fleet responsive.
  options.slo_changes.emplace_back(30, 1, 0.42);
  options.slo_changes.emplace_back(30, 2, 1.5);
  options.slo_changes.emplace_back(30, 3, 1.2);
  options.set_point_changes[30] = 1000_W;
  // Period 60: surge over; everything returns to normal.
  options.slo_changes.emplace_back(60, 1, 0.8);
  options.slo_changes.emplace_back(60, 2, 1.2);
  options.slo_changes.emplace_back(60, 3, 1.0);
  options.set_point_changes[60] = 900_W;

  const core::RunResult result = rig.run(controller, options);

  std::printf("period |  power W |  cap W | resnet lat/SLO     | resnet MHz\n");
  std::printf("-------+----------+--------+--------------------+-----------\n");
  for (std::size_t k = 0; k < result.periods; k += 3) {
    const double lat = result.gpu_latency[0].value_at(k);
    const double slo = result.gpu_slo[0].value_at(k);
    std::printf("%6zu | %8.1f | %6.0f | %6.3f / %5.3f %s | %9.1f\n", k,
                result.power.value_at(k), result.set_point.value_at(k), lat,
                slo, lat > slo ? "MISS" : " ok ",
                result.device_freqs[1].value_at(k));
  }

  std::printf("\nsurge window (periods 30-60):\n");
  telemetry::RunningStats surge_power;
  for (std::size_t k = 35; k < 60; ++k) {
    surge_power.add(result.power.value_at(k));
  }
  std::printf("  power tracked to the raised cap: %.1f W (target 1000)\n",
              surge_power.mean());
  std::printf("  ResNet50 SLO miss rate over the whole run: %.1f%%\n",
              100.0 * result.slo_misses[0].ratio());
  return 0;
}
