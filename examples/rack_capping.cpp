// Scenario: rack-level power oversubscription across three GPU servers.
//
// Data centers cap whole racks, not just servers (the paper's motivation;
// cf. Meta's Dynamo). This example builds three CapGPU-controlled servers
// with different model mixes and puts a rack::RackCoordinator on top:
// every five control periods it re-divides the 2700 W rack budget using
// the demand-proportional policy, so servers whose accelerators are
// starving for watts receive more of the shared budget.
//
// It also demonstrates the lower-level API: instead of ServerRig::run(),
// the example drives each server's ControlLoop and discrete-event engine
// directly and interleaves them in lockstep.
#include <cstdio>
#include <memory>
#include <vector>

#include "core/capgpu_controller.hpp"
#include "core/control_loop.hpp"
#include "core/rig.hpp"
#include "rack/coordinator.hpp"

using namespace capgpu;

namespace {

struct Server {
  std::string name;
  std::unique_ptr<core::ServerRig> rig;
  std::unique_ptr<core::CapGpuController> controller;
  std::unique_ptr<core::ControlLoop> loop;
};

double gpu_throughput_deficit(core::ServerRig& rig) {
  const auto normalized = rig.normalized_throughputs();
  double deficit = 0.0;
  for (std::size_t j = 1; j < normalized.size(); ++j) {
    deficit += 1.0 - normalized[j];
  }
  return deficit / static_cast<double>(normalized.size() - 1);
}

}  // namespace

int main() {
  constexpr double kRackBudget = 2700.0;
  constexpr std::size_t kPeriods = 90;
  constexpr double kPeriodSeconds = 4.0;

  // Three servers with different inference mixes.
  std::vector<std::vector<workload::ModelSpec>> mixes{
      {workload::resnet50_v100(), workload::resnet50_v100(),
       workload::resnet50_v100()},
      workload::v100_testbed_models(),
      {workload::swin_t_v100(), workload::swin_t_v100(),
       workload::swin_t_v100()},
  };

  std::vector<Server> servers;
  rack::RackCoordinator coordinator(Watts{kRackBudget},
                                    rack::RackPolicy::kDemandProportional);

  for (std::size_t s = 0; s < mixes.size(); ++s) {
    Server srv;
    srv.name = "server-" + std::to_string(s);
    core::RigConfig cfg;
    cfg.models = mixes[s];
    cfg.seed = 100 + s;
    srv.rig = std::make_unique<core::ServerRig>(cfg);
    const control::IdentifiedModel identified = srv.rig->identify();
    srv.controller = std::make_unique<core::CapGpuController>(
        core::CapGpuConfig{}, srv.rig->device_ranges(), identified.model,
        Watts{kRackBudget / 3.0}, srv.rig->latency_models());
    auto* rig_ptr = srv.rig.get();
    srv.loop = std::make_unique<core::ControlLoop>(
        srv.rig->engine(), srv.rig->hal(), srv.rig->rapl(), *srv.controller,
        core::ControlLoopConfig{},
        [rig_ptr] { return rig_ptr->normalized_throughputs(); });
    srv.loop->start();

    rack::ServerEndpoint endpoint;
    endpoint.name = srv.name;
    auto* ctl_ptr = srv.controller.get();
    auto* loop_ptr = srv.loop.get();
    endpoint.set_budget = [ctl_ptr](Watts w) { ctl_ptr->set_set_point(w); };
    endpoint.measured_power = [loop_ptr] {
      return loop_ptr->power_trace().empty()
                 ? 0.0
                 : loop_ptr->power_trace().values().back();
    };
    endpoint.demand = [rig_ptr] { return rig_ptr->gpu_demand(); };
    endpoint.bounds = {700.0, 1200.0};
    coordinator.add_server(std::move(endpoint));

    servers.push_back(std::move(srv));
  }

  std::printf("rack budget %.0f W across %zu servers; demand-proportional "
              "rebalance every 5 periods\n\n",
              kRackBudget, servers.size());
  std::printf("period | rack W  |");
  for (const auto& s : servers) std::printf(" %s W (budget) |", s.name.c_str());
  std::printf("\n");

  telemetry::TimeSeries rack_power("rack", "W");
  for (std::size_t k = 1; k <= kPeriods; ++k) {
    for (auto& s : servers) {
      s.rig->engine().run_until(s.rig->engine().now() + kPeriodSeconds);
    }
    if (k % 5 == 0) coordinator.rebalance();

    rack_power.add(static_cast<double>(k), coordinator.total_power());
    if (k % 10 == 0) {
      std::printf("%6zu | %7.1f |", k, rack_power.values().back());
      for (std::size_t i = 0; i < servers.size(); ++i) {
        const double budget =
            coordinator.budgets().empty() ? kRackBudget / 3.0
                                          : coordinator.budgets()[i];
        std::printf("   %7.1f (%5.0f)  |",
                    servers[i].loop->power_trace().values().back(), budget);
      }
      std::printf("\n");
    }
  }

  const auto steady = rack_power.stats_from(kPeriods / 2);
  std::printf("\nsteady rack power: %.1f W of a %.0f W budget (std %.1f)\n",
              steady.mean(), kRackBudget, steady.stddev());
  std::printf("budgets ended unequal (demand-driven):");
  for (const double b : coordinator.budgets()) std::printf(" %.0f", b);
  std::printf(" W\n");
  for (auto& s : servers) s.loop->stop();
  return 0;
}
