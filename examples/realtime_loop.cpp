// The paper's Sec 5 controller architecture with real threads.
//
// On the testbed the controller "runs as a multi-threaded process. The
// main thread uses a timer to periodically invoke the control algorithm,
// while a child thread ... collect[s] CPU and GPU utilization data." This
// example reproduces that runtime shape against the simulator:
//
//   - a plant thread owns the discrete-event engine and advances simulated
//     time in lockstep with the wall clock (time-warped 100x so 400
//     simulated seconds take ~4 real seconds),
//   - a telemetry thread samples utilization/throughput into shared state
//     on its own cadence (the paper's child thread),
//   - the main thread wakes on a periodic timer, reads the latest shared
//     telemetry, runs CapGPU's control algorithm, and posts frequency
//     commands back to the plant thread.
//
// Everything crossing threads goes through one mutex; the DES itself stays
// single-threaded (only the plant thread touches it), which is the same
// discipline a real deployment needs around NVML/sysfs handles.
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "core/capgpu_controller.hpp"
#include "core/rig.hpp"

using namespace capgpu;
using namespace std::chrono_literals;

namespace {

constexpr double kTimeWarp = 100.0;            // sim seconds per wall second
constexpr double kControlPeriodSim = 4.0;      // the paper's 4 s
constexpr double kTelemetryPeriodSim = 1.0;    // child thread cadence
constexpr std::size_t kPeriods = 100;

struct Shared {
  std::mutex mutex;
  // Written by the telemetry thread.
  double avg_power = 0.0;
  std::vector<double> normalized_throughput;
  std::vector<double> utilization;
  std::vector<double> device_power;
  bool telemetry_valid = false;
  // Written by the main (control) thread.
  std::vector<double> pending_commands;
  bool commands_pending = false;
  // Lifecycle.
  std::atomic<bool> stop{false};
};

}  // namespace

int main() {
  core::ServerRig rig;
  const auto identified = rig.identify();
  core::CapGpuController controller(core::CapGpuConfig{},
                                    rig.device_ranges(), identified.model,
                                    900_W, rig.latency_models());

  Shared shared;
  shared.pending_commands.resize(rig.hal().device_count());

  // Plant thread: advances the engine in wall-clock lockstep and applies
  // any posted commands (with delta-sigma resolution per device).
  std::thread plant([&] {
    std::vector<control::DeltaSigmaModulator> modulators(
        rig.hal().device_count());
    const auto start = std::chrono::steady_clock::now();
    double sim_time = rig.engine().now();
    const double sim_start = sim_time;
    while (!shared.stop.load()) {
      std::this_thread::sleep_for(5ms);
      const double wall =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      const double target = sim_start + wall * kTimeWarp;
      {
        std::lock_guard lock(shared.mutex);
        if (shared.commands_pending) {
          for (std::size_t j = 0; j < shared.pending_commands.size(); ++j) {
            const DeviceId id{static_cast<std::uint32_t>(j)};
            const auto& table = rig.hal().device_freqs(id);
            rig.hal().set_device_frequency(
                id, modulators[j].step(
                        Megahertz{shared.pending_commands[j]}, table));
          }
          shared.commands_pending = false;
        }
        if (target > sim_time) {
          rig.engine().run_until(target);
          sim_time = target;
        }
      }
    }
  });

  // Telemetry thread (the paper's child thread): refreshes shared state.
  std::thread telemetry([&] {
    while (!shared.stop.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(
          static_cast<int>(1000.0 * kTelemetryPeriodSim / kTimeWarp)));
      std::lock_guard lock(shared.mutex);
      try {
        shared.avg_power =
            rig.hal().power_meter().average(Seconds{kControlPeriodSim}).value;
      } catch (const HalError&) {
        continue;  // no samples yet
      }
      shared.normalized_throughput = rig.normalized_throughputs();
      const std::size_t n = rig.hal().device_count();
      shared.utilization.resize(n);
      shared.device_power.resize(n);
      for (std::size_t j = 0; j < n; ++j) {
        shared.utilization[j] =
            rig.hal().device_utilization(DeviceId{static_cast<std::uint32_t>(j)});
      }
      shared.device_power[0] = rig.rapl().package_power().value;
      for (std::size_t j = 1; j < n; ++j) {
        shared.device_power[j] = rig.hal().gpu(j - 1).power_usage().value;
      }
      shared.telemetry_valid = true;
    }
  });

  // Main thread: the periodic control timer.
  std::vector<double> commands;
  for (std::size_t j = 0; j < rig.hal().device_count(); ++j) {
    commands.push_back(
        rig.hal().device_freqs(DeviceId{static_cast<std::uint32_t>(j)})
            .min().value);
  }
  telemetry::RunningStats steady;
  const auto wall_period = std::chrono::milliseconds(
      static_cast<int>(1000.0 * kControlPeriodSim / kTimeWarp));
  for (std::size_t k = 0; k < kPeriods; ++k) {
    std::this_thread::sleep_for(wall_period);
    baselines::ControlInputs inputs;
    {
      std::lock_guard lock(shared.mutex);
      if (!shared.telemetry_valid) continue;
      inputs.measured_power = Watts{shared.avg_power};
      inputs.normalized_throughput = shared.normalized_throughput;
      inputs.utilization = shared.utilization;
      inputs.device_power_watts = shared.device_power;
    }
    const auto out = controller.control(inputs, commands);
    commands = out.target_freqs_mhz;
    {
      std::lock_guard lock(shared.mutex);
      shared.pending_commands = commands;
      shared.commands_pending = true;
    }
    if (k >= 20) steady.add(inputs.measured_power.value);
    if ((k + 1) % 20 == 0) {
      std::printf("period %3zu: power %.1f W, commands [%.0f %.0f %.0f %.0f]\n",
                  k + 1, inputs.measured_power.value, commands[0], commands[1],
                  commands[2], commands[3]);
    }
  }

  shared.stop.store(true);
  plant.join();
  telemetry.join();

  std::printf("\nreal-threaded loop at a 900 W cap (last 80 periods): "
              "mean %.1f W, std %.1f W\n",
              steady.mean(), steady.stddev());
  std::printf("(the paper's Sec 5 runtime: timer-driven control thread + "
              "telemetry child thread)\n");
  return 0;
}
