// Scenario: hierarchical power capping — data center > racks > servers.
//
// The paper's motivation is facility-level oversubscription; production
// systems (SHIP, Dynamo) cap hierarchically: a facility coordinator divides
// the PDU budget among racks, each rack divides among its servers, and
// every server runs CapGPU. This example builds two racks of three servers
// (six simulated GPU servers, 18 V100s) under a 5.2 kW facility budget and
// exercises both tiers:
//   - tier 1: the facility re-divides across racks by aggregate demand
//     (reusing rack::proportional_allocation),
//   - tier 2: each rack::RackCoordinator re-divides across its servers,
//   - a demand shift mid-run (rack 0's load drops to 30%) moves budget
//     across racks within a minute of simulated time.
#include <cstdio>
#include <memory>
#include <vector>

#include "core/capgpu_controller.hpp"
#include "core/control_loop.hpp"
#include "core/rig.hpp"
#include "rack/coordinator.hpp"

using namespace capgpu;

namespace {

struct Server {
  std::unique_ptr<core::ServerRig> rig;
  std::unique_ptr<core::CapGpuController> controller;
  std::unique_ptr<core::ControlLoop> loop;
};

struct Rack {
  std::string name;
  std::vector<Server> servers;
  std::unique_ptr<rack::RackCoordinator> coordinator;

  [[nodiscard]] double demand() const {
    double d = 0.0;
    for (const auto& s : servers) d += s.rig->gpu_demand();
    return d / static_cast<double>(servers.size());
  }
  [[nodiscard]] double power() const { return coordinator->total_power(); }
};

}  // namespace

int main() {
  constexpr double kFacilityBudget = 5200.0;
  constexpr std::size_t kPeriods = 120;

  std::vector<Rack> racks;
  for (std::size_t r = 0; r < 2; ++r) {
    Rack rack_obj;
    rack_obj.name = "rack-" + std::to_string(r);
    rack_obj.coordinator = std::make_unique<rack::RackCoordinator>(
        Watts{kFacilityBudget / 2.0}, rack::RackPolicy::kDemandProportional);
    for (std::size_t s = 0; s < 3; ++s) {
      Server srv;
      core::RigConfig cfg;
      cfg.seed = 10 * r + s + 1;
      // Rack 0 starts saturated and later drops to 30% offered load;
      // rack 1 stays saturated throughout.
      if (r == 0) {
        cfg.offered_load = {{0.0, 1.0}, {240.0, 0.30}};
      }
      srv.rig = std::make_unique<core::ServerRig>(cfg);
      const auto identified = srv.rig->identify();
      srv.controller = std::make_unique<core::CapGpuController>(
          core::CapGpuConfig{}, srv.rig->device_ranges(), identified.model,
          Watts{kFacilityBudget / 6.0}, srv.rig->latency_models());
      auto* rig_ptr = srv.rig.get();
      srv.loop = std::make_unique<core::ControlLoop>(
          srv.rig->engine(), srv.rig->hal(), srv.rig->rapl(), *srv.controller,
          core::ControlLoopConfig{},
          [rig_ptr] { return rig_ptr->normalized_throughputs(); });
      srv.loop->start();

      rack::ServerEndpoint ep;
      ep.name = rack_obj.name + "/server-" + std::to_string(s);
      auto* ctl = srv.controller.get();
      auto* loop = srv.loop.get();
      ep.set_budget = [ctl](Watts w) { ctl->set_set_point(w); };
      ep.measured_power = [loop] {
        return loop->power_trace().empty()
                   ? 0.0
                   : loop->power_trace().values().back();
      };
      ep.demand = [rig_ptr] { return rig_ptr->gpu_demand(); };
      ep.bounds = {700.0, 1200.0};
      rack_obj.coordinator->add_server(std::move(ep));
      rack_obj.servers.push_back(std::move(srv));
    }
    racks.push_back(std::move(rack_obj));
  }

  std::printf("facility budget %.0f W over %zu racks x %zu servers\n\n",
              kFacilityBudget, racks.size(), racks[0].servers.size());
  std::printf("period | facility W | rack0 W (budget) | rack1 W (budget)\n");

  std::vector<double> rack_budgets(racks.size(), kFacilityBudget / 2.0);
  for (std::size_t k = 1; k <= kPeriods; ++k) {
    for (auto& rack_obj : racks) {
      for (auto& s : rack_obj.servers) {
        s.rig->engine().run_until(s.rig->engine().now() + 4.0);
      }
    }
    // Tier 1: facility re-divides across racks every 10 periods.
    if (k % 10 == 0) {
      std::vector<rack::AllocationBounds> bounds(racks.size(),
                                                 {2100.0, 3600.0});
      std::vector<double> weights;
      for (const auto& rack_obj : racks) weights.push_back(rack_obj.demand());
      rack_budgets =
          rack::proportional_allocation(kFacilityBudget, bounds, weights);
      for (std::size_t r = 0; r < racks.size(); ++r) {
        racks[r].coordinator->set_rack_budget(Watts{rack_budgets[r]});
      }
    }
    // Tier 2: each rack re-divides across its servers every 5 periods.
    if (k % 5 == 0) {
      for (auto& rack_obj : racks) (void)rack_obj.coordinator->rebalance();
    }

    if (k % 15 == 0) {
      const double total = racks[0].power() + racks[1].power();
      std::printf("%6zu | %10.1f | %8.1f (%5.0f) | %8.1f (%5.0f)\n", k, total,
                  racks[0].power(), rack_budgets[0], racks[1].power(),
                  rack_budgets[1]);
    }
  }

  std::printf("\nafter rack 0's load drop (period 60+), the facility moved "
              "budget to rack 1:\n");
  std::printf("  rack budgets: %.0f / %.0f W (started 2600/2600)\n",
              rack_budgets[0], rack_budgets[1]);
  const double total = racks[0].power() + racks[1].power();
  std::printf("  facility power %.1f W of %.0f W\n", total, kFacilityBudget);
  for (auto& rack_obj : racks) {
    for (auto& s : rack_obj.servers) s.loop->stop();
  }
  return 0;
}
