// Commissioning tool: characterise a GPU server before enabling CapGPU.
//
// Runs the two calibration procedures an operator performs once per
// hardware configuration:
//   1. power-model identification (paper Sec 4.2, Fig 2a) — the frequency
//      sweep and least-squares fit, with a residual report, and
//   2. latency-model fitting (Eq. 8, Fig 2b) — per-model (e_min, gamma)
//      from measured batch latencies across GPU clocks,
// then prints the derived controller inputs: gains, offsets, stability
// margin, and the SLO->frequency lookup each model supports.
#include <cstdio>

#include "control/stability.hpp"
#include "core/capgpu_controller.hpp"
#include "core/rig.hpp"

using namespace capgpu;

int main() {
  core::ServerRig rig;

  std::printf("== step 1: power model identification ==\n");
  core::IdentifyOptions sweep;
  sweep.levels_per_device = 8;
  const control::IdentifiedModel identified = rig.identify(sweep);
  std::printf("  samples: %zu   R^2: %.4f   RMSE: %.2f W\n", identified.samples,
              identified.r_squared, identified.rmse_watts);
  std::printf("  gains (W/MHz):");
  for (std::size_t j = 0; j < identified.model.device_count(); ++j) {
    std::printf(" %s=%.4f", j == 0 ? "cpu" : "gpu", identified.model.gain(j));
  }
  std::printf("\n  static offset: %.1f W\n", identified.model.offset());

  std::printf("\n== step 2: latency models ==\n");
  auto& engine = rig.engine();
  auto& hal = rig.hal();
  hal.set_device_frequency(DeviceId{0}, 2.4_GHz);
  for (std::size_t i = 0; i < rig.gpu_count(); ++i) {
    std::vector<control::LatencySample> samples;
    for (double f = 435.0; f <= 1350.0; f += 90.0) {
      hal.set_device_frequency(DeviceId{static_cast<std::uint32_t>(i + 1)},
                               Megahertz{f});
      engine.run_until(engine.now() + 4.0);
      const double t0 = engine.now();
      engine.run_until(t0 + 20.0);
      samples.push_back(
          {Megahertz{f}, rig.stream(i).batch_latency().mean(engine.now(), 20.0)});
    }
    const control::LatencyFit fit =
        control::fit_latency_model(samples, 1350_MHz);
    std::printf("  %-9s e_min=%.3f s  gamma=%.3f  (R^2=%.4f)\n",
                rig.stream(i).model().name.c_str(), fit.model.e_min(),
                fit.model.gamma(), fit.r_squared);
    // SLO -> minimum frequency lookup the operator can sanity-check.
    for (const double slo_mult : {1.1, 1.5, 2.0}) {
      const double slo = fit.model.e_min() * slo_mult;
      std::printf("      SLO %.3f s -> f >= %6.1f MHz\n", slo,
                  fit.model.min_frequency_for_slo(slo).value);
    }
  }

  std::printf("\n== step 3: stability margin of the resulting loop ==\n");
  control::MpcController mpc(control::MpcConfig{}, rig.device_ranges(),
                             identified.model, 900_W);
  const double g_max = control::max_stable_uniform_gain(mpc, identified.model);
  std::printf("  loop remains stable for plant gains up to %.1fx the "
              "identified values\n",
              g_max);
  std::printf("  (re-run identification if the workload changes by more "
              "than that)\n");
  return 0;
}
