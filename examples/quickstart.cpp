// Quickstart: cap a 3-GPU ML inference server at 900 W with CapGPU.
//
// The five steps below are the whole deployment recipe:
//   1. assemble a server (here: the simulated V100 testbed),
//   2. identify the power model with the built-in sweep,
//   3. construct the CapGPU controller (MPC + weights + latency models),
//   4. run the 4-second control loop,
//   5. read back traces and application metrics.
// On real hardware only step 1 changes: back the hal:: interfaces with
// NVML / cpupower / RAPL / your ACPI meter instead of the simulator.
#include <cstdio>

#include "core/capgpu_controller.hpp"
#include "core/rig.hpp"

using namespace capgpu;

int main() {
  // 1. A server: Xeon host + 3 Tesla V100s running ResNet50, Swin-T and
  //    VGG16 inference plus an exhaustive feature-selection job on the
  //    remaining CPU cores (the paper's testbed, Sec 5/6.1).
  core::ServerRig rig;

  // 2. System identification (paper Sec 4.2): sweep each device's
  //    frequency, fit p = A*F + C by least squares.
  const control::IdentifiedModel identified = rig.identify();
  std::printf("identified power model (R^2 = %.3f):\n  p =",
              identified.r_squared);
  for (std::size_t j = 0; j < identified.model.device_count(); ++j) {
    std::printf(" %+.3f*f%zu", identified.model.gain(j), j);
  }
  std::printf(" %+.1f W\n", identified.model.offset());

  // 3. The CapGPU controller: MIMO MPC with throughput-driven weights and
  //    per-GPU latency models for SLO support.
  core::CapGpuController controller(core::CapGpuConfig{}, rig.device_ranges(),
                                    identified.model, 900_W,
                                    rig.latency_models());
  controller.set_slo(/*device=*/1, /*slo_seconds=*/0.6);  // ResNet50 SLO

  // 4. Run 100 control periods (400 simulated seconds).
  core::RunOptions options;
  options.periods = 100;
  options.set_point = 900_W;
  const core::RunResult result = rig.run(controller, options);

  // 5. Inspect the outcome.
  const auto power = result.steady_power(/*skip=*/20);
  std::printf("\nafter 100 periods at a 900 W cap:\n");
  std::printf("  power: mean %.1f W (std %.1f, max %.1f)\n", power.mean(),
              power.stddev(), power.max());
  for (std::size_t i = 0; i < rig.gpu_count(); ++i) {
    std::printf("  %-9s %5.1f img/s at %6.1f MHz, batch latency %.3f s\n",
                rig.stream(i).model().name.c_str(),
                result.gpu_throughput[i].stats_from(20).mean(),
                result.device_freqs[i + 1].values().back(),
                result.gpu_latency[i].stats_from(20).mean());
  }
  std::printf("  CPU job:  %6.1f subsets/s at %6.1f MHz\n",
              result.cpu_throughput.stats_from(20).mean(),
              result.device_freqs[0].values().back());
  std::printf("  ResNet50 SLO misses: %.1f%%\n",
              100.0 * result.slo_misses[0].ratio());
  return 0;
}
