// Scenario runner: drive any controller against the simulated testbed from
// the command line and export the traces as CSV.
//
//   scenario_runner [--controller=capgpu|gpu-only|cpu-only|cpu+gpu|
//                     fixed-step|safe-fixed-step]
//                   [--set-point=900] [--periods=100] [--gpus=3]
//                   [--seed=1] [--gpu-share=0.6] [--step-mult=1]
//                   [--slo1=0.5 --slo2=0.8 --slo3=0.7]   (seconds, per GPU)
//                   [--adaptive] [--batching] [--open-load=0.6]
//                   [--csv=trace.csv] [--quiet]
//
// Examples:
//   scenario_runner --controller=capgpu --set-point=950 --csv=capgpu.csv
//   scenario_runner --controller=gpu-only --set-point=1100 --periods=200
//   scenario_runner --controller=capgpu --slo1=0.45 --batching
#include <cstdio>
#include <memory>

#include "baselines/cpu_only.hpp"
#include "baselines/cpu_plus_gpu.hpp"
#include "baselines/fixed_step.hpp"
#include "baselines/gpu_only.hpp"
#include "baselines/safe_fixed_step.hpp"
#include "common/error.hpp"
#include "common/options.hpp"
#include "core/batching.hpp"
#include "core/capgpu_controller.hpp"
#include "core/rig.hpp"
#include "telemetry/csv.hpp"

using namespace capgpu;

int main(int argc, char** argv) {
  const std::vector<std::string> known{
      "controller", "set-point", "periods", "gpus",    "seed",
      "gpu-share",  "step-mult", "slo1",    "slo2",    "slo3",
      "adaptive",   "batching",  "open-load", "csv",   "quiet", "help"};
  std::unique_ptr<Options> opts;
  try {
    opts = std::make_unique<Options>(argc, argv, known);
  } catch (const Error& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
  if (opts->get_flag("help")) {
    std::printf("see the header of examples/scenario_runner.cpp\n");
    return 0;
  }

  const std::string kind = opts->get_string("controller", "capgpu");
  const Watts set_point{opts->get_double("set-point", 900.0)};
  const auto periods = static_cast<std::size_t>(opts->get_long("periods", 100));
  const auto n_gpus = static_cast<std::size_t>(opts->get_long("gpus", 3));
  const bool quiet = opts->get_flag("quiet");

  core::RigConfig rig_cfg;
  rig_cfg.seed = static_cast<std::uint64_t>(opts->get_long("seed", 1));
  if (n_gpus != 3) {
    // Cycle the paper's three models across the requested GPU count.
    const auto zoo = workload::v100_testbed_models();
    rig_cfg.models.clear();
    for (std::size_t i = 0; i < n_gpus; ++i) {
      rig_cfg.models.push_back(zoo[i % zoo.size()]);
    }
  }
  if (opts->has("open-load")) {
    rig_cfg.offered_load = {{0.0, opts->get_double("open-load", 0.6)}};
  }
  core::ServerRig rig(rig_cfg);

  if (!quiet) std::printf("identifying the power model...\n");
  const control::IdentifiedModel identified = rig.identify();
  if (!quiet) {
    std::printf("  R^2 = %.4f, gains:", identified.r_squared);
    for (std::size_t j = 0; j < identified.model.device_count(); ++j) {
      std::printf(" %.4f", identified.model.gain(j));
    }
    std::printf(", C = %.1f W\n", identified.model.offset());
  }

  core::RunOptions run;
  run.periods = periods;
  run.set_point = set_point;
  for (std::size_t i = 1; i <= std::min<std::size_t>(n_gpus, 3); ++i) {
    const std::string key = "slo" + std::to_string(i);
    if (opts->has(key)) {
      run.initial_slos[i] = opts->get_double(key, 0.0);
    }
  }

  std::unique_ptr<baselines::IServerPowerController> controller;
  std::unique_ptr<core::BatchingGovernor> governor;
  const auto devices = rig.device_ranges();
  if (kind == "capgpu") {
    core::CapGpuConfig cfg;
    cfg.adaptive = opts->get_flag("adaptive");
    auto capgpu = std::make_unique<core::CapGpuController>(
        cfg, devices, identified.model, set_point, rig.latency_models());
    if (opts->get_flag("batching")) {
      std::vector<workload::InferenceStream*> streams;
      for (std::size_t i = 0; i < rig.gpu_count(); ++i) {
        streams.push_back(&rig.stream(i));
      }
      governor = std::make_unique<core::BatchingGovernor>(
          rig.engine(), std::move(streams), *capgpu);
      governor->start();
    }
    controller = std::move(capgpu);
  } else if (kind == "gpu-only") {
    controller = std::make_unique<baselines::GpuOnlyController>(
        devices, identified.model, 0.3, set_point);
  } else if (kind == "cpu-only") {
    controller = std::make_unique<baselines::CpuOnlyController>(
        devices, identified.model, 0.3, set_point);
  } else if (kind == "cpu+gpu") {
    controller = std::make_unique<baselines::CpuPlusGpuController>(
        devices, identified.model, 0.3, set_point,
        opts->get_double("gpu-share", 0.6));
  } else if (kind == "fixed-step" || kind == "safe-fixed-step") {
    baselines::FixedStepConfig cfg;
    cfg.step_multiplier = static_cast<int>(opts->get_long("step-mult", 1));
    if (kind == "fixed-step") {
      controller = std::make_unique<baselines::FixedStepController>(
          cfg, devices, set_point);
    } else {
      const double margin =
          baselines::SafeFixedStepController::estimate_margin(
              identified.model, devices, cfg);
      controller = std::make_unique<baselines::SafeFixedStepController>(
          cfg, devices, set_point, margin);
    }
  } else {
    std::fprintf(stderr, "unknown controller '%s'\n", kind.c_str());
    return 2;
  }

  if (!quiet) {
    std::printf("running %s for %zu periods at %.0f W...\n",
                controller->name().c_str(), periods, set_point.value);
  }
  const core::RunResult res = rig.run(*controller, run);

  const auto steady = res.steady_power(periods / 5);
  std::printf("%s @ %.0f W: mean %.1f W (std %.1f, max %.1f), "
              "violations(>cap+5W) %zu\n",
              controller->name().c_str(), set_point.value, steady.mean(),
              steady.stddev(), steady.max(),
              res.power.count_above(set_point.value + 5.0, periods / 5));
  double total_thr = 0.0;
  for (std::size_t i = 0; i < rig.gpu_count(); ++i) {
    total_thr += res.gpu_throughput[i].stats_from(periods / 5).mean();
  }
  std::printf("GPU throughput %.1f img/s, CPU %.0f subsets/s\n", total_thr,
              res.cpu_throughput.stats_from(periods / 5).mean());
  for (const auto& [device, slo] : run.initial_slos) {
    std::printf("SLO %.3f s on GPU %zu: miss rate %.1f%%\n", slo, device - 1,
                100.0 * res.slo_misses[device - 1].ratio());
  }

  if (opts->has("csv")) {
    const std::string path = opts->get_string("csv", "trace.csv");
    std::vector<const telemetry::TimeSeries*> series{&res.power,
                                                     &res.set_point};
    for (const auto& f : res.device_freqs) series.push_back(&f);
    for (const auto& t : res.gpu_throughput) series.push_back(&t);
    for (const auto& l : res.gpu_latency) series.push_back(&l);
    telemetry::save_series_csv(path, series);
    std::printf("trace written to %s (%zu columns x %zu periods)\n",
                path.c_str(), series.size() + 1, res.power.size());
  }
  return 0;
}
