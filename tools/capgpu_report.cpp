// Offline latency-attribution report.
//
// Ingests the structured event log written by --events-out (JSONL, one
// trace event per line) and, optionally, the --slo-report-out JSON, and
// prints:
//   1. a per-cap latency attribution table — mean per-stage latency and
//      the dominant pipeline stage for every (set point, model) pair,
//      joined by bucketing each per-period "stage_latency_s/<model>"
//      counter sample into the "control_period" span that contains it;
//   2. the burn-rate alert log correlated with protection events
//      (fail-safe and emergency engagements shortly before each alert);
//   3. the per-model SLO summary and stage quantiles from the SLO report.
//
// Usage: capgpu_report <events.jsonl> [slo_report.json]
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/json.hpp"
#include "workload/request_timeline.hpp"

namespace {

using capgpu::json::Value;
using capgpu::workload::kStageCount;
using capgpu::workload::kStageNames;

struct ControlPeriod {
  double start_us{0.0};
  double end_us{0.0};
  double set_point_w{0.0};
};

struct StageSample {
  double ts_us{0.0};
  std::string model;
  double stage_mean_s[kStageCount]{};
};

struct InstantEvent {
  double ts_us{0.0};
  std::string name;
  std::string model;  // empty for protection events
};

struct PidLog {
  std::vector<ControlPeriod> periods;
  std::vector<StageSample> samples;
  std::vector<InstantEvent> alerts;      // slo_burn_alert / slo_burn_clear
  std::vector<InstantEvent> protection;  // failsafe/emergency engage+release
};

std::string read_file(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) throw capgpu::Error("cannot open: " + path);
  std::ostringstream buf;
  buf << file.rdbuf();
  return buf.str();
}

constexpr const char* kStagePrefix = "stage_latency_s/";

// Parses the JSONL event stream into per-pid logs.
std::map<int, PidLog> load_events(const std::string& path) {
  const std::string text = read_file(path);
  std::map<int, PidLog> logs;
  std::size_t pos = 0;
  while (true) {
    while (pos < text.size() &&
           (text[pos] == '\n' || text[pos] == '\r' || text[pos] == ' ')) {
      ++pos;
    }
    if (pos >= text.size()) break;
    const Value ev = capgpu::json::parse_prefix(text, pos);
    if (!ev.is_object()) continue;
    const std::string ph = ev.string_or("ph", "");
    const std::string name = ev.string_or("name", "");
    const int pid = static_cast<int>(ev.number_or("pid", 0.0));
    const double ts = ev.number_or("ts", 0.0);
    PidLog& log = logs[pid];
    if (ph == "X" && name == "control_period") {
      const Value& args = ev.at("args");
      const double dur = ev.number_or("dur", 0.0);
      log.periods.push_back(
          {ts, ts + dur, args.number_or("set_point_w", 0.0)});
    } else if (ph == "C" && name.rfind(kStagePrefix, 0) == 0) {
      StageSample s;
      s.ts_us = ts;
      s.model = name.substr(std::string(kStagePrefix).size());
      const Value& args = ev.at("args");
      for (std::size_t i = 0; i < kStageCount; ++i) {
        s.stage_mean_s[i] = args.number_or(kStageNames[i], 0.0);
      }
      log.samples.push_back(std::move(s));
    } else if (ph == "i" &&
               (name == "slo_burn_alert" || name == "slo_burn_clear")) {
      std::string model;
      if (ev.contains("args")) model = ev.at("args").string_or("model", "");
      log.alerts.push_back({ts, name, std::move(model)});
    } else if (ph == "i" &&
               (name == "failsafe_engage" || name == "failsafe_release" ||
                name == "emergency_engage" || name == "emergency_release")) {
      log.protection.push_back({ts, name, ""});
    }
  }
  return logs;
}

// Finds the set point of the control period containing `ts_us`, or NaN.
// Stage counters are emitted from the end-of-period callback, so their
// timestamp coincides with the period's end — use a half-open match with
// a microsecond of slack for the shared rounding.
double set_point_at(const std::vector<ControlPeriod>& periods, double ts_us) {
  for (const auto& p : periods) {
    if (ts_us > p.start_us + 0.5 && ts_us <= p.end_us + 1.5) {
      return p.set_point_w;
    }
  }
  return std::nan("");
}

struct StageAccum {
  double sum_s[kStageCount]{};
  std::size_t periods{0};
};

void print_attribution(const std::map<int, PidLog>& logs) {
  // Key: (set point, model). Caps are rounded to 0.1 W so float noise in
  // the args does not split buckets.
  std::map<std::pair<long long, std::string>, StageAccum> table;
  std::size_t unmatched = 0;
  for (const auto& [pid, log] : logs) {
    (void)pid;
    for (const auto& s : log.samples) {
      const double cap = set_point_at(log.periods, s.ts_us);
      if (std::isnan(cap)) {
        ++unmatched;
        continue;
      }
      auto& acc = table[{static_cast<long long>(std::llround(cap * 10.0)),
                         s.model}];
      for (std::size_t i = 0; i < kStageCount; ++i) {
        acc.sum_s[i] += s.stage_mean_s[i];
      }
      ++acc.periods;
    }
  }

  std::printf("Latency attribution by power cap\n");
  std::printf("--------------------------------\n");
  if (table.empty()) {
    std::printf("  (no stage samples joined a control period — run the\n"
                "   bench with --events-out and tracing-enabled outputs)\n");
    return;
  }
  std::printf("  %-9s %-10s %8s", "cap W", "model", "periods");
  for (std::size_t i = 0; i < kStageCount; ++i) {
    std::printf(" %16s", kStageNames[i]);
  }
  std::printf("  %s\n", "dominant stage");

  // Per-cap totals drive the per-cap dominant stage line.
  std::map<long long, StageAccum> cap_totals;
  for (const auto& [key, acc] : table) {
    const auto& [cap_tenths, model] = key;
    std::printf("  %-9.1f %-10s %8zu", static_cast<double>(cap_tenths) / 10.0,
                model.c_str(), acc.periods);
    std::size_t dominant = 0;
    auto& total = cap_totals[cap_tenths];
    for (std::size_t i = 0; i < kStageCount; ++i) {
      const double mean_ms =
          acc.sum_s[i] / static_cast<double>(acc.periods) * 1e3;
      std::printf(" %13.3f ms", mean_ms);
      total.sum_s[i] += acc.sum_s[i];
      if (acc.sum_s[i] > acc.sum_s[dominant]) dominant = i;
    }
    total.periods += acc.periods;
    std::printf("  %s\n", kStageNames[dominant]);
  }
  std::printf("\n");
  for (const auto& [cap_tenths, total] : cap_totals) {
    std::size_t dominant = 0;
    for (std::size_t i = 1; i < kStageCount; ++i) {
      if (total.sum_s[i] > total.sum_s[dominant]) dominant = i;
    }
    std::printf("  dominant stage at %.1f W (all models): %s\n",
                static_cast<double>(cap_tenths) / 10.0,
                kStageNames[dominant]);
  }
  if (unmatched > 0) {
    std::printf("  note: %zu stage sample(s) fell outside every control "
                "period and were dropped\n", unmatched);
  }
}

void print_alert_correlation(const std::map<int, PidLog>& logs) {
  std::printf("\nBurn-rate alerts vs protection events\n");
  std::printf("-------------------------------------\n");
  constexpr double kWindowUs = 60e6;  // look back one fast burn window
  std::size_t alerts = 0;
  std::size_t with_failsafe = 0;
  std::size_t with_emergency = 0;
  for (const auto& [pid, log] : logs) {
    for (const auto& a : log.alerts) {
      if (a.name != "slo_burn_alert") continue;
      ++alerts;
      const InstantEvent* failsafe = nullptr;
      const InstantEvent* emergency = nullptr;
      for (const auto& p : log.protection) {
        if (p.ts_us > a.ts_us || p.ts_us < a.ts_us - kWindowUs) continue;
        if (p.name == "failsafe_engage") failsafe = &p;
        if (p.name == "emergency_engage") emergency = &p;
      }
      if (failsafe) ++with_failsafe;
      if (emergency) ++with_emergency;
      std::printf("  pid %-3d %-10s alert at %9.3f s", pid, a.model.c_str(),
                  a.ts_us / 1e6);
      if (failsafe) {
        std::printf("  failsafe_engage %.3f s before",
                    (a.ts_us - failsafe->ts_us) / 1e6);
      }
      if (emergency) {
        std::printf("  emergency_engage %.3f s before",
                    (a.ts_us - emergency->ts_us) / 1e6);
      }
      if (!failsafe && !emergency) {
        std::printf("  no protection event within 60 s");
      }
      std::printf("\n");
    }
  }
  if (alerts == 0) {
    std::printf("  no burn-rate alerts in the event log\n");
    return;
  }
  std::printf("  total: %zu alert(s), %zu preceded by fail-safe engagement, "
              "%zu by emergency throttling\n",
              alerts, with_failsafe, with_emergency);
}

void print_slo_report(const std::string& path) {
  const Value report = capgpu::json::parse(read_file(path));
  std::printf("\nSLO error-budget summary (%s)\n", path.c_str());
  std::printf("--------------------------------\n");
  const Value& entries = report.at("entries");
  if (entries.as_array().empty()) {
    std::printf("  no SLO entries (burn monitoring disabled or no checks)\n");
  } else {
    std::printf("  %-10s %-18s %9s %8s %8s %10s %7s\n", "model", "policy",
                "objective", "checked", "missed", "budget", "alerts");
    for (const Value& e : entries.as_array()) {
      std::printf("  %-10s %-18s %9.4f %8.0f %8.0f %9.1f%% %7.0f\n",
                  e.string_or("model", "?").c_str(),
                  e.string_or("policy", "?").c_str(),
                  e.number_or("objective", 0.0), e.number_or("checked", 0.0),
                  e.number_or("missed", 0.0),
                  e.number_or("budget_consumed", 0.0) * 100.0,
                  e.number_or("alerts", 0.0));
    }
  }
  if (!report.contains("stage_quantiles")) return;
  const auto& quantiles = report.at("stage_quantiles").as_array();
  if (quantiles.empty()) return;
  std::printf("\n  stage quantiles (relative error +/-%.1f%%):\n",
              quantiles.front().number_or("relative_error", 0.01) * 100.0);
  std::printf("  %-10s %-18s %10s %10s %10s %10s %10s\n", "model", "stage",
              "count", "p50 ms", "p95 ms", "p99 ms", "p99.9 ms");
  for (const Value& q : quantiles) {
    std::printf("  %-10s %-18s %10.0f %10.2f %10.2f %10.2f %10.2f\n",
                q.string_or("model", "?").c_str(),
                q.string_or("stage", "?").c_str(), q.number_or("count", 0.0),
                q.number_or("p50", 0.0) * 1e3, q.number_or("p95", 0.0) * 1e3,
                q.number_or("p99", 0.0) * 1e3, q.number_or("p999", 0.0) * 1e3);
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2 || argc > 3) {
    std::fprintf(stderr,
                 "usage: %s <events.jsonl> [slo_report.json]\n"
                 "  events.jsonl     written by a bench with --events-out\n"
                 "  slo_report.json  written by a bench with --slo-report-out\n",
                 argv[0]);
    return 2;
  }
  try {
    const std::map<int, PidLog> logs = load_events(argv[1]);
    std::size_t events = 0;
    for (const auto& [pid, log] : logs) {
      (void)pid;
      events += log.periods.size() + log.samples.size() + log.alerts.size() +
                log.protection.size();
    }
    std::printf("capgpu_report: %s (%zu relevant event(s) across %zu rig(s))\n\n",
                argv[1], events, logs.size());
    print_attribution(logs);
    print_alert_correlation(logs);
    if (argc == 3) print_slo_report(argv[2]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "capgpu_report: %s\n", e.what());
    return 1;
  }
  return 0;
}
