// Offline latency-attribution report.
//
// Ingests the structured event log written by --events-out (JSONL, one
// trace event per line) and, optionally, the --slo-report-out JSON, and
// prints:
//   1. a per-cap latency attribution table — mean per-stage latency and
//      the dominant pipeline stage for every (set point, model) pair,
//      joined by bucketing each per-period "stage_latency_s/<model>"
//      counter sample into the "control_period" span that contains it;
//   2. the burn-rate alert log correlated with protection events
//      (fail-safe and emergency engagements shortly before each alert);
//   3. the per-model SLO summary and stage quantiles from the SLO report;
//   4. when a --flight-out log is supplied, each burn alert joined with the
//      controller health recorded in the minute before it — did the
//      prediction-error residuals spike (model error) or were the MPC's
//      frequency constraints binding (constraint pressure)?
//   5. when a --resilience-out JSON is supplied, the chaos-campaign
//      scorecard (detection latency, MTTR, SLO-burn split per stage);
//   6. when an --energy-out JSON is supplied, the efficiency frontier —
//      joules per inference vs. power cap, with requests/kJ, idle fraction
//      and the dominant energy stage at each cap (the paper's energy-
//      optimal cap reading).
//
// Usage: capgpu_report <events.jsonl> [slo_report.json] [flight.jsonl]
//                      [resilience.json] [energy.json]
// Pass "-" to skip an optional position (e.g. feed an energy report
// without a flight log).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.hpp"
#include "common/json.hpp"
#include "telemetry/flight.hpp"
#include "workload/request_timeline.hpp"

namespace {

using capgpu::json::Value;
using capgpu::workload::kStageCount;
using capgpu::workload::kStageNames;

struct ControlPeriod {
  double start_us{0.0};
  double end_us{0.0};
  double set_point_w{0.0};
};

struct StageSample {
  double ts_us{0.0};
  std::string model;
  double stage_mean_s[kStageCount]{};
};

struct InstantEvent {
  double ts_us{0.0};
  std::string name;
  std::string model;  // empty for protection events
};

struct PidLog {
  std::vector<ControlPeriod> periods;
  std::vector<StageSample> samples;
  std::vector<InstantEvent> alerts;      // slo_burn_alert / slo_burn_clear
  std::vector<InstantEvent> protection;  // failsafe/emergency engage+release
};

std::string read_file(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) throw capgpu::Error("cannot open: " + path);
  std::ostringstream buf;
  buf << file.rdbuf();
  return buf.str();
}

constexpr const char* kStagePrefix = "stage_latency_s/";

// Parses the JSONL event stream into per-pid logs.
std::map<int, PidLog> load_events(const std::string& path) {
  const std::string text = read_file(path);
  std::map<int, PidLog> logs;
  std::size_t pos = 0;
  while (true) {
    while (pos < text.size() &&
           (text[pos] == '\n' || text[pos] == '\r' || text[pos] == ' ')) {
      ++pos;
    }
    if (pos >= text.size()) break;
    const Value ev = capgpu::json::parse_prefix(text, pos);
    if (!ev.is_object()) continue;
    const std::string ph = ev.string_or("ph", "");
    const std::string name = ev.string_or("name", "");
    const int pid = static_cast<int>(ev.number_or("pid", 0.0));
    const double ts = ev.number_or("ts", 0.0);
    PidLog& log = logs[pid];
    if (ph == "X" && name == "control_period") {
      const Value& args = ev.at("args");
      const double dur = ev.number_or("dur", 0.0);
      log.periods.push_back(
          {ts, ts + dur, args.number_or("set_point_w", 0.0)});
    } else if (ph == "C" && name.rfind(kStagePrefix, 0) == 0) {
      StageSample s;
      s.ts_us = ts;
      s.model = name.substr(std::string(kStagePrefix).size());
      const Value& args = ev.at("args");
      for (std::size_t i = 0; i < kStageCount; ++i) {
        s.stage_mean_s[i] = args.number_or(kStageNames[i], 0.0);
      }
      log.samples.push_back(std::move(s));
    } else if (ph == "i" &&
               (name == "slo_burn_alert" || name == "slo_burn_clear")) {
      std::string model;
      if (ev.contains("args")) model = ev.at("args").string_or("model", "");
      log.alerts.push_back({ts, name, std::move(model)});
    } else if (ph == "i" &&
               (name == "failsafe_engage" || name == "failsafe_release" ||
                name == "emergency_engage" || name == "emergency_release")) {
      log.protection.push_back({ts, name, ""});
    }
  }
  return logs;
}

// Finds the set point of the control period containing `ts_us`, or NaN.
// Stage counters are emitted from the end-of-period callback, so their
// timestamp coincides with the period's end — use a half-open match with
// a microsecond of slack for the shared rounding.
double set_point_at(const std::vector<ControlPeriod>& periods, double ts_us) {
  for (const auto& p : periods) {
    if (ts_us > p.start_us + 0.5 && ts_us <= p.end_us + 1.5) {
      return p.set_point_w;
    }
  }
  return std::nan("");
}

struct StageAccum {
  double sum_s[kStageCount]{};
  std::size_t periods{0};
};

void print_attribution(const std::map<int, PidLog>& logs) {
  // Key: (set point, model). Caps are rounded to 0.1 W so float noise in
  // the args does not split buckets.
  std::map<std::pair<long long, std::string>, StageAccum> table;
  std::size_t unmatched = 0;
  for (const auto& [pid, log] : logs) {
    (void)pid;
    for (const auto& s : log.samples) {
      const double cap = set_point_at(log.periods, s.ts_us);
      if (std::isnan(cap)) {
        ++unmatched;
        continue;
      }
      auto& acc = table[{static_cast<long long>(std::llround(cap * 10.0)),
                         s.model}];
      for (std::size_t i = 0; i < kStageCount; ++i) {
        acc.sum_s[i] += s.stage_mean_s[i];
      }
      ++acc.periods;
    }
  }

  std::printf("Latency attribution by power cap\n");
  std::printf("--------------------------------\n");
  if (table.empty()) {
    std::printf("  (no stage samples joined a control period — run the\n"
                "   bench with --events-out and tracing-enabled outputs)\n");
    return;
  }
  std::printf("  %-9s %-10s %8s", "cap W", "model", "periods");
  for (std::size_t i = 0; i < kStageCount; ++i) {
    std::printf(" %16s", kStageNames[i]);
  }
  std::printf("  %s\n", "dominant stage");

  // Per-cap totals drive the per-cap dominant stage line.
  std::map<long long, StageAccum> cap_totals;
  for (const auto& [key, acc] : table) {
    const auto& [cap_tenths, model] = key;
    std::printf("  %-9.1f %-10s %8zu", static_cast<double>(cap_tenths) / 10.0,
                model.c_str(), acc.periods);
    std::size_t dominant = 0;
    auto& total = cap_totals[cap_tenths];
    for (std::size_t i = 0; i < kStageCount; ++i) {
      const double mean_ms =
          acc.sum_s[i] / static_cast<double>(acc.periods) * 1e3;
      std::printf(" %13.3f ms", mean_ms);
      total.sum_s[i] += acc.sum_s[i];
      if (acc.sum_s[i] > acc.sum_s[dominant]) dominant = i;
    }
    total.periods += acc.periods;
    std::printf("  %s\n", kStageNames[dominant]);
  }
  std::printf("\n");
  for (const auto& [cap_tenths, total] : cap_totals) {
    std::size_t dominant = 0;
    for (std::size_t i = 1; i < kStageCount; ++i) {
      if (total.sum_s[i] > total.sum_s[dominant]) dominant = i;
    }
    std::printf("  dominant stage at %.1f W (all models): %s\n",
                static_cast<double>(cap_tenths) / 10.0,
                kStageNames[dominant]);
  }
  if (unmatched > 0) {
    std::printf("  note: %zu stage sample(s) fell outside every control "
                "period and were dropped\n", unmatched);
  }
}

void print_alert_correlation(const std::map<int, PidLog>& logs) {
  std::printf("\nBurn-rate alerts vs protection events\n");
  std::printf("-------------------------------------\n");
  constexpr double kWindowUs = 60e6;  // look back one fast burn window
  std::size_t alerts = 0;
  std::size_t with_failsafe = 0;
  std::size_t with_emergency = 0;
  for (const auto& [pid, log] : logs) {
    for (const auto& a : log.alerts) {
      if (a.name != "slo_burn_alert") continue;
      ++alerts;
      const InstantEvent* failsafe = nullptr;
      const InstantEvent* emergency = nullptr;
      for (const auto& p : log.protection) {
        if (p.ts_us > a.ts_us || p.ts_us < a.ts_us - kWindowUs) continue;
        if (p.name == "failsafe_engage") failsafe = &p;
        if (p.name == "emergency_engage") emergency = &p;
      }
      if (failsafe) ++with_failsafe;
      if (emergency) ++with_emergency;
      std::printf("  pid %-3d %-10s alert at %9.3f s", pid, a.model.c_str(),
                  a.ts_us / 1e6);
      if (failsafe) {
        std::printf("  failsafe_engage %.3f s before",
                    (a.ts_us - failsafe->ts_us) / 1e6);
      }
      if (emergency) {
        std::printf("  emergency_engage %.3f s before",
                    (a.ts_us - emergency->ts_us) / 1e6);
      }
      if (!failsafe && !emergency) {
        std::printf("  no protection event within 60 s");
      }
      std::printf("\n");
    }
  }
  if (alerts == 0) {
    std::printf("  no burn-rate alerts in the event log\n");
    return;
  }
  std::printf("  total: %zu alert(s), %zu preceded by fail-safe engagement, "
              "%zu by emergency throttling\n",
              alerts, with_failsafe, with_emergency);
}

// One flight record reduced to what the alert join needs.
struct FlightPoint {
  double t_s{0.0};
  bool has_residual{false};
  double abs_residual_w{0.0};
  bool acted{false};        // MPC replay state present
  bool floor_bound{false};  // any device's floor constraint active
};

std::map<int, std::vector<FlightPoint>> load_flight(const std::string& path) {
  const std::string text = read_file(path);
  std::map<int, std::vector<FlightPoint>> points;
  std::size_t pos = 0;
  while (true) {
    while (pos < text.size() &&
           (text[pos] == '\n' || text[pos] == '\r' || text[pos] == ' ')) {
      ++pos;
    }
    if (pos >= text.size()) break;
    const capgpu::telemetry::FlightRecord rec =
        capgpu::telemetry::FlightRecord::from_json(
            capgpu::json::parse_prefix(text, pos));
    FlightPoint p;
    p.t_s = rec.t_s;
    p.has_residual = rec.outcome_filled && rec.mpc.present;
    p.abs_residual_w = std::abs(rec.power_residual_w);
    p.acted = rec.mpc.present;
    for (const int b : rec.mpc.floor_binding) {
      p.floor_bound = p.floor_bound || b != 0;
    }
    points[rec.pid].push_back(p);
  }
  return points;
}

struct FlightWindowStats {
  double mean_residual_w{0.0};
  std::size_t residuals{0};
  double floor_fraction{0.0};
  std::size_t acted{0};
};

FlightWindowStats flight_stats(const std::vector<FlightPoint>& points,
                               double from_s, double to_s) {
  FlightWindowStats s;
  double resid_sum = 0.0;
  std::size_t floor_bound = 0;
  for (const auto& p : points) {
    if (p.t_s < from_s || p.t_s > to_s) continue;
    if (p.has_residual) {
      resid_sum += p.abs_residual_w;
      ++s.residuals;
    }
    if (p.acted) {
      ++s.acted;
      if (p.floor_bound) ++floor_bound;
    }
  }
  if (s.residuals > 0) {
    s.mean_residual_w = resid_sum / static_cast<double>(s.residuals);
  }
  if (s.acted > 0) {
    s.floor_fraction =
        static_cast<double>(floor_bound) / static_cast<double>(s.acted);
  }
  return s;
}

// Joins each burn alert with the controller health recorded in the minute
// before it. A "model error" verdict means the prediction-error residuals
// in the window ran at least twice the run's mean; "constraint pressure"
// means the floor-binding fraction rose 25 points above the run's mean
// (the SLO floor, not the power model, was shaping the caps).
void print_flight_join(const std::map<int, PidLog>& logs,
                       const std::string& path) {
  std::printf("\nBurn-rate alerts vs controller health (%s)\n", path.c_str());
  std::printf("---------------------------------------\n");
  const std::map<int, std::vector<FlightPoint>> flight = load_flight(path);
  constexpr double kWindowS = 60.0;  // one fast burn window
  constexpr double kResidualSpike = 2.0;
  constexpr double kBindingSpike = 0.25;
  std::size_t alerts = 0;
  std::size_t model_error = 0;
  std::size_t constraint_pressure = 0;
  for (const auto& [pid, log] : logs) {
    const auto it = flight.find(pid);
    if (it == flight.end()) continue;
    const std::vector<FlightPoint>& points = it->second;
    const FlightWindowStats run =
        flight_stats(points, -1e300, 1e300);  // whole-run baseline
    for (const auto& a : log.alerts) {
      if (a.name != "slo_burn_alert") continue;
      ++alerts;
      const double at_s = a.ts_us / 1e6;
      const FlightWindowStats w =
          flight_stats(points, at_s - kWindowS, at_s);
      const bool resid_spiked = w.residuals > 0 && run.mean_residual_w > 0.0 &&
                                w.mean_residual_w >=
                                    kResidualSpike * run.mean_residual_w;
      const bool binding_spiked =
          w.acted > 0 && w.floor_fraction >= run.floor_fraction + kBindingSpike;
      if (resid_spiked) ++model_error;
      if (binding_spiked) ++constraint_pressure;
      std::printf(
          "  pid %-3d %-10s alert at %9.3f s  residual %6.2f W (run mean "
          "%6.2f W)  floor binding %5.1f%% (run %5.1f%%)",
          pid, a.model.c_str(), at_s, w.mean_residual_w, run.mean_residual_w,
          w.floor_fraction * 100.0, run.floor_fraction * 100.0);
      if (resid_spiked) std::printf("  <- model error");
      if (binding_spiked) std::printf("  <- constraint pressure");
      if (!resid_spiked && !binding_spiked) std::printf("  steady");
      std::printf("\n");
    }
  }
  if (alerts == 0) {
    std::printf("  no burn-rate alerts to join with flight records\n");
    return;
  }
  std::printf(
      "  total: %zu alert(s), %zu preceded by a prediction-error spike, "
      "%zu by rising constraint pressure\n",
      alerts, model_error, constraint_pressure);
}

void print_slo_report(const std::string& path) {
  const Value report = capgpu::json::parse(read_file(path));
  std::printf("\nSLO error-budget summary (%s)\n", path.c_str());
  std::printf("--------------------------------\n");
  const Value& entries = report.at("entries");
  if (entries.as_array().empty()) {
    std::printf("  no SLO entries (burn monitoring disabled or no checks)\n");
  } else {
    std::printf("  %-10s %-18s %9s %8s %8s %10s %7s\n", "model", "policy",
                "objective", "checked", "missed", "budget", "alerts");
    for (const Value& e : entries.as_array()) {
      std::printf("  %-10s %-18s %9.4f %8.0f %8.0f %9.1f%% %7.0f\n",
                  e.string_or("model", "?").c_str(),
                  e.string_or("policy", "?").c_str(),
                  e.number_or("objective", 0.0), e.number_or("checked", 0.0),
                  e.number_or("missed", 0.0),
                  e.number_or("budget_consumed", 0.0) * 100.0,
                  e.number_or("alerts", 0.0));
    }
  }
  if (!report.contains("stage_quantiles")) return;
  const auto& quantiles = report.at("stage_quantiles").as_array();
  if (quantiles.empty()) return;
  std::printf("\n  stage quantiles (relative error +/-%.1f%%):\n",
              quantiles.front().number_or("relative_error", 0.01) * 100.0);
  std::printf("  %-10s %-18s %10s %10s %10s %10s %10s\n", "model", "stage",
              "count", "p50 ms", "p95 ms", "p99 ms", "p99.9 ms");
  for (const Value& q : quantiles) {
    std::printf("  %-10s %-18s %10.0f %10.2f %10.2f %10.2f %10.2f\n",
                q.string_or("model", "?").c_str(),
                q.string_or("stage", "?").c_str(), q.number_or("count", 0.0),
                q.number_or("p50", 0.0) * 1e3, q.number_or("p95", 0.0) * 1e3,
                q.number_or("p99", 0.0) * 1e3, q.number_or("p999", 0.0) * 1e3);
  }
}

// Renders the chaos-campaign scorecard written by --resilience-out: one
// row per (campaign, variant, stage) with detection latency, MTTR and the
// SLO burn split at fault end.
void print_resilience_report(const std::string& path) {
  const Value report = capgpu::json::parse(read_file(path));
  std::printf("\nChaos-campaign resilience scorecard (%s)\n", path.c_str());
  std::printf("----------------------------------------\n");
  if (!report.contains("campaigns") ||
      report.at("campaigns").as_array().empty()) {
    std::printf("  no campaign stages (run a bench that executes chaos "
                "campaigns with --resilience-out)\n");
    return;
  }
  std::printf("  %-16s %-9s %-14s %-12s %9s %8s %11s %10s %9s\n", "campaign",
              "variant", "stage", "domain", "detect s", "MTTR s",
              "burn during", "burn after", "dwell s");
  for (const Value& e : report.at("campaigns").as_array()) {
    std::printf("  %-16s %-9s %-14s %-12s %9.1f %8.1f %11.4f %10.4f %9.1f\n",
                e.string_or("campaign", "?").c_str(),
                e.string_or("variant", "?").c_str(),
                e.string_or("stage", "?").c_str(),
                e.string_or("domain", "?").c_str(),
                e.number_or("detected_at_s", -1.0),
                e.number_or("mttr_s", -1.0),
                e.number_or("slo_burn_during", 0.0),
                e.number_or("slo_burn_after", 0.0),
                e.number_or("failsafe_dwell_s", 0.0));
  }
}

// Renders the energy attribution written by --energy-out: the efficiency
// frontier table (joules per inference vs. power cap) plus the per-model
// attribution split.
void print_energy_frontier(const std::string& path) {
  const Value report = capgpu::json::parse(read_file(path));
  std::printf("\nEnergy efficiency frontier by power cap (%s)\n", path.c_str());
  std::printf("----------------------------------------\n");
  if (!report.contains("caps") || report.at("caps").as_array().empty()) {
    std::printf("  no energy accounting (run a closed-loop bench with "
                "--energy-out)\n");
    return;
  }
  std::printf("  %-9s %-18s %8s %9s %10s %12s %9s %7s  %s\n", "cap W",
              "policy", "periods", "requests", "total kJ", "J/inference",
              "req/kJ", "idle %", "dominant energy stage");
  for (const Value& c : report.at("caps").as_array()) {
    const std::string dominant = c.string_or("dominant_stage", "");
    std::printf("  %-9.1f %-18s %8.0f %9.0f %10.2f %12.4f %9.1f %6.1f%%  %s\n",
                c.number_or("cap_watts", 0.0),
                c.string_or("policy", "?").c_str(),
                c.number_or("periods", 0.0), c.number_or("requests", 0.0),
                c.number_or("total_joules", 0.0) / 1e3,
                c.number_or("joules_per_request", 0.0),
                c.number_or("requests_per_kilojoule", 0.0),
                c.number_or("idle_fraction", 0.0) * 100.0,
                dominant.empty() ? "(none)" : dominant.c_str());
  }
  if (!report.contains("entries") || report.at("entries").as_array().empty()) {
    return;
  }
  std::printf("\n  per-model attribution:\n");
  std::printf("  %-9s %-10s %9s %12s", "cap W", "model", "requests",
              "J/inference");
  for (std::size_t i = 0; i < kStageCount; ++i) {
    std::printf(" %16s", kStageNames[i]);
  }
  std::printf("\n");
  for (const Value& e : report.at("entries").as_array()) {
    std::printf("  %-9.1f %-10s %9.0f %12.4f", e.number_or("cap_watts", 0.0),
                e.string_or("model", "?").c_str(),
                e.number_or("requests", 0.0),
                e.number_or("joules_per_request", 0.0));
    const Value& stages = e.at("stage_joules");
    for (std::size_t i = 0; i < kStageCount; ++i) {
      std::printf(" %14.1f J", stages.number_or(kStageNames[i], 0.0));
    }
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2 || argc > 6) {
    std::fprintf(stderr,
                 "usage: %s <events.jsonl> [slo_report.json] [flight.jsonl]"
                 " [resilience.json] [energy.json]\n"
                 "  events.jsonl     written by a bench with --events-out\n"
                 "  slo_report.json  written by a bench with --slo-report-out\n"
                 "  flight.jsonl     written by a bench with --flight-out\n"
                 "  resilience.json  written by a bench with --resilience-out\n"
                 "  energy.json      written by a bench with --energy-out\n"
                 "pass \"-\" to skip an optional position\n",
                 argv[0]);
    return 2;
  }
  const auto arg_or_skip = [&](int index) -> const char* {
    if (argc <= index) return nullptr;
    return std::string_view(argv[index]) == "-" ? nullptr : argv[index];
  };
  try {
    const std::map<int, PidLog> logs = load_events(argv[1]);
    std::size_t events = 0;
    for (const auto& [pid, log] : logs) {
      (void)pid;
      events += log.periods.size() + log.samples.size() + log.alerts.size() +
                log.protection.size();
    }
    std::printf("capgpu_report: %s (%zu relevant event(s) across %zu rig(s))\n\n",
                argv[1], events, logs.size());
    print_attribution(logs);
    print_alert_correlation(logs);
    if (const char* path = arg_or_skip(2)) print_slo_report(path);
    if (const char* path = arg_or_skip(3)) print_flight_join(logs, path);
    if (const char* path = arg_or_skip(4)) print_resilience_report(path);
    if (const char* path = arg_or_skip(5)) print_energy_frontier(path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "capgpu_report: %s\n", e.what());
    return 1;
  }
  return 0;
}
