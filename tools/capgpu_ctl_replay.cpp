// capgpu_ctl_replay: deterministic re-execution of a flight-recorder log.
//
//   capgpu_ctl_replay <flight.jsonl> [--counterfactual cap=X]
//                     [--counterfactual horizon=N] [--verbose]
//
// Every record with MPC replay state is self-contained: the identified
// model, the control weights, the effective frequency bounds and the exact
// power sample the solver saw. The tool rebuilds a fresh MpcController per
// record from that state, re-solves the period, and asserts the resulting
// caps are bit-identical to the recorded decision (doubles serialize at
// %.17g, so the round trip is exact; the active-set solver is
// deterministic). Records decided by the explicit-MPC region cache or the
// structured banded/Woodbury tier take a different arithmetic path, so they
// are checked at 1e-6 MHz and counted separately (the structured tier is
// re-enabled from the record's structured_hit flag, so its primary replay
// is still bit-identical; the tolerance check is the cross-check below).
//
// Solver-tier attribution: periods are counted by the tier that decided
// them (cache / structured / warm / fast / cold). Every fast-path and
// warm-start period is additionally re-solved with both shortcuts disabled
// and asserted bit-identical to the pure active-set solve — the recorded
// run is the proof that the tiers change cost, never bits. Structured
// periods are cross-checked against the active-set solve at 1e-6 MHz.
//
// --counterfactual re-solves every period under a modified configuration
// (a different power cap, a different prediction horizon) and reports how
// the decisions would have moved — together with the recorded
// prediction-error residuals and binding-constraint fractions this
// attributes SLO burn to model error vs constraint pressure.
//
// Exit status: 0 all replayed periods match, 1 any mismatch, 2 usage or
// input errors.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/json.hpp"
#include "control/mpc.hpp"
#include "telemetry/flight.hpp"

namespace {

using capgpu::Watts;
using capgpu::telemetry::FlightMpcState;
using capgpu::telemetry::FlightRecord;

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <flight.jsonl> [--counterfactual cap=X]"
               " [--counterfactual horizon=N] [--verbose]\n",
               argv0);
  return 2;
}

std::vector<FlightRecord> load_flight_log(const std::string& path) {
  std::ifstream file(path);
  if (!file) throw capgpu::Error("cannot open flight log: " + path);
  std::vector<FlightRecord> records;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(file, line)) {
    ++line_no;
    if (line.empty()) continue;
    try {
      records.push_back(FlightRecord::from_json(capgpu::json::parse(line)));
    } catch (const std::exception& e) {
      throw capgpu::Error(path + ":" + std::to_string(line_no) + ": " +
                          e.what());
    }
  }
  return records;
}

/// Rebuilds the recorded controller and re-solves the period. `cap` /
/// `horizon` override the recorded configuration for counterfactuals.
/// `pure_active_set` disables both solve shortcuts (fast path, structured
/// tier) to produce the reference active-set solution for cross-checks;
/// otherwise the structured tier is enabled exactly when the record used
/// it, so the replayed arithmetic matches the recording run's.
capgpu::control::MpcDecision resolve(const FlightRecord& rec,
                                     std::optional<double> cap,
                                     std::optional<std::size_t> horizon,
                                     bool pure_active_set = false) {
  const FlightMpcState& m = rec.mpc;
  const std::size_t n = m.gains_w_per_mhz.size();
  capgpu::control::MpcConfig cfg;
  cfg.prediction_horizon = horizon.value_or(m.prediction_horizon);
  cfg.control_horizon = m.control_horizon;
  cfg.tracking_weight = m.tracking_weight;
  cfg.reference_decay = m.reference_decay;
  cfg.violation_decay = m.violation_decay;
  cfg.regularization = m.regularization;
  cfg.qp_fast_path = !pure_active_set;
  cfg.structured_solve = !pure_active_set && m.structured_hit;
  std::vector<capgpu::control::DeviceRange> devices(n);
  for (std::size_t j = 0; j < n; ++j) {
    devices[j].kind = m.device_kinds[j] == 0 ? capgpu::DeviceKind::kCpu
                                             : capgpu::DeviceKind::kGpu;
    devices[j].f_min_mhz = m.f_lo_mhz[j];
    devices[j].f_max_mhz = m.f_hi_mhz[j];
  }
  capgpu::control::MpcController ctl(
      cfg, std::move(devices),
      capgpu::control::LinearPowerModel(m.gains_w_per_mhz, m.offset_w),
      Watts{cap.value_or(rec.set_point_w)});
  // Thermal ceilings first: set_max_frequency_override pushes a floor down
  // when they cross, so applying the recorded effective bounds in this
  // order reproduces the solve-time box exactly.
  for (std::size_t j = 0; j < n; ++j) {
    if (m.f_max_mhz[j] < m.f_hi_mhz[j]) {
      ctl.set_max_frequency_override(j, m.f_max_mhz[j]);
    }
  }
  for (std::size_t j = 0; j < n; ++j) {
    if (m.f_min_mhz[j] > m.f_lo_mhz[j]) {
      ctl.set_min_frequency_override(j, m.f_min_mhz[j]);
    }
  }
  if (!m.weights.empty()) ctl.set_control_weights(m.weights);
  // Counterfactual caps shift the measurement-vs-set-point error; feed the
  // recorded measurement either way — only the target changes.
  return ctl.step(Watts{m.fed_power_w}, rec.freqs_mhz);
}

bool bit_identical(double a, double b) {
  return std::memcmp(&a, &b, sizeof a) == 0;
}

struct ReplayStats {
  std::size_t replayed{0};
  std::size_t exact{0};
  std::size_t cache_checked{0};  // cache-hit records, tolerance-checked
  std::size_t mismatches{0};
  /// Periods by deciding tier: cache / structured / warm / fast / cold.
  std::size_t by_tier[5]{};
  /// Warm/fast periods proven bit-identical to a pure active-set re-solve.
  std::size_t shortcut_crosschecked{0};
  /// Structured periods within tolerance of a pure active-set re-solve.
  std::size_t structured_crosschecked{0};
};

/// 0 cache, 1 structured, 2 warm, 3 fast, 4 cold — mirrors the
/// capgpu_ctl_solver_path_total label order.
std::size_t tier_of(const FlightMpcState& m) {
  if (m.cache_hit) return 0;
  if (m.structured_hit) return 1;
  if (m.warm_start_hit) return 2;
  if (m.fast_path_hit) return 3;
  return 4;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  std::vector<std::string> counterfactuals;
  bool verbose = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--verbose") {
      verbose = true;
    } else if (arg == "--counterfactual") {
      if (i + 1 >= argc) return usage(argv[0]);
      counterfactuals.emplace_back(argv[++i]);
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv[0]);
    } else if (path.empty()) {
      path = arg;
    } else {
      return usage(argv[0]);
    }
  }
  if (path.empty()) return usage(argv[0]);

  try {
    const std::vector<FlightRecord> records = load_flight_log(path);
    std::size_t mpc_present = 0;
    for (const FlightRecord& rec : records) {
      if (rec.mpc.present) ++mpc_present;
    }
    std::printf("[replay] %s: %zu records, %zu with MPC replay state\n",
                path.c_str(), records.size(), mpc_present);
    if (records.empty()) {
      std::fprintf(stderr, "[replay] empty flight log\n");
      return 2;
    }

    ReplayStats stats;
    constexpr double kCacheTolMhz = 1e-6;
    for (const FlightRecord& rec : records) {
      if (!rec.mpc.present) continue;
      const capgpu::control::MpcDecision d = resolve(rec, {}, {});
      ++stats.replayed;
      bool ok = d.target_freqs_mhz.size() == rec.targets_mhz.size();
      bool exact = ok;
      double worst = 0.0;
      for (std::size_t j = 0; ok && j < rec.targets_mhz.size(); ++j) {
        const double got = d.target_freqs_mhz[j];
        const double want = rec.targets_mhz[j];
        if (!bit_identical(got, want)) exact = false;
        worst = std::max(worst, std::abs(got - want));
        if (rec.mpc.cache_hit ? std::abs(got - want) > kCacheTolMhz
                              : !bit_identical(got, want)) {
          ok = false;
        }
      }
      if (rec.mpc.cache_hit) {
        ++stats.cache_checked;
      } else if (exact) {
        ++stats.exact;
      }
      const std::size_t tier = tier_of(rec.mpc);
      ++stats.by_tier[tier];
      if (tier == 2 || tier == 3) {
        // Warm-start and fast-path hits claim bitwise identity with the
        // active-set solve they replaced; prove it by re-solving with both
        // shortcuts disabled.
        const capgpu::control::MpcDecision ref = resolve(rec, {}, {}, true);
        bool same = ref.target_freqs_mhz.size() == rec.targets_mhz.size();
        for (std::size_t j = 0; same && j < rec.targets_mhz.size(); ++j) {
          same = bit_identical(ref.target_freqs_mhz[j], rec.targets_mhz[j]);
        }
        if (same) {
          ++stats.shortcut_crosschecked;
        } else {
          ok = false;
          std::fprintf(stderr,
                       "[replay] MISMATCH pid=%d period=%zu: %s tier "
                       "diverged from the pure active-set re-solve\n",
                       rec.pid, rec.period, tier == 2 ? "warm" : "fast");
        }
      } else if (tier == 1) {
        // Structured hits match the active-set optimum to solver tolerance.
        const capgpu::control::MpcDecision ref = resolve(rec, {}, {}, true);
        bool close = ref.target_freqs_mhz.size() == rec.targets_mhz.size();
        for (std::size_t j = 0; close && j < rec.targets_mhz.size(); ++j) {
          close = std::abs(ref.target_freqs_mhz[j] - rec.targets_mhz[j]) <=
                  kCacheTolMhz;
        }
        if (close) {
          ++stats.structured_crosschecked;
        } else {
          ok = false;
          std::fprintf(stderr,
                       "[replay] MISMATCH pid=%d period=%zu: structured "
                       "tier drifted beyond %g MHz from the active-set "
                       "re-solve\n",
                       rec.pid, rec.period, kCacheTolMhz);
        }
      }
      if (!ok) {
        ++stats.mismatches;
        if (stats.mismatches <= 5 || verbose) {
          std::fprintf(stderr,
                       "[replay] MISMATCH pid=%d period=%zu policy=%s "
                       "worst drift %.9g MHz%s\n",
                       rec.pid, rec.period, rec.policy.c_str(), worst,
                       rec.mpc.cache_hit ? " (cache hit)" : "");
          if (verbose) {
            for (std::size_t j = 0; j < rec.targets_mhz.size(); ++j) {
              std::fprintf(stderr, "  device %zu: recorded %.17g got %.17g\n",
                           j, rec.targets_mhz[j],
                           j < d.target_freqs_mhz.size()
                               ? d.target_freqs_mhz[j]
                               : std::nan(""));
            }
          }
        }
      }
    }
    std::printf(
        "[replay] re-solved %zu periods: %zu bit-identical, %zu cache-path "
        "(checked at %g MHz), %zu mismatches\n",
        stats.replayed, stats.exact, stats.cache_checked, kCacheTolMhz,
        stats.mismatches);
    std::printf(
        "[solver] periods by tier: cache=%zu structured=%zu warm=%zu "
        "fast=%zu cold=%zu\n",
        stats.by_tier[0], stats.by_tier[1], stats.by_tier[2],
        stats.by_tier[3], stats.by_tier[4]);
    if (stats.by_tier[2] + stats.by_tier[3] + stats.by_tier[1] > 0) {
      std::printf(
          "[solver] cross-checked against pure active-set re-solves: "
          "%zu/%zu warm+fast periods bit-identical, %zu/%zu structured "
          "periods within %g MHz\n",
          stats.shortcut_crosschecked, stats.by_tier[2] + stats.by_tier[3],
          stats.structured_crosschecked, stats.by_tier[1], kCacheTolMhz);
    }

    // Attribution summary: prediction-error residuals measure how wrong the
    // model was; binding fractions measure how often the constraint box —
    // SLO floors, thermal ceilings — shaped the decision instead.
    std::size_t resid_n = 0;
    double resid_sum = 0.0;
    std::size_t acted = 0;
    std::size_t floor_bound = 0;
    std::size_t ceil_bound = 0;
    for (const FlightRecord& rec : records) {
      if (rec.outcome_filled && rec.mpc.present) {
        resid_sum += std::abs(rec.power_residual_w);
        ++resid_n;
      }
      if (!rec.mpc.present) continue;
      ++acted;
      bool fb = false;
      bool cb = false;
      for (const int b : rec.mpc.floor_binding) fb = fb || b != 0;
      for (const int b : rec.mpc.ceiling_binding) cb = cb || b != 0;
      if (fb) ++floor_bound;
      if (cb) ++ceil_bound;
    }
    if (acted > 0) {
      std::printf(
          "[attribution] mean |power residual| %.3f W over %zu periods; "
          "floor binding %.1f%%, ceiling binding %.1f%% of %zu acted "
          "periods\n",
          resid_n > 0 ? resid_sum / static_cast<double>(resid_n) : 0.0,
          resid_n,
          100.0 * static_cast<double>(floor_bound) /
              static_cast<double>(acted),
          100.0 * static_cast<double>(ceil_bound) /
              static_cast<double>(acted),
          acted);
    }

    // Fail-safe attribution: count governor engagements (transitions into
    // state 1) per recorded cause, scanning each pid's records in order.
    {
      std::map<int, int> prev_state;
      std::map<std::string, std::size_t> by_cause;
      for (const FlightRecord& rec : records) {
        auto [it, inserted] = prev_state.emplace(rec.pid, 0);
        if (rec.failsafe_state == 1 && it->second != 1) {
          by_cause[rec.failsafe_cause.empty() ? "unknown"
                                              : rec.failsafe_cause]++;
        }
        it->second = rec.failsafe_state;
      }
      if (!by_cause.empty()) {
        std::printf("[failsafe] engagements by cause:");
        for (const auto& [cause, count] : by_cause) {
          std::printf(" %s=%zu", cause.c_str(), count);
        }
        std::printf("\n");
      }
    }

    for (const std::string& spec : counterfactuals) {
      std::optional<double> cap;
      std::optional<std::size_t> horizon;
      if (spec.rfind("cap=", 0) == 0) {
        cap = std::stod(spec.substr(4));
      } else if (spec.rfind("horizon=", 0) == 0) {
        const long n = std::stol(spec.substr(8));
        if (n < 1) return usage(argv[0]);
        horizon = static_cast<std::size_t>(n);
      } else {
        return usage(argv[0]);
      }
      double d_target = 0.0;   // mean per-device cap shift vs recorded
      double d_power = 0.0;    // mean shift in p(k+1|k)
      std::size_t floor_cf = 0;
      std::size_t solved = 0;
      for (const FlightRecord& rec : records) {
        if (!rec.mpc.present) continue;
        const capgpu::control::MpcDecision d = resolve(rec, cap, horizon);
        ++solved;
        const std::size_t n = rec.targets_mhz.size();
        double shift = 0.0;
        for (std::size_t j = 0; j < n && j < d.target_freqs_mhz.size();
             ++j) {
          shift += d.target_freqs_mhz[j] - rec.targets_mhz[j];
        }
        d_target += n > 0 ? shift / static_cast<double>(n) : 0.0;
        d_power += d.predicted_power_watts - rec.mpc.predicted_power_w;
        bool fb = false;
        for (const int b : d.floor_binding) fb = fb || b != 0;
        if (fb) ++floor_cf;
      }
      if (solved == 0) continue;
      std::printf(
          "[counterfactual] %s over %zu periods: mean cap shift %+.2f MHz, "
          "mean p(k+1|k) shift %+.2f W, floor binding %.1f%% (recorded "
          "%.1f%%)\n",
          spec.c_str(), solved, d_target / static_cast<double>(solved),
          d_power / static_cast<double>(solved),
          100.0 * static_cast<double>(floor_cf) /
              static_cast<double>(solved),
          acted > 0 ? 100.0 * static_cast<double>(floor_bound) /
                          static_cast<double>(acted)
                    : 0.0);
    }

    if (stats.mismatches > 0) {
      std::printf("[replay] FAIL: %zu of %zu periods drifted\n",
                  stats.mismatches, stats.replayed);
      return 1;
    }
    std::printf("[replay] PASS: every re-solved period reproduced the "
                "recorded caps\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
    return 2;
  }
}
