#!/usr/bin/env bash
# Chaos verification: build, run the `chaos`-labeled test suite
# (fault-injection + fail-safe), then the reference chaos bench. All
# injection is driven by fixed seeds, so this run is bit-for-bit
# reproducible; any shape-check FAIL in the bench output fails the
# script. See docs/fault_model.md.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S . >/dev/null
cmake --build build --target capgpu_chaos_tests bench_fault_chaos \
  bench_chaos_campaigns

ctest --test-dir build -L chaos -j"$(nproc)" --output-on-failure

for bench in bench_fault_chaos bench_chaos_campaigns; do
  echo "==== $bench (fixed seeds)"
  out=$(./build/bench/"$bench" 2>&1)
  echo "$out"
  if grep -q FAIL <<<"$out"; then
    echo "^^^ shape-check FAIL in $bench" >&2
    exit 1
  fi
done
