#!/usr/bin/env bash
# UndefinedBehaviorSanitizer verification: configures the `ubsan` preset
# (CAPGPU_SANITIZER=undefined into build-ubsan/), builds everything, and
# runs the full test suite under UBSan. Any undefined-behavior report
# aborts the run. Complements scripts/run_tsan.sh (data races).
set -euo pipefail
cd "$(dirname "$0")/.."

cmake --preset ubsan >/dev/null
cmake --build build-ubsan -j"$(nproc)"

UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
  ctest --test-dir build-ubsan -j"$(nproc)" --output-on-failure
