#!/usr/bin/env bash
# Performance report: builds Release, runs the engine, pipeline,
# control-solve and fleet self-perf microbenchmarks, then times one parallel sweep
# (bench_fig6_setpoint_sweep) at --jobs 1 vs --jobs $(nproc) and verifies
# the outputs are byte-identical. Everything lands in BENCH_perf.json; the
# format is documented in docs/performance.md.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_perf.json}"
JOBS="$(nproc)"

cmake --preset release >/dev/null
cmake --build build-release -j"$JOBS" \
  --target bench_engine_selfperf bench_pipeline_selfperf \
  bench_control_selfperf bench_fleet_selfperf \
  bench_fig6_setpoint_sweep >/dev/null

echo "==== engine self-perf (Release)"
./build-release/bench/bench_engine_selfperf --out "$OUT.selfperf"

echo "==== pipeline self-perf (Release)"
./build-release/bench/bench_pipeline_selfperf --out "$OUT.pipeline"

echo "==== control self-perf (Release)"
./build-release/bench/bench_control_selfperf --reps 15 --out "$OUT.control"

echo "==== fleet self-perf (Release)"
./build-release/bench/bench_fleet_selfperf --reps 3 --out "$OUT.fleet"

echo "==== fig6 sweep: --jobs 1 vs --jobs $JOBS"
run_sweep() { # $1 = jobs, $2 = output file; prints elapsed seconds
  local t0 t1
  t0=$(date +%s.%N)
  ./build-release/bench/bench_fig6_setpoint_sweep --jobs "$1" > "$2"
  t1=$(date +%s.%N)
  echo "$t0 $t1" | awk '{printf "%.3f", $2 - $1}'
}
seq_s=$(run_sweep 1 /tmp/fig6_jobs1.out)
par_s=$(run_sweep "$JOBS" /tmp/fig6_jobsN.out)

if ! diff -q /tmp/fig6_jobs1.out /tmp/fig6_jobsN.out >/dev/null; then
  echo "FAIL: sweep output differs between --jobs 1 and --jobs $JOBS" >&2
  diff /tmp/fig6_jobs1.out /tmp/fig6_jobsN.out | head >&2
  exit 1
fi
echo "  byte-identical output: PASS"
echo "  sequential ${seq_s}s, parallel (${JOBS} jobs) ${par_s}s"

jq --argjson seq "$seq_s" --argjson par "$par_s" --argjson jobs "$JOBS" \
  --slurpfile pipeline "$OUT.pipeline" \
  --slurpfile control "$OUT.control" \
  --slurpfile fleet "$OUT.fleet" \
  '. + $pipeline[0] + $control[0] + $fleet[0]
     + {parallel_sweep: {bench: "bench_fig6_setpoint_sweep",
                         scenarios: 35,
                         jobs: $jobs,
                         sequential_s: $seq,
                         parallel_s: $par,
                         speedup: (if $par > 0 then $seq / $par else 0 end),
                         byte_identical: true}}' \
  "$OUT.selfperf" > "$OUT"
rm -f "$OUT.selfperf" "$OUT.pipeline" "$OUT.control" "$OUT.fleet"
echo "  [perf] $OUT"
