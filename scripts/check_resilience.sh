#!/usr/bin/env bash
# Chaos-campaign resilience gate: run the reference PDU-brownout campaign
# (bench_chaos_campaigns), check the --resilience-out scorecard is
# byte-identical across reruns and --jobs values, then gate on the scores:
# the health-managed coordinator must burn strictly less SLO error budget
# during the fault than the health-disabled baseline, must actually detect
# the fault, and must recover within a pinned MTTR bound. Registered as
# the `chaos` CTest label; scripts/check.sh runs it via ctest.
#
# Usage: check_resilience.sh <bench_chaos_campaigns_binary>
set -euo pipefail

BENCH="${1:?usage: check_resilience.sh <bench_chaos_campaigns>}"

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

"$BENCH" --resilience-out "$tmp/resilience.json" --jobs 1 > "$tmp/out.txt"
[ -s "$tmp/resilience.json" ] || { echo "FAIL: resilience.json empty"; exit 1; }

if grep -q FAIL "$tmp/out.txt"; then
  echo "FAIL: bench shape checks failed"
  sed 's/^/  | /' "$tmp/out.txt"
  exit 1
fi

# Determinism: a rerun and a parallel run must produce the same bytes.
"$BENCH" --resilience-out "$tmp/rerun.json" --jobs 1 > /dev/null
cmp "$tmp/resilience.json" "$tmp/rerun.json" \
  || { echo "FAIL: two identical runs wrote different scorecards"; exit 1; }
"$BENCH" --resilience-out "$tmp/jobs4.json" --jobs 4 > /dev/null
cmp "$tmp/resilience.json" "$tmp/jobs4.json" \
  || { echo "FAIL: --jobs 4 scorecard differs from --jobs 1"; exit 1; }

# Scorecard gates.
by() {
  jq -r ".campaigns[] | select(.variant == \"$1\") | .$2" \
    "$tmp/resilience.json"
}
base_burn=$(by baseline slo_burn_during)
hard_burn=$(by hardened slo_burn_during)
base_detect=$(by baseline detected_at_s)
hard_detect=$(by hardened detected_at_s)
hard_mttr=$(by hardened mttr_s)

awk -v h="$hard_burn" -v b="$base_burn" 'BEGIN { exit !(h < b) }' \
  || { echo "FAIL: hardened burn $hard_burn not < baseline $base_burn"; exit 1; }
awk -v d="$hard_detect" 'BEGIN { exit !(d >= 0) }' \
  || { echo "FAIL: hardened coordinator never detected the fault"; exit 1; }
awk -v d="$base_detect" 'BEGIN { exit !(d < 0) }' \
  || { echo "FAIL: health-disabled baseline claims a detection"; exit 1; }
awk -v m="$hard_mttr" 'BEGIN { exit !(m >= 0 && m <= 120) }' \
  || { echo "FAIL: hardened MTTR $hard_mttr outside [0, 120] s"; exit 1; }

echo "resilience gate: PASS (burn $hard_burn < $base_burn during the fault, MTTR $hard_mttr s)"
