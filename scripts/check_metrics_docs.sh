#!/usr/bin/env bash
# Fails when a metric name registered in src/telemetry/metric_names.hpp is
# not documented (backticked) in docs/observability.md. Run from the repo
# root; the CTest target `metrics_docs_coverage` wires this in.
set -euo pipefail

cd "$(dirname "$0")/.."

names_file=src/telemetry/metric_names.hpp
docs_file=docs/observability.md

[[ -f "$names_file" ]] || { echo "missing $names_file" >&2; exit 1; }
[[ -f "$docs_file" ]] || { echo "missing $docs_file" >&2; exit 1; }

# Every quoted capgpu_* literal in the names header is a registered family.
mapfile -t names < <(grep -oE '"capgpu_[a-z0-9_]+"' "$names_file" | tr -d '"' | sort -u)

if [[ ${#names[@]} -eq 0 ]]; then
  echo "no metric names found in $names_file" >&2
  exit 1
fi

missing=0
for name in "${names[@]}"; do
  if ! grep -qF "\`$name\`" "$docs_file"; then
    echo "undocumented metric: $name (add it to $docs_file)" >&2
    missing=1
  fi
done

# Reverse direction: every backticked capgpu_* metric family the docs
# mention must still exist in the names header (catches stale docs after
# a rename). Only counter/gauge/histogram family names are considered —
# i.e. backticked identifiers that start with capgpu_.
stale=0
while IFS= read -r doc_name; do
  found=0
  for name in "${names[@]}"; do
    [[ "$name" == "$doc_name" ]] && { found=1; break; }
  done
  if [[ $found -eq 0 ]]; then
    echo "stale doc entry: $doc_name is not registered in $names_file" >&2
    stale=1
  fi
done < <(grep -oE '`capgpu_[a-z0-9_]+`' "$docs_file" | tr -d '`' | sort -u)

if [[ $missing -ne 0 || $stale -ne 0 ]]; then
  exit 1
fi

# Trace vocabulary: every literal instant-event name and named track
# registered in src/ must be documented (backticked) in the docs, so the
# Perfetto/JSONL reference stays complete. Calls are flattened to one
# line first because instant() arguments often wrap; only string-literal
# names are checked (dynamic per-stream tracks like "gpu0:resnet50" are
# built at runtime and documented as patterns).
mapfile -t trace_names < <(
  find src -name '*.cpp' -o -name '*.hpp' | sort | xargs cat | tr '\n' ' ' |
    grep -oE '\.instant\([^"]*"[a-z0-9_]+"|register_track\("[a-z0-9_]+"' |
    grep -oE '"[a-z0-9_]+"' | tr -d '"' | sort -u
)

if [[ ${#trace_names[@]} -eq 0 ]]; then
  echo "no trace event/track names found under src/" >&2
  exit 1
fi

trace_missing=0
for name in "${trace_names[@]}"; do
  if ! grep -qF "\`$name\`" "$docs_file"; then
    echo "undocumented trace event/track: $name (add it to $docs_file)" >&2
    trace_missing=1
  fi
done

if [[ $trace_missing -ne 0 ]]; then
  exit 1
fi

echo "all ${#names[@]} metric names and ${#trace_names[@]} trace names documented in $docs_file"
