#!/usr/bin/env bash
# Fleet determinism gate: the sharded fleet scenario must be bit-equal to
# the serial reference no matter how it is scheduled. Runs the 16-rig gate
# topology of bench_fleet_selfperf (which itself compares the cascade
# decision trail against run_serial_reference) across a sweep of shard
# layouts and byte-compares every telemetry artifact — Prometheus metrics,
# per-request energy report, flight-recorder JSONL — between the serial
# (--shards 1 --workers 1) and parallel (--shards 8 --workers 4) layouts.
# Then the fleet chaos campaign's --resilience-out scorecard is compared
# across --shards 1 vs --shards 8. Registered as the `fleet_gate` CTest
# test (label `fleet`); scripts/check.sh runs it via ctest.
#
# Usage: check_fleet.sh <bench_fleet_selfperf> <bench_chaos_campaigns>
set -euo pipefail

FLEET="${1:?usage: check_fleet.sh <bench_fleet_selfperf> <bench_chaos_campaigns>}"
CHAOS="${2:?usage: check_fleet.sh <bench_fleet_selfperf> <bench_chaos_campaigns>}"

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

run_gate() { # $1 = shards, $2 = workers, $3 = artifact prefix
  "$FLEET" --gate 1 --shards "$1" --workers "$2" \
    --metrics-out "$tmp/$3.metrics" \
    --energy-out "$tmp/$3.energy" \
    --flight-out "$tmp/$3.flight" > "$tmp/$3.out"
  if grep -q FAIL "$tmp/$3.out"; then
    echo "FAIL: gate run ($1 shards, $2 workers) diverged from serial"
    sed 's/^/  | /' "$tmp/$3.out"
    exit 1
  fi
}

run_gate 1 1 serial
run_gate 8 4 sharded
for f in metrics energy flight; do
  [ -s "$tmp/serial.$f" ] || { echo "FAIL: $f artifact empty"; exit 1; }
  cmp "$tmp/serial.$f" "$tmp/sharded.$f" \
    || { echo "FAIL: $f artifact differs between shard layouts"; exit 1; }
done

# Shard-count sweep: ragged chunking (3), one rig per shard (16), and more
# shards than rigs (32, clamped) must all pass the bench's internal
# decision compare against the serial reference.
for s in 3 16 32; do
  run_gate "$s" 2 "sweep$s"
done

# Fleet chaos campaign: the resilience scorecard must not move a byte when
# the fleet is resharded.
"$CHAOS" --shards 1 --jobs 1 --resilience-out "$tmp/res_s1.json" > /dev/null
"$CHAOS" --shards 8 --jobs 2 --resilience-out "$tmp/res_s8.json" > /dev/null
[ -s "$tmp/res_s1.json" ] || { echo "FAIL: resilience scorecard empty"; exit 1; }
cmp "$tmp/res_s1.json" "$tmp/res_s8.json" \
  || { echo "FAIL: campaign scorecard differs between --shards 1 and 8"; exit 1; }
jq -e '.campaigns | map(select(.variant == "fleet")) | length >= 1' \
  "$tmp/res_s1.json" > /dev/null \
  || { echo "FAIL: no fleet-variant entry in the campaign scorecard"; exit 1; }

echo "fleet gate: PASS (serial/sharded artifacts byte-identical, shard sweep clean)"
