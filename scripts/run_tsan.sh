#!/usr/bin/env bash
# ThreadSanitizer verification of the parallel runner: configures the
# `tsan` preset (CAPGPU_SANITIZER=thread into build-tsan/), builds the
# runner test suite, and runs the `runner`-labeled tests under TSan, then
# the sharded fleet gate (rigs stepped on the pool, telemetry scopes
# merged at the barrier) with more shards than workers so hand-offs are
# exercised. Any data race aborts the run. See docs/performance.md.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake --preset tsan >/dev/null
cmake --build build-tsan -j"$(nproc)" --target capgpu_runner_tests \
  bench_fleet_selfperf

TSAN_OPTIONS="halt_on_error=1" \
  ctest --test-dir build-tsan -L runner -j"$(nproc)" --output-on-failure

echo "==== sharded fleet gate under TSan"
TSAN_OPTIONS="halt_on_error=1" \
  ./build-tsan/bench/bench_fleet_selfperf --gate 1 --shards 8 --workers 4
