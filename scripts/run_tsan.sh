#!/usr/bin/env bash
# ThreadSanitizer verification of the parallel runner: configures the
# `tsan` preset (CAPGPU_SANITIZER=thread into build-tsan/), builds the
# runner test suite, and runs the `runner`-labeled tests under TSan. Any
# data race aborts the run. See docs/performance.md.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake --preset tsan >/dev/null
cmake --build build-tsan -j"$(nproc)" --target capgpu_runner_tests

TSAN_OPTIONS="halt_on_error=1" \
  ctest --test-dir build-tsan -L runner -j"$(nproc)" --output-on-failure
