#!/usr/bin/env bash
# Full repository check: configure, build, run the test suite, then every
# bench (each bench prints PASS/FAIL shape checks; any FAIL fails this
# script). Mirrors what CI should run.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build -j"$(nproc)" --output-on-failure

# Offline report-tool smoke (also part of the suite above; kept explicit so
# a filtered ctest cache can't silently skip it).
ctest --test-dir build -L report --output-on-failure

# Flight-recorder suite: JSONL round-trip, replay determinism across
# --jobs, and the capgpu_ctl_replay bit-identical re-solve gate.
ctest --test-dir build -L flight --output-on-failure

# Chaos suite: fault-injection / fail-safe / rig-health unit tests plus the
# campaign resilience gate (scorecard determinism across --jobs, hardened
# coordinator strictly better than the health-disabled baseline).
ctest --test-dir build -L chaos --output-on-failure

# Fleet suite: cascade and fleet-sim unit tests plus the fleet_gate
# determinism check (telemetry artifacts byte-identical across shard
# layouts, scorecard stable across --shards).
ctest --test-dir build -L fleet --output-on-failure

# Release perf smoke: the allocation-free control-solve tests plus short
# pipeline and control-solve self-perf runs. Gates on the reports' shape
# (speedup fields present), on the pooled hot path not regressing below the
# legacy pipeline, and on the tiered control solve not regressing below the
# dense active-set path; the full-length numbers live in BENCH_perf.json
# via scripts/run_perf.sh.
cmake --preset release >/dev/null
cmake --build build-release -j"$(nproc)" >/dev/null
ctest --test-dir build-release -L perf --output-on-failure
./build-release/bench/bench_pipeline_selfperf --reps 3 --out /tmp/check_pipeline.json
jq -e '.pipeline_selfperf.workloads | length > 0 and all(.speedup != null)' \
  /tmp/check_pipeline.json >/dev/null \
  || { echo "FAIL: pipeline_selfperf report missing speedup fields" >&2; exit 1; }
jq -e '.pipeline_selfperf.worst_speedup >= 1.0' /tmp/check_pipeline.json >/dev/null \
  || { echo "FAIL: pooled pipeline slower than legacy (worst_speedup < 1.0)" >&2; exit 1; }
jq -e '.flight_overhead | .overhead_frac <= .budget_frac' /tmp/check_pipeline.json >/dev/null \
  || { echo "FAIL: flight-recorder overhead exceeds the 5% budget" >&2; exit 1; }
jq -e '.energy_overhead | .overhead_frac <= .budget_frac' /tmp/check_pipeline.json >/dev/null \
  || { echo "FAIL: energy-ledger overhead exceeds the 5% budget" >&2; exit 1; }
./build-release/bench/bench_control_selfperf --reps 3 --out /tmp/check_control.json
jq -e '.control_selfperf.configs | length > 0 and all(.fast_speedup != null)' \
  /tmp/check_control.json >/dev/null \
  || { echo "FAIL: control_selfperf report missing speedup fields" >&2; exit 1; }
jq -e '.control_selfperf.worst_speedup >= 1.0' /tmp/check_control.json >/dev/null \
  || { echo "FAIL: fast-path control solve slower than dense active-set (worst_speedup < 1.0)" >&2; exit 1; }
./build-release/bench/bench_fleet_selfperf --reps 2 --out /tmp/check_fleet.json
jq -e '.fleet_selfperf.topologies | length > 0 and all(.deterministic)' \
  /tmp/check_fleet.json >/dev/null \
  || { echo "FAIL: fleet_selfperf sharded run diverged from the serial reference" >&2; exit 1; }
# Speedup gates need real cores; the bench records `workers` so a 1-core
# builder skips them instead of flaking.
jq -e '.fleet_selfperf | (.workers < 2) or (.worst_speedup >= 1.0)' \
  /tmp/check_fleet.json >/dev/null \
  || { echo "FAIL: sharded fleet stepping slower than serial (worst_speedup < 1.0)" >&2; exit 1; }
jq -e '.fleet_selfperf | (.workers < 4) or (.speedup_256 >= 3.0)' \
  /tmp/check_fleet.json >/dev/null \
  || { echo "FAIL: fleet256 sharded speedup below 3x on >= 4 workers" >&2; exit 1; }

status=0
for b in build/bench/*; do
  [ -x "$b" ] && [ ! -d "$b" ] || continue
  echo "==== $(basename "$b")"
  out=$("$b" --benchmark_min_time=0.05 2>&1) || status=1
  echo "$out"
  if grep -q FAIL <<<"$out"; then
    echo "^^^ shape-check FAIL in $(basename "$b")"
    status=1
  fi
done

for e in build/examples/*; do
  [ -x "$e" ] && [ ! -d "$e" ] || continue
  echo "==== example $(basename "$e")"
  "$e" >/dev/null || status=1
done

exit $status
