#!/usr/bin/env bash
# Full repository check: configure, build, run the test suite, then every
# bench (each bench prints PASS/FAIL shape checks; any FAIL fails this
# script). Mirrors what CI should run.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build -j"$(nproc)" --output-on-failure

# Offline report-tool smoke (also part of the suite above; kept explicit so
# a filtered ctest cache can't silently skip it).
ctest --test-dir build -L report --output-on-failure

status=0
for b in build/bench/*; do
  [ -x "$b" ] && [ ! -d "$b" ] || continue
  echo "==== $(basename "$b")"
  out=$("$b" --benchmark_min_time=0.05 2>&1) || status=1
  echo "$out"
  if grep -q FAIL <<<"$out"; then
    echo "^^^ shape-check FAIL in $(basename "$b")"
    status=1
  fi
done

for e in build/examples/*; do
  [ -x "$e" ] && [ ! -d "$e" ] || continue
  echo "==== example $(basename "$e")"
  "$e" >/dev/null || status=1
done

exit $status
