#!/usr/bin/env bash
# Energy-ledger smoke: run a fig6-style set-point sweep with --energy-out,
# check the report is byte-identical across reruns and --jobs values (the
# ordered parallel merge must not leak scheduling), then feed it to
# capgpu_report, which must print the joules-per-inference efficiency
# frontier with a dominant energy stage per cap. Registered as the `report`
# CTest label; scripts/check.sh runs it via ctest.
#
# Usage: check_energy.sh <bench_binary> <capgpu_report_binary>
set -euo pipefail

BENCH="${1:?usage: check_energy.sh <bench> <capgpu_report>}"
REPORT="${2:?usage: check_energy.sh <bench> <capgpu_report>}"

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

"$BENCH" --energy-out "$tmp/energy.json" --events-out "$tmp/events.jsonl" \
         --jobs 1 > /dev/null
[ -s "$tmp/energy.json" ] || { echo "FAIL: energy.json empty"; exit 1; }

# Determinism: a rerun and a parallel run must produce the same bytes.
"$BENCH" --energy-out "$tmp/rerun.json" --jobs 1 > /dev/null
cmp "$tmp/energy.json" "$tmp/rerun.json" \
  || { echo "FAIL: two identical runs wrote different energy reports"; exit 1; }
"$BENCH" --energy-out "$tmp/jobs4.json" --jobs 4 > /dev/null
cmp "$tmp/energy.json" "$tmp/jobs4.json" \
  || { echo "FAIL: --jobs 4 energy report differs from --jobs 1"; exit 1; }

# The report must carry the per-cap efficiency summary and per-model
# stage attribution.
grep -q '"caps"' "$tmp/energy.json" \
  || { echo "FAIL: energy report missing caps summary"; exit 1; }
grep -q '"joules_per_request"' "$tmp/energy.json" \
  || { echo "FAIL: energy report missing joules_per_request"; exit 1; }
grep -q '"dominant_stage"' "$tmp/energy.json" \
  || { echo "FAIL: energy report missing dominant_stage"; exit 1; }

# capgpu_report must render the efficiency frontier from it (energy.json is
# the 5th positional; '-' skips the optional slots in between).
"$REPORT" "$tmp/events.jsonl" - - - "$tmp/energy.json" > "$tmp/report.txt" \
  || { echo "FAIL: capgpu_report rejected the energy report"; exit 1; }
grep -q "Energy efficiency frontier" "$tmp/report.txt" \
  || { echo "FAIL: efficiency frontier table missing from report"; exit 1; }
grep -q "J/inference" "$tmp/report.txt" \
  || { echo "FAIL: joules-per-inference column missing from report"; exit 1; }

echo "energy smoke: PASS"
