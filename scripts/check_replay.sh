#!/usr/bin/env bash
# Flight-recorder smoke: record a closed-loop bench run with --flight-out,
# check the log is byte-identical across reruns and --jobs values (the
# ordered parallel merge must not leak scheduling), then feed it to
# capgpu_ctl_replay, which re-solves every recorded period and asserts the
# caps reproduce bit-identically. Registered as the `flight` CTest label;
# scripts/check.sh runs it via ctest.
#
# Usage: check_replay.sh <bench_binary> <capgpu_ctl_replay_binary>
set -euo pipefail

BENCH="${1:?usage: check_replay.sh <bench> <capgpu_ctl_replay>}"
REPLAY="${2:?usage: check_replay.sh <bench> <capgpu_ctl_replay>}"

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

"$BENCH" --flight-out "$tmp/flight.jsonl" --jobs 1 > /dev/null
[ -s "$tmp/flight.jsonl" ] || { echo "FAIL: flight.jsonl empty"; exit 1; }

# Determinism: a rerun and a parallel run must produce the same bytes.
"$BENCH" --flight-out "$tmp/rerun.jsonl" --jobs 1 > /dev/null
cmp "$tmp/flight.jsonl" "$tmp/rerun.jsonl" \
  || { echo "FAIL: two identical runs wrote different flight logs"; exit 1; }
"$BENCH" --flight-out "$tmp/jobs2.jsonl" --jobs 2 > /dev/null
cmp "$tmp/flight.jsonl" "$tmp/jobs2.jsonl" \
  || { echo "FAIL: --jobs 2 flight log differs from --jobs 1"; exit 1; }

# Replay: every recorded period must re-solve to bit-identical caps.
"$REPLAY" "$tmp/flight.jsonl" > "$tmp/replay.txt" \
  || { echo "FAIL: capgpu_ctl_replay found drifting periods"; \
       sed 's/^/  | /' "$tmp/replay.txt"; exit 1; }
grep -q "PASS" "$tmp/replay.txt" \
  || { echo "FAIL: replay output missing PASS"; exit 1; }

# Counterfactual what-ifs must run and report.
"$REPLAY" "$tmp/flight.jsonl" --counterfactual cap=800 \
          --counterfactual horizon=4 > "$tmp/cf.txt"
grep -q "counterfactual. cap=800" "$tmp/cf.txt" \
  || { echo "FAIL: cap counterfactual missing from output"; exit 1; }
grep -q "counterfactual. horizon=4" "$tmp/cf.txt" \
  || { echo "FAIL: horizon counterfactual missing from output"; exit 1; }

echo "replay smoke: PASS"
