#!/usr/bin/env bash
# Smoke test for the offline report tool: run a small bench with the
# observability sinks enabled, feed the artifacts to capgpu_report, and
# check the latency-attribution table comes out. Registered as the
# `report` CTest label; scripts/check.sh runs it via ctest.
#
# Usage: check_report.sh <bench_binary> <capgpu_report_binary>
set -euo pipefail

BENCH="${1:?usage: check_report.sh <bench> <capgpu_report>}"
REPORT="${2:?usage: check_report.sh <bench> <capgpu_report>}"

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

"$BENCH" --events-out "$tmp/events.jsonl" \
         --slo-report-out "$tmp/slo.json" > /dev/null

[ -s "$tmp/events.jsonl" ] || { echo "FAIL: events.jsonl empty"; exit 1; }
[ -s "$tmp/slo.json" ] || { echo "FAIL: slo.json empty"; exit 1; }

"$REPORT" "$tmp/events.jsonl" "$tmp/slo.json" > "$tmp/report.txt"

fail=0
for needle in \
    "Latency attribution by power cap" \
    "dominant stage" \
    "Burn-rate alerts vs protection events" \
    "SLO error-budget summary"; do
  if ! grep -q "$needle" "$tmp/report.txt"; then
    echo "FAIL: report missing \"$needle\""
    fail=1
  fi
done

# The attribution table must name a real pipeline stage as dominant.
if ! grep -E 'dominant stage at .*: (preprocess_queue|cpu_preprocess|gpu_batch_queue|gpu_exec)' \
    "$tmp/report.txt" > /dev/null; then
  echo "FAIL: no dominant-stage attribution line"
  fail=1
fi

if [ "$fail" -ne 0 ]; then
  sed 's/^/  | /' "$tmp/report.txt"
  exit 1
fi
echo "report smoke: PASS"
