# Empty dependencies file for capgpu_tests.
# This may be replaced when dependencies are built.
