
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/baselines/fixed_step_test.cpp" "tests/CMakeFiles/capgpu_tests.dir/baselines/fixed_step_test.cpp.o" "gcc" "tests/CMakeFiles/capgpu_tests.dir/baselines/fixed_step_test.cpp.o.d"
  "/root/repo/tests/baselines/multi_cpu_test.cpp" "tests/CMakeFiles/capgpu_tests.dir/baselines/multi_cpu_test.cpp.o" "gcc" "tests/CMakeFiles/capgpu_tests.dir/baselines/multi_cpu_test.cpp.o.d"
  "/root/repo/tests/baselines/p_baselines_test.cpp" "tests/CMakeFiles/capgpu_tests.dir/baselines/p_baselines_test.cpp.o" "gcc" "tests/CMakeFiles/capgpu_tests.dir/baselines/p_baselines_test.cpp.o.d"
  "/root/repo/tests/common/error_log_test.cpp" "tests/CMakeFiles/capgpu_tests.dir/common/error_log_test.cpp.o" "gcc" "tests/CMakeFiles/capgpu_tests.dir/common/error_log_test.cpp.o.d"
  "/root/repo/tests/common/options_test.cpp" "tests/CMakeFiles/capgpu_tests.dir/common/options_test.cpp.o" "gcc" "tests/CMakeFiles/capgpu_tests.dir/common/options_test.cpp.o.d"
  "/root/repo/tests/common/rng_test.cpp" "tests/CMakeFiles/capgpu_tests.dir/common/rng_test.cpp.o" "gcc" "tests/CMakeFiles/capgpu_tests.dir/common/rng_test.cpp.o.d"
  "/root/repo/tests/common/umbrella_test.cpp" "tests/CMakeFiles/capgpu_tests.dir/common/umbrella_test.cpp.o" "gcc" "tests/CMakeFiles/capgpu_tests.dir/common/umbrella_test.cpp.o.d"
  "/root/repo/tests/common/units_test.cpp" "tests/CMakeFiles/capgpu_tests.dir/common/units_test.cpp.o" "gcc" "tests/CMakeFiles/capgpu_tests.dir/common/units_test.cpp.o.d"
  "/root/repo/tests/control/delta_sigma_test.cpp" "tests/CMakeFiles/capgpu_tests.dir/control/delta_sigma_test.cpp.o" "gcc" "tests/CMakeFiles/capgpu_tests.dir/control/delta_sigma_test.cpp.o.d"
  "/root/repo/tests/control/latency_model_test.cpp" "tests/CMakeFiles/capgpu_tests.dir/control/latency_model_test.cpp.o" "gcc" "tests/CMakeFiles/capgpu_tests.dir/control/latency_model_test.cpp.o.d"
  "/root/repo/tests/control/mpc_cache_test.cpp" "tests/CMakeFiles/capgpu_tests.dir/control/mpc_cache_test.cpp.o" "gcc" "tests/CMakeFiles/capgpu_tests.dir/control/mpc_cache_test.cpp.o.d"
  "/root/repo/tests/control/mpc_test.cpp" "tests/CMakeFiles/capgpu_tests.dir/control/mpc_test.cpp.o" "gcc" "tests/CMakeFiles/capgpu_tests.dir/control/mpc_test.cpp.o.d"
  "/root/repo/tests/control/p_controller_test.cpp" "tests/CMakeFiles/capgpu_tests.dir/control/p_controller_test.cpp.o" "gcc" "tests/CMakeFiles/capgpu_tests.dir/control/p_controller_test.cpp.o.d"
  "/root/repo/tests/control/power_model_test.cpp" "tests/CMakeFiles/capgpu_tests.dir/control/power_model_test.cpp.o" "gcc" "tests/CMakeFiles/capgpu_tests.dir/control/power_model_test.cpp.o.d"
  "/root/repo/tests/control/prbs_test.cpp" "tests/CMakeFiles/capgpu_tests.dir/control/prbs_test.cpp.o" "gcc" "tests/CMakeFiles/capgpu_tests.dir/control/prbs_test.cpp.o.d"
  "/root/repo/tests/control/qp_reference_test.cpp" "tests/CMakeFiles/capgpu_tests.dir/control/qp_reference_test.cpp.o" "gcc" "tests/CMakeFiles/capgpu_tests.dir/control/qp_reference_test.cpp.o.d"
  "/root/repo/tests/control/qp_test.cpp" "tests/CMakeFiles/capgpu_tests.dir/control/qp_test.cpp.o" "gcc" "tests/CMakeFiles/capgpu_tests.dir/control/qp_test.cpp.o.d"
  "/root/repo/tests/control/rls_test.cpp" "tests/CMakeFiles/capgpu_tests.dir/control/rls_test.cpp.o" "gcc" "tests/CMakeFiles/capgpu_tests.dir/control/rls_test.cpp.o.d"
  "/root/repo/tests/control/stability_test.cpp" "tests/CMakeFiles/capgpu_tests.dir/control/stability_test.cpp.o" "gcc" "tests/CMakeFiles/capgpu_tests.dir/control/stability_test.cpp.o.d"
  "/root/repo/tests/control/sysid_test.cpp" "tests/CMakeFiles/capgpu_tests.dir/control/sysid_test.cpp.o" "gcc" "tests/CMakeFiles/capgpu_tests.dir/control/sysid_test.cpp.o.d"
  "/root/repo/tests/control/weights_test.cpp" "tests/CMakeFiles/capgpu_tests.dir/control/weights_test.cpp.o" "gcc" "tests/CMakeFiles/capgpu_tests.dir/control/weights_test.cpp.o.d"
  "/root/repo/tests/core/adaptive_test.cpp" "tests/CMakeFiles/capgpu_tests.dir/core/adaptive_test.cpp.o" "gcc" "tests/CMakeFiles/capgpu_tests.dir/core/adaptive_test.cpp.o.d"
  "/root/repo/tests/core/batching_test.cpp" "tests/CMakeFiles/capgpu_tests.dir/core/batching_test.cpp.o" "gcc" "tests/CMakeFiles/capgpu_tests.dir/core/batching_test.cpp.o.d"
  "/root/repo/tests/core/capgpu_controller_test.cpp" "tests/CMakeFiles/capgpu_tests.dir/core/capgpu_controller_test.cpp.o" "gcc" "tests/CMakeFiles/capgpu_tests.dir/core/capgpu_controller_test.cpp.o.d"
  "/root/repo/tests/core/control_loop_test.cpp" "tests/CMakeFiles/capgpu_tests.dir/core/control_loop_test.cpp.o" "gcc" "tests/CMakeFiles/capgpu_tests.dir/core/control_loop_test.cpp.o.d"
  "/root/repo/tests/core/emergency_test.cpp" "tests/CMakeFiles/capgpu_tests.dir/core/emergency_test.cpp.o" "gcc" "tests/CMakeFiles/capgpu_tests.dir/core/emergency_test.cpp.o.d"
  "/root/repo/tests/core/identify_test.cpp" "tests/CMakeFiles/capgpu_tests.dir/core/identify_test.cpp.o" "gcc" "tests/CMakeFiles/capgpu_tests.dir/core/identify_test.cpp.o.d"
  "/root/repo/tests/core/integration_test.cpp" "tests/CMakeFiles/capgpu_tests.dir/core/integration_test.cpp.o" "gcc" "tests/CMakeFiles/capgpu_tests.dir/core/integration_test.cpp.o.d"
  "/root/repo/tests/core/loop_features_test.cpp" "tests/CMakeFiles/capgpu_tests.dir/core/loop_features_test.cpp.o" "gcc" "tests/CMakeFiles/capgpu_tests.dir/core/loop_features_test.cpp.o.d"
  "/root/repo/tests/core/priority_test.cpp" "tests/CMakeFiles/capgpu_tests.dir/core/priority_test.cpp.o" "gcc" "tests/CMakeFiles/capgpu_tests.dir/core/priority_test.cpp.o.d"
  "/root/repo/tests/core/robustness_test.cpp" "tests/CMakeFiles/capgpu_tests.dir/core/robustness_test.cpp.o" "gcc" "tests/CMakeFiles/capgpu_tests.dir/core/robustness_test.cpp.o.d"
  "/root/repo/tests/core/thermal_test.cpp" "tests/CMakeFiles/capgpu_tests.dir/core/thermal_test.cpp.o" "gcc" "tests/CMakeFiles/capgpu_tests.dir/core/thermal_test.cpp.o.d"
  "/root/repo/tests/hal/compat_server_hal_test.cpp" "tests/CMakeFiles/capgpu_tests.dir/hal/compat_server_hal_test.cpp.o" "gcc" "tests/CMakeFiles/capgpu_tests.dir/hal/compat_server_hal_test.cpp.o.d"
  "/root/repo/tests/hal/hal_test.cpp" "tests/CMakeFiles/capgpu_tests.dir/hal/hal_test.cpp.o" "gcc" "tests/CMakeFiles/capgpu_tests.dir/hal/hal_test.cpp.o.d"
  "/root/repo/tests/hal/nvml_compat_test.cpp" "tests/CMakeFiles/capgpu_tests.dir/hal/nvml_compat_test.cpp.o" "gcc" "tests/CMakeFiles/capgpu_tests.dir/hal/nvml_compat_test.cpp.o.d"
  "/root/repo/tests/hal/sysfs_cpufreq_test.cpp" "tests/CMakeFiles/capgpu_tests.dir/hal/sysfs_cpufreq_test.cpp.o" "gcc" "tests/CMakeFiles/capgpu_tests.dir/hal/sysfs_cpufreq_test.cpp.o.d"
  "/root/repo/tests/hal/sysfs_rapl_test.cpp" "tests/CMakeFiles/capgpu_tests.dir/hal/sysfs_rapl_test.cpp.o" "gcc" "tests/CMakeFiles/capgpu_tests.dir/hal/sysfs_rapl_test.cpp.o.d"
  "/root/repo/tests/hw/breaker_test.cpp" "tests/CMakeFiles/capgpu_tests.dir/hw/breaker_test.cpp.o" "gcc" "tests/CMakeFiles/capgpu_tests.dir/hw/breaker_test.cpp.o.d"
  "/root/repo/tests/hw/device_models_test.cpp" "tests/CMakeFiles/capgpu_tests.dir/hw/device_models_test.cpp.o" "gcc" "tests/CMakeFiles/capgpu_tests.dir/hw/device_models_test.cpp.o.d"
  "/root/repo/tests/hw/frequency_table_test.cpp" "tests/CMakeFiles/capgpu_tests.dir/hw/frequency_table_test.cpp.o" "gcc" "tests/CMakeFiles/capgpu_tests.dir/hw/frequency_table_test.cpp.o.d"
  "/root/repo/tests/hw/power_filter_test.cpp" "tests/CMakeFiles/capgpu_tests.dir/hw/power_filter_test.cpp.o" "gcc" "tests/CMakeFiles/capgpu_tests.dir/hw/power_filter_test.cpp.o.d"
  "/root/repo/tests/linalg/cholesky_test.cpp" "tests/CMakeFiles/capgpu_tests.dir/linalg/cholesky_test.cpp.o" "gcc" "tests/CMakeFiles/capgpu_tests.dir/linalg/cholesky_test.cpp.o.d"
  "/root/repo/tests/linalg/eig_test.cpp" "tests/CMakeFiles/capgpu_tests.dir/linalg/eig_test.cpp.o" "gcc" "tests/CMakeFiles/capgpu_tests.dir/linalg/eig_test.cpp.o.d"
  "/root/repo/tests/linalg/lu_test.cpp" "tests/CMakeFiles/capgpu_tests.dir/linalg/lu_test.cpp.o" "gcc" "tests/CMakeFiles/capgpu_tests.dir/linalg/lu_test.cpp.o.d"
  "/root/repo/tests/linalg/matrix_test.cpp" "tests/CMakeFiles/capgpu_tests.dir/linalg/matrix_test.cpp.o" "gcc" "tests/CMakeFiles/capgpu_tests.dir/linalg/matrix_test.cpp.o.d"
  "/root/repo/tests/linalg/qr_test.cpp" "tests/CMakeFiles/capgpu_tests.dir/linalg/qr_test.cpp.o" "gcc" "tests/CMakeFiles/capgpu_tests.dir/linalg/qr_test.cpp.o.d"
  "/root/repo/tests/rack/allocation_test.cpp" "tests/CMakeFiles/capgpu_tests.dir/rack/allocation_test.cpp.o" "gcc" "tests/CMakeFiles/capgpu_tests.dir/rack/allocation_test.cpp.o.d"
  "/root/repo/tests/rack/coordinator_test.cpp" "tests/CMakeFiles/capgpu_tests.dir/rack/coordinator_test.cpp.o" "gcc" "tests/CMakeFiles/capgpu_tests.dir/rack/coordinator_test.cpp.o.d"
  "/root/repo/tests/sim/engine_fuzz_test.cpp" "tests/CMakeFiles/capgpu_tests.dir/sim/engine_fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/capgpu_tests.dir/sim/engine_fuzz_test.cpp.o.d"
  "/root/repo/tests/sim/engine_test.cpp" "tests/CMakeFiles/capgpu_tests.dir/sim/engine_test.cpp.o" "gcc" "tests/CMakeFiles/capgpu_tests.dir/sim/engine_test.cpp.o.d"
  "/root/repo/tests/telemetry/audit_test.cpp" "tests/CMakeFiles/capgpu_tests.dir/telemetry/audit_test.cpp.o" "gcc" "tests/CMakeFiles/capgpu_tests.dir/telemetry/audit_test.cpp.o.d"
  "/root/repo/tests/telemetry/csv_table_test.cpp" "tests/CMakeFiles/capgpu_tests.dir/telemetry/csv_table_test.cpp.o" "gcc" "tests/CMakeFiles/capgpu_tests.dir/telemetry/csv_table_test.cpp.o.d"
  "/root/repo/tests/telemetry/histogram_test.cpp" "tests/CMakeFiles/capgpu_tests.dir/telemetry/histogram_test.cpp.o" "gcc" "tests/CMakeFiles/capgpu_tests.dir/telemetry/histogram_test.cpp.o.d"
  "/root/repo/tests/telemetry/stats_test.cpp" "tests/CMakeFiles/capgpu_tests.dir/telemetry/stats_test.cpp.o" "gcc" "tests/CMakeFiles/capgpu_tests.dir/telemetry/stats_test.cpp.o.d"
  "/root/repo/tests/telemetry/timeseries_test.cpp" "tests/CMakeFiles/capgpu_tests.dir/telemetry/timeseries_test.cpp.o" "gcc" "tests/CMakeFiles/capgpu_tests.dir/telemetry/timeseries_test.cpp.o.d"
  "/root/repo/tests/workload/arrivals_test.cpp" "tests/CMakeFiles/capgpu_tests.dir/workload/arrivals_test.cpp.o" "gcc" "tests/CMakeFiles/capgpu_tests.dir/workload/arrivals_test.cpp.o.d"
  "/root/repo/tests/workload/cpu_load_test.cpp" "tests/CMakeFiles/capgpu_tests.dir/workload/cpu_load_test.cpp.o" "gcc" "tests/CMakeFiles/capgpu_tests.dir/workload/cpu_load_test.cpp.o.d"
  "/root/repo/tests/workload/dataset_io_test.cpp" "tests/CMakeFiles/capgpu_tests.dir/workload/dataset_io_test.cpp.o" "gcc" "tests/CMakeFiles/capgpu_tests.dir/workload/dataset_io_test.cpp.o.d"
  "/root/repo/tests/workload/feature_selection_test.cpp" "tests/CMakeFiles/capgpu_tests.dir/workload/feature_selection_test.cpp.o" "gcc" "tests/CMakeFiles/capgpu_tests.dir/workload/feature_selection_test.cpp.o.d"
  "/root/repo/tests/workload/latency_law_test.cpp" "tests/CMakeFiles/capgpu_tests.dir/workload/latency_law_test.cpp.o" "gcc" "tests/CMakeFiles/capgpu_tests.dir/workload/latency_law_test.cpp.o.d"
  "/root/repo/tests/workload/llm_workload_test.cpp" "tests/CMakeFiles/capgpu_tests.dir/workload/llm_workload_test.cpp.o" "gcc" "tests/CMakeFiles/capgpu_tests.dir/workload/llm_workload_test.cpp.o.d"
  "/root/repo/tests/workload/monitors_test.cpp" "tests/CMakeFiles/capgpu_tests.dir/workload/monitors_test.cpp.o" "gcc" "tests/CMakeFiles/capgpu_tests.dir/workload/monitors_test.cpp.o.d"
  "/root/repo/tests/workload/pipeline_test.cpp" "tests/CMakeFiles/capgpu_tests.dir/workload/pipeline_test.cpp.o" "gcc" "tests/CMakeFiles/capgpu_tests.dir/workload/pipeline_test.cpp.o.d"
  "/root/repo/tests/workload/queue_test.cpp" "tests/CMakeFiles/capgpu_tests.dir/workload/queue_test.cpp.o" "gcc" "tests/CMakeFiles/capgpu_tests.dir/workload/queue_test.cpp.o.d"
  "/root/repo/tests/workload/trace_gen_test.cpp" "tests/CMakeFiles/capgpu_tests.dir/workload/trace_gen_test.cpp.o" "gcc" "tests/CMakeFiles/capgpu_tests.dir/workload/trace_gen_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/capgpu_core.dir/DependInfo.cmake"
  "/root/repo/build/src/hal/CMakeFiles/capgpu_hal.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/capgpu_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/capgpu_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/capgpu_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/control/CMakeFiles/capgpu_control.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/capgpu_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/capgpu_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/capgpu_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/rack/CMakeFiles/capgpu_rack.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/capgpu_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
