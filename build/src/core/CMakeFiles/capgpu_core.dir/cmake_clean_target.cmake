file(REMOVE_RECURSE
  "libcapgpu_core.a"
)
