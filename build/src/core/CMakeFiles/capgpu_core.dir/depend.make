# Empty dependencies file for capgpu_core.
# This may be replaced when dependencies are built.
