file(REMOVE_RECURSE
  "CMakeFiles/capgpu_core.dir/batching.cpp.o"
  "CMakeFiles/capgpu_core.dir/batching.cpp.o.d"
  "CMakeFiles/capgpu_core.dir/capgpu_controller.cpp.o"
  "CMakeFiles/capgpu_core.dir/capgpu_controller.cpp.o.d"
  "CMakeFiles/capgpu_core.dir/control_loop.cpp.o"
  "CMakeFiles/capgpu_core.dir/control_loop.cpp.o.d"
  "CMakeFiles/capgpu_core.dir/emergency.cpp.o"
  "CMakeFiles/capgpu_core.dir/emergency.cpp.o.d"
  "CMakeFiles/capgpu_core.dir/identify.cpp.o"
  "CMakeFiles/capgpu_core.dir/identify.cpp.o.d"
  "CMakeFiles/capgpu_core.dir/motivation.cpp.o"
  "CMakeFiles/capgpu_core.dir/motivation.cpp.o.d"
  "CMakeFiles/capgpu_core.dir/rig.cpp.o"
  "CMakeFiles/capgpu_core.dir/rig.cpp.o.d"
  "CMakeFiles/capgpu_core.dir/thermal_governor.cpp.o"
  "CMakeFiles/capgpu_core.dir/thermal_governor.cpp.o.d"
  "libcapgpu_core.a"
  "libcapgpu_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capgpu_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
