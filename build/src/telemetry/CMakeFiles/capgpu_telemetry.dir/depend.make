# Empty dependencies file for capgpu_telemetry.
# This may be replaced when dependencies are built.
