file(REMOVE_RECURSE
  "libcapgpu_telemetry.a"
)
