file(REMOVE_RECURSE
  "CMakeFiles/capgpu_telemetry.dir/audit.cpp.o"
  "CMakeFiles/capgpu_telemetry.dir/audit.cpp.o.d"
  "CMakeFiles/capgpu_telemetry.dir/csv.cpp.o"
  "CMakeFiles/capgpu_telemetry.dir/csv.cpp.o.d"
  "CMakeFiles/capgpu_telemetry.dir/histogram.cpp.o"
  "CMakeFiles/capgpu_telemetry.dir/histogram.cpp.o.d"
  "CMakeFiles/capgpu_telemetry.dir/stats.cpp.o"
  "CMakeFiles/capgpu_telemetry.dir/stats.cpp.o.d"
  "CMakeFiles/capgpu_telemetry.dir/table.cpp.o"
  "CMakeFiles/capgpu_telemetry.dir/table.cpp.o.d"
  "CMakeFiles/capgpu_telemetry.dir/timeseries.cpp.o"
  "CMakeFiles/capgpu_telemetry.dir/timeseries.cpp.o.d"
  "libcapgpu_telemetry.a"
  "libcapgpu_telemetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capgpu_telemetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
