
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/telemetry/audit.cpp" "src/telemetry/CMakeFiles/capgpu_telemetry.dir/audit.cpp.o" "gcc" "src/telemetry/CMakeFiles/capgpu_telemetry.dir/audit.cpp.o.d"
  "/root/repo/src/telemetry/csv.cpp" "src/telemetry/CMakeFiles/capgpu_telemetry.dir/csv.cpp.o" "gcc" "src/telemetry/CMakeFiles/capgpu_telemetry.dir/csv.cpp.o.d"
  "/root/repo/src/telemetry/histogram.cpp" "src/telemetry/CMakeFiles/capgpu_telemetry.dir/histogram.cpp.o" "gcc" "src/telemetry/CMakeFiles/capgpu_telemetry.dir/histogram.cpp.o.d"
  "/root/repo/src/telemetry/stats.cpp" "src/telemetry/CMakeFiles/capgpu_telemetry.dir/stats.cpp.o" "gcc" "src/telemetry/CMakeFiles/capgpu_telemetry.dir/stats.cpp.o.d"
  "/root/repo/src/telemetry/table.cpp" "src/telemetry/CMakeFiles/capgpu_telemetry.dir/table.cpp.o" "gcc" "src/telemetry/CMakeFiles/capgpu_telemetry.dir/table.cpp.o.d"
  "/root/repo/src/telemetry/timeseries.cpp" "src/telemetry/CMakeFiles/capgpu_telemetry.dir/timeseries.cpp.o" "gcc" "src/telemetry/CMakeFiles/capgpu_telemetry.dir/timeseries.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/capgpu_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
