file(REMOVE_RECURSE
  "CMakeFiles/capgpu_workload.dir/arrivals.cpp.o"
  "CMakeFiles/capgpu_workload.dir/arrivals.cpp.o.d"
  "CMakeFiles/capgpu_workload.dir/cpu_load.cpp.o"
  "CMakeFiles/capgpu_workload.dir/cpu_load.cpp.o.d"
  "CMakeFiles/capgpu_workload.dir/dataset_io.cpp.o"
  "CMakeFiles/capgpu_workload.dir/dataset_io.cpp.o.d"
  "CMakeFiles/capgpu_workload.dir/feature_selection.cpp.o"
  "CMakeFiles/capgpu_workload.dir/feature_selection.cpp.o.d"
  "CMakeFiles/capgpu_workload.dir/model_zoo.cpp.o"
  "CMakeFiles/capgpu_workload.dir/model_zoo.cpp.o.d"
  "CMakeFiles/capgpu_workload.dir/monitors.cpp.o"
  "CMakeFiles/capgpu_workload.dir/monitors.cpp.o.d"
  "CMakeFiles/capgpu_workload.dir/pipeline.cpp.o"
  "CMakeFiles/capgpu_workload.dir/pipeline.cpp.o.d"
  "CMakeFiles/capgpu_workload.dir/queue.cpp.o"
  "CMakeFiles/capgpu_workload.dir/queue.cpp.o.d"
  "CMakeFiles/capgpu_workload.dir/trace_gen.cpp.o"
  "CMakeFiles/capgpu_workload.dir/trace_gen.cpp.o.d"
  "libcapgpu_workload.a"
  "libcapgpu_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capgpu_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
