# Empty compiler generated dependencies file for capgpu_workload.
# This may be replaced when dependencies are built.
