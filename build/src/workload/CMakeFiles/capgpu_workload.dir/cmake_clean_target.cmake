file(REMOVE_RECURSE
  "libcapgpu_workload.a"
)
