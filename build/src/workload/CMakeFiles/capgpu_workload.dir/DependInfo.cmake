
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/arrivals.cpp" "src/workload/CMakeFiles/capgpu_workload.dir/arrivals.cpp.o" "gcc" "src/workload/CMakeFiles/capgpu_workload.dir/arrivals.cpp.o.d"
  "/root/repo/src/workload/cpu_load.cpp" "src/workload/CMakeFiles/capgpu_workload.dir/cpu_load.cpp.o" "gcc" "src/workload/CMakeFiles/capgpu_workload.dir/cpu_load.cpp.o.d"
  "/root/repo/src/workload/dataset_io.cpp" "src/workload/CMakeFiles/capgpu_workload.dir/dataset_io.cpp.o" "gcc" "src/workload/CMakeFiles/capgpu_workload.dir/dataset_io.cpp.o.d"
  "/root/repo/src/workload/feature_selection.cpp" "src/workload/CMakeFiles/capgpu_workload.dir/feature_selection.cpp.o" "gcc" "src/workload/CMakeFiles/capgpu_workload.dir/feature_selection.cpp.o.d"
  "/root/repo/src/workload/model_zoo.cpp" "src/workload/CMakeFiles/capgpu_workload.dir/model_zoo.cpp.o" "gcc" "src/workload/CMakeFiles/capgpu_workload.dir/model_zoo.cpp.o.d"
  "/root/repo/src/workload/monitors.cpp" "src/workload/CMakeFiles/capgpu_workload.dir/monitors.cpp.o" "gcc" "src/workload/CMakeFiles/capgpu_workload.dir/monitors.cpp.o.d"
  "/root/repo/src/workload/pipeline.cpp" "src/workload/CMakeFiles/capgpu_workload.dir/pipeline.cpp.o" "gcc" "src/workload/CMakeFiles/capgpu_workload.dir/pipeline.cpp.o.d"
  "/root/repo/src/workload/queue.cpp" "src/workload/CMakeFiles/capgpu_workload.dir/queue.cpp.o" "gcc" "src/workload/CMakeFiles/capgpu_workload.dir/queue.cpp.o.d"
  "/root/repo/src/workload/trace_gen.cpp" "src/workload/CMakeFiles/capgpu_workload.dir/trace_gen.cpp.o" "gcc" "src/workload/CMakeFiles/capgpu_workload.dir/trace_gen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/capgpu_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/capgpu_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/capgpu_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/capgpu_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/capgpu_telemetry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
