file(REMOVE_RECURSE
  "CMakeFiles/capgpu_hal.dir/acpi_power_meter.cpp.o"
  "CMakeFiles/capgpu_hal.dir/acpi_power_meter.cpp.o.d"
  "CMakeFiles/capgpu_hal.dir/compat_server_hal.cpp.o"
  "CMakeFiles/capgpu_hal.dir/compat_server_hal.cpp.o.d"
  "CMakeFiles/capgpu_hal.dir/cpufreq_sim.cpp.o"
  "CMakeFiles/capgpu_hal.dir/cpufreq_sim.cpp.o.d"
  "CMakeFiles/capgpu_hal.dir/nvml_compat.cpp.o"
  "CMakeFiles/capgpu_hal.dir/nvml_compat.cpp.o.d"
  "CMakeFiles/capgpu_hal.dir/nvml_sim.cpp.o"
  "CMakeFiles/capgpu_hal.dir/nvml_sim.cpp.o.d"
  "CMakeFiles/capgpu_hal.dir/server_hal.cpp.o"
  "CMakeFiles/capgpu_hal.dir/server_hal.cpp.o.d"
  "CMakeFiles/capgpu_hal.dir/sysfs_cpufreq.cpp.o"
  "CMakeFiles/capgpu_hal.dir/sysfs_cpufreq.cpp.o.d"
  "CMakeFiles/capgpu_hal.dir/sysfs_rapl.cpp.o"
  "CMakeFiles/capgpu_hal.dir/sysfs_rapl.cpp.o.d"
  "libcapgpu_hal.a"
  "libcapgpu_hal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capgpu_hal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
