
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hal/acpi_power_meter.cpp" "src/hal/CMakeFiles/capgpu_hal.dir/acpi_power_meter.cpp.o" "gcc" "src/hal/CMakeFiles/capgpu_hal.dir/acpi_power_meter.cpp.o.d"
  "/root/repo/src/hal/compat_server_hal.cpp" "src/hal/CMakeFiles/capgpu_hal.dir/compat_server_hal.cpp.o" "gcc" "src/hal/CMakeFiles/capgpu_hal.dir/compat_server_hal.cpp.o.d"
  "/root/repo/src/hal/cpufreq_sim.cpp" "src/hal/CMakeFiles/capgpu_hal.dir/cpufreq_sim.cpp.o" "gcc" "src/hal/CMakeFiles/capgpu_hal.dir/cpufreq_sim.cpp.o.d"
  "/root/repo/src/hal/nvml_compat.cpp" "src/hal/CMakeFiles/capgpu_hal.dir/nvml_compat.cpp.o" "gcc" "src/hal/CMakeFiles/capgpu_hal.dir/nvml_compat.cpp.o.d"
  "/root/repo/src/hal/nvml_sim.cpp" "src/hal/CMakeFiles/capgpu_hal.dir/nvml_sim.cpp.o" "gcc" "src/hal/CMakeFiles/capgpu_hal.dir/nvml_sim.cpp.o.d"
  "/root/repo/src/hal/server_hal.cpp" "src/hal/CMakeFiles/capgpu_hal.dir/server_hal.cpp.o" "gcc" "src/hal/CMakeFiles/capgpu_hal.dir/server_hal.cpp.o.d"
  "/root/repo/src/hal/sysfs_cpufreq.cpp" "src/hal/CMakeFiles/capgpu_hal.dir/sysfs_cpufreq.cpp.o" "gcc" "src/hal/CMakeFiles/capgpu_hal.dir/sysfs_cpufreq.cpp.o.d"
  "/root/repo/src/hal/sysfs_rapl.cpp" "src/hal/CMakeFiles/capgpu_hal.dir/sysfs_rapl.cpp.o" "gcc" "src/hal/CMakeFiles/capgpu_hal.dir/sysfs_rapl.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/capgpu_common.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/capgpu_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/capgpu_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
