# Empty compiler generated dependencies file for capgpu_hal.
# This may be replaced when dependencies are built.
