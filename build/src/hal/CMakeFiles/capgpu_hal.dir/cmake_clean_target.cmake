file(REMOVE_RECURSE
  "libcapgpu_hal.a"
)
