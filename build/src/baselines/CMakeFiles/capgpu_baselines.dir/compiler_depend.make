# Empty compiler generated dependencies file for capgpu_baselines.
# This may be replaced when dependencies are built.
