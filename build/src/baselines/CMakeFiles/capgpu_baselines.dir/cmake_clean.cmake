file(REMOVE_RECURSE
  "CMakeFiles/capgpu_baselines.dir/controller_iface.cpp.o"
  "CMakeFiles/capgpu_baselines.dir/controller_iface.cpp.o.d"
  "CMakeFiles/capgpu_baselines.dir/cpu_only.cpp.o"
  "CMakeFiles/capgpu_baselines.dir/cpu_only.cpp.o.d"
  "CMakeFiles/capgpu_baselines.dir/cpu_plus_gpu.cpp.o"
  "CMakeFiles/capgpu_baselines.dir/cpu_plus_gpu.cpp.o.d"
  "CMakeFiles/capgpu_baselines.dir/fixed_step.cpp.o"
  "CMakeFiles/capgpu_baselines.dir/fixed_step.cpp.o.d"
  "CMakeFiles/capgpu_baselines.dir/gpu_only.cpp.o"
  "CMakeFiles/capgpu_baselines.dir/gpu_only.cpp.o.d"
  "CMakeFiles/capgpu_baselines.dir/safe_fixed_step.cpp.o"
  "CMakeFiles/capgpu_baselines.dir/safe_fixed_step.cpp.o.d"
  "libcapgpu_baselines.a"
  "libcapgpu_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capgpu_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
