file(REMOVE_RECURSE
  "libcapgpu_baselines.a"
)
