
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/controller_iface.cpp" "src/baselines/CMakeFiles/capgpu_baselines.dir/controller_iface.cpp.o" "gcc" "src/baselines/CMakeFiles/capgpu_baselines.dir/controller_iface.cpp.o.d"
  "/root/repo/src/baselines/cpu_only.cpp" "src/baselines/CMakeFiles/capgpu_baselines.dir/cpu_only.cpp.o" "gcc" "src/baselines/CMakeFiles/capgpu_baselines.dir/cpu_only.cpp.o.d"
  "/root/repo/src/baselines/cpu_plus_gpu.cpp" "src/baselines/CMakeFiles/capgpu_baselines.dir/cpu_plus_gpu.cpp.o" "gcc" "src/baselines/CMakeFiles/capgpu_baselines.dir/cpu_plus_gpu.cpp.o.d"
  "/root/repo/src/baselines/fixed_step.cpp" "src/baselines/CMakeFiles/capgpu_baselines.dir/fixed_step.cpp.o" "gcc" "src/baselines/CMakeFiles/capgpu_baselines.dir/fixed_step.cpp.o.d"
  "/root/repo/src/baselines/gpu_only.cpp" "src/baselines/CMakeFiles/capgpu_baselines.dir/gpu_only.cpp.o" "gcc" "src/baselines/CMakeFiles/capgpu_baselines.dir/gpu_only.cpp.o.d"
  "/root/repo/src/baselines/safe_fixed_step.cpp" "src/baselines/CMakeFiles/capgpu_baselines.dir/safe_fixed_step.cpp.o" "gcc" "src/baselines/CMakeFiles/capgpu_baselines.dir/safe_fixed_step.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/capgpu_common.dir/DependInfo.cmake"
  "/root/repo/build/src/control/CMakeFiles/capgpu_control.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/capgpu_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/capgpu_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/capgpu_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/capgpu_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
