file(REMOVE_RECURSE
  "CMakeFiles/capgpu_rack.dir/allocation.cpp.o"
  "CMakeFiles/capgpu_rack.dir/allocation.cpp.o.d"
  "CMakeFiles/capgpu_rack.dir/coordinator.cpp.o"
  "CMakeFiles/capgpu_rack.dir/coordinator.cpp.o.d"
  "libcapgpu_rack.a"
  "libcapgpu_rack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capgpu_rack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
