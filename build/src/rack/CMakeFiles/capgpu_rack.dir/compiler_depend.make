# Empty compiler generated dependencies file for capgpu_rack.
# This may be replaced when dependencies are built.
