file(REMOVE_RECURSE
  "libcapgpu_rack.a"
)
