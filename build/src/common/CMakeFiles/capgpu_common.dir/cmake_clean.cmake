file(REMOVE_RECURSE
  "CMakeFiles/capgpu_common.dir/log.cpp.o"
  "CMakeFiles/capgpu_common.dir/log.cpp.o.d"
  "CMakeFiles/capgpu_common.dir/options.cpp.o"
  "CMakeFiles/capgpu_common.dir/options.cpp.o.d"
  "CMakeFiles/capgpu_common.dir/rng.cpp.o"
  "CMakeFiles/capgpu_common.dir/rng.cpp.o.d"
  "libcapgpu_common.a"
  "libcapgpu_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capgpu_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
