file(REMOVE_RECURSE
  "libcapgpu_common.a"
)
