# Empty compiler generated dependencies file for capgpu_common.
# This may be replaced when dependencies are built.
