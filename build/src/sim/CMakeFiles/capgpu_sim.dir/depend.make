# Empty dependencies file for capgpu_sim.
# This may be replaced when dependencies are built.
