file(REMOVE_RECURSE
  "libcapgpu_sim.a"
)
