file(REMOVE_RECURSE
  "CMakeFiles/capgpu_sim.dir/engine.cpp.o"
  "CMakeFiles/capgpu_sim.dir/engine.cpp.o.d"
  "libcapgpu_sim.a"
  "libcapgpu_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capgpu_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
