file(REMOVE_RECURSE
  "libcapgpu_control.a"
)
