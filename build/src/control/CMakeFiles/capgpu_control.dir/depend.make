# Empty dependencies file for capgpu_control.
# This may be replaced when dependencies are built.
