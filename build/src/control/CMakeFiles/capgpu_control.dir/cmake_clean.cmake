file(REMOVE_RECURSE
  "CMakeFiles/capgpu_control.dir/delta_sigma.cpp.o"
  "CMakeFiles/capgpu_control.dir/delta_sigma.cpp.o.d"
  "CMakeFiles/capgpu_control.dir/latency_model.cpp.o"
  "CMakeFiles/capgpu_control.dir/latency_model.cpp.o.d"
  "CMakeFiles/capgpu_control.dir/mpc.cpp.o"
  "CMakeFiles/capgpu_control.dir/mpc.cpp.o.d"
  "CMakeFiles/capgpu_control.dir/p_controller.cpp.o"
  "CMakeFiles/capgpu_control.dir/p_controller.cpp.o.d"
  "CMakeFiles/capgpu_control.dir/power_model.cpp.o"
  "CMakeFiles/capgpu_control.dir/power_model.cpp.o.d"
  "CMakeFiles/capgpu_control.dir/prbs.cpp.o"
  "CMakeFiles/capgpu_control.dir/prbs.cpp.o.d"
  "CMakeFiles/capgpu_control.dir/qp.cpp.o"
  "CMakeFiles/capgpu_control.dir/qp.cpp.o.d"
  "CMakeFiles/capgpu_control.dir/rls.cpp.o"
  "CMakeFiles/capgpu_control.dir/rls.cpp.o.d"
  "CMakeFiles/capgpu_control.dir/stability.cpp.o"
  "CMakeFiles/capgpu_control.dir/stability.cpp.o.d"
  "CMakeFiles/capgpu_control.dir/sysid.cpp.o"
  "CMakeFiles/capgpu_control.dir/sysid.cpp.o.d"
  "CMakeFiles/capgpu_control.dir/weights.cpp.o"
  "CMakeFiles/capgpu_control.dir/weights.cpp.o.d"
  "libcapgpu_control.a"
  "libcapgpu_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capgpu_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
