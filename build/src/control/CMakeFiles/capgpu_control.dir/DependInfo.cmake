
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/control/delta_sigma.cpp" "src/control/CMakeFiles/capgpu_control.dir/delta_sigma.cpp.o" "gcc" "src/control/CMakeFiles/capgpu_control.dir/delta_sigma.cpp.o.d"
  "/root/repo/src/control/latency_model.cpp" "src/control/CMakeFiles/capgpu_control.dir/latency_model.cpp.o" "gcc" "src/control/CMakeFiles/capgpu_control.dir/latency_model.cpp.o.d"
  "/root/repo/src/control/mpc.cpp" "src/control/CMakeFiles/capgpu_control.dir/mpc.cpp.o" "gcc" "src/control/CMakeFiles/capgpu_control.dir/mpc.cpp.o.d"
  "/root/repo/src/control/p_controller.cpp" "src/control/CMakeFiles/capgpu_control.dir/p_controller.cpp.o" "gcc" "src/control/CMakeFiles/capgpu_control.dir/p_controller.cpp.o.d"
  "/root/repo/src/control/power_model.cpp" "src/control/CMakeFiles/capgpu_control.dir/power_model.cpp.o" "gcc" "src/control/CMakeFiles/capgpu_control.dir/power_model.cpp.o.d"
  "/root/repo/src/control/prbs.cpp" "src/control/CMakeFiles/capgpu_control.dir/prbs.cpp.o" "gcc" "src/control/CMakeFiles/capgpu_control.dir/prbs.cpp.o.d"
  "/root/repo/src/control/qp.cpp" "src/control/CMakeFiles/capgpu_control.dir/qp.cpp.o" "gcc" "src/control/CMakeFiles/capgpu_control.dir/qp.cpp.o.d"
  "/root/repo/src/control/rls.cpp" "src/control/CMakeFiles/capgpu_control.dir/rls.cpp.o" "gcc" "src/control/CMakeFiles/capgpu_control.dir/rls.cpp.o.d"
  "/root/repo/src/control/stability.cpp" "src/control/CMakeFiles/capgpu_control.dir/stability.cpp.o" "gcc" "src/control/CMakeFiles/capgpu_control.dir/stability.cpp.o.d"
  "/root/repo/src/control/sysid.cpp" "src/control/CMakeFiles/capgpu_control.dir/sysid.cpp.o" "gcc" "src/control/CMakeFiles/capgpu_control.dir/sysid.cpp.o.d"
  "/root/repo/src/control/weights.cpp" "src/control/CMakeFiles/capgpu_control.dir/weights.cpp.o" "gcc" "src/control/CMakeFiles/capgpu_control.dir/weights.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/capgpu_common.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/capgpu_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/capgpu_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/capgpu_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
