file(REMOVE_RECURSE
  "libcapgpu_linalg.a"
)
