file(REMOVE_RECURSE
  "CMakeFiles/capgpu_linalg.dir/cholesky.cpp.o"
  "CMakeFiles/capgpu_linalg.dir/cholesky.cpp.o.d"
  "CMakeFiles/capgpu_linalg.dir/eig.cpp.o"
  "CMakeFiles/capgpu_linalg.dir/eig.cpp.o.d"
  "CMakeFiles/capgpu_linalg.dir/lu.cpp.o"
  "CMakeFiles/capgpu_linalg.dir/lu.cpp.o.d"
  "CMakeFiles/capgpu_linalg.dir/matrix.cpp.o"
  "CMakeFiles/capgpu_linalg.dir/matrix.cpp.o.d"
  "CMakeFiles/capgpu_linalg.dir/qr.cpp.o"
  "CMakeFiles/capgpu_linalg.dir/qr.cpp.o.d"
  "libcapgpu_linalg.a"
  "libcapgpu_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capgpu_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
