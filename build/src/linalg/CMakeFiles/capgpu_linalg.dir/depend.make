# Empty dependencies file for capgpu_linalg.
# This may be replaced when dependencies are built.
