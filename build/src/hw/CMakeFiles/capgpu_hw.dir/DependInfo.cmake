
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/breaker.cpp" "src/hw/CMakeFiles/capgpu_hw.dir/breaker.cpp.o" "gcc" "src/hw/CMakeFiles/capgpu_hw.dir/breaker.cpp.o.d"
  "/root/repo/src/hw/cpu_model.cpp" "src/hw/CMakeFiles/capgpu_hw.dir/cpu_model.cpp.o" "gcc" "src/hw/CMakeFiles/capgpu_hw.dir/cpu_model.cpp.o.d"
  "/root/repo/src/hw/frequency_table.cpp" "src/hw/CMakeFiles/capgpu_hw.dir/frequency_table.cpp.o" "gcc" "src/hw/CMakeFiles/capgpu_hw.dir/frequency_table.cpp.o.d"
  "/root/repo/src/hw/gpu_model.cpp" "src/hw/CMakeFiles/capgpu_hw.dir/gpu_model.cpp.o" "gcc" "src/hw/CMakeFiles/capgpu_hw.dir/gpu_model.cpp.o.d"
  "/root/repo/src/hw/power_filter.cpp" "src/hw/CMakeFiles/capgpu_hw.dir/power_filter.cpp.o" "gcc" "src/hw/CMakeFiles/capgpu_hw.dir/power_filter.cpp.o.d"
  "/root/repo/src/hw/server_model.cpp" "src/hw/CMakeFiles/capgpu_hw.dir/server_model.cpp.o" "gcc" "src/hw/CMakeFiles/capgpu_hw.dir/server_model.cpp.o.d"
  "/root/repo/src/hw/thermal.cpp" "src/hw/CMakeFiles/capgpu_hw.dir/thermal.cpp.o" "gcc" "src/hw/CMakeFiles/capgpu_hw.dir/thermal.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/capgpu_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/capgpu_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
