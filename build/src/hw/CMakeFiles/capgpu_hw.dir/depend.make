# Empty dependencies file for capgpu_hw.
# This may be replaced when dependencies are built.
