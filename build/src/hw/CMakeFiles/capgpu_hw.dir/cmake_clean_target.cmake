file(REMOVE_RECURSE
  "libcapgpu_hw.a"
)
