file(REMOVE_RECURSE
  "CMakeFiles/capgpu_hw.dir/breaker.cpp.o"
  "CMakeFiles/capgpu_hw.dir/breaker.cpp.o.d"
  "CMakeFiles/capgpu_hw.dir/cpu_model.cpp.o"
  "CMakeFiles/capgpu_hw.dir/cpu_model.cpp.o.d"
  "CMakeFiles/capgpu_hw.dir/frequency_table.cpp.o"
  "CMakeFiles/capgpu_hw.dir/frequency_table.cpp.o.d"
  "CMakeFiles/capgpu_hw.dir/gpu_model.cpp.o"
  "CMakeFiles/capgpu_hw.dir/gpu_model.cpp.o.d"
  "CMakeFiles/capgpu_hw.dir/power_filter.cpp.o"
  "CMakeFiles/capgpu_hw.dir/power_filter.cpp.o.d"
  "CMakeFiles/capgpu_hw.dir/server_model.cpp.o"
  "CMakeFiles/capgpu_hw.dir/server_model.cpp.o.d"
  "CMakeFiles/capgpu_hw.dir/thermal.cpp.o"
  "CMakeFiles/capgpu_hw.dir/thermal.cpp.o.d"
  "libcapgpu_hw.a"
  "libcapgpu_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capgpu_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
