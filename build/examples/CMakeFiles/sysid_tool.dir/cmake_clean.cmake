file(REMOVE_RECURSE
  "CMakeFiles/sysid_tool.dir/sysid_tool.cpp.o"
  "CMakeFiles/sysid_tool.dir/sysid_tool.cpp.o.d"
  "sysid_tool"
  "sysid_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sysid_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
