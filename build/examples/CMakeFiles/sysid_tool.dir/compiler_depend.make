# Empty compiler generated dependencies file for sysid_tool.
# This may be replaced when dependencies are built.
