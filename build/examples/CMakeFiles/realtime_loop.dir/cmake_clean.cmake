file(REMOVE_RECURSE
  "CMakeFiles/realtime_loop.dir/realtime_loop.cpp.o"
  "CMakeFiles/realtime_loop.dir/realtime_loop.cpp.o.d"
  "realtime_loop"
  "realtime_loop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/realtime_loop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
