# Empty compiler generated dependencies file for realtime_loop.
# This may be replaced when dependencies are built.
