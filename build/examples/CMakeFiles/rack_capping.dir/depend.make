# Empty dependencies file for rack_capping.
# This may be replaced when dependencies are built.
