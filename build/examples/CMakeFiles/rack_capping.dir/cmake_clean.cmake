file(REMOVE_RECURSE
  "CMakeFiles/rack_capping.dir/rack_capping.cpp.o"
  "CMakeFiles/rack_capping.dir/rack_capping.cpp.o.d"
  "rack_capping"
  "rack_capping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rack_capping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
