file(REMOVE_RECURSE
  "CMakeFiles/slo_aware_serving.dir/slo_aware_serving.cpp.o"
  "CMakeFiles/slo_aware_serving.dir/slo_aware_serving.cpp.o.d"
  "slo_aware_serving"
  "slo_aware_serving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slo_aware_serving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
