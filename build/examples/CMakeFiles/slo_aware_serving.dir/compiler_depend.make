# Empty compiler generated dependencies file for slo_aware_serving.
# This may be replaced when dependencies are built.
