# Empty dependencies file for datacenter_capping.
# This may be replaced when dependencies are built.
