file(REMOVE_RECURSE
  "CMakeFiles/datacenter_capping.dir/datacenter_capping.cpp.o"
  "CMakeFiles/datacenter_capping.dir/datacenter_capping.cpp.o.d"
  "datacenter_capping"
  "datacenter_capping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datacenter_capping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
