file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_slo_capgpu.dir/bench_fig9_slo_capgpu.cpp.o"
  "CMakeFiles/bench_fig9_slo_capgpu.dir/bench_fig9_slo_capgpu.cpp.o.d"
  "bench_fig9_slo_capgpu"
  "bench_fig9_slo_capgpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_slo_capgpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
