# Empty dependencies file for bench_fig9_slo_capgpu.
# This may be replaced when dependencies are built.
