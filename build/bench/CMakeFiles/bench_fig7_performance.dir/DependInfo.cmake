
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig7_performance.cpp" "bench/CMakeFiles/bench_fig7_performance.dir/bench_fig7_performance.cpp.o" "gcc" "bench/CMakeFiles/bench_fig7_performance.dir/bench_fig7_performance.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/capgpu_core.dir/DependInfo.cmake"
  "/root/repo/build/src/hal/CMakeFiles/capgpu_hal.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/capgpu_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/capgpu_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/capgpu_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/control/CMakeFiles/capgpu_control.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/capgpu_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/capgpu_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/capgpu_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/rack/CMakeFiles/capgpu_rack.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/capgpu_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
