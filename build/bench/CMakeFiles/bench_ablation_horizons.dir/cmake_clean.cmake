file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_horizons.dir/bench_ablation_horizons.cpp.o"
  "CMakeFiles/bench_ablation_horizons.dir/bench_ablation_horizons.cpp.o.d"
  "bench_ablation_horizons"
  "bench_ablation_horizons.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_horizons.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
