# Empty compiler generated dependencies file for bench_ablation_horizons.
# This may be replaced when dependencies are built.
