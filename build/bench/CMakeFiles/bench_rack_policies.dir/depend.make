# Empty dependencies file for bench_rack_policies.
# This may be replaced when dependencies are built.
