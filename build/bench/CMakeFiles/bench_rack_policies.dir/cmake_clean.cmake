file(REMOVE_RECURSE
  "CMakeFiles/bench_rack_policies.dir/bench_rack_policies.cpp.o"
  "CMakeFiles/bench_rack_policies.dir/bench_rack_policies.cpp.o.d"
  "bench_rack_policies"
  "bench_rack_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rack_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
