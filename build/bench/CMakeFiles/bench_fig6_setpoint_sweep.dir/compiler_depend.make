# Empty compiler generated dependencies file for bench_fig6_setpoint_sweep.
# This may be replaced when dependencies are built.
