# Empty dependencies file for bench_openloop_load.
# This may be replaced when dependencies are built.
