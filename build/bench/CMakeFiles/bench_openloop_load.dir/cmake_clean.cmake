file(REMOVE_RECURSE
  "CMakeFiles/bench_openloop_load.dir/bench_openloop_load.cpp.o"
  "CMakeFiles/bench_openloop_load.dir/bench_openloop_load.cpp.o.d"
  "bench_openloop_load"
  "bench_openloop_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_openloop_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
