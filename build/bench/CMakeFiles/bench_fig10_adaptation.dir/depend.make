# Empty dependencies file for bench_fig10_adaptation.
# This may be replaced when dependencies are built.
