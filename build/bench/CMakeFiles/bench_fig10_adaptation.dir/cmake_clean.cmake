file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_adaptation.dir/bench_fig10_adaptation.cpp.o"
  "CMakeFiles/bench_fig10_adaptation.dir/bench_fig10_adaptation.cpp.o.d"
  "bench_fig10_adaptation"
  "bench_fig10_adaptation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_adaptation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
