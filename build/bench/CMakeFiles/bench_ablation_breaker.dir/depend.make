# Empty dependencies file for bench_ablation_breaker.
# This may be replaced when dependencies are built.
