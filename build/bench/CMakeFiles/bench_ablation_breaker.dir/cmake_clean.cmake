file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_breaker.dir/bench_ablation_breaker.cpp.o"
  "CMakeFiles/bench_ablation_breaker.dir/bench_ablation_breaker.cpp.o.d"
  "bench_ablation_breaker"
  "bench_ablation_breaker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_breaker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
