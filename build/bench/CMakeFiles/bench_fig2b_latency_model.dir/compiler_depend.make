# Empty compiler generated dependencies file for bench_fig2b_latency_model.
# This may be replaced when dependencies are built.
