file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_safe_fixed_step.dir/bench_fig5_safe_fixed_step.cpp.o"
  "CMakeFiles/bench_fig5_safe_fixed_step.dir/bench_fig5_safe_fixed_step.cpp.o.d"
  "bench_fig5_safe_fixed_step"
  "bench_fig5_safe_fixed_step.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_safe_fixed_step.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
