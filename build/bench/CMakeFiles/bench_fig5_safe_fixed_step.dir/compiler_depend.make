# Empty compiler generated dependencies file for bench_fig5_safe_fixed_step.
# This may be replaced when dependencies are built.
