# Empty dependencies file for bench_frontier.
# This may be replaced when dependencies are built.
