# Empty dependencies file for bench_fig2a_sysid.
# This may be replaced when dependencies are built.
