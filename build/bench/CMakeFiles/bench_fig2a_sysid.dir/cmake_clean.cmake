file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2a_sysid.dir/bench_fig2a_sysid.cpp.o"
  "CMakeFiles/bench_fig2a_sysid.dir/bench_fig2a_sysid.cpp.o.d"
  "bench_fig2a_sysid"
  "bench_fig2a_sysid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2a_sysid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
