# Empty dependencies file for bench_fig8_slo_baselines.
# This may be replaced when dependencies are built.
