file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_emergency.dir/bench_ablation_emergency.cpp.o"
  "CMakeFiles/bench_ablation_emergency.dir/bench_ablation_emergency.cpp.o.d"
  "bench_ablation_emergency"
  "bench_ablation_emergency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_emergency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
