# Empty dependencies file for bench_ablation_emergency.
# This may be replaced when dependencies are built.
