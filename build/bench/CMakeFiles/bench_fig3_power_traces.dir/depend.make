# Empty dependencies file for bench_fig3_power_traces.
# This may be replaced when dependencies are built.
