// Control-solve self-perf: the two-tier fast path (analytic unconstrained
// step + structured banded/Woodbury solve) vs the plain dense active-set
// solver, measured in control periods solved per wall-clock second across
// paper-sized through fleet-sized horizons.
//
// Three modes run the same closed-loop regime (cap reachable mid-range,
// measurement noise keeping the error alive, so every period is a genuine
// interior solve):
//   base       — qp_fast_path off, structured_solve off: every period runs
//                the dense active-set iteration (two KKT factorisations).
//   fast       — the default controller: persistent-factorisation analytic
//                step, certify-or-fallback, bitwise equal to base.
//   structured — banded Cholesky + Woodbury on the device-major Hessian,
//                certified to solver tolerance (<= 1e-6 MHz vs base).
//
// Shape checks (PASS/FAIL, build-independent): fast is bit-identical to
// base on every lockstep period, structured stays within 1e-6 MHz, both
// tiers hit >= 90% of interior periods, the constrained sweep forces
// fallback without changing bits, and the fleet-sized P=32 config shows
// >= 2x fast-tier speedup (both sides share the build, so the asymptotic
// advantage holds in Debug too). Results append to a JSON report (default
// BENCH_control.json, override with --out <path>) which
// scripts/run_perf.sh merges into BENCH_perf.json; docs/performance.md
// describes the format.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common.hpp"
#include "common/error.hpp"
#include "common/options.hpp"
#include "common/rng.hpp"
#include "control/mpc.hpp"
#include "control/power_model.hpp"
#include "telemetry/table.hpp"

using namespace capgpu;
using control::DeviceRange;
using control::LinearPowerModel;
using control::MpcConfig;
using control::MpcController;
using control::MpcDecision;

namespace {

constexpr double kStructTolMhz = 1e-6;  // replay's structured cross-check

struct BenchShape {
  const char* name;
  std::size_t devices;
  std::size_t m;  // control horizon
  std::size_t p;  // prediction horizon
};

// Paper size first, then the fleet-representative shapes the structured
// tier exists for (dim = devices * M decision variables).
constexpr BenchShape kShapes[] = {
    {"paper", 4, 2, 8},        // dim 8, the testbed configuration
    {"p32", 4, 2, 32},         // long horizon, small fleet
    {"p32-rack", 8, 4, 32},    // dim 32
    {"p32-fleet", 16, 4, 32},  // dim 64, the acceptance gate
    {"p64-fleet", 16, 8, 64},  // dim 128
};

enum class Mode { kBase, kFast, kStructured };

std::vector<DeviceRange> make_devices(std::size_t n) {
  return std::vector<DeviceRange>(n,
                                  DeviceRange{DeviceKind::kGpu, 800.0, 1900.0});
}

LinearPowerModel make_plant(std::size_t n) {
  std::vector<double> gains(n);
  for (std::size_t j = 0; j < n; ++j)
    gains[j] = 0.08 + 0.01 * static_cast<double>(j % 7);
  return LinearPowerModel(gains, 300.0);
}

// Cap reachable mid-range: interior steady state for every shape.
Watts interior_cap(const LinearPowerModel& plant, std::size_t n) {
  std::vector<double> mid(n, 1350.0);
  return plant.predict(mid);
}

MpcConfig make_config(const BenchShape& s, Mode mode) {
  MpcConfig cfg;
  cfg.prediction_horizon = s.p;
  cfg.control_horizon = s.m;
  cfg.qp_fast_path = mode != Mode::kBase;
  cfg.structured_solve = mode == Mode::kStructured;
  return cfg;
}

struct LockstepResult {
  bool fast_bitwise{true};
  bool structured_within_tol{true};
  double fast_hit_rate{0.0};
  double structured_hit_rate{0.0};
};

// Drives all three controllers from the base controller's trajectory with
// measurement noise, so per-period disagreement is exactly the tier's
// doing. Fast must match base bit for bit; structured within tolerance.
LockstepResult run_lockstep(const BenchShape& s, int periods) {
  const auto devices = make_devices(s.devices);
  const LinearPowerModel plant = make_plant(s.devices);
  const Watts cap = interior_cap(plant, s.devices);
  MpcController base(make_config(s, Mode::kBase), devices, plant, cap);
  MpcController fast(make_config(s, Mode::kFast), devices, plant, cap);
  MpcController structured(make_config(s, Mode::kStructured), devices, plant,
                           cap);
  Rng noise(1234);
  std::vector<double> f(s.devices, 1000.0);
  LockstepResult res;
  std::size_t fast_hits = 0;
  std::size_t structured_hits = 0;
  for (int k = 0; k < periods; ++k) {
    const Watts power{plant.predict(f).value + noise.uniform(-15.0, 15.0)};
    const MpcDecision& b = base.step(power, f);
    const std::vector<double> targets = b.target_freqs_mhz;
    const MpcDecision& ft = fast.step(power, f);
    if (ft.fast_path_hit) ++fast_hits;
    for (std::size_t j = 0; j < s.devices; ++j) {
      if (ft.target_freqs_mhz[j] != targets[j]) res.fast_bitwise = false;
    }
    const MpcDecision& st = structured.step(power, f);
    if (st.structured_hit) ++structured_hits;
    for (std::size_t j = 0; j < s.devices; ++j) {
      const double diff = std::abs(st.target_freqs_mhz[j] - targets[j]);
      if (st.structured_hit ? diff > kStructTolMhz : diff != 0.0) {
        res.structured_within_tol = false;
      }
    }
    f = targets;
  }
  res.fast_hit_rate =
      static_cast<double>(fast_hits) / static_cast<double>(periods);
  res.structured_hit_rate =
      static_cast<double>(structured_hits) / static_cast<double>(periods);
  return res;
}

// Constrained sweep: frequency floors near f_max with the cap far below
// the floor power — every period rails, neither shortcut may certify, and
// the commands must stay bit-identical to the plain solver.
bool run_constrained_sweep() {
  const BenchShape s{"constrained", 4, 2, 8};
  const auto devices = make_devices(s.devices);
  const LinearPowerModel plant = make_plant(s.devices);
  const Watts cap{600.0};  // floor power ~300 + 0.38*1880 >> 600
  MpcController base(make_config(s, Mode::kBase), devices, plant, cap);
  MpcController fast(make_config(s, Mode::kFast), devices, plant, cap);
  MpcController structured(make_config(s, Mode::kStructured), devices, plant,
                           cap);
  for (std::size_t j = 0; j < s.devices; ++j) {
    if (!base.set_min_frequency_override(j, 1880.0)) return false;
    if (!fast.set_min_frequency_override(j, 1880.0)) return false;
    if (!structured.set_min_frequency_override(j, 1880.0)) return false;
  }
  Rng noise(77);
  std::vector<double> f(s.devices, 1900.0);
  bool ok = true;
  for (int k = 0; k < 60; ++k) {
    const Watts power{plant.predict(f).value + noise.uniform(-15.0, 15.0)};
    const MpcDecision& b = base.step(power, f);
    const std::vector<double> targets = b.target_freqs_mhz;
    const MpcDecision& ft = fast.step(power, f);
    const MpcDecision& st = structured.step(power, f);
    if (ft.fast_path_hit || st.structured_hit) ok = false;
    for (std::size_t j = 0; j < s.devices; ++j) {
      if (ft.target_freqs_mhz[j] != targets[j]) ok = false;
      if (st.target_freqs_mhz[j] != targets[j]) ok = false;
    }
    f = targets;
  }
  return ok;
}

// One timed closed-loop run: `steps` control periods through a persistent
// controller (warm buffers, persistent factorisations — the steady state
// the tiers are built for). Returns periods per second.
double run_timed(const BenchShape& s, Mode mode, int steps) {
  const auto devices = make_devices(s.devices);
  const LinearPowerModel plant = make_plant(s.devices);
  const Watts cap = interior_cap(plant, s.devices);
  MpcController ctl(make_config(s, mode), devices, plant, cap);
  Rng noise(999);
  std::vector<double> f(s.devices, 1000.0);
  // Warm-up period: first-step allocations and factorisations are not the
  // steady state being measured.
  f = ctl.step(plant.predict(f), f).target_freqs_mhz;
  double sink = 0.0;
  const auto t0 = std::chrono::steady_clock::now();
  for (int k = 0; k < steps; ++k) {
    const Watts power{plant.predict(f).value + noise.uniform(-15.0, 15.0)};
    const MpcDecision& d = ctl.step(power, f);
    sink += d.deltas_mhz[0];
    f = d.target_freqs_mhz;
  }
  const auto t1 = std::chrono::steady_clock::now();
  if (sink == 12345.678) std::fprintf(stderr, "?");  // keep the loop live
  const double secs = std::chrono::duration<double>(t1 - t0).count();
  return secs > 0.0 ? static_cast<double>(steps) / secs : 0.0;
}

struct Row {
  const BenchShape* shape{nullptr};
  double base_sps{0.0};
  double fast_sps{0.0};
  double structured_sps{0.0};
  LockstepResult lockstep;
  [[nodiscard]] double fast_speedup() const {
    return base_sps > 0.0 ? fast_sps / base_sps : 0.0;
  }
  [[nodiscard]] double structured_speedup() const {
    return base_sps > 0.0 ? structured_sps / base_sps : 0.0;
  }
};

}  // namespace

int main(int argc, char** argv) {
  bench::init(argc, argv);
  std::string out_path = "BENCH_control.json";
  int reps = 7;
  try {
    const auto flags = extract_flags(argc, argv, {"out", "reps"});
    if (auto it = flags.find("out"); it != flags.end()) out_path = it->second;
    if (auto it = flags.find("reps"); it != flags.end()) {
      reps = std::stoi(it->second);
      CAPGPU_REQUIRE(reps > 0, "--reps must be positive");
    }
  } catch (const InvalidArgument& e) {
    std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
    return 2;
  }
  bench::print_banner(
      "Control self-perf: two-tier fast path vs dense active-set solve",
      "control periods solved per second, paper (N=4, M=2, P=8) to fleet "
      "sizes");

  const int kTimedSteps = 400;
  std::vector<Row> rows;
  for (const BenchShape& s : kShapes) {
    Row row;
    row.shape = &s;
    row.lockstep = run_lockstep(s, 300);
    // Reps alternate the three modes so they sample the same machine
    // conditions; best-of keeps the least-perturbed rep (noise only ever
    // slows a run down).
    for (int r = 0; r < reps; ++r) {
      row.base_sps = std::max(row.base_sps, run_timed(s, Mode::kBase,
                                                      kTimedSteps));
      row.fast_sps = std::max(row.fast_sps, run_timed(s, Mode::kFast,
                                                      kTimedSteps));
      row.structured_sps = std::max(
          row.structured_sps, run_timed(s, Mode::kStructured, kTimedSteps));
    }
    rows.push_back(row);
  }

  telemetry::Table t("periods/sec, best of " + std::to_string(reps) +
                     " (dim = devices x M)");
  t.set_header({"config", "dim", "base/s", "fast/s", "fast x", "struct/s",
                "struct x", "hit fast", "hit struct"});
  for (const Row& r : rows) {
    t.add_row({r.shape->name,
               std::to_string(r.shape->devices * r.shape->m),
               telemetry::fmt(r.base_sps / 1e3, 1) + "k",
               telemetry::fmt(r.fast_sps / 1e3, 1) + "k",
               telemetry::fmt(r.fast_speedup(), 2) + "x",
               telemetry::fmt(r.structured_sps / 1e3, 1) + "k",
               telemetry::fmt(r.structured_speedup(), 2) + "x",
               telemetry::fmt(r.lockstep.fast_hit_rate, 2),
               telemetry::fmt(r.lockstep.structured_hit_rate, 2)});
  }
  t.print();

  // Shape checks: correctness and tier engagement are build-independent;
  // the one speedup gate compares two runs of the same build, so the
  // structural advantage (one back-solve vs two cubic factorisations)
  // carries it in Debug as well.
  bool all_ok = true;
  double worst_fast_speedup = 1e300;
  double p32_fleet_speedup = 0.0;
  for (const Row& r : rows) {
    worst_fast_speedup = std::min(worst_fast_speedup, r.fast_speedup());
    if (std::string(r.shape->name) == "p32-fleet") {
      p32_fleet_speedup = r.fast_speedup();
    }
    const bool bitwise = r.lockstep.fast_bitwise;
    const bool tol = r.lockstep.structured_within_tol;
    const bool hits = r.lockstep.fast_hit_rate >= 0.9 &&
                      r.lockstep.structured_hit_rate >= 0.9;
    std::printf("  [%s] %s: fast bitwise-identical to base\n",
                bitwise ? "PASS" : "FAIL", r.shape->name);
    std::printf("  [%s] %s: structured within %.0e MHz of base\n",
                tol ? "PASS" : "FAIL", r.shape->name, kStructTolMhz);
    std::printf(
        "  [%s] %s: interior hit rates >= 0.90 (fast %.2f, structured "
        "%.2f)\n",
        hits ? "PASS" : "FAIL", r.shape->name, r.lockstep.fast_hit_rate,
        r.lockstep.structured_hit_rate);
    all_ok = all_ok && bitwise && tol && hits;
  }
  const bool constrained_ok = run_constrained_sweep();
  std::printf(
      "  [%s] constrained sweep: both tiers fall back, commands "
      "bit-identical\n",
      constrained_ok ? "PASS" : "FAIL");
  const bool fleet_ok = p32_fleet_speedup >= 2.0;
  std::printf("  [%s] p32-fleet fast-tier speedup %.2fx (target >= 2.0x)\n",
              fleet_ok ? "PASS" : "FAIL", p32_fleet_speedup);
  all_ok = all_ok && constrained_ok && fleet_ok;

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << "{\n  \"control_selfperf\": {\n    \"reps\": " << reps
      << ",\n    \"configs\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "      {\"name\": \"%s\", \"devices\": %zu, "
        "\"control_horizon\": %zu, \"prediction_horizon\": %zu, "
        "\"dim\": %zu, \"base_steps_per_s\": %.0f, "
        "\"fast_steps_per_s\": %.0f, \"fast_speedup\": %.3f, "
        "\"structured_steps_per_s\": %.0f, \"structured_speedup\": %.3f, "
        "\"fast_hit_rate\": %.3f, \"structured_hit_rate\": %.3f}%s\n",
        r.shape->name, r.shape->devices, r.shape->m, r.shape->p,
        r.shape->devices * r.shape->m, r.base_sps, r.fast_sps,
        r.fast_speedup(), r.structured_sps, r.structured_speedup(),
        r.lockstep.fast_hit_rate, r.lockstep.structured_hit_rate,
        i + 1 < std::size(rows) ? "," : "");
    out << buf;
  }
  char tail[160];
  std::snprintf(tail, sizeof(tail),
                "    ],\n    \"worst_speedup\": %.3f,\n"
                "    \"p32_fleet_speedup\": %.3f\n  }\n}\n",
                worst_fast_speedup, p32_fleet_speedup);
  out << tail;
  std::printf("  [perf] %s\n", out_path.c_str());
  return all_ok ? 0 : 1;
}
