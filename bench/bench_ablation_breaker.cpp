// Ablation: breaker safety under aggressive oversubscription.
//
// The paper's opening premise made concrete: a branch breaker rated
// tightly above the cap (3% margin — an aggressive oversubscription plan)
// protects the circuit. A controller that oscillates above its set point
// charges the breaker's thermal element; one that respects the cap leaves
// it cold. We run each controller at a 1060 W cap under a 1090 W breaker
// and report thermal stress and trips.
#include <cstdio>

#include "baselines/fixed_step.hpp"
#include "baselines/gpu_only.hpp"
#include "common.hpp"
#include "hw/breaker.hpp"
#include "telemetry/table.hpp"

using namespace capgpu;

namespace {

struct Outcome {
  double steady_power;
  double peak_stress;
  double trip_time;
};

Outcome run_one(const std::string& kind) {
  constexpr double kCap = 900.0;
  core::ServerRig rig;
  hw::BreakerParams bp;
  bp.rating = Watts{930.0};  // 3.3% above the cap
  bp.trip_overload_frac = 0.03;
  bp.trip_seconds = 90.0;
  bp.cooling_frac_per_s = 0.002;  // thermal elements cool over minutes
  hw::BreakerModel breaker(bp);
  auto* server = &rig.server();
  hw::BreakerMonitor monitor(rig.engine(), breaker,
                             [server] { return server->total_power().value; });

  core::RunOptions opt;
  opt.periods = 300;
  opt.set_point = Watts{kCap};

  core::RunResult res;
  double peak_stress = 0.0;
  // Sample stress each period via the loop hook is not exposed here, so
  // poll with engine events.
  for (std::size_t k = 1; k <= opt.periods; ++k) {
    auto* b = &breaker;
    auto* peak = &peak_stress;
    rig.engine().schedule_at(4.0 * static_cast<double>(k), [b, peak] {
      *peak = std::max(*peak, b->stress());
    });
  }

  if (kind == "fixed-step-x5") {
    baselines::FixedStepConfig cfg;
    cfg.step_multiplier = 5;
    baselines::FixedStepController ctl(cfg, rig.device_ranges(), Watts{kCap});
    res = rig.run(ctl, opt);
  } else if (kind == "gpu-only") {
    baselines::GpuOnlyController ctl(rig.device_ranges(),
                                     bench::testbed_model().model,
                                     bench::kBaselinePole, Watts{kCap});
    res = rig.run(ctl, opt);
  } else {
    core::CapGpuController ctl = bench::make_capgpu(rig, Watts{kCap});
    res = rig.run(ctl, opt);
  }

  return Outcome{res.steady_power(30).mean(), peak_stress,
                 monitor.trip_time()};
}

}  // namespace

int main(int argc, char** argv) {
  capgpu::bench::init(argc, argv);
  bench::print_banner(
      "Ablation: breaker stress under a 3.3% oversubscription margin",
      "cap 900 W, breaker rated 930 W (trips after 90 s at +3%)");
  (void)bench::testbed_model();

  telemetry::Table t("1200 s runs");
  t.set_header({"Controller", "steady W", "peak breaker stress", "tripped"});
  std::vector<std::pair<std::string, Outcome>> rows;
  for (const std::string kind :
       {"fixed-step-x5", "gpu-only", "capgpu"}) {
    rows.emplace_back(kind, run_one(kind));
    const auto& o = rows.back().second;
    t.add_row({kind, telemetry::fmt(o.steady_power, 1),
               telemetry::fmt(100.0 * o.peak_stress, 1) + "%",
               o.trip_time >= 0.0
                   ? "TRIPPED @" + telemetry::fmt(o.trip_time, 0) + "s"
                   : "no"});
  }
  t.print();

  std::printf("\nShape checks:\n");
  std::printf("  Fixed-Step x5's oscillation stresses the breaker hard: %s\n",
              rows[0].second.peak_stress > 0.5 ? "PASS" : "FAIL");
  std::printf("  control-theoretic cappers stay well clear (<15%%):      %s\n",
              (rows[1].second.peak_stress < 0.15 &&
               rows[2].second.peak_stress < 0.15)
                  ? "PASS"
                  : "FAIL");
  std::printf("  CapGPU never trips:                                    %s\n",
              rows[2].second.trip_time < 0.0 ? "PASS" : "FAIL");
  return 0;
}
