// Reproduces Figure 7 (paper Sec 6.3): application performance under
// capping at 900 W — (a) GPU inference throughput, (b) CPU throughput,
// (c) GPU inference latency, (d) CPU latency — for Safe Fixed-Step,
// GPU-Only, and CapGPU. The paper's result: CapGPU has the highest GPU
// throughput and lowest GPU latency; its CPU-side metrics are slightly
// worse than GPU-Only's (acceptable: the CPU job has no SLO).
#include <cstdio>

#include "baselines/gpu_only.hpp"
#include "baselines/safe_fixed_step.hpp"
#include "common.hpp"
#include "telemetry/table.hpp"

using namespace capgpu;

namespace {

struct Perf {
  std::string name;
  double gpu_thr[3];
  double gpu_lat[3];
  double p95[3];
  double p99[3];
  double cpu_thr;
  double cpu_lat;
};

Perf measure(const std::string& name, core::RunResult res) {
  Perf p;
  p.name = name;
  for (std::size_t i = 0; i < 3; ++i) {
    p.gpu_thr[i] = bench::steady_mean(res.gpu_throughput[i], 20);
    p.gpu_lat[i] = bench::steady_mean(res.gpu_latency[i], 20);
    p.p95[i] = res.gpu_latency_dist[i].quantile(0.95);
    p.p99[i] = res.gpu_latency_dist[i].quantile(0.99);
  }
  p.cpu_thr = bench::steady_mean(res.cpu_throughput, 20);
  p.cpu_lat = bench::steady_mean(res.cpu_latency, 20) * 1000.0;  // ms
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  capgpu::bench::init(argc, argv);
  bench::print_banner("Figure 7: application performance under a 900 W cap",
                      "paper Sec 6.3, Fig 7(a)-(d)");
  const auto& model = bench::testbed_model().model;

  core::RunOptions opt;
  opt.periods = 100;
  opt.set_point = 900_W;

  std::vector<Perf> perfs;
  {
    core::ServerRig rig;
    baselines::FixedStepConfig cfg;
    const double margin = baselines::SafeFixedStepController::estimate_margin(
        model, rig.device_ranges(), cfg);
    baselines::SafeFixedStepController ctl(cfg, rig.device_ranges(), 900_W,
                                           margin);
    perfs.push_back(measure("Safe Fixed-Step", rig.run(ctl, opt)));
  }
  {
    core::ServerRig rig;
    baselines::GpuOnlyController ctl(rig.device_ranges(), model,
                                     bench::kBaselinePole, 900_W);
    perfs.push_back(measure("GPU-Only", rig.run(ctl, opt)));
  }
  {
    core::ServerRig rig;
    core::CapGpuController ctl = bench::make_capgpu(rig, 900_W);
    perfs.push_back(measure("CapGPU", rig.run(ctl, opt)));
  }

  telemetry::Table a("(a) GPU inference throughput, img/s (steady state)");
  a.set_header({"Method", "ResNet50", "Swin-T", "VGG16", "Total"});
  for (const auto& p : perfs) {
    a.add_row(p.name, {p.gpu_thr[0], p.gpu_thr[1], p.gpu_thr[2],
                       p.gpu_thr[0] + p.gpu_thr[1] + p.gpu_thr[2]}, 1);
  }
  a.print();

  telemetry::Table c("(c) GPU inference latency, s/batch (mean | p95 | p99)");
  c.set_header({"Method", "ResNet50", "Swin-T", "VGG16"});
  for (const auto& p : perfs) {
    std::vector<std::string> row{p.name};
    for (int i = 0; i < 3; ++i) {
      row.push_back(telemetry::fmt(p.gpu_lat[i], 3) + " | " +
                    telemetry::fmt(p.p95[i], 3) + " | " +
                    telemetry::fmt(p.p99[i], 3));
    }
    c.add_row(std::move(row));
  }
  c.print();

  telemetry::Table b("(b)+(d) CPU workload (exhaustive feature selection)");
  b.set_header({"Method", "Throughput subsets/s", "Latency ms/subset"});
  for (const auto& p : perfs) {
    b.add_row(p.name, {p.cpu_thr, p.cpu_lat}, 1);
  }
  b.print();

  const auto total = [](const Perf& p) {
    return p.gpu_thr[0] + p.gpu_thr[1] + p.gpu_thr[2];
  };
  std::printf("\nShape checks (paper Fig 7):\n");
  std::printf("  CapGPU highest total GPU throughput: %s\n",
              (total(perfs[2]) > total(perfs[1]) &&
               total(perfs[2]) > total(perfs[0]))
                  ? "PASS"
                  : "FAIL");
  // Safe Fixed-Step can favour a single model (it funnels every step into
  // the highest-utilization GPU), so the latency comparison is on the mean
  // across models, matching how Fig 7(c) summarises the result.
  const auto mean_lat = [](const Perf& p) {
    return (p.gpu_lat[0] + p.gpu_lat[1] + p.gpu_lat[2]) / 3.0;
  };
  std::printf("  CapGPU lowest mean GPU latency:      %s\n",
              (mean_lat(perfs[2]) < mean_lat(perfs[0]) &&
               mean_lat(perfs[2]) < mean_lat(perfs[1]))
                  ? "PASS"
                  : "FAIL");
  std::printf("  CapGPU CPU latency slightly higher than GPU-Only "
              "(acceptable, no SLO): %s\n",
              perfs[2].cpu_lat >= perfs[1].cpu_lat ? "PASS" : "FAIL");
  return 0;
}
