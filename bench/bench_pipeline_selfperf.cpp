// Workload hot-path microbenchmark: the pooled SoA request pipeline vs the
// pre-overhaul value-passing pipeline, measured in requests completed per
// wall-clock second.
//
// The old pipeline is embedded below (legacy::LegacyStream) so the
// comparison stays honest after the rewrite: requests travel as 48-byte
// RequestTimeline values copied through a std::deque, producers block by
// registering std::function callbacks on the queue, every batch pop
// allocates a fresh vector, and open-loop arrivals arrive one engine event
// (and one std::function) at a time. The current pipeline moves 32-bit
// pool ids through a fixed ring, parks blocked/idle workers as plain
// indices, and takes Poisson arrivals in 64-gap chunks.
//
// Both sides run identical simulations (stage_stats off, zero jitter, the
// same arrival RNG) on the same engine kernel; only the workload layer
// differs. Results append to a JSON report (default BENCH_pipeline.json,
// override with --out <path>) which scripts/run_perf.sh merges into
// BENCH_perf.json; docs/performance.md describes the format.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common.hpp"
#include "common/error.hpp"
#include "common/options.hpp"
#include "common/rng.hpp"
#include "core/capgpu_controller.hpp"
#include "core/rig.hpp"
#include "hw/server_model.hpp"
#include "sim/engine.hpp"
#include "telemetry/energy.hpp"
#include "telemetry/flight.hpp"
#include "telemetry/metric_names.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/table.hpp"
#include "telemetry/trace.hpp"
#include "workload/arrivals.hpp"
#include "workload/latency_law.hpp"
#include "workload/pipeline.hpp"
#include "workload/request_timeline.hpp"

using namespace capgpu;

namespace legacy {

// The pre-overhaul monitors, verbatim: every record() pushes a 16-byte
// sample into a std::deque, and the periodic trim pops (and eventually
// frees) chunks from the front, so the rolling window keeps walking into
// cold pages. The current SampleRing-backed monitors recycle one flat
// allocation instead.
class LegacyThroughputMonitor {
 public:
  explicit LegacyThroughputMonitor(double max_rate) : max_rate_(max_rate) {
    CAPGPU_REQUIRE(max_rate > 0.0, "max_rate must be positive");
  }

  void record(sim::SimTime now, double count = 1.0) {
    events_.push_back(Event{now, count});
    total_ += count;
  }

  [[nodiscard]] double rate(sim::SimTime now, double window) const {
    const double cutoff = now - window;
    double sum = 0.0;
    for (auto it = events_.rbegin(); it != events_.rend(); ++it) {
      if (it->time <= cutoff) break;
      sum += it->count;
    }
    return sum / window;
  }

  void trim(sim::SimTime now, double horizon = 600.0) {
    const double cutoff = now - horizon;
    while (!events_.empty() && events_.front().time <= cutoff) {
      events_.pop_front();
    }
  }

 private:
  struct Event {
    sim::SimTime time;
    double count;
  };
  double max_rate_;
  double total_{0.0};
  std::deque<Event> events_;
};

class LegacyLatencyMonitor {
 public:
  void record(sim::SimTime now, double latency_s) {
    samples_.push_back(Sample{now, latency_s});
    lifetime_.add(latency_s);
  }

  [[nodiscard]] double mean(sim::SimTime now, double window) const {
    const double cutoff = now - window;
    double sum = 0.0;
    std::size_t n = 0;
    for (auto it = samples_.rbegin(); it != samples_.rend(); ++it) {
      if (it->time <= cutoff) break;
      sum += it->latency;
      ++n;
    }
    return n ? sum / static_cast<double>(n) : 0.0;
  }

  void trim(sim::SimTime now, double horizon = 600.0) {
    const double cutoff = now - horizon;
    while (!samples_.empty() && samples_.front().time <= cutoff) {
      samples_.pop_front();
    }
  }

 private:
  struct Sample {
    sim::SimTime time;
    double latency;
  };
  std::deque<Sample> samples_;
  telemetry::RunningStats lifetime_;
};

// The pre-overhaul queue, verbatim: a deque of timeline values with
// std::function block/notify hooks.
class LegacyQueue {
 public:
  explicit LegacyQueue(std::size_t capacity) : capacity_(capacity) {
    CAPGPU_REQUIRE(capacity > 0, "queue capacity must be positive");
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t size() const { return items_.size(); }
  [[nodiscard]] bool full() const { return items_.size() >= capacity_; }

  bool try_push(workload::RequestTimeline item, sim::SimTime now) {
    if (full()) return false;
    item.enqueued = now;
    items_.push_back(item);
    notify_consumer();
    return true;
  }

  void wait_for_space(std::function<void()> cb) {
    blocked_producers_.push_back(std::move(cb));
  }

  void wait_for_items(std::size_t n, std::function<void()> cb) {
    consumer_threshold_ = n;
    consumer_cb_ = std::move(cb);
    notify_consumer();
  }

  [[nodiscard]] std::vector<workload::RequestTimeline> pop(std::size_t n) {
    std::vector<workload::RequestTimeline> items(
        items_.begin(), items_.begin() + static_cast<long>(n));
    items_.erase(items_.begin(), items_.begin() + static_cast<long>(n));
    notify_producers();
    return items;
  }

 private:
  void notify_consumer() {
    if (consumer_cb_ && items_.size() >= consumer_threshold_) {
      auto cb = std::exchange(consumer_cb_, nullptr);
      consumer_threshold_ = 0;
      cb();
    }
  }

  void notify_producers() {
    while (!full() && !blocked_producers_.empty()) {
      auto cb = std::move(blocked_producers_.back());
      blocked_producers_.pop_back();
      cb();
    }
  }

  std::size_t capacity_;
  std::deque<workload::RequestTimeline> items_;
  std::vector<std::function<void()>> blocked_producers_;
  std::size_t consumer_threshold_{0};
  std::function<void()> consumer_cb_;
};

// The pre-overhaul stream hot path, verbatim modulo the request-attribution
// block (stage_stats is off on both sides of this bench, so that code never
// ran). Requests are RequestTimeline values copied into the queue and again
// into the per-batch vector; blocking re-registers a std::function per
// stall.
class LegacyStream {
 public:
  LegacyStream(sim::Engine& engine, hw::ServerModel& server,
               std::size_t gpu_index, workload::StreamParams params, Rng rng)
      : engine_(&engine),
        server_(&server),
        gpu_index_(gpu_index),
        params_(std::move(params)),
        rng_(rng),
        queue_(params_.queue_capacity ? params_.queue_capacity
                                      : 2 * params_.model.batch_size),
        workers_(params_.n_preprocess_workers),
        batch_size_(params_.model.batch_size),
        images_(params_.model.batch_size / params_.model.e_min_batch_s) {
    auto& registry = telemetry::MetricsRegistry::current();
    const telemetry::Labels by_model{{"model", params_.model.name}};
    images_metric_ = &registry.counter(telemetry::metric::kImagesCompleted,
                                       "Images completed by the GPU stage",
                                       by_model);
    batches_metric_ = &registry.counter(telemetry::metric::kBatchesCompleted,
                                        "Batches executed by the GPU stage",
                                        by_model);
    telemetry::HistogramSpec latency_spec;
    latency_spec.min_bound = 1e-3;
    latency_spec.decades = 6;
    latency_metric_ = &registry.histogram(
        telemetry::metric::kBatchLatencySeconds,
        "GPU batch execution latency (the quantity under SLO)", latency_spec,
        by_model);
    trace_tid_ = telemetry::Tracer::current().register_track(
        "gpu" + std::to_string(gpu_index_) + ":" + params_.model.name);
  }

  void start() {
    for (std::size_t w = 0; w < workers_.size(); ++w) worker_start_image(w);
    consumer_try_start();
  }

  void submit_requests(std::size_t n_images) {
    const sim::SimTime now = engine_->now();
    for (std::size_t i = 0; i < n_images; ++i) pending_arrivals_.push_back(now);
    while (!idle_workers_.empty() && !pending_arrivals_.empty()) {
      const std::size_t w = idle_workers_.back();
      idle_workers_.pop_back();
      worker_start_image(w);
    }
  }

  [[nodiscard]] std::uint64_t images_completed() const {
    return images_completed_;
  }

  // Present in the pre-overhaul stream (HostCpuLoad aggregation hook);
  // unset here, as in production runs without a host-load model, but the
  // per-image callable check it implies is part of the legacy cost.
  std::function<void(int)> on_worker_compute_change;

  // The rig trims every monitor each control period (core::ServerRig);
  // the bench mirrors that so monitor memory cycles as in production.
  void trim_monitors(sim::SimTime now) {
    images_.trim(now);
    batch_latency_.trim(now);
    queue_delay_.trim(now);
    preprocess_latency_.trim(now);
    preprocess_compute_.trim(now);
  }

 private:
  struct Worker {
    bool computing{false};
    workload::RequestTimeline timeline;
  };

  void set_worker_computing(std::size_t w, bool computing) {
    if (workers_[w].computing == computing) return;
    workers_[w].computing = computing;
    if (on_worker_compute_change) {
      on_worker_compute_change(computing ? +1 : -1);
    }
  }

  double preprocess_duration() {
    const double f_ghz = server_->cpu().frequency().value / 1000.0;
    const double base = params_.model.preprocess_s_ghz / f_ghz;
    const double j = params_.model.jitter_frac;
    return base * rng_.uniform(1.0 - j, 1.0 + j);
  }

  double batch_duration() {
    const auto& gpu = server_->gpu(gpu_index_);
    const double base =
        workload::latency_at(params_.model.e_min_for_batch(batch_size_),
                             params_.model.gpu_f_max, gpu.core_clock(),
                             params_.model.gamma) *
        gpu.memory_slowdown();
    const double j = params_.model.jitter_frac;
    return base * rng_.uniform(1.0 - j, 1.0 + j);
  }

  void worker_start_image(std::size_t w) {
    const sim::SimTime now = engine_->now();
    sim::SimTime arrival = now;
    if (params_.open_loop) {
      if (pending_arrivals_.empty()) {
        idle_workers_.push_back(w);
        return;
      }
      arrival = pending_arrivals_.front();
      pending_arrivals_.pop_front();
    }
    workload::RequestTimeline& timeline = workers_[w].timeline;
    timeline = workload::RequestTimeline{};
    timeline.arrival = arrival;
    timeline.preprocess_start = now;
    set_worker_computing(w, true);
    const double compute = preprocess_duration();
    engine_->schedule_after(
        compute, [this, w, compute] { worker_finish_image(w, compute); });
  }

  void worker_finish_image(std::size_t w, double compute) {
    set_worker_computing(w, false);
    workers_[w].timeline.preprocess_done = engine_->now();
    preprocess_compute_.record(engine_->now(), compute);
    worker_try_push(w);
  }

  void worker_try_push(std::size_t w) {
    if (queue_.try_push(workers_[w].timeline, engine_->now())) {
      preprocess_latency_.record(
          engine_->now(),
          engine_->now() - workers_[w].timeline.preprocess_start);
      worker_start_image(w);
    } else {
      queue_.wait_for_space([this, w] { worker_try_push(w); });
    }
  }

  void consumer_try_start() {
    const std::size_t batch = batch_size_;
    if (queue_.size() >= batch) {
      auto items = queue_.pop(batch);
      const sim::SimTime now = engine_->now();
      gpu_busy_ = true;
      server_->gpu(gpu_index_).set_utilization(params_.model.gpu_busy_util);
      for (auto& item : items) {
        item.batch_start = now;
        queue_delay_.record(now, now - item.enqueued);
      }
      batch_span_ = telemetry::Tracer::current().begin_span(trace_tid_,
                                                            "batch",
                                                            "workload");
      const double exec = batch_duration();
      engine_->schedule_after(exec, [this, exec,
                                     items = std::move(items)]() mutable {
        consumer_finish_batch(exec, items);
      });
    } else {
      queue_.wait_for_items(batch, [this] { consumer_try_start(); });
    }
  }

  void consumer_finish_batch(double exec_latency,
                             std::vector<workload::RequestTimeline>& items) {
    const sim::SimTime now = engine_->now();
    gpu_busy_ = false;
    server_->gpu(gpu_index_).set_utilization(0.0);
    batch_latency_.record(now, exec_latency);
    images_.record(now, static_cast<double>(items.size()));
    images_completed_ += items.size();
    ++batches_completed_;
    latency_metric_->observe(exec_latency);
    images_metric_->inc(static_cast<double>(items.size()));
    batches_metric_->inc();
    for (auto& item : items) item.completed = now;
    if (batch_span_ != 0) {
      telemetry::Tracer::current().end_span(
          batch_span_, {{"images", static_cast<double>(items.size())},
                        {"exec_s", exec_latency}});
      batch_span_ = 0;
    }
    consumer_try_start();
  }

  sim::Engine* engine_;
  hw::ServerModel* server_;
  std::size_t gpu_index_;
  workload::StreamParams params_;
  Rng rng_;
  LegacyQueue queue_;
  std::vector<Worker> workers_;
  bool gpu_busy_{false};
  std::size_t batch_size_{0};
  std::deque<sim::SimTime> pending_arrivals_;
  std::vector<std::size_t> idle_workers_;
  LegacyThroughputMonitor images_;
  LegacyLatencyMonitor batch_latency_;
  LegacyLatencyMonitor queue_delay_;
  LegacyLatencyMonitor preprocess_latency_;
  LegacyLatencyMonitor preprocess_compute_;
  std::uint64_t images_completed_{0};
  std::uint64_t batches_completed_{0};
  telemetry::Counter* images_metric_{nullptr};
  telemetry::Counter* batches_metric_{nullptr};
  telemetry::LogLinearHistogram* latency_metric_{nullptr};
  int trace_tid_{0};
  std::uint64_t batch_span_{0};
};

}  // namespace legacy

namespace {

// Sim horizons: ~3.2M images closed-loop, ~1.9M images (and ~3M arrivals)
// open-loop per run. The open-loop horizon is shorter: the surge backlog
// grows for the whole run, and a longer horizon would mostly measure DRAM
// traffic on the multi-megabyte pending queue instead of the request path.
constexpr double kHorizonS = 20000.0;
constexpr double kOpenHorizonS = 4000.0;
// Monitor-trim cadence, matching the rig's control period (the rig trims
// every stream monitor once per period; an untrimmed monitor would grow
// without bound and the bench would mostly measure cold deque pages).
constexpr double kTrimPeriodS = 4.0;

void trim_monitors(workload::InferenceStream& stream, sim::SimTime now) {
  stream.images_throughput().trim(now);
  stream.batch_latency().trim(now);
  stream.queue_delay().trim(now);
  stream.preprocess_latency().trim(now);
  stream.preprocess_compute_latency().trim(now);
}

workload::StreamParams bench_params(bool open_loop) {
  workload::StreamParams p;
  p.model.name = "pipeperf";
  p.model.batch_size = 8;
  p.model.e_min_batch_s = 0.05;  // peak 160 img/s
  p.model.gamma = 0.91;
  p.model.gpu_f_max = 1350_MHz;
  p.model.preprocess_s_ghz = 0.005;
  p.model.gpu_busy_util = 0.9;
  p.model.jitter_frac = 0.0;
  p.n_preprocess_workers = 2;
  p.open_loop = open_loop;
  p.stage_stats = false;  // hot path only; the attribution overhead has its
                          // own guard in bench_engine_selfperf
  return p;
}

// The open-loop load workload is the paper's Table 1 regime: a fast GPU
// starved by CPU-side preprocessing. Two workers supply 960 img/s against
// a 1600 img/s GPU peak, so the preprocess stage is the bottleneck and
// arrivals outrun service for the whole run.
workload::StreamParams open_load_params() {
  workload::StreamParams p = bench_params(true);
  p.model.batch_size = 32;
  p.model.e_min_batch_s = 0.02;  // peak 1600 img/s; workers cap at 960
  return p;
}

void setup_server(hw::ServerModel& server) {
  server.cpu().set_frequency(2.4_GHz);
  server.gpu(0).set_core_clock(1350_MHz);
}

struct Measurement {
  double requests_per_s{0.0};
  std::uint64_t requests{0};
  std::uint64_t events{0};
};

// Saturated closed-loop pipeline: the paper's experiment configuration.
// Exercises queue traffic, producer blocking, and batch recycling.
template <bool kLegacy>
Measurement run_closed_loop() {
  sim::Engine engine;
  hw::ServerModel server = hw::ServerModel::v100_testbed(1);
  setup_server(server);
  const workload::StreamParams p = bench_params(false);
  const auto t0 = std::chrono::steady_clock::now();
  std::uint64_t done = 0;
  if constexpr (kLegacy) {
    legacy::LegacyStream stream(engine, server, 0, p, Rng(1));
    stream.start();
    engine.schedule_periodic(kTrimPeriodS,
                             [&] { stream.trim_monitors(engine.now()); });
    engine.run_until(kHorizonS);
    done = stream.images_completed();
  } else {
    workload::InferenceStream stream(engine, server, 0, p, Rng(1));
    stream.start();
    engine.schedule_periodic(kTrimPeriodS,
                             [&] { trim_monitors(stream, engine.now()); });
    engine.run_until(kHorizonS);
    done = stream.images_completed();
  }
  const auto t1 = std::chrono::steady_clock::now();
  const double secs = std::chrono::duration<double>(t1 - t0).count();
  return Measurement{secs > 0.0 ? static_cast<double>(done) / secs : 0.0,
                     done, engine.events_executed()};
}

// Open-loop Poisson load sustained above preprocess supply (a demand
// surge, the regime where the high-throughput hot path matters: arrivals
// always pending, workers never idle). The legacy side takes one engine
// event (plus a std::function and a deque push) per arrival; the current
// side draws chunks of 64 gaps per generation event and hands pending
// arrivals to workers at preprocess completion, with no per-arrival events
// at all. Below saturation both sides converge — each arrival then needs
// one timed wakeup regardless of how it was generated.
template <bool kLegacy>
Measurement run_open_loop() {
  sim::Engine engine;
  hw::ServerModel server = hw::ServerModel::v100_testbed(1);
  setup_server(server);
  const workload::StreamParams p = open_load_params();
  // A demand surge at 1.2x -> 1.9x of the 960 img/s preprocess supply; the
  // mid-run rate change also exercises the generation loop's boundary
  // re-draw.
  const std::vector<workload::RatePoint> schedule{
      {0.0, 1.2 * 960.0}, {kOpenHorizonS / 2, 1.9 * 960.0}};
  const auto t0 = std::chrono::steady_clock::now();
  std::uint64_t done = 0;
  if constexpr (kLegacy) {
    legacy::LegacyStream stream(engine, server, 0, p, Rng(1));
    stream.start();
    engine.schedule_periodic(kTrimPeriodS,
                             [&] { stream.trim_monitors(engine.now()); });
    workload::ArrivalProcess arrivals(engine, Rng(7), schedule);
    arrivals.on_arrival = [&stream] { stream.submit_requests(1); };
    arrivals.start();
    engine.run_until(kOpenHorizonS);
    done = stream.images_completed();
  } else {
    workload::InferenceStream stream(engine, server, 0, p, Rng(1));
    stream.start();
    engine.schedule_periodic(kTrimPeriodS,
                             [&] { trim_monitors(stream, engine.now()); });
    workload::ArrivalProcess arrivals(engine, Rng(7), schedule);
    arrivals.on_arrivals = [&stream](const double* t, std::size_t n) {
      stream.submit_arrivals(t, n);
    };
    arrivals.start();
    engine.run_until(kOpenHorizonS);
    done = stream.images_completed();
  }
  const auto t1 = std::chrono::steady_clock::now();
  const double secs = std::chrono::duration<double>(t1 - t0).count();
  return Measurement{secs > 0.0 ? static_cast<double>(done) / secs : 0.0,
                     done, engine.events_executed()};
}

struct Row {
  std::string name;
  Measurement legacy_m;
  Measurement pooled_m;
  [[nodiscard]] double speedup() const {
    return legacy_m.requests_per_s > 0.0
               ? pooled_m.requests_per_s / legacy_m.requests_per_s
               : 0.0;
  }
};

// Flight-recorder / energy-ledger overhead: one closed-loop CapGPU run
// (the analytic power model skips the sysid sweep) with the feature off vs
// on, under private telemetry instances so reps don't accumulate state.
// The recorder adds a struct copy plus health bookkeeping per control
// period; the energy ledger adds one meter average plus batch-drain
// accounting per period and one struct append per completed batch. The
// guards keep each within the repo's 5% observability budget on a full run.
double run_control_loop_seconds(bool flight_on, bool energy_on = false) {
  telemetry::MetricsRegistry registry;
  telemetry::MetricsRegistry::ScopedCurrent metrics_guard(registry);
  telemetry::FlightRecorder recorder;
  recorder.set_enabled(flight_on);
  telemetry::FlightRecorder::ScopedCurrent flight_guard(recorder);
  telemetry::EnergyRegistry energy;
  telemetry::EnergyRegistry::ScopedCurrent energy_guard(energy);
  core::ServerRig rig;
  core::CapGpuController ctl(core::CapGpuConfig{}, rig.device_ranges(),
                             rig.analytic_power_model(), 900_W,
                             rig.latency_models());
  core::RunOptions opt;
  opt.periods = 1200;  // long enough (~75 ms) that scheduler jitter stays
                       // well under the 5% overhead budget being measured
  opt.set_point = 900_W;
  opt.energy_attribution = energy_on;
  const auto t0 = std::chrono::steady_clock::now();
  (void)rig.run(ctl, opt);
  const auto t1 = std::chrono::steady_clock::now();
  recorder.finish();
  return std::chrono::duration<double>(t1 - t0).count();
}

struct FeatureOverhead {
  double baseline_s{0.0};
  double feature_s{0.0};
  [[nodiscard]] double overhead_frac() const {
    return baseline_s > 0.0 ? feature_s / baseline_s - 1.0 : 0.0;
  }
};

template <typename BaselineRun, typename FeatureRun>
FeatureOverhead measure_overhead(int reps, BaselineRun&& baseline_run,
                                 FeatureRun&& feature_run) {
  // A single control-loop run is ~25 ms, so extra reps are cheap; triple
  // the request to keep the min-of-reps estimate stable against transient
  // machine noise (the gate compares against a 5% budget, and a single
  // slow feature rep in a min-of-3 can fake a budget overrun).
  const int overhead_reps = 3 * reps;
  FeatureOverhead m{1e300, 1e300};
  for (int r = 0; r < overhead_reps; ++r) {
    m.baseline_s = std::min(m.baseline_s, baseline_run());
    m.feature_s = std::min(m.feature_s, feature_run());
  }
  return m;
}

// Reps alternate legacy/pooled so both pipelines sample the same machine
// conditions; best-of keeps the least-perturbed rep of each (noise only
// ever slows a run down).
template <typename LegacyRun, typename PooledRun>
Row measure_pair(const std::string& name, LegacyRun&& legacy_run,
                 PooledRun&& pooled_run, int reps) {
  Row row{name, {}, {}};
  for (int r = 0; r < reps; ++r) {
    const Measurement lm = legacy_run();
    if (lm.requests_per_s > row.legacy_m.requests_per_s) row.legacy_m = lm;
    const Measurement pm = pooled_run();
    if (pm.requests_per_s > row.pooled_m.requests_per_s) row.pooled_m = pm;
    if (std::getenv("CAPGPU_SELFPERF_DEBUG")) {
      std::fprintf(stderr,
                   "  %s rep %d: legacy %.2fM req/s (%.2f ev/req), "
                   "pooled %.2fM req/s (%.2f ev/req)\n",
                   name.c_str(), r, lm.requests_per_s / 1e6,
                   static_cast<double>(lm.events) /
                       static_cast<double>(lm.requests),
                   pm.requests_per_s / 1e6,
                   static_cast<double>(pm.events) /
                       static_cast<double>(pm.requests));
    }
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  bench::init(argc, argv);
  std::string out_path = "BENCH_pipeline.json";
  int reps = 9;
  try {
    const auto flags = extract_flags(argc, argv, {"out", "reps"});
    if (auto it = flags.find("out"); it != flags.end()) out_path = it->second;
    if (auto it = flags.find("reps"); it != flags.end()) {
      reps = std::stoi(it->second);
      CAPGPU_REQUIRE(reps > 0, "--reps must be positive");
    }
  } catch (const InvalidArgument& e) {
    std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
    return 2;
  }
  bench::print_banner(
      "Pipeline self-perf: pooled SoA requests vs value-passing pipeline",
      "requests/sec through one inference stream");

  std::vector<Row> rows;
  rows.push_back(measure_pair(
      "closed-loop-saturated", [] { return run_closed_loop<true>(); },
      [] { return run_closed_loop<false>(); }, reps));
  rows.push_back(measure_pair(
      "open-loop-load", [] { return run_open_loop<true>(); },
      [] { return run_open_loop<false>(); }, reps));

  telemetry::Table t("requests/sec, best of " + std::to_string(reps));
  t.set_header({"workload", "requests", "legacy req/s", "pooled req/s",
                "speedup"});
  double worst_speedup = 1e9;
  for (const Row& r : rows) {
    t.add_row({r.name, std::to_string(r.pooled_m.requests),
               telemetry::fmt(r.legacy_m.requests_per_s / 1e6, 2) + "M",
               telemetry::fmt(r.pooled_m.requests_per_s / 1e6, 2) + "M",
               telemetry::fmt(r.speedup(), 2) + "x"});
    worst_speedup = std::min(worst_speedup, r.speedup());
  }
  t.print();
  std::printf("\n  worst-case speedup: %.2fx (target >= 2.0x on open-loop)\n",
              worst_speedup);

  const FeatureOverhead flight = measure_overhead(
      reps, [] { return run_control_loop_seconds(false); },
      [] { return run_control_loop_seconds(true); });
  std::printf(
      "  flight recorder: baseline %.3f s, recording %.3f s -> %+.1f%% "
      "(budget 5%%)\n",
      flight.baseline_s, flight.feature_s, flight.overhead_frac() * 100.0);

  const FeatureOverhead energy = measure_overhead(
      reps, [] { return run_control_loop_seconds(false, false); },
      [] { return run_control_loop_seconds(false, true); });
  std::printf(
      "  energy ledger:   baseline %.3f s, attributing %.3f s -> %+.1f%% "
      "(budget 5%%)\n",
      energy.baseline_s, energy.feature_s, energy.overhead_frac() * 100.0);

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << "{\n  \"pipeline_selfperf\": {\n    \"reps\": " << reps
      << ",\n    \"workloads\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "      {\"name\": \"%s\", \"requests\": %llu, "
                  "\"legacy_requests_per_s\": %.0f, "
                  "\"pooled_requests_per_s\": %.0f, \"speedup\": %.3f}%s\n",
                  r.name.c_str(),
                  static_cast<unsigned long long>(r.pooled_m.requests),
                  r.legacy_m.requests_per_s, r.pooled_m.requests_per_s,
                  r.speedup(), i + 1 < rows.size() ? "," : "");
    out << buf;
  }
  char tail[640];
  std::snprintf(tail, sizeof(tail),
                "    ],\n    \"worst_speedup\": %.3f\n  },\n"
                "  \"flight_overhead\": {\n"
                "    \"baseline_s\": %.6f,\n"
                "    \"flight_s\": %.6f,\n"
                "    \"overhead_frac\": %.4f,\n"
                "    \"budget_frac\": 0.05\n  },\n"
                "  \"energy_overhead\": {\n"
                "    \"baseline_s\": %.6f,\n"
                "    \"energy_s\": %.6f,\n"
                "    \"overhead_frac\": %.4f,\n"
                "    \"budget_frac\": 0.05\n  }\n}\n",
                worst_speedup, flight.baseline_s, flight.feature_s,
                flight.overhead_frac(), energy.baseline_s, energy.feature_s,
                energy.overhead_frac());
  out << tail;
  std::printf("  [perf] %s\n", out_path.c_str());
  return 0;
}
