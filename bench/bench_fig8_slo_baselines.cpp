// Reproduces Figure 8 (paper Sec 6.4): inference latency vs per-GPU SLOs
// under Safe Fixed-Step and GPU-Only at a 1000 W budget. Neither can
// allocate per-device frequencies by SLO: GPU-Only shares one clock across
// all GPUs and Safe Fixed-Step moves one device per period on utilization,
// so when the SLO on GPU 0 tightens at period 14 they miss deadlines.
#include <cstdio>

#include "baselines/gpu_only.hpp"
#include "baselines/safe_fixed_step.hpp"
#include "common.hpp"
#include "runner/scenario_runner.hpp"
#include "slo_helpers.hpp"

using namespace capgpu;

int main(int argc, char** argv) {
  capgpu::bench::init(argc, argv);
  bench::print_banner("Figure 8: SLO adherence of Safe Fixed-Step / GPU-Only",
                      "paper Sec 6.4, Fig 8; set point 1000 W");
  const auto& model = bench::testbed_model().model;

  core::RunOptions opt;
  opt.periods = 60;
  opt.set_point = 1000_W;
  bench::apply_slo_schedule(opt);

  struct Entry {
    std::string name;
    core::RunResult res;
  };
  // Both baselines are independent scenarios — run through the runner.
  runner::ScenarioRunner sr({bench::jobs()});
  std::vector<Entry> entries = sr.map(2, [&](std::size_t idx) -> Entry {
    core::ServerRig rig;
    if (idx == 0) {
      baselines::FixedStepConfig cfg;
      const double margin =
          baselines::SafeFixedStepController::estimate_margin(
              model, rig.device_ranges(), cfg);
      baselines::SafeFixedStepController ctl(cfg, rig.device_ranges(), 1000_W,
                                             margin);
      return {"Safe Fixed-Step", rig.run(ctl, opt)};
    }
    baselines::GpuOnlyController ctl(rig.device_ranges(), model,
                                     bench::kBaselinePole, 1000_W);
    return {"GPU-Only", rig.run(ctl, opt)};
  });

  for (const auto& e : entries) {
    std::printf("\n%s — per-GPU batch latency vs SLO (every 4th period):\n",
                e.name.c_str());
    std::printf("  %-8s | %-19s | %-19s | %-19s\n", "period",
                "ResNet50 lat/SLO", "Swin-T lat/SLO", "VGG16 lat/SLO");
    for (std::size_t k = 0; k < e.res.periods; k += 4) {
      std::printf("  %-8zu |", k);
      for (std::size_t i = 0; i < 3; ++i) {
        const double lat = e.res.gpu_latency[i].value_at(k);
        const double slo = e.res.gpu_slo[i].value_at(k);
        std::printf(" %6.3f /%6.3f %s |", lat, slo,
                    lat > slo ? "MISS" : " ok ");
      }
      std::printf("\n");
    }
  }

  std::printf("\nDeadline miss rates over the run:\n");
  for (const auto& e : entries) bench::print_miss_rates(e.name, e.res);

  std::printf("\nRequest latency by pipeline stage (both baselines pooled):\n");
  bench::print_stage_quantiles();

  std::printf("\nShape checks (paper Fig 8):\n");
  bool some_misses = true;
  for (const auto& e : entries) {
    double worst = 0.0;
    for (const auto& m : e.res.slo_misses) worst = std::max(worst, m.ratio());
    some_misses = some_misses && worst > 0.25;
  }
  std::printf("  both baselines miss SLOs after the tightening: %s\n",
              some_misses ? "PASS" : "FAIL");
  return 0;
}
