// Ablation: the emergency memory-throttling governor (paper Sec 4.4).
//
// The paper: "If no such combination exists, then no single control
// algorithm can strictly enforce the set point through frequency
// adaptation alone. In such cases, additional system mechanisms (e.g.,
// memory throttling) must be integrated." This bench drops the cap below
// the DVFS floor and shows CapGPU alone railing above the cap, then the
// governor closing the gap by throttling GPU memory — and releasing it
// once the budget recovers.
#include <cstdio>

#include "common.hpp"
#include "core/emergency.hpp"

using namespace capgpu;

int main(int argc, char** argv) {
  capgpu::bench::init(argc, argv);
  bench::print_banner("Ablation: emergency memory throttling",
                      "paper Sec 4.4 infeasibility fallback");
  (void)bench::testbed_model();

  // Find the DVFS floor of the testbed (all clocks at minimum, workload
  // running): caps below this are unreachable by frequency adaptation.
  double floor_power = 0.0;
  {
    core::ServerRig probe;
    probe.engine().run_until(40.0);
    telemetry::RunningStats s;
    for (int k = 0; k < 20; ++k) {
      probe.engine().run_until(probe.engine().now() + 4.0);
      s.add(probe.hal().power_meter().average(Seconds{4.0}).value);
    }
    floor_power = s.mean();
  }
  const double cap = floor_power - 15.0;
  std::printf("\nDVFS floor of the testbed: %.1f W -> infeasible cap %.1f W\n",
              floor_power, cap);

  auto run_one = [&](bool with_governor) {
    core::ServerRig rig;
    core::CapGpuController ctl = bench::make_capgpu(rig, Watts{cap});
    core::EmergencyMemoryGovernor governor(rig.engine(), rig.server(),
                                           rig.hal().power_meter(),
                                           Watts{cap});
    if (with_governor) governor.start();
    core::RunOptions opt;
    opt.periods = 100;
    opt.set_point = Watts{cap};
    // Budget recovers at period 70: the governor should release.
    opt.set_point_changes[70] = Watts{floor_power + 150.0};
    if (with_governor) {
      rig.engine().schedule_at(70.0 * 4.0, [&governor, floor_power] {
        governor.set_cap(Watts{floor_power + 150.0});
      });
    }
    struct R {
      core::RunResult res;
      std::size_t engagements;
      std::size_t releases;
      std::size_t still_throttled;
    };
    core::RunResult res = rig.run(ctl, opt);
    return R{std::move(res), governor.engagements(), governor.releases(),
             governor.throttled_count()};
  };

  const auto without = run_one(false);
  const auto with = run_one(true);

  std::printf("\nPower traces (cap %.0f W until period 70, then %.0f W):\n",
              cap, floor_power + 150.0);
  bench::print_strip("DVFS only", without.res.power, cap - 60.0,
                     floor_power + 200.0);
  bench::print_strip("with governor", with.res.power, cap - 60.0,
                     floor_power + 200.0);

  telemetry::RunningStats dvfs_seg;
  telemetry::RunningStats gov_seg;
  for (std::size_t k = 30; k < 70; ++k) {
    dvfs_seg.add(without.res.power.value_at(k));
    gov_seg.add(with.res.power.value_at(k));
  }
  std::printf("\nDuring the infeasible window (periods 30-70):\n");
  std::printf("  DVFS only:     mean %.1f W (cap %.1f, excess %.1f)\n",
              dvfs_seg.mean(), cap, dvfs_seg.mean() - cap);
  std::printf("  with governor: mean %.1f W (excess %.1f), %zu boards "
              "throttled, %zu engagements\n",
              gov_seg.mean(), gov_seg.mean() - cap, with.still_throttled,
              with.engagements);
  std::printf("  after recovery: %zu releases, %zu still throttled\n",
              with.releases, with.still_throttled);

  std::printf("\nShape checks:\n");
  std::printf("  DVFS alone violates the infeasible cap:     %s\n",
              dvfs_seg.mean() > cap + 5.0 ? "PASS" : "FAIL");
  std::printf("  governor reduces the violation:             %s\n",
              gov_seg.mean() < dvfs_seg.mean() - 5.0 ? "PASS" : "FAIL");
  std::printf("  governor releases after the budget returns: %s\n",
              (with.releases >= 1 && with.still_throttled == 0) ? "PASS"
                                                                : "FAIL");
  return 0;
}
