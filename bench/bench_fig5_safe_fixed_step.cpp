// Reproduces Figure 5 (paper Sec 6.2): Safe Fixed-Step — Fixed-Step run
// against set_point - margin so the oscillation stays below the cap, at
// several step sizes. The paper notes it typically operates at or below
// the cap with at most an occasional violation.
#include <cstdio>

#include "baselines/safe_fixed_step.hpp"
#include "common.hpp"

using namespace capgpu;

int main(int argc, char** argv) {
  capgpu::bench::init(argc, argv);
  bench::print_banner("Figure 5: Safe Fixed-Step for different step sizes",
                      "paper Sec 6.2, Fig 5");
  const auto& model = bench::testbed_model().model;

  struct Entry {
    std::string name;
    double margin;
    core::RunResult result;
  };
  std::vector<Entry> entries;

  for (const int mult : {1, 2, 5}) {
    core::ServerRig rig;
    baselines::FixedStepConfig cfg;
    cfg.step_multiplier = mult;
    const double margin = baselines::SafeFixedStepController::estimate_margin(
        model, rig.device_ranges(), cfg);
    baselines::SafeFixedStepController ctl(cfg, rig.device_ranges(), 900_W,
                                           margin);
    core::RunOptions opt;
    opt.periods = 100;
    opt.set_point = 900_W;
    entries.push_back({"Safe Fixed-Step x" + std::to_string(mult), margin,
                       rig.run(ctl, opt)});
    bench::export_result_csv("fig5_safe_fixed_step_x" + std::to_string(mult),
                             entries.back().result);
  }

  std::printf("\nPower traces (range 600-1000 W; cap at 900 W):\n");
  for (const auto& e : entries) {
    bench::print_strip(e.name, e.result.power, 600.0, 1000.0);
  }

  std::printf("\nSteady-state behaviour (last 50 periods):\n");
  for (const auto& e : entries) {
    bench::print_power_summary(e.name, e.result, 900.0, 50);
    std::printf("    safety margin used: %.1f W -> inner target %.1f W\n",
                e.margin, 900.0 - e.margin);
  }

  std::printf("\nShape checks (paper Fig 5):\n");
  bool below = true;
  for (const auto& e : entries) {
    below = below && e.result.steady_power(50).mean() < 900.0;
  }
  std::printf("  every variant settles below the cap:      %s\n",
              below ? "PASS" : "FAIL");
  std::printf("  at most rare violations (x1: <=2 late):   %s\n",
              entries[0].result.power.count_above(905.0, 50) <= 2 ? "PASS"
                                                                  : "FAIL");
  std::printf("  larger margin costs more headroom (x5 mean < x1 mean): %s\n",
              entries[2].result.steady_power(50).mean() <
                      entries[0].result.steady_power(50).mean()
                  ? "PASS"
                  : "FAIL");
  return 0;
}
