// Reproduces Figure 2(a) (paper Sec 4.2): system identification on a
// 1 CPU + 1 GPU system — measured vs predicted power along the paper's
// sweep (GPU 435->1350 MHz at CPU 1.4 GHz, then CPU 1.0->2.1 GHz at GPU
// 495 MHz), fitted by least squares. The paper reports R^2 = 0.96.
#include <cstdio>

#include "common.hpp"
#include "control/sysid.hpp"
#include "core/rig.hpp"

using namespace capgpu;

int main(int argc, char** argv) {
  capgpu::bench::init(argc, argv);
  bench::print_banner("Figure 2(a): system identification fit",
                      "paper Sec 4.2, Fig 2(a); R^2 = 0.96 on the testbed");

  // 1 CPU + 1 GPU, as in the paper's example.
  core::RigConfig cfg;
  cfg.models = {workload::resnet50_v100()};
  core::ServerRig rig(cfg);
  auto& engine = rig.engine();
  auto& hal = rig.hal();

  control::SystemIdentifier identifier(2);
  struct Point {
    double f_cpu, f_gpu, measured;
  };
  std::vector<Point> points;

  auto settle_and_measure = [&](double f_cpu, double f_gpu) {
    hal.set_device_frequency(DeviceId{0}, Megahertz{f_cpu});
    hal.set_device_frequency(DeviceId{1}, Megahertz{f_gpu});
    engine.run_until(engine.now() + 8.0);
    engine.run_until(engine.now() + 4.0);
    const double p = hal.power_meter().average(Seconds{4.0}).value;
    identifier.add_sample({f_cpu, f_gpu}, Watts{p});
    points.push_back({f_cpu, f_gpu, p});
  };

  // Sweep 1: GPU 435 -> 1350 at CPU 1.4 GHz (paper's exact procedure).
  for (double f = 435.0; f <= 1350.0; f += 105.0) settle_and_measure(1400.0, f);
  // Sweep 2: CPU 1.0 -> 2.1 GHz at GPU 495 MHz.
  for (double f = 1000.0; f <= 2100.0; f += 100.0) settle_and_measure(f, 495.0);

  const control::IdentifiedModel fit = identifier.fit();
  std::printf("\nLeast-squares model: p = %.4f*f_cpu + %.4f*f_gpu + %.1f\n",
              fit.model.gain(0), fit.model.gain(1), fit.model.offset());
  std::printf("R^2 = %.4f (paper: 0.96), RMSE = %.2f W over %zu samples\n\n",
              fit.r_squared, fit.rmse_watts, fit.samples);

  std::printf("%10s %10s %12s %12s %10s\n", "f_cpu MHz", "f_gpu MHz",
              "measured W", "predicted W", "error W");
  for (const auto& pt : points) {
    const double pred = fit.model.predict({pt.f_cpu, pt.f_gpu}).value;
    std::printf("%10.0f %10.0f %12.1f %12.1f %+10.2f\n", pt.f_cpu, pt.f_gpu,
                pt.measured, pred, pt.measured - pred);
  }

  std::printf("\nShape check: R^2 >= 0.96: %s\n",
              fit.r_squared >= 0.96 ? "PASS" : "FAIL");
  return 0;
}
