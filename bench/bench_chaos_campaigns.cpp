// Extension bench: scored chaos campaigns over a fault-domain tree.
//
// The reference campaign browns out one PDU of a 2-PDU rack (4 single-GPU
// CapGPU rigs, saturated resnet50 serving): the two rigs on the sagged
// feed lose their power meters for two minutes while the deliverable rack
// budget drops 12%. The campaign runs twice — coordinator rig-health
// management off ("baseline") and on ("hardened"); both variants run
// hardened control loops, so the delta isolates the rack layer. The
// hardened coordinator detects the dark rigs via its watchdogs,
// quarantines them at their minimum budget, and drains the freed watts
// toward the healthy rigs whose SLOs are burning — so it must finish with
// strictly less total SLO error-budget burned. Each stage's scorecard
// (detection latency, MTTR, burn split, fail-safe dwell) is pushed to the
// resilience registry; --resilience-out renders it for
// scripts/check_resilience.sh and tools/capgpu_report.
//
// A second, fleet-scale campaign then browns out one row-PDU feed of a
// 256-rig fleet (fleet::run_fleet_campaign over a FleetSim: 2 rows x 4
// racks x 8 PDUs x 4 rigs, hierarchical budget cascade on top of the same
// rack coordinators). Its scorecard lands under variant "fleet" — distinct
// from baseline/hardened so the A/B extraction above stays unambiguous —
// and is byte-identical for any --shards/--jobs combination (--shards
// overrides the fleet shard count; scripts/check_fleet.sh compares 1 vs
// 8).
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common.hpp"
#include "common/error.hpp"
#include "common/options.hpp"
#include "faults/campaign.hpp"
#include "fleet/campaign.hpp"
#include "runner/scenario_runner.hpp"
#include "telemetry/table.hpp"

using namespace capgpu;

namespace {

// Kept in sync with the schema in docs/fault_model.md.
constexpr const char* kReferenceCampaign = R"({
  "name": "pdu0_brownout",
  "seed": 3405691582,
  "topology": {"racks": 1, "pdus_per_rack": 2, "rigs_per_pdu": 2},
  "rack_budget_w": 2400,
  "periods": 150,
  "period_s": 4.0,
  "rebalance_every": 2,
  "offered_load": 0.0,
  "slo_s": 0.45,
  "bounds": {"min_w": 500, "max_w": 650},
  "health": {
    "stale_report_s": 12.0,
    "dead_after_s": 60.0,
    "residual_anomaly_watts": 150.0,
    "reintegrate_rebalances": 3
  },
  "stages": [
    {
      "name": "pdu_brownout",
      "node": "rack0/pdu0",
      "fault": {
        "kind": "brownout",
        "start_s": 200.0,
        "duration_s": 120.0,
        "magnitude": 0.12
      }
    }
  ]
})";

// The fleet-scale campaign: one row-PDU feed of a 256-rig fleet sags 30%
// for 40 s, darkening its four rigs' meters. rack_budget_w is the
// per-rack share (32 rigs x 560 W); the facility budget is 8x that.
constexpr const char* kFleetCampaign = R"({
  "name": "fleet_row_pdu_brownout",
  "seed": 3405691582,
  "topology": {"rows": 2, "racks": 4, "pdus_per_rack": 8, "rigs_per_pdu": 4},
  "rack_budget_w": 17920,
  "periods": 30,
  "period_s": 4.0,
  "rebalance_every": 2,
  "offered_load": 0.0,
  "slo_s": 0.45,
  "bounds": {"min_w": 500, "max_w": 650},
  "health": {
    "stale_report_s": 12.0,
    "dead_after_s": 60.0,
    "residual_anomaly_watts": 150.0,
    "reintegrate_rebalances": 3
  },
  "stages": [
    {
      "name": "row_pdu_brownout",
      "node": "row1/rack2/pdu5",
      "fault": {
        "kind": "brownout",
        "start_s": 24.0,
        "duration_s": 40.0,
        "magnitude": 0.3
      }
    }
  ]
})";

// Returns the campaign JSON: the embedded reference, or the file named by
// a `--campaign <path>` flag (bench::init leaves unknown flags in argv).
std::string campaign_text(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--campaign") {
      std::ifstream in(argv[i + 1]);
      CAPGPU_REQUIRE(in.good(),
                     std::string("cannot read campaign file ") + argv[i + 1]);
      std::ostringstream text;
      text << in.rdbuf();
      return text.str();
    }
  }
  return kReferenceCampaign;
}

}  // namespace

int main(int argc, char** argv) {
  capgpu::bench::init(argc, argv);
  std::size_t fleet_shards = 0;  // 0 = FleetSim's default shard count
  try {
    const auto flags = extract_flags(argc, argv, {"shards"});
    if (auto it = flags.find("shards"); it != flags.end())
      fleet_shards = static_cast<std::size_t>(std::stoul(it->second));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
    return 2;
  }
  bench::print_banner(
      "Extension: chaos campaigns over correlated fault domains",
      "rig health management under a PDU brownout");

  const faults::CampaignConfig cfg =
      faults::parse_campaign(campaign_text(argc, argv));
  std::printf(
      "campaign '%s': %zu rigs (%zux%zux%zu), %.0f W rack budget, "
      "%zu periods x %.0f s\n",
      cfg.name.c_str(), cfg.topology.total_rigs(), cfg.topology.racks,
      cfg.topology.pdus_per_rack, cfg.topology.rigs_per_pdu,
      cfg.rack_budget_w, cfg.periods, cfg.period_s);

  // Scenario 0 = health management off, 1 = on; the runner merges
  // telemetry (and the resilience entries) in scenario order, so the
  // scorecard is byte-identical for any --jobs count.
  runner::ScenarioRunner sr({bench::jobs()});
  const std::vector<faults::CampaignResult> outcomes =
      sr.map(2, [&](std::size_t idx) {
        return faults::run_campaign(cfg, /*health_managed=*/idx == 1);
      });

  telemetry::Table t("campaign '" + cfg.name + "': baseline vs hardened");
  t.set_header({"Variant", "rack W", "images", "burn", "fs entries",
                "health transitions"});
  for (const auto& o : outcomes) {
    t.add_row({o.variant, telemetry::fmt(o.mean_rack_power_w, 1),
               telemetry::fmt(o.rack_images, 0),
               telemetry::fmt(o.total_burn, 4),
               telemetry::fmt(static_cast<double>(o.failsafe_engagements), 0),
               telemetry::fmt(static_cast<double>(o.health_transitions), 0)});
  }
  t.print();

  // Fleet-scale campaign: same scoring rules, one level up the hierarchy.
  // Runs on the caller's thread (FleetSim shards internally); its entries
  // join the same resilience registry the A/B above filled.
  const faults::CampaignConfig fleet_cfg =
      faults::parse_campaign(kFleetCampaign);
  std::printf(
      "campaign '%s': %zu rigs (%zu rows x %zux%zux%zu), %.0f W facility "
      "budget, %zu periods x %.0f s\n",
      fleet_cfg.name.c_str(), fleet_cfg.topology.total_rigs(),
      fleet_cfg.topology.rows, fleet_cfg.topology.racks,
      fleet_cfg.topology.pdus_per_rack, fleet_cfg.topology.rigs_per_pdu,
      fleet_cfg.rack_budget_w *
          static_cast<double>(fleet_cfg.topology.total_racks()),
      fleet_cfg.periods, fleet_cfg.period_s);
  const fleet::FleetCampaignResult fleet_outcome =
      fleet::run_fleet_campaign(fleet_cfg, {fleet_shards, bench::jobs()});

  telemetry::Table st("per-stage resilience scorecard");
  st.set_header({"Variant", "Stage", "detect s", "MTTR s", "burn during",
                 "burn after", "overshoot W", "fs dwell s"});
  const auto scorecard_row = [&st](const std::string& variant,
                                   const telemetry::ResilienceEntry& e) {
    st.add_row({variant, e.stage, telemetry::fmt(e.detected_at_s, 1),
                telemetry::fmt(e.mttr_s, 1),
                telemetry::fmt(e.slo_burn_during, 4),
                telemetry::fmt(e.slo_burn_after, 4),
                telemetry::fmt(e.recovery_overshoot_w, 1),
                telemetry::fmt(e.failsafe_dwell_s, 1)});
  };
  for (const auto& o : outcomes) {
    for (const auto& e : o.stages) scorecard_row(o.variant, e);
  }
  for (const auto& e : fleet_outcome.stages) scorecard_row(e.variant, e);
  st.print();

  const auto& baseline = outcomes[0];
  const auto& hardened = outcomes[1];
  std::printf("\nShape checks:\n");
  std::printf("  hardened burns strictly less error budget:  %s\n",
              hardened.total_burn < baseline.total_burn ? "PASS" : "FAIL");
  std::printf("  hardened coordinator detected the fault:    %s\n",
              (!hardened.stages.empty() &&
               hardened.stages[0].detected_at_s >= 0.0)
                  ? "PASS"
                  : "FAIL");
  std::printf("  baseline (health off) never detected it:    %s\n",
              (!baseline.stages.empty() &&
               baseline.stages[0].detected_at_s < 0.0)
                  ? "PASS"
                  : "FAIL");
  std::printf("  hardened recovered after the fault cleared: %s\n",
              (!hardened.stages.empty() && hardened.stages[0].mttr_s >= 0.0)
                  ? "PASS"
                  : "FAIL");
  std::printf("  fleet campaign detected the row-PDU fault:  %s\n",
              (!fleet_outcome.stages.empty() &&
               fleet_outcome.stages[0].detected_at_s >= 0.0)
                  ? "PASS"
                  : "FAIL");
  std::printf("  fleet recovered after the fault cleared:    %s\n",
              (!fleet_outcome.stages.empty() &&
               fleet_outcome.stages[0].mttr_s >= 0.0)
                  ? "PASS"
                  : "FAIL");
  return 0;
}
