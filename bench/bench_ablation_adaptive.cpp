// Ablation: online model adaptation (RLS) vs a stale identified model.
//
// The paper re-runs system identification when hardware changes and relies
// on the stability margin (Sec 4.4) to absorb bounded model error. This
// bench quantifies what online RLS adaptation buys: the workload's GPU
// intensity drops sharply mid-run (a lighter input mix), shifting the
// plant's effective gains; we compare the static and adaptive CapGPU
// controllers through the transition.
#include <cstdio>

#include "common.hpp"
#include "telemetry/table.hpp"

using namespace capgpu;

namespace {

struct Outcome {
  core::RunResult res;
  std::size_t updates{0};
};

Outcome run_with(bool adaptive) {
  core::ServerRig rig;
  core::CapGpuConfig cfg;
  cfg.adaptive = adaptive;
  cfg.rls.forgetting = 0.96;
  core::CapGpuController ctl(cfg, rig.device_ranges(),
                             bench::testbed_model().model, 900_W,
                             rig.latency_models());
  core::RunOptions opt;
  opt.periods = 120;
  opt.set_point = 900_W;
  // Period 40: every stream's inputs get much lighter — GPU busy
  // utilization collapses from ~0.9 to 0.45, roughly halving the dynamic
  // power slope the controller works against.
  core::ServerRig* rig_ptr = &rig;

  Outcome out{core::RunResult{}, 0};
  // Schedule the workload shift through the loop's period hook.
  // (RunOptions has no generic action hook; use the SLO-free schedule via
  // a set-point "change" to the same value plus a lambda on the rig side.)
  opt.set_point_changes[40] = 900_W;  // no-op marker; shift applied below
  core::RunOptions opt2 = opt;

  // ServerRig::run drives everything; we piggyback the shift with an
  // engine event at the 40th period boundary (t = 160 s).
  rig.engine().schedule_at(160.0, [rig_ptr] {
    for (std::size_t i = 0; i < rig_ptr->gpu_count(); ++i) {
      rig_ptr->stream(i).set_gpu_busy_util(0.45);
    }
  });

  out.res = rig.run(ctl, opt2);
  out.updates = ctl.adaptation_updates();
  return out;
}

double segment_abs_err(const core::RunResult& res, std::size_t from,
                       std::size_t to) {
  telemetry::RunningStats s;
  for (std::size_t k = from; k < to; ++k) {
    s.add(std::abs(res.power.value_at(k) - 900.0));
  }
  return s.mean();
}

}  // namespace

int main(int argc, char** argv) {
  capgpu::bench::init(argc, argv);
  bench::print_banner("Ablation: online RLS adaptation vs static model",
                      "extension of paper Sec 4.2/4.4; workload shift @ t=160s");
  (void)bench::testbed_model();

  const Outcome stat = run_with(false);
  const Outcome adap = run_with(true);

  telemetry::Table t("Mean |power error| (W) around the workload shift");
  t.set_header({"Controller", "before (20-40)", "transition (40-60)",
                "after (60-120)", "RLS updates"});
  t.add_row({"static model", telemetry::fmt(segment_abs_err(stat.res, 20, 40), 2),
             telemetry::fmt(segment_abs_err(stat.res, 40, 60), 2),
             telemetry::fmt(segment_abs_err(stat.res, 60, 120), 2), "0"});
  t.add_row({"adaptive (RLS)",
             telemetry::fmt(segment_abs_err(adap.res, 20, 40), 2),
             telemetry::fmt(segment_abs_err(adap.res, 40, 60), 2),
             telemetry::fmt(segment_abs_err(adap.res, 60, 120), 2),
             std::to_string(adap.updates)});
  t.print();

  std::printf("\nPower traces (750-1000 W):\n");
  bench::print_strip("static", stat.res.power, 750.0, 1000.0);
  bench::print_strip("adaptive", adap.res.power, 750.0, 1000.0);

  std::printf("\nShape checks:\n");
  const double stat_after = segment_abs_err(stat.res, 60, 120);
  const double adap_after = segment_abs_err(adap.res, 60, 120);
  std::printf("  both keep capping through the shift (err < 15 W): %s\n",
              (stat_after < 15.0 && adap_after < 15.0) ? "PASS" : "FAIL");
  std::printf("  adaptation applied updates:                       %s\n",
              adap.updates > 0 ? "PASS" : "FAIL");
  std::printf("  adaptive tracks at least as tightly after shift:  %s\n",
              adap_after <= stat_after + 0.5 ? "PASS" : "FAIL");
  return 0;
}
