// Chaos sweep: the hardened loop vs the paper's trusting loop under HAL
// faults.
//
// Reference scenario (fixed seed, bit-for-bit reproducible): an inference
// traffic surge lands while the power meter is dark for 30 s and 20% of
// clock commands fail (half raise errors, half silently no-op). The
// trusting loop holds its last commands and rides the surge straight into
// the branch breaker; the hardened loop notices the meter has been dark
// past its deadline and degrades toward minimum clocks until telemetry
// returns. We report cap-violation time (true server power, not the faulty
// meter's view), breaker trips, throughput, and the hardening counters,
// then sweep the actuation failure rate.
#include <cstdio>
#include <string>
#include <vector>

#include "common.hpp"
#include "common/error.hpp"
#include "hal/fault_injection.hpp"
#include "hw/breaker.hpp"
#include "runner/scenario_runner.hpp"
#include "telemetry/resilience.hpp"
#include "telemetry/table.hpp"

using namespace capgpu;

namespace {

constexpr double kCap = 900.0;
constexpr double kPeriod = 4.0;
constexpr std::size_t kPeriods = 150;
constexpr std::uint64_t kSeed = 0xC0FFEE;
// The meter goes dark at a period boundary, 2 s before the surge, so the
// last accepted average predates the surge entirely.
constexpr double kDarkStart = 48.0;
constexpr double kDarkEnd = 78.0;
constexpr double kSurgeTime = 50.0;

hal::FaultPlan chaos_plan(double actuation_fail_rate) {
  hal::FaultPlan plan;
  plan.seed = kSeed;
  plan.meter_dark.push_back({Seconds{kDarkStart}, Seconds{kDarkEnd}});
  plan.actuation_throw_rate = actuation_fail_rate / 2.0;
  plan.actuation_noop_rate = actuation_fail_rate / 2.0;
  return plan;
}

core::FailSafeConfig hardening() {
  core::FailSafeConfig fs;
  fs.validator.max_holdover = Seconds{6.0};
  fs.meter_dark_deadline = Seconds{7.0};  // under two control periods
  fs.degrade_step_levels = 8;
  return fs;
}

struct Outcome {
  bool crashed{false};
  std::string crash_message;  ///< printed after the parallel sweep joins
  double violation_s{0.0};   ///< true power > cap + 5 W (seconds)
  double last_violation_t{-1.0};  ///< sim time of the last over-cap sample
  double trip_time{-1.0};
  double peak_watts{0.0};
  double peak_stress{0.0};
  double images_per_s{0.0};  ///< steady mean across streams
  core::RunResult res;
  hal::FaultCounters faults;
};

Outcome run_one(bool hardened, double actuation_fail_rate) {
  core::RigConfig rc;
  rc.seed = 7;
  // Open-loop serving: a surge from 45% to 80% of peak offered load lands
  // at t=50, right after the meter goes dark. At 45% the server runs full
  // clocks well under the cap; the surge at held clocks jumps true power
  // far above the breaker rating.
  rc.offered_load = {{0.0, 0.45}, {kSurgeTime, 0.80}};
  rc.faults = chaos_plan(actuation_fail_rate);

  Outcome o;
  core::ServerRig rig(rc);

  hw::BreakerParams bp;
  bp.rating = Watts{930.0};  // 3.3% oversubscription margin over the cap
  bp.trip_overload_frac = 0.03;
  bp.trip_seconds = 110.0;
  bp.cooling_frac_per_s = 0.002;
  hw::BreakerModel breaker(bp);
  auto* server = &rig.server();
  hw::BreakerMonitor monitor(rig.engine(), breaker,
                             [server] { return server->total_power().value; });

  // Cap-violation clock runs on true server power, sampled like the meter.
  auto* out = &o;
  auto* eng = &rig.engine();
  rig.engine().schedule_periodic(1.0, [server, out, b = &breaker, eng] {
    const double w = server->total_power().value;
    if (w > kCap + 5.0) {
      out->violation_s += 1.0;
      out->last_violation_t = eng->now();
    }
    out->peak_watts = std::max(out->peak_watts, w);
    out->peak_stress = std::max(out->peak_stress, b->stress());
  });

  core::RunOptions opt;
  opt.periods = kPeriods;
  opt.set_point = Watts{kCap};
  opt.loop.period = Seconds{kPeriod};
  if (hardened) opt.loop.failsafe = hardening();

  core::CapGpuController ctl = bench::make_capgpu(rig, Watts{kCap});
  try {
    o.res = rig.run(ctl, opt);
  } catch (const Error& e) {
    // Scenarios may run on worker threads: record the message and let
    // main() print it after the sweep joins, in scenario order.
    o.crash_message = std::string("  !! ") +
                      (hardened ? "hardened" : "trusting") +
                      " run CRASHED: " + e.what() + "\n";
    o.crashed = true;
    return o;
  }
  o.trip_time = monitor.trip_time();
  o.faults = rig.faulty_hal()->counters();
  double thr = 0.0;
  for (const auto& series : o.res.gpu_throughput) {
    thr += bench::steady_mean(series, 20);
  }
  o.images_per_s = thr;
  return o;
}

std::string trip_str(const Outcome& o) {
  if (o.crashed) return "CRASHED";
  if (o.trip_time >= 0.0) return "TRIPPED @" + telemetry::fmt(o.trip_time, 0) + "s";
  return "no";
}

}  // namespace

int main(int argc, char** argv) {
  bench::init(argc, argv);
  bench::print_banner(
      "Chaos: load surge during a 30 s meter outage + flaky actuation",
      "cap 900 W, breaker 930 W; hardened loop vs the paper's trusting loop");
  (void)bench::testbed_model();

  // The whole grid — reference pair plus the sweep — is six independent
  // scenarios: rates {0, 0.2, 0.4} x {trusting, hardened}.
  const std::vector<double> rates{0.0, 0.2, 0.4};
  runner::ScenarioRunner sr({bench::jobs()});
  const std::vector<Outcome> outcomes = sr.map(
      rates.size() * 2,
      [&](std::size_t idx) { return run_one(idx % 2 == 1, rates[idx / 2]); });
  for (const Outcome& o : outcomes) {
    if (o.crashed) std::printf("%s", o.crash_message.c_str());
  }

  // Reference scenario: 20% actuation failure.
  const Outcome& trusting = outcomes[2];
  const Outcome& hardened = outcomes[3];

  telemetry::Table t("reference scenario (600 s, seed 0xC0FFEE)");
  t.set_header({"Loop", "over-cap s", "peak W", "peak stress", "breaker",
                "img/s", "degr.", "retries", "held"});
  t.add_row({"trusting", telemetry::fmt(trusting.violation_s, 0),
             telemetry::fmt(trusting.peak_watts, 0),
             telemetry::fmt(100.0 * trusting.peak_stress, 0) + "%",
             trip_str(trusting), telemetry::fmt(trusting.images_per_s, 0),
             std::to_string(trusting.res.failsafe_engagements),
             std::to_string(trusting.res.actuation_retries),
             std::to_string(trusting.res.held_periods)});
  t.add_row({"hardened", telemetry::fmt(hardened.violation_s, 0),
             telemetry::fmt(hardened.peak_watts, 0),
             telemetry::fmt(100.0 * hardened.peak_stress, 0) + "%",
             trip_str(hardened), telemetry::fmt(hardened.images_per_s, 0),
             std::to_string(hardened.res.failsafe_engagements),
             std::to_string(hardened.res.actuation_retries),
             std::to_string(hardened.res.held_periods)});
  t.print();
  std::printf(
      "  injected: %zu samples dropped, %zu cmd throws, %zu cmd no-ops\n",
      hardened.faults.meter_dropped, hardened.faults.actuation_throw,
      hardened.faults.actuation_noop);

  if (!trusting.crashed && !hardened.crashed) {
    bench::print_strip("trusting W", trusting.res.power, 600.0, 1100.0, 2);
    bench::print_strip("hardened W", hardened.res.power, 600.0, 1100.0, 2);
  }

  // Sweep the actuation failure rate with the same meter outage.
  telemetry::Table sweep("actuation failure sweep");
  sweep.set_header({"fail rate", "loop", "over-cap s", "breaker", "img/s",
                    "retries", "mismatches"});
  for (std::size_t r = 0; r < rates.size(); ++r) {
    const double rate = rates[r];
    for (bool hard : {false, true}) {
      const Outcome& o = outcomes[r * 2 + (hard ? 1 : 0)];
      sweep.add_row({telemetry::fmt(100.0 * rate, 0) + "%",
                     hard ? "hardened" : "trusting",
                     o.crashed ? "-" : telemetry::fmt(o.violation_s, 0),
                     trip_str(o),
                     o.crashed ? "-" : telemetry::fmt(o.images_per_s, 0),
                     std::to_string(o.res.actuation_retries),
                     std::to_string(o.res.readback_mismatches)});
    }
  }
  sweep.print();

  // Resilience scorecard for the reference pair: time from the end of the
  // meter outage to the last over-cap sample is the loop's recovery time
  // (--summary-out and --resilience-out surface these fields).
  auto& resilience = telemetry::ResilienceRegistry::global();
  for (const Outcome* o : {&trusting, &hardened}) {
    if (o->crashed) continue;
    telemetry::ResilienceEntry entry;
    entry.campaign = "fault_chaos";
    entry.variant = o == &hardened ? "hardened" : "trusting";
    entry.stage = "meter_dark_surge";
    entry.fault_kind = "meter_dark";
    entry.domain = "server";
    entry.fault_start_s = kDarkStart;
    entry.fault_end_s = kDarkEnd;
    if (o->last_violation_t >= 0.0) {
      entry.recovered_at_s = std::max(o->last_violation_t, kDarkEnd);
      entry.mttr_s = entry.recovered_at_s - kDarkEnd;
    } else {
      entry.recovered_at_s = kDarkEnd;
      entry.mttr_s = 0.0;
    }
    entry.failsafe_dwell_s = static_cast<double>(o->res.held_periods) * kPeriod;
    entry.failsafe_entries = o->res.failsafe_engagements;
    resilience.add(std::move(entry));
  }
  if (!resilience.entries().empty()) {
    std::printf("\nRecovery (last over-cap sample after the outage end):\n");
    for (const auto& e : resilience.entries()) {
      if (e.campaign != "fault_chaos") continue;
      std::printf("  %-9s recovery=%5.1f s  failsafe entries=%llu\n",
                  e.variant.c_str(), e.mttr_s,
                  static_cast<unsigned long long>(e.failsafe_entries));
    }
  }

  std::printf("\nShape checks:\n");
  std::printf("  trusting loop trips the breaker:              %s\n",
              trusting.trip_time >= 0.0 ? "PASS" : "FAIL");
  std::printf("  hardened loop never trips:                    %s\n",
              (!hardened.crashed && hardened.trip_time < 0.0) ? "PASS"
                                                              : "FAIL");
  std::printf("  hardened strictly less time over cap:         %s\n",
              (!hardened.crashed &&
               hardened.violation_s < trusting.violation_s)
                  ? "PASS"
                  : "FAIL");
  std::printf("  hardened engaged and released the fail-safe:  %s\n",
              (hardened.res.failsafe_engagements >= 1 &&
               hardened.res.failsafe_releases >= 1)
                  ? "PASS"
                  : "FAIL");
  return 0;
}
