// Reproduces Figure 3 (paper Sec 6.2): power-control traces at a 900 W set
// point for CPU-Only, GPU-Only, GPU+CPU (50/50 and 60/40) and CapGPU on the
// 3-GPU testbed (t1=ResNet50, t2=Swin, t3=VGG16 + feature selection).
#include <cstdio>
#include <memory>

#include "baselines/cpu_only.hpp"
#include "baselines/cpu_plus_gpu.hpp"
#include "baselines/gpu_only.hpp"
#include "common.hpp"

using namespace capgpu;

namespace {

core::RunResult run_policy(baselines::IServerPowerController& policy) {
  core::ServerRig rig;
  core::RunOptions opt;
  opt.periods = 100;
  opt.set_point = 900_W;
  return rig.run(policy, opt);
}

}  // namespace

int main(int argc, char** argv) {
  capgpu::bench::init(argc, argv);
  bench::print_banner("Figure 3: power control, baselines vs CapGPU @ 900 W",
                      "paper Sec 6.2, Fig 3");
  const auto& model = bench::testbed_model().model;

  // Device ranges come from any rig (identical across rigs).
  core::ServerRig ranges_rig;
  const auto devices = ranges_rig.device_ranges();

  struct Entry {
    std::string name;
    core::RunResult result;
  };
  std::vector<Entry> entries;

  {
    baselines::CpuOnlyController ctl(devices, model, bench::kBaselinePole,
                                     900_W);
    entries.push_back({"CPU-Only", run_policy(ctl)});
  }
  {
    baselines::GpuOnlyController ctl(devices, model, bench::kBaselinePole,
                                     900_W);
    entries.push_back({"GPU-Only", run_policy(ctl)});
  }
  {
    baselines::CpuPlusGpuController ctl(devices, model, bench::kBaselinePole,
                                        900_W, 0.5);
    entries.push_back({"GPU+CPU 50%/50%", run_policy(ctl)});
  }
  {
    baselines::CpuPlusGpuController ctl(devices, model, bench::kBaselinePole,
                                        900_W, 0.6);
    entries.push_back({"GPU+CPU 60%gpu", run_policy(ctl)});
  }
  {
    core::ServerRig rig;
    core::CapGpuController ctl = bench::make_capgpu(rig, 900_W);
    core::RunOptions opt;
    opt.periods = 100;
    opt.set_point = 900_W;
    entries.push_back({"CapGPU", rig.run(ctl, opt)});
    bench::export_result_csv("fig3_capgpu", entries.back().result);
  }

  std::printf("\nPower traces (100 control periods of 4 s; range 600-1250 W; "
              "'~' ~ 900 W):\n");
  for (const auto& e : entries) {
    bench::print_strip(e.name, e.result.power, 600.0, 1250.0);
  }

  std::printf("\nSteady-state power (last 80 of 100 periods):\n");
  for (const auto& e : entries) {
    bench::print_power_summary(e.name, e.result, 900.0);
  }

  const double err = [&](const std::string& name) {
    for (const auto& e : entries) {
      if (e.name == name) return std::abs(e.result.steady_power(20).mean() - 900.0);
    }
    return 1e9;
  }("CapGPU");
  std::printf("\nShape checks (paper Fig 3):\n");
  std::printf("  CapGPU converges to the cap (|err| < 10 W): %s\n",
              err < 10.0 ? "PASS" : "FAIL");
  std::printf("  CPU-Only cannot reach the cap:              %s\n",
              std::abs(entries[0].result.steady_power(20).mean() - 900.0) >
                      50.0
                  ? "PASS"
                  : "FAIL");
  std::printf("  GPU+CPU splits miss the cap:                %s\n",
              (std::abs(entries[2].result.steady_power(20).mean() - 900.0) >
                   25.0 &&
               std::abs(entries[3].result.steady_power(20).mean() - 900.0) >
                   25.0)
                  ? "PASS"
                  : "FAIL");
  return 0;
}
