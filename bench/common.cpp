#include "common.hpp"

#include "common/error.hpp"
#include "common/log.hpp"
#include "common/options.hpp"
#include "runner/scenario_runner.hpp"
#include "runner/thread_pool.hpp"
#include "telemetry/csv.hpp"
#include "telemetry/energy.hpp"
#include "telemetry/metric_names.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/prometheus.hpp"
#include "telemetry/flight.hpp"
#include "telemetry/resilience.hpp"
#include "telemetry/sketch.hpp"
#include "telemetry/slo.hpp"
#include "telemetry/trace.hpp"
#include "workload/request_timeline.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>

namespace capgpu::bench {

namespace {

struct ObservabilityOutputs {
  std::optional<std::string> metrics_path;
  std::optional<std::string> trace_path;
  std::optional<std::string> events_path;
  std::optional<std::string> summary_path;
  std::optional<std::string> slo_report_path;
  std::optional<std::string> flight_path;
  std::optional<std::string> resilience_path;
  std::optional<std::string> energy_path;
  std::chrono::steady_clock::time_point started;
};

ObservabilityOutputs& outputs() {
  static ObservabilityOutputs out;
  return out;
}

void write_summary(const std::string& path) {
  std::ofstream file(path, std::ios::trunc);
  if (!file) throw Error("cannot write summary file: " + path);
  const auto& out = outputs();
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    out.started)
          .count();
  char wall[32];
  std::snprintf(wall, sizeof wall, "%.3f", wall_s);
  file << "{\n  \"scenarios\": " << runner::ScenarioRunner::scenarios_executed()
       << ",\n  \"jobs\": " << jobs() << ",\n  \"wall_time_s\": " << wall;
  if (out.flight_path) {
    std::string escaped;
    for (const char c : *out.flight_path) {
      if (c == '"' || c == '\\') escaped += '\\';
      escaped += c;
    }
    file << ",\n  \"flight_log\": \"" << escaped << "\",\n  \"flight_records\": "
         << telemetry::FlightRecorder::global().records().size();
  }
  const auto& resilience = telemetry::ResilienceRegistry::global();
  if (!resilience.entries().empty()) {
    file << ",\n  \"resilience\": [";
    bool first_entry = true;
    for (const auto& e : resilience.entries()) {
      char buf[160];
      std::snprintf(buf, sizeof buf,
                    "{\"variant\":\"%s\",\"stage\":\"%s\",\"mttr_s\":%.10g,"
                    "\"failsafe_entries\":%llu}",
                    e.variant.c_str(), e.stage.c_str(), e.mttr_s,
                    static_cast<unsigned long long>(e.failsafe_entries));
      file << (first_entry ? "\n    " : ",\n    ") << buf;
      first_entry = false;
    }
    file << "\n  ]";
  }
  const auto& energy = telemetry::EnergyRegistry::global();
  if (!energy.caps().empty()) {
    double total_j = 0.0;
    double idle_j = 0.0;
    std::uint64_t requests = 0;
    for (const auto& c : energy.caps()) {
      total_j += c.total_joules;
      idle_j += c.idle_joules;
      requests += c.requests;
    }
    const double jpr =
        requests ? total_j / static_cast<double>(requests) : 0.0;
    char buf[200];
    std::snprintf(buf, sizeof buf,
                  "{\"total_joules\":%.10g,\"idle_joules\":%.10g,"
                  "\"requests\":%llu,\"joules_per_request\":%.10g}",
                  total_j, idle_j, static_cast<unsigned long long>(requests),
                  jpr);
    file << ",\n  \"energy\": " << buf;
  }
  file << ",\n  \"stage_p99_s\": [";
  bool first = true;
  for (const auto* family : telemetry::MetricsRegistry::global().families()) {
    if (family->name != telemetry::metric::kStageLatencySeconds) continue;
    for (const auto& [key, inst] : family->series) {
      (void)key;
      if (!inst->sketch) continue;
      std::string model;
      std::string stage;
      for (const auto& [k, v] : inst->labels) {
        if (k == "model") model = v;
        if (k == "stage") stage = v;
      }
      char p99[64];
      std::snprintf(p99, sizeof p99, "%.10g", inst->sketch->quantile(0.99));
      file << (first ? "\n    " : ",\n    ") << "{\"model\":\"" << model
           << "\",\"stage\":\"" << stage << "\",\"p99\":" << p99 << '}';
      first = false;
    }
  }
  file << "\n  ]\n}\n";
}

void flush_outputs() {
  const auto& out = outputs();
  try {
    if (out.metrics_path) {
      telemetry::save_prometheus(telemetry::MetricsRegistry::global(),
                                 *out.metrics_path);
      std::printf("[telemetry] metrics: %s\n", out.metrics_path->c_str());
    }
    if (out.trace_path) {
      telemetry::Tracer::global().save_chrome_json(*out.trace_path);
      std::printf("[telemetry] trace: %s\n", out.trace_path->c_str());
    }
    if (out.events_path) {
      telemetry::Tracer::global().save_jsonl(*out.events_path);
      std::printf("[telemetry] events: %s\n", out.events_path->c_str());
    }
    if (out.flight_path) {
      telemetry::FlightRecorder::global().save_jsonl(*out.flight_path);
      std::printf("[telemetry] flight log: %s (%zu records)\n",
                  out.flight_path->c_str(),
                  telemetry::FlightRecorder::global().records().size());
    }
    if (out.slo_report_path) {
      telemetry::save_slo_report(telemetry::SloRegistry::global(),
                                 telemetry::MetricsRegistry::global(),
                                 *out.slo_report_path);
      std::printf("[telemetry] slo report: %s\n",
                  out.slo_report_path->c_str());
    }
    if (out.resilience_path) {
      telemetry::save_resilience_report(telemetry::ResilienceRegistry::global(),
                                        *out.resilience_path);
      std::printf("[telemetry] resilience report: %s (%zu stages)\n",
                  out.resilience_path->c_str(),
                  telemetry::ResilienceRegistry::global().entries().size());
    }
    if (out.energy_path) {
      telemetry::save_energy_report(telemetry::EnergyRegistry::global(),
                                    *out.energy_path);
      std::printf("[telemetry] energy report: %s (%zu caps)\n",
                  out.energy_path->c_str(),
                  telemetry::EnergyRegistry::global().caps().size());
    }
    if (out.summary_path) {
      write_summary(*out.summary_path);
      std::printf("[telemetry] summary: %s\n", out.summary_path->c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "[telemetry] export failed: %s\n", e.what());
  }
}

std::optional<LogLevel> parse_log_level(const std::string& name) {
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "off") return LogLevel::kOff;
  return std::nullopt;
}

std::size_t& jobs_slot() {
  static std::size_t jobs = 1;
  return jobs;
}

}  // namespace

void init(int& argc, char** argv) {
  auto& out = outputs();
  out.started = std::chrono::steady_clock::now();
  std::map<std::string, std::string> flags;
  try {
    flags = extract_flags(argc, argv,
                          {"metrics-out", "trace-out", "events-out",
                           "summary-out", "slo-report-out", "flight-out",
                           "resilience-out", "energy-out", "log-level",
                           "jobs"});
  } catch (const InvalidArgument& e) {
    std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
    std::exit(2);
  }
  if (auto it = flags.find("metrics-out"); it != flags.end()) {
    out.metrics_path = it->second;
  }
  if (auto it = flags.find("trace-out"); it != flags.end()) {
    out.trace_path = it->second;
  }
  if (auto it = flags.find("events-out"); it != flags.end()) {
    out.events_path = it->second;
  }
  if (auto it = flags.find("summary-out"); it != flags.end()) {
    out.summary_path = it->second;
  }
  if (auto it = flags.find("slo-report-out"); it != flags.end()) {
    out.slo_report_path = it->second;
  }
  if (auto it = flags.find("flight-out"); it != flags.end()) {
    out.flight_path = it->second;
    telemetry::FlightRecorder::global().set_enabled(true);
  }
  if (auto it = flags.find("resilience-out"); it != flags.end()) {
    out.resilience_path = it->second;
  }
  if (auto it = flags.find("energy-out"); it != flags.end()) {
    out.energy_path = it->second;
  }
  if (auto it = flags.find("log-level"); it != flags.end()) {
    if (auto level = parse_log_level(it->second)) {
      Log::set_level(*level);
    } else {
      std::fprintf(stderr, "[telemetry] unknown log level '%s'\n",
                   it->second.c_str());
    }
  }
  if (auto it = flags.find("jobs"); it != flags.end()) {
    char* end = nullptr;
    const long n = std::strtol(it->second.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || n < 0) {
      std::fprintf(stderr, "%s: option --jobs expects a non-negative integer\n",
                   argv[0]);
      std::exit(2);
    }
    jobs_slot() = n == 0 ? runner::ThreadPool::hardware_jobs()
                         : static_cast<std::size_t>(n);
  }
  if (out.trace_path || out.events_path) {
    telemetry::Tracer::global().set_enabled(true);
  }
  if (out.metrics_path || out.trace_path || out.events_path ||
      out.summary_path || out.slo_report_path || out.flight_path ||
      out.resilience_path || out.energy_path) {
    static bool registered = false;
    if (!registered) {
      registered = true;
      // Force-construct the singletons before registering the flush so
      // they are destroyed after it runs (atexit and static destructors
      // share one LIFO list).
      (void)telemetry::MetricsRegistry::global();
      (void)telemetry::Tracer::global();
      (void)telemetry::SloRegistry::global();
      (void)telemetry::FlightRecorder::global();
      (void)telemetry::ResilienceRegistry::global();
      (void)telemetry::EnergyRegistry::global();
      std::atexit(flush_outputs);
    }
  }
}

std::size_t jobs() { return jobs_slot(); }

const control::IdentifiedModel& testbed_model() {
  static const control::IdentifiedModel model = [] {
    core::ServerRig rig;
    control::IdentifiedModel m = rig.identify();
    std::printf("[setup] system identification: R^2=%.4f rmse=%.2f W  A=[",
                m.r_squared, m.rmse_watts);
    for (std::size_t j = 0; j < m.model.device_count(); ++j) {
      std::printf("%s%.4f", j ? ", " : "", m.model.gain(j));
    }
    std::printf("] C=%.1f W\n", m.model.offset());
    return m;
  }();
  return model;
}

core::CapGpuController make_capgpu(core::ServerRig& rig, Watts set_point) {
  return core::CapGpuController(core::CapGpuConfig{}, rig.device_ranges(),
                                testbed_model().model, set_point,
                                rig.latency_models());
}

void print_banner(const std::string& title, const std::string& paper_ref) {
  std::cout << "\n=============================================================\n"
            << title << "\n(" << paper_ref << ")\n"
            << "=============================================================\n";
}

void print_strip(const std::string& label, const telemetry::TimeSeries& ts,
                 double lo, double hi, std::size_t periods_per_char) {
  static constexpr const char* kGlyphs[] = {"_", ".", "-", "~", "+", "*",
                                            "#", "@"};
  std::string strip;
  for (std::size_t i = 0; i < ts.size(); i += periods_per_char) {
    double v = 0.0;
    std::size_t n = 0;
    for (std::size_t k = i; k < std::min(i + periods_per_char, ts.size());
         ++k) {
      v += ts.value_at(k);
      ++n;
    }
    v /= static_cast<double>(n);
    const double t = std::clamp((v - lo) / (hi - lo), 0.0, 0.999);
    strip += kGlyphs[static_cast<std::size_t>(t * 8.0)];
  }
  std::printf("  %-22s [%7.1f..%7.1f] %s\n", label.c_str(), lo, hi,
              strip.c_str());
}

void print_power_summary(const std::string& name, const core::RunResult& res,
                         double set_point_watts, std::size_t skip) {
  const auto s = res.steady_power(skip);
  const telemetry::CappingAudit audit = telemetry::audit_capping(
      res.power, Watts{set_point_watts}, 4.0, 5.0, skip);
  std::printf(
      "  %-22s mean=%7.1f W  err=%+6.1f W  std=%5.1f W  max=%7.1f W  "
      "violations=%zu (worst %+.1f W, streak %zu, %.0f J over cap)\n",
      name.c_str(), s.mean(), s.mean() - set_point_watts, s.stddev(), s.max(),
      audit.violation_samples, audit.worst_excess_watts,
      audit.longest_streak, audit.excess_joules);
}

void print_stage_quantiles() {
  const auto& registry = telemetry::MetricsRegistry::global();
  bool any = false;
  for (const auto* family : registry.families()) {
    const bool is_stage =
        family->name == telemetry::metric::kStageLatencySeconds;
    const bool is_total =
        family->name == telemetry::metric::kRequestLatencySeconds;
    if (!is_stage && !is_total) continue;
    if (!any) {
      any = true;
      std::printf(
          "\n  %-10s %-18s %10s %10s %10s %10s %10s\n", "model", "stage",
          "count", "p50 ms", "p95 ms", "p99 ms", "p99.9 ms");
    }
    for (const auto& [key, inst] : family->series) {
      (void)key;
      if (!inst->sketch || inst->sketch->count() == 0) continue;
      std::string model;
      std::string stage = "total";
      for (const auto& [k, v] : inst->labels) {
        if (k == "model") model = v;
        if (is_stage && k == "stage") stage = v;
      }
      const auto& s = *inst->sketch;
      std::printf("  %-10s %-18s %10llu %10.2f %10.2f %10.2f %10.2f\n",
                  model.c_str(), stage.c_str(),
                  static_cast<unsigned long long>(s.count()),
                  s.quantile(0.5) * 1e3, s.quantile(0.95) * 1e3,
                  s.quantile(0.99) * 1e3, s.quantile(0.999) * 1e3);
    }
  }
}

double steady_mean(const telemetry::TimeSeries& ts, std::size_t skip) {
  return ts.stats_from(skip).mean();
}

void export_result_csv(const std::string& name, const core::RunResult& res) {
  try {
    std::filesystem::create_directories("results");
    const std::string path = "results/" + name + ".csv";
    std::vector<const telemetry::TimeSeries*> series{&res.power,
                                                     &res.set_point};
    for (const auto& f : res.device_freqs) series.push_back(&f);
    for (const auto& t : res.gpu_throughput) series.push_back(&t);
    for (const auto& l : res.gpu_latency) series.push_back(&l);
    for (const auto& s : res.gpu_slo) series.push_back(&s);
    telemetry::save_series_csv(path, series);
    std::printf("  [csv] %s\n", path.c_str());
  } catch (const std::exception& e) {
    std::printf("  [csv] export skipped: %s\n", e.what());
  }
}

}  // namespace capgpu::bench
