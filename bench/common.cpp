#include "common.hpp"

#include "telemetry/csv.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <iostream>

namespace capgpu::bench {

const control::IdentifiedModel& testbed_model() {
  static const control::IdentifiedModel model = [] {
    core::ServerRig rig;
    control::IdentifiedModel m = rig.identify();
    std::printf("[setup] system identification: R^2=%.4f rmse=%.2f W  A=[",
                m.r_squared, m.rmse_watts);
    for (std::size_t j = 0; j < m.model.device_count(); ++j) {
      std::printf("%s%.4f", j ? ", " : "", m.model.gain(j));
    }
    std::printf("] C=%.1f W\n", m.model.offset());
    return m;
  }();
  return model;
}

core::CapGpuController make_capgpu(core::ServerRig& rig, Watts set_point) {
  return core::CapGpuController(core::CapGpuConfig{}, rig.device_ranges(),
                                testbed_model().model, set_point,
                                rig.latency_models());
}

void print_banner(const std::string& title, const std::string& paper_ref) {
  std::cout << "\n=============================================================\n"
            << title << "\n(" << paper_ref << ")\n"
            << "=============================================================\n";
}

void print_strip(const std::string& label, const telemetry::TimeSeries& ts,
                 double lo, double hi, std::size_t periods_per_char) {
  static constexpr const char* kGlyphs[] = {"_", ".", "-", "~", "+", "*",
                                            "#", "@"};
  std::string strip;
  for (std::size_t i = 0; i < ts.size(); i += periods_per_char) {
    double v = 0.0;
    std::size_t n = 0;
    for (std::size_t k = i; k < std::min(i + periods_per_char, ts.size());
         ++k) {
      v += ts.value_at(k);
      ++n;
    }
    v /= static_cast<double>(n);
    const double t = std::clamp((v - lo) / (hi - lo), 0.0, 0.999);
    strip += kGlyphs[static_cast<std::size_t>(t * 8.0)];
  }
  std::printf("  %-22s [%7.1f..%7.1f] %s\n", label.c_str(), lo, hi,
              strip.c_str());
}

void print_power_summary(const std::string& name, const core::RunResult& res,
                         double set_point_watts, std::size_t skip) {
  const auto s = res.steady_power(skip);
  const telemetry::CappingAudit audit = telemetry::audit_capping(
      res.power, Watts{set_point_watts}, 4.0, 5.0, skip);
  std::printf(
      "  %-22s mean=%7.1f W  err=%+6.1f W  std=%5.1f W  max=%7.1f W  "
      "violations=%zu (worst %+.1f W, streak %zu, %.0f J over cap)\n",
      name.c_str(), s.mean(), s.mean() - set_point_watts, s.stddev(), s.max(),
      audit.violation_samples, audit.worst_excess_watts,
      audit.longest_streak, audit.excess_joules);
}

double steady_mean(const telemetry::TimeSeries& ts, std::size_t skip) {
  return ts.stats_from(skip).mean();
}

void export_result_csv(const std::string& name, const core::RunResult& res) {
  try {
    std::filesystem::create_directories("results");
    const std::string path = "results/" + name + ".csv";
    std::vector<const telemetry::TimeSeries*> series{&res.power,
                                                     &res.set_point};
    for (const auto& f : res.device_freqs) series.push_back(&f);
    for (const auto& t : res.gpu_throughput) series.push_back(&t);
    for (const auto& l : res.gpu_latency) series.push_back(&l);
    for (const auto& s : res.gpu_slo) series.push_back(&s);
    telemetry::save_series_csv(path, series);
    std::printf("  [csv] %s\n", path.c_str());
  } catch (const std::exception& e) {
    std::printf("  [csv] export skipped: %s\n", e.what());
  }
}

}  // namespace capgpu::bench
