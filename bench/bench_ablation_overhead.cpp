// Ablation: controller computational overhead (google-benchmark).
//
// The paper states the MPC completes "in just a few milliseconds when a
// server has about 4 to 8 GPUs". This bench times one MPC control period
// (QP assembly + active-set solve) as the GPU count scales, plus the raw QP
// solver and the delta-sigma modulator for reference.
#include <benchmark/benchmark.h>

#include "common.hpp"
#include "common/rng.hpp"
#include "control/delta_sigma.hpp"
#include "control/mpc.hpp"
#include "control/qp.hpp"

using namespace capgpu;

namespace {

control::MpcController make_mpc(std::size_t n_gpus) {
  std::vector<control::DeviceRange> devices;
  devices.push_back({DeviceKind::kCpu, 1000.0, 2400.0});
  std::vector<double> gains{0.05};
  for (std::size_t g = 0; g < n_gpus; ++g) {
    devices.push_back({DeviceKind::kGpu, 435.0, 1350.0});
    gains.push_back(0.19);
  }
  return control::MpcController(
      control::MpcConfig{}, std::move(devices),
      control::LinearPowerModel(std::move(gains), 300.0), 900_W);
}

void BM_MpcStep(benchmark::State& state) {
  const auto n_gpus = static_cast<std::size_t>(state.range(0));
  control::MpcController mpc = make_mpc(n_gpus);
  std::vector<double> freqs(1 + n_gpus, 800.0);
  freqs[0] = 1600.0;
  Rng rng(7);
  for (auto _ : state) {
    // Vary the measured power so the active set changes across calls.
    const Watts p{rng.uniform(700.0, 1100.0)};
    benchmark::DoNotOptimize(mpc.step(p, freqs));
  }
  state.SetLabel(std::to_string(n_gpus) + " GPUs");
}
BENCHMARK(BM_MpcStep)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMicrosecond);

void BM_MpcStepCached(benchmark::State& state) {
  // Same workload as BM_MpcStep but with the explicit-MPC region cache
  // (paper Sec 4.3's multi-parametric offline/online split): steady-state
  // steps reduce to one pre-factored KKT solve.
  const auto n_gpus = static_cast<std::size_t>(state.range(0));
  control::MpcController mpc = make_mpc(n_gpus);
  mpc.enable_solve_cache(true);
  std::vector<double> freqs(1 + n_gpus, 800.0);
  freqs[0] = 1600.0;
  Rng rng(7);
  for (auto _ : state) {
    const Watts p{rng.uniform(700.0, 1100.0)};
    benchmark::DoNotOptimize(mpc.step(p, freqs));
  }
  state.SetLabel(std::to_string(n_gpus) + " GPUs, cached (" +
                 std::to_string(mpc.cache_stats().hits) + " hits / " +
                 std::to_string(mpc.cache_stats().misses) + " misses)");
}
BENCHMARK(BM_MpcStepCached)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMicrosecond);

void BM_MpcStepSaturated(benchmark::State& state) {
  // Worst case for the active-set method: every device pinned at a bound.
  const auto n_gpus = static_cast<std::size_t>(state.range(0));
  control::MpcController mpc = make_mpc(n_gpus);
  std::vector<double> freqs(1 + n_gpus, 435.0);
  freqs[0] = 1000.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mpc.step(Watts{1500.0}, freqs));
  }
  state.SetLabel(std::to_string(n_gpus) + " GPUs, all railed");
}
BENCHMARK(BM_MpcStepSaturated)->Arg(4)->Arg(8)->Unit(benchmark::kMicrosecond);

void BM_QpSolveBox(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(11);
  linalg::Matrix b(n, n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) b(r, c) = rng.uniform(-1.0, 1.0);
  control::QpProblem p;
  p.h = b * b.transposed();
  for (std::size_t i = 0; i < n; ++i) p.h(i, i) += 1.0;
  p.g = linalg::Vector(n);
  for (std::size_t i = 0; i < n; ++i) p.g[i] = rng.uniform(-5.0, 5.0);
  p.c = linalg::Matrix(2 * n, n);
  p.b = linalg::Vector(2 * n);
  for (std::size_t i = 0; i < n; ++i) {
    p.c(2 * i, i) = 1.0;
    p.b[2 * i] = 1.0;
    p.c(2 * i + 1, i) = -1.0;
    p.b[2 * i + 1] = 1.0;
  }
  const linalg::Vector x0(n);
  control::QpSolver solver;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(p, x0));
  }
}
BENCHMARK(BM_QpSolveBox)->Arg(4)->Arg(9)->Arg(17)->Arg(33)
    ->Unit(benchmark::kMicrosecond);

void BM_DeltaSigmaStep(benchmark::State& state) {
  const auto table = hw::FrequencyTable::v100_core();
  control::DeltaSigmaModulator mod;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mod.step(Megahertz{871.3}, table));
  }
}
BENCHMARK(BM_DeltaSigmaStep)->Unit(benchmark::kNanosecond);

}  // namespace

// Expanded BENCHMARK_MAIN so bench::init can consume the observability
// flags before google-benchmark rejects them as unknown.
int main(int argc, char** argv) {
  capgpu::bench::init(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
