// Reproduces Figure 10 (paper Sec 6.4): online adaptation to set-point
// changes — 800 W, raised to 900 W at period 40 (request surge), back to
// 800 W at period 80 — for Safe Fixed-Step, GPU-Only and CapGPU. The
// paper's result: all adapt, CapGPU with the least fluctuation, GPU-Only
// with a long settling time.
#include <cstdio>

#include "baselines/gpu_only.hpp"
#include "baselines/safe_fixed_step.hpp"
#include "common.hpp"

using namespace capgpu;

namespace {

core::RunOptions schedule() {
  core::RunOptions opt;
  opt.periods = 120;
  opt.set_point = 800_W;
  opt.set_point_changes[40] = 900_W;
  opt.set_point_changes[80] = 800_W;
  return opt;
}

/// Settling time (periods) of the segment starting at `from`, against
/// `target` within +/-band.
std::size_t segment_settling(const telemetry::TimeSeries& power,
                             std::size_t from, std::size_t to, double target,
                             double band) {
  for (std::size_t k = from; k < to; ++k) {
    bool settled = true;
    for (std::size_t j = k; j < to; ++j) {
      if (std::abs(power.value_at(j) - target) > band) {
        settled = false;
        break;
      }
    }
    if (settled) return k - from;
  }
  return to - from;
}

}  // namespace

int main(int argc, char** argv) {
  capgpu::bench::init(argc, argv);
  bench::print_banner("Figure 10: adaptation to changing set points",
                      "paper Sec 6.4, Fig 10; 800 W -> 900 W @40 -> 800 W @80");
  const auto& model = bench::testbed_model().model;

  struct Entry {
    std::string name;
    core::RunResult res;
  };
  std::vector<Entry> entries;
  {
    core::ServerRig rig;
    baselines::FixedStepConfig cfg;
    const double margin = baselines::SafeFixedStepController::estimate_margin(
        model, rig.device_ranges(), cfg);
    baselines::SafeFixedStepController ctl(cfg, rig.device_ranges(), 800_W,
                                           margin);
    entries.push_back({"Safe Fixed-Step", rig.run(ctl, schedule())});
  }
  {
    core::ServerRig rig;
    // The paper notes GPU-Only's long settling: its pole-placement gain is
    // conservative; we use a damped pole to reproduce that behaviour.
    baselines::GpuOnlyController ctl(rig.device_ranges(), model, 0.7, 800_W);
    entries.push_back({"GPU-Only", rig.run(ctl, schedule())});
  }
  {
    core::ServerRig rig;
    core::CapGpuController ctl = bench::make_capgpu(rig, 800_W);
    entries.push_back({"CapGPU", rig.run(ctl, schedule())});
    bench::export_result_csv("fig10_capgpu", entries.back().res);
  }

  std::printf("\nPower traces (120 periods; range 600-1000 W):\n");
  for (const auto& e : entries) {
    bench::print_strip(e.name, e.res.power, 600.0, 1000.0);
  }

  // Fluctuation: std within each steady segment (10 periods after every
  // change skipped), averaged across the three segments.
  auto fluct = [&](const core::RunResult& res) {
    double total = 0.0;
    const std::size_t segs[][2] = {{20, 40}, {60, 80}, {100, 120}};
    for (const auto& seg : segs) {
      telemetry::RunningStats s;
      for (std::size_t k = seg[0]; k < seg[1]; ++k) {
        s.add(res.power.value_at(k));
      }
      total += s.stddev();
    }
    return total / 3.0;
  };

  std::printf("\nPer-segment behaviour:\n");
  std::printf("  %-18s %-26s %-26s %-20s\n", "method",
              "settle to 900 W (periods)", "settle back to 800 W",
              "fluctuation std (W)");
  for (const auto& e : entries) {
    const std::size_t up = segment_settling(e.res.power, 40, 80, 900.0, 15.0);
    const std::size_t down =
        segment_settling(e.res.power, 80, 120, 800.0, 15.0);
    std::printf("  %-18s %-26zu %-26zu %-20.1f\n", e.name.c_str(), up, down,
                fluct(e.res));
  }
  const std::size_t gpu_up =
      segment_settling(entries[1].res.power, 40, 80, 900.0, 15.0);
  const std::size_t cap_up =
      segment_settling(entries[2].res.power, 40, 80, 900.0, 15.0);
  std::printf("\nShape checks (paper Fig 10):\n");
  std::printf("  all methods adapt to both changes:        %s\n",
              (segment_settling(entries[0].res.power, 80, 120, 800.0, 40.0) <
                   40 &&
               segment_settling(entries[1].res.power, 80, 120, 800.0, 40.0) <
                   40 &&
               segment_settling(entries[2].res.power, 80, 120, 800.0, 40.0) <
                   40)
                  ? "PASS"
                  : "FAIL");
  std::printf("  CapGPU least fluctuation (0.5 W tol):     %s\n",
              (fluct(entries[2].res) <= fluct(entries[0].res) + 0.5 &&
               fluct(entries[2].res) <= fluct(entries[1].res) + 0.5)
                  ? "PASS"
                  : "FAIL");
  std::printf("  GPU-Only longest settling after the step: %s\n",
              (gpu_up > cap_up) ? "PASS" : "FAIL");
  return 0;
}
