// Ablation: the weight-assignment algorithm (paper Sec 4.3).
//
// Runs CapGPU at 900 W with (a) the paper's inverted-throughput weights and
// (b) uniform control weights, and compares application performance. The
// inverted weights are what shifts watts from the (SLO-free) CPU job to the
// GPU streams, so disabling them must cost GPU throughput.
#include <cstdio>

#include "common.hpp"
#include "telemetry/table.hpp"

using namespace capgpu;

namespace {

struct Outcome {
  double power_mean;
  double power_std;
  double gpu_total;
  double cpu_thr;
  double cpu_freq;
  double gpu_freq_avg;
};

Outcome run_with(bool invert) {
  core::ServerRig rig;
  core::CapGpuConfig cfg;
  cfg.weights.invert_throughput = invert;
  core::CapGpuController ctl(cfg, rig.device_ranges(),
                             bench::testbed_model().model, 900_W,
                             rig.latency_models());
  core::RunOptions opt;
  opt.periods = 100;
  opt.set_point = 900_W;
  const core::RunResult res = rig.run(ctl, opt);

  Outcome o{};
  const auto s = res.steady_power(20);
  o.power_mean = s.mean();
  o.power_std = s.stddev();
  for (std::size_t i = 0; i < 3; ++i) {
    o.gpu_total += bench::steady_mean(res.gpu_throughput[i], 20);
  }
  o.cpu_thr = bench::steady_mean(res.cpu_throughput, 20);
  o.cpu_freq = bench::steady_mean(res.device_freqs[0], 20);
  for (std::size_t j = 1; j <= 3; ++j) {
    o.gpu_freq_avg += bench::steady_mean(res.device_freqs[j], 20) / 3.0;
  }
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  capgpu::bench::init(argc, argv);
  bench::print_banner("Ablation: throughput-inverted vs uniform weights",
                      "paper Sec 4.3 weight assignment");
  (void)bench::testbed_model();

  const Outcome inverted = run_with(true);
  const Outcome uniform = run_with(false);

  telemetry::Table t("CapGPU @ 900 W, steady state");
  t.set_header({"Weights", "Power W", "Power std", "GPU thr img/s",
                "CPU thr subs/s", "CPU MHz", "avg GPU MHz"});
  t.add_row("inverted (paper)",
            {inverted.power_mean, inverted.power_std, inverted.gpu_total,
             inverted.cpu_thr, inverted.cpu_freq, inverted.gpu_freq_avg},
            1);
  t.add_row("uniform (ablated)",
            {uniform.power_mean, uniform.power_std, uniform.gpu_total,
             uniform.cpu_thr, uniform.cpu_freq, uniform.gpu_freq_avg},
            1);
  t.print();

  std::printf("\nShape checks:\n");
  std::printf("  both track the cap (|err| < 10 W):            %s\n",
              (std::abs(inverted.power_mean - 900.0) < 10.0 &&
               std::abs(uniform.power_mean - 900.0) < 10.0)
                  ? "PASS"
                  : "FAIL");
  std::printf("  inverted weights win GPU throughput:          %s\n",
              inverted.gpu_total > uniform.gpu_total ? "PASS" : "FAIL");
  std::printf("  inverted weights throttle the SLO-free CPU:   %s\n",
              inverted.cpu_freq < uniform.cpu_freq ? "PASS" : "FAIL");
  return 0;
}
