// Ablation: coordinated batching + DVFS (extension; paper's reference [20]).
//
// Two experiments against fixed-batch CapGPU:
//   (a) throughput: with relaxed SLOs at a 900 W cap, the governor grows
//       batches to amortise per-launch overhead — more img/s at the same
//       power;
//   (b) feasibility: an SLO below e_min at the default batch (no clock can
//       meet it) becomes feasible once the governor shrinks the batch.
#include <cstdio>

#include "common.hpp"
#include "core/batching.hpp"
#include "telemetry/table.hpp"

using namespace capgpu;

namespace {

struct Outcome {
  double power;
  double total_thr;
  double miss_rate;
  double resnet_latency;
  std::size_t batches[3];
};

Outcome run_case(bool with_governor, double slo_resnet) {
  core::ServerRig rig;
  core::CapGpuController ctl = bench::make_capgpu(rig, 900_W);
  std::unique_ptr<core::BatchingGovernor> governor;
  if (with_governor) {
    governor = std::make_unique<core::BatchingGovernor>(
        rig.engine(),
        std::vector<workload::InferenceStream*>{&rig.stream(0),
                                                &rig.stream(1),
                                                &rig.stream(2)},
        ctl);
    governor->start();
  }
  core::RunOptions opt;
  opt.periods = 100;
  opt.set_point = 900_W;
  opt.initial_slos = {{1, slo_resnet}, {2, 1.6}, {3, 1.3}};
  const core::RunResult res = rig.run(ctl, opt);

  Outcome o{};
  o.power = res.steady_power(30).mean();
  for (std::size_t i = 0; i < 3; ++i) {
    o.total_thr += bench::steady_mean(res.gpu_throughput[i], 30);
    o.batches[i] = rig.stream(i).batch_size();
  }
  o.miss_rate = res.slo_misses[0].ratio();
  telemetry::RunningStats lat;
  for (std::size_t k = 40; k < res.periods; ++k) {
    lat.add(res.gpu_latency[0].value_at(k));
  }
  o.resnet_latency = lat.mean();
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  capgpu::bench::init(argc, argv);
  bench::print_banner("Ablation: coordinated batching + DVFS",
                      "extension of CapGPU with the batch-size knob of [20]");
  (void)bench::testbed_model();

  std::printf("\n(a) relaxed SLOs at 900 W — batching for throughput:\n");
  const Outcome fixed_a = run_case(false, 0.9);
  const Outcome gov_a = run_case(true, 0.9);
  telemetry::Table ta("batch 20 fixed vs governed");
  ta.set_header({"Variant", "Power W", "GPU img/s", "batches", "resnet miss"});
  ta.add_row({"fixed batch", telemetry::fmt(fixed_a.power, 1),
              telemetry::fmt(fixed_a.total_thr, 1),
              std::to_string(fixed_a.batches[0]) + "/" +
                  std::to_string(fixed_a.batches[1]) + "/" +
                  std::to_string(fixed_a.batches[2]),
              telemetry::fmt(100.0 * fixed_a.miss_rate, 1) + "%"});
  ta.add_row({"governed", telemetry::fmt(gov_a.power, 1),
              telemetry::fmt(gov_a.total_thr, 1),
              std::to_string(gov_a.batches[0]) + "/" +
                  std::to_string(gov_a.batches[1]) + "/" +
                  std::to_string(gov_a.batches[2]),
              telemetry::fmt(100.0 * gov_a.miss_rate, 1) + "%"});
  ta.print();

  std::printf("\n(b) 0.25 s SLO on ResNet50 (e_min at batch 20 is 0.35 s):\n");
  const Outcome fixed_b = run_case(false, 0.25);
  const Outcome gov_b = run_case(true, 0.25);
  telemetry::Table tb("infeasible-at-default-batch SLO");
  tb.set_header({"Variant", "resnet batch", "resnet lat s", "miss rate"});
  tb.add_row({"fixed batch", std::to_string(fixed_b.batches[0]),
              telemetry::fmt(fixed_b.resnet_latency, 3),
              telemetry::fmt(100.0 * fixed_b.miss_rate, 1) + "%"});
  tb.add_row({"governed", std::to_string(gov_b.batches[0]),
              telemetry::fmt(gov_b.resnet_latency, 3),
              telemetry::fmt(100.0 * gov_b.miss_rate, 1) + "%"});
  tb.print();

  std::printf("\nShape checks:\n");
  std::printf("  governed batches grew under relaxed SLOs:     %s\n",
              gov_a.batches[1] > 20 ? "PASS" : "FAIL");
  std::printf("  batching buys throughput at the same power:   %s\n",
              (gov_a.total_thr > fixed_a.total_thr * 1.03 &&
               std::abs(gov_a.power - fixed_a.power) < 10.0)
                  ? "PASS"
                  : "FAIL");
  std::printf("  fixed batch misses the 0.25 s SLO badly:      %s\n",
              fixed_b.miss_rate > 0.5 ? "PASS" : "FAIL");
  std::printf("  governor shrinks the batch and meets it:      %s\n",
              (gov_b.batches[0] < 20 && gov_b.miss_rate < 0.10 &&
               gov_b.resnet_latency < 0.25)
                  ? "PASS"
                  : "FAIL");
  return 0;
}
