// Ablation: MPC horizon choices (the paper uses P=8, M=2).
//
// Sweeps the prediction horizon P and control horizon M, reporting
// steady-state tracking accuracy, stability margin under gain error, and
// per-step solve cost — the quantitative "why 8/2" behind the paper's
// controller configuration.
#include <chrono>
#include <cstdio>

#include "common.hpp"
#include "control/stability.hpp"
#include "telemetry/table.hpp"

using namespace capgpu;

namespace {

struct Outcome {
  double abs_err;
  double stddev;
  double g_max;
  double step_us;
};

Outcome run_one(std::size_t p_horizon, std::size_t m_horizon) {
  core::ServerRig rig;
  core::CapGpuConfig cfg;
  cfg.mpc.prediction_horizon = p_horizon;
  cfg.mpc.control_horizon = m_horizon;
  core::CapGpuController ctl(cfg, rig.device_ranges(),
                             bench::testbed_model().model, 900_W,
                             rig.latency_models());
  core::RunOptions opt;
  opt.periods = 80;
  opt.set_point = 900_W;
  const core::RunResult res = rig.run(ctl, opt);

  Outcome o{};
  const auto s = res.steady_power(30);
  o.abs_err = std::abs(s.mean() - 900.0);
  o.stddev = s.stddev();
  o.g_max =
      control::max_stable_uniform_gain(ctl.mpc(), bench::testbed_model().model);

  // Isolated step cost at this horizon.
  control::MpcController mpc(cfg.mpc, rig.device_ranges(),
                             bench::testbed_model().model, 900_W);
  std::vector<double> f{1600.0, 800.0, 800.0, 800.0};
  Rng rng(5);
  const auto t0 = std::chrono::steady_clock::now();
  const int reps = 200;
  for (int k = 0; k < reps; ++k) {
    (void)mpc.step(Watts{rng.uniform(800.0, 1000.0)}, f);
  }
  const auto t1 = std::chrono::steady_clock::now();
  o.step_us =
      std::chrono::duration<double, std::micro>(t1 - t0).count() / reps;
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  capgpu::bench::init(argc, argv);
  bench::print_banner("Ablation: MPC horizon sweep",
                      "paper config P=8, M=2 in context, P swept to 64");
  (void)bench::testbed_model();

  telemetry::Table t("steady state @900 W, stability margin, step cost");
  t.set_header({"P", "M", "|err| W", "std W", "max stable gain", "step us"});
  struct Cell {
    std::size_t p, m;
    Outcome o;
  };
  std::vector<Cell> cells;
  for (const auto& [p, m] : std::vector<std::pair<std::size_t, std::size_t>>{
           {1, 1},
           {2, 1},
           {4, 2},
           {8, 2},
           {8, 4},
           {16, 2},
           {16, 8},
           // Fleet-sized horizons: with the folded tracking assembly and the
           // solver's analytic fast path, P is ~free and only M (the QP
           // dimension) costs.
           {32, 8},
           {64, 8}}) {
    cells.push_back({p, m, run_one(p, m)});
    const auto& o = cells.back().o;
    t.add_row({std::to_string(p), std::to_string(m),
               telemetry::fmt(o.abs_err, 2), telemetry::fmt(o.stddev, 2),
               telemetry::fmt(o.g_max, 2), telemetry::fmt(o.step_us, 1)});
  }
  t.print();

  const auto& paper = cells[3];  // P=8, M=2
  std::printf(
      "\nReading: the plant is static in the frequencies, so horizons do\n"
      "not change steady-state quality, and the stability margin against\n"
      "the deadbeat violation response is the textbook g < 2 boundary for\n"
      "every configuration (damping, not horizons, widens it — see\n"
      "bench_ablation_stability). What the horizons do set is cost: M\n"
      "drives the QP dimension, while P is ~free — the tracking term is\n"
      "folded into M rank-1 updates at assembly and the fast-path solve\n"
      "never touches P directly (P=64 costs what P=16 does).\n");
  std::printf("\nShape checks:\n");
  bool all_track = true;
  for (const auto& c : cells) all_track = all_track && c.o.abs_err < 10.0;
  std::printf("  every horizon tracks the cap (<10 W err):        %s\n",
              all_track ? "PASS" : "FAIL");
  bool margin_at_two = true;
  for (const auto& c : cells) {
    margin_at_two = margin_at_two && std::abs(c.o.g_max - 2.0) < 0.05;
  }
  std::printf("  deadbeat margin at the theoretical g=2 boundary: %s\n",
              margin_at_two ? "PASS" : "FAIL");
  std::printf("  M, not P, dominates the step cost:               %s\n",
              (cells[6].o.step_us > 5.0 * cells[5].o.step_us &&
               cells[5].o.step_us < 4.0 * cells[3].o.step_us)
                  ? "PASS"
                  : "FAIL");
  std::printf("  paper's P=8,M=2 stays cheap (< 1 ms per step):   %s\n",
              paper.o.step_us < 1000.0 ? "PASS" : "FAIL");
  // Folded assembly: quadrupling P at fixed M must not blow up the step
  // (cells 6/8 are P=16 and P=64 at M=8; 2.5x allows timing noise).
  std::printf("  P is ~free at fixed M (folded assembly):         %s\n",
              cells[8].o.step_us < 2.5 * cells[6].o.step_us ? "PASS" : "FAIL");
  return 0;
}
