// Shared helpers for the experiment benches.
//
// Every bench reproduces one table or figure from the paper: it builds the
// simulated testbed, drives the controllers, and prints the same rows or
// series the paper reports. Traces are rendered as compact ASCII so the
// figure "shape" is visible in terminal output.
#pragma once

#include <string>
#include <vector>

#include "baselines/controller_iface.hpp"
#include "control/sysid.hpp"
#include "core/capgpu_controller.hpp"
#include "core/rig.hpp"
#include "telemetry/audit.hpp"
#include "telemetry/table.hpp"
#include "telemetry/timeseries.hpp"

namespace capgpu::bench {

/// Parses the observability flags shared by every bench and arranges for
/// the outputs to be flushed at process exit:
///
///   --metrics-out <path>   Prometheus text exposition of the global
///                          metrics registry
///   --trace-out <path>     Chrome trace-event JSON (load in Perfetto);
///                          also enables the tracer
///   --events-out <path>    JSONL structured-event stream; also enables
///                          the tracer
///   --log-level <level>    debug | info | warn | error | off
///   --jobs <N>             worker threads for parallel scenario sweeps
///                          (default 1; 0 = hardware threads). Output is
///                          byte-identical for every N — see
///                          docs/performance.md.
///   --summary-out <path>   machine-readable JSON run summary: scenario
///                          count, jobs, wall time, per-stage/per-model
///                          p99 request latencies
///   --slo-report-out <path> SLO burn-rate report JSON (error-budget
///                          accounting + alert episodes + stage latency
///                          quantiles); input to tools/capgpu_report
///   --flight-out <path>    control-loop flight-recorder JSONL (one record
///                          per control period); also enables the flight
///                          recorder. Input to tools/capgpu_ctl_replay.
///   --resilience-out <path> chaos-campaign resilience scorecard JSON
///                          (per-stage MTTR, SLO burn, fail-safe dwell);
///                          written by benches that run campaigns.
///   --energy-out <path>    per-request energy attribution JSON: per-{cap,
///                          model} stage joules plus the per-cap efficiency
///                          summary (joules/request, requests/kJ, idle
///                          fraction). Input to tools/capgpu_report.
///
/// Both `--flag value` and `--flag=value` forms work. Consumed flags are
/// removed from argv; unknown flags are left alone (google-benchmark
/// binaries keep their --benchmark_* flags and plain benches ignore the
/// leftovers). Duplicate flags and empty values are rejected (exit 2).
/// Call first thing in main().
void init(int& argc, char** argv);

/// Worker-thread count requested via --jobs, already resolved: >= 1.
[[nodiscard]] std::size_t jobs();

/// Pole used by every proportional baseline (chosen, as in the paper, to
/// minimise oscillation while converging quickly).
inline constexpr double kBaselinePole = 0.3;

/// Identified power model of the default 3-GPU testbed. Runs the paper's
/// sysid sweep once and caches the result for the whole process.
[[nodiscard]] const control::IdentifiedModel& testbed_model();

/// Builds a CapGPU controller wired to `rig` with the cached model.
[[nodiscard]] core::CapGpuController make_capgpu(core::ServerRig& rig,
                                                 Watts set_point);

/// Prints a header line for a bench.
void print_banner(const std::string& title, const std::string& paper_ref);

/// Renders a time series as an ASCII strip chart: one row of symbols, value
/// range shown on the left. `periods_per_char` compresses long runs.
void print_strip(const std::string& label, const telemetry::TimeSeries& ts,
                 double lo, double hi, std::size_t periods_per_char = 1);

/// Prints steady-state stats of a run's power trace (paper convention:
/// skip the first 20 of 100 periods).
void print_power_summary(const std::string& name, const core::RunResult& res,
                         double set_point_watts, std::size_t skip = 20);

/// Prints the per-stage / per-model request-latency quantile table
/// (p50/p95/p99/p99.9 from the registry's sketches). No-op when no stream
/// recorded stage stats.
void print_stage_quantiles();

/// Convenience: mean over the steady tail of a series.
[[nodiscard]] double steady_mean(const telemetry::TimeSeries& ts,
                                 std::size_t skip);

/// Writes a run's full trace set (power, set point, per-device clocks,
/// per-stream throughput/latency) to results/<name>.csv next to the bench
/// binary, for external plotting. Prints the path written. Failures to
/// create the directory are reported, not fatal (benches must run
/// read-only too).
void export_result_csv(const std::string& name, const core::RunResult& res);

}  // namespace capgpu::bench
