// Reproduces Figure 9 (paper Sec 6.4): CapGPU under the same SLO schedule
// as Fig 8 — per-device frequency allocation lets it satisfy every SLO,
// including the tightened ResNet50 SLO at period 14, while holding 1000 W.
#include <cstdio>

#include "common.hpp"
#include "runner/scenario_runner.hpp"
#include "slo_helpers.hpp"

using namespace capgpu;

int main(int argc, char** argv) {
  capgpu::bench::init(argc, argv);
  bench::print_banner("Figure 9: SLO adherence of CapGPU",
                      "paper Sec 6.4, Fig 9; set point 1000 W");
  (void)bench::testbed_model();

  core::RunOptions opt;
  opt.periods = 60;
  opt.set_point = 1000_W;
  bench::apply_slo_schedule(opt);

  // A single scenario, still routed through the runner so --jobs exercises
  // the same code path as the sweeps.
  runner::ScenarioRunner sr({bench::jobs()});
  const core::RunResult res = std::move(sr.map(1, [&](std::size_t) {
    core::ServerRig rig;
    core::CapGpuController ctl = bench::make_capgpu(rig, 1000_W);
    return rig.run(ctl, opt);
  })[0]);
  bench::export_result_csv("fig9_capgpu_slo", res);

  std::printf("\nCapGPU — per-GPU batch latency vs SLO (every 4th period):\n");
  std::printf("  %-8s | %-19s | %-19s | %-19s\n", "period",
              "ResNet50 lat/SLO", "Swin-T lat/SLO", "VGG16 lat/SLO");
  for (std::size_t k = 0; k < res.periods; k += 4) {
    std::printf("  %-8zu |", k);
    for (std::size_t i = 0; i < 3; ++i) {
      const double lat = res.gpu_latency[i].value_at(k);
      const double slo = res.gpu_slo[i].value_at(k);
      std::printf(" %6.3f /%6.3f %s |", lat, slo,
                  lat > slo ? "MISS" : " ok ");
    }
    std::printf("\n");
  }

  std::printf("\nPer-device frequency commands (MHz) at steady state:\n");
  for (std::size_t j = 0; j < res.device_freqs.size(); ++j) {
    std::printf("  device %zu (%s): %7.1f MHz\n", j,
                j == 0 ? "CPU" : "GPU", res.device_freqs[j].values().back());
  }

  std::printf("\nDeadline miss rates over the run:\n");
  bench::print_miss_rates("CapGPU", res);
  bench::print_power_summary("CapGPU power", res, 1000.0, 20);

  std::printf("\nRequest latency by pipeline stage:\n");
  bench::print_stage_quantiles();

  double worst = 0.0;
  for (const auto& m : res.slo_misses) worst = std::max(worst, m.ratio());
  const bool per_device =
      std::abs(res.device_freqs[1].values().back() -
               res.device_freqs[2].values().back()) > 50.0;
  std::printf("\nShape checks (paper Fig 9):\n");
  std::printf("  CapGPU meets all SLOs (worst miss < 10%%): %s\n",
              worst < 0.10 ? "PASS" : "FAIL");
  std::printf("  per-device frequencies differ (not shared): %s\n",
              per_device ? "PASS" : "FAIL");
  std::printf("  power stays at the 1000 W cap (+/-10 W):    %s\n",
              std::abs(res.steady_power(20).mean() - 1000.0) < 10.0
                  ? "PASS"
                  : "FAIL");
  return 0;
}
