// Reproduces Table 1 (paper Sec 3.2): end-to-end performance of the
// GoogLeNet pipeline on the RTX 3090 workstation under three static
// frequency configurations.
#include <cstdio>

#include "common.hpp"
#include "core/motivation.hpp"
#include "telemetry/table.hpp"

using namespace capgpu;

int main(int argc, char** argv) {
  capgpu::bench::init(argc, argv);
  bench::print_banner("Table 1: motivation — CPU-only vs GPU-only vs CapGPU",
                      "paper Sec 3.2, Table 1");

  const struct {
    const char* label;
    Megahertz cpu;
    Megahertz gpu;
  } configs[] = {
      {"CPU-only", 1.1_GHz, 810_MHz},
      {"GPU-only", 2.1_GHz, 495_MHz},
      {"CapGPU", 1.6_GHz, 660_MHz},
  };

  telemetry::Table table("End-to-end performance under static frequencies");
  table.set_header({"Config", "CPU GHz", "GPU MHz", "Preproc s/img",
                    "GPU s/batch", "Queue s/img", "Thr img/s", "Power W"});

  std::vector<core::MotivationRow> rows;
  for (const auto& cfg : configs) {
    rows.push_back(core::run_motivation_config(cfg.label, cfg.cpu, cfg.gpu));
    const auto& r = rows.back();
    table.add_row({r.label, telemetry::fmt(r.cpu_ghz, 1),
                   telemetry::fmt(r.gpu_mhz, 0),
                   telemetry::fmt(r.preprocess_s_per_img, 2),
                   telemetry::fmt(r.gpu_s_per_batch, 2),
                   telemetry::fmt(r.queue_s_per_img, 2),
                   telemetry::fmt(r.throughput_img_s, 2),
                   telemetry::fmt(r.power_w, 1)});
  }
  table.print();

  std::printf(
      "\nPaper reference rows (RTX 3090 testbed): throughput 5.3 / 5.9 / 6.4 "
      "img/s, power 406 / 421 / 415 W.\n");
  std::printf("Shape checks:\n");
  std::printf("  CapGPU highest throughput: %s\n",
              (rows[2].throughput_img_s > rows[1].throughput_img_s &&
               rows[1].throughput_img_s > rows[0].throughput_img_s)
                  ? "PASS (CapGPU > GPU-only > CPU-only)"
                  : "FAIL");
  std::printf("  CapGPU lowest queue delay: %s\n",
              (rows[2].queue_s_per_img < rows[0].queue_s_per_img &&
               rows[2].queue_s_per_img < rows[1].queue_s_per_img)
                  ? "PASS"
                  : "FAIL");
  std::printf("  CPU-only cheapest power:   %s\n",
              (rows[0].power_w < rows[1].power_w &&
               rows[0].power_w < rows[2].power_w)
                  ? "PASS"
                  : "FAIL");
  return 0;
}
