// Ablation: stability-margin analysis (paper Sec 4.4).
//
// Sweeps the uniform plant-gain error g (true gains = g * identified gains)
// and reports the closed-loop spectral radius, plus the bisected maximum
// stable gain — the quantitative version of the paper's claim that the
// controlled server "remains stable as long as each A_i stays within a
// derived bound". Also shows how the reference-trajectory damping widens
// the margin.
#include <cstdio>

#include "common.hpp"
#include "control/stability.hpp"

using namespace capgpu;

int main(int argc, char** argv) {
  capgpu::bench::init(argc, argv);
  bench::print_banner("Ablation: closed-loop stability margin",
                      "paper Sec 4.4 analysis, quantified");
  const auto& identified = bench::testbed_model();

  core::ServerRig rig;
  const auto devices = rig.device_ranges();

  for (const double decay : {0.0, 0.5, 0.8}) {
    control::MpcConfig cfg;
    cfg.violation_decay = decay;
    cfg.reference_decay = std::max(decay, 0.5);
    control::MpcController mpc(cfg, devices, identified.model, 900_W);

    std::vector<double> grid;
    for (double g = 0.25; g <= 8.0; g *= std::sqrt(2.0)) grid.push_back(g);
    const auto sweep =
        control::sweep_uniform_gain(mpc, identified.model, grid);

    std::printf("\nviolation_decay = %.1f\n", decay);
    std::printf("  %-12s %-18s %s\n", "gain mult g", "spectral radius",
                "stable");
    for (const auto& pt : sweep) {
      std::printf("  %-12.3f %-18.4f %s\n", pt.gain, pt.spectral_radius,
                  pt.stable ? "yes" : "NO");
    }
    const double g_max =
        control::max_stable_uniform_gain(mpc, identified.model);
    std::printf("  max stable uniform gain multiplier: %.2f\n", g_max);
  }

  control::MpcController deadbeat(
      [] {
        control::MpcConfig c;
        c.violation_decay = 0.0;
        return c;
      }(),
      devices, identified.model, 900_W);
  control::MpcController damped(
      [] {
        control::MpcConfig c;
        c.violation_decay = 0.8;
        return c;
      }(),
      devices, identified.model, 900_W);
  const double g_deadbeat =
      control::max_stable_uniform_gain(deadbeat, identified.model);
  const double g_damped =
      control::max_stable_uniform_gain(damped, identified.model);

  std::printf("\nShape checks:\n");
  std::printf("  nominal loop stable (g = 1):                 %s\n",
              control::analyze_closed_loop(deadbeat, identified.model).stable
                  ? "PASS"
                  : "FAIL");
  std::printf("  margin exceeds 50%% gain error:               %s\n",
              g_deadbeat > 1.5 ? "PASS" : "FAIL");
  std::printf("  damped reference widens the stability margin: %s\n",
              g_damped > g_deadbeat ? "PASS" : "FAIL");
  return 0;
}
