// Reproduces Figure 2(b) (paper Sec 4.2): measured vs predicted inference
// latency across GPU frequencies, fitting e = e_min (f_max/f)^gamma. The
// paper fits gamma = 0.91 with R^2 ~ 0.91.
#include <cstdio>

#include "common.hpp"
#include "control/latency_model.hpp"
#include "core/rig.hpp"

using namespace capgpu;

int main(int argc, char** argv) {
  capgpu::bench::init(argc, argv);
  bench::print_banner("Figure 2(b): latency-vs-frequency model fit",
                      "paper Sec 4.2 Eq. 8, Fig 2(b); gamma=0.91, R^2~0.91");

  core::RigConfig cfg;
  cfg.models = {workload::resnet50_v100()};
  core::ServerRig rig(cfg);
  auto& engine = rig.engine();
  auto& hal = rig.hal();
  hal.set_device_frequency(DeviceId{0}, 2.4_GHz);  // ample preprocessing

  std::vector<control::LatencySample> samples;
  struct Row {
    double f, measured;
  };
  std::vector<Row> rows;
  for (double f = 435.0; f <= 1350.0; f += 61.0) {
    hal.set_device_frequency(DeviceId{1}, Megahertz{f});
    engine.run_until(engine.now() + 5.0);   // settle
    const double t0 = engine.now();
    engine.run_until(t0 + 25.0);            // measure window
    const double e =
        rig.stream(0).batch_latency().mean(engine.now(), 25.0);
    const double f_applied = hal.device_frequency(DeviceId{1}).value;
    samples.push_back({Megahertz{f_applied}, e});
    rows.push_back({f_applied, e});
  }

  const control::LatencyFit fit =
      control::fit_latency_model(samples, 1350_MHz);
  std::printf("\nFitted: e = %.4f * (1350/f)^%.3f   (R^2 = %.4f)\n",
              fit.model.e_min(), fit.model.gamma(), fit.r_squared);
  std::printf("Paper: gamma = 0.91, modeling R^2 ~ 0.91\n\n");

  std::printf("%10s %14s %14s %10s\n", "f_gpu MHz", "measured s", "predicted s",
              "error %");
  for (const auto& r : rows) {
    const double pred = fit.model.predict(Megahertz{r.f});
    std::printf("%10.0f %14.4f %14.4f %+9.2f%%\n", r.f, r.measured, pred,
                100.0 * (r.measured - pred) / pred);
  }

  const bool gamma_ok =
      fit.model.gamma() > 0.85 && fit.model.gamma() < 0.97;
  std::printf("\nShape checks: gamma in [0.85, 0.97]: %s;  R^2 >= 0.9: %s\n",
              gamma_ok ? "PASS" : "FAIL",
              fit.r_squared >= 0.9 ? "PASS" : "FAIL");
  return 0;
}
