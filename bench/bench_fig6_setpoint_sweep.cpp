// Reproduces Figure 6 (paper Sec 6.3): control accuracy across power set
// points 900..1200 W (50 W grid). Mean +/- std over the last 80 of 100
// periods for Safe Fixed-Step, GPU-Only, GPU+CPU (40% and 60% GPU) and
// CapGPU. The paper's result: CapGPU most accurate and most stable;
// GPU+CPU fails to converge; Safe Fixed-Step worst accuracy.
#include <cstdio>

#include "baselines/cpu_plus_gpu.hpp"
#include "baselines/gpu_only.hpp"
#include "baselines/safe_fixed_step.hpp"
#include "common.hpp"
#include "runner/scenario_runner.hpp"
#include "telemetry/table.hpp"

using namespace capgpu;

namespace {

struct Cell {
  double mean{0.0};
  double stddev{0.0};
};

Cell run_one(const std::string& kind, double set_point) {
  core::ServerRig rig;
  const auto& model = bench::testbed_model().model;
  const auto devices = rig.device_ranges();
  core::RunOptions opt;
  opt.periods = 100;
  opt.set_point = Watts{set_point};

  core::RunResult res;
  if (kind == "safe-fixed-step") {
    baselines::FixedStepConfig cfg;
    const double margin = baselines::SafeFixedStepController::estimate_margin(
        model, devices, cfg);
    baselines::SafeFixedStepController ctl(cfg, devices, Watts{set_point},
                                           margin);
    res = rig.run(ctl, opt);
  } else if (kind == "gpu-only") {
    baselines::GpuOnlyController ctl(devices, model, bench::kBaselinePole,
                                     Watts{set_point});
    res = rig.run(ctl, opt);
  } else if (kind == "gpu+cpu-40") {
    baselines::CpuPlusGpuController ctl(devices, model, bench::kBaselinePole,
                                        Watts{set_point}, 0.4);
    res = rig.run(ctl, opt);
  } else if (kind == "gpu+cpu-60") {
    baselines::CpuPlusGpuController ctl(devices, model, bench::kBaselinePole,
                                        Watts{set_point}, 0.6);
    res = rig.run(ctl, opt);
  } else {
    core::CapGpuController ctl = bench::make_capgpu(rig, Watts{set_point});
    res = rig.run(ctl, opt);
  }
  const auto s = res.steady_power(20);
  return {s.mean(), s.stddev()};
}

}  // namespace

int main(int argc, char** argv) {
  capgpu::bench::init(argc, argv);
  bench::print_banner(
      "Figure 6: control accuracy across set points 900-1200 W",
      "paper Sec 6.3, Fig 6");
  (void)bench::testbed_model();

  const std::vector<std::string> kinds{"safe-fixed-step", "gpu-only",
                                       "gpu+cpu-40", "gpu+cpu-60", "capgpu"};
  telemetry::Table table("Steady-state power: mean (std), W");
  table.set_header({"Set point", "SafeFixedStep", "GPU-Only", "GPU+CPU 40%",
                    "GPU+CPU 60%", "CapGPU"});

  struct Agg {
    double abs_err{0.0};
    double std_sum{0.0};
  };
  std::vector<Agg> agg(kinds.size());

  std::vector<double> set_points;
  for (double sp = 900.0; sp <= 1200.0; sp += 50.0) set_points.push_back(sp);

  // One scenario per (set point, controller) cell, executed by the runner
  // (--jobs N workers, byte-identical output for every N).
  runner::ScenarioRunner sr({bench::jobs()});
  const std::vector<Cell> cells =
      sr.map(set_points.size() * kinds.size(), [&](std::size_t idx) {
        return run_one(kinds[idx % kinds.size()],
                       set_points[idx / kinds.size()]);
      });

  for (std::size_t s = 0; s < set_points.size(); ++s) {
    const double sp = set_points[s];
    std::vector<std::string> row{telemetry::fmt(sp, 0) + " W"};
    for (std::size_t k = 0; k < kinds.size(); ++k) {
      const Cell c = cells[s * kinds.size() + k];
      row.push_back(telemetry::fmt(c.mean, 1) + " (" +
                    telemetry::fmt(c.stddev, 1) + ")");
      agg[k].abs_err += std::abs(c.mean - sp);
      agg[k].std_sum += c.stddev;
    }
    table.add_row(std::move(row));
  }
  table.print();

  std::printf("\nAverage |error| and std across the sweep:\n");
  for (std::size_t k = 0; k < kinds.size(); ++k) {
    std::printf("  %-16s |err|=%6.1f W   std=%5.1f W\n", kinds[k].c_str(),
                agg[k].abs_err / 7.0, agg[k].std_sum / 7.0);
  }

  const auto& cap = agg[4];
  // GPU-Only and CapGPU both track within ~1 W. CapGPU deliberately biases
  // ~1 W *below* the cap (its violation-side response is deadbeat, so noise
  // above the cap is pushed down harder than noise below is pulled up) —
  // a safety asymmetry, not inaccuracy; the check allows 2 W per point.
  const double tol = 2.0 * 7.0;
  std::printf("\nShape checks (paper Fig 6):\n");
  std::printf("  CapGPU most accurate (|err| lowest, 2 W tol):   %s\n",
              (cap.abs_err <= agg[0].abs_err + tol &&
               cap.abs_err <= agg[1].abs_err + tol &&
               cap.abs_err <= agg[2].abs_err + tol &&
               cap.abs_err <= agg[3].abs_err + tol)
                  ? "PASS"
                  : "FAIL");
  std::printf("  CapGPU most stable (std lowest):         %s\n",
              (cap.std_sum <= agg[0].std_sum && cap.std_sum <= agg[1].std_sum &&
               cap.std_sum <= agg[2].std_sum && cap.std_sum <= agg[3].std_sum)
                  ? "PASS"
                  : "FAIL");
  std::printf("  GPU+CPU fails to converge (|err| > 25 W): %s\n",
              (agg[2].abs_err / 7.0 > 25.0 && agg[3].abs_err / 7.0 > 25.0)
                  ? "PASS"
                  : "FAIL");
  std::printf("  Safe Fixed-Step worst accuracy:          %s\n",
              (agg[0].abs_err >= agg[1].abs_err && agg[0].abs_err >= cap.abs_err)
                  ? "PASS"
                  : "FAIL");
  return 0;
}
