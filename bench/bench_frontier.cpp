// Extension bench: the power-performance frontier.
//
// Runs every capping technique across budgets 850..1200 W and reports GPU
// throughput per watt actually drawn — the efficiency frontier. The
// paper's per-figure results (Fig 6 accuracy, Fig 7 performance) combine
// here into one economic statement: at any given wattage, which controller
// buys the most inference?
#include <cstdio>

#include "baselines/gpu_only.hpp"
#include "baselines/safe_fixed_step.hpp"
#include "common.hpp"
#include "core/batching.hpp"
#include "runner/scenario_runner.hpp"
#include "telemetry/table.hpp"

using namespace capgpu;

namespace {

struct Point {
  double power;
  double throughput;
};

Point run_one(const std::string& kind, double set_point) {
  core::ServerRig rig;
  const auto& model = bench::testbed_model().model;
  core::RunOptions opt;
  opt.periods = 80;
  opt.set_point = Watts{set_point};

  core::RunResult res;
  std::unique_ptr<core::BatchingGovernor> governor;
  if (kind == "safe-fixed-step") {
    baselines::FixedStepConfig cfg;
    const double margin = baselines::SafeFixedStepController::estimate_margin(
        model, rig.device_ranges(), cfg);
    baselines::SafeFixedStepController ctl(cfg, rig.device_ranges(),
                                           Watts{set_point}, margin);
    res = rig.run(ctl, opt);
  } else if (kind == "gpu-only") {
    baselines::GpuOnlyController ctl(rig.device_ranges(), model,
                                     bench::kBaselinePole, Watts{set_point});
    res = rig.run(ctl, opt);
  } else if (kind == "capgpu") {
    core::CapGpuController ctl = bench::make_capgpu(rig, Watts{set_point});
    res = rig.run(ctl, opt);
  } else {  // capgpu+batching
    core::CapGpuController ctl = bench::make_capgpu(rig, Watts{set_point});
    governor = std::make_unique<core::BatchingGovernor>(
        rig.engine(),
        std::vector<workload::InferenceStream*>{&rig.stream(0),
                                                &rig.stream(1),
                                                &rig.stream(2)},
        ctl);
    governor->start();
    res = rig.run(ctl, opt);
  }

  Point p{};
  p.power = res.steady_power(30).mean();
  for (std::size_t i = 0; i < 3; ++i) {
    p.throughput += bench::steady_mean(res.gpu_throughput[i], 30);
  }
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  capgpu::bench::init(argc, argv);
  bench::print_banner("Extension: power-performance frontier",
                      "GPU throughput vs power drawn, budgets 850-1200 W");
  (void)bench::testbed_model();

  const std::vector<std::string> kinds{"safe-fixed-step", "gpu-only",
                                       "capgpu", "capgpu+batching"};
  telemetry::Table t("throughput img/s (at measured watts)");
  t.set_header({"Budget", "SafeFixedStep", "GPU-Only", "CapGPU",
                "CapGPU+batch"});
  std::vector<double> budgets;
  for (double sp = 850.0; sp <= 1200.0; sp += 70.0) budgets.push_back(sp);

  // One scenario per (budget, controller) point, fanned out by --jobs.
  runner::ScenarioRunner sr({bench::jobs()});
  const std::vector<Point> points =
      sr.map(budgets.size() * kinds.size(), [&](std::size_t idx) {
        return run_one(kinds[idx % kinds.size()], budgets[idx / kinds.size()]);
      });

  std::vector<std::vector<Point>> frontier(kinds.size());
  for (std::size_t b = 0; b < budgets.size(); ++b) {
    std::vector<std::string> row{telemetry::fmt(budgets[b], 0) + " W"};
    for (std::size_t k = 0; k < kinds.size(); ++k) {
      const Point p = points[b * kinds.size() + k];
      frontier[k].push_back(p);
      row.push_back(telemetry::fmt(p.throughput, 1) + " @" +
                    telemetry::fmt(p.power, 0) + "W");
    }
    t.add_row(std::move(row));
  }
  t.print();

  std::printf("\nEfficiency (img/s per 100 W drawn, mean across budgets):\n");
  std::vector<double> efficiency(kinds.size(), 0.0);
  for (std::size_t k = 0; k < kinds.size(); ++k) {
    for (const Point& p : frontier[k]) {
      efficiency[k] += 100.0 * p.throughput / p.power;
    }
    efficiency[k] /= static_cast<double>(frontier[k].size());
    std::printf("  %-16s %.2f\n", kinds[k].c_str(), efficiency[k]);
  }

  std::printf("\nShape checks:\n");
  std::printf("  CapGPU dominates both baselines at every budget: %s\n",
              [&] {
                for (std::size_t i = 0; i < frontier[2].size(); ++i) {
                  if (frontier[2][i].throughput <
                          frontier[0][i].throughput ||
                      frontier[2][i].throughput < frontier[1][i].throughput) {
                    return false;
                  }
                }
                return true;
              }()
                  ? "PASS"
                  : "FAIL");
  std::printf("  batching extends the frontier further:           %s\n",
              efficiency[3] > efficiency[2] ? "PASS" : "FAIL");
  std::printf("  throughput rises with budget (CapGPU monotone):  %s\n",
              [&] {
                for (std::size_t i = 1; i < frontier[2].size(); ++i) {
                  if (frontier[2][i].throughput <
                      frontier[2][i - 1].throughput - 1.0) {
                    return false;
                  }
                }
                return true;
              }()
                  ? "PASS"
                  : "FAIL");
  return 0;
}
