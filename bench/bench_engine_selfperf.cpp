// Engine hot-path microbenchmark: the pooled-slot sim::Engine vs the
// pre-overhaul map-based kernel, on the event patterns the simulations
// actually generate.
//
// The old engine is embedded below (LegacyEngine) so the comparison stays
// honest after the rewrite: both kernels compile with the same flags into
// the same binary and run the same workloads. Results print as a table and
// are appended to a JSON report (default BENCH_perf.json, override with
// --out <path>) which scripts/run_perf.sh merges with the parallel-sweep
// timings; docs/performance.md describes the format.
#include <chrono>
#include <cstdlib>
#include <cstdio>
#include <fstream>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "common.hpp"
#include "common/error.hpp"
#include "common/options.hpp"
#include "common/rng.hpp"
#include "hw/server_model.hpp"
#include "sim/engine.hpp"
#include "telemetry/table.hpp"
#include "workload/pipeline.hpp"

using namespace capgpu;

namespace legacy {

// The pre-overhaul kernel, verbatim: std::function callbacks, a
// priority_queue of nodes, and an unordered_map of live events consulted
// on every fire.
using SimTime = double;
using EventId = std::uint64_t;

class LegacyEngine {
 public:
  using Callback = std::function<void()>;

  [[nodiscard]] SimTime now() const { return now_; }

  EventId schedule_at(SimTime at, Callback cb) {
    CAPGPU_REQUIRE(at >= now_, "cannot schedule an event in the past");
    CAPGPU_REQUIRE(static_cast<bool>(cb), "cannot schedule a null callback");
    const EventId id = next_id_++;
    live_.emplace(id, State{std::move(cb), false, 0.0});
    queue_.push(Node{at, next_seq_++, id});
    return id;
  }

  EventId schedule_after(SimTime delay, Callback cb) {
    CAPGPU_REQUIRE(delay >= 0.0, "negative delay");
    return schedule_at(now_ + delay, std::move(cb));
  }

  EventId schedule_periodic(SimTime period, Callback cb) {
    CAPGPU_REQUIRE(period > 0.0, "periodic events need a positive period");
    CAPGPU_REQUIRE(static_cast<bool>(cb), "cannot schedule a null callback");
    const EventId id = next_id_++;
    live_.emplace(id, State{std::move(cb), true, period});
    queue_.push(Node{now_ + period, next_seq_++, id});
    return id;
  }

  void cancel(EventId id) { live_.erase(id); }

  bool step() {
    while (!queue_.empty()) {
      const Node node = queue_.top();
      queue_.pop();
      auto it = live_.find(node.id);
      if (it == live_.end()) continue;
      now_ = node.time;
      ++executed_;
      if (it->second.periodic) {
        queue_.push(Node{node.time + it->second.period, next_seq_++, node.id});
        Callback cb = it->second.cb;
        cb();
      } else {
        Callback cb = std::move(it->second.cb);
        live_.erase(it);
        cb();
      }
      return true;
    }
    return false;
  }

  void run_until(SimTime until) {
    CAPGPU_REQUIRE(until >= now_, "run_until target is in the past");
    for (;;) {
      while (!queue_.empty() && !live_.contains(queue_.top().id)) queue_.pop();
      if (queue_.empty() || queue_.top().time > until) break;
      step();
    }
    now_ = until;
  }

  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }

 private:
  struct State {
    Callback cb;
    bool periodic{false};
    SimTime period{0.0};
  };
  struct Node {
    SimTime time;
    std::uint64_t seq;
    EventId id;
  };
  struct Later {
    bool operator()(const Node& a, const Node& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  SimTime now_{0.0};
  std::uint64_t next_seq_{0};
  EventId next_id_{1};
  std::uint64_t executed_{0};
  std::priority_queue<Node, std::vector<Node>, Later> queue_;
  std::unordered_map<EventId, State> live_;
};

}  // namespace legacy

namespace {

// The workloads mirror what a rig run schedules: a bank of periodic
// timers (meters, control loops, stream monitors), one-shot chains
// (batch completion scheduling the next batch), and cancel churn
// (re-armed watchdogs and deadline timers that almost never fire).
// Captures are sized like the real call sites — pipeline callbacks grab
// `this` plus two or three values (24-40 bytes), past std::function's
// inline buffer.

struct MonitorState {
  std::uint64_t* acc;
  double gain;
  double offset;
  double last;
};

template <typename EngineT>
void workload_periodic(EngineT& e) {
  std::uint64_t acc = 0;
  for (int i = 0; i < 64; ++i) {
    MonitorState st{&acc, 1.0 + 0.01 * i, 0.5 * i, 0.0};
    e.schedule_periodic(1.0 + 0.01 * i, [st]() mutable {
      st.last = st.gain * st.last + st.offset;
      ++*st.acc;
    });
  }
  e.run_until(16000.0);
}

// Self-propagating chain: each completion schedules the next batch with a
// fresh callable, exactly like the pipeline's consumer_finish_batch
// (captures object pointer, accumulator, and the batch latency).
template <typename EngineT>
struct ChainEvent {
  EngineT* e;
  std::uint64_t* acc;
  double exec;
  void operator()() const {
    ++*acc;
    if (e->now() < 16000.0) e->schedule_after(exec, ChainEvent{*this});
  }
};

template <typename EngineT>
void workload_chains(EngineT& e) {
  std::uint64_t acc = 0;
  for (int c = 0; c < 32; ++c) {
    e.schedule_after(0.5 + 0.01 * c,
                     ChainEvent<EngineT>{&e, &acc, 1.0 + 0.001 * c});
  }
  e.run_until(17000.0);
}

template <typename EngineT>
void workload_cancel_heavy(EngineT& e) {
  // Watchdog pattern: arm a deadline, cancel and re-arm before it fires.
  std::uint64_t acc = 0;
  e.schedule_periodic(1.0, [&acc] { ++acc; });
  auto watchdog = decltype(e.schedule_at(0.0, [] {})){};
  for (int round = 0; round < 200000; ++round) {
    if (round != 0) e.cancel(watchdog);
    MonitorState st{&acc, 1000.0, double(round), 0.0};
    watchdog = e.schedule_after(100.0, [st]() mutable {
      st.last = st.offset;
      *st.acc += std::uint64_t(st.gain);
    });
    e.run_until(e.now() + 0.01);
  }
}

template <typename EngineT>
void workload_mixed(EngineT& e) {
  std::uint64_t acc = 0;
  for (int i = 0; i < 16; ++i) {
    MonitorState st{&acc, 0.9, 0.05 * i, 0.0};
    e.schedule_periodic(0.9 + 0.05 * i, [st]() mutable {
      st.last += st.gain;
      ++*st.acc;
    });
  }
  auto chain = std::make_shared<std::function<void()>>();
  *chain = [&e, chain, &acc] {
    ++acc;
    if (e.now() < 9000.0) {
      e.schedule_after(0.7, *chain);
      // A deadline that is always cancelled before firing.
      const auto t = e.schedule_after(50.0, [&acc] { acc += 1000; });
      e.schedule_after(0.5, [&e, t] { e.cancel(t); });
    }
  };
  e.schedule_after(0.1, *chain);
  e.run_until(9100.0);
}

struct Measurement {
  double events_per_s{0.0};
  std::uint64_t events{0};
};

template <typename EngineT, typename Workload>
Measurement run_once(Workload&& workload) {
  EngineT e;
  const auto t0 = std::chrono::steady_clock::now();
  workload(e);
  const auto t1 = std::chrono::steady_clock::now();
  const double secs = std::chrono::duration<double>(t1 - t0).count();
  return Measurement{
      secs > 0.0 ? static_cast<double>(e.events_executed()) / secs : 0.0,
      e.events_executed()};
}

struct Row {
  std::string name;
  Measurement legacy_m;
  Measurement current_m;
  [[nodiscard]] double speedup() const {
    return legacy_m.events_per_s > 0.0
               ? current_m.events_per_s / legacy_m.events_per_s
               : 0.0;
  }
};

// Reps alternate legacy/pooled so both kernels sample the same machine
// conditions — back-to-back blocks would fold timing drift into the ratio.
// Best-of keeps the least-perturbed rep of each.
template <typename Workload>
Row measure_pair(const std::string& name, Workload&& workload, int reps) {
  Row row{name, {}, {}};
  for (int r = 0; r < reps; ++r) {
    const Measurement lm = run_once<legacy::LegacyEngine>(workload);
    if (lm.events_per_s > row.legacy_m.events_per_s) row.legacy_m = lm;
    const Measurement cm = run_once<sim::Engine>(workload);
    if (cm.events_per_s > row.current_m.events_per_s) row.current_m = cm;
  }
  return row;
}

// --- Request-timeline overhead guard -------------------------------------
//
// The per-request latency attribution (RequestTimeline stamps + per-stage
// sketches) runs inside the pipeline's hot callbacks. With tracing
// disabled — the default for every simulation that does not ask for
// --trace-out/--events-out — it must stay within 5% of the pre-attribution
// fast path (StreamParams::stage_stats = false).
Measurement run_pipeline_once(bool stage_stats) {
  sim::Engine engine;
  hw::ServerModel server = hw::ServerModel::v100_testbed(1);
  server.cpu().set_frequency(2.4_GHz);
  server.gpu(0).set_core_clock(1350_MHz);
  workload::StreamParams p;
  p.model.name = "selfperf";
  p.model.batch_size = 8;
  p.model.e_min_batch_s = 0.05;
  p.model.gamma = 0.91;
  p.model.gpu_f_max = 1350_MHz;
  p.model.preprocess_s_ghz = 0.005;
  p.model.gpu_busy_util = 0.9;
  p.model.jitter_frac = 0.0;
  p.n_preprocess_workers = 2;
  p.stage_stats = stage_stats;
  workload::InferenceStream stream(engine, server, 0, p, Rng(1));
  stream.start();
  const auto t0 = std::chrono::steady_clock::now();
  engine.run_until(64000.0);
  const auto t1 = std::chrono::steady_clock::now();
  const double secs = std::chrono::duration<double>(t1 - t0).count();
  return Measurement{
      secs > 0.0 ? static_cast<double>(engine.events_executed()) / secs : 0.0,
      engine.events_executed()};
}

struct OverheadResult {
  Measurement baseline;  // stage_stats off
  Measurement timeline;  // stage_stats on
  [[nodiscard]] double overhead_frac() const {
    return baseline.events_per_s > 0.0
               ? 1.0 - timeline.events_per_s / baseline.events_per_s
               : 0.0;
  }
};

OverheadResult measure_timeline_overhead(int reps) {
  // Same protocol as measure_pair above: off/on reps alternate so both
  // configurations sample the same machine conditions, and best-of keeps
  // the least-perturbed rep of each — external noise only ever slows a
  // run down, so the maxima converge on the undisturbed speeds.
  OverheadResult best;
  for (int i = 0; i < reps; ++i) {
    const Measurement off = run_pipeline_once(false);
    if (off.events_per_s > best.baseline.events_per_s) best.baseline = off;
    const Measurement on = run_pipeline_once(true);
    if (on.events_per_s > best.timeline.events_per_s) best.timeline = on;
    if (std::getenv("CAPGPU_SELFPERF_DEBUG")) {
      std::fprintf(stderr, "  rep %d: off %.2fM on %.2fM\n", i,
                   off.events_per_s / 1e6, on.events_per_s / 1e6);
    }
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  bench::init(argc, argv);
  std::string out_path = "BENCH_perf.json";
  try {
    const auto flags = extract_flags(argc, argv, {"out"});
    if (auto it = flags.find("out"); it != flags.end()) out_path = it->second;
  } catch (const InvalidArgument& e) {
    std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
    return 2;
  }
  bench::print_banner("Engine self-perf: pooled-slot kernel vs legacy kernel",
                      "events/sec on simulation-shaped workloads");

  constexpr int kReps = 7;
  std::vector<Row> rows;
  rows.push_back(measure_pair(
      "periodic-timers", [](auto& e) { workload_periodic(e); }, kReps));
  rows.push_back(measure_pair(
      "oneshot-chains", [](auto& e) { workload_chains(e); }, kReps));
  rows.push_back(measure_pair(
      "cancel-heavy", [](auto& e) { workload_cancel_heavy(e); }, kReps));
  rows.push_back(
      measure_pair("mixed", [](auto& e) { workload_mixed(e); }, kReps));

  telemetry::Table t("events/sec, best of " + std::to_string(kReps));
  t.set_header({"workload", "events", "legacy ev/s", "pooled ev/s", "speedup"});
  double worst_speedup = 1e9;
  for (const Row& r : rows) {
    t.add_row({r.name, std::to_string(r.current_m.events),
               telemetry::fmt(r.legacy_m.events_per_s / 1e6, 2) + "M",
               telemetry::fmt(r.current_m.events_per_s / 1e6, 2) + "M",
               telemetry::fmt(r.speedup(), 2) + "x"});
    worst_speedup = std::min(worst_speedup, r.speedup());
  }
  t.print();
  std::printf("\n  worst-case speedup: %.2fx (target >= 1.5x)\n",
              worst_speedup);

  // More reps than the engine table: the guard compares two nearly equal
  // speeds, so the best-of maxima need more samples to converge under
  // machine noise than a 2x-apart engine comparison does.
  constexpr int kOverheadReps = 15;
  const OverheadResult overhead = measure_timeline_overhead(kOverheadReps);
  std::printf(
      "\n  request-timeline overhead (tracing disabled, best of %d "
      "alternating reps):\n"
      "    attribution off %.2fM ev/s, on %.2fM ev/s -> %.2f%% overhead "
      "(target < 5%%): %s\n",
      kOverheadReps, overhead.baseline.events_per_s / 1e6,
      overhead.timeline.events_per_s / 1e6, overhead.overhead_frac() * 100.0,
      overhead.overhead_frac() < 0.05 ? "PASS" : "FAIL");

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << "{\n  \"engine_selfperf\": {\n    \"reps\": " << kReps
      << ",\n    \"workloads\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "      {\"name\": \"%s\", \"events\": %llu, "
                  "\"legacy_events_per_s\": %.0f, "
                  "\"pooled_events_per_s\": %.0f, \"speedup\": %.3f}%s\n",
                  r.name.c_str(),
                  static_cast<unsigned long long>(r.current_m.events),
                  r.legacy_m.events_per_s, r.current_m.events_per_s,
                  r.speedup(), i + 1 < rows.size() ? "," : "");
    out << buf;
  }
  char tail[512];
  std::snprintf(tail, sizeof(tail),
                "    ],\n    \"worst_speedup\": %.3f\n  },\n"
                "  \"timeline_overhead\": {\n"
                "    \"baseline_events_per_s\": %.0f,\n"
                "    \"stage_stats_events_per_s\": %.0f,\n"
                "    \"overhead_frac\": %.4f,\n"
                "    \"budget_frac\": 0.05\n  }\n}\n",
                worst_speedup, overhead.baseline.events_per_s,
                overhead.timeline.events_per_s, overhead.overhead_frac());
  out << tail;
  std::printf("  [perf] %s\n", out_path.c_str());
  return 0;
}
