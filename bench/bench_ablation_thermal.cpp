// Ablation: temperature-constrained capping (extension; cf. the paper's
// reference [32], temperature-constrained power control).
//
// GPU 0's cooling degrades sharply mid-run (fan failure: thermal
// resistance 0.17 -> 0.42 °C/W). Without the thermal governor the board
// sails past its 83 °C limit while the power cap is happily met; with the
// governor the board's frequency ceiling drops, the MIMO controller
// re-allocates the freed watts to the cool boards, and both constraints —
// 1000 W server power AND 83 °C per board — hold simultaneously.
#include <cstdio>

#include "common.hpp"
#include "core/thermal_governor.hpp"
#include "hw/thermal.hpp"
#include "telemetry/table.hpp"

using namespace capgpu;

namespace {

struct Outcome {
  core::RunResult res;
  telemetry::TimeSeries temp0{"gpu0_temp", "C"};
  double peak_temp0{0.0};
  double final_f[3];
  double steady_power;
  double steady_thr;
};

Outcome run_case(bool with_governor) {
  core::ServerRig rig;
  hw::ThermalIntegrator thermal(rig.engine(), rig.server(),
                                {hw::ThermalParams{}});
  core::CapGpuController ctl = bench::make_capgpu(rig, 1000_W);
  core::ThermalGovernor governor(rig.engine(), rig.server(), thermal, ctl);
  if (with_governor) governor.start();

  // Fan failure on GPU 0 at t = 160 s (period 40).
  auto* thermal_ptr = &thermal;
  rig.engine().schedule_at(160.0, [thermal_ptr] {
    hw::ThermalParams weak;
    weak.r_c_per_w = 0.42;
    thermal_ptr->set_params(0, weak);
  });

  Outcome o{};
  core::RunOptions opt;
  opt.periods = 150;
  opt.set_point = 1000_W;
  // Sample GPU 0's temperature once per control period via the engine.
  auto* rig_ptr = &rig;
  auto* temp_series = &o.temp0;
  for (std::size_t k = 1; k <= opt.periods; ++k) {
    rig.engine().schedule_at(4.0 * static_cast<double>(k),
                             [rig_ptr, temp_series, k] {
                               temp_series->add(static_cast<double>(k),
                                                rig_ptr->server()
                                                    .gpu(0)
                                                    .temperature_c());
                             });
  }
  o.res = rig.run(ctl, opt);
  for (const double t : o.temp0.values()) {
    o.peak_temp0 = std::max(o.peak_temp0, t);
  }
  for (int j = 0; j < 3; ++j) {
    o.final_f[j] = o.res.device_freqs[j + 1].values().back();
  }
  o.steady_power = o.res.steady_power(100).mean();
  for (std::size_t i = 0; i < 3; ++i) {
    o.steady_thr += bench::steady_mean(o.res.gpu_throughput[i], 100);
  }
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  capgpu::bench::init(argc, argv);
  bench::print_banner("Ablation: thermal-constrained capping",
                      "fan failure on GPU 0 at period 40; 1000 W + 83 C limits");
  (void)bench::testbed_model();

  const Outcome without = run_case(false);
  const Outcome with = run_case(true);

  std::printf("\nGPU 0 temperature (25-120 C; limit 83 C):\n");
  bench::print_strip("no governor", without.temp0, 25.0, 120.0);
  bench::print_strip("with governor", with.temp0, 25.0, 120.0);

  telemetry::Table t("steady state after the failure (periods 100-150)");
  t.set_header({"Variant", "GPU0 peak C", "f_gpu0/1/2 MHz", "power W",
                "GPU img/s"});
  for (const auto* o : {&without, &with}) {
    t.add_row({o == &without ? "no governor" : "with governor",
               telemetry::fmt(o->peak_temp0, 1),
               telemetry::fmt(o->final_f[0], 0) + "/" +
                   telemetry::fmt(o->final_f[1], 0) + "/" +
                   telemetry::fmt(o->final_f[2], 0),
               telemetry::fmt(o->steady_power, 1),
               telemetry::fmt(o->steady_thr, 1)});
  }
  t.print();

  std::printf("\nShape checks:\n");
  std::printf("  without the governor GPU 0 overheats (>90 C):  %s\n",
              without.peak_temp0 > 90.0 ? "PASS" : "FAIL");
  std::printf("  governor holds GPU 0 under 84 C:               %s\n",
              with.peak_temp0 < 84.0 ? "PASS" : "FAIL");
  std::printf("  hot board throttled, cool boards pick up:      %s\n",
              (with.final_f[0] < with.final_f[1] - 150.0 &&
               with.final_f[1] > without.final_f[1] - 50.0)
                  ? "PASS"
                  : "FAIL");
  std::printf("  power cap still tracked with the governor:     %s\n",
              std::abs(with.steady_power - 1000.0) < 10.0 ? "PASS" : "FAIL");
  return 0;
}
