// Shared SLO schedule for the Fig 8/9 benches (paper Sec 6.4).
//
// The paper derives SLO levels from tail latencies: an "X% tail" SLO is the
// latency achieved at the clock sitting X% from the top of the frequency
// range (tighter tail => higher required clock). All workloads start at the
// 50% tail; at control period 14 the tasks on GPU 1 and GPU 2 relax to the
// 80% tail while GPU 0 tightens to the 30% tail.
#pragma once

#include "core/rig.hpp"
#include "workload/latency_law.hpp"
#include "workload/model_zoo.hpp"

namespace capgpu::bench {

/// SLO for `model` at the given tail fraction (0.3 = tight, 0.8 = loose).
[[nodiscard]] inline double slo_for_tail(const workload::ModelSpec& model,
                                         double tail) {
  const double span = 1350.0 - 435.0;
  const double f = 435.0 + (1.0 - tail) * span;
  return workload::latency_at(model.e_min_batch_s, model.gpu_f_max,
                              Megahertz{f}, model.gamma);
}

/// The Fig 8/9 schedule applied to RunOptions: 50% tail everywhere, then at
/// period 14 GPU 0 tightens to 30% tail and GPUs 1-2 relax to 80% tail.
inline void apply_slo_schedule(core::RunOptions& opt) {
  const auto models = workload::v100_testbed_models();
  for (std::size_t i = 0; i < models.size(); ++i) {
    opt.initial_slos[i + 1] = slo_for_tail(models[i], 0.5);
  }
  opt.slo_changes.emplace_back(14, 1, slo_for_tail(models[0], 0.3));
  opt.slo_changes.emplace_back(14, 2, slo_for_tail(models[1], 0.8));
  opt.slo_changes.emplace_back(14, 3, slo_for_tail(models[2], 0.8));
}

/// Per-GPU miss rates over the run, printed as one line.
inline void print_miss_rates(const std::string& name,
                             const core::RunResult& res) {
  std::printf("  %-18s deadline miss rate: ResNet50 %.1f%%  Swin-T %.1f%%  "
              "VGG16 %.1f%%\n",
              name.c_str(), 100.0 * res.slo_misses[0].ratio(),
              100.0 * res.slo_misses[1].ratio(),
              100.0 * res.slo_misses[2].ratio());
}

}  // namespace capgpu::bench
