// Extension bench: rack-level budget division policies.
//
// Three CapGPU-capped servers with asymmetric demand (heavy ResNet50
// server, mixed server, light Swin server) share a 2700 W rack budget
// under each rack::RackPolicy. Reported: rack power tracking, per-server
// budgets, and total GPU throughput — demand-aware division buys rack
// throughput over a static equal split, and priority-aware division
// protects the designated production server.
#include <cstdio>
#include <memory>
#include <vector>

#include "common.hpp"
#include "core/control_loop.hpp"
#include "rack/coordinator.hpp"
#include "runner/scenario_runner.hpp"
#include "telemetry/table.hpp"

using namespace capgpu;

namespace {

struct Server {
  std::unique_ptr<core::ServerRig> rig;
  std::unique_ptr<core::CapGpuController> controller;
  std::unique_ptr<core::ControlLoop> loop;
};

struct RackOutcome {
  double rack_power_mean{0.0};
  double rack_throughput{0.0};
  std::vector<double> budgets;
  std::vector<double> throughputs;
};

RackOutcome run_policy(rack::RackPolicy policy) {
  constexpr double kRackBudget = 2700.0;
  std::vector<std::vector<workload::ModelSpec>> mixes{
      {workload::resnet50_v100(), workload::resnet50_v100(),
       workload::resnet50_v100()},
      workload::v100_testbed_models(),
      {workload::swin_t_v100(), workload::swin_t_v100(),
       workload::swin_t_v100()},
  };

  std::vector<Server> servers;
  rack::RackCoordinator coordinator(Watts{kRackBudget}, policy);
  for (std::size_t s = 0; s < mixes.size(); ++s) {
    Server srv;
    core::RigConfig cfg;
    cfg.models = mixes[s];
    cfg.seed = 100 + s;
    if (s == 2) {
      // The swin server runs open-loop at 35% offered load: plenty of
      // idle GPU time, so extra budget buys it almost nothing.
      cfg.offered_load = {{0.0, 0.35}};
    }
    srv.rig = std::make_unique<core::ServerRig>(cfg);
    srv.controller = std::make_unique<core::CapGpuController>(
        core::CapGpuConfig{}, srv.rig->device_ranges(),
        bench::testbed_model().model, Watts{kRackBudget / 3.0},
        srv.rig->latency_models());
    auto* rig_ptr = srv.rig.get();
    srv.loop = std::make_unique<core::ControlLoop>(
        srv.rig->engine(), srv.rig->hal(), srv.rig->rapl(), *srv.controller,
        core::ControlLoopConfig{},
        [rig_ptr] { return rig_ptr->normalized_throughputs(); });
    srv.loop->start();

    rack::ServerEndpoint ep;
    ep.name = "server-" + std::to_string(s);
    auto* ctl = srv.controller.get();
    auto* loop = srv.loop.get();
    ep.set_budget = [ctl](Watts w) { ctl->set_set_point(w); };
    ep.measured_power = [loop] {
      return loop->power_trace().empty()
                 ? 0.0
                 : loop->power_trace().values().back();
    };
    ep.demand = [rig_ptr] { return rig_ptr->gpu_demand(); };
    ep.priority = (s == 0) ? 3.0 : 1.0;  // server 0 is "production"
    ep.bounds = {700.0, 1200.0};
    coordinator.add_server(std::move(ep));
    servers.push_back(std::move(srv));
  }

  constexpr std::size_t kPeriods = 80;
  telemetry::RunningStats rack_power;
  for (std::size_t k = 1; k <= kPeriods; ++k) {
    for (auto& s : servers) {
      s.rig->engine().run_until(s.rig->engine().now() + 4.0);
    }
    if (k % 5 == 0) coordinator.rebalance();
    if (k > kPeriods / 2) rack_power.add(coordinator.total_power());
  }

  RackOutcome out;
  out.rack_power_mean = rack_power.mean();
  out.budgets = coordinator.budgets();
  for (auto& s : servers) {
    double thr = 0.0;
    const double now = s.rig->engine().now();
    for (std::size_t i = 0; i < s.rig->gpu_count(); ++i) {
      thr += s.rig->stream(i).images_throughput().rate(now, 40.0);
    }
    out.throughputs.push_back(thr);
    out.rack_throughput += thr;
    s.loop->stop();
  }
  return out;
}

const char* policy_name(rack::RackPolicy p) {
  switch (p) {
    case rack::RackPolicy::kEqual: return "equal";
    case rack::RackPolicy::kDemandProportional: return "demand-proportional";
    case rack::RackPolicy::kPriorityAware: return "priority-aware";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  capgpu::bench::init(argc, argv);
  bench::print_banner("Extension: rack budget policies over CapGPU servers",
                      "rack-scope power oversubscription (cf. Dynamo)");
  (void)bench::testbed_model();

  std::vector<rack::RackPolicy> policies{
      rack::RackPolicy::kEqual, rack::RackPolicy::kDemandProportional,
      rack::RackPolicy::kPriorityAware};

  telemetry::Table t(
      "2700 W rack: resnet-heavy + mixed (saturated) / swin (35% load)");
  t.set_header({"Policy", "rack W", "budgets W", "per-server img/s",
                "rack img/s"});
  // Each policy's three-server rack is an independent scenario.
  runner::ScenarioRunner sr({bench::jobs()});
  const std::vector<RackOutcome> outcomes = sr.map(
      policies.size(), [&](std::size_t idx) { return run_policy(policies[idx]); });
  for (std::size_t k = 0; k < policies.size(); ++k) {
    const auto& o = outcomes[k];
    std::string budgets;
    std::string thr;
    for (std::size_t i = 0; i < o.budgets.size(); ++i) {
      budgets += (i ? "/" : "") + telemetry::fmt(o.budgets[i], 0);
      thr += (i ? "/" : "") + telemetry::fmt(o.throughputs[i], 0);
    }
    t.add_row({policy_name(policies[k]), telemetry::fmt(o.rack_power_mean, 1),
               budgets, thr, telemetry::fmt(o.rack_throughput, 1)});
  }
  t.print();

  std::printf("\nShape checks:\n");
  // The lightly-loaded swin server cannot absorb its equal share, so the
  // rack draws under budget for kEqual; the demand policy reallocates that
  // headroom to the saturated servers.
  std::printf("  demand-aware moves budget to saturated servers: %s\n",
              (outcomes[1].budgets[0] > outcomes[1].budgets[2] + 100.0 &&
               outcomes[1].budgets[1] > outcomes[1].budgets[2] + 100.0)
                  ? "PASS"
                  : "FAIL");
  std::printf("  demand-aware beats the equal split on rack throughput: %s\n",
              outcomes[1].rack_throughput > outcomes[0].rack_throughput + 2.0
                  ? "PASS"
                  : "FAIL");
  std::printf("  demand-aware uses more of the rack budget:      %s\n",
              outcomes[1].rack_power_mean > outcomes[0].rack_power_mean + 10.0
                  ? "PASS"
                  : "FAIL");
  std::printf("  priority-aware favours the production server:   %s\n",
              outcomes[2].budgets[0] > outcomes[2].budgets[1] + 100.0
                  ? "PASS"
                  : "FAIL");
  return 0;
}
