// Reproduces Figure 4 (paper Sec 6.2): the Fixed-Step heuristic at step
// sizes 1 and 5 (CPU 100 MHz / GPU 90 MHz per step), showing slow ramp or
// oscillation around the 900 W set point.
#include <cstdio>

#include "baselines/fixed_step.hpp"
#include "common.hpp"

using namespace capgpu;

int main(int argc, char** argv) {
  capgpu::bench::init(argc, argv);
  bench::print_banner("Figure 4: Fixed-Step controller, step sizes 1 and 5",
                      "paper Sec 6.2, Fig 4");
  (void)bench::testbed_model();

  struct Entry {
    std::string name;
    int multiplier;
    core::RunResult result;
    std::size_t rise{0};  // first period inside the +/-25 W band
  };
  std::vector<Entry> entries;

  for (const int mult : {1, 5}) {
    core::ServerRig rig;
    baselines::FixedStepConfig cfg;
    cfg.step_multiplier = mult;
    baselines::FixedStepController ctl(cfg, rig.device_ranges(), 900_W);
    core::RunOptions opt;
    opt.periods = 100;
    opt.set_point = 900_W;
    Entry e{"Fixed-Step x" + std::to_string(mult), mult, rig.run(ctl, opt),
            0};
    e.rise = e.result.periods;
    for (std::size_t k = 0; k < e.result.periods; ++k) {
      if (std::abs(e.result.power.value_at(k) - 900.0) <= 25.0) {
        e.rise = k;
        break;
      }
    }
    entries.push_back(std::move(e));
    bench::export_result_csv("fig4_fixed_step_x" + std::to_string(mult),
                             entries.back().result);
  }

  std::printf("\nPower traces (range 600-1000 W):\n");
  for (const auto& e : entries) {
    bench::print_strip(e.name, e.result.power, 600.0, 1000.0);
  }

  std::printf("\nSteady-state behaviour (last 50 periods):\n");
  for (const auto& e : entries) {
    bench::print_power_summary(e.name, e.result, 900.0, 50);
    const std::string rise_str = std::to_string(e.rise) + " periods";
    std::printf("    first reaches +/-25 W of the cap after: %s\n",
                e.rise < e.result.periods ? rise_str.c_str() : "never");
  }

  std::printf("\nShape checks (paper Fig 4):\n");
  std::printf(
      "  small step ramps slowly (rise x1 > x5):    %s\n",
      entries[0].rise > entries[1].rise ? "PASS" : "FAIL");
  std::printf("  large step oscillates more (std x5 > x1): %s\n",
              entries[1].result.steady_power(50).stddev() >
                      entries[0].result.steady_power(50).stddev()
                  ? "PASS"
                  : "FAIL");
  std::printf("  both violate the cap repeatedly:           %s\n",
              (entries[0].result.power.count_above(900.0, 50) > 5 &&
               entries[1].result.power.count_above(900.0, 50) > 5)
                  ? "PASS"
                  : "FAIL");
  return 0;
}
