// Extension bench: open-loop serving through a demand cycle.
//
// The paper's experiments run saturated pipelines; this bench feeds the
// same testbed a diurnal-style offered load (30% -> 85% -> 30% of peak)
// and shows what the paper's objective — "use as much power as allowed by
// the cap" — means in each regime: under light load the GPUs finish early
// and true power sits *below* the cap (capping does not bind); during the
// surge the cap binds and CapGPU pins power at the budget while holding
// SLOs.
#include <cstdio>

#include "common.hpp"
#include "runner/scenario_runner.hpp"
#include "slo_helpers.hpp"

using namespace capgpu;

int main(int argc, char** argv) {
  capgpu::bench::init(argc, argv);
  bench::print_banner("Extension: open-loop demand cycle at a 950 W cap",
                      "offered load 30% -> 85% -> 30% of peak");
  (void)bench::testbed_model();

  core::RunOptions opt;
  opt.periods = 120;  // 480 s: surge spans periods 40..80
  opt.set_point = 950_W;
  // SLOs at the 60% tail for every model throughout.
  const auto models = workload::v100_testbed_models();
  for (std::size_t i = 0; i < models.size(); ++i) {
    opt.initial_slos[i + 1] = bench::slo_for_tail(models[i], 0.6);
  }

  // A single scenario, routed through the runner like every other bench so
  // the run's metrics merge into the global registry: --summary-out /
  // --metrics-out / --slo-report-out capture it and tools/capgpu_report can
  // attribute the latencies.
  double peak_images_per_s[3] = {};
  runner::ScenarioRunner sr({bench::jobs()});
  const core::RunResult res = std::move(sr.map(1, [&](std::size_t) {
    core::RigConfig cfg;
    // Offered-load schedule as fractions of each stream's peak throughput.
    cfg.offered_load = {{0.0, 0.30}, {160.0, 0.85}, {320.0, 0.30}};
    core::ServerRig rig(cfg);
    core::CapGpuController ctl = bench::make_capgpu(rig, 950_W);
    for (std::size_t i = 0; i < 3; ++i) {
      peak_images_per_s[i] = rig.stream(i).max_images_per_s();
    }
    return rig.run(ctl, opt);
  })[0]);
  bench::export_result_csv("openloop_demand_cycle", res);

  std::printf("\nPower trace (600-1000 W; cap 950 W):\n");
  bench::print_strip("power", res.power, 600.0, 1000.0);
  std::printf("Offered vs served load (ResNet50 stream, img/s):\n");
  bench::print_strip("served", res.gpu_throughput[0], 0.0, 60.0);

  auto segment = [&](const telemetry::TimeSeries& ts, std::size_t a,
                     std::size_t b) {
    telemetry::RunningStats s;
    for (std::size_t k = a; k < b; ++k) s.add(ts.value_at(k));
    return s;
  };

  const auto low1 = segment(res.power, 15, 40);
  const auto surge = segment(res.power, 50, 80);
  const auto low2 = segment(res.power, 95, 120);
  std::printf("\nSegment power:  light %.1f W  | surge %.1f W | light %.1f W\n",
              low1.mean(), surge.mean(), low2.mean());

  double served_surge = 0.0;
  double offered_surge = 0.0;
  for (std::size_t i = 0; i < 3; ++i) {
    served_surge += segment(res.gpu_throughput[i], 50, 80).mean();
    offered_surge += 0.85 * peak_images_per_s[i];
  }
  std::printf("Surge served throughput: %.1f img/s of %.1f offered\n",
              served_surge, offered_surge);

  double worst_miss = 0.0;
  for (const auto& m : res.slo_misses) {
    worst_miss = std::max(worst_miss, m.ratio());
  }
  std::printf("Worst SLO miss rate across the run: %.1f%%\n",
              100.0 * worst_miss);

  // The surge lands on max-clocked GPUs (the capper had clocked up during
  // the idle phase, per the paper's "use all allowed power" objective), so
  // the first post-surge period spikes above the cap before the controller
  // can react; the asymmetric (deadbeat-on-violation) reference pulls it
  // back within a few periods.
  std::size_t onset_violations = 0;
  for (std::size_t k = 40; k < 48; ++k) {
    onset_violations += res.power.value_at(k) > 960.0;
  }
  std::size_t late_violations = 0;
  for (std::size_t k = 48; k < res.periods; ++k) {
    late_violations += res.power.value_at(k) > 960.0;
  }

  std::printf("\nShape checks:\n");
  std::printf("  light-load power sits below the cap:        %s\n",
              (low1.mean() < 940.0 && low2.mean() < 940.0) ? "PASS" : "FAIL");
  std::printf("  the cap binds during the surge (~950 W):    %s\n",
              std::abs(surge.mean() - 950.0) < 10.0 ? "PASS" : "FAIL");
  std::printf("  surge-onset transient recovers in <4 periods: %s\n",
              onset_violations <= 4 ? "PASS" : "FAIL");
  std::printf("  no violations after the transient (>960 W):  %s\n",
              late_violations == 0 ? "PASS" : "FAIL");
  std::printf("  SLOs hold through the surge (miss < 10%%):   %s\n",
              worst_miss < 0.10 ? "PASS" : "FAIL");
  return 0;
}
