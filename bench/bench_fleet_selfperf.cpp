// Fleet self-perf: sharded lockstep fleet stepping (fleet::FleetSim on the
// work-stealing ThreadPool) vs the serial reference path, measured in rig
// control periods simulated per wall-clock second at fleet sizes.
//
// Each topology runs the same scenario twice per rep — once through
// run_serial_reference() (one rig at a time, caller's telemetry scope, no
// pool) and once through FleetSim (rigs sharded across workers, barrier
// per control epoch, hierarchical budget cascade between epochs) — and the
// bench checks the cascade decision trail and every fleet observable are
// bit-identical before it reports a speedup. Construction is inside the
// timed region: building 1024 rigs is part of what the sharded path
// parallelises.
//
// Shape checks (PASS/FAIL/SKIP): per-topology determinism (serial vs
// sharded vs a second shard count) is build- and machine-independent; the
// speedup gates compare two runs of the same build but still need real
// cores, so they print SKIP (not FAIL) below 2 / 4 workers and the JSON
// carries `workers` for scripts/check.sh to condition its jq gates on.
// Results land in a JSON report (default BENCH_fleet.json, --out <path>)
// which scripts/run_perf.sh merges into BENCH_perf.json as
// `fleet_selfperf`; docs/performance.md describes the format.
//
// --gate 1 runs the deterministic 16-rig gate topology only (energy
// attribution on, no timing): scripts/check_fleet.sh byte-compares the
// --metrics-out/--energy-out/--flight-out artifacts across shard layouts,
// and scripts/run_tsan.sh runs it under ThreadSanitizer.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common.hpp"
#include "common/error.hpp"
#include "common/options.hpp"
#include "fleet/fleet_sim.hpp"
#include "runner/thread_pool.hpp"
#include "telemetry/table.hpp"

using namespace capgpu;

namespace {

struct FleetShape {
  const char* name;
  faults::DomainTopology topology;  // {racks, pdus_per_rack, rigs_per_pdu, rows}
  std::size_t periods;
};

// Fleet-representative sizes; periods shrink as rigs grow so a Debug run
// of the whole table stays interactive.
constexpr FleetShape kShapes[] = {
    {"fleet64", {2, 4, 4, 2}, 6},    // 2 rows x 2 racks x 4 PDUs x 4 rigs
    {"fleet256", {4, 4, 4, 4}, 6},   // the acceptance-gate size
    {"fleet1024", {8, 8, 4, 4}, 3},  // 4 rows x 8 racks x 8 PDUs x 4 rigs
};

// The check_fleet.sh / TSan gate topology: small enough to byte-compare
// telemetry artifacts quickly, large enough to exercise rows and shards.
constexpr FleetShape kGateShape = {"gate16", {2, 2, 2, 2}, 4};

fleet::FleetConfig make_config(const FleetShape& s) {
  fleet::FleetConfig fc;
  fc.name = s.name;
  fc.topology = s.topology;
  fc.periods = s.periods;
  fc.health.enabled = true;
  return fc;
}

/// Everything shard-layout-independent in one comparable bundle.
struct Digest {
  std::vector<fleet::FleetDecisionRecord> decisions;
  std::vector<std::uint64_t> checked;
  std::vector<std::uint64_t> missed;
  std::vector<double> power;
  double images{0.0};
  std::uint64_t engagements{0};

  explicit Digest(const fleet::FleetResult& r)
      : decisions(r.decisions), images(r.images),
        engagements(r.failsafe_engagements) {
    for (const auto& s : r.snaps) {
      checked.insert(checked.end(), s.checked.begin(), s.checked.end());
      missed.insert(missed.end(), s.missed.begin(), s.missed.end());
      power.push_back(s.fleet_power_w);
    }
  }

  bool operator==(const Digest& o) const {
    return decisions == o.decisions && checked == o.checked &&
           missed == o.missed && power == o.power && images == o.images &&
           engagements == o.engagements;
  }
};

struct Timed {
  fleet::FleetResult result;
  double rig_periods_per_s{0.0};
};

template <typename Fn>
Timed run_timed(const FleetShape& s, Fn&& run) {
  Timed t;
  const auto t0 = std::chrono::steady_clock::now();
  t.result = run();
  const auto t1 = std::chrono::steady_clock::now();
  const double secs = std::chrono::duration<double>(t1 - t0).count();
  const double work =
      static_cast<double>(s.topology.total_rigs()) *
      static_cast<double>(s.periods);
  t.rig_periods_per_s = secs > 0.0 ? work / secs : 0.0;
  return t;
}

struct Row {
  const FleetShape* shape{nullptr};
  double serial_rps{0.0};
  double sharded_rps{0.0};
  std::size_t shards{0};
  bool deterministic{false};
  [[nodiscard]] double speedup() const {
    return serial_rps > 0.0 ? sharded_rps / serial_rps : 0.0;
  }
};

// The deterministic gate run: serial reference vs the requested shard
// layout on the 16-rig topology with every telemetry sink live. Returns
// false (-> exit 1) when the sharded decisions diverge from serial.
bool run_gate(std::size_t shards, std::size_t workers) {
  fleet::FleetConfig fc = make_config(kGateShape);
  fc.energy_attribution = true;
  const Digest ref(fleet::run_serial_reference(fc));
  fleet::FleetSim sim(fc, {shards, workers});
  const fleet::FleetResult sharded = sim.run();
  const bool ok = ref == Digest(sharded);
  std::printf(
      "  [%s] gate16: sharded run (%zu shards, %zu workers) bit-identical "
      "to serial reference\n",
      ok ? "PASS" : "FAIL", sharded.shards, sharded.jobs);
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  bench::init(argc, argv);
  std::string out_path = "BENCH_fleet.json";
  int reps = 2;
  std::size_t shards = 0;   // 0 = FleetSim's default (min(rigs, 4 * jobs))
  std::size_t workers = 0;  // 0 = hardware threads
  bool gate_only = false;
  try {
    const auto flags =
        extract_flags(argc, argv, {"out", "reps", "shards", "workers", "gate"});
    if (auto it = flags.find("out"); it != flags.end()) out_path = it->second;
    if (auto it = flags.find("reps"); it != flags.end()) {
      reps = std::stoi(it->second);
      CAPGPU_REQUIRE(reps > 0, "--reps must be positive");
    }
    if (auto it = flags.find("shards"); it != flags.end())
      shards = static_cast<std::size_t>(std::stoul(it->second));
    if (auto it = flags.find("workers"); it != flags.end())
      workers = static_cast<std::size_t>(std::stoul(it->second));
    if (auto it = flags.find("gate"); it != flags.end())
      gate_only = it->second != "0";
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
    return 2;
  }
  const std::size_t resolved_workers =
      workers != 0 ? workers : runner::ThreadPool::hardware_jobs();

  bench::print_banner(
      "Fleet self-perf: sharded lockstep stepping vs serial reference",
      "rig control periods simulated per second, 64 to 1024 rigs");

  if (gate_only) return run_gate(shards, workers) ? 0 : 1;

  std::vector<Row> rows;
  for (const FleetShape& s : kShapes) {
    const fleet::FleetConfig fc = make_config(s);
    Row row;
    row.shape = &s;
    row.deterministic = true;
    // Reps alternate serial and sharded so both sample the same machine
    // conditions; best-of keeps the least-perturbed rep.
    for (int r = 0; r < reps; ++r) {
      const Timed serial =
          run_timed(s, [&] { return fleet::run_serial_reference(fc); });
      const Timed sharded = run_timed(s, [&] {
        fleet::FleetSim sim(fc, {shards, workers});
        return sim.run();
      });
      row.serial_rps = std::max(row.serial_rps, serial.rig_periods_per_s);
      row.sharded_rps = std::max(row.sharded_rps, sharded.rig_periods_per_s);
      row.shards = sharded.result.shards;
      if (r == 0) {
        row.deterministic = Digest(serial.result) == Digest(sharded.result);
        // A second shard count must not move a single bit either.
        fleet::FleetSim alt(fc, {sharded.result.shards + 3, workers});
        row.deterministic =
            row.deterministic && Digest(serial.result) == Digest(alt.run());
      }
    }
    rows.push_back(row);
  }

  telemetry::Table t("rig-periods/sec, best of " + std::to_string(reps) +
                     " (" + std::to_string(resolved_workers) + " workers)");
  t.set_header({"topology", "rigs", "shards", "serial/s", "sharded/s",
                "speedup", "identical"});
  for (const Row& r : rows) {
    t.add_row({r.shape->name, std::to_string(r.shape->topology.total_rigs()),
               std::to_string(r.shards), telemetry::fmt(r.serial_rps, 0),
               telemetry::fmt(r.sharded_rps, 0),
               telemetry::fmt(r.speedup(), 2) + "x",
               r.deterministic ? "yes" : "NO"});
  }
  t.print();

  bool all_ok = true;
  double worst_speedup = 1e300;
  double speedup_256 = 0.0;
  for (const Row& r : rows) {
    worst_speedup = std::min(worst_speedup, r.speedup());
    if (std::string(r.shape->name) == "fleet256") speedup_256 = r.speedup();
    std::printf(
        "  [%s] %s: sharded decisions and observables bit-identical to "
        "serial reference (and across shard counts)\n",
        r.deterministic ? "PASS" : "FAIL", r.shape->name);
    all_ok = all_ok && r.deterministic;
  }
  // Speedup needs real cores: FAIL only where the machine can show one.
  if (resolved_workers >= 2) {
    const bool ok = worst_speedup >= 1.0;
    std::printf("  [%s] worst sharded speedup %.2fx (target >= 1.0x)\n",
                ok ? "PASS" : "FAIL", worst_speedup);
    all_ok = all_ok && ok;
  } else {
    std::printf(
        "  [SKIP] worst-speedup gate: %zu worker(s), need >= 2\n",
        resolved_workers);
  }
  if (resolved_workers >= 4) {
    const bool ok = speedup_256 >= 3.0;
    std::printf("  [%s] fleet256 speedup %.2fx (target >= 3.0x)\n",
                ok ? "PASS" : "FAIL", speedup_256);
    all_ok = all_ok && ok;
  } else {
    std::printf("  [SKIP] fleet256 3x gate: %zu worker(s), need >= 4\n",
                resolved_workers);
  }

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << "{\n  \"fleet_selfperf\": {\n    \"reps\": " << reps
      << ",\n    \"workers\": " << resolved_workers
      << ",\n    \"topologies\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    char buf[320];
    std::snprintf(
        buf, sizeof(buf),
        "      {\"name\": \"%s\", \"rigs\": %zu, \"periods\": %zu, "
        "\"shards\": %zu, \"serial_rig_periods_per_s\": %.0f, "
        "\"sharded_rig_periods_per_s\": %.0f, \"speedup\": %.3f, "
        "\"deterministic\": %s}%s\n",
        r.shape->name, r.shape->topology.total_rigs(), r.shape->periods,
        r.shards, r.serial_rps, r.sharded_rps, r.speedup(),
        r.deterministic ? "true" : "false",
        i + 1 < std::size(kShapes) ? "," : "");
    out << buf;
  }
  char tail[160];
  std::snprintf(tail, sizeof(tail),
                "    ],\n    \"worst_speedup\": %.3f,\n"
                "    \"speedup_256\": %.3f\n  }\n}\n",
                worst_speedup, speedup_256);
  out << tail;
  std::printf("  [perf] %s\n", out_path.c_str());
  return all_ok ? 0 : 1;
}
