// Ablation: delta-sigma modulation vs nearest-level snapping (paper Sec 5).
//
// Controllers emit fractional frequencies; hardware is discrete. With
// delta-sigma modulation the time-averaged applied frequency converges to
// the command, so the steady-state power error shrinks; plain snapping
// leaves a quantisation bias of up to half a level.
#include <cstdio>

#include "common.hpp"
#include "control/delta_sigma.hpp"
#include "telemetry/table.hpp"

using namespace capgpu;

namespace {

struct Outcome {
  double mean_err;
  double stddev;
};

Outcome run_with(bool use_delta_sigma, double set_point) {
  core::ServerRig rig;
  core::CapGpuController ctl =
      bench::make_capgpu(rig, Watts{set_point});
  core::RunOptions opt;
  opt.periods = 100;
  opt.set_point = Watts{set_point};
  opt.loop.use_delta_sigma = use_delta_sigma;
  const core::RunResult res = rig.run(ctl, opt);
  const auto s = res.steady_power(20);
  return {s.mean() - set_point, s.stddev()};
}

}  // namespace

int main(int argc, char** argv) {
  capgpu::bench::init(argc, argv);
  bench::print_banner("Ablation: delta-sigma modulation vs nearest snapping",
                      "paper Sec 5 frequency modulators");
  (void)bench::testbed_model();

  telemetry::Table t("Steady-state tracking error, W");
  t.set_header({"Set point", "delta-sigma err (std)", "nearest err (std)"});
  double ds_abs = 0.0;
  double nn_abs = 0.0;
  for (const double sp : {850.0, 900.0, 950.0, 1000.0, 1050.0}) {
    const Outcome ds = run_with(true, sp);
    const Outcome nn = run_with(false, sp);
    ds_abs += std::abs(ds.mean_err);
    nn_abs += std::abs(nn.mean_err);
    t.add_row({telemetry::fmt(sp, 0) + " W",
               telemetry::fmt(ds.mean_err, 2) + " (" +
                   telemetry::fmt(ds.stddev, 1) + ")",
               telemetry::fmt(nn.mean_err, 2) + " (" +
                   telemetry::fmt(nn.stddev, 1) + ")"});
  }
  t.print();

  std::printf("\nMean |error| across set points: delta-sigma %.2f W, "
              "nearest %.2f W\n",
              ds_abs / 5.0, nn_abs / 5.0);
  std::printf(
      "(With fine 15/100 MHz level tables the feedback loop absorbs the\n"
      " quantisation either way; the modulator's real value shows with the\n"
      " coarse levels of the paper's Sec 5 example, below.)\n");

  // Part 2: the paper's own example — a CPU whose P-states are 1 GHz apart
  // (2, 3 GHz, ...). Delta-sigma toggling averages to the fractional
  // command; nearest snapping is biased by up to half a level.
  const auto coarse = hw::FrequencyTable::uniform(1_GHz, 3_GHz, 1_GHz);
  telemetry::Table t2("Coarse-level tracking: command 2.4 GHz on 1 GHz steps");
  t2.set_header({"Resolver", "time-avg MHz", "bias MHz"});
  double ds_bias = 0.0;
  double nn_bias = 0.0;
  {
    control::DeltaSigmaModulator mod;
    double sum = 0.0;
    const int n = 1000;
    for (int i = 0; i < n; ++i) sum += mod.step(2400_MHz, coarse).value;
    ds_bias = std::abs(sum / n - 2400.0);
    t2.add_row("delta-sigma", {sum / n, ds_bias}, 1);
  }
  {
    double sum = 0.0;
    const int n = 1000;
    for (int i = 0; i < n; ++i) sum += coarse.nearest(2400_MHz).value;
    nn_bias = std::abs(sum / n - 2400.0);
    t2.add_row("nearest", {sum / n, nn_bias}, 1);
  }
  t2.print();

  std::printf("\nShape checks:\n");
  std::printf("  closed-loop tracking comparable (|err| within 0.5 W): %s\n",
              std::abs(ds_abs - nn_abs) / 5.0 < 0.5 ? "PASS" : "FAIL");
  std::printf("  delta-sigma removes the coarse-level bias (%.1f vs %.1f "
              "MHz): %s\n",
              ds_bias, nn_bias, ds_bias < 10.0 && nn_bias > 300.0 ? "PASS"
                                                                  : "FAIL");
  return 0;
}
