// GPU power/frequency model (V100- or RTX3090-style).
//
// Same affine power-vs-frequency structure the paper identifies for GPUs
// (Eq. 3), plus a fixed memory-clock power term: the paper pins the memory
// clock at 877 MHz (`nvidia-smi -ac 877,<core>`), so that term is constant.
#pragma once

#include <string>

#include "common/units.hpp"
#include "hw/frequency_table.hpp"

namespace capgpu::hw {

/// Static parameters of a GPU model.
struct GpuParams {
  std::string name{"gpu"};
  FrequencyTable core_freqs{FrequencyTable::v100_core()};
  Megahertz memory_clock{877_MHz};
  double idle_watts{20.0};        ///< board power at idle, excl. memory term
  double memory_watts{15.0};      ///< fixed power of the pinned memory clock
  double watts_per_mhz{0.21};     ///< core dynamic slope at 100% utilization
  double idle_activity{0.25};     ///< fraction of the slope active at u = 0

  // Emergency memory throttling (paper Sec 4.4: the fallback when no core
  // frequency combination can reach the cap). Dropping the memory clock
  // saves a fixed chunk of power at a latency cost.
  Megahertz memory_clock_low{810_MHz};
  double memory_watts_low{6.0};
  /// Batch latency multiplier while memory-throttled.
  double memory_throttle_slowdown{1.25};
};

/// Preset matching the paper's testbed GPU (Tesla V100 16 GB).
[[nodiscard]] GpuParams v100_params(std::string name);

/// Preset matching the motivation experiment's GPU (GeForce RTX 3090).
[[nodiscard]] GpuParams rtx3090_params(std::string name);

/// Simulated GPU board: applied application clock + current utilization.
class GpuModel {
 public:
  explicit GpuModel(GpuParams params);

  [[nodiscard]] const GpuParams& params() const { return params_; }
  [[nodiscard]] const FrequencyTable& freqs() const { return params_.core_freqs; }
  [[nodiscard]] const std::string& name() const { return params_.name; }

  /// Applies the nearest supported application clock (what
  /// `nvmlDeviceSetApplicationsClocks` does). Returns the applied level.
  Megahertz set_core_clock(Megahertz f);
  [[nodiscard]] Megahertz core_clock() const { return core_; }
  /// Current memory clock: the pinned value, or the low P-state while
  /// memory-throttled.
  [[nodiscard]] Megahertz memory_clock() const;

  /// Board temperature, maintained by hw::ThermalIntegrator (the NVML
  /// shim surfaces it as nvmlDeviceGetTemperature would).
  void set_temperature(double celsius) { temperature_c_ = celsius; }
  [[nodiscard]] double temperature_c() const { return temperature_c_; }

  /// Emergency memory throttle (Sec 4.4 fallback mechanism).
  void set_memory_throttled(bool throttled) { memory_throttled_ = throttled; }
  [[nodiscard]] bool memory_throttled() const { return memory_throttled_; }
  /// Latency multiplier the workload experiences in the current memory
  /// state (1.0 when unthrottled).
  [[nodiscard]] double memory_slowdown() const;

  /// GPU utilization in [0,1]; set by the workload simulation.
  void set_utilization(double u);
  [[nodiscard]] double utilization() const { return util_; }

  /// Instantaneous board power at the current state.
  [[nodiscard]] Watts power() const;
  [[nodiscard]] Watts power_at(Megahertz f, double u) const;

 private:
  GpuParams params_;
  Megahertz core_;
  double util_{0.0};
  double temperature_c_{25.0};
  bool memory_throttled_{false};
};

}  // namespace capgpu::hw
