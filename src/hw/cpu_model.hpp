// Host CPU power/frequency model.
//
// Power is affine in frequency at constant activity — the same assumption
// the paper validates with system identification (Eq. 3, R^2 = 0.96):
//
//   P(f, u) = idle_watts + watts_per_mhz * f * (idle_activity + (1 - idle_activity) * u)
//
// where u in [0,1] is the utilization reported by the workload. At constant
// utilization this is A*f + C, exactly the identified structure.
#pragma once

#include <string>

#include "common/units.hpp"
#include "hw/frequency_table.hpp"

namespace capgpu::hw {

/// Static parameters of a CPU package model.
struct CpuParams {
  std::string name{"cpu"};
  FrequencyTable freqs{FrequencyTable::xeon_pstates()};
  double idle_watts{25.0};
  double watts_per_mhz{0.055};  ///< dynamic slope at 100% utilization
  double idle_activity{0.35};   ///< fraction of the slope active at u = 0
};

/// Simulated CPU package: holds the applied P-state and current utilization.
class CpuModel {
 public:
  explicit CpuModel(CpuParams params);

  [[nodiscard]] const CpuParams& params() const { return params_; }
  [[nodiscard]] const FrequencyTable& freqs() const { return params_.freqs; }
  [[nodiscard]] const std::string& name() const { return params_.name; }

  /// Applies the nearest discrete P-state to `f` (what `cpupower
  /// frequency-set -f` would do). Returns the actually applied level.
  Megahertz set_frequency(Megahertz f);
  [[nodiscard]] Megahertz frequency() const { return freq_; }

  /// Utilization of the package in [0,1]; set by the workload simulation.
  void set_utilization(double u);
  [[nodiscard]] double utilization() const { return util_; }

  /// Instantaneous electrical power at the current state.
  [[nodiscard]] Watts power() const;

  /// Power the model would draw at a hypothetical state (used by tests and
  /// by benches that sweep configurations without mutating the model).
  [[nodiscard]] Watts power_at(Megahertz f, double u) const;

 private:
  CpuParams params_;
  Megahertz freq_;
  double util_{0.0};
};

}  // namespace capgpu::hw
