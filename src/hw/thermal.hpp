// First-order GPU thermal model.
//
// Each board is a thermal RC node: steady-state temperature rises linearly
// with board power above ambient, with a first-order time constant,
//
//   T_ss = T_ambient + R_thermal * P,      dT/dt = (T_ss - T) / tau.
//
// The thermal resistance R models the board's cooling capability; a fan
// failure or inlet-temperature rise appears as a larger R at runtime. The
// integrator advances every GPU's temperature from its instantaneous power
// on a periodic simulation event and publishes it into the GpuModel, where
// the NVML shim reads it (nvmlDeviceGetTemperature).
#pragma once

#include <cstddef>
#include <vector>

#include "hw/server_model.hpp"
#include "sim/engine.hpp"

namespace capgpu::hw {

/// Thermal parameters of one board.
struct ThermalParams {
  double ambient_c{25.0};
  double r_c_per_w{0.17};  ///< °C per board watt (healthy V100 air cooling)
  double tau_s{30.0};      ///< thermal time constant
};

/// Advances every GPU's temperature on a periodic event.
class ThermalIntegrator {
 public:
  /// One ThermalParams per GPU in `server` (or a single entry applied to
  /// all). Starts integrating immediately at `step` resolution.
  ThermalIntegrator(sim::Engine& engine, ServerModel& server,
                    std::vector<ThermalParams> params,
                    Seconds step = Seconds{1.0});
  ~ThermalIntegrator();

  ThermalIntegrator(const ThermalIntegrator&) = delete;
  ThermalIntegrator& operator=(const ThermalIntegrator&) = delete;

  [[nodiscard]] const ThermalParams& params(std::size_t gpu) const;

  /// Degrades/changes board cooling at runtime (fan failure, hot inlet).
  void set_params(std::size_t gpu, ThermalParams params);

  /// Steady-state temperature the board would reach at power `watts`.
  [[nodiscard]] double steady_state_c(std::size_t gpu, double watts) const;

  /// Board power that settles exactly at `temperature_c` (the inverse of
  /// steady_state_c) — what a thermal governor may allow the board to draw.
  [[nodiscard]] double power_budget_for(std::size_t gpu,
                                        double temperature_c) const;

 private:
  void step();

  sim::Engine* engine_;
  ServerModel* server_;
  std::vector<ThermalParams> params_;
  double step_s_;
  sim::EventId timer_{0};
};

}  // namespace capgpu::hw
