#include "hw/server_model.hpp"

#include "common/error.hpp"

namespace capgpu::hw {

ServerModel::ServerModel(ChassisParams chassis, CpuParams cpu,
                         std::vector<GpuParams> gpus)
    : chassis_(std::move(chassis)), cpu_(std::move(cpu)) {
  CAPGPU_REQUIRE(!gpus.empty(), "a GPU server needs at least one GPU");
  gpus_.reserve(gpus.size());
  for (auto& g : gpus) gpus_.emplace_back(std::move(g));
}

ServerModel ServerModel::v100_testbed(std::size_t n_gpus) {
  CAPGPU_REQUIRE(n_gpus >= 1, "testbed needs at least one GPU");
  ChassisParams chassis;
  chassis.name = "v100-testbed";
  chassis.fan_watts = 60.0;
  chassis.misc_watts = 110.0;

  CpuParams cpu;
  cpu.name = "xeon-gold-5215";
  cpu.freqs = FrequencyTable::xeon_pstates();
  cpu.idle_watts = 25.0;
  cpu.watts_per_mhz = 0.055;
  cpu.idle_activity = 0.35;

  std::vector<GpuParams> gpus;
  gpus.reserve(n_gpus);
  for (std::size_t i = 0; i < n_gpus; ++i) {
    gpus.push_back(v100_params("v100-" + std::to_string(i)));
  }
  return ServerModel(std::move(chassis), std::move(cpu), std::move(gpus));
}

ServerModel ServerModel::rtx3090_workstation() {
  ChassisParams chassis;
  chassis.name = "rtx3090-workstation";
  chassis.fan_watts = 35.0;
  chassis.misc_watts = 115.0;

  CpuParams cpu;
  cpu.name = "host-cpu";
  cpu.freqs = FrequencyTable::uniform(1000_MHz, 2100_MHz, 100_MHz);
  cpu.idle_watts = 20.0;
  // Desktop host CPU: a larger frequency-dependent share than the Xeon, and
  // blocked-but-resident worker processes keep the uncore active; this is
  // what makes the GPU-only configuration (CPU pinned at 2.1 GHz) the most
  // power-hungry row of Table 1, as in the paper.
  cpu.watts_per_mhz = 0.075;
  cpu.idle_activity = 0.55;

  std::vector<GpuParams> gpus;
  gpus.push_back(rtx3090_params("rtx3090"));
  return ServerModel(std::move(chassis), std::move(cpu), std::move(gpus));
}

GpuModel& ServerModel::gpu(std::size_t i) {
  CAPGPU_ASSERT(i < gpus_.size());
  return gpus_[i];
}

const GpuModel& ServerModel::gpu(std::size_t i) const {
  CAPGPU_ASSERT(i < gpus_.size());
  return gpus_[i];
}

DeviceKind ServerModel::device_kind(DeviceId id) const {
  CAPGPU_REQUIRE(id.index < device_count(), "device id out of range");
  return id.index == 0 ? DeviceKind::kCpu : DeviceKind::kGpu;
}

const FrequencyTable& ServerModel::device_freqs(DeviceId id) const {
  if (device_kind(id) == DeviceKind::kCpu) return cpu_.freqs();
  return gpus_[id.index - 1].freqs();
}

Megahertz ServerModel::device_frequency(DeviceId id) const {
  if (device_kind(id) == DeviceKind::kCpu) return cpu_.frequency();
  return gpus_[id.index - 1].core_clock();
}

Megahertz ServerModel::set_device_frequency(DeviceId id, Megahertz f) {
  if (device_kind(id) == DeviceKind::kCpu) return cpu_.set_frequency(f);
  return gpus_[id.index - 1].set_core_clock(f);
}

double ServerModel::device_utilization(DeviceId id) const {
  if (device_kind(id) == DeviceKind::kCpu) return cpu_.utilization();
  return gpus_[id.index - 1].utilization();
}

void ServerModel::set_device_utilization(DeviceId id, double u) {
  if (device_kind(id) == DeviceKind::kCpu) {
    cpu_.set_utilization(u);
  } else {
    gpus_[id.index - 1].set_utilization(u);
  }
}

Watts ServerModel::total_power() const {
  Watts total = static_power() + cpu_.power();
  for (const auto& g : gpus_) total += g.power();
  return total;
}

Watts ServerModel::static_power() const {
  return Watts{chassis_.fan_watts + chassis_.misc_watts};
}

}  // namespace capgpu::hw
