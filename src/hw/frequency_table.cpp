#include "hw/frequency_table.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace capgpu::hw {

FrequencyTable::FrequencyTable(std::vector<Megahertz> levels)
    : levels_(std::move(levels)) {
  CAPGPU_REQUIRE(!levels_.empty(), "FrequencyTable needs at least one level");
  std::sort(levels_.begin(), levels_.end());
  levels_.erase(std::unique(levels_.begin(), levels_.end()), levels_.end());
  CAPGPU_REQUIRE(levels_.front().value > 0.0, "frequencies must be positive");
}

FrequencyTable FrequencyTable::uniform(Megahertz first, Megahertz last,
                                       Megahertz step) {
  CAPGPU_REQUIRE(step.value > 0.0, "step must be positive");
  CAPGPU_REQUIRE(last >= first, "last must be >= first");
  std::vector<Megahertz> levels;
  for (double f = first.value; f <= last.value + 1e-9; f += step.value) {
    levels.push_back(Megahertz{f});
  }
  return FrequencyTable(std::move(levels));
}

FrequencyTable FrequencyTable::v100_core() {
  return uniform(435_MHz, 1350_MHz, 15_MHz);
}

FrequencyTable FrequencyTable::rtx3090_core() {
  return uniform(405_MHz, 1095_MHz, 15_MHz);
}

FrequencyTable FrequencyTable::xeon_pstates() {
  return uniform(1000_MHz, 2400_MHz, 100_MHz);
}

Megahertz FrequencyTable::level(std::size_t i) const {
  CAPGPU_ASSERT(i < levels_.size());
  return levels_[i];
}

std::size_t FrequencyTable::floor_index(Megahertz f) const {
  auto it = std::upper_bound(levels_.begin(), levels_.end(), f);
  if (it == levels_.begin()) return 0;
  return static_cast<std::size_t>(std::distance(levels_.begin(), it)) - 1;
}

std::size_t FrequencyTable::nearest_index(Megahertz f) const {
  const std::size_t lo = floor_index(f);
  if (lo + 1 >= levels_.size()) return lo;
  const double d_lo = std::abs(f.value - levels_[lo].value);
  const double d_hi = std::abs(levels_[lo + 1].value - f.value);
  return d_hi < d_lo ? lo + 1 : lo;
}

Megahertz FrequencyTable::nearest(Megahertz f) const {
  return levels_[nearest_index(f)];
}

Megahertz FrequencyTable::clamp(Megahertz f) const {
  return Megahertz{std::clamp(f.value, min().value, max().value)};
}

FrequencyTable::Bracket FrequencyTable::bracket(Megahertz f) const {
  const Megahertz c = clamp(f);
  const std::size_t lo = floor_index(c);
  const std::size_t hi = std::min(lo + 1, levels_.size() - 1);
  // When f lands exactly on a level, both ends are that level.
  if (levels_[lo].value == c.value) return {levels_[lo], levels_[lo]};
  return {levels_[lo], levels_[hi]};
}

std::size_t FrequencyTable::step_index(std::size_t from, int steps) const {
  CAPGPU_ASSERT(from < levels_.size());
  const long target = static_cast<long>(from) + steps;
  const long clamped =
      std::clamp<long>(target, 0, static_cast<long>(levels_.size()) - 1);
  return static_cast<std::size_t>(clamped);
}

}  // namespace capgpu::hw
