#include "hw/gpu_model.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace capgpu::hw {

GpuParams v100_params(std::string name) {
  GpuParams p;
  p.name = std::move(name);
  p.core_freqs = FrequencyTable::v100_core();
  p.memory_clock = 877_MHz;
  p.idle_watts = 20.0;
  p.memory_watts = 15.0;
  p.watts_per_mhz = 0.21;
  p.idle_activity = 0.25;
  return p;
}

GpuParams rtx3090_params(std::string name) {
  GpuParams p;
  p.name = std::move(name);
  p.core_freqs = FrequencyTable::rtx3090_core();
  p.memory_clock = 9751_MHz;
  p.idle_watts = 40.0;
  p.memory_watts = 30.0;
  // Calibrated with the workstation CPU parameters so the Table 1 static
  // configurations land in the paper's ~400-420 W band with its ordering
  // (CPU-only < CapGPU ~ GPU-only).
  p.watts_per_mhz = 0.12;
  p.idle_activity = 0.55;
  return p;
}

GpuModel::GpuModel(GpuParams params)
    : params_(std::move(params)), core_(params_.core_freqs.min()) {
  CAPGPU_REQUIRE(params_.idle_watts >= 0.0, "idle_watts must be >= 0");
  CAPGPU_REQUIRE(params_.memory_watts >= 0.0, "memory_watts must be >= 0");
  CAPGPU_REQUIRE(params_.watts_per_mhz >= 0.0, "watts_per_mhz must be >= 0");
  CAPGPU_REQUIRE(params_.idle_activity >= 0.0 && params_.idle_activity <= 1.0,
                 "idle_activity must be in [0,1]");
}

Megahertz GpuModel::set_core_clock(Megahertz f) {
  core_ = params_.core_freqs.nearest(f);
  return core_;
}

Megahertz GpuModel::memory_clock() const {
  return memory_throttled_ ? params_.memory_clock_low : params_.memory_clock;
}

double GpuModel::memory_slowdown() const {
  return memory_throttled_ ? params_.memory_throttle_slowdown : 1.0;
}

void GpuModel::set_utilization(double u) { util_ = std::clamp(u, 0.0, 1.0); }

Watts GpuModel::power() const { return power_at(core_, util_); }

Watts GpuModel::power_at(Megahertz f, double u) const {
  u = std::clamp(u, 0.0, 1.0);
  const double activity =
      params_.idle_activity + (1.0 - params_.idle_activity) * u;
  const double memory =
      memory_throttled_ ? params_.memory_watts_low : params_.memory_watts;
  return Watts{params_.idle_watts + memory +
               params_.watts_per_mhz * f.value * activity};
}

}  // namespace capgpu::hw
