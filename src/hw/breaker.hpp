// Thermal-magnetic circuit breaker model.
//
// The paper's premise: oversubscription is safe only if capping prevents
// the sustained overloads that trip branch breakers and black out servers.
// Real breakers do not trip on instantaneous excursions — their thermal
// element integrates overload energy (an I^2·t curve) and cools when the
// load drops. This model reproduces that: an overload-energy accumulator
// charges while power exceeds the rating, discharges below it, and trips
// at a threshold calibrated from a standard trip point (e.g. "30 s at
// 135% of rating").
#pragma once

#include <functional>

#include "common/units.hpp"
#include "sim/engine.hpp"

namespace capgpu::hw {

/// Breaker characteristics.
struct BreakerParams {
  Watts rating{1000.0};
  /// Trip calibration: sustained operation at `trip_overload_frac` above
  /// the rating trips after `trip_seconds`.
  double trip_overload_frac{0.35};
  double trip_seconds{30.0};
  /// Cooling rate of the thermal element, as a fraction of the trip
  /// charge per second when running at/below the rating.
  double cooling_frac_per_s{0.02};
};

/// Overload-energy accumulator with a trip latch.
class BreakerModel {
 public:
  explicit BreakerModel(BreakerParams params);

  [[nodiscard]] const BreakerParams& params() const { return params_; }

  /// Feeds `dt` seconds at draw `power`. Returns true if this step tripped
  /// the breaker. A tripped breaker stays tripped until reset().
  bool step(Watts power, double dt);

  [[nodiscard]] bool tripped() const { return tripped_; }
  /// Thermal-element charge in [0, 1]; trips at 1.
  [[nodiscard]] double stress() const;
  void reset();

 private:
  BreakerParams params_;
  double charge_joules_{0.0};
  double trip_threshold_joules_;
  bool tripped_{false};
};

/// Samples a power source periodically into a BreakerModel.
class BreakerMonitor {
 public:
  /// `power_fn` is read every `interval` seconds (1 s default, like the
  /// meter). References must outlive the monitor.
  BreakerMonitor(sim::Engine& engine, BreakerModel& breaker,
                 std::function<double()> power_fn,
                 Seconds interval = Seconds{1.0});
  ~BreakerMonitor();

  BreakerMonitor(const BreakerMonitor&) = delete;
  BreakerMonitor& operator=(const BreakerMonitor&) = delete;

  /// Simulated time of the trip; negative when it never tripped.
  [[nodiscard]] double trip_time() const { return trip_time_; }

 private:
  sim::Engine* engine_;
  BreakerModel* breaker_;
  std::function<double()> power_fn_;
  double trip_time_{-1.0};
  sim::EventId timer_{0};
};

}  // namespace capgpu::hw
