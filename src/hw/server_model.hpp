// Whole-server power model: one host CPU package + N GPUs + everything else.
//
// "Everything else" (fans at the paper's fixed speed, DRAM, disks, NICs, PSU
// overhead) is a constant offset, matching the constant C the paper's system
// identification absorbs (Eq. 3).
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "hw/cpu_model.hpp"
#include "hw/gpu_model.hpp"

namespace capgpu::hw {

/// Static parameters of the non-CPU/GPU part of the chassis.
struct ChassisParams {
  std::string name{"server"};
  double fan_watts{60.0};    ///< fixed fan speed (paper Sec 5 pins the fans)
  double misc_watts{110.0};  ///< DRAM, disks, NICs, PSU overhead, ...
};

/// A GPU server: one CPU package plus one or more GPUs.
///
/// Owns the device models; HAL backends hold references into this object.
class ServerModel {
 public:
  ServerModel(ChassisParams chassis, CpuParams cpu,
              std::vector<GpuParams> gpus);

  /// Paper testbed preset: Xeon Gold 5215 + `n_gpus` Tesla V100s.
  static ServerModel v100_testbed(std::size_t n_gpus);

  /// Motivation-experiment preset: one RTX 3090 + host CPU (Sec 3.2).
  static ServerModel rtx3090_workstation();

  [[nodiscard]] const std::string& name() const { return chassis_.name; }
  [[nodiscard]] CpuModel& cpu() { return cpu_; }
  [[nodiscard]] const CpuModel& cpu() const { return cpu_; }
  [[nodiscard]] std::size_t gpu_count() const { return gpus_.size(); }
  [[nodiscard]] GpuModel& gpu(std::size_t i);
  [[nodiscard]] const GpuModel& gpu(std::size_t i) const;

  /// Number of controllable devices: 1 CPU domain + gpu_count().
  [[nodiscard]] std::size_t device_count() const { return 1 + gpus_.size(); }

  /// Kind of the device at `id` (0 = CPU, 1.. = GPUs), mirroring the paper's
  /// F = [f_c, f_g1..f_gNg] ordering.
  [[nodiscard]] DeviceKind device_kind(DeviceId id) const;
  [[nodiscard]] const FrequencyTable& device_freqs(DeviceId id) const;
  [[nodiscard]] Megahertz device_frequency(DeviceId id) const;
  Megahertz set_device_frequency(DeviceId id, Megahertz f);
  [[nodiscard]] double device_utilization(DeviceId id) const;
  void set_device_utilization(DeviceId id, double u);

  /// True instantaneous wall power of the whole chassis (no sensor noise —
  /// the meter adds that).
  [[nodiscard]] Watts total_power() const;

  /// Constant (non-CPU/GPU) part of the power.
  [[nodiscard]] Watts static_power() const;

 private:
  ChassisParams chassis_;
  CpuModel cpu_;
  std::vector<GpuModel> gpus_;
};

}  // namespace capgpu::hw
