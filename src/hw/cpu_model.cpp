#include "hw/cpu_model.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace capgpu::hw {

CpuModel::CpuModel(CpuParams params)
    : params_(std::move(params)), freq_(params_.freqs.min()) {
  CAPGPU_REQUIRE(params_.idle_watts >= 0.0, "idle_watts must be >= 0");
  CAPGPU_REQUIRE(params_.watts_per_mhz >= 0.0, "watts_per_mhz must be >= 0");
  CAPGPU_REQUIRE(params_.idle_activity >= 0.0 && params_.idle_activity <= 1.0,
                 "idle_activity must be in [0,1]");
}

Megahertz CpuModel::set_frequency(Megahertz f) {
  freq_ = params_.freqs.nearest(f);
  return freq_;
}

void CpuModel::set_utilization(double u) {
  util_ = std::clamp(u, 0.0, 1.0);
}

Watts CpuModel::power() const { return power_at(freq_, util_); }

Watts CpuModel::power_at(Megahertz f, double u) const {
  u = std::clamp(u, 0.0, 1.0);
  const double activity =
      params_.idle_activity + (1.0 - params_.idle_activity) * u;
  return Watts{params_.idle_watts + params_.watts_per_mhz * f.value * activity};
}

}  // namespace capgpu::hw
