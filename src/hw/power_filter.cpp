#include "hw/power_filter.hpp"

#include <cmath>

#include "common/error.hpp"

namespace capgpu::hw {

PowerLowPass::PowerLowPass(double tau_seconds) : tau_(tau_seconds) {
  CAPGPU_REQUIRE(tau_seconds >= 0.0, "filter time constant must be >= 0");
}

double PowerLowPass::step(double x, double dt) {
  CAPGPU_REQUIRE(dt > 0.0, "filter step needs dt > 0");
  if (!primed_ || tau_ == 0.0) {
    value_ = x;
    primed_ = true;
    return value_;
  }
  const double alpha = 1.0 - std::exp(-dt / tau_);
  value_ += (x - value_) * alpha;
  return value_;
}

void PowerLowPass::reset() {
  value_ = 0.0;
  primed_ = false;
}

}  // namespace capgpu::hw
