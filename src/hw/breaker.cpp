#include "hw/breaker.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace capgpu::hw {

BreakerModel::BreakerModel(BreakerParams params)
    : params_(params),
      trip_threshold_joules_(params.rating.value * params.trip_overload_frac *
                             params.trip_seconds) {
  CAPGPU_REQUIRE(params_.rating.value > 0.0, "rating must be positive");
  CAPGPU_REQUIRE(params_.trip_overload_frac > 0.0,
                 "trip overload fraction must be positive");
  CAPGPU_REQUIRE(params_.trip_seconds > 0.0, "trip time must be positive");
  CAPGPU_REQUIRE(params_.cooling_frac_per_s >= 0.0,
                 "cooling rate must be >= 0");
}

bool BreakerModel::step(Watts power, double dt) {
  CAPGPU_REQUIRE(dt > 0.0, "dt must be positive");
  if (tripped_) return false;
  const double excess = power.value - params_.rating.value;
  if (excess > 0.0) {
    charge_joules_ += excess * dt;
  } else {
    charge_joules_ -= trip_threshold_joules_ * params_.cooling_frac_per_s * dt;
    charge_joules_ = std::max(0.0, charge_joules_);
  }
  if (charge_joules_ >= trip_threshold_joules_) {
    tripped_ = true;
    return true;
  }
  return false;
}

double BreakerModel::stress() const {
  return std::min(1.0, charge_joules_ / trip_threshold_joules_);
}

void BreakerModel::reset() {
  charge_joules_ = 0.0;
  tripped_ = false;
}

BreakerMonitor::BreakerMonitor(sim::Engine& engine, BreakerModel& breaker,
                               std::function<double()> power_fn,
                               Seconds interval)
    : engine_(&engine), breaker_(&breaker), power_fn_(std::move(power_fn)) {
  CAPGPU_REQUIRE(static_cast<bool>(power_fn_), "power source required");
  CAPGPU_REQUIRE(interval.value > 0.0, "interval must be positive");
  const double dt = interval.value;
  timer_ = engine_->schedule_periodic(dt, [this, dt] {
    if (breaker_->step(Watts{power_fn_()}, dt)) {
      trip_time_ = engine_->now();
    }
  });
}

BreakerMonitor::~BreakerMonitor() { engine_->cancel(timer_); }

}  // namespace capgpu::hw
