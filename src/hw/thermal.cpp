#include "hw/thermal.hpp"

#include "common/error.hpp"

namespace capgpu::hw {

ThermalIntegrator::ThermalIntegrator(sim::Engine& engine, ServerModel& server,
                                     std::vector<ThermalParams> params,
                                     Seconds step)
    : engine_(&engine),
      server_(&server),
      params_(std::move(params)),
      step_s_(step.value) {
  CAPGPU_REQUIRE(step.value > 0.0, "step must be positive");
  if (params_.size() == 1 && server.gpu_count() > 1) {
    params_.resize(server.gpu_count(), params_.front());
  }
  CAPGPU_REQUIRE(params_.size() == server.gpu_count(),
                 "need thermal params per GPU");
  for (const auto& p : params_) {
    CAPGPU_REQUIRE(p.r_c_per_w > 0.0 && p.tau_s > 0.0,
                   "thermal parameters must be positive");
  }
  // Boards start at ambient.
  for (std::size_t i = 0; i < server.gpu_count(); ++i) {
    server.gpu(i).set_temperature(params_[i].ambient_c);
  }
  timer_ = engine_->schedule_periodic(step_s_, [this] { this->step(); });
}

ThermalIntegrator::~ThermalIntegrator() { engine_->cancel(timer_); }

const ThermalParams& ThermalIntegrator::params(std::size_t gpu) const {
  CAPGPU_REQUIRE(gpu < params_.size(), "gpu index out of range");
  return params_[gpu];
}

void ThermalIntegrator::set_params(std::size_t gpu, ThermalParams params) {
  CAPGPU_REQUIRE(gpu < params_.size(), "gpu index out of range");
  CAPGPU_REQUIRE(params.r_c_per_w > 0.0 && params.tau_s > 0.0,
                 "thermal parameters must be positive");
  params_[gpu] = params;
}

double ThermalIntegrator::steady_state_c(std::size_t gpu,
                                         double watts) const {
  const auto& p = params(gpu);
  return p.ambient_c + p.r_c_per_w * watts;
}

double ThermalIntegrator::power_budget_for(std::size_t gpu,
                                           double temperature_c) const {
  const auto& p = params(gpu);
  return (temperature_c - p.ambient_c) / p.r_c_per_w;
}

void ThermalIntegrator::step() {
  for (std::size_t i = 0; i < server_->gpu_count(); ++i) {
    auto& gpu = server_->gpu(i);
    const double t_ss = steady_state_c(i, gpu.power().value);
    const double t = gpu.temperature_c();
    gpu.set_temperature(t + (t_ss - t) * (step_s_ / params_[i].tau_s));
  }
}

}  // namespace capgpu::hw
