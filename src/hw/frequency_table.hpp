// Discrete frequency levels of a device.
//
// Real hardware only exposes discrete operating points (CPU P-states,
// NVIDIA application clocks in fixed-MHz increments). Controllers compute
// fractional frequencies; the delta-sigma modulator resolves them into a
// sequence of these discrete levels (paper Sec 5).
#pragma once

#include <cstddef>
#include <vector>

#include "common/units.hpp"

namespace capgpu::hw {

/// Sorted, strictly increasing list of supported frequencies.
class FrequencyTable {
 public:
  /// Levels must be non-empty; they are sorted and deduplicated.
  explicit FrequencyTable(std::vector<Megahertz> levels);

  /// Uniformly spaced table: first, first+step, ..., <= last.
  static FrequencyTable uniform(Megahertz first, Megahertz last, Megahertz step);

  /// V100-style application core clocks: 435..1350 MHz in 15 MHz steps
  /// (paper Sec 5: `nvidia-smi -ac 877,435-1350`).
  static FrequencyTable v100_core();

  /// RTX 3090-style core clocks covering the motivation experiment's
  /// 495 / 660 / 810 MHz operating points (15 MHz steps, 405..1095).
  static FrequencyTable rtx3090_core();

  /// Xeon-style P-states: 1.0..2.4 GHz in 100 MHz steps (paper Sec 5:
  /// cpupower discrete levels from 1.1 to 2.4 GHz, sysid sweeps from 1.0).
  static FrequencyTable xeon_pstates();

  [[nodiscard]] std::size_t size() const { return levels_.size(); }
  [[nodiscard]] Megahertz level(std::size_t i) const;
  [[nodiscard]] Megahertz min() const { return levels_.front(); }
  [[nodiscard]] Megahertz max() const { return levels_.back(); }
  [[nodiscard]] const std::vector<Megahertz>& levels() const { return levels_; }

  /// Index of the largest level <= f, or 0 when f is below the range.
  [[nodiscard]] std::size_t floor_index(Megahertz f) const;

  /// Nearest level to f.
  [[nodiscard]] Megahertz nearest(Megahertz f) const;
  [[nodiscard]] std::size_t nearest_index(Megahertz f) const;

  /// Clamps f into [min, max] (still fractional; not snapped to a level).
  [[nodiscard]] Megahertz clamp(Megahertz f) const;

  /// The two adjacent levels bracketing a fractional target, for delta-sigma
  /// modulation. When f is at/below min or at/above max both ends coincide.
  struct Bracket {
    Megahertz lower;
    Megahertz upper;
  };
  [[nodiscard]] Bracket bracket(Megahertz f) const;

  /// Index move by `steps` levels (negative = down), saturating at the ends.
  [[nodiscard]] std::size_t step_index(std::size_t from, int steps) const;

 private:
  std::vector<Megahertz> levels_;
};

}  // namespace capgpu::hw
