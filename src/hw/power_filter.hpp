// First-order low-pass filter for power readings.
//
// Real server power does not step instantaneously when clocks change:
// capacitance, VRM response and the meter's own averaging smear transitions
// over a second or two. The ACPI meter path runs samples through this filter
// so closed-loop traces show realistic settling.
#pragma once

namespace capgpu::hw {

/// y' = y + (x - y) * (1 - exp(-dt / tau)); tau = 0 disables filtering.
class PowerLowPass {
 public:
  explicit PowerLowPass(double tau_seconds);

  /// Feeds a raw sample taken `dt` seconds after the previous one and
  /// returns the filtered value. The first sample initialises the state.
  double step(double x, double dt);

  void reset();
  [[nodiscard]] double value() const { return value_; }
  [[nodiscard]] bool primed() const { return primed_; }

 private:
  double tau_;
  double value_{0.0};
  bool primed_{false};
};

}  // namespace capgpu::hw
