// Temperature-constrained capping (extension; cf. the authors' earlier
// temperature-constrained power control work, the paper's reference [32]).
//
// Each GPU gets a temperature limit. The governor converts the limit into
// a per-board frequency ceiling via the thermal model's inverse — the
// steady-state power budget at the limit maps through the board's power
// law to a clock — and feeds it to CapGPU as a max-frequency override (the
// mirror of the SLO floor). The MIMO controller then re-allocates the
// power budget: a board running hot is clocked down and the freed watts
// flow to cooler boards, instead of a blunt server-wide throttle.
#pragma once

#include <vector>

#include "core/capgpu_controller.hpp"
#include "hw/thermal.hpp"
#include "sim/engine.hpp"
#include "telemetry/metrics.hpp"

namespace capgpu::core {

/// Governor parameters.
struct ThermalGovernorConfig {
  Seconds period{4.0};
  double limit_c{83.0};       ///< per-board temperature limit (V100 slowdown)
  /// Ceilings target limit - guard so the first-order settle overshoot
  /// stays under the hard limit.
  double guard_c{3.0};
  /// Per-period ceiling change is rate-limited to this many MHz (smooth
  /// hand-off between the thermal and power loops).
  double max_step_mhz{150.0};
};

/// Derives per-GPU frequency ceilings from board temperatures.
class ThermalGovernor {
 public:
  /// References must outlive the governor; `integrator` supplies the
  /// thermal parameters and `server` the power laws and temperatures.
  ThermalGovernor(sim::Engine& engine, hw::ServerModel& server,
                  const hw::ThermalIntegrator& integrator,
                  CapGpuController& controller,
                  ThermalGovernorConfig config = {});
  ~ThermalGovernor();

  ThermalGovernor(const ThermalGovernor&) = delete;
  ThermalGovernor& operator=(const ThermalGovernor&) = delete;

  void start();
  void stop();

  /// Frequency ceiling (MHz) the governor derived for `gpu` at the target
  /// temperature, from the thermal inverse and the board's power law at
  /// its current utilization.
  [[nodiscard]] double ceiling_for(std::size_t gpu) const;

  /// Current applied ceilings (diagnostics); empty before the first tick.
  [[nodiscard]] const std::vector<double>& ceilings() const { return ceilings_; }

  /// Number of periods in which any ceiling actively bound (below spec max).
  [[nodiscard]] std::size_t binding_periods() const { return binding_periods_; }

 private:
  void tick();

  sim::Engine* engine_;
  hw::ServerModel* server_;
  const hw::ThermalIntegrator* integrator_;
  CapGpuController* controller_;
  ThermalGovernorConfig config_;
  std::vector<double> ceilings_;
  std::size_t binding_periods_{0};
  sim::EventId timer_{0};

  // Observability: per-board ceiling gauges {device=gpuN}, binding-period
  // counter, and a Perfetto counter track of the applied ceilings.
  std::vector<telemetry::Gauge*> ceiling_metrics_;
  telemetry::Counter* binding_metric_{nullptr};
  int trace_tid_{0};
};

}  // namespace capgpu::core
