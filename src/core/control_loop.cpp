#include "core/control_loop.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/log.hpp"
#include "telemetry/flight.hpp"
#include "telemetry/metric_names.hpp"
#include "telemetry/trace.hpp"

namespace capgpu::core {

namespace {

std::string device_label(std::size_t j) {
  return j == 0 ? "cpu" : "gpu" + std::to_string(j - 1);
}

}  // namespace

ControlLoop::ControlLoop(
    sim::Engine& engine, hal::IServerHal& hal, hal::ICpuPowerReader& rapl,
    baselines::IServerPowerController& policy, ControlLoopConfig config,
    std::function<std::vector<double>()> normalized_throughput)
    : engine_(&engine),
      hal_(&hal),
      rapl_(&rapl),
      policy_(&policy),
      config_(config),
      normalized_throughput_(std::move(normalized_throughput)) {
  CAPGPU_REQUIRE(config_.period.value > 0.0, "control period must be positive");
  CAPGPU_REQUIRE(static_cast<bool>(normalized_throughput_),
                 "throughput provider required");
  if (config_.failsafe) {
    governor_ =
        std::make_unique<FailSafeGovernor>(*config_.failsafe, policy_->name());
  }
  const std::size_t n = hal_->device_count();
  commands_.resize(n);
  modulators_.resize(n);
  command_seq_.assign(n, 0);
  freqs_.reserve(n);
  for (std::size_t j = 0; j < n; ++j) {
    commands_[j] = hal_->device_freqs(DeviceId{static_cast<std::uint32_t>(j)})
                       .min().value;
    freqs_.emplace_back("f_" + std::to_string(j), "MHz");
  }

  auto& registry = telemetry::MetricsRegistry::current();
  const telemetry::Labels by_policy{{"policy", policy_->name()}};
  namespace metric = telemetry::metric;
  periods_metric_ = &registry.counter(
      metric::kLoopPeriods, "Control periods executed", by_policy);
  skipped_metric_ = &registry.counter(
      metric::kLoopSkippedPeriods,
      "Periods skipped on sensor hiccup (commands held)", by_policy);
  deadband_metric_ = &registry.counter(
      metric::kLoopDeadbandPeriods,
      "Periods where the error sat inside the deadband", by_policy);
  transitions_metric_ = &registry.counter(
      metric::kLoopLevelTransitions,
      "Discrete frequency level changes applied across all devices",
      by_policy);
  retries_metric_ = &registry.counter(
      metric::kActuationRetries,
      "Actuation re-issues after a failure or read-back mismatch", by_policy);
  actuation_failures_metric_ = &registry.counter(
      metric::kActuationFailures,
      "Actuation attempts that raised a HAL error", by_policy);
  readback_metric_ = &registry.counter(
      metric::kReadbackMismatches,
      "Commands whose read-back did not match the issued level", by_policy);
  power_metric_ = &registry.gauge(
      metric::kServerPowerWatts, "Per-period average server power",
      {{"policy", policy_->name()}, {"kind", "measured"}});
  set_point_metric_ = &registry.gauge(
      metric::kServerPowerWatts, "Per-period average server power",
      {{"policy", policy_->name()}, {"kind", "set_point"}});
  telemetry::HistogramSpec error_spec;
  error_spec.min_bound = 0.1;  // 0.1 W .. 1 kW absolute tracking error
  error_spec.decades = 4;
  error_metric_ = &registry.histogram(
      metric::kPowerErrorWatts,
      "Absolute per-period power tracking error |measured - set point|",
      error_spec, by_policy);
  freq_metrics_.reserve(n);
  for (std::size_t j = 0; j < n; ++j) {
    freq_metrics_.push_back(&registry.gauge(
        metric::kDeviceFrequencyMhz, "Commanded device frequency",
        {{"policy", policy_->name()}, {"device", device_label(j)}}));
  }
  trace_tid_ = telemetry::Tracer::current().register_track("control_loop");
}

ControlLoop::~ControlLoop() {
  stop();
  *alive_ = false;  // silence in-flight actuation retries
}

void ControlLoop::start() {
  CAPGPU_REQUIRE(!started_, "loop already started");
  started_ = true;
  apply_commands();
  timer_ = engine_->schedule_periodic(config_.period.value,
                                      [this] { run_period(); });
}

void ControlLoop::stop() {
  if (timer_ != 0) {
    engine_->cancel(timer_);
    timer_ = 0;
  }
  started_ = false;
}

void ControlLoop::at_period(std::size_t index, std::function<void()> fn) {
  CAPGPU_REQUIRE(static_cast<bool>(fn), "null schedule action");
  schedule_.emplace(index, std::move(fn));
}

const telemetry::TimeSeries& ControlLoop::freq_trace(std::size_t device) const {
  CAPGPU_REQUIRE(device < freqs_.size(), "device index out of range");
  return freqs_[device];
}

baselines::ControlInputs ControlLoop::gather() const {
  baselines::ControlInputs in = gather_devices();
  in.measured_power = hal_->power_meter().average(config_.period);
  return in;
}

// Everything except the power reading — the hardened path sources that
// from the validator instead of trusting the meter directly.
baselines::ControlInputs ControlLoop::gather_devices() const {
  const std::size_t n = hal_->device_count();
  baselines::ControlInputs in;
  in.utilization.resize(n);
  in.device_power_watts.resize(n);
  for (std::size_t j = 0; j < n; ++j) {
    in.utilization[j] =
        hal_->device_utilization(DeviceId{static_cast<std::uint32_t>(j)});
  }
  in.device_power_watts[0] = rapl_->package_power().value;
  for (std::size_t j = 1; j < n; ++j) {
    in.device_power_watts[j] = hal_->gpu(j - 1).power_usage().value;
  }
  in.normalized_throughput = normalized_throughput_();
  CAPGPU_REQUIRE(in.normalized_throughput.size() == n,
                 "throughput provider returned wrong size");
  return in;
}

void ControlLoop::run_period() {
  // Scheduled actions (set-point / SLO changes) fire before the decision.
  auto [first, last] = schedule_.equal_range(periods_);
  for (auto it = first; it != last; ++it) it->second();
  if (governor_) {
    run_period_hardened();
  } else {
    run_period_basic();
  }
}

void ControlLoop::run_period_basic() {
  auto& tracer = telemetry::Tracer::current();
  if (telemetry::FlightRecorder::current().enabled()) {
    flight_freqs_before_ = commands_;
  }
  // Sensor resilience: a meter with no samples this period (hiccup,
  // driver restart) must not take the loop down — hold the previous
  // commands and keep the period accounting moving.
  try {
    last_inputs_ = gather();
  } catch (const HalError& e) {
    ++skipped_;
    skipped_metric_->inc();
    hold_period("sensor_gap");
    if (tracer.enabled()) {
      tracer.instant(trace_tid_, "period_skipped", "control",
                     {{"period", static_cast<double>(periods_)},
                      {"reason", e.what()}});
    }
    CAPGPU_LOG_DEBUG << "control period skipped (" << e.what()
                     << "); holding previous commands";
    // Keep every trace aligned: repeat the last reading (or the set point
    // before any reading exists) and the held commands.
    const double held_power =
        power_.empty() ? policy_->set_point().value : power_.values().back();
    power_.add(engine_->now(), held_power);
    set_point_.add(engine_->now(), policy_->set_point().value);
    for (std::size_t j = 0; j < commands_.size(); ++j) {
      freqs_[j].add(engine_->now(), commands_[j]);
    }
    periods_metric_->inc();
    record_flight(held_power, held_power - policy_->set_point().value,
                  /*held=*/true, "sensor_gap", /*described=*/false);
    const std::size_t index = periods_++;
    if (on_period) on_period(index);
    return;
  }
  const double error =
      last_inputs_.measured_power.value - policy_->set_point().value;
  bool deadband_hold = false;
  if (config_.error_deadband_watts > 0.0 &&
      std::abs(error) < config_.error_deadband_watts) {
    deadband_hold = true;
    // Converged within the band: hold commands, skip the policy, and do
    // not re-apply (no delta-sigma toggling this period).
    ++deadband_held_;
    deadband_metric_->inc();
    hold_period("deadband");
    if (tracer.enabled()) {
      tracer.instant(trace_tid_, "deadband_hold", "control",
                     {{"period", static_cast<double>(periods_)},
                      {"error_w", error}});
    }
  } else {
    const baselines::ControlOutputs out =
        policy_->control(last_inputs_, commands_);
    CAPGPU_REQUIRE(out.target_freqs_mhz.size() == commands_.size(),
                   "policy returned wrong number of commands");
    commands_ = out.target_freqs_mhz;
    apply_commands();
  }

  power_.add(engine_->now(), last_inputs_.measured_power.value);
  set_point_.add(engine_->now(), policy_->set_point().value);
  for (std::size_t j = 0; j < commands_.size(); ++j) {
    freqs_[j].add(engine_->now(), commands_[j]);
    freq_metrics_[j]->set(commands_[j]);
  }
  periods_metric_->inc();
  power_metric_->set(last_inputs_.measured_power.value);
  set_point_metric_->set(policy_->set_point().value);
  error_metric_->observe(std::abs(error));
  if (tracer.enabled()) {
    const double now = engine_->now();
    tracer.complete(trace_tid_, "control_period", "control",
                    now - config_.period.value, now,
                    {{"period", static_cast<double>(periods_)},
                     {"power_w", last_inputs_.measured_power.value},
                     {"set_point_w", policy_->set_point().value},
                     {"error_w", error}});
  }
  record_flight(last_inputs_.measured_power.value, error, deadband_hold,
                deadband_hold ? "deadband" : "", !deadband_hold);
  const std::size_t index = periods_++;
  if (on_period) on_period(index);
}

void ControlLoop::run_period_hardened() {
  auto& tracer = telemetry::Tracer::current();
  if (telemetry::FlightRecorder::current().enabled()) {
    flight_freqs_before_ = commands_;
  }
  const double now = engine_->now();
  const FailSafeGovernor::Assessment a =
      governor_->assess(now, hal_->power_meter(), config_.period);

  last_inputs_ = gather_devices();
  // With the meter dark the traces repeat the last reading (or the set
  // point before one exists) so every series stays period-aligned.
  const double measured =
      a.verdict == SampleVerdict::kDark
          ? (power_.empty() ? policy_->set_point().value
                            : power_.values().back())
          : a.power;
  last_inputs_.measured_power = Watts{measured};
  const double error = measured - policy_->set_point().value;

  bool held = false;
  const char* hold_reason = "";
  bool described = false;
  if (a.degrade) {
    // Commands do change (toward minimum levels) but the policy was never
    // consulted, so the record carries no replay state.
    hold_reason = "failsafe_degrade";
    degrade_step();
  } else if (!a.act) {
    const bool recovering = governor_->state() == FailSafeState::kRecovering;
    const char* reason = recovering ? "recovering" : "dark";
    held = true;
    hold_reason = reason;
    hold_period(reason);
    if (tracer.enabled()) {
      tracer.instant(trace_tid_, "period_held", "control",
                     {{"period", static_cast<double>(periods_)},
                      {"reason", reason}});
    }
  } else if (config_.error_deadband_watts > 0.0 &&
             std::abs(error) < config_.error_deadband_watts) {
    ++deadband_held_;
    deadband_metric_->inc();
    held = true;
    hold_reason = "deadband";
    hold_period("deadband");
    if (tracer.enabled()) {
      tracer.instant(trace_tid_, "deadband_hold", "control",
                     {{"period", static_cast<double>(periods_)},
                      {"error_w", error}});
    }
  } else {
    const baselines::ControlOutputs out =
        policy_->control(last_inputs_, commands_);
    CAPGPU_REQUIRE(out.target_freqs_mhz.size() == commands_.size(),
                   "policy returned wrong number of commands");
    commands_ = out.target_freqs_mhz;
    apply_commands();
    described = true;
  }
  finish_period(measured, error, a.verdict != SampleVerdict::kDark, held,
                hold_reason, described);
}

void ControlLoop::finish_period(double measured_power, double error,
                                bool observe_error, bool held,
                                const char* hold_reason, bool described) {
  const double now = engine_->now();
  power_.add(now, measured_power);
  set_point_.add(now, policy_->set_point().value);
  for (std::size_t j = 0; j < commands_.size(); ++j) {
    freqs_[j].add(now, commands_[j]);
    freq_metrics_[j]->set(commands_[j]);
  }
  periods_metric_->inc();
  power_metric_->set(measured_power);
  set_point_metric_->set(policy_->set_point().value);
  if (observe_error) error_metric_->observe(std::abs(error));
  auto& tracer = telemetry::Tracer::current();
  if (tracer.enabled()) {
    tracer.complete(
        trace_tid_, "control_period", "control", now - config_.period.value,
        now,
        {{"period", static_cast<double>(periods_)},
         {"power_w", measured_power},
         {"set_point_w", policy_->set_point().value},
         {"error_w", error},
         {"failsafe_state",
          static_cast<double>(static_cast<int>(governor_->state()))}});
  }
  record_flight(measured_power, error, held, hold_reason, described);
  const std::size_t index = periods_++;
  if (on_period) on_period(index);
}

void ControlLoop::record_flight(double measured_power, double error, bool held,
                                const char* hold_reason, bool described) {
  auto& recorder = telemetry::FlightRecorder::current();
  if (!recorder.enabled()) return;
  telemetry::FlightRecord rec;
  rec.pid = telemetry::Tracer::current().pid();
  rec.period = periods_;
  rec.t_s = engine_->now();
  rec.policy = policy_->name();
  rec.measured_power_w = measured_power;
  rec.set_point_w = policy_->set_point().value;
  rec.error_w = error;
  rec.held = held;
  rec.hold_reason = hold_reason;
  rec.failsafe_state =
      governor_ ? static_cast<int>(governor_->state()) : -1;
  if (governor_) rec.failsafe_cause = governor_->engage_cause();
  rec.freqs_mhz = flight_freqs_before_;
  rec.targets_mhz = commands_;
  rec.utilization = last_inputs_.utilization;
  rec.normalized_throughput = last_inputs_.normalized_throughput;
  if (described) policy_->describe_flight(rec);
  recorder.record(std::move(rec));
}

// Commands held this period. Ticks the delta-sigma modulators against the
// level the hardware is sitting on so the quantisation accounting never
// silently freezes (the fraction the loop owes stays bounded and is paid
// back once it resumes acting).
void ControlLoop::hold_period(const char* reason) {
  ++held_;
  telemetry::MetricsRegistry::current()
      .counter(telemetry::metric::kLoopHeldPeriods,
               "Periods where commands held instead of acting, by cause",
               {{"policy", policy_->name()}, {"reason", reason}})
      .inc();
  if (!config_.use_delta_sigma || applied_levels_.empty()) return;
  for (std::size_t j = 0; j < commands_.size(); ++j) {
    if (applied_levels_[j] < 0.0) continue;
    const DeviceId id{static_cast<std::uint32_t>(j)};
    modulators_[j].hold(Megahertz{commands_[j]}, Megahertz{applied_levels_[j]},
                        hal_->device_freqs(id));
  }
}

// Fail-safe degradation: walk every device toward its minimum level from
// wherever the hardware actually is (read-back truth — commands may not
// have stuck, that is likely why we are degrading).
void ControlLoop::degrade_step() {
  const int down = -static_cast<int>(governor_->config().degrade_step_levels);
  for (std::size_t j = 0; j < commands_.size(); ++j) {
    const DeviceId id{static_cast<std::uint32_t>(j)};
    const auto& table = hal_->device_freqs(id);
    std::size_t idx = 0;
    try {
      idx = table.nearest_index(hal_->device_frequency(id));
    } catch (const HalError&) {
      idx = table.nearest_index(
          Megahertz{applied_levels_[j] >= 0.0 ? applied_levels_[j]
                                              : table.min().value});
    }
    commands_[j] = table.level(table.step_index(idx, down)).value;
    modulators_[j].reset();
  }
  apply_commands();
}

void ControlLoop::apply_commands() {
  if (applied_levels_.empty()) {
    applied_levels_.assign(commands_.size(), -1.0);
  }
  for (std::size_t j = 0; j < commands_.size(); ++j) {
    const DeviceId id{static_cast<std::uint32_t>(j)};
    const auto& table = hal_->device_freqs(id);
    const Megahertz target{commands_[j]};
    const Megahertz level = config_.use_delta_sigma
                                ? modulators_[j].step(target, table)
                                : table.nearest(target);
    if (governor_) {
      ++command_seq_[j];
      issue_command(j, level, governor_->config().retry_budget);
    } else {
      try {
        hal_->set_device_frequency(id, level);
      } catch (const HalError& e) {
        // Unhardened loops drop the command: no retry, no verification.
        ++actuation_failures_;
        actuation_failures_metric_->inc();
        CAPGPU_LOG_DEBUG << "actuation failed on device " << j << " ("
                         << e.what() << "); command dropped";
      }
    }
    if (applied_levels_[j] >= 0.0 && applied_levels_[j] != level.value) {
      ++transitions_;
      transitions_metric_->inc();
    }
    applied_levels_[j] = level.value;
  }
}

// One actuation attempt plus, on failure or read-back mismatch, a chain of
// retries at retry_backoff * 2^k. A newer command for the same device (see
// command_seq_) or loop destruction (alive_) invalidates pending retries.
void ControlLoop::issue_command(std::size_t device, Megahertz level,
                                std::size_t attempts_left) {
  const DeviceId id{static_cast<std::uint32_t>(device)};
  const std::uint64_t seq = command_seq_[device];
  bool ok = true;
  try {
    hal_->set_device_frequency(id, level);
    if (governor_->config().verify_readback &&
        hal_->device_frequency(id).value != level.value) {
      ok = false;
      ++readback_mismatches_;
      readback_metric_->inc();
    }
  } catch (const HalError&) {
    ok = false;
    ++actuation_failures_;
    actuation_failures_metric_->inc();
  }
  governor_->note_actuation(engine_->now(), device, ok);
  if (ok) return;
  if (attempts_left == 0) {
    CAPGPU_LOG_DEBUG << "actuation retry budget exhausted on device "
                     << device << "; giving up on " << level.value << " MHz";
    return;
  }
  const std::size_t used = governor_->config().retry_budget - attempts_left;
  const double delay = governor_->config().retry_backoff.value *
                       std::pow(2.0, static_cast<double>(used));
  std::shared_ptr<bool> alive = alive_;
  engine_->schedule_after(
      delay, [this, alive, device, level, attempts_left, seq] {
        if (!*alive || command_seq_[device] != seq) return;
        ++retries_;
        retries_metric_->inc();
        issue_command(device, level, attempts_left - 1);
      });
}

}  // namespace capgpu::core
