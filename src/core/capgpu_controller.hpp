// CapGPU: the paper's controller, packaged as a server power policy.
//
// Combines the MIMO MPC (Sec 4.3), throughput-driven weight assignment
// (Sec 4.3), and per-task SLO constraints obtained by inverting the latency
// law (Eq. 10b/c). This is the primary public entry point of the library:
// construct it with the identified power model and per-GPU latency models,
// then drive it from a ControlLoop (or your own loop on real hardware).
#pragma once

#include <map>
#include <optional>

#include "baselines/controller_iface.hpp"
#include "control/latency_model.hpp"
#include "control/mpc.hpp"
#include "control/prbs.hpp"
#include "control/rls.hpp"
#include "control/weights.hpp"

namespace capgpu::core {

/// CapGPU configuration.
struct CapGpuConfig {
  control::MpcConfig mpc{};
  control::WeightConfig weights{};
  /// SLO safety margin: the frequency floor is computed for
  /// slo * (1 - slo_margin) so run-to-run latency jitter does not turn a
  /// task sitting exactly on its floor into a coin-flip SLO miss.
  double slo_margin{0.08};
  /// When true, a recursive-least-squares estimator refines the power
  /// model's gains online from each period's (dF, dp) observation, so the
  /// controller tracks workload-induced gain drift without re-running the
  /// identification sweep.
  bool adaptive{false};
  control::RlsConfig rls{};
  /// Persistent excitation for adaptive mode: the internal tracking target
  /// is perturbed by +/- this many watts following a PRBS pattern, so
  /// closed-loop identification keeps receiving gain information after the
  /// loop settles. 0 = off. A few watts suffices (the perturbation rides
  /// within the capping margin); ignored when `adaptive` is false.
  double rls_excitation_watts{0.0};
  /// Enables the explicit-MPC region cache (paper Sec 4.3's
  /// multi-parametric split). Pair with weights.quantize_rel > 0 so the
  /// Hessian stays piecewise-constant across periods; adaptive mode
  /// negates the benefit (every model update flushes the cache).
  bool mpc_solve_cache{false};
};

/// The CapGPU MIMO power-capping policy.
class CapGpuController : public baselines::IServerPowerController {
 public:
  /// `latency_models` maps GPU device ids (1..N) to their calibrated
  /// latency models; devices without a model cannot receive SLOs.
  CapGpuController(CapGpuConfig config,
                   std::vector<control::DeviceRange> devices,
                   control::LinearPowerModel model, Watts set_point,
                   std::map<std::size_t, control::LatencyModel> latency_models);

  [[nodiscard]] std::string name() const override { return "capgpu"; }
  void set_set_point(Watts p) override { mpc_.set_set_point(p); }
  [[nodiscard]] Watts set_point() const override { return mpc_.set_point(); }

  /// Applies an SLO to the task on `device`: the MPC's lower frequency
  /// bound rises to the latency-law inverse. Infeasible SLOs clamp the
  /// bound at f_max and are reported through `slo_infeasible`.
  void set_slo(std::size_t device, double slo_seconds) override;

  /// Replaces the latency model of one task (the batching governor calls
  /// this when it changes a stream's batch size, since e_min scales with
  /// the batch). Any active SLO on the device is re-derived immediately.
  void update_latency_model(std::size_t device, control::LatencyModel model);

  /// Thermal (or other) frequency ceiling on `device` (the ThermalGovernor
  /// calls this). Returns false when the ceiling broke an active SLO floor
  /// — protection outranks the SLO.
  bool set_max_frequency(std::size_t device, double f_mhz) {
    return mpc_.set_max_frequency_override(device, f_mhz);
  }

  /// Workload priority of `device` (default 1): the control-penalty weight
  /// is divided by it, so under a tight cap high-priority tasks keep their
  /// clocks while low-priority ones are throttled first (priority-aware
  /// capping within one server, cf. Sakalkar et al.). Relative values are
  /// what matters; must be positive.
  void set_priority(std::size_t device, double priority);
  [[nodiscard]] double priority(std::size_t device) const;
  void clear_slos();
  [[nodiscard]] bool slo_infeasible(std::size_t device) const;
  [[nodiscard]] std::optional<double> slo_of(std::size_t device) const;

  [[nodiscard]] baselines::ControlOutputs control(
      const baselines::ControlInputs& inputs,
      const std::vector<double>& current_freqs_mhz) override;

  /// Diagnostics of the most recent period.
  [[nodiscard]] const control::MpcDecision& last_decision() const { return last_; }
  [[nodiscard]] const std::vector<double>& last_weights() const { return last_weights_; }

  /// Flight-recorder hook: exports the last period's full replay state
  /// (post-RLS model, quantized weights, effective bounds, MPC config and
  /// QP diagnostics) so tools/capgpu_ctl_replay can re-solve the period
  /// bit-identically from the record alone.
  void describe_flight(telemetry::FlightRecord& record) const override;

  /// Replaces the power model (online re-identification). Also resets the
  /// adaptive estimator's prior when adaptation is enabled.
  void set_model(control::LinearPowerModel model);

  /// The model currently in use (adapted when `adaptive` is on).
  [[nodiscard]] const control::LinearPowerModel& current_model() const {
    return mpc_.model();
  }
  /// Number of RLS updates applied (0 when adaptation is off).
  [[nodiscard]] std::size_t adaptation_updates() const;

  /// Drops the pending adaptation sample. Governors call this when they
  /// change the plant out-of-band (batch size, memory throttle): the next
  /// period's power change would otherwise be misattributed to the
  /// frequency moves and corrupt the gain estimates.
  void invalidate_adaptation_sample() { prev_power_.reset(); }

  [[nodiscard]] control::MpcController& mpc() { return mpc_; }
  [[nodiscard]] const control::MpcController& mpc() const { return mpc_; }

 private:
  control::MpcController mpc_;
  control::WeightAssigner assigner_;
  double slo_margin_{0.08};
  double excitation_watts_{0.0};
  control::PrbsGenerator prbs_;
  std::optional<control::RlsEstimator> rls_;
  std::optional<double> prev_power_;
  std::vector<double> prev_freqs_;
  std::vector<double> priorities_;
  std::map<std::size_t, control::LatencyModel> latency_models_;
  std::map<std::size_t, double> slos_;
  std::map<std::size_t, bool> infeasible_;
  control::MpcDecision last_{};
  std::vector<double> last_weights_;
  double last_fed_{0.0};  ///< power fed to the MPC (incl. PRBS excitation)
};

}  // namespace capgpu::core
