// The feedback control loop (paper Sec 3.1 / Sec 5).
//
// Every control period T (default 4 s, four 1 s power-meter samples):
//   1. read the average server power over the last period (controlled var),
//   2. read per-device utilization, normalized throughput, domain power,
//   3. ask the policy for new frequency commands (manipulated vars),
//   4. resolve fractional commands to discrete levels via per-device
//      delta-sigma modulators and apply them through the HAL.
// Also hosts the experiment schedule (set-point and SLO changes at given
// periods) and records the traces every bench consumes.
#pragma once

#include <functional>
#include <map>
#include <vector>

#include "baselines/controller_iface.hpp"
#include "control/delta_sigma.hpp"
#include "hal/rapl_sim.hpp"
#include "hal/server_hal.hpp"
#include "sim/engine.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/timeseries.hpp"

namespace capgpu::core {

/// Loop configuration.
struct ControlLoopConfig {
  Seconds period{4.0};
  /// When false, fractional commands are snapped to the nearest level
  /// instead of delta-sigma modulated (ablation switch).
  bool use_delta_sigma{true};
  /// Actuation deadband: when |measured - set point| is inside the band,
  /// the policy is not consulted and commands hold — P-state transitions
  /// wear VRMs and cost microseconds of stall, so converged loops should
  /// go quiet. 0 disables (the paper's loop acts every period).
  double error_deadband_watts{0.0};
};

/// Drives one policy against one server.
class ControlLoop {
 public:
  /// `normalized_throughput` must return one entry per device (CPU first).
  /// All references must outlive the loop.
  ControlLoop(sim::Engine& engine, hal::IServerHal& hal, hal::ICpuPowerReader& rapl,
              baselines::IServerPowerController& policy,
              ControlLoopConfig config,
              std::function<std::vector<double>()> normalized_throughput);
  ~ControlLoop();

  ControlLoop(const ControlLoop&) = delete;
  ControlLoop& operator=(const ControlLoop&) = delete;

  /// Applies the initial commands (every device at its minimum level, as
  /// the paper's runs do) and schedules the periodic control event.
  void start();
  void stop();

  /// Runs `fn` just before the control computation of period `index`
  /// (0-based). Used for set-point and SLO schedule changes.
  void at_period(std::size_t index, std::function<void()> fn);

  /// Invoked after each period with the period index.
  std::function<void(std::size_t)> on_period;

  [[nodiscard]] std::size_t periods_elapsed() const { return periods_; }
  /// Periods skipped because the power meter had no samples (sensor
  /// hiccup): the loop holds its previous commands instead of acting on
  /// missing feedback.
  [[nodiscard]] std::size_t skipped_periods() const { return skipped_; }
  /// Periods where the error sat inside the deadband and commands held.
  [[nodiscard]] std::size_t deadband_periods() const { return deadband_held_; }
  /// Total discrete level changes applied across all devices (actuator
  /// churn; delta-sigma toggling counts).
  [[nodiscard]] std::size_t level_transitions() const { return transitions_; }
  [[nodiscard]] const std::vector<double>& commands() const { return commands_; }
  [[nodiscard]] const telemetry::TimeSeries& power_trace() const { return power_; }
  [[nodiscard]] const telemetry::TimeSeries& set_point_trace() const { return set_point_; }
  [[nodiscard]] const telemetry::TimeSeries& freq_trace(std::size_t device) const;
  [[nodiscard]] const baselines::ControlInputs& last_inputs() const { return last_inputs_; }

 private:
  void run_period();
  void apply_commands();
  [[nodiscard]] baselines::ControlInputs gather() const;

  sim::Engine* engine_;
  hal::IServerHal* hal_;
  hal::ICpuPowerReader* rapl_;
  baselines::IServerPowerController* policy_;
  ControlLoopConfig config_;
  std::function<std::vector<double>()> normalized_throughput_;

  std::vector<double> commands_;  // fractional commands per device
  std::vector<control::DeltaSigmaModulator> modulators_;
  std::multimap<std::size_t, std::function<void()>> schedule_;
  std::size_t periods_{0};
  std::size_t skipped_{0};
  std::size_t deadband_held_{0};
  std::size_t transitions_{0};
  std::vector<double> applied_levels_;
  sim::EventId timer_{0};
  bool started_{false};

  telemetry::TimeSeries power_{"power", "W"};
  telemetry::TimeSeries set_point_{"set_point", "W"};
  std::vector<telemetry::TimeSeries> freqs_;
  baselines::ControlInputs last_inputs_{};

  // Observability (process-wide registry/tracer; docs/observability.md).
  // Series are labeled {policy=<policy name>} so several loops in one
  // process stay distinguishable; per-device gauges add {device=...}.
  telemetry::Counter* periods_metric_{nullptr};
  telemetry::Counter* skipped_metric_{nullptr};
  telemetry::Counter* deadband_metric_{nullptr};
  telemetry::Counter* transitions_metric_{nullptr};
  telemetry::Gauge* power_metric_{nullptr};
  telemetry::Gauge* set_point_metric_{nullptr};
  std::vector<telemetry::Gauge*> freq_metrics_;
  telemetry::LogLinearHistogram* error_metric_{nullptr};
  int trace_tid_{0};
};

}  // namespace capgpu::core
