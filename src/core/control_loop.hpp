// The feedback control loop (paper Sec 3.1 / Sec 5).
//
// Every control period T (default 4 s, four 1 s power-meter samples):
//   1. read the average server power over the last period (controlled var),
//   2. read per-device utilization, normalized throughput, domain power,
//   3. ask the policy for new frequency commands (manipulated vars),
//   4. resolve fractional commands to discrete levels via per-device
//      delta-sigma modulators and apply them through the HAL.
// Also hosts the experiment schedule (set-point and SLO changes at given
// periods) and records the traces every bench consumes.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "baselines/controller_iface.hpp"
#include "control/delta_sigma.hpp"
#include "core/failsafe.hpp"
#include "hal/rapl_sim.hpp"
#include "hal/server_hal.hpp"
#include "sim/engine.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/timeseries.hpp"

namespace capgpu::core {

/// Loop configuration.
struct ControlLoopConfig {
  Seconds period{4.0};
  /// When false, fractional commands are snapped to the nearest level
  /// instead of delta-sigma modulated (ablation switch).
  bool use_delta_sigma{true};
  /// Actuation deadband: when |measured - set point| is inside the band,
  /// the policy is not consulted and commands hold — P-state transitions
  /// wear VRMs and cost microseconds of stall, so converged loops should
  /// go quiet. 0 disables (the paper's loop acts every period).
  double error_deadband_watts{0.0};
  /// When set, the loop runs hardened: power readings pass through the
  /// SampleValidator, actuation is retried with backoff and (optionally)
  /// read-back verified, and the FailSafeGovernor degrades toward minimum
  /// clocks once the HAL stays broken past its deadlines. When unset the
  /// loop trusts the HAL (the paper's assumption).
  std::optional<FailSafeConfig> failsafe{};
};

/// Drives one policy against one server.
class ControlLoop {
 public:
  /// `normalized_throughput` must return one entry per device (CPU first).
  /// All references must outlive the loop.
  ControlLoop(sim::Engine& engine, hal::IServerHal& hal, hal::ICpuPowerReader& rapl,
              baselines::IServerPowerController& policy,
              ControlLoopConfig config,
              std::function<std::vector<double>()> normalized_throughput);
  ~ControlLoop();

  ControlLoop(const ControlLoop&) = delete;
  ControlLoop& operator=(const ControlLoop&) = delete;

  /// Applies the initial commands (every device at its minimum level, as
  /// the paper's runs do) and schedules the periodic control event.
  void start();
  void stop();

  /// Runs `fn` just before the control computation of period `index`
  /// (0-based). Used for set-point and SLO schedule changes.
  void at_period(std::size_t index, std::function<void()> fn);

  /// Invoked after each period with the period index.
  std::function<void(std::size_t)> on_period;

  [[nodiscard]] std::size_t periods_elapsed() const { return periods_; }
  /// Periods skipped because the power meter had no samples (sensor
  /// hiccup): the loop holds its previous commands instead of acting on
  /// missing feedback.
  [[nodiscard]] std::size_t skipped_periods() const { return skipped_; }
  /// Periods where the error sat inside the deadband and commands held.
  [[nodiscard]] std::size_t deadband_periods() const { return deadband_held_; }
  /// Periods where commands held for any reason (deadband, sensor gap,
  /// meter dark, recovery hysteresis). Superset of the two counts above
  /// in hardened mode.
  [[nodiscard]] std::size_t held_periods() const { return held_; }
  /// Actuation re-issues after a failed or unverified command (hardened).
  [[nodiscard]] std::size_t actuation_retries() const { return retries_; }
  /// Actuation attempts that threw a HalError.
  [[nodiscard]] std::size_t actuation_failures() const { return actuation_failures_; }
  /// Commands whose read-back did not match the issued level (hardened).
  [[nodiscard]] std::size_t readback_mismatches() const { return readback_mismatches_; }
  /// The watchdog, or nullptr when the loop runs unhardened.
  [[nodiscard]] const FailSafeGovernor* failsafe() const { return governor_.get(); }
  /// Total discrete level changes applied across all devices (actuator
  /// churn; delta-sigma toggling counts).
  [[nodiscard]] std::size_t level_transitions() const { return transitions_; }
  [[nodiscard]] const std::vector<double>& commands() const { return commands_; }
  [[nodiscard]] const telemetry::TimeSeries& power_trace() const { return power_; }
  [[nodiscard]] const telemetry::TimeSeries& set_point_trace() const { return set_point_; }
  [[nodiscard]] const telemetry::TimeSeries& freq_trace(std::size_t device) const;
  [[nodiscard]] const baselines::ControlInputs& last_inputs() const { return last_inputs_; }

 private:
  void run_period();
  void run_period_basic();
  void run_period_hardened();
  void finish_period(double measured_power, double error, bool observe_error,
                     bool held, const char* hold_reason, bool described);
  /// Emits this period's FlightRecord (no-op while the recorder is off).
  /// `described` asks the policy for its replay state (acted periods only).
  void record_flight(double measured_power, double error, bool held,
                     const char* hold_reason, bool described);
  void apply_commands();
  void issue_command(std::size_t device, Megahertz level,
                     std::size_t attempts_left);
  void degrade_step();
  void hold_period(const char* reason);
  [[nodiscard]] baselines::ControlInputs gather() const;
  [[nodiscard]] baselines::ControlInputs gather_devices() const;

  sim::Engine* engine_;
  hal::IServerHal* hal_;
  hal::ICpuPowerReader* rapl_;
  baselines::IServerPowerController* policy_;
  ControlLoopConfig config_;
  std::function<std::vector<double>()> normalized_throughput_;

  std::vector<double> commands_;  // fractional commands per device
  std::vector<control::DeltaSigmaModulator> modulators_;
  std::multimap<std::size_t, std::function<void()>> schedule_;
  std::size_t periods_{0};
  std::size_t skipped_{0};
  std::size_t deadband_held_{0};
  std::size_t held_{0};
  std::size_t transitions_{0};
  std::size_t retries_{0};
  std::size_t actuation_failures_{0};
  std::size_t readback_mismatches_{0};
  std::vector<double> applied_levels_;
  sim::EventId timer_{0};
  bool started_{false};

  // Hardened-mode state. `command_seq_` invalidates in-flight retries once
  // a newer command targets the device; `alive_` guards retry events that
  // fire after the loop is destroyed.
  std::unique_ptr<FailSafeGovernor> governor_;
  std::vector<std::uint64_t> command_seq_;
  std::shared_ptr<bool> alive_{std::make_shared<bool>(true)};

  telemetry::TimeSeries power_{"power", "W"};
  telemetry::TimeSeries set_point_{"set_point", "W"};
  std::vector<telemetry::TimeSeries> freqs_;
  baselines::ControlInputs last_inputs_{};

  // Observability (process-wide registry/tracer; docs/observability.md).
  // Series are labeled {policy=<policy name>} so several loops in one
  // process stay distinguishable; per-device gauges add {device=...}.
  telemetry::Counter* periods_metric_{nullptr};
  telemetry::Counter* skipped_metric_{nullptr};
  telemetry::Counter* deadband_metric_{nullptr};
  telemetry::Counter* transitions_metric_{nullptr};
  telemetry::Counter* retries_metric_{nullptr};
  telemetry::Counter* actuation_failures_metric_{nullptr};
  telemetry::Counter* readback_metric_{nullptr};
  telemetry::Gauge* power_metric_{nullptr};
  telemetry::Gauge* set_point_metric_{nullptr};
  std::vector<telemetry::Gauge*> freq_metrics_;
  telemetry::LogLinearHistogram* error_metric_{nullptr};
  int trace_tid_{0};
  /// Fractional commands as they stood before this period's decision
  /// (captured only while the flight recorder is enabled).
  std::vector<double> flight_freqs_before_;
};

}  // namespace capgpu::core
