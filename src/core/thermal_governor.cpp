#include "core/thermal_governor.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "telemetry/metric_names.hpp"
#include "telemetry/trace.hpp"

namespace capgpu::core {

ThermalGovernor::ThermalGovernor(sim::Engine& engine, hw::ServerModel& server,
                                 const hw::ThermalIntegrator& integrator,
                                 CapGpuController& controller,
                                 ThermalGovernorConfig config)
    : engine_(&engine),
      server_(&server),
      integrator_(&integrator),
      controller_(&controller),
      config_(config) {
  CAPGPU_REQUIRE(config_.period.value > 0.0, "period must be positive");
  CAPGPU_REQUIRE(config_.guard_c >= 0.0, "guard must be >= 0");
  CAPGPU_REQUIRE(config_.max_step_mhz > 0.0, "max_step must be positive");
  auto& registry = telemetry::MetricsRegistry::current();
  binding_metric_ = &registry.counter(
      telemetry::metric::kThermalBindingPeriods,
      "Periods in which a thermal ceiling bound below the spec maximum");
  for (std::size_t i = 0; i < server_->gpu_count(); ++i) {
    ceiling_metrics_.push_back(&registry.gauge(
        telemetry::metric::kThermalCeilingMhz,
        "Thermally derived per-board frequency ceiling",
        {{"device", "gpu" + std::to_string(i)}}));
  }
  trace_tid_ = telemetry::Tracer::current().register_track("thermal");
}

ThermalGovernor::~ThermalGovernor() { stop(); }

void ThermalGovernor::start() {
  CAPGPU_REQUIRE(timer_ == 0, "governor already started");
  ceilings_.assign(server_->gpu_count(), 0.0);
  for (std::size_t i = 0; i < server_->gpu_count(); ++i) {
    ceilings_[i] = server_->gpu(i).freqs().max().value;
  }
  timer_ = engine_->schedule_periodic(config_.period.value, [this] { tick(); });
}

void ThermalGovernor::stop() {
  if (timer_ != 0) {
    engine_->cancel(timer_);
    timer_ = 0;
  }
}

double ThermalGovernor::ceiling_for(std::size_t gpu) const {
  CAPGPU_REQUIRE(gpu < server_->gpu_count(), "gpu index out of range");
  const auto& board = server_->gpu(gpu);
  const auto& p = board.params();
  const double target_c = config_.limit_c - config_.guard_c;
  const double power_budget = integrator_->power_budget_for(gpu, target_c);
  // Invert the board power law, P = idle + memory + wpm * f * activity, at
  // full activity: the board must stay within its thermal budget even when
  // continuously busy, and instantaneous utilization toggles with every
  // batch (using it would make the ceiling jitter).
  const double memory = board.memory_throttled() ? p.memory_watts_low
                                                 : p.memory_watts;
  const double dynamic_budget = power_budget - p.idle_watts - memory;
  const double f_min = board.freqs().min().value;
  const double f_max = board.freqs().max().value;
  if (dynamic_budget <= 0.0) return f_min;
  const double f = dynamic_budget / p.watts_per_mhz;
  return std::clamp(f, f_min, f_max);
}

void ThermalGovernor::tick() {
  bool any_binding = false;
  for (std::size_t i = 0; i < server_->gpu_count(); ++i) {
    const double f_max = server_->gpu(i).freqs().max().value;
    const double target = ceiling_for(i);
    if (server_->gpu(i).temperature_c() > config_.limit_c - config_.guard_c) {
      // Inside the guard band already: protection overrides smoothness —
      // jump straight to the derived ceiling.
      ceilings_[i] = std::min(ceilings_[i], target);
    } else {
      // Rate-limit the ceiling move (the thermal plant is slow, and large
      // steps would fight the power loop).
      const double step = std::clamp(target - ceilings_[i],
                                     -config_.max_step_mhz,
                                     config_.max_step_mhz);
      ceilings_[i] += step;
    }
    ceilings_[i] = std::clamp(ceilings_[i],
                              server_->gpu(i).freqs().min().value, f_max);
    (void)controller_->set_max_frequency(i + 1, ceilings_[i]);
    ceiling_metrics_[i]->set(ceilings_[i]);
    any_binding = any_binding || ceilings_[i] < f_max - 1.0;
  }
  binding_periods_ += any_binding;
  if (any_binding) binding_metric_->inc();
  auto& tracer = telemetry::Tracer::current();
  if (tracer.enabled()) {
    std::vector<telemetry::TraceArg> args;
    for (std::size_t i = 0; i < ceilings_.size(); ++i) {
      args.emplace_back("gpu" + std::to_string(i), ceilings_[i]);
    }
    tracer.counter(trace_tid_, "thermal_ceiling_mhz", "protection",
                   std::move(args));
  }
}

}  // namespace capgpu::core
