// Coordinated batching + DVFS (extension; cf. Nabavinejad et al., the
// paper's reference [20]).
//
// The batch size is a second per-GPU knob next to the core clock: larger
// batches amortise per-launch overhead (more images/s at the same power)
// but lengthen e_i, tightening the SLO-derived frequency floor; smaller
// batches can make an SLO feasible that no clock could meet at the default
// batch. This governor adapts each stream's batch size toward the largest
// value whose SLO floor still fits under f_max (with margin), and keeps
// the CapGPU controller's latency models in sync so its MPC constraints
// stay correct.
#pragma once

#include <vector>

#include "core/capgpu_controller.hpp"
#include "sim/engine.hpp"
#include "workload/pipeline.hpp"

namespace capgpu::core {

/// Governor parameters.
struct BatchingConfig {
  Seconds period{8.0};       ///< two control periods per adjustment
  std::size_t min_batch{4};
  std::size_t max_batch{40};
  /// The SLO floor for the chosen batch must sit at or below
  /// headroom * f_max, leaving clock room for power capping.
  double headroom{0.95};
  /// Aggregate power guard: the server power implied by all SLO floors
  /// together (CPUs at minimum) must stay below this fraction of the set
  /// point, or larger batches would make the cap unreachable. Batches are
  /// trimmed greedily until the floors fit.
  double power_guard{0.92};
  /// Latency target is slo * (1 - margin), mirroring the controller.
  double slo_margin{0.08};
  /// Batch-size change per adjustment (gradual, avoids latency steps).
  std::size_t step{2};
};

/// Adapts batch sizes; one instance drives all streams of a server.
class BatchingGovernor {
 public:
  /// `streams[i]` must correspond to controller device i+1. All references
  /// must outlive the governor.
  BatchingGovernor(sim::Engine& engine,
                   std::vector<workload::InferenceStream*> streams,
                   CapGpuController& controller, BatchingConfig config = {});
  ~BatchingGovernor();

  BatchingGovernor(const BatchingGovernor&) = delete;
  BatchingGovernor& operator=(const BatchingGovernor&) = delete;

  void start();
  void stop();

  /// The batch size the governor currently wants for stream i (diagnostic;
  /// the stream clamps to its queue capacity).
  [[nodiscard]] std::size_t target_batch(std::size_t i) const;

  /// Number of batch-size changes applied so far.
  [[nodiscard]] std::size_t adjustments() const { return adjustments_; }

  /// Largest batch in [min_batch, max_batch] whose SLO frequency floor
  /// fits under headroom * f_max; min_batch when even that is infeasible.
  [[nodiscard]] std::size_t feasible_batch(const workload::ModelSpec& model,
                                           double slo_seconds) const;

 private:
  void adjust();
  /// Server power if every SLO floor binds and everything else sits at its
  /// minimum, under the controller's power model.
  [[nodiscard]] double floor_power(const std::vector<std::size_t>& batches) const;
  [[nodiscard]] double floor_for(std::size_t i, std::size_t batch) const;

  sim::Engine* engine_;
  std::vector<workload::InferenceStream*> streams_;
  CapGpuController* controller_;
  BatchingConfig config_;
  std::size_t adjustments_{0};
  sim::EventId timer_{0};
};

}  // namespace capgpu::core
