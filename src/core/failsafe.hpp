// Fail-safe hardening of the control loop against HAL faults.
//
// The paper's premise — power capping makes rack oversubscription safe —
// only holds while the loop can see and steer the server. This module
// supplies the three defenses the hardened loop composes:
//
//   - SampleValidator: rejects NaN / out-of-range / stale power readings
//     before they reach the policy, serving a bounded-age last-good value
//     while the meter hiccups;
//   - actuation policy knobs (retry budget, backoff, read-back
//     verification) consumed by core::ControlLoop;
//   - FailSafeGovernor: a watchdog state machine that, once the meter has
//     been dark or actuation has been failing past its deadline, degrades
//     gracefully — the loop steps devices toward minimum clocks instead
//     of holding potentially-over-cap commands — and re-admits the policy
//     with hysteresis once the HAL recovers.
//
// State machine (docs/fault_model.md has the full picture):
//
//     NOMINAL --deadline exceeded--> DEGRADED --healthy period--> RECOVERING
//        ^                               ^                            |
//        |                               +---unhealthy / relapse------+
//        +--recovery_periods consecutive healthy periods--------------+
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "hal/interfaces.hpp"
#include "telemetry/metrics.hpp"

namespace capgpu::core {

/// Power-sample plausibility and staleness limits.
struct SampleValidatorConfig {
  /// Physical plausibility range of a server power reading.
  double min_power_watts{0.0};
  double max_power_watts{20000.0};
  /// How long the last-good reading may substitute for a missing or
  /// rejected one before the loop must consider the meter dark.
  Seconds max_holdover{8.0};
};

/// Fail-safe configuration consumed by core::ControlLoop. Validate with
/// `validated()` (the loop does so on construction).
struct FailSafeConfig {
  SampleValidatorConfig validator{};

  /// Re-issues allowed after a failed or unverified actuation (0 = single
  /// attempt). Retries are scheduled `retry_backoff * 2^k` after the
  /// failure, so a flaky driver is not hammered back-to-back.
  std::size_t retry_budget{2};
  Seconds retry_backoff{0.25};
  /// Read the frequency back after each command and re-issue on mismatch
  /// — catches commands that claim success but silently do not stick.
  bool verify_readback{true};

  /// Degrade once the meter has produced no accepted sample for this long.
  Seconds meter_dark_deadline{12.0};
  /// Degrade once actuation has kept failing (attempts but no verified
  /// success) for this long.
  Seconds actuation_fail_deadline{12.0};
  /// Consecutive healthy periods required before the policy is re-admitted
  /// (hysteresis against flapping in and out of degradation).
  std::size_t recovery_periods{3};
  /// Discrete levels each device steps toward its minimum per degraded
  /// period. Higher sheds power faster at the cost of a harsher brake.
  std::size_t degrade_step_levels{4};
};

/// Checks the config's domain; throws InvalidArgument naming the offending
/// field. Notably rejects a retry budget of 0 with verification on (a
/// detected mismatch the loop is not allowed to correct) and non-positive
/// deadlines.
[[nodiscard]] FailSafeConfig validated(FailSafeConfig config);

/// Verdict on one control period's power feedback.
enum class SampleVerdict {
  kFresh,     ///< a valid reading from this period
  kHoldover,  ///< reading missing/rejected; last-good served within budget
  kDark,      ///< no usable reading at all
};

/// Screens power readings before they reach the policy.
class SampleValidator {
 public:
  /// `policy_label` labels the rejection metrics. Config must already be
  /// validated (the governor validates the enclosing FailSafeConfig).
  SampleValidator(SampleValidatorConfig config, const std::string& policy_label);

  struct Result {
    SampleVerdict verdict{SampleVerdict::kDark};
    double power{0.0};  ///< meaningful unless verdict == kDark
  };

  /// Reads `meter.average(window)` at time `now`, validates it, and
  /// resolves to fresh / holdover / dark.
  Result ingest(double now, const hal::IPowerMeter& meter, Seconds window);

  [[nodiscard]] std::size_t rejected_nan() const { return rejected_nan_; }
  [[nodiscard]] std::size_t rejected_range() const { return rejected_range_; }
  [[nodiscard]] std::size_t gaps() const { return gaps_; }
  [[nodiscard]] std::size_t holdovers() const { return holdovers_; }

 private:
  SampleValidatorConfig config_;
  bool have_last_good_{false};
  double last_good_time_{0.0};
  double last_good_power_{0.0};
  std::size_t rejected_nan_{0};
  std::size_t rejected_range_{0};
  std::size_t gaps_{0};
  std::size_t holdovers_{0};
  telemetry::Counter* rejected_nan_metric_{nullptr};
  telemetry::Counter* rejected_range_metric_{nullptr};
  telemetry::Counter* gaps_metric_{nullptr};
  telemetry::Counter* holdover_metric_{nullptr};
};

/// Degradation states. Numeric values are exported on the
/// `capgpu_failsafe_state` gauge.
enum class FailSafeState : int {
  kNominal = 0,
  kDegraded = 1,
  kRecovering = 2,
};

/// The watchdog: owns the validator, tracks meter and actuation health
/// against the deadlines, and runs the degradation state machine.
class FailSafeGovernor {
 public:
  /// Validates the config. `policy_label` labels every metric.
  FailSafeGovernor(FailSafeConfig config, const std::string& policy_label);

  /// What the loop should do this period.
  struct Assessment {
    SampleVerdict verdict{SampleVerdict::kDark};
    double power{0.0};  ///< meaningful unless verdict == kDark
    bool act{false};     ///< consult the policy with `power`
    bool degrade{false}; ///< step devices toward minimum instead
  };

  /// Evaluates one control period. Call exactly once per period.
  Assessment assess(double now, const hal::IPowerMeter& meter, Seconds window);

  /// Reports one actuation attempt's outcome for a device (initial issue
  /// or retry; `ok` means applied and, when enabled, read-back verified).
  void note_actuation(double now, std::size_t device, bool ok);

  [[nodiscard]] FailSafeState state() const { return state_; }
  [[nodiscard]] const FailSafeConfig& config() const { return config_; }
  [[nodiscard]] const SampleValidator& validator() const { return validator_; }
  [[nodiscard]] std::size_t engagements() const { return engagements_; }
  [[nodiscard]] std::size_t releases() const { return releases_; }

  /// Why the current (or most recent) degradation engaged: "meter_dark",
  /// "actuation_fail", or "" while nominal before the first engagement.
  /// Kept through DEGRADED and RECOVERING, cleared on release, so each
  /// flight record carries the fault class the governor reacted to.
  [[nodiscard]] const std::string& engage_cause() const { return cause_; }

  /// Seconds since the last accepted-fresh power reading (0 before the
  /// first assess). Feeds the rack coordinator's stale-report watchdog.
  [[nodiscard]] double seconds_since_fresh(double now) const {
    return primed_ ? now - last_fresh_time_ : 0.0;
  }

 private:
  struct DeviceHealth {
    double last_attempt{-1.0};
    double last_ok{-1.0};
  };
  [[nodiscard]] bool actuation_failing(double now) const;

  FailSafeConfig config_;
  SampleValidator validator_;
  FailSafeState state_{FailSafeState::kNominal};
  bool primed_{false};
  double last_fresh_time_{0.0};
  std::vector<DeviceHealth> devices_;
  std::size_t healthy_streak_{0};
  std::size_t engagements_{0};
  std::size_t releases_{0};
  std::string cause_;

  telemetry::Counter* engagements_metric_{nullptr};
  telemetry::Counter* releases_metric_{nullptr};
  telemetry::Gauge* state_metric_{nullptr};
  int trace_tid_{0};
};

}  // namespace capgpu::core
