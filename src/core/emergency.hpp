// Emergency memory-throttling governor (paper Sec 4.4).
//
// The MPC assumes the cap is reachable by core-frequency adaptation alone;
// the paper notes that when no frequency combination can achieve
// p(k) = Ps, "additional system mechanisms (e.g., memory throttling) must
// be integrated". This governor is that mechanism: a last-resort protection
// layer (akin to BMC firmware, sitting below the HAL) that watches the
// power meter and, when the cap has been persistently violated with the
// controller already railed, drops GPU memory clocks one board at a time.
// Boards are released with hysteresis once headroom returns.
#pragma once

#include <cstddef>

#include "hal/interfaces.hpp"
#include "hw/server_model.hpp"
#include "sim/engine.hpp"
#include "telemetry/metrics.hpp"

namespace capgpu::core {

/// Governor thresholds.
struct EmergencyConfig {
  Seconds check_period{4.0};
  /// Engage after power > cap + engage_margin for `persistence` checks.
  double engage_margin_watts{5.0};
  std::size_t persistence{3};
  /// Release one board when, for `persistence` checks, either power sits
  /// release_margin below the cap, or power is at/under the cap while the
  /// DVFS controller holds at least release_margin of downward slack
  /// (clocks above minimum) — i.e. the frequency loop could absorb the
  /// power the released memory adds back. The margin must cover one
  /// board's memory power step or the governor would oscillate.
  double release_margin_watts{25.0};
};

/// Watches the meter; escalates to memory throttling when frequency-only
/// capping is insufficient.
class EmergencyMemoryGovernor {
 public:
  /// References must outlive the governor. Call start() to arm it.
  EmergencyMemoryGovernor(sim::Engine& engine, hw::ServerModel& server,
                          const hal::IPowerMeter& meter, Watts cap,
                          EmergencyConfig config = {});
  ~EmergencyMemoryGovernor();

  EmergencyMemoryGovernor(const EmergencyMemoryGovernor&) = delete;
  EmergencyMemoryGovernor& operator=(const EmergencyMemoryGovernor&) = delete;

  void start();
  void stop();

  void set_cap(Watts cap) { cap_ = cap; }
  [[nodiscard]] Watts cap() const { return cap_; }

  /// Number of GPUs currently memory-throttled.
  [[nodiscard]] std::size_t throttled_count() const;
  /// Lifetime engage/release event counts.
  [[nodiscard]] std::size_t engagements() const { return engagements_; }
  [[nodiscard]] std::size_t releases() const { return releases_; }

 private:
  void check();
  void engage_one();
  void release_one();
  [[nodiscard]] double dvfs_slack_watts() const;

  sim::Engine* engine_;
  hw::ServerModel* server_;
  const hal::IPowerMeter* meter_;
  Watts cap_;
  EmergencyConfig config_;
  std::size_t over_streak_{0};
  std::size_t under_streak_{0};
  std::size_t engagements_{0};
  std::size_t releases_{0};
  sim::EventId timer_{0};

  // Observability: lifetime engage/release counters, current throttled
  // board count, and instant trace events on the "emergency" track.
  telemetry::Counter* engagements_metric_{nullptr};
  telemetry::Counter* releases_metric_{nullptr};
  telemetry::Gauge* throttled_metric_{nullptr};
  int trace_tid_{0};
};

}  // namespace capgpu::core
