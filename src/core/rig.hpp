// The experiment rig: the paper's hardware testbed, assembled in software.
//
// One call builds the whole stack — server model (Xeon + N V100s), HAL
// (NVML / cpupower / RAPL / ACPI meter), inference streams (one model per
// GPU with a dedicated preprocessing core), the CPU-side feature-selection
// job, and the utilization plumbing between them. Benches construct a fresh
// rig per run (the DES is not resettable) and drive any policy through
// ServerRig::run().
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "baselines/controller_iface.hpp"
#include "control/latency_model.hpp"
#include "control/sysid.hpp"
#include "core/control_loop.hpp"
#include "core/identify.hpp"
#include "hal/fault_injection.hpp"
#include "hal/rapl_sim.hpp"
#include "hal/server_hal.hpp"
#include "hw/server_model.hpp"
#include "sim/engine.hpp"
#include "telemetry/slo.hpp"
#include "telemetry/stats.hpp"
#include "telemetry/timeseries.hpp"
#include "workload/arrivals.hpp"
#include "workload/cpu_load.hpp"
#include "workload/model_zoo.hpp"
#include "workload/pipeline.hpp"

namespace capgpu::core {

/// Rig configuration (defaults reproduce the paper's testbed, Sec 5/6.1).
struct RigConfig {
  /// Inference models, one per GPU (defaults to t1..t3 on 3 V100s).
  std::vector<workload::ModelSpec> models;
  std::size_t preprocess_workers_per_stream{1};
  std::size_t total_cores{40};
  std::size_t controller_cores{1};
  /// Cores for the feature-selection job; 0 = all cores not otherwise used.
  std::size_t cpu_task_cores{0};
  double cpu_task_subset_s_ghz{0.08};
  hal::AcpiPowerMeterParams meter{};
  /// Throughput-normalization window fed to the weight assigner.
  Seconds throughput_window{8.0};
  /// When true, the CPU frequency command also slows the preprocessing
  /// (data-copy) cores. The paper's Sec 6 testbed keeps those cores at the
  /// top P-state and throttles only the CPU-workload cores (Sec 6.3), so
  /// the default is false; the motivation experiment uses package DVFS.
  bool throttle_preprocess_cores{false};
  /// Open-loop serving: when non-empty, every stream is fed by a Poisson
  /// arrival process instead of running saturated. Each schedule point's
  /// rate is a *fraction* of the stream's peak throughput (batch/e_min),
  /// so one schedule describes the offered-load shape for all models.
  std::vector<workload::RatePoint> offered_load;
  /// When set, the control loop sees the HAL through fault-injection
  /// decorators running this plan (chaos experiments); the workload and
  /// physics keep running on the pristine hardware model underneath.
  std::optional<hal::FaultPlan> faults;
  std::uint64_t seed{1};
};

/// One experiment run's schedule and length.
struct RunOptions {
  std::size_t periods{100};
  Watts set_point{900.0};
  ControlLoopConfig loop{};
  /// Set-point changes: period index -> new set point.
  std::map<std::size_t, Watts> set_point_changes;
  /// SLOs applied at period 0: GPU device id (1..N) -> seconds.
  std::map<std::size_t, double> initial_slos;
  /// SLO changes: (period, device, slo_seconds).
  std::vector<std::tuple<std::size_t, std::size_t, double>> slo_changes;
  /// Per-batch latency samples from this period onward feed the
  /// steady-state percentile trackers in RunResult (the paper analyses the
  /// last 80 of 100 periods).
  std::size_t percentile_skip{20};
  /// Error-budget burn-rate alerting on the SLO miss accounting: one
  /// monitor per stream, fed each control period, surfaced as metrics,
  /// trace instants and telemetry::SloRegistry entries (--slo-report-out).
  /// Streams without an active SLO never record and never alert.
  telemetry::SloBurnConfig slo_burn{};
  /// Per-request energy attribution (telemetry::EnergyLedger): integrate
  /// the pristine meter each control period and apportion the joules to
  /// the period's completed batches, finalized into
  /// telemetry::EnergyRegistry entries (--energy-out). Off = the baseline
  /// of the selfperf energy-overhead guard.
  bool energy_attribution{true};
};

/// Per-period traces of one run.
struct RunResult {
  telemetry::TimeSeries power{"power", "W"};
  telemetry::TimeSeries set_point{"set_point", "W"};
  std::vector<telemetry::TimeSeries> device_freqs;      ///< per device
  std::vector<telemetry::TimeSeries> gpu_latency;       ///< mean batch e_i
  std::vector<telemetry::TimeSeries> gpu_slo;           ///< active SLO (0 = none)
  std::vector<telemetry::TimeSeries> gpu_throughput;    ///< img/s
  /// Per-stream, per-pipeline-stage mean request latency each period
  /// (indexed [stream][stage], stage order = workload::kStageNames).
  std::vector<std::vector<telemetry::TimeSeries>> gpu_stage_latency;
  telemetry::TimeSeries cpu_throughput{"cpu_thr", "subsets/s"};
  telemetry::TimeSeries cpu_latency{"cpu_lat", "s"};
  std::vector<telemetry::RatioCounter> slo_misses;      ///< per GPU, per batch
  /// Per-GPU batch-latency distribution over the steady segment
  /// (periods >= RunOptions::percentile_skip): p50/p95/p99 tails.
  std::vector<telemetry::PercentileTracker> gpu_latency_dist;
  std::size_t periods{0};

  /// Loop robustness counters (all zero on a fault-free unhardened run).
  std::size_t held_periods{0};
  std::size_t skipped_periods{0};
  std::size_t actuation_retries{0};
  std::size_t actuation_failures{0};
  std::size_t readback_mismatches{0};
  std::size_t failsafe_engagements{0};
  std::size_t failsafe_releases{0};

  /// Steady-state power stats over the last `periods - skip` periods
  /// (the paper uses the last 80 of 100).
  [[nodiscard]] telemetry::RunningStats steady_power(std::size_t skip) const;
};

/// The assembled testbed.
class ServerRig {
 public:
  explicit ServerRig(RigConfig config = RigConfig{});
  /// Detaches this rig's engine from the global telemetry time source.
  ~ServerRig();

  [[nodiscard]] sim::Engine& engine() { return engine_; }
  [[nodiscard]] hw::ServerModel& server() { return server_; }
  [[nodiscard]] hal::ServerHal& hal() { return *hal_; }
  /// The HAL the control loop drives: the fault wrapper when
  /// RigConfig::faults is set, the pristine HAL otherwise.
  [[nodiscard]] hal::IServerHal& control_hal();
  /// The fault-injection wrapper, or nullptr when RigConfig::faults is
  /// unset (for inspecting injection counters after a chaos run).
  [[nodiscard]] hal::FaultyServerHal* faulty_hal() { return faulty_.get(); }
  [[nodiscard]] hal::RaplSim& rapl() { return rapl_; }
  [[nodiscard]] std::size_t gpu_count() const { return server_.gpu_count(); }
  [[nodiscard]] workload::InferenceStream& stream(std::size_t i);
  [[nodiscard]] workload::CpuTaskSim& cpu_task() { return *cpu_task_; }
  [[nodiscard]] const RigConfig& config() const { return config_; }
  /// This rig's trace "process" id (joins SloRegistry entries and
  /// capgpu_report output back to the event stream).
  [[nodiscard]] int trace_pid() const { return trace_pid_; }

  /// Device frequency ranges in controller layout (0 = CPU, 1.. = GPUs).
  [[nodiscard]] std::vector<control::DeviceRange> device_ranges() const;

  /// Normalized throughput per device over the configured window.
  [[nodiscard]] std::vector<double> normalized_throughputs() const;

  /// Rack-level demand signal in [0, 1]: mean over GPUs of
  /// (pipeline occupancy) * (remaining clock headroom). A server whose
  /// GPUs are busy at low clocks wants more budget (high demand); one
  /// whose GPUs idle between batches — or already run near f_max — gains
  /// little from extra watts (low demand). Feed this to
  /// rack::ServerEndpoint::demand.
  [[nodiscard]] double gpu_demand() const;

  /// Controller-side latency models, one per GPU device id, taken from the
  /// model specs (equivalently obtainable by fitting; see bench fig2b).
  [[nodiscard]] std::map<std::size_t, control::LatencyModel> latency_models() const;

  /// Runs the paper's sysid sweep on this rig (advances simulated time).
  [[nodiscard]] control::IdentifiedModel identify(IdentifyOptions options = {});

  /// Analytic power model straight from the hardware parameters at full
  /// utilization — the "true" plant gains, useful for tests and for benches
  /// that skip the identification sweep.
  [[nodiscard]] control::LinearPowerModel analytic_power_model() const;

  /// Drives `policy` for options.periods control periods and returns the
  /// traces. One run per rig (simulated time is not resettable).
  [[nodiscard]] RunResult run(baselines::IServerPowerController& policy,
                              const RunOptions& options);

 private:
  RigConfig config_;
  sim::Engine engine_;
  hw::ServerModel server_;
  std::unique_ptr<hal::ServerHal> hal_;
  std::unique_ptr<hal::FaultyServerHal> faulty_;
  hal::RaplSim rapl_;
  workload::HostCpuLoad host_load_;
  std::vector<std::unique_ptr<workload::InferenceStream>> streams_;
  std::vector<std::unique_ptr<workload::ArrivalProcess>> arrivals_;
  std::unique_ptr<workload::CpuTaskSim> cpu_task_;
  int trace_pid_{0};
  bool ran_{false};
};

}  // namespace capgpu::core
