#include "core/batching.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "workload/latency_law.hpp"

namespace capgpu::core {

BatchingGovernor::BatchingGovernor(
    sim::Engine& engine, std::vector<workload::InferenceStream*> streams,
    CapGpuController& controller, BatchingConfig config)
    : engine_(&engine),
      streams_(std::move(streams)),
      controller_(&controller),
      config_(config) {
  CAPGPU_REQUIRE(!streams_.empty(), "governor needs at least one stream");
  CAPGPU_REQUIRE(config_.period.value > 0.0, "period must be positive");
  CAPGPU_REQUIRE(config_.min_batch >= 1 &&
                     config_.max_batch >= config_.min_batch,
                 "invalid batch range");
  CAPGPU_REQUIRE(config_.headroom > 0.0 && config_.headroom <= 1.0,
                 "headroom must be in (0, 1]");
  CAPGPU_REQUIRE(config_.slo_margin >= 0.0 && config_.slo_margin < 1.0,
                 "slo_margin must be in [0, 1)");
  CAPGPU_REQUIRE(config_.step >= 1, "step must be >= 1");
}

BatchingGovernor::~BatchingGovernor() { stop(); }

void BatchingGovernor::start() {
  CAPGPU_REQUIRE(timer_ == 0, "governor already started");
  timer_ = engine_->schedule_periodic(config_.period.value, [this] { adjust(); });
}

void BatchingGovernor::stop() {
  if (timer_ != 0) {
    engine_->cancel(timer_);
    timer_ = 0;
  }
}

std::size_t BatchingGovernor::target_batch(std::size_t i) const {
  CAPGPU_REQUIRE(i < streams_.size(), "stream index out of range");
  const auto& model = streams_[i]->model();
  const auto slo = controller_->slo_of(i + 1);
  if (!slo) return config_.max_batch;  // throughput only: amortise harder
  return feasible_batch(model, *slo);
}

std::size_t BatchingGovernor::feasible_batch(
    const workload::ModelSpec& model, double slo_seconds) const {
  const double target = slo_seconds * (1.0 - config_.slo_margin);
  const double f_limit = config_.headroom * model.gpu_f_max.value;
  std::size_t best = config_.min_batch;
  for (std::size_t b = config_.min_batch; b <= config_.max_batch; ++b) {
    const Megahertz floor = workload::frequency_for_latency(
        model.e_min_for_batch(b), model.gpu_f_max, target, model.gamma);
    if (floor.value <= f_limit) best = b;
  }
  return best;
}

double BatchingGovernor::floor_for(std::size_t i, std::size_t batch) const {
  const auto slo = controller_->slo_of(i + 1);
  const auto& model = streams_[i]->model();
  if (!slo) return controller_->mpc().devices()[i + 1].f_min_mhz;
  const double target = *slo * (1.0 - config_.slo_margin);
  const Megahertz floor = workload::frequency_for_latency(
      model.e_min_for_batch(batch), model.gpu_f_max, target, model.gamma);
  const auto& range = controller_->mpc().devices()[i + 1];
  return std::clamp(floor.value, range.f_min_mhz, range.f_max_mhz);
}

double BatchingGovernor::floor_power(
    const std::vector<std::size_t>& batches) const {
  const auto& model = controller_->mpc().model();
  const auto& devices = controller_->mpc().devices();
  double p = model.offset();
  p += model.gain(0) * devices[0].f_min_mhz;  // CPU at its minimum
  for (std::size_t i = 0; i < streams_.size(); ++i) {
    p += model.gain(i + 1) * floor_for(i, batches[i]);
  }
  return p;
}

void BatchingGovernor::adjust() {
  // Compute per-stream targets, then trim them until the power implied by
  // the SLO floors leaves room under the cap — otherwise batching up
  // would corner the MPC (hard floors above the budget).
  std::vector<std::size_t> targets(streams_.size());
  for (std::size_t i = 0; i < streams_.size(); ++i) {
    targets[i] = target_batch(i);
  }
  const double budget =
      config_.power_guard * controller_->set_point().value;
  for (int guard = 0; guard < 512 && floor_power(targets) > budget;
       ++guard) {
    // Trim the stream whose floor is highest and can still shrink.
    std::size_t pick = streams_.size();
    double worst_floor = -1.0;
    for (std::size_t i = 0; i < streams_.size(); ++i) {
      if (targets[i] > config_.min_batch &&
          floor_for(i, targets[i]) > worst_floor) {
        worst_floor = floor_for(i, targets[i]);
        pick = i;
      }
    }
    if (pick == streams_.size()) break;  // nothing left to trim
    --targets[pick];
  }

  for (std::size_t i = 0; i < streams_.size(); ++i) {
    auto& stream = *streams_[i];
    const std::size_t current = stream.batch_size();
    const std::size_t target = targets[i];
    if (target == current) continue;

    // Step toward the target (bounded change per adjustment), except when
    // the current batch is SLO-infeasible — then jump straight down.
    std::size_t next = current;
    if (target > current) {
      next = std::min(current + config_.step, target);
    } else {
      const auto slo = controller_->slo_of(i + 1);
      const bool infeasible =
          slo && feasible_batch(stream.model(), *slo) < current;
      next = infeasible ? target : std::max(current - config_.step, target);
    }
    stream.set_batch_size(next);
    const std::size_t applied = stream.batch_size();  // queue-clamped
    controller_->update_latency_model(
        i + 1, control::LatencyModel(
                   stream.model().e_min_for_batch(applied),
                   stream.model().gpu_f_max, stream.model().gamma));
    // The batch change moves power without a frequency move: keep it out
    // of the adaptive estimator's next sample.
    controller_->invalidate_adaptation_sample();
    ++adjustments_;
  }
}

}  // namespace capgpu::core
