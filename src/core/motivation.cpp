#include "core/motivation.hpp"

#include "common/rng.hpp"
#include "hal/server_hal.hpp"
#include "hw/server_model.hpp"
#include "sim/engine.hpp"
#include "workload/cpu_load.hpp"
#include "workload/model_zoo.hpp"
#include "workload/pipeline.hpp"

namespace capgpu::core {

MotivationRow run_motivation_config(std::string label, Megahertz cpu_freq,
                                    Megahertz gpu_freq,
                                    MotivationConfig config) {
  sim::Engine engine;
  hw::ServerModel server = hw::ServerModel::rtx3090_workstation();
  Rng rng(config.seed);
  hal::ServerHal hal(engine, server, hal::AcpiPowerMeterParams{}, rng.split());
  workload::HostCpuLoad load(server.cpu(), config.host_cores);
  load.add_always_busy_cores(1);  // the GPU-bound consumer process

  workload::StreamParams sp;
  sp.model = workload::googlenet_rtx3090();
  sp.n_preprocess_workers = config.workers;
  sp.queue_capacity = config.queue_capacity;
  workload::InferenceStream stream(engine, server, 0, sp, rng.split());
  stream.on_worker_compute_change = [&load](int d) {
    load.worker_compute_delta(d);
  };

  hal.cpu().set_frequency(cpu_freq);
  hal.gpu(0).set_application_clocks(hal.gpu(0).memory_clock(), gpu_freq);
  stream.start();

  engine.run_until(config.warmup.value);
  engine.run_until(config.warmup.value + config.measure.value);

  const double now = engine.now();
  const double window = config.measure.value;
  MotivationRow row;
  row.label = std::move(label);
  row.cpu_ghz = hal.cpu().frequency().value / 1000.0;
  row.gpu_mhz = hal.gpu(0).core_clock().value;
  row.preprocess_s_per_img = stream.preprocess_latency().mean(now, window);
  row.gpu_s_per_batch = stream.batch_latency().mean(now, window);
  row.queue_s_per_img = stream.queue_delay().mean(now, window);
  row.throughput_img_s = stream.images_throughput().rate(now, window);
  row.power_w = hal.power_meter().average(Seconds{window}).value;
  return row;
}

}  // namespace capgpu::core
