#include "core/emergency.hpp"

#include "common/error.hpp"
#include "common/log.hpp"
#include "telemetry/metric_names.hpp"
#include "telemetry/trace.hpp"

namespace capgpu::core {

EmergencyMemoryGovernor::EmergencyMemoryGovernor(sim::Engine& engine,
                                                 hw::ServerModel& server,
                                                 const hal::IPowerMeter& meter,
                                                 Watts cap,
                                                 EmergencyConfig config)
    : engine_(&engine),
      server_(&server),
      meter_(&meter),
      cap_(cap),
      config_(config) {
  CAPGPU_REQUIRE(config_.check_period.value > 0.0,
                 "check period must be positive");
  CAPGPU_REQUIRE(config_.persistence >= 1, "persistence must be >= 1");
  CAPGPU_REQUIRE(config_.release_margin_watts > config_.engage_margin_watts,
                 "release margin must exceed engage margin (hysteresis)");
  auto& registry = telemetry::MetricsRegistry::current();
  engagements_metric_ = &registry.counter(
      telemetry::metric::kEmergencyEngagements,
      "Boards memory-throttled because DVFS alone could not reach the cap");
  releases_metric_ = &registry.counter(
      telemetry::metric::kEmergencyReleases,
      "Memory-throttled boards released after headroom returned");
  throttled_metric_ = &registry.gauge(
      telemetry::metric::kEmergencyThrottledBoards,
      "GPUs currently memory-throttled by the emergency governor");
  trace_tid_ = telemetry::Tracer::current().register_track("emergency");
}

EmergencyMemoryGovernor::~EmergencyMemoryGovernor() { stop(); }

void EmergencyMemoryGovernor::start() {
  CAPGPU_REQUIRE(timer_ == 0, "governor already started");
  timer_ = engine_->schedule_periodic(config_.check_period.value,
                                      [this] { check(); });
}

void EmergencyMemoryGovernor::stop() {
  if (timer_ != 0) {
    engine_->cancel(timer_);
    timer_ = 0;
  }
}

std::size_t EmergencyMemoryGovernor::throttled_count() const {
  std::size_t n = 0;
  for (std::size_t i = 0; i < server_->gpu_count(); ++i) {
    n += server_->gpu(i).memory_throttled();
  }
  return n;
}

void EmergencyMemoryGovernor::check() {
  double power = 0.0;
  try {
    power = meter_->average(config_.check_period).value;
  } catch (const HalError&) {
    return;  // no samples yet
  }

  if (power > cap_.value + config_.engage_margin_watts) {
    ++over_streak_;
    under_streak_ = 0;
    if (over_streak_ >= config_.persistence) {
      engage_one();
      over_streak_ = 0;
    }
    return;
  }

  // Release path: raw headroom, or "the DVFS loop has enough downward
  // slack to absorb what releasing a board adds back" (a converged capping
  // loop sits exactly at the cap, so raw headroom alone would deadlock the
  // throttle).
  const bool headroom = power < cap_.value - config_.release_margin_watts;
  const bool slack = power <= cap_.value + config_.engage_margin_watts &&
                     dvfs_slack_watts() > config_.release_margin_watts;
  if (headroom || slack) {
    ++under_streak_;
    over_streak_ = 0;
    if (under_streak_ >= config_.persistence) {
      release_one();
      under_streak_ = 0;
    }
  } else {
    over_streak_ = 0;
    under_streak_ = 0;
  }
}

double EmergencyMemoryGovernor::dvfs_slack_watts() const {
  // Power the frequency loop could still shed by driving every device to
  // its minimum level at the current utilization — exact within the
  // hardware model (a BMC knows its own boards).
  double slack = server_->cpu().power().value -
                 server_->cpu()
                     .power_at(server_->cpu().freqs().min(),
                               server_->cpu().utilization())
                     .value;
  for (std::size_t i = 0; i < server_->gpu_count(); ++i) {
    const auto& gpu = server_->gpu(i);
    slack += gpu.power().value -
             gpu.power_at(gpu.freqs().min(), gpu.utilization()).value;
  }
  return slack;
}

void EmergencyMemoryGovernor::engage_one() {
  // Throttle the hungriest unthrottled board first.
  std::size_t pick = server_->gpu_count();
  double max_power = -1.0;
  for (std::size_t i = 0; i < server_->gpu_count(); ++i) {
    auto& gpu = server_->gpu(i);
    if (!gpu.memory_throttled() && gpu.power().value > max_power) {
      max_power = gpu.power().value;
      pick = i;
    }
  }
  if (pick == server_->gpu_count()) return;  // everything already throttled
  server_->gpu(pick).set_memory_throttled(true);
  ++engagements_;
  engagements_metric_->inc();
  throttled_metric_->set(static_cast<double>(throttled_count()));
  auto& tracer = telemetry::Tracer::current();
  if (tracer.enabled()) {
    tracer.instant(trace_tid_, "emergency_engage", "protection",
                   {{"gpu", server_->gpu(pick).name()},
                    {"cap_w", cap_.value},
                    {"throttled", static_cast<double>(throttled_count())}});
  }
  CAPGPU_LOG_WARN << "emergency governor: memory-throttling "
                  << server_->gpu(pick).name() << " (cap " << cap_.value
                  << " W unreachable by DVFS alone)";
}

void EmergencyMemoryGovernor::release_one() {
  // Release in reverse preference: the least power-hungry throttled board.
  std::size_t pick = server_->gpu_count();
  double min_power = 1e300;
  for (std::size_t i = 0; i < server_->gpu_count(); ++i) {
    auto& gpu = server_->gpu(i);
    if (gpu.memory_throttled() && gpu.power().value < min_power) {
      min_power = gpu.power().value;
      pick = i;
    }
  }
  if (pick == server_->gpu_count()) return;  // nothing throttled
  server_->gpu(pick).set_memory_throttled(false);
  ++releases_;
  releases_metric_->inc();
  throttled_metric_->set(static_cast<double>(throttled_count()));
  auto& tracer = telemetry::Tracer::current();
  if (tracer.enabled()) {
    tracer.instant(trace_tid_, "emergency_release", "protection",
                   {{"gpu", server_->gpu(pick).name()},
                    {"throttled", static_cast<double>(throttled_count())}});
  }
  CAPGPU_LOG_INFO << "emergency governor: released "
                  << server_->gpu(pick).name();
}

}  // namespace capgpu::core
