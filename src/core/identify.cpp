#include "core/identify.hpp"

#include "common/error.hpp"

namespace capgpu::core {

control::IdentifiedModel run_system_identification(sim::Engine& engine,
                                                   hal::ServerHal& hal,
                                                   IdentifyOptions options) {
  CAPGPU_REQUIRE(options.levels_per_device >= 2,
                 "need at least two levels per sweep");
  const std::size_t n = hal.device_count();
  control::SystemIdentifier identifier(n);

  auto hold_level = [&](std::size_t j) {
    const auto& table = hal.device_freqs(DeviceId{static_cast<std::uint32_t>(j)});
    const double f = table.min().value +
                     options.hold_fraction *
                         (table.max().value - table.min().value);
    return Megahertz{f};
  };

  // Park every device at its hold level first.
  for (std::size_t j = 0; j < n; ++j) {
    hal.set_device_frequency(DeviceId{static_cast<std::uint32_t>(j)},
                             hold_level(j));
  }
  engine.run_until(engine.now() + options.settle.value);

  for (std::size_t swept = 0; swept < n; ++swept) {
    const DeviceId swept_id{static_cast<std::uint32_t>(swept)};
    const auto& table = hal.device_freqs(swept_id);
    for (std::size_t level = 0; level < options.levels_per_device; ++level) {
      const double frac = static_cast<double>(level) /
                          static_cast<double>(options.levels_per_device - 1);
      const Megahertz target{table.min().value +
                             frac * (table.max().value - table.min().value)};
      hal.set_device_frequency(swept_id, target);
      engine.run_until(engine.now() + options.settle.value);
      engine.run_until(engine.now() + options.measure.value);

      std::vector<double> freqs(n);
      for (std::size_t j = 0; j < n; ++j) {
        freqs[j] =
            hal.device_frequency(DeviceId{static_cast<std::uint32_t>(j)}).value;
      }
      identifier.add_sample(freqs, hal.power_meter().average(options.measure));
    }
    // Return the swept device to its hold level before the next sweep.
    hal.set_device_frequency(swept_id, hold_level(swept));
    engine.run_until(engine.now() + options.settle.value);
  }
  return identifier.fit();
}

}  // namespace capgpu::core
