// The system-identification procedure (paper Sec 4.2, "Example").
//
// With the workload running, each device's frequency is swept through a set
// of levels while all other devices hold a fixed level; at every operating
// point the loop settles, then records the average power over one control
// period. The collected (F, p) pairs go through least squares to produce
// the LinearPowerModel the controllers consume.
#pragma once

#include "control/sysid.hpp"
#include "hal/server_hal.hpp"
#include "sim/engine.hpp"

namespace capgpu::core {

/// Sweep options.
struct IdentifyOptions {
  /// Levels per device sweep (spread uniformly across the device range).
  std::size_t levels_per_device{6};
  /// Settle time after each frequency change before measuring.
  Seconds settle{8.0};
  /// Measurement window (one control period).
  Seconds measure{4.0};
  /// Frequencies the non-swept devices hold, as a fraction of their range
  /// (the paper holds the CPU at 1.4 GHz while sweeping the GPU: ~0.3).
  double hold_fraction{0.3};
};

/// Runs the sweep on the simulated server (advances simulation time) and
/// fits the affine power model. Returns the identified model with its R^2.
[[nodiscard]] control::IdentifiedModel run_system_identification(
    sim::Engine& engine, hal::ServerHal& hal, IdentifyOptions options = {});

}  // namespace capgpu::core
