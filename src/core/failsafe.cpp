#include "core/failsafe.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/log.hpp"
#include "telemetry/metric_names.hpp"
#include "telemetry/trace.hpp"

namespace capgpu::core {

FailSafeConfig validated(FailSafeConfig config) {
  CAPGPU_REQUIRE(std::isfinite(config.validator.min_power_watts) &&
                     std::isfinite(config.validator.max_power_watts),
                 "validator power bounds must be finite");
  CAPGPU_REQUIRE(
      config.validator.max_power_watts > config.validator.min_power_watts,
      "validator max power must exceed min power");
  CAPGPU_REQUIRE(config.validator.max_holdover.value >= 0.0,
                 "max_holdover must be >= 0");
  CAPGPU_REQUIRE(config.retry_backoff.value >= 0.0,
                 "retry_backoff must be >= 0");
  CAPGPU_REQUIRE(!(config.verify_readback && config.retry_budget == 0),
                 "read-back verification needs a retry budget >= 1 "
                 "(a detected mismatch must be correctable)");
  CAPGPU_REQUIRE(config.meter_dark_deadline.value > 0.0,
                 "meter_dark_deadline must be positive");
  CAPGPU_REQUIRE(config.actuation_fail_deadline.value > 0.0,
                 "actuation_fail_deadline must be positive");
  CAPGPU_REQUIRE(config.recovery_periods >= 1,
                 "recovery_periods must be >= 1 (hysteresis)");
  CAPGPU_REQUIRE(config.degrade_step_levels >= 1,
                 "degrade_step_levels must be >= 1");
  return config;
}

SampleValidator::SampleValidator(SampleValidatorConfig config,
                                 const std::string& policy_label)
    : config_(config) {
  auto& registry = telemetry::MetricsRegistry::current();
  namespace metric = telemetry::metric;
  const char* reject_help =
      "Power readings rejected before reaching the policy";
  rejected_nan_metric_ = &registry.counter(
      metric::kSamplesRejected, reject_help,
      {{"policy", policy_label}, {"reason", "nan"}});
  rejected_range_metric_ = &registry.counter(
      metric::kSamplesRejected, reject_help,
      {{"policy", policy_label}, {"reason", "range"}});
  gaps_metric_ = &registry.counter(
      metric::kSamplesRejected, reject_help,
      {{"policy", policy_label}, {"reason", "no_data"}});
  holdover_metric_ = &registry.counter(
      metric::kSampleHoldovers,
      "Periods served from the bounded-age last-good power reading",
      {{"policy", policy_label}});
}

SampleValidator::Result SampleValidator::ingest(double now,
                                                const hal::IPowerMeter& meter,
                                                Seconds window) {
  bool usable = false;
  double power = 0.0;
  try {
    power = meter.average(window).value;
    if (!std::isfinite(power)) {
      ++rejected_nan_;
      rejected_nan_metric_->inc();
    } else if (power < config_.min_power_watts ||
               power > config_.max_power_watts) {
      ++rejected_range_;
      rejected_range_metric_->inc();
    } else {
      usable = true;
    }
  } catch (const HalError&) {
    // Window held no samples: the meter is stalled or gone. Distinct from
    // a corrupt reading, but handled the same way downstream.
    ++gaps_;
    gaps_metric_->inc();
  }
  if (usable) {
    have_last_good_ = true;
    last_good_time_ = now;
    last_good_power_ = power;
    return {SampleVerdict::kFresh, power};
  }
  if (have_last_good_ &&
      now - last_good_time_ <= config_.max_holdover.value) {
    ++holdovers_;
    holdover_metric_->inc();
    return {SampleVerdict::kHoldover, last_good_power_};
  }
  return {SampleVerdict::kDark, 0.0};
}

FailSafeGovernor::FailSafeGovernor(FailSafeConfig config,
                                   const std::string& policy_label)
    : config_(validated(config)),
      validator_(config_.validator, policy_label) {
  auto& registry = telemetry::MetricsRegistry::current();
  namespace metric = telemetry::metric;
  const telemetry::Labels by_policy{{"policy", policy_label}};
  engagements_metric_ = &registry.counter(
      metric::kFailsafeEngagements,
      "Fail-safe degradations (meter dark or actuation failing past its "
      "deadline)",
      by_policy);
  releases_metric_ = &registry.counter(
      metric::kFailsafeReleases,
      "Recoveries from fail-safe degradation (policy re-admitted)",
      by_policy);
  state_metric_ = &registry.gauge(
      metric::kFailsafeState,
      "Degradation state: 0 nominal, 1 degraded, 2 recovering", by_policy);
  trace_tid_ = telemetry::Tracer::current().register_track("failsafe");
}

bool FailSafeGovernor::actuation_failing(double now) const {
  for (const auto& h : devices_) {
    if (h.last_attempt < 0.0) continue;           // never actuated
    if (h.last_ok >= h.last_attempt) continue;    // latest attempt succeeded
    if (now - h.last_ok > config_.actuation_fail_deadline.value) return true;
  }
  return false;
}

void FailSafeGovernor::note_actuation(double now, std::size_t device,
                                      bool ok) {
  if (devices_.size() <= device) devices_.resize(device + 1);
  auto& h = devices_[device];
  if (h.last_attempt < 0.0) {
    // First contact: the failure clock starts here, not at sim time 0.
    h.last_ok = now;
  }
  h.last_attempt = now;
  if (ok) h.last_ok = now;
}

FailSafeGovernor::Assessment FailSafeGovernor::assess(
    double now, const hal::IPowerMeter& meter, Seconds window) {
  if (!primed_) {
    primed_ = true;
    last_fresh_time_ = now;  // grace: the dark clock starts at the first period
  }
  const SampleValidator::Result r = validator_.ingest(now, meter, window);
  if (r.verdict == SampleVerdict::kFresh) last_fresh_time_ = now;

  const bool act_failing = actuation_failing(now);
  const bool meter_dark_over =
      now - last_fresh_time_ > config_.meter_dark_deadline.value;
  const bool over_deadline = meter_dark_over || act_failing;
  const bool healthy = r.verdict == SampleVerdict::kFresh && !act_failing;

  auto& tracer = telemetry::Tracer::current();
  switch (state_) {
    case FailSafeState::kNominal:
      if (over_deadline) {
        state_ = FailSafeState::kDegraded;
        // Meter-dark wins the tie, matching the log message below.
        cause_ = meter_dark_over ? "meter_dark" : "actuation_fail";
        ++engagements_;
        engagements_metric_->inc();
        if (tracer.enabled()) {
          tracer.instant(trace_tid_, "failsafe_engage", "protection",
                         {{"meter_dark", meter_dark_over ? 1.0 : 0.0},
                          {"actuation_failing", act_failing ? 1.0 : 0.0}});
        }
        CAPGPU_LOG_WARN << "fail-safe engaged: "
                        << (meter_dark_over ? "meter dark" : "actuation failing")
                        << " past deadline; stepping toward minimum clocks";
      }
      break;
    case FailSafeState::kDegraded:
      if (healthy) {
        state_ = FailSafeState::kRecovering;
        healthy_streak_ = 0;
      }
      break;
    case FailSafeState::kRecovering:
      if (over_deadline) state_ = FailSafeState::kDegraded;  // relapse
      break;
  }
  if (state_ == FailSafeState::kRecovering) {
    if (healthy) {
      if (++healthy_streak_ >= config_.recovery_periods) {
        state_ = FailSafeState::kNominal;
        cause_.clear();
        ++releases_;
        releases_metric_->inc();
        if (tracer.enabled()) {
          tracer.instant(trace_tid_, "failsafe_release", "protection",
                         {{"healthy_periods",
                           static_cast<double>(healthy_streak_)}});
        }
        CAPGPU_LOG_INFO << "fail-safe released: HAL healthy for "
                        << healthy_streak_ << " periods; policy re-admitted";
      }
    } else {
      healthy_streak_ = 0;
    }
  }
  state_metric_->set(static_cast<double>(static_cast<int>(state_)));

  Assessment a;
  a.verdict = r.verdict;
  a.power = r.power;
  a.act = state_ == FailSafeState::kNominal && r.verdict != SampleVerdict::kDark;
  a.degrade = state_ == FailSafeState::kDegraded;
  return a;
}

}  // namespace capgpu::core
