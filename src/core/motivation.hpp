// The motivation experiment (paper Sec 3.2, Table 1).
//
// Emulates the paper's cloud server: ten parallel requests, each pinned to a
// physical core, preprocess GoogLeNet inputs and push tensors into a shared
// queue; a single consumer assembles batches of 20 and runs them on an
// RTX 3090. Three static frequency configurations (CPU-only / GPU-only /
// CapGPU midpoint) are compared on end-to-end metrics.
#pragma once

#include <string>

#include "common/units.hpp"

namespace capgpu::core {

/// Experiment options.
struct MotivationConfig {
  Seconds warmup{60.0};
  Seconds measure{240.0};
  std::size_t workers{10};
  std::size_t host_cores{12};
  std::size_t queue_capacity{20};
  std::uint64_t seed{7};
};

/// One Table 1 row.
struct MotivationRow {
  std::string label;
  double cpu_ghz{0.0};
  double gpu_mhz{0.0};
  double preprocess_s_per_img{0.0};  ///< incl. time blocked on a full queue
  double gpu_s_per_batch{0.0};
  double queue_s_per_img{0.0};
  double throughput_img_s{0.0};
  double power_w{0.0};
};

/// Runs one static-frequency configuration and returns its metrics row.
[[nodiscard]] MotivationRow run_motivation_config(std::string label,
                                                  Megahertz cpu_freq,
                                                  Megahertz gpu_freq,
                                                  MotivationConfig config = {});

}  // namespace capgpu::core
