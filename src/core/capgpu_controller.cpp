#include "core/capgpu_controller.hpp"

#include "common/error.hpp"
#include "common/log.hpp"
#include "telemetry/flight.hpp"

namespace capgpu::core {

CapGpuController::CapGpuController(
    CapGpuConfig config, std::vector<control::DeviceRange> devices,
    control::LinearPowerModel model, Watts set_point,
    std::map<std::size_t, control::LatencyModel> latency_models)
    : mpc_(config.mpc, baselines::validate_devices(std::move(devices)),
           std::move(model), set_point),
      assigner_(config.weights),
      slo_margin_(config.slo_margin),
      latency_models_(std::move(latency_models)) {
  CAPGPU_REQUIRE(slo_margin_ >= 0.0 && slo_margin_ < 1.0,
                 "slo_margin must be in [0, 1)");
  CAPGPU_REQUIRE(config.rls_excitation_watts >= 0.0,
                 "excitation must be >= 0");
  if (config.adaptive) {
    rls_.emplace(mpc_.model(), config.rls);
    excitation_watts_ = config.rls_excitation_watts;
  }
  mpc_.enable_solve_cache(config.mpc_solve_cache);
  priorities_.assign(mpc_.device_count(), 1.0);
  const std::size_t n_cpu = baselines::cpu_count(mpc_.devices());
  for (const auto& [device, lm] : latency_models_) {
    CAPGPU_REQUIRE(device >= n_cpu && device < mpc_.device_count(),
                   "latency model bound to a non-GPU device");
    (void)lm;
  }
}

void CapGpuController::set_slo(std::size_t device, double slo_seconds) {
  auto it = latency_models_.find(device);
  CAPGPU_REQUIRE(it != latency_models_.end(),
                 "no latency model for this device; cannot enforce an SLO");
  // Target slightly under the SLO so jitter around the floor stays legal.
  // When even the margined target is infeasible, fall back to the raw SLO
  // before declaring infeasibility.
  double target = slo_seconds * (1.0 - slo_margin_);
  if (!it->second.feasible(target) && it->second.feasible(slo_seconds)) {
    target = slo_seconds;
  }
  const Megahertz f_min = it->second.min_frequency_for_slo(target);
  const bool ok = mpc_.set_min_frequency_override(device, f_min.value);
  slos_[device] = slo_seconds;
  infeasible_[device] = !ok;
  if (!ok) {
    CAPGPU_LOG_WARN << "SLO " << slo_seconds << "s on device " << device
                    << " is infeasible even at f_max; running flat out";
  }
}

void CapGpuController::set_priority(std::size_t device, double priority) {
  CAPGPU_REQUIRE(device < priorities_.size(), "device index out of range");
  CAPGPU_REQUIRE(priority > 0.0, "priority must be positive");
  priorities_[device] = priority;
}

double CapGpuController::priority(std::size_t device) const {
  CAPGPU_REQUIRE(device < priorities_.size(), "device index out of range");
  return priorities_[device];
}

void CapGpuController::update_latency_model(std::size_t device,
                                            control::LatencyModel model) {
  auto it = latency_models_.find(device);
  CAPGPU_REQUIRE(it != latency_models_.end(),
                 "device has no latency model to update");
  it->second = std::move(model);
  auto slo_it = slos_.find(device);
  if (slo_it != slos_.end()) {
    set_slo(device, slo_it->second);  // re-derive the frequency floor
  }
}

void CapGpuController::clear_slos() {
  mpc_.clear_min_frequency_overrides();
  slos_.clear();
  infeasible_.clear();
}

bool CapGpuController::slo_infeasible(std::size_t device) const {
  auto it = infeasible_.find(device);
  return it != infeasible_.end() && it->second;
}

std::optional<double> CapGpuController::slo_of(std::size_t device) const {
  auto it = slos_.find(device);
  if (it == slos_.end()) return std::nullopt;
  return it->second;
}

void CapGpuController::set_model(control::LinearPowerModel model) {
  if (rls_) {
    rls_.emplace(model, rls_->config());
  }
  mpc_.set_model(std::move(model));
}

std::size_t CapGpuController::adaptation_updates() const {
  return rls_ ? rls_->updates_applied() : 0;
}

void CapGpuController::describe_flight(
    telemetry::FlightRecord& record) const {
  if (last_.target_freqs_mhz.empty()) return;  // no period decided yet
  const std::size_t n = mpc_.device_count();
  telemetry::FlightMpcState& m = record.mpc;
  m.present = true;
  m.fed_power_w = last_fed_;
  m.gains_w_per_mhz = mpc_.model().gains();
  m.offset_w = mpc_.model().offset();
  m.weights = mpc_.control_weights();
  m.f_min_mhz.resize(n);
  m.f_max_mhz.resize(n);
  m.f_lo_mhz.resize(n);
  m.f_hi_mhz.resize(n);
  m.device_kinds.resize(n);
  m.predicted_latency_s.assign(n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    m.f_min_mhz[j] = mpc_.effective_f_min(j);
    m.f_max_mhz[j] = mpc_.effective_f_max(j);
    m.f_lo_mhz[j] = mpc_.devices()[j].f_min_mhz;
    m.f_hi_mhz[j] = mpc_.devices()[j].f_max_mhz;
    m.device_kinds[j] =
        mpc_.devices()[j].kind == DeviceKind::kCpu ? 0 : 1;
    auto it = latency_models_.find(j);
    if (it != latency_models_.end() && j < last_.target_freqs_mhz.size()) {
      m.predicted_latency_s[j] =
          it->second.predict(Megahertz{last_.target_freqs_mhz[j]});
    }
  }
  const control::MpcConfig& cfg = mpc_.config();
  m.prediction_horizon = cfg.prediction_horizon;
  m.control_horizon = cfg.control_horizon;
  m.tracking_weight = cfg.tracking_weight;
  m.reference_decay = cfg.reference_decay;
  m.violation_decay = cfg.violation_decay;
  m.regularization = cfg.regularization;
  m.deltas_mhz = last_.deltas_mhz;
  m.planned_deltas_mhz = last_.planned_deltas_mhz;
  m.predicted_power_w = last_.predicted_power_watts;
  m.predicted_power_horizon_w = last_.predicted_power_horizon_watts;
  m.qp_iterations = last_.qp_iterations;
  m.qp_converged = last_.qp_converged;
  m.cache_hit = last_.cache_hit;
  m.warm_start_hit = last_.warm_start_hit;
  m.fast_path_hit = last_.fast_path_hit;
  m.structured_hit = last_.structured_hit;
  m.qp_objective = last_.qp_objective;
  m.active_set_size = last_.active_set_size;
  m.floor_binding = last_.floor_binding;
  m.ceiling_binding = last_.ceiling_binding;
}

baselines::ControlOutputs CapGpuController::control(
    const baselines::ControlInputs& inputs,
    const std::vector<double>& current_freqs_mhz) {
  CAPGPU_REQUIRE(inputs.normalized_throughput.size() == mpc_.device_count(),
                 "normalized throughput vector size mismatch");

  // Online adaptation (difference model dp = A * dF, paper Eq. 7): refine
  // the gains from the previous period's applied increments and the
  // observed power change.
  if (rls_) {
    if (prev_power_ && prev_freqs_.size() == current_freqs_mhz.size()) {
      std::vector<double> df(current_freqs_mhz.size());
      for (std::size_t j = 0; j < df.size(); ++j) {
        df[j] = current_freqs_mhz[j] - prev_freqs_[j];
      }
      if (rls_->update(df, inputs.measured_power.value - *prev_power_)) {
        mpc_.set_model(rls_->model());
      }
    }
    prev_power_ = inputs.measured_power.value;
    prev_freqs_ = current_freqs_mhz;
  }
  std::vector<double> fresh = assigner_.assign(inputs.normalized_throughput);
  if (last_weights_.size() != fresh.size()) {
    last_weights_ = fresh;
  } else {
    const double alpha = assigner_.config().ema_alpha;
    for (std::size_t j = 0; j < fresh.size(); ++j) {
      last_weights_[j] = alpha * fresh[j] + (1.0 - alpha) * last_weights_[j];
    }
  }
  // Priority scaling: a higher-priority device gets a smaller penalty (it
  // holds its clocks under pressure); applied after smoothing so the EMA
  // state stays priority-independent.
  std::vector<double> weighted = last_weights_;
  for (std::size_t j = 0; j < weighted.size(); ++j) {
    weighted[j] /= priorities_[j];
  }
  mpc_.set_control_weights(assigner_.quantized(std::move(weighted)));
  // PRBS excitation (adaptive mode): perturbing the measurement fed to the
  // MPC is equivalent to wiggling the tracking target, and keeps dF-rich
  // samples flowing to the estimator after the loop settles. set_point()
  // keeps reporting the true cap.
  Watts fed = inputs.measured_power;
  if (excitation_watts_ > 0.0) {
    fed += Watts{excitation_watts_ * static_cast<double>(prbs_.next())};
  }
  last_fed_ = fed.value;
  last_ = mpc_.step(fed, current_freqs_mhz);

  baselines::ControlOutputs out;
  out.target_freqs_mhz = last_.target_freqs_mhz;
  return out;
}

}  // namespace capgpu::core
