#include "core/rig.hpp"

#include <cmath>

#include "common/error.hpp"
#include <algorithm>
#include <optional>
#include "telemetry/energy.hpp"
#include "telemetry/flight.hpp"
#include "telemetry/metric_names.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/runtime.hpp"
#include "telemetry/trace.hpp"
#include "workload/latency_law.hpp"

namespace capgpu::core {

namespace {
RigConfig with_defaults(RigConfig config) {
  if (config.models.empty()) {
    config.models = workload::v100_testbed_models();
  }
  const std::size_t preproc =
      config.models.size() * config.preprocess_workers_per_stream;
  if (config.cpu_task_cores == 0) {
    CAPGPU_REQUIRE(config.total_cores > preproc + config.controller_cores,
                   "no cores left for the CPU workload");
    config.cpu_task_cores =
        config.total_cores - preproc - config.controller_cores;
  }
  return config;
}
}  // namespace

telemetry::RunningStats RunResult::steady_power(std::size_t skip) const {
  return power.stats_from(skip);
}

ServerRig::ServerRig(RigConfig config)
    : config_(with_defaults(std::move(config))),
      server_(hw::ServerModel::v100_testbed(config_.models.size())),
      rapl_(server_.cpu()),
      host_load_(server_.cpu(), config_.total_cores) {
  // Every rig is one trace "process" and, while alive, the virtual-time
  // source for log prefixes and trace timestamps. Must precede HAL and
  // stream construction so their tracks land under this rig's pid.
  telemetry::attach_time_source(this, [eng = &engine_] { return eng->now(); });
  trace_pid_ = telemetry::Tracer::current().begin_run("server_rig");
  Rng rng(config_.seed);
  hal_ = std::make_unique<hal::ServerHal>(engine_, server_, config_.meter,
                                          rng.split());
  if (config_.faults) {
    // Constructed after the inner HAL so the fault layer's mirror capture
    // fires after each inner meter sample (engine FIFO at equal times).
    faulty_ = std::make_unique<hal::FaultyServerHal>(engine_, *hal_,
                                                     *config_.faults);
  }

  // Always-busy cores: controller + the feature-selection job.
  host_load_.add_always_busy_cores(config_.controller_cores +
                                   config_.cpu_task_cores);

  workload::CpuTaskParams task_params;
  task_params.cores = config_.cpu_task_cores;
  task_params.subset_s_ghz = config_.cpu_task_subset_s_ghz;
  cpu_task_ = std::make_unique<workload::CpuTaskSim>(engine_, server_.cpu(),
                                                     task_params, rng.split());
  cpu_task_->start();

  streams_.reserve(config_.models.size());
  for (std::size_t i = 0; i < config_.models.size(); ++i) {
    workload::StreamParams sp;
    sp.model = config_.models[i];
    sp.n_preprocess_workers = config_.preprocess_workers_per_stream;
    sp.open_loop = !config_.offered_load.empty();
    auto stream = std::make_unique<workload::InferenceStream>(
        engine_, server_, i, sp, rng.split());
    stream->on_worker_compute_change = [this](int delta) {
      host_load_.worker_compute_delta(delta);
    };
    if (!config_.throttle_preprocess_cores) {
      const Megahertz pinned = server_.cpu().freqs().max();
      stream->preprocess_frequency = [pinned] { return pinned; };
    }
    stream->start();

    if (sp.open_loop) {
      // Scale the fractional offered-load schedule by this stream's peak
      // throughput to get its absolute arrival rate.
      std::vector<workload::RatePoint> schedule = config_.offered_load;
      const double peak = stream->max_images_per_s();
      for (auto& pt : schedule) pt.rate_per_s *= peak;
      auto arrivals = std::make_unique<workload::ArrivalProcess>(
          engine_, rng.split(), std::move(schedule));
      auto* stream_ptr = stream.get();
      arrivals->on_arrivals = [stream_ptr](const double* times, std::size_t n) {
        stream_ptr->submit_arrivals(times, n);
      };
      arrivals->start();
      arrivals_.push_back(std::move(arrivals));
    }
    streams_.push_back(std::move(stream));
  }
}

ServerRig::~ServerRig() { telemetry::detach_time_source(this); }

hal::IServerHal& ServerRig::control_hal() {
  return faulty_ ? static_cast<hal::IServerHal&>(*faulty_) : *hal_;
}

workload::InferenceStream& ServerRig::stream(std::size_t i) {
  CAPGPU_REQUIRE(i < streams_.size(), "stream index out of range");
  return *streams_[i];
}

std::vector<control::DeviceRange> ServerRig::device_ranges() const {
  std::vector<control::DeviceRange> out;
  out.reserve(server_.device_count());
  {
    control::DeviceRange d;
    d.kind = DeviceKind::kCpu;
    d.f_min_mhz = server_.cpu().freqs().min().value;
    d.f_max_mhz = server_.cpu().freqs().max().value;
    out.push_back(d);
  }
  for (std::size_t i = 0; i < server_.gpu_count(); ++i) {
    control::DeviceRange d;
    d.kind = DeviceKind::kGpu;
    d.f_min_mhz = server_.gpu(i).freqs().min().value;
    d.f_max_mhz = server_.gpu(i).freqs().max().value;
    out.push_back(d);
  }
  return out;
}

std::vector<double> ServerRig::normalized_throughputs() const {
  const double now = engine_.now();
  const double window = config_.throughput_window.value;
  std::vector<double> out;
  out.reserve(1 + streams_.size());
  out.push_back(cpu_task_->throughput().normalized_rate(now, window));
  for (const auto& s : streams_) {
    out.push_back(s->images_throughput().normalized_rate(now, window));
  }
  return out;
}

double ServerRig::gpu_demand() const {
  const double now = engine_.now();
  const double window = config_.throughput_window.value;
  double total = 0.0;
  for (std::size_t i = 0; i < streams_.size(); ++i) {
    const auto& s = *streams_[i];
    const auto& m = s.model();
    // Occupancy: achieved rate vs the capacity at the *current* clock.
    const Megahertz f = server_.gpu(i).core_clock();
    const double capacity =
        static_cast<double>(m.batch_size) /
        workload::latency_at(m.e_min_batch_s, m.gpu_f_max, f, m.gamma);
    const double occupancy = std::min(
        1.0, s.images_throughput().rate(now, window) / capacity);
    // Headroom: how much clock range is left to buy with extra watts.
    const auto& table = server_.gpu(i).freqs();
    const double headroom = (table.max().value - f.value) /
                            (table.max().value - table.min().value);
    total += occupancy * headroom;
  }
  return streams_.empty() ? 0.0 : total / static_cast<double>(streams_.size());
}

std::map<std::size_t, control::LatencyModel> ServerRig::latency_models()
    const {
  std::map<std::size_t, control::LatencyModel> out;
  for (std::size_t i = 0; i < streams_.size(); ++i) {
    const auto& m = streams_[i]->model();
    out.emplace(i + 1,
                control::LatencyModel(m.e_min_batch_s, m.gpu_f_max, m.gamma));
  }
  return out;
}

control::IdentifiedModel ServerRig::identify(IdentifyOptions options) {
  return run_system_identification(engine_, *hal_, options);
}

control::LinearPowerModel ServerRig::analytic_power_model() const {
  // Gains at full utilization; offset collects everything
  // frequency-independent (chassis + idle terms + pinned memory clocks).
  std::vector<double> gains;
  gains.push_back(server_.cpu().params().watts_per_mhz);
  double offset = server_.static_power().value +
                  server_.cpu().params().idle_watts;
  for (std::size_t i = 0; i < server_.gpu_count(); ++i) {
    const auto& p = server_.gpu(i).params();
    gains.push_back(p.watts_per_mhz);
    offset += p.idle_watts + p.memory_watts;
  }
  return control::LinearPowerModel(std::move(gains), offset);
}

RunResult ServerRig::run(baselines::IServerPowerController& policy,
                         const RunOptions& options) {
  CAPGPU_REQUIRE(!ran_, "this rig already executed a run; build a fresh one");
  ran_ = true;
  CAPGPU_REQUIRE(options.periods > 0, "need at least one period");

  policy.set_set_point(options.set_point);

  ControlLoop loop(engine_, control_hal(), rapl_, policy, options.loop,
                   [this] { return normalized_throughputs(); });

  RunResult result;
  const std::size_t n_dev = server_.device_count();
  for (std::size_t j = 0; j < n_dev; ++j) {
    result.device_freqs.emplace_back("f_" + std::to_string(j), "MHz");
  }
  std::vector<double> active_slo(streams_.size(), 0.0);
  std::vector<telemetry::Counter*> slo_checked_metrics;
  std::vector<telemetry::Counter*> slo_missed_metrics;
  std::vector<telemetry::SloBurnMonitor> burn_monitors;
  std::vector<std::vector<telemetry::SloAlertEpisode>> burn_episodes(
      streams_.size());
  std::vector<telemetry::Gauge*> burn_fast_gauges;
  std::vector<telemetry::Gauge*> burn_slow_gauges;
  std::vector<telemetry::Gauge*> burn_active_gauges;
  std::vector<telemetry::Gauge*> budget_gauges;
  std::vector<telemetry::Counter*> burn_alert_counters;
  auto& registry = telemetry::MetricsRegistry::current();
  for (std::size_t i = 0; i < streams_.size(); ++i) {
    const auto& name = streams_[i]->model().name;
    result.gpu_latency.emplace_back(name + "_latency", "s");
    result.gpu_slo.emplace_back(name + "_slo", "s");
    result.gpu_throughput.emplace_back(name + "_thr", "img/s");
    result.gpu_stage_latency.emplace_back();
    for (std::size_t s = 0; s < workload::kStageCount; ++s) {
      result.gpu_stage_latency.back().emplace_back(
          name + "_" + workload::kStageNames[s], "s");
    }
    result.slo_misses.emplace_back();
    result.gpu_latency_dist.emplace_back();
    slo_checked_metrics.push_back(&registry.counter(
        telemetry::metric::kSloChecks,
        "Batches checked against an active SLO", {{"model", name}}));
    slo_missed_metrics.push_back(&registry.counter(
        telemetry::metric::kSloMisses,
        "Batches whose execution latency exceeded the active SLO",
        {{"model", name}}));
    burn_monitors.emplace_back(options.slo_burn);
    burn_fast_gauges.push_back(&registry.gauge(
        telemetry::metric::kSloBurnRate,
        "Error-budget burn rate over the alerting window",
        {{"model", name}, {"window", "fast"}}));
    burn_slow_gauges.push_back(&registry.gauge(
        telemetry::metric::kSloBurnRate,
        "Error-budget burn rate over the alerting window",
        {{"model", name}, {"window", "slow"}}));
    burn_active_gauges.push_back(&registry.gauge(
        telemetry::metric::kSloBurnAlertActive,
        "1 while a burn-rate alert is firing", {{"model", name}}));
    budget_gauges.push_back(&registry.gauge(
        telemetry::metric::kSloBudgetConsumed,
        "Fraction of the lifetime SLO error budget consumed",
        {{"model", name}}));
    burn_alert_counters.push_back(&registry.counter(
        telemetry::metric::kSloBurnAlerts,
        "Burn-rate alerts fired", {{"model", name}}));
  }

  // Schedule: initial SLOs, SLO changes, set-point changes.
  for (const auto& [device, slo] : options.initial_slos) {
    loop.at_period(0, [&policy, &active_slo, device, slo] {
      policy.set_slo(device, slo);
      active_slo.at(device - 1) = slo;
    });
  }
  for (const auto& [period, device, slo] : options.slo_changes) {
    loop.at_period(period, [&policy, &active_slo, device, slo] {
      policy.set_slo(device, slo);
      active_slo.at(device - 1) = slo;
    });
  }
  for (const auto& [period, sp] : options.set_point_changes) {
    loop.at_period(period, [&policy, sp] { policy.set_set_point(sp); });
  }

  const double period_s = options.loop.period.value;

  // Energy attribution: one ledger per run, fed from the *pristine* meter
  // (chaos runs integrate the true plant, not the faulted readings) and the
  // streams' per-batch energy captures.
  std::optional<telemetry::EnergyLedger> ledger;
  double last_meter_w = 0.0;
  if (options.energy_attribution) {
    std::vector<std::string> names;
    names.reserve(streams_.size());
    for (const auto& s : streams_) names.push_back(s->model().name);
    ledger.emplace(policy.name(), trace_pid_, streams_.size(),
                   std::move(names));
    for (auto& s : streams_) s->set_energy_recording(true);
  }

  auto& tracer = telemetry::Tracer::current();
  loop.on_period = [&](std::size_t index) {
    const double now = engine_.now();
    // Late annotation of the period's flight record: the realized mean
    // batch latency per device (index 0 is the CPU, which has none).
    telemetry::FlightRecord* flight =
        telemetry::FlightRecorder::current().pending();
    if (flight != nullptr && flight->period == index &&
        flight->pid == trace_pid_) {
      flight->realized_latency_s.assign(n_dev, 0.0);
    } else {
      flight = nullptr;
    }
    for (std::size_t i = 0; i < streams_.size(); ++i) {
      auto& s = *streams_[i];
      auto& lat = s.batch_latency();
      const double mean_latency = lat.mean(now, period_s);
      if (flight != nullptr) flight->realized_latency_s[i + 1] = mean_latency;
      result.gpu_latency[i].add(now, mean_latency);
      if (index >= options.percentile_skip) {
        lat.visit(now, period_s, [&result, i](double sample) {
          result.gpu_latency_dist[i].add(sample);
        });
      }
      result.gpu_slo[i].add(now, active_slo[i]);
      result.gpu_throughput[i].add(
          now, s.images_throughput().rate(now, period_s));
      const auto stage_means = s.take_stage_period_means();
      for (std::size_t st = 0; st < workload::kStageCount; ++st) {
        result.gpu_stage_latency[i][st].add(now, stage_means[st]);
      }
      if (tracer.enabled()) {
        tracer.counter(
            s.trace_tid(), "stage_latency_s/" + s.model().name, "workload",
            {{workload::kStageNames[0], stage_means[0]},
             {workload::kStageNames[1], stage_means[1]},
             {workload::kStageNames[2], stage_means[2]},
             {workload::kStageNames[3], stage_means[3]}});
      }
      if (active_slo[i] > 0.0) {
        const std::size_t cnt = lat.count(now, period_s);
        const auto misses = static_cast<std::size_t>(
            std::llround(lat.miss_rate(now, period_s, active_slo[i]) *
                         static_cast<double>(cnt)));
        for (std::size_t k = 0; k < cnt; ++k) {
          result.slo_misses[i].add(k < misses);
        }
        slo_checked_metrics[i]->inc(static_cast<double>(cnt));
        slo_missed_metrics[i]->inc(static_cast<double>(misses));

        auto& monitor = burn_monitors[i];
        const auto transition = monitor.record(now, cnt, misses);
        burn_fast_gauges[i]->set(monitor.fast_burn());
        burn_slow_gauges[i]->set(monitor.slow_burn());
        burn_active_gauges[i]->set(monitor.alerting() ? 1.0 : 0.0);
        budget_gauges[i]->set(monitor.budget_consumed());
        if (transition == telemetry::SloBurnMonitor::Transition::kFired) {
          burn_alert_counters[i]->inc();
          burn_episodes[i].push_back({now, 0.0, false});
          tracer.instant(s.trace_tid(), "slo_burn_alert", "slo",
                         {{"model", s.model().name},
                          {"fast_burn", monitor.fast_burn()},
                          {"slow_burn", monitor.slow_burn()}});
        } else if (transition ==
                   telemetry::SloBurnMonitor::Transition::kCleared) {
          auto& episode = burn_episodes[i].back();
          episode.cleared_at_s = now;
          episode.cleared = true;
          tracer.instant(s.trace_tid(), "slo_burn_clear", "slo",
                         {{"model", s.model().name},
                          {"fast_burn", monitor.fast_burn()},
                          {"slow_burn", monitor.slow_burn()}});
        }
      }
      lat.trim(now);
      s.images_throughput().trim(now);
      s.queue_delay().trim(now);
      s.preprocess_latency().trim(now);
    }
    result.cpu_throughput.add(now, cpu_task_->throughput().rate(now, period_s));
    result.cpu_latency.add(now, cpu_task_->subset_latency().mean(now, period_s));
    cpu_task_->throughput().trim(now);
    cpu_task_->subset_latency().trim(now);

    if (ledger) {
      // Integrate the pristine meter over the period. A sensor gap (only
      // possible on exotic meter configs — fault plans wrap, not replace,
      // this meter) holds the previous reading so the integral stays
      // continuous.
      double avg_w = last_meter_w;
      try {
        avg_w = hal_->power_meter().average(Seconds{period_s}).value;
      } catch (const HalError&) {
      }
      last_meter_w = avg_w;
      ledger->begin_period(policy.set_point().value, avg_w, period_s);
      for (std::size_t i = 0; i < streams_.size(); ++i) {
        auto& batches = streams_[i]->energy_batches();
        ledger->add_batches(i, batches.data(), batches.size());
        batches.clear();
      }
      ledger->end_period();
    }
  };

  loop.start();
  const double t_end =
      engine_.now() + static_cast<double>(options.periods) * period_s + 1e-3;
  engine_.run_until(t_end);
  loop.stop();
  // Push any batches deferred since the last control tick into the
  // sketches before the registry is read (exporters, summary, SLO report).
  for (auto& s : streams_) s->flush_stage_stats();

  CAPGPU_ASSERT(loop.periods_elapsed() == options.periods);
  result.power = loop.power_trace();
  result.set_point = loop.set_point_trace();
  for (std::size_t j = 0; j < n_dev; ++j) {
    result.device_freqs[j] = loop.freq_trace(j);
  }
  result.periods = options.periods;
  result.held_periods = loop.held_periods();
  result.skipped_periods = loop.skipped_periods();
  result.actuation_retries = loop.actuation_retries();
  result.actuation_failures = loop.actuation_failures();
  result.readback_mismatches = loop.readback_mismatches();
  if (const auto* fs = loop.failsafe()) {
    result.failsafe_engagements = fs->engagements();
    result.failsafe_releases = fs->releases();
  }

  // Final burn accounting: one SloRegistry entry per stream that had SLO
  // traffic (--slo-report-out renders these).
  for (std::size_t i = 0; i < streams_.size(); ++i) {
    const auto& monitor = burn_monitors[i];
    if (monitor.checked_total() == 0) continue;
    telemetry::SloEntry entry;
    entry.pid = trace_pid_;
    entry.policy = policy.name();
    entry.model = streams_[i]->model().name;
    entry.objective = monitor.config().objective;
    entry.slo_seconds = active_slo[i];
    entry.checked = monitor.checked_total();
    entry.missed = monitor.missed_total();
    entry.budget_consumed = monitor.budget_consumed();
    entry.final_fast_burn = monitor.fast_burn();
    entry.final_slow_burn = monitor.slow_burn();
    entry.alerts = monitor.alerts_fired();
    entry.episodes = std::move(burn_episodes[i]);
    telemetry::SloRegistry::current().add(std::move(entry));
  }

  // Energy accounting: per-{cap,model} attribution entries + per-cap
  // efficiency summaries (--energy-out renders these). Batches completing
  // in the 1 ms run-out after the final control tick fall outside the
  // integrated meter window and are dropped with it.
  if (ledger) {
    for (auto& s : streams_) {
      s->set_energy_recording(false);
      s->energy_batches().clear();
    }
    ledger->finalize(telemetry::EnergyRegistry::current());
  }
  return result;
}

}  // namespace capgpu::core
