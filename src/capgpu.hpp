// Umbrella header: the CapGPU public API in one include.
//
//   #include "capgpu.hpp"
//
// Brings in the controller stack (CapGPU + baselines), the experiment rig,
// the governors, rack coordination, and telemetry. HAL backends and the
// simulation substrate are included so quickstart-style programs need
// nothing else; fine-grained consumers can include individual headers.
#pragma once

#include "common/error.hpp"
#include "common/log.hpp"
#include "common/options.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "common/version.hpp"

#include "linalg/cholesky.hpp"
#include "linalg/eig.hpp"
#include "linalg/lu.hpp"
#include "linalg/matrix.hpp"
#include "linalg/qr.hpp"

#include "control/delta_sigma.hpp"
#include "control/latency_model.hpp"
#include "control/mpc.hpp"
#include "control/power_model.hpp"
#include "control/rls.hpp"
#include "control/stability.hpp"
#include "control/sysid.hpp"
#include "control/weights.hpp"

#include "baselines/controller_iface.hpp"
#include "baselines/cpu_only.hpp"
#include "baselines/cpu_plus_gpu.hpp"
#include "baselines/fixed_step.hpp"
#include "baselines/gpu_only.hpp"
#include "baselines/safe_fixed_step.hpp"

#include "core/batching.hpp"
#include "core/capgpu_controller.hpp"
#include "core/control_loop.hpp"
#include "core/emergency.hpp"
#include "core/identify.hpp"
#include "core/motivation.hpp"
#include "core/rig.hpp"
#include "core/thermal_governor.hpp"

#include "rack/coordinator.hpp"

#include "telemetry/audit.hpp"
#include "telemetry/csv.hpp"
#include "telemetry/stats.hpp"
#include "telemetry/table.hpp"
#include "telemetry/timeseries.hpp"

#include "workload/arrivals.hpp"
#include "workload/dataset_io.hpp"
#include "workload/feature_selection.hpp"
#include "workload/model_zoo.hpp"
#include "workload/pipeline.hpp"
#include "workload/trace_gen.hpp"
