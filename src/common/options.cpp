#include "common/options.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace capgpu {

Options::Options(int argc, const char* const* argv,
                 const std::vector<std::string>& known) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const auto eq = body.find('=');
    const std::string key = body.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? std::string{} : body.substr(eq + 1);
    if (std::find(known.begin(), known.end(), key) == known.end()) {
      throw InvalidArgument("unknown option --" + key);
    }
    values_[key] = value;
  }
}

bool Options::has(const std::string& key) const {
  return values_.count(key) > 0;
}

std::optional<std::string> Options::get(const std::string& key) const {
  auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

double Options::get_double(const std::string& key, double fallback) const {
  const auto v = get(key);
  if (!v) return fallback;
  try {
    std::size_t pos = 0;
    const double parsed = std::stod(*v, &pos);
    CAPGPU_REQUIRE(pos == v->size(), "trailing characters");
    return parsed;
  } catch (const std::exception&) {
    throw InvalidArgument("option --" + key + " expects a number, got '" +
                          *v + "'");
  }
}

long Options::get_long(const std::string& key, long fallback) const {
  const auto v = get(key);
  if (!v) return fallback;
  try {
    std::size_t pos = 0;
    const long parsed = std::stol(*v, &pos);
    CAPGPU_REQUIRE(pos == v->size(), "trailing characters");
    return parsed;
  } catch (const std::exception&) {
    throw InvalidArgument("option --" + key + " expects an integer, got '" +
                          *v + "'");
  }
}

std::string Options::get_string(const std::string& key,
                                const std::string& fallback) const {
  return get(key).value_or(fallback);
}

std::map<std::string, std::string> extract_flags(
    int& argc, char** argv, const std::vector<std::string>& keys) {
  std::map<std::string, std::string> values;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::string* matched = nullptr;
    std::string value;
    for (const std::string& key : keys) {
      const std::string flag = "--" + key;
      if (arg == flag) {
        if (i + 1 >= argc) {
          throw InvalidArgument("option " + flag + " expects a value");
        }
        matched = &key;
        value = argv[++i];
        break;
      }
      if (arg.rfind(flag + "=", 0) == 0) {
        matched = &key;
        value = arg.substr(flag.size() + 1);
        break;
      }
    }
    if (matched == nullptr) {
      argv[kept++] = argv[i];
      continue;
    }
    if (value.empty()) {
      throw InvalidArgument("option --" + *matched +
                            " expects a non-empty value");
    }
    if (!values.emplace(*matched, value).second) {
      throw InvalidArgument("duplicate option --" + *matched);
    }
  }
  argc = kept;
  argv[argc] = nullptr;
  return values;
}

}  // namespace capgpu
