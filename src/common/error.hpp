// Error handling primitives shared by every CapGPU module.
//
// Policy (follows the C++ Core Guidelines): exceptional conditions that a
// caller cannot reasonably be expected to handle locally throw exceptions
// derived from `capgpu::Error`; programming errors (violated preconditions)
// abort via CAPGPU_ASSERT so they are caught in development and tests.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

namespace capgpu {

/// Root of the CapGPU exception hierarchy.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// An argument or configuration value was outside its documented domain.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// A numerical routine failed to converge or met a singular system.
class NumericalError : public Error {
 public:
  explicit NumericalError(const std::string& what) : Error(what) {}
};

/// The requested control problem has no feasible solution (e.g. an SLO set
/// that no frequency assignment can satisfy).
class InfeasibleError : public Error {
 public:
  explicit InfeasibleError(const std::string& what) : Error(what) {}
};

/// A HAL backend failed (device unreachable, file missing, ...).
class HalError : public Error {
 public:
  explicit HalError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line) {
  throw Error(std::string("assertion failed: ") + expr + " at " + file + ":" +
              std::to_string(line));
}
}  // namespace detail

}  // namespace capgpu

/// Precondition check that stays enabled in release builds: simulations are
/// cheap relative to the cost of silently corrupt control decisions.
#define CAPGPU_ASSERT(expr)                                          \
  do {                                                               \
    if (!(expr)) {                                                   \
      ::capgpu::detail::assert_fail(#expr, __FILE__, __LINE__);      \
    }                                                                \
  } while (false)

/// Throw InvalidArgument with a formatted message when `expr` is false.
#define CAPGPU_REQUIRE(expr, msg)                                    \
  do {                                                               \
    if (!(expr)) {                                                   \
      throw ::capgpu::InvalidArgument(std::string(msg) + " (" #expr ")"); \
    }                                                                \
  } while (false)
