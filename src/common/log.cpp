#include "common/log.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace capgpu {

namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_sink_mutex;
Log::Sink& sink_storage() {
  static Log::Sink sink;
  return sink;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

void Log::set_level(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel Log::level() { return static_cast<LogLevel>(g_level.load()); }

void Log::set_sink(Sink sink) {
  std::lock_guard lock(g_sink_mutex);
  sink_storage() = std::move(sink);
}

void Log::write(LogLevel level, const std::string& message) {
  std::lock_guard lock(g_sink_mutex);
  if (auto& sink = sink_storage()) {
    sink(level, message);
  } else {
    std::cerr << "[capgpu " << level_name(level) << "] " << message << '\n';
  }
}

}  // namespace capgpu
