#include "common/log.hpp"

#include <atomic>
#include <cstdio>
#include <iostream>
#include <memory>
#include <mutex>

namespace capgpu {

namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};

// The sink is swapped as a shared_ptr under a mutex and invoked from a
// local copy, so a writer racing a set_sink either sees the old or the new
// callable — never a half-written one — and a sink that logs recursively
// cannot deadlock.
std::mutex g_config_mutex;

std::shared_ptr<const Log::Sink>& sink_storage() {
  static std::shared_ptr<const Log::Sink> sink;
  return sink;
}

// The time source is per thread: each runner worker prefixes its own
// scenario's virtual time (wired via telemetry::attach_time_source) without
// racing other workers, and the main thread keeps its own clock.
thread_local std::function<double()> t_clock;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

void Log::set_level(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel Log::level() { return static_cast<LogLevel>(g_level.load()); }

void Log::set_sink(Sink sink) {
  auto next = sink ? std::make_shared<const Sink>(std::move(sink)) : nullptr;
  std::lock_guard lock(g_config_mutex);
  sink_storage() = std::move(next);
}

void Log::set_time_source(std::function<double()> now_seconds) {
  t_clock = std::move(now_seconds);
}

void Log::write(LogLevel level, const std::string& message) {
  std::shared_ptr<const Sink> sink;
  {
    std::lock_guard lock(g_config_mutex);
    sink = sink_storage();
  }
  std::string line;
  if (t_clock) {
    char prefix[32];
    std::snprintf(prefix, sizeof prefix, "[t=%.3fs] ", t_clock());
    line = prefix + message;
  } else {
    line = message;
  }
  if (sink && *sink) {
    (*sink)(level, line);
  } else {
    // One formatted insertion keeps concurrent default-sink writers from
    // interleaving mid-line.
    std::cerr << ("[capgpu " + std::string(level_name(level)) + "] " + line +
                  '\n');
  }
}

}  // namespace capgpu
