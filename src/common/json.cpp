#include "common/json.hpp"

#include <cstdlib>
#include <utility>

#include "common/error.hpp"

namespace capgpu::json {

Value::Value(std::string s) : type_(Type::kString), string_(std::move(s)) {}
Value::Value(Array a)
    : type_(Type::kArray), array_(std::make_shared<Array>(std::move(a))) {}
Value::Value(Object o)
    : type_(Type::kObject), object_(std::make_shared<Object>(std::move(o))) {}

bool Value::as_bool() const {
  CAPGPU_REQUIRE(type_ == Type::kBool, "JSON value is not a bool");
  return bool_;
}

double Value::as_number() const {
  CAPGPU_REQUIRE(type_ == Type::kNumber, "JSON value is not a number");
  return number_;
}

const std::string& Value::as_string() const {
  CAPGPU_REQUIRE(type_ == Type::kString, "JSON value is not a string");
  return string_;
}

const Array& Value::as_array() const {
  CAPGPU_REQUIRE(type_ == Type::kArray, "JSON value is not an array");
  return *array_;
}

const Object& Value::as_object() const {
  CAPGPU_REQUIRE(type_ == Type::kObject, "JSON value is not an object");
  return *object_;
}

const Value& Value::at(const std::string& key) const {
  const Object& obj = as_object();
  auto it = obj.find(key);
  CAPGPU_REQUIRE(it != obj.end(), "JSON object has no member '" + key + "'");
  return it->second;
}

bool Value::contains(const std::string& key) const {
  return type_ == Type::kObject && object_->count(key) > 0;
}

double Value::number_or(const std::string& key, double fallback) const {
  if (!contains(key)) return fallback;
  const Value& v = object_->at(key);
  return v.type() == Type::kNumber ? v.as_number() : fallback;
}

std::string Value::string_or(const std::string& key,
                             const std::string& fallback) const {
  if (!contains(key)) return fallback;
  const Value& v = object_->at(key);
  return v.type() == Type::kString ? v.as_string() : fallback;
}

namespace {

class Parser {
 public:
  Parser(const std::string& text, std::size_t pos) : text_(text), pos_(pos) {}

  Value parse_value() {
    skip_ws();
    CAPGPU_REQUIRE(pos_ < text_.size(), err("unexpected end of input"));
    switch (text_[pos_]) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Value(parse_string());
      case 't': expect_word("true"); return Value(true);
      case 'f': expect_word("false"); return Value(false);
      case 'n': expect_word("null"); return Value();
      default: return parse_number();
    }
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  [[nodiscard]] std::size_t pos() const { return pos_; }

 private:
  [[nodiscard]] std::string err(const std::string& what) const {
    return "JSON parse error at offset " + std::to_string(pos_) + ": " + what;
  }

  void expect(char c) {
    CAPGPU_REQUIRE(pos_ < text_.size() && text_[pos_] == c,
                   err(std::string("expected '") + c + "'"));
    ++pos_;
  }

  void expect_word(const char* word) {
    for (const char* p = word; *p; ++p) {
      CAPGPU_REQUIRE(pos_ < text_.size() && text_[pos_] == *p,
                     err(std::string("expected '") + word + "'"));
      ++pos_;
    }
  }

  Value parse_object() {
    expect('{');
    Object obj;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return Value(std::move(obj));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.insert_or_assign(std::move(key), parse_value());
      skip_ws();
      CAPGPU_REQUIRE(pos_ < text_.size(), err("unterminated object"));
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return Value(std::move(obj));
    }
  }

  Value parse_array() {
    expect('[');
    Array arr;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return Value(std::move(arr));
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      CAPGPU_REQUIRE(pos_ < text_.size(), err("unterminated array"));
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return Value(std::move(arr));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      CAPGPU_REQUIRE(pos_ < text_.size(), err("unterminated string"));
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      CAPGPU_REQUIRE(pos_ < text_.size(), err("unterminated escape"));
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          CAPGPU_REQUIRE(pos_ + 4 <= text_.size(), err("short \\u escape"));
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              CAPGPU_REQUIRE(false, err("bad \\u escape"));
            }
          }
          // UTF-8 encode (surrogate pairs unsupported — our writers never
          // emit them; a lone surrogate encodes as-is).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: CAPGPU_REQUIRE(false, err("unknown escape"));
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    bool digits = false;
    auto eat_digits = [&] {
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
        digits = true;
      }
    };
    eat_digits();
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      eat_digits();
    }
    if (digits && pos_ < text_.size() &&
        (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
        ++pos_;
      }
      eat_digits();
    }
    CAPGPU_REQUIRE(digits, err("expected a value"));
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    CAPGPU_REQUIRE(end != nullptr && *end == '\0', err("bad number"));
    return Value(v);
  }

  const std::string& text_;
  std::size_t pos_;
};

}  // namespace

Value parse(const std::string& text) {
  std::size_t pos = 0;
  Value v = parse_prefix(text, pos);
  Parser tail(text, pos);
  tail.skip_ws();
  CAPGPU_REQUIRE(tail.pos() == text.size(),
                 "trailing content after JSON document at offset " +
                     std::to_string(tail.pos()));
  return v;
}

Value parse_prefix(const std::string& text, std::size_t& pos) {
  Parser parser(text, pos);
  Value v = parser.parse_value();
  pos = parser.pos();
  return v;
}

}  // namespace capgpu::json
