// Deterministic random number generation.
//
// All stochastic elements of the simulator (sensor noise, workload jitter,
// trace synthesis) draw from seeded xoshiro256++ streams so that every bench
// and test is reproducible bit-for-bit across platforms. We deliberately do
// not use the std <random> distributions, whose outputs are
// implementation-defined.
#pragma once

#include <array>
#include <cstdint>

namespace capgpu {

/// xoshiro256++ PRNG (Blackman & Vigna). Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit words of state from `seed` via SplitMix64, which
  /// guarantees a well-mixed nonzero state for any seed value.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  /// Next raw 64-bit output.
  std::uint64_t next_u64();
  result_type operator()() { return next_u64(); }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n).
  std::uint64_t uniform_index(std::uint64_t n);

  /// Standard normal deviate via the Marsaglia polar method (deterministic,
  /// unlike std::normal_distribution).
  double normal();

  /// Normal deviate with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Exponential deviate with the given rate (mean 1/rate).
  double exponential(double rate);

  /// Creates an independent stream by jumping this generator's sequence;
  /// used to give each noise source its own decorrelated stream.
  Rng split();

 private:
  std::array<std::uint64_t, 4> state_{};
  double cached_normal_{0.0};
  bool has_cached_normal_{false};
};

}  // namespace capgpu
