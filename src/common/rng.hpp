// Deterministic random number generation.
//
// All stochastic elements of the simulator (sensor noise, workload jitter,
// trace synthesis) draw from seeded xoshiro256++ streams so that every bench
// and test is reproducible bit-for-bit across platforms. We deliberately do
// not use the std <random> distributions, whose outputs are
// implementation-defined.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>

#include "common/error.hpp"

namespace capgpu {

/// xoshiro256++ PRNG (Blackman & Vigna). Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit words of state from `seed` via SplitMix64, which
  /// guarantees a well-mixed nonzero state for any seed value.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  /// Next raw 64-bit output. Inline: the workload hot path draws per
  /// arrival and per preprocess, and the call chain through a separate TU
  /// costs as much as the state update itself.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }
  result_type operator()() { return next_u64(); }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n).
  std::uint64_t uniform_index(std::uint64_t n);

  /// Standard normal deviate via the Marsaglia polar method (deterministic,
  /// unlike std::normal_distribution).
  double normal();

  /// Normal deviate with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Exponential deviate with the given rate (mean 1/rate).
  double exponential(double rate) {
    CAPGPU_ASSERT(rate > 0.0);
    // 1 - uniform() is in (0, 1], so the log is finite.
    return -std::log(1.0 - uniform()) / rate;
  }

  /// Creates an independent stream by jumping this generator's sequence;
  /// used to give each noise source its own decorrelated stream.
  Rng split();

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  double cached_normal_{0.0};
  bool has_cached_normal_{false};
};

}  // namespace capgpu
