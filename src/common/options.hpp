// Minimal command-line option parsing for the example tools.
//
// Supports `--key=value` and `--flag` forms. Unknown keys throw, so typos
// fail loudly. This is deliberately tiny — the examples need a dozen
// options, not a framework.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace capgpu {

/// Parsed `--key[=value]` options plus positional arguments.
class Options {
 public:
  /// Parses argv. `known` lists every accepted key (without the leading
  /// dashes); anything else throws InvalidArgument.
  Options(int argc, const char* const* argv,
          const std::vector<std::string>& known);

  [[nodiscard]] bool has(const std::string& key) const;

  /// Value of --key=value; empty for bare --key; nullopt when absent.
  [[nodiscard]] std::optional<std::string> get(const std::string& key) const;

  /// Typed getters with defaults. Malformed numbers throw InvalidArgument.
  [[nodiscard]] double get_double(const std::string& key, double fallback) const;
  [[nodiscard]] long get_long(const std::string& key, long fallback) const;
  [[nodiscard]] std::string get_string(const std::string& key,
                                       const std::string& fallback) const;
  [[nodiscard]] bool get_flag(const std::string& key) const { return has(key); }

  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace capgpu
