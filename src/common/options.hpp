// Minimal command-line option parsing for the example tools.
//
// Supports `--key=value` and `--flag` forms. Unknown keys throw, so typos
// fail loudly. This is deliberately tiny — the examples need a dozen
// options, not a framework.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace capgpu {

/// Parsed `--key[=value]` options plus positional arguments.
class Options {
 public:
  /// Parses argv. `known` lists every accepted key (without the leading
  /// dashes); anything else throws InvalidArgument.
  Options(int argc, const char* const* argv,
          const std::vector<std::string>& known);

  [[nodiscard]] bool has(const std::string& key) const;

  /// Value of --key=value; empty for bare --key; nullopt when absent.
  [[nodiscard]] std::optional<std::string> get(const std::string& key) const;

  /// Typed getters with defaults. Malformed numbers throw InvalidArgument.
  [[nodiscard]] double get_double(const std::string& key, double fallback) const;
  [[nodiscard]] long get_long(const std::string& key, long fallback) const;
  [[nodiscard]] std::string get_string(const std::string& key,
                                       const std::string& fallback) const;
  [[nodiscard]] bool get_flag(const std::string& key) const { return has(key); }

  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

/// Argv scrubber used by bench::init: extracts every `--key value` /
/// `--key=value` occurrence of the listed keys (no leading dashes in
/// `keys`), compacts argv in place and updates argc, leaving unknown
/// arguments for the bench's own parser (google-benchmark flags etc.).
///
/// Throws InvalidArgument on
///  - a duplicate key (`--metrics-out a --metrics-out b` must not silently
///    drop an output),
///  - an empty value (`--metrics-out=` used to be treated as a real path),
///  - a space-separated key with no value left (`bench --trace-out`).
std::map<std::string, std::string> extract_flags(
    int& argc, char** argv, const std::vector<std::string>& keys);

}  // namespace capgpu
