// Minimal leveled logger.
//
// The simulator and controllers are library code, so logging is off by
// default and routed through a single sink that tests can capture.
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace capgpu {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global logging configuration. Safe under concurrent writers: the sink
/// is swapped atomically (shared_ptr) and invoked outside any lock, so a
/// sink that itself logs or swaps the sink cannot deadlock.
class Log {
 public:
  using Sink = std::function<void(LogLevel, const std::string&)>;

  static void set_level(LogLevel level);
  static LogLevel level();

  /// Replaces the sink (default writes to stderr). Pass nullptr to restore
  /// the default sink.
  static void set_sink(Sink sink);

  /// Registers a clock (e.g. the sim engine's virtual time, in seconds)
  /// for the calling thread. While set, every message written from this
  /// thread is prefixed with "[t=<sec>s]". Pass nullptr to remove the
  /// prefix. Usually wired via telemetry::attach_time_source.
  static void set_time_source(std::function<double()> now_seconds);

  static void write(LogLevel level, const std::string& message);
  static bool enabled(LogLevel level) { return level >= Log::level(); }
};

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Log::write(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace capgpu

#define CAPGPU_LOG(level)                       \
  if (!::capgpu::Log::enabled(level)) {         \
  } else                                        \
    ::capgpu::detail::LogLine(level)

#define CAPGPU_LOG_DEBUG CAPGPU_LOG(::capgpu::LogLevel::kDebug)
#define CAPGPU_LOG_INFO CAPGPU_LOG(::capgpu::LogLevel::kInfo)
#define CAPGPU_LOG_WARN CAPGPU_LOG(::capgpu::LogLevel::kWarn)
#define CAPGPU_LOG_ERROR CAPGPU_LOG(::capgpu::LogLevel::kError)
