// Strong unit types used at API boundaries.
//
// Internal numerical code (linear algebra, QP) works on raw doubles; the
// public interfaces of the HAL, hardware models, and controllers use these
// wrappers so that a Watts value cannot be passed where MHz is expected.
#pragma once

#include <compare>
#include <cstdint>

namespace capgpu {

namespace detail {

/// CRTP-free tagged quantity: a double with an incompatible-type tag.
template <typename Tag>
struct Quantity {
  double value{0.0};

  constexpr Quantity() = default;
  constexpr explicit Quantity(double v) : value(v) {}

  constexpr auto operator<=>(const Quantity&) const = default;

  constexpr Quantity operator+(Quantity o) const { return Quantity{value + o.value}; }
  constexpr Quantity operator-(Quantity o) const { return Quantity{value - o.value}; }
  constexpr Quantity operator*(double s) const { return Quantity{value * s}; }
  constexpr Quantity operator/(double s) const { return Quantity{value / s}; }
  constexpr double operator/(Quantity o) const { return value / o.value; }
  constexpr Quantity& operator+=(Quantity o) { value += o.value; return *this; }
  constexpr Quantity& operator-=(Quantity o) { value -= o.value; return *this; }
};

template <typename Tag>
constexpr Quantity<Tag> operator*(double s, Quantity<Tag> q) {
  return Quantity<Tag>{s * q.value};
}

struct WattsTag {};
struct MegahertzTag {};
struct SecondsTag {};

}  // namespace detail

/// Electrical power in watts.
using Watts = detail::Quantity<detail::WattsTag>;
/// Clock frequency in megahertz (CPU frequencies are stored in MHz too:
/// 2.1 GHz == Megahertz{2100}).
using Megahertz = detail::Quantity<detail::MegahertzTag>;
/// Durations of simulated time, in seconds.
using Seconds = detail::Quantity<detail::SecondsTag>;

constexpr Watts operator""_W(long double v) { return Watts{static_cast<double>(v)}; }
constexpr Watts operator""_W(unsigned long long v) { return Watts{static_cast<double>(v)}; }
constexpr Megahertz operator""_MHz(long double v) { return Megahertz{static_cast<double>(v)}; }
constexpr Megahertz operator""_MHz(unsigned long long v) { return Megahertz{static_cast<double>(v)}; }
constexpr Megahertz operator""_GHz(long double v) { return Megahertz{static_cast<double>(v) * 1000.0}; }
constexpr Megahertz operator""_GHz(unsigned long long v) { return Megahertz{static_cast<double>(v) * 1000.0}; }
constexpr Seconds operator""_s(long double v) { return Seconds{static_cast<double>(v)}; }
constexpr Seconds operator""_s(unsigned long long v) { return Seconds{static_cast<double>(v)}; }

/// Identifier of a controllable device inside one server. Device 0 is the
/// host CPU domain; devices 1..N_g are GPUs, mirroring the paper's
/// F = [f_c, f_g1 ... f_gNg] ordering.
struct DeviceId {
  std::uint32_t index{0};
  constexpr auto operator<=>(const DeviceId&) const = default;
};

/// Kind of a controllable device.
enum class DeviceKind : std::uint8_t { kCpu, kGpu };

}  // namespace capgpu
