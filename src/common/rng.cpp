#include "common/rng.hpp"

#include <cmath>

#include "common/error.hpp"

namespace capgpu {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& w : state_) w = splitmix64(s);
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  CAPGPU_ASSERT(n > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (~n + 1) % n;  // == 2^64 mod n
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % n;
  }
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  for (;;) {
    const double u = uniform(-1.0, 1.0);
    const double v = uniform(-1.0, 1.0);
    const double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      const double factor = std::sqrt(-2.0 * std::log(s) / s);
      cached_normal_ = v * factor;
      has_cached_normal_ = true;
      return u * factor;
    }
  }
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

Rng Rng::split() {
  // xoshiro256++ jump polynomial: advances this generator by 2^128 steps and
  // returns a generator at the pre-jump state, giving two non-overlapping
  // streams.
  static constexpr std::array<std::uint64_t, 4> kJump = {
      0x180EC6D33CFD0ABAULL, 0xD5A61266F0C9392CULL, 0xA9582618E03FC9AAULL,
      0x39ABDC4529B1661CULL};
  Rng child = *this;
  std::array<std::uint64_t, 4> acc{};
  for (const std::uint64_t word : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (word & (std::uint64_t{1} << b)) {
        for (std::size_t i = 0; i < 4; ++i) acc[i] ^= state_[i];
      }
      next_u64();
    }
  }
  state_ = acc;
  return child;
}

}  // namespace capgpu
