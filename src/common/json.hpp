// Minimal recursive-descent JSON parser for the offline tooling
// (tools/capgpu_report reads events.jsonl and the --slo-report-out
// artifact; tests read --summary-out). Parses the full JSON grammar into a
// small value tree; throws InvalidArgument with position info on malformed
// input. Not a performance-critical path — clarity over speed.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace capgpu::json {

class Value;
using Array = std::vector<Value>;
/// Object keys keep insertion order irrelevant for our consumers; a sorted
/// map keeps lookups simple.
using Object = std::map<std::string, Value>;

/// One JSON value (tagged union).
class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() = default;
  explicit Value(bool b) : type_(Type::kBool), bool_(b) {}
  explicit Value(double n) : type_(Type::kNumber), number_(n) {}
  explicit Value(std::string s);
  explicit Value(Array a);
  explicit Value(Object o);

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool is_null() const { return type_ == Type::kNull; }
  [[nodiscard]] bool is_object() const { return type_ == Type::kObject; }
  [[nodiscard]] bool is_array() const { return type_ == Type::kArray; }

  /// Typed accessors; throw InvalidArgument on a type mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;

  /// Object member lookup; throws when not an object or key missing.
  [[nodiscard]] const Value& at(const std::string& key) const;
  /// True when this is an object containing `key`.
  [[nodiscard]] bool contains(const std::string& key) const;

  /// Convenience: member as number/string with a default when absent.
  [[nodiscard]] double number_or(const std::string& key, double fallback) const;
  [[nodiscard]] std::string string_or(const std::string& key,
                                      const std::string& fallback) const;

 private:
  Type type_{Type::kNull};
  bool bool_{false};
  double number_{0.0};
  std::string string_;
  std::shared_ptr<Array> array_;
  std::shared_ptr<Object> object_;
};

/// Parses one JSON document; trailing non-whitespace is an error.
[[nodiscard]] Value parse(const std::string& text);

/// Parses one document from `text` starting at `pos`, advancing `pos` past
/// it (JSONL: call per line, or repeatedly on a concatenated stream).
[[nodiscard]] Value parse_prefix(const std::string& text, std::size_t& pos);

}  // namespace capgpu::json
