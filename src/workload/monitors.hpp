// Throughput and latency monitors (paper Sec 3.1, loop step 2).
//
// Each device's monitor reports the average throughput over the last control
// period; the controller normalizes it by the device's maximum throughput to
// drive weight assignment.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/error.hpp"
#include "sim/engine.hpp"
#include "telemetry/stats.hpp"

namespace capgpu::workload {

/// Flat ring of (time, value) samples backing the monitors.
///
/// Replaces the std::deque sample stores on the request hot path: trim()
/// advances the head without releasing storage, so steady-state record()s
/// land in warm, already-mapped memory and the rolling window cycles
/// through one power-of-two allocation. Scans visit the same elements in
/// the same order as the deque did, so every windowed statistic is
/// bit-identical to the old storage.
class SampleRing {
 public:
  struct Entry {
    sim::SimTime time;
    double value;
  };

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  /// i-th live entry, oldest first (i < size()).
  [[nodiscard]] const Entry& operator[](std::size_t i) const {
    return buf_[(head_ + i) & mask_];
  }

  void push_back(sim::SimTime time, double value) {
    if (size_ == buf_.size()) grow();
    buf_[(head_ + size_) & mask_] = Entry{time, value};
    ++size_;
  }

  void pop_front() {
    head_ = (head_ + 1) & mask_;
    --size_;
  }

 private:
  void grow();

  std::vector<Entry> buf_;
  std::size_t head_{0};
  std::size_t size_{0};
  std::size_t mask_{0};  // buf_.size() - 1 (capacity is a power of two)
};

/// Counts completion events and reports a windowed rate.
class ThroughputMonitor {
 public:
  /// `max_rate` is the device's nominal peak throughput, used for
  /// normalization (e.g. batch_size / e_min for a GPU stream at f_max).
  explicit ThroughputMonitor(double max_rate);

  /// Records `count` completions at simulated time `now`.
  void record(sim::SimTime now, double count = 1.0) {
    CAPGPU_ASSERT(count >= 0.0);
    events_.push_back(now, count);
    total_ += count;
  }

  /// Completions per second over (now - window, now].
  [[nodiscard]] double rate(sim::SimTime now, double window) const;

  /// rate / max_rate, clamped to [0, 1].
  [[nodiscard]] double normalized_rate(sim::SimTime now, double window) const;

  [[nodiscard]] double max_rate() const { return max_rate_; }
  [[nodiscard]] double total() const { return total_; }

  /// Drops events older than `horizon` seconds before `now` (bounds memory;
  /// the backing ring keeps its capacity for reuse).
  void trim(sim::SimTime now, double horizon = 600.0);

 private:
  double max_rate_;
  double total_{0.0};
  SampleRing events_;
};

/// Collects latency samples within a rolling window plus lifetime stats.
class LatencyMonitor {
 public:
  void record(sim::SimTime now, double latency_s) {
    samples_.push_back(now, latency_s);
    lifetime_.add(latency_s);
  }

  /// Mean latency of samples in (now - window, now]; 0 when none.
  [[nodiscard]] double mean(sim::SimTime now, double window) const;
  /// Max latency in the window; 0 when none.
  [[nodiscard]] double max(sim::SimTime now, double window) const;
  /// Number of samples in the window.
  [[nodiscard]] std::size_t count(sim::SimTime now, double window) const;
  /// Fraction of samples in the window exceeding `threshold`; 0 when none.
  [[nodiscard]] double miss_rate(sim::SimTime now, double window,
                                 double threshold) const;

  [[nodiscard]] const telemetry::RunningStats& lifetime() const { return lifetime_; }

  /// Invokes `fn(latency)` for every sample in (now - window, now], oldest
  /// first (percentile extraction, custom aggregation).
  void visit(sim::SimTime now, double window,
             const std::function<void(double)>& fn) const;

  void trim(sim::SimTime now, double horizon = 600.0);

 private:
  SampleRing samples_;
  telemetry::RunningStats lifetime_;
};

}  // namespace capgpu::workload
