// Throughput and latency monitors (paper Sec 3.1, loop step 2).
//
// Each device's monitor reports the average throughput over the last control
// period; the controller normalizes it by the device's maximum throughput to
// drive weight assignment.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "sim/engine.hpp"
#include "telemetry/stats.hpp"

namespace capgpu::workload {

/// Counts completion events and reports a windowed rate.
class ThroughputMonitor {
 public:
  /// `max_rate` is the device's nominal peak throughput, used for
  /// normalization (e.g. batch_size / e_min for a GPU stream at f_max).
  explicit ThroughputMonitor(double max_rate);

  /// Records `count` completions at simulated time `now`.
  void record(sim::SimTime now, double count = 1.0);

  /// Completions per second over (now - window, now].
  [[nodiscard]] double rate(sim::SimTime now, double window) const;

  /// rate / max_rate, clamped to [0, 1].
  [[nodiscard]] double normalized_rate(sim::SimTime now, double window) const;

  [[nodiscard]] double max_rate() const { return max_rate_; }
  [[nodiscard]] double total() const { return total_; }

  /// Drops events older than `horizon` seconds before `now` (bounds memory).
  void trim(sim::SimTime now, double horizon = 600.0);

 private:
  struct Event {
    sim::SimTime time;
    double count;
  };
  double max_rate_;
  double total_{0.0};
  std::deque<Event> events_;
};

/// Collects latency samples within a rolling window plus lifetime stats.
class LatencyMonitor {
 public:
  void record(sim::SimTime now, double latency_s);

  /// Mean latency of samples in (now - window, now]; 0 when none.
  [[nodiscard]] double mean(sim::SimTime now, double window) const;
  /// Max latency in the window; 0 when none.
  [[nodiscard]] double max(sim::SimTime now, double window) const;
  /// Number of samples in the window.
  [[nodiscard]] std::size_t count(sim::SimTime now, double window) const;
  /// Fraction of samples in the window exceeding `threshold`; 0 when none.
  [[nodiscard]] double miss_rate(sim::SimTime now, double window,
                                 double threshold) const;

  [[nodiscard]] const telemetry::RunningStats& lifetime() const { return lifetime_; }

  /// Invokes `fn(latency)` for every sample in (now - window, now], oldest
  /// first (percentile extraction, custom aggregation).
  void visit(sim::SimTime now, double window,
             const std::function<void(double)>& fn) const;

  void trim(sim::SimTime now, double horizon = 600.0);

 private:
  struct Sample {
    sim::SimTime time;
    double latency;
  };
  std::deque<Sample> samples_;
  telemetry::RunningStats lifetime_;
};

}  // namespace capgpu::workload
