// Growable single-ended ring buffer (FIFO) for trivially copyable values.
//
// std::deque pays a chunk map indirection and a division per access; the
// workload hot path only ever needs push_back/front/pop_front of doubles and
// ids, which a flat ring serves with one wrap check. Capacity grows by
// doubling and never shrinks, so steady-state traffic allocates nothing.
#pragma once

#include <cstddef>
#include <type_traits>
#include <vector>

#include "common/error.hpp"

namespace capgpu::workload {

template <typename T>
class Ring {
  static_assert(std::is_trivially_copyable_v<T>,
                "Ring is for plain stamp/id payloads");

 public:
  Ring() = default;

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  /// Grows the backing store to hold at least `n` elements.
  void reserve(std::size_t n) {
    if (n > buf_.size()) regrow(n);
  }

  void push_back(T value) {
    if (size_ == buf_.size()) {
      regrow(buf_.size() < 8 ? 16 : 2 * buf_.size());
    }
    std::size_t slot = head_ + size_;
    if (slot >= buf_.size()) slot -= buf_.size();
    buf_[slot] = value;
    ++size_;
  }

  /// Appends `n` values in order (bulk arrival blocks land in one call).
  void append(const T* values, std::size_t n) {
    while (size_ + n > buf_.size()) {
      regrow(buf_.size() < 8 ? 16 : 2 * buf_.size());
    }
    std::size_t slot = head_ + size_;
    if (slot >= buf_.size()) slot -= buf_.size();
    for (std::size_t i = 0; i < n; ++i) {
      buf_[slot] = values[i];
      if (++slot == buf_.size()) slot = 0;
    }
    size_ += n;
  }

  [[nodiscard]] const T& front() const {
    CAPGPU_ASSERT(size_ > 0);
    return buf_[head_];
  }

  void pop_front() {
    CAPGPU_ASSERT(size_ > 0);
    ++head_;
    if (head_ == buf_.size()) head_ = 0;
    --size_;
  }

 private:
  /// Reallocates to `cap` slots, unwrapping the live span to the front.
  void regrow(std::size_t cap) {
    std::vector<T> next(cap);
    for (std::size_t i = 0; i < size_; ++i) {
      std::size_t slot = head_ + i;
      if (slot >= buf_.size()) slot -= buf_.size();
      next[i] = buf_[slot];
    }
    buf_ = std::move(next);
    head_ = 0;
  }

  std::vector<T> buf_;
  std::size_t head_{0};
  std::size_t size_{0};
};

}  // namespace capgpu::workload
