#include "workload/arrivals.hpp"

#include "common/error.hpp"

namespace capgpu::workload {

ArrivalProcess::ArrivalProcess(sim::Engine& engine, Rng rng,
                               std::vector<RatePoint> schedule)
    : engine_(&engine), rng_(rng), schedule_(std::move(schedule)) {
  CAPGPU_REQUIRE(!schedule_.empty(), "arrival schedule must be non-empty");
  for (std::size_t i = 0; i < schedule_.size(); ++i) {
    CAPGPU_REQUIRE(schedule_[i].rate_per_s >= 0.0, "rates must be >= 0");
    if (i > 0) {
      CAPGPU_REQUIRE(schedule_[i].time_s > schedule_[i - 1].time_s,
                     "schedule times must be strictly increasing");
    }
  }
}

ArrivalProcess::~ArrivalProcess() { stop(); }

double ArrivalProcess::rate_at(double t) const {
  double rate = 0.0;
  for (const auto& pt : schedule_) {
    if (pt.time_s <= t) {
      rate = pt.rate_per_s;
    } else {
      break;
    }
  }
  return rate;
}

void ArrivalProcess::start() {
  CAPGPU_REQUIRE(!started_, "arrival process already started");
  started_ = true;
  if (on_arrivals) {
    generate_chunk();
  } else {
    schedule_next();
  }
}

void ArrivalProcess::stop() {
  if (pending_ != 0) {
    engine_->cancel(pending_);
    pending_ = 0;
  }
  started_ = false;
}

void ArrivalProcess::schedule_next() {
  const double now = engine_->now();
  const double rate = rate_at(now);

  // Find the next schedule change after `now`.
  double next_change = -1.0;
  for (const auto& pt : schedule_) {
    if (pt.time_s > now) {
      next_change = pt.time_s;
      break;
    }
  }

  if (rate <= 0.0) {
    if (next_change < 0.0) return;  // zero rate forever: done
    pending_ = engine_->schedule_at(next_change, [this] { schedule_next(); });
    return;
  }

  const double gap = rng_.exponential(rate);
  const double arrival_time = now + gap;
  if (next_change > 0.0 && arrival_time > next_change) {
    // The rate changes before this arrival would land: re-draw under the
    // new rate from the change point (memorylessness makes this exact).
    pending_ = engine_->schedule_at(next_change, [this] { schedule_next(); });
    return;
  }
  pending_ = engine_->schedule_at(arrival_time, [this] {
    ++arrivals_;
    if (on_arrival) on_arrival();
    schedule_next();
  });
}

void ArrivalProcess::generate_chunk() {
  // Mirrors schedule_next gap for gap — including the draw discarded when
  // an arrival would cross a rate-change point — so bulk mode consumes the
  // RNG stream identically to the per-event path. Only `t` advances here;
  // sim time catches up via the single re-arm event per chunk.
  double t = engine_->now();
  std::size_t count = 0;
  while (count < kChunk) {
    const double rate = rate_at(t);
    double next_change = -1.0;
    for (const auto& pt : schedule_) {
      if (pt.time_s > t) {
        next_change = pt.time_s;
        break;
      }
    }
    if (rate <= 0.0) {
      if (next_change < 0.0) break;  // zero rate forever: done
      t = next_change;
      continue;
    }
    const double gap = rng_.exponential(rate);
    const double arrival_time = t + gap;
    if (next_change > 0.0 && arrival_time > next_change) {
      // Rate changes first: re-draw under the new rate from the change
      // point (memorylessness makes this exact, as in schedule_next).
      t = next_change;
      continue;
    }
    chunk_[count++] = arrival_time;
    t = arrival_time;
  }
  if (count == 0) {
    pending_ = 0;
    return;  // zero rate to the end of the schedule: no more arrivals
  }
  arrivals_ += count;
  on_arrivals(chunk_.data(), count);
  // Re-arm at the last generated arrival: by then every delivered stamp is
  // due and the next chunk continues the gap sequence seamlessly.
  pending_ = engine_->schedule_at(chunk_[count - 1], [this] { generate_chunk(); });
}

}  // namespace capgpu::workload
