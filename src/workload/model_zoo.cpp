#include "workload/model_zoo.hpp"

namespace capgpu::workload {

ModelSpec resnet50_v100() {
  ModelSpec m;
  m.name = "resnet50";
  m.batch_size = 20;
  m.e_min_batch_s = 0.35;
  m.gamma = 0.91;
  m.gpu_f_max = 1350_MHz;
  m.preprocess_s_ghz = 0.035;
  m.gpu_busy_util = 0.90;
  return m;
}

ModelSpec swin_t_v100() {
  ModelSpec m;
  m.name = "swin-t";
  m.batch_size = 20;
  m.e_min_batch_s = 0.55;
  m.gamma = 0.91;
  m.gpu_f_max = 1350_MHz;
  m.preprocess_s_ghz = 0.035;
  m.gpu_busy_util = 0.82;
  return m;
}

ModelSpec vgg16_v100() {
  ModelSpec m;
  m.name = "vgg16";
  m.batch_size = 20;
  m.e_min_batch_s = 0.45;
  m.gamma = 0.91;
  m.gpu_f_max = 1350_MHz;
  m.preprocess_s_ghz = 0.035;
  m.gpu_busy_util = 0.97;
  return m;
}

ModelSpec googlenet_rtx3090() {
  ModelSpec m;
  m.name = "googlenet";
  m.batch_size = 20;
  // Calibrated against Table 1: with gamma = 0.91 and f_max = 1095 MHz this
  // gives ~1.3 s/batch at 810 MHz, ~2.0 at 495, ~1.6 at 660.
  m.e_min_batch_s = 1.75;
  m.gamma = 0.91;
  m.gpu_f_max = 1095_MHz;
  // 10 preprocessing workers at 2.1 GHz supply ~8.6 img/s, matching the
  // motivation experiment's CPU-side capacity.
  m.preprocess_s_ghz = 2.45;
  m.gpu_busy_util = 0.92;
  return m;
}

ModelSpec llm_decode_v100() {
  ModelSpec m;
  m.name = "llm-decode";
  m.batch_size = 16;         // concurrent sequences per decode step
  m.e_min_batch_s = 0.055;   // one decode step at f_max (~290 tok/s)
  m.gamma = 0.55;            // bandwidth-bound: weak core-clock sensitivity
  m.gpu_f_max = 1350_MHz;
  m.preprocess_s_ghz = 0.002;  // tokenization is cheap
  m.gpu_busy_util = 0.99;      // decode saturates the SMs continuously
  m.batch_overhead_frac = 0.55;  // per-step weight loads dominate
  return m;
}

std::vector<ModelSpec> v100_testbed_models() {
  return {resnet50_v100(), swin_t_v100(), vgg16_v100()};
}

}  // namespace capgpu::workload
