#include "workload/queue.hpp"

#include <utility>

#include "common/error.hpp"

namespace capgpu::workload {

ImageQueue::ImageQueue(std::size_t capacity) : capacity_(capacity) {
  CAPGPU_REQUIRE(capacity > 0, "queue capacity must be positive");
}

bool ImageQueue::try_push(RequestTimeline item, sim::SimTime now) {
  if (full()) return false;
  item.enqueued = now;
  items_.push_back(item);
  ++total_enqueued_;
  notify_consumer();
  return true;
}

void ImageQueue::wait_for_space(std::function<void()> cb) {
  CAPGPU_ASSERT(static_cast<bool>(cb));
  blocked_producers_.push_back(std::move(cb));
}

void ImageQueue::wait_for_items(std::size_t n, std::function<void()> cb) {
  CAPGPU_REQUIRE(n > 0 && n <= capacity_,
                 "consumer threshold must fit in the queue");
  CAPGPU_REQUIRE(!consumer_cb_, "only one pending consumer is supported");
  consumer_threshold_ = n;
  consumer_cb_ = std::move(cb);
  notify_consumer();
}

void ImageQueue::update_consumer_threshold(std::size_t n) {
  if (!consumer_cb_) return;
  CAPGPU_REQUIRE(n > 0 && n <= capacity_,
                 "consumer threshold must fit in the queue");
  consumer_threshold_ = n;
  notify_consumer();
}

std::vector<RequestTimeline> ImageQueue::pop(std::size_t n) {
  CAPGPU_REQUIRE(n <= items_.size(), "pop larger than queue contents");
  std::vector<RequestTimeline> items(items_.begin(),
                                     items_.begin() + static_cast<long>(n));
  items_.erase(items_.begin(), items_.begin() + static_cast<long>(n));
  notify_producers();
  return items;
}

void ImageQueue::notify_consumer() {
  if (consumer_cb_ && items_.size() >= consumer_threshold_) {
    auto cb = std::exchange(consumer_cb_, nullptr);
    consumer_threshold_ = 0;
    cb();
  }
}

void ImageQueue::notify_producers() {
  while (!full() && !blocked_producers_.empty()) {
    auto cb = std::move(blocked_producers_.back());
    blocked_producers_.pop_back();
    cb();
  }
}

}  // namespace capgpu::workload
