#include "workload/queue.hpp"

#include "common/error.hpp"

namespace capgpu::workload {

ImageQueue::ImageQueue(std::size_t capacity) : ring_(capacity) {
  CAPGPU_REQUIRE(capacity > 0, "queue capacity must be positive");
}

void ImageQueue::push(RequestId id) {
  CAPGPU_REQUIRE(!full(), "push into a full queue");
  std::size_t slot = head_ + count_;
  if (slot >= ring_.size()) slot -= ring_.size();
  ring_[slot] = id;
  ++count_;
  ++total_enqueued_;
}

void ImageQueue::pop_into(RequestId* out, std::size_t n) {
  CAPGPU_REQUIRE(n <= count_, "pop larger than queue contents");
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = ring_[head_];
    ++head_;
    if (head_ == ring_.size()) head_ = 0;
  }
  count_ -= n;
}

}  // namespace capgpu::workload
