// Open-loop request arrivals.
//
// The paper's experiments run saturated (closed-loop) pipelines; real
// serving load is open-loop and time-varying — the paper's own motivation
// for changing set points and SLOs is a request surge. This Poisson
// arrival process with a piecewise-constant rate schedule feeds an
// InferenceStream running in open-loop mode, enabling experiments where
// demand, not hardware, is the bottleneck.
#pragma once

#include <array>
#include <functional>
#include <vector>

#include "common/rng.hpp"
#include "sim/engine.hpp"

namespace capgpu::workload {

/// Rate change point: from `time_s` on, arrivals follow `rate_per_s`.
struct RatePoint {
  double time_s{0.0};
  double rate_per_s{0.0};
};

/// Poisson arrivals with a piecewise-constant rate schedule.
class ArrivalProcess {
 public:
  /// `schedule` must be non-empty with strictly increasing times; the
  /// first entry applies from its time onward (before that: no arrivals).
  /// A rate of 0 pauses arrivals until the next schedule point.
  ArrivalProcess(sim::Engine& engine, Rng rng, std::vector<RatePoint> schedule);
  ~ArrivalProcess();

  ArrivalProcess(const ArrivalProcess&) = delete;
  ArrivalProcess& operator=(const ArrivalProcess&) = delete;

  /// Invoked once per arrival.
  std::function<void()> on_arrival;
  /// Bulk delivery: invoked with a block of ascending arrival timestamps
  /// (seconds). When set it takes precedence over on_arrival — whole
  /// inter-arrival chunks are drawn ahead of sim time in one go (the gap
  /// sequence is time-deterministic, so the RNG stream is consumed exactly
  /// as the per-event path would) and only one engine event per chunk
  /// re-arms generation. The receiver owns time-gating consumption
  /// (InferenceStream::submit_arrivals).
  std::function<void(const double*, std::size_t)> on_arrivals;

  void start();
  void stop();

  /// The schedule rate in force at time `t`.
  [[nodiscard]] double rate_at(double t) const;
  [[nodiscard]] std::uint64_t arrivals() const { return arrivals_; }

 private:
  /// Arrivals drawn per chunk in bulk mode (one generation event each).
  static constexpr std::size_t kChunk = 64;

  void schedule_next();
  void generate_chunk();

  sim::Engine* engine_;
  Rng rng_;
  std::vector<RatePoint> schedule_;
  std::array<double, kChunk> chunk_{};
  /// Fired arrivals (per-event mode) or generated arrivals (bulk mode —
  /// counts run ahead of sim time by up to one chunk).
  std::uint64_t arrivals_{0};
  sim::EventId pending_{0};
  bool started_{false};
};

}  // namespace capgpu::workload
