// Inference model characteristics.
//
// Each spec captures what the control loop can observe about a model: its
// batch latency at the maximum clock (e_min), the latency scaling exponent
// gamma, the CPU cost of preprocessing one input, and how hard it drives the
// GPU while executing. Presets are calibrated against the paper's testbed
// numbers (Table 1 and Sec 6.1 workloads t1..t3).
#pragma once

#include <string>
#include <vector>

#include "common/units.hpp"

namespace capgpu::workload {

/// Static description of one ML inference workload.
struct ModelSpec {
  std::string name;
  std::size_t batch_size{20};
  /// Batch latency (seconds) at the GPU's maximum core clock.
  double e_min_batch_s{0.5};
  /// Latency scaling exponent (paper fits gamma = 0.91).
  double gamma{0.91};
  /// The f_max this e_min was measured at; latency scales from here.
  Megahertz gpu_f_max{1350_MHz};
  /// CPU preprocessing cost per image, expressed in seconds * GHz: the time
  /// on one core at frequency f is (preprocess_s_ghz / f_GHz).
  double preprocess_s_ghz{0.035};
  /// GPU utilization while a batch is executing (power-model activity).
  double gpu_busy_util{0.95};
  /// Multiplicative jitter (uniform +/- this fraction) on batch and
  /// preprocessing times, modelling run-to-run variance.
  double jitter_frac{0.03};
  /// Fraction of the batch latency that is fixed per-launch overhead
  /// (kernel launches, transfers); the rest scales with the batch size.
  /// Determines how latency changes when the batch size is adapted at
  /// runtime: e(b) = e_min * (o + (1-o) * b / batch_size).
  double batch_overhead_frac{0.2};

  /// Effective e_min (at gpu_f_max) for an alternative batch size `b`.
  [[nodiscard]] double e_min_for_batch(std::size_t b) const {
    const double ref = static_cast<double>(batch_size);
    return e_min_batch_s * (batch_overhead_frac +
                            (1.0 - batch_overhead_frac) *
                                static_cast<double>(b) / ref);
  }
};

/// Paper Sec 6.1 workload t1 on the V100 testbed.
[[nodiscard]] ModelSpec resnet50_v100();
/// Paper Sec 6.1 workload t2 (the only transformer-based model).
[[nodiscard]] ModelSpec swin_t_v100();
/// Paper Sec 6.1 workload t3.
[[nodiscard]] ModelSpec vgg16_v100();
/// Motivation experiment model (Sec 3.2): GoogLeNet on an RTX 3090,
/// calibrated so the Table 1 operating points land near the paper's values.
[[nodiscard]] ModelSpec googlenet_rtx3090();

/// LLM autoregressive decoding (cf. the paper's reference [22] on LLM
/// power management): modelled as a continuous micro-batch stream — each
/// "batch" is one decode step over `batch_size` concurrent sequences, so
/// e_min is a per-step latency and the SLO is the per-token latency bound
/// (TPOT). Decode is memory-bandwidth-heavy: lower gamma (latency less
/// sensitive to core clock) and high sustained utilization.
[[nodiscard]] ModelSpec llm_decode_v100();

/// All V100 testbed models in the paper's t1..t3 order.
[[nodiscard]] std::vector<ModelSpec> v100_testbed_models();

}  // namespace capgpu::workload
