// Pooled struct-of-arrays request store.
//
// A request used to travel the pipeline as a 48-byte RequestTimeline value,
// copied into the queue, copied again into a per-batch vector, and freed
// when the batch callback died. At millions of requests per scenario those
// copies and allocations dominate the workload hot path. Here a request is
// a 32-bit id into parallel stamp lanes; the queue and the in-flight batch
// move ids only, and completed ids return to a free list for recycling.
//
// The `completed` stamp has no lane: completion is batch-wide, so the batch
// event passes its single `now` down the fan-out loop instead of writing it
// per request.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/engine.hpp"

namespace capgpu::workload {

/// Index into the RequestPool's stamp lanes.
using RequestId = std::uint32_t;

/// SoA stamp storage + free list. Ids are dense and recycled; a stream
/// reserves its worst-case live-request count up front (workers + queue +
/// one in-flight batch), after which acquire()/release() never allocate.
class RequestPool {
 public:
  RequestPool() = default;

  /// Grows the pool to hold `n` concurrently live requests.
  void reserve(std::size_t n) {
    if (n <= arrival.size()) return;
    const std::size_t old = arrival.size();
    arrival.resize(n);
    preprocess_start.resize(n);
    preprocess_done.resize(n);
    enqueued.resize(n);
    batch_start.resize(n);
    free_.reserve(n);
    // Newest ids go to the bottom of the stack so low ids hand out first.
    for (std::size_t id = n; id > old; --id) {
      free_.push_back(static_cast<RequestId>(id - 1));
    }
  }

  [[nodiscard]] RequestId acquire() {
    if (free_.empty()) reserve(arrival.empty() ? 16 : 2 * arrival.size());
    const RequestId id = free_.back();
    free_.pop_back();
    return id;
  }

  void release(RequestId id) { free_.push_back(id); }

  [[nodiscard]] std::size_t capacity() const { return arrival.size(); }
  [[nodiscard]] std::size_t live() const { return arrival.size() - free_.size(); }

  // Stamp lanes, indexed by RequestId (see workload/request_timeline.hpp
  // for the lifecycle the stamps trace).
  std::vector<sim::SimTime> arrival;
  std::vector<sim::SimTime> preprocess_start;
  std::vector<sim::SimTime> preprocess_done;
  std::vector<sim::SimTime> enqueued;
  std::vector<sim::SimTime> batch_start;

 private:
  std::vector<RequestId> free_;
};

}  // namespace capgpu::workload
