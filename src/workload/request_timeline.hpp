// Per-request lifecycle stamps through the inference pipeline.
//
// Every image request carries one RequestTimeline from arrival to batch
// completion:
//
//   arrival -> [preprocess_queue] -> preprocess_start
//           -> [cpu_preprocess]   -> preprocess_done
//           -> [gpu_batch_queue]  -> batch_start
//           -> [gpu_exec]         -> completed
//
// The stamps are virtual times from the DES. Stage durations feed the
// per-stage quantile sketches (telemetry::QuantileSketch) and the per-batch
// stage spans on the trace timeline, which is what lets capgpu_report name
// the dominant stage at each power cap (the paper's Fig. 8/9 trade-off,
// resolved per pipeline phase instead of per batch).
#pragma once

#include <cstddef>

#include "sim/engine.hpp"

namespace capgpu::workload {

/// Pipeline stages in timeline order.
enum class Stage : std::size_t {
  /// Arrival until a preprocessing worker picks the request up. Zero in
  /// closed-loop (saturated) mode, where workers synthesise arrivals.
  kPreprocessQueue = 0,
  /// CPU preprocessing compute (excludes blocking on a full queue).
  kCpuPreprocess = 1,
  /// Preprocessing done until the GPU consumer starts the batch — includes
  /// both producer blocking on a full queue and in-queue wait.
  kGpuBatchQueue = 2,
  /// GPU batch execution (the quantity under SLO).
  kGpuExec = 3,
};

inline constexpr std::size_t kStageCount = 4;

/// Stage label values used in metrics ({stage=...}), trace span names and
/// the capgpu_report attribution table. Indexed by Stage.
inline constexpr const char* kStageNames[kStageCount] = {
    "preprocess_queue",
    "cpu_preprocess",
    "gpu_batch_queue",
    "gpu_exec",
};

/// The stamps. Filled in strictly increasing order as the request moves
/// through the pipeline; `enqueued` is an extra stamp inside the
/// gpu_batch_queue stage marking the actual queue insertion (the historical
/// queue-delay monitor measures enqueue -> dequeue).
struct RequestTimeline {
  sim::SimTime arrival{0.0};
  sim::SimTime preprocess_start{0.0};
  sim::SimTime preprocess_done{0.0};
  sim::SimTime enqueued{0.0};
  sim::SimTime batch_start{0.0};
  sim::SimTime completed{0.0};

  [[nodiscard]] double stage_seconds(Stage stage) const noexcept {
    switch (stage) {
      case Stage::kPreprocessQueue: return preprocess_start - arrival;
      case Stage::kCpuPreprocess: return preprocess_done - preprocess_start;
      case Stage::kGpuBatchQueue: return batch_start - preprocess_done;
      case Stage::kGpuExec: return completed - batch_start;
    }
    return 0.0;
  }

  /// End-to-end request latency (arrival -> completed).
  [[nodiscard]] double total_seconds() const noexcept {
    return completed - arrival;
  }
};

}  // namespace capgpu::workload
