#include "workload/cpu_load.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace capgpu::workload {

HostCpuLoad::HostCpuLoad(hw::CpuModel& cpu, std::size_t total_cores)
    : cpu_(&cpu), total_cores_(total_cores) {
  CAPGPU_REQUIRE(total_cores > 0, "total_cores must be positive");
  push_utilization();
}

void HostCpuLoad::add_always_busy_cores(std::size_t n) {
  always_busy_ += n;
  CAPGPU_REQUIRE(always_busy_ <= total_cores_,
                 "more busy cores than the package has");
  push_utilization();
}

void HostCpuLoad::worker_compute_delta(int delta) {
  computing_workers_ += delta;
  CAPGPU_ASSERT(computing_workers_ >= 0);
  push_utilization();
}

double HostCpuLoad::utilization() const {
  const double busy = static_cast<double>(always_busy_) +
                      static_cast<double>(computing_workers_);
  return std::min(1.0, busy / static_cast<double>(total_cores_));
}

void HostCpuLoad::push_utilization() { cpu_->set_utilization(utilization()); }

CpuTaskSim::CpuTaskSim(sim::Engine& engine, hw::CpuModel& cpu,
                       CpuTaskParams params, Rng rng)
    : engine_(&engine),
      cpu_(&cpu),
      params_(params),
      rng_(rng),
      throughput_(static_cast<double>(params.cores) *
                  (cpu.freqs().max().value / 1000.0) / params.subset_s_ghz) {
  CAPGPU_REQUIRE(params_.cores > 0, "need at least one core");
  CAPGPU_REQUIRE(params_.subset_s_ghz > 0.0, "subset cost must be positive");
}

void CpuTaskSim::start() {
  CAPGPU_REQUIRE(!started_, "task already started");
  started_ = true;
  run_round();
}

void CpuTaskSim::run_round() {
  const double f_ghz = cpu_->frequency().value / 1000.0;
  const double j = params_.jitter_frac;
  const double subset_time =
      params_.subset_s_ghz / f_ghz * rng_.uniform(1.0 - j, 1.0 + j);
  engine_->schedule_after(subset_time, [this, subset_time] {
    // One round: every core finished one subset evaluation.
    subsets_ += params_.cores;
    throughput_.record(engine_->now(), static_cast<double>(params_.cores));
    subset_latency_.record(engine_->now(), subset_time);
    run_round();
  });
}

}  // namespace capgpu::workload
