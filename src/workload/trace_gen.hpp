// Synthetic Alibaba-PAI-like trace generator.
//
// The paper runs feature selection on the Alibaba PAI trace, which is not
// redistributable here; this generator synthesises a table with the same
// shape (per-task resource plans and runtimes from a GPU cluster) and a
// known ground truth: task duration depends on a specific feature subset, so
// the exhaustive search has a meaningful, verifiable answer.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "workload/feature_selection.hpp"

namespace capgpu::workload {

/// One synthetic PAI task record.
struct PaiTaskRecord {
  double plan_cpu;       ///< requested CPU (cores * 100, as in the trace)
  double plan_mem;       ///< requested memory (GB)
  double plan_gpu;       ///< requested GPU fraction (percent)
  double instance_num;   ///< number of task instances
  double wait_s;         ///< queueing delay before start
  double cap_cpu;        ///< machine CPU capacity where it landed
  double cap_mem;        ///< machine memory capacity
  double duration_s;     ///< runtime: the regression target
};

/// Deterministic generator of PAI-like records.
class PaiTraceGenerator {
 public:
  explicit PaiTraceGenerator(std::uint64_t seed = 42);

  [[nodiscard]] std::vector<PaiTaskRecord> generate(std::size_t n);

  /// Converts records to a regression dataset: features are the 7 resource
  /// columns, the target is duration_s. Ground truth: duration depends on
  /// plan_cpu, plan_gpu and instance_num (plus noise); the remaining
  /// features are nuisance.
  [[nodiscard]] static Dataset to_dataset(
      const std::vector<PaiTaskRecord>& records);

  /// Bitmask of the ground-truth informative features in to_dataset() order.
  [[nodiscard]] static std::uint64_t informative_mask();

 private:
  Rng rng_;
};

}  // namespace capgpu::workload
