// Bounded FIFO of preprocessed images between the CPU stage and the GPU.
//
// Mirrors the motivation experiment's shared queue (Sec 3.2): preprocessing
// workers push tensors; the GPU-bound consumer assembles batches. Producers
// that hit a full queue block (their measured preprocessing latency then
// includes the blocking time, which is how queue backpressure shows up in
// Table 1).
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <vector>

#include "sim/engine.hpp"
#include "workload/request_timeline.hpp"

namespace capgpu::workload {

/// FIFO of preprocessed requests (each carrying its RequestTimeline) with a
/// capacity and block/notify hooks. Not thread-safe: lives entirely inside
/// the single-threaded DES.
class ImageQueue {
 public:
  explicit ImageQueue(std::size_t capacity);

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t size() const { return items_.size(); }
  [[nodiscard]] bool full() const { return items_.size() >= capacity_; }
  [[nodiscard]] bool empty() const { return items_.empty(); }

  /// Attempts to enqueue a request; stamps item.enqueued with `now`.
  /// Returns false when full — the producer must then register via
  /// `wait_for_space`.
  bool try_push(RequestTimeline item, sim::SimTime now);

  /// Registers a callback fired (once) when space becomes available.
  void wait_for_space(std::function<void()> cb);

  /// Registers a callback fired (once) when at least `n` items are queued.
  void wait_for_items(std::size_t n, std::function<void()> cb);

  /// Lowers/raises the pending consumer threshold (no-op when no consumer
  /// is waiting); fires immediately if the queue already satisfies it.
  /// Used when the batch size changes while the GPU is idle.
  void update_consumer_threshold(std::size_t n);
  [[nodiscard]] bool consumer_waiting() const { return static_cast<bool>(consumer_cb_); }

  /// Pops the `n` oldest requests with their timelines.
  /// Requires size() >= n. Wakes blocked producers.
  [[nodiscard]] std::vector<RequestTimeline> pop(std::size_t n);

  /// Total images ever enqueued.
  [[nodiscard]] std::uint64_t total_enqueued() const { return total_enqueued_; }

 private:
  void notify_consumer();
  void notify_producers();

  std::size_t capacity_;
  std::deque<RequestTimeline> items_;
  std::vector<std::function<void()>> blocked_producers_;
  std::size_t consumer_threshold_{0};
  std::function<void()> consumer_cb_;
  std::uint64_t total_enqueued_{0};
};

}  // namespace capgpu::workload
