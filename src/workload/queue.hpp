// Bounded FIFO of preprocessed images between the CPU stage and the GPU.
//
// Mirrors the motivation experiment's shared queue (Sec 3.2): preprocessing
// workers push tensors; the GPU-bound consumer assembles batches. The queue
// itself is a fixed ring of request ids into the stream's RequestPool — it
// holds no timestamps and runs no callbacks. Blocking producers and the
// waiting consumer are bookkeeping of the InferenceStream (plain index
// lists), which removed the std::function registration churn from the
// pipeline hot path; the queue only counts and orders.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "workload/request_pool.hpp"

namespace capgpu::workload {

/// Fixed-capacity FIFO ring of request ids. Not thread-safe: lives entirely
/// inside the single-threaded DES.
class ImageQueue {
 public:
  explicit ImageQueue(std::size_t capacity);

  [[nodiscard]] std::size_t capacity() const { return ring_.size(); }
  [[nodiscard]] std::size_t size() const { return count_; }
  [[nodiscard]] bool full() const { return count_ >= ring_.size(); }
  [[nodiscard]] bool empty() const { return count_ == 0; }

  /// Enqueues a request id; the queue must not be full (a producer that
  /// finds it full parks in the stream's blocked list instead).
  void push(RequestId id);

  /// Pops the `n` oldest ids into `out` in FIFO order. Requires size() >= n.
  void pop_into(RequestId* out, std::size_t n);

  /// Total images ever enqueued.
  [[nodiscard]] std::uint64_t total_enqueued() const { return total_enqueued_; }

 private:
  std::vector<RequestId> ring_;  // fixed at capacity; never reallocates
  std::size_t head_{0};
  std::size_t count_{0};
  std::uint64_t total_enqueued_{0};
};

}  // namespace capgpu::workload
