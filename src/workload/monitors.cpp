#include "workload/monitors.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace capgpu::workload {

ThroughputMonitor::ThroughputMonitor(double max_rate) : max_rate_(max_rate) {
  CAPGPU_REQUIRE(max_rate > 0.0, "max_rate must be positive");
}

void ThroughputMonitor::record(sim::SimTime now, double count) {
  CAPGPU_ASSERT(count >= 0.0);
  events_.push_back(Event{now, count});
  total_ += count;
}

double ThroughputMonitor::rate(sim::SimTime now, double window) const {
  CAPGPU_REQUIRE(window > 0.0, "window must be positive");
  const double cutoff = now - window;
  double sum = 0.0;
  for (auto it = events_.rbegin(); it != events_.rend(); ++it) {
    if (it->time <= cutoff) break;
    sum += it->count;
  }
  return sum / window;
}

double ThroughputMonitor::normalized_rate(sim::SimTime now,
                                          double window) const {
  return std::clamp(rate(now, window) / max_rate_, 0.0, 1.0);
}

void ThroughputMonitor::trim(sim::SimTime now, double horizon) {
  const double cutoff = now - horizon;
  while (!events_.empty() && events_.front().time <= cutoff) {
    events_.pop_front();
  }
}

void LatencyMonitor::record(sim::SimTime now, double latency_s) {
  samples_.push_back(Sample{now, latency_s});
  lifetime_.add(latency_s);
}

double LatencyMonitor::mean(sim::SimTime now, double window) const {
  const double cutoff = now - window;
  double sum = 0.0;
  std::size_t n = 0;
  for (auto it = samples_.rbegin(); it != samples_.rend(); ++it) {
    if (it->time <= cutoff) break;
    sum += it->latency;
    ++n;
  }
  return n ? sum / static_cast<double>(n) : 0.0;
}

double LatencyMonitor::max(sim::SimTime now, double window) const {
  const double cutoff = now - window;
  double m = 0.0;
  for (auto it = samples_.rbegin(); it != samples_.rend(); ++it) {
    if (it->time <= cutoff) break;
    m = std::max(m, it->latency);
  }
  return m;
}

std::size_t LatencyMonitor::count(sim::SimTime now, double window) const {
  const double cutoff = now - window;
  std::size_t n = 0;
  for (auto it = samples_.rbegin(); it != samples_.rend(); ++it) {
    if (it->time <= cutoff) break;
    ++n;
  }
  return n;
}

double LatencyMonitor::miss_rate(sim::SimTime now, double window,
                                 double threshold) const {
  const double cutoff = now - window;
  std::size_t n = 0;
  std::size_t misses = 0;
  for (auto it = samples_.rbegin(); it != samples_.rend(); ++it) {
    if (it->time <= cutoff) break;
    ++n;
    if (it->latency > threshold) ++misses;
  }
  return n ? static_cast<double>(misses) / static_cast<double>(n) : 0.0;
}

void LatencyMonitor::visit(sim::SimTime now, double window,
                           const std::function<void(double)>& fn) const {
  const double cutoff = now - window;
  // Find the oldest in-window sample, then iterate forward.
  auto it = samples_.rbegin();
  while (it != samples_.rend() && it->time > cutoff) ++it;
  for (auto fwd = it.base(); fwd != samples_.end(); ++fwd) {
    fn(fwd->latency);
  }
}

void LatencyMonitor::trim(sim::SimTime now, double horizon) {
  const double cutoff = now - horizon;
  while (!samples_.empty() && samples_.front().time <= cutoff) {
    samples_.pop_front();
  }
}

}  // namespace capgpu::workload
