#include "workload/monitors.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace capgpu::workload {

void SampleRing::grow() {
  const std::size_t cap = buf_.empty() ? 64 : buf_.size() * 2;
  std::vector<Entry> next(cap);
  for (std::size_t i = 0; i < size_; ++i) next[i] = (*this)[i];
  buf_ = std::move(next);
  head_ = 0;
  mask_ = cap - 1;
}

ThroughputMonitor::ThroughputMonitor(double max_rate) : max_rate_(max_rate) {
  CAPGPU_REQUIRE(max_rate > 0.0, "max_rate must be positive");
}

double ThroughputMonitor::rate(sim::SimTime now, double window) const {
  CAPGPU_REQUIRE(window > 0.0, "window must be positive");
  const double cutoff = now - window;
  double sum = 0.0;
  for (std::size_t i = events_.size(); i-- > 0;) {
    const SampleRing::Entry& e = events_[i];
    if (e.time <= cutoff) break;
    sum += e.value;
  }
  return sum / window;
}

double ThroughputMonitor::normalized_rate(sim::SimTime now,
                                          double window) const {
  return std::clamp(rate(now, window) / max_rate_, 0.0, 1.0);
}

void ThroughputMonitor::trim(sim::SimTime now, double horizon) {
  const double cutoff = now - horizon;
  while (!events_.empty() && events_[0].time <= cutoff) {
    events_.pop_front();
  }
}

double LatencyMonitor::mean(sim::SimTime now, double window) const {
  const double cutoff = now - window;
  double sum = 0.0;
  std::size_t n = 0;
  for (std::size_t i = samples_.size(); i-- > 0;) {
    const SampleRing::Entry& s = samples_[i];
    if (s.time <= cutoff) break;
    sum += s.value;
    ++n;
  }
  return n ? sum / static_cast<double>(n) : 0.0;
}

double LatencyMonitor::max(sim::SimTime now, double window) const {
  const double cutoff = now - window;
  double m = 0.0;
  for (std::size_t i = samples_.size(); i-- > 0;) {
    const SampleRing::Entry& s = samples_[i];
    if (s.time <= cutoff) break;
    m = std::max(m, s.value);
  }
  return m;
}

std::size_t LatencyMonitor::count(sim::SimTime now, double window) const {
  const double cutoff = now - window;
  std::size_t n = 0;
  for (std::size_t i = samples_.size(); i-- > 0;) {
    if (samples_[i].time <= cutoff) break;
    ++n;
  }
  return n;
}

double LatencyMonitor::miss_rate(sim::SimTime now, double window,
                                 double threshold) const {
  const double cutoff = now - window;
  std::size_t n = 0;
  std::size_t misses = 0;
  for (std::size_t i = samples_.size(); i-- > 0;) {
    const SampleRing::Entry& s = samples_[i];
    if (s.time <= cutoff) break;
    ++n;
    if (s.value > threshold) ++misses;
  }
  return n ? static_cast<double>(misses) / static_cast<double>(n) : 0.0;
}

void LatencyMonitor::visit(sim::SimTime now, double window,
                           const std::function<void(double)>& fn) const {
  const double cutoff = now - window;
  // Find the oldest in-window sample, then iterate forward.
  std::size_t first = samples_.size();
  while (first > 0 && samples_[first - 1].time > cutoff) --first;
  for (std::size_t i = first; i < samples_.size(); ++i) {
    fn(samples_[i].value);
  }
}

void LatencyMonitor::trim(sim::SimTime now, double horizon) {
  const double cutoff = now - horizon;
  while (!samples_.empty() && samples_[0].time <= cutoff) {
    samples_.pop_front();
  }
}

}  // namespace capgpu::workload
