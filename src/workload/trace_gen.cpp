#include "workload/trace_gen.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace capgpu::workload {

PaiTraceGenerator::PaiTraceGenerator(std::uint64_t seed) : rng_(seed) {}

std::vector<PaiTaskRecord> PaiTraceGenerator::generate(std::size_t n) {
  std::vector<PaiTaskRecord> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    PaiTaskRecord r{};
    // Resource plans follow the trace's long-tailed shapes.
    r.plan_cpu = 100.0 * std::round(rng_.exponential(1.0 / 6.0) + 1.0);
    r.plan_mem = std::round(rng_.exponential(1.0 / 16.0) + 2.0);
    r.plan_gpu = 25.0 * std::round(rng_.uniform(0.0, 4.0));
    r.instance_num = std::round(rng_.exponential(1.0 / 4.0) + 1.0);
    r.wait_s = rng_.exponential(1.0 / 30.0);
    r.cap_cpu = rng_.uniform() < 0.3 ? 6400.0 : 9600.0;
    r.cap_mem = rng_.uniform() < 0.5 ? 512.0 : 768.0;
    // Ground truth: duration driven by plan_cpu, plan_gpu, instance_num.
    const double base = 120.0 + 0.35 * r.plan_cpu + 2.2 * r.plan_gpu +
                        18.0 * r.instance_num;
    r.duration_s = base * rng_.uniform(0.9, 1.1) + rng_.normal(0.0, 10.0);
    r.duration_s = std::max(1.0, r.duration_s);
    out.push_back(r);
  }
  return out;
}

Dataset PaiTraceGenerator::to_dataset(
    const std::vector<PaiTaskRecord>& records) {
  CAPGPU_REQUIRE(!records.empty(), "no records to convert");
  Dataset d;
  d.feature_names = {"plan_cpu", "plan_mem",  "plan_gpu", "instance_num",
                     "wait_s",   "cap_cpu",   "cap_mem"};
  d.x = linalg::Matrix(records.size(), d.feature_names.size());
  d.y = linalg::Vector(records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    const auto& r = records[i];
    d.x(i, 0) = r.plan_cpu;
    d.x(i, 1) = r.plan_mem;
    d.x(i, 2) = r.plan_gpu;
    d.x(i, 3) = r.instance_num;
    d.x(i, 4) = r.wait_s;
    d.x(i, 5) = r.cap_cpu;
    d.x(i, 6) = r.cap_mem;
    d.y[i] = r.duration_s;
  }
  return d;
}

std::uint64_t PaiTraceGenerator::informative_mask() {
  // plan_cpu (bit 0), plan_gpu (bit 2), instance_num (bit 3).
  return 0b1101;
}

}  // namespace capgpu::workload
