// Host CPU load aggregation and the CPU-side background workload.
//
// The paper's testbed (Sec 5) dedicates one core per GPU stream for data
// preparation, one core to the controller, and fills the remaining cores
// with an exhaustive feature-selection job. HostCpuLoad folds all of that
// into the package utilization the power model consumes; CpuTaskSim is the
// DES counterpart of the feature-selection workload, with throughput
// ("feature subsets evaluated per second", Sec 3.1) scaling with CPU
// frequency.
#pragma once

#include <cstddef>

#include "common/rng.hpp"
#include "hw/cpu_model.hpp"
#include "sim/engine.hpp"
#include "workload/monitors.hpp"

namespace capgpu::workload {

/// Aggregates per-core activity into the package utilization.
class HostCpuLoad {
 public:
  /// `total_cores` is the package core count (40 on the paper's testbed).
  HostCpuLoad(hw::CpuModel& cpu, std::size_t total_cores);

  /// Registers `n` cores that are always busy (background workload,
  /// controller core, ...).
  void add_always_busy_cores(std::size_t n);

  /// Preprocessing workers toggling between computing and blocked; wire
  /// InferenceStream::on_worker_compute_change to this.
  void worker_compute_delta(int delta);

  [[nodiscard]] double utilization() const;
  [[nodiscard]] std::size_t total_cores() const { return total_cores_; }

 private:
  void push_utilization();

  hw::CpuModel* cpu_;
  std::size_t total_cores_;
  std::size_t always_busy_{0};
  long computing_workers_{0};
};

/// Parameters of the simulated feature-selection background job.
struct CpuTaskParams {
  std::size_t cores{36};
  /// Per-subset evaluation cost in seconds * GHz on one core: at frequency
  /// f the evaluation takes subset_s_ghz / f_GHz seconds.
  double subset_s_ghz{0.08};
  double jitter_frac{0.05};
};

/// DES model of the exhaustive feature-selection job: `cores` cores each
/// evaluate one feature subset per round; a round takes one subset time.
class CpuTaskSim {
 public:
  CpuTaskSim(sim::Engine& engine, hw::CpuModel& cpu, CpuTaskParams params,
             Rng rng);

  CpuTaskSim(const CpuTaskSim&) = delete;
  CpuTaskSim& operator=(const CpuTaskSim&) = delete;

  void start();

  /// Subsets evaluated per second; max is at the top P-state.
  [[nodiscard]] ThroughputMonitor& throughput() { return throughput_; }
  [[nodiscard]] const ThroughputMonitor& throughput() const { return throughput_; }
  /// Wall-clock time of one subset evaluation (paper Fig 7(d)).
  [[nodiscard]] LatencyMonitor& subset_latency() { return subset_latency_; }
  [[nodiscard]] const LatencyMonitor& subset_latency() const { return subset_latency_; }

  [[nodiscard]] std::uint64_t subsets_evaluated() const { return subsets_; }
  [[nodiscard]] const CpuTaskParams& params() const { return params_; }

 private:
  void run_round();

  sim::Engine* engine_;
  hw::CpuModel* cpu_;
  CpuTaskParams params_;
  Rng rng_;
  ThroughputMonitor throughput_;
  LatencyMonitor subset_latency_;
  std::uint64_t subsets_{0};
  bool started_{false};
};

}  // namespace capgpu::workload
