// The ML inference pipeline the paper's servers run (Sec 3.2 / Sec 5):
//
//   CPU preprocessing workers -> bounded shared queue -> batch assembly ->
//   GPU execution (latency law Eq. 8) -> completion metrics
//
// One InferenceStream binds one model to one GPU, with a configurable number
// of dedicated CPU preprocessing workers. Preprocessing speed follows the
// host CPU's current frequency; GPU batch latency follows the current core
// clock. Starvation (slow CPU) and backpressure (slow GPU) emerge naturally,
// reproducing the coordination effects that motivate CapGPU (Table 1).
//
// Hot-path layout: requests are ids into a pooled struct-of-arrays store
// (workload/request_pool.hpp), the queue moves ids through a fixed ring, and
// producer blocking / consumer waiting are plain index lists on the stream —
// the steady-state request path performs no heap allocations and copies no
// per-request structs. Event and RNG order are bit-for-bit those of the
// historical value-passing pipeline (the bench byte-identity contract).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "hw/server_model.hpp"
#include "sim/engine.hpp"
#include "telemetry/energy.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/sketch.hpp"
#include "workload/model_zoo.hpp"
#include "workload/monitors.hpp"
#include "workload/queue.hpp"
#include "workload/request_pool.hpp"
#include "workload/request_timeline.hpp"
#include "workload/ring.hpp"

namespace capgpu::workload {

/// Configuration of one inference stream.
struct StreamParams {
  ModelSpec model;
  std::size_t n_preprocess_workers{1};
  /// Queue capacity in images; defaults to 2 batches when 0.
  std::size_t queue_capacity{0};
  /// Closed loop (default): workers always have input — the saturated
  /// pipeline of the paper's experiments. Open loop: workers only process
  /// requests submitted via submit_requests()/submit_arrivals() (wire an
  /// ArrivalProcess).
  bool open_loop{false};
  /// Request-level latency attribution: per-stage quantile sketches,
  /// per-batch stage spans on the trace timeline and the per-period stage
  /// means behind take_stage_period_means(). Off = the pre-attribution
  /// fast path (the baseline of the selfperf overhead guard).
  bool stage_stats{true};
};

/// One model pinned to one GPU, fed by dedicated CPU preprocessing workers.
class InferenceStream {
 public:
  /// `gpu_index` selects the GPU inside `server`. All references must
  /// outlive the stream. Call start() to begin producing work.
  InferenceStream(sim::Engine& engine, hw::ServerModel& server,
                  std::size_t gpu_index, StreamParams params, Rng rng);

  InferenceStream(const InferenceStream&) = delete;
  InferenceStream& operator=(const InferenceStream&) = delete;

  /// Kicks off the preprocessing workers and the GPU consumer.
  void start();

  [[nodiscard]] const ModelSpec& model() const { return params_.model; }
  [[nodiscard]] std::size_t gpu_index() const { return gpu_index_; }

  /// Changes how hard batches drive the GPU while executing — models a
  /// workload-intensity shift at runtime (e.g. a different input mix).
  /// Takes effect from the next batch; shifts the plant's effective power
  /// gain, which is what the adaptive controller has to track.
  void set_gpu_busy_util(double util);

  /// Open-loop mode only: enqueues `n_images` requests (arriving now) for
  /// preprocessing. Idle workers wake immediately.
  void submit_requests(std::size_t n_images);
  /// Open-loop mode only: delivers a block of arrival timestamps (ascending,
  /// all >= now) from a bulk arrival generator. Requests whose arrival time
  /// is still in the future stay pending until it comes; the stream arms a
  /// wakeup for the head arrival when workers idle.
  void submit_arrivals(const double* times_s, std::size_t n);
  /// Requests submitted but not yet started by a worker (in bulk-arrival
  /// mode this includes arrivals scheduled for future times).
  [[nodiscard]] std::uint64_t pending_requests() const {
    return pending_arrivals_.size();
  }

  /// Changes the GPU batch size at runtime (coordinated batching + DVFS,
  /// cf. Nabavinejad et al.). Takes effect from the next batch assembly;
  /// latency scales per ModelSpec::e_min_for_batch. Clamped into
  /// [1, queue capacity].
  void set_batch_size(std::size_t batch);
  [[nodiscard]] std::size_t batch_size() const { return batch_size_; }

  /// Peak images/second of the GPU stage (batch_size / e_min): the
  /// normalization denominator for this stream's throughput.
  [[nodiscard]] double max_images_per_s() const;

  /// Called with +1/-1 when a preprocessing worker starts/stops computing
  /// (used by HostCpuLoad to aggregate package utilization).
  std::function<void(int)> on_worker_compute_change;

  /// Frequency governing preprocessing speed. Defaults to the host CPU's
  /// package frequency (whole-package DVFS, as in the motivation
  /// experiment). The paper's Sec 6 testbed instead pins the data-copy
  /// cores at their maximum P-state and only throttles the CPU-workload
  /// cores — model that by supplying a constant provider.
  std::function<Megahertz()> preprocess_frequency;

  // --- Monitors (read by the controller and by benches) ---
  [[nodiscard]] ThroughputMonitor& images_throughput() { return images_; }
  [[nodiscard]] const ThroughputMonitor& images_throughput() const { return images_; }
  /// GPU batch execution latency e_i (the quantity under SLO, Eq. 10c).
  [[nodiscard]] LatencyMonitor& batch_latency() { return batch_latency_; }
  [[nodiscard]] const LatencyMonitor& batch_latency() const { return batch_latency_; }
  /// Per-image queue delay (enqueue -> dequeue into a batch).
  [[nodiscard]] LatencyMonitor& queue_delay() { return queue_delay_; }
  [[nodiscard]] const LatencyMonitor& queue_delay() const { return queue_delay_; }
  /// Per-image preprocessing latency, including time blocked on a full queue.
  [[nodiscard]] LatencyMonitor& preprocess_latency() { return preprocess_latency_; }
  [[nodiscard]] const LatencyMonitor& preprocess_latency() const { return preprocess_latency_; }
  /// Pure preprocessing compute time (excludes queue blocking) — the
  /// "preprocessing latency" metric Table 1 reports.
  [[nodiscard]] LatencyMonitor& preprocess_compute_latency() { return preprocess_compute_; }
  [[nodiscard]] const LatencyMonitor& preprocess_compute_latency() const { return preprocess_compute_; }

  [[nodiscard]] std::uint64_t images_completed() const { return images_completed_; }
  [[nodiscard]] std::uint64_t batches_completed() const { return batches_completed_; }
  [[nodiscard]] const ImageQueue& queue() const { return queue_; }

  // --- Request-level latency attribution (StreamParams::stage_stats) ---
  /// Per-stage request-latency sketch ({model, stage} series), nullptr when
  /// attribution is off. Flushes deferred batches first.
  [[nodiscard]] const telemetry::QuantileSketch* stage_sketch(Stage stage) {
    flush_stage_stats();
    return stage_sketch_[static_cast<std::size_t>(stage)];
  }
  /// End-to-end (arrival -> completed) request-latency sketch. Flushes
  /// deferred batches first.
  [[nodiscard]] const telemetry::QuantileSketch* request_sketch() {
    flush_stage_stats();
    return request_sketch_;
  }
  /// Pushes deferred batch attribution into the sketches. The hot path
  /// fingerprints each batch against the previous distinct one and only
  /// counts replays; anything reading the sketches through the metrics
  /// registry (exporters, summary/SLO writers) must be preceded by a flush.
  /// core::ServerRig flushes every control period and after the run; call
  /// this directly when driving a bare stream.
  void flush_stage_stats();
  /// Mean stage latency over the requests completed since the last call
  /// (0 for stages with no samples); resets the accumulators. Feeds the
  /// per-period stage series and the stage_latency_s trace counters.
  [[nodiscard]] std::array<double, kStageCount> take_stage_period_means();
  /// Track id of this stream on the trace timeline (counter emission).
  [[nodiscard]] int trace_tid() const { return trace_tid_; }

  // --- Energy attribution (telemetry::EnergyLedger) ---
  /// Enables per-batch energy capture: each completed batch appends one
  /// telemetry::EnergyBatch (exec interval + summed quantized stage
  /// residencies, reusing the fingerprint records — no extra per-request
  /// work). Requires stage_stats; the ledger owner must drain
  /// energy_batches() every control period or the buffer grows unbounded.
  void set_energy_recording(bool on) {
    energy_recording_ = on && params_.stage_stats;
  }
  /// Batches captured since the last drain. The consumer (core::ServerRig's
  /// ledger loop) reads and clear()s this each period.
  [[nodiscard]] std::vector<telemetry::EnergyBatch>& energy_batches() {
    return energy_batches_;
  }

 private:
  struct Worker {
    bool computing{false};
    RequestId req{0};        ///< pool id of the image currently held
    double compute{0.0};     ///< preprocess duration of the current image
    sim::EventId event{0};   ///< completion event of the current image
  };

  void worker_start_image(std::size_t w);
  void worker_finish_image(std::size_t w);
  void worker_try_push(std::size_t w);
  void consumer_try_start();
  void consumer_finish_batch(double exec_latency);
  void record_stage_stats(double exec_latency, const RequestId* ids,
                          std::size_t count, sim::SimTime completed);
  [[nodiscard]] double preprocess_duration();
  [[nodiscard]] double batch_duration();
  void set_worker_computing(std::size_t w, bool computing);
  /// Starts idle workers on every pending arrival whose time has come,
  /// newest-parked worker first (the historical wake order).
  void wake_ready_arrivals();
  /// Schedules a wakeup at the head pending arrival when workers idle ahead
  /// of the arrivals (bulk mode delivers future timestamps).
  void maybe_arm_arrival_wakeup();

  sim::Engine* engine_;
  hw::ServerModel* server_;
  std::size_t gpu_index_;
  StreamParams params_;
  Rng rng_;
  RequestPool pool_;
  ImageQueue queue_;
  std::vector<Worker> workers_;
  bool gpu_busy_{false};
  bool started_{false};
  std::size_t batch_size_{0};  // current (dynamic) batch size

  // Block/notify bookkeeping (moved here from the queue): producers parked
  // on a full queue (woken LIFO), and the one consumer waiting for its
  // batch threshold.
  std::vector<std::size_t> blocked_workers_;
  bool consumer_waiting_{false};
  std::size_t consumer_threshold_{0};

  /// The batch currently executing on the GPU (ids popped from the queue;
  /// at most one batch is in flight per stream).
  std::vector<RequestId> batch_ids_;
  std::size_t in_flight_{0};
  sim::EventId batch_event_{0};  ///< completion event of the in-flight batch
  double batch_exec_{0.0};       ///< execution latency of the in-flight batch

  /// Open-loop arrival stamps of requests not yet picked up by a worker
  /// (FIFO, so pending_requests() == size()).
  Ring<sim::SimTime> pending_arrivals_;
  std::vector<std::size_t> idle_workers_;
  sim::EventId arrival_wakeup_{0};

  ThroughputMonitor images_;
  LatencyMonitor batch_latency_;
  LatencyMonitor queue_delay_;
  LatencyMonitor preprocess_latency_;
  LatencyMonitor preprocess_compute_;
  std::uint64_t images_completed_{0};
  std::uint64_t batches_completed_{0};

  // Observability: batch latency histogram + completion counters, labeled
  // {model=...}; each in-flight batch is a trace span on this stream's
  // track.
  telemetry::Counter* images_metric_{nullptr};
  telemetry::Counter* batches_metric_{nullptr};
  telemetry::LogLinearHistogram* latency_metric_{nullptr};
  int trace_tid_{0};
  std::uint64_t batch_span_{0};

  // Request-level attribution state (null/zero when stage_stats is off).
  std::array<telemetry::QuantileSketch*, kStageCount> stage_sketch_{};
  telemetry::QuantileSketch* request_sketch_{nullptr};
  std::array<int, kStageCount> stage_tid_{};
  std::array<double, kStageCount> stage_sum_{};
  std::array<std::uint64_t, kStageCount> stage_count_{};
  /// Reused staging buffer for the span lanes (fingerprint-miss path).
  std::vector<double> stage_scratch_;
  /// Batch fingerprint: span records of the last distinct batch, one per
  /// sketch series. A batch whose quantized stage durations match is only
  /// counted (pending_batches_) and flushed as record replays later.
  telemetry::SpanRecord rec_cpu_;
  telemetry::SpanRecord rec_bq_;
  telemetry::SpanRecord rec_total_;
  telemetry::SpanRecord rec_pq_;
  telemetry::SpanRecord rec_exec_;
  std::uint64_t pending_batches_{0};
  bool rec_valid_{false};

  // Energy capture (off unless a ledger is attached).
  bool energy_recording_{false};
  std::vector<telemetry::EnergyBatch> energy_batches_;
};

}  // namespace capgpu::workload
