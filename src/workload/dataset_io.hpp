// CSV loading for regression datasets.
//
// The feature-selection workload ships with a synthetic PAI-like trace;
// users holding the real Alibaba PAI trace (or any task table) can load it
// from CSV instead. The loader takes a header row, selects the target
// column by name, and treats every other numeric column as a feature.
#pragma once

#include <iosfwd>
#include <string>

#include "workload/feature_selection.hpp"

namespace capgpu::workload {

/// Parses a CSV with a header row into a Dataset. `target_column` names
/// the regression target; all other columns become features, in header
/// order. Throws InvalidArgument on missing target, ragged rows, or
/// non-numeric cells, and requires at least one feature and one row.
[[nodiscard]] Dataset load_dataset_csv(std::istream& in,
                                       const std::string& target_column);

/// File-path convenience wrapper; throws Error when the file cannot open.
[[nodiscard]] Dataset load_dataset_csv_file(const std::string& path,
                                            const std::string& target_column);

/// Writes a dataset back out as CSV (features then target), the inverse of
/// load_dataset_csv.
void save_dataset_csv(std::ostream& out, const Dataset& dataset,
                      const std::string& target_column = "target");

}  // namespace capgpu::workload
