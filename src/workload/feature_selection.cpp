#include "workload/feature_selection.hpp"

#include <bit>
#include <cmath>

#include "common/error.hpp"
#include "linalg/qr.hpp"

namespace capgpu::workload {

std::vector<std::string> FeatureSelectionResult::best_features(
    const Dataset& data) const {
  std::vector<std::string> names;
  for (std::size_t i = 0; i < data.features(); ++i) {
    if (best.mask & (std::uint64_t{1} << i)) names.push_back(data.feature_names[i]);
  }
  return names;
}

ExhaustiveFeatureSelection::ExhaustiveFeatureSelection(
    FeatureSelectionConfig config)
    : config_(config) {
  CAPGPU_REQUIRE(config_.k_folds >= 2, "need at least 2 CV folds");
}

double ExhaustiveFeatureSelection::evaluate_subset(const Dataset& data,
                                                   std::uint64_t mask) const {
  CAPGPU_REQUIRE(mask != 0, "cannot evaluate the empty feature subset");
  CAPGPU_REQUIRE(data.samples() >= 2 * config_.k_folds,
                 "dataset too small for the requested folds");

  const std::size_t n = data.samples();
  const auto n_selected = static_cast<std::size_t>(std::popcount(mask));
  const std::size_t cols = n_selected + (config_.include_intercept ? 1 : 0);

  // Column indices of the selected features.
  std::vector<std::size_t> selected;
  selected.reserve(n_selected);
  for (std::size_t i = 0; i < data.features(); ++i) {
    if (mask & (std::uint64_t{1} << i)) selected.push_back(i);
  }

  double total_sq_err = 0.0;
  std::size_t total_val = 0;
  for (std::size_t fold = 0; fold < config_.k_folds; ++fold) {
    // Deterministic fold assignment: sample i belongs to fold i % k.
    std::size_t n_val = 0;
    for (std::size_t i = 0; i < n; ++i) n_val += (i % config_.k_folds == fold);
    const std::size_t n_train = n - n_val;
    CAPGPU_ASSERT(n_train >= cols);

    linalg::Matrix xt(n_train, cols);
    linalg::Vector yt(n_train);
    std::size_t r = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (i % config_.k_folds == fold) continue;
      std::size_t c = 0;
      for (const std::size_t f : selected) xt(r, c++) = data.x(i, f);
      if (config_.include_intercept) xt(r, c) = 1.0;
      yt[r] = data.y[i];
      ++r;
    }
    const linalg::Vector beta = linalg::lstsq(xt, yt);

    for (std::size_t i = 0; i < n; ++i) {
      if (i % config_.k_folds != fold) continue;
      double pred = config_.include_intercept ? beta[cols - 1] : 0.0;
      std::size_t c = 0;
      for (const std::size_t f : selected) pred += beta[c++] * data.x(i, f);
      const double err = data.y[i] - pred;
      total_sq_err += err * err;
      ++total_val;
    }
  }
  return total_sq_err / static_cast<double>(total_val);
}

FeatureSelectionResult ExhaustiveFeatureSelection::run(
    const Dataset& data,
    const std::function<void(std::uint64_t)>& progress) const {
  CAPGPU_REQUIRE(data.features() >= 1, "dataset has no features");
  CAPGPU_REQUIRE(data.features() < 63, "too many features to enumerate");
  CAPGPU_REQUIRE(data.feature_names.size() == data.features(),
                 "feature_names size mismatch");
  const std::uint64_t n_subsets =
      (std::uint64_t{1} << data.features()) - 1;  // non-empty subsets
  CAPGPU_REQUIRE(n_subsets <= config_.max_subsets,
                 "subset count exceeds config_.max_subsets");

  FeatureSelectionResult result;
  result.all_scores.reserve(n_subsets);
  for (std::uint64_t mask = 1; mask <= n_subsets; ++mask) {
    const double mse = evaluate_subset(data, mask);
    result.all_scores.push_back(SubsetScore{mask, mse});
    if (result.subsets_evaluated == 0 || mse < result.best.cv_mse) {
      result.best = SubsetScore{mask, mse};
    }
    ++result.subsets_evaluated;
    if (progress) progress(result.subsets_evaluated);
  }
  return result;
}

}  // namespace capgpu::workload
