// The frequency-latency scaling law (paper Eq. 8):
//
//   e(f) = e_min * (f_max / f)^gamma
//
// where e_min is the latency at f_max and gamma (~0.91 in the paper)
// captures the sub-linear speedup of real kernels with core clock. The
// workload simulator uses this as the *plant* truth; the controller fits its
// own copy from samples (control/latency_model), keeping plant and model
// separate as in a real deployment.
#pragma once

#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"

namespace capgpu::workload {

/// Latency at frequency `f` given latency `e_min` at `f_max`.
[[nodiscard]] inline double latency_at(double e_min, Megahertz f_max,
                                       Megahertz f, double gamma) {
  CAPGPU_ASSERT(e_min > 0.0);
  CAPGPU_ASSERT(f.value > 0.0 && f_max.value > 0.0);
  CAPGPU_ASSERT(gamma > 0.0);
  return e_min * std::pow(f_max.value / f.value, gamma);
}

/// Inverse of latency_at: the minimum frequency at which the latency stays
/// at or below `budget`. Returns a value above f_max when even f_max cannot
/// meet the budget (callers must check feasibility).
[[nodiscard]] inline Megahertz frequency_for_latency(double e_min,
                                                     Megahertz f_max,
                                                     double budget,
                                                     double gamma) {
  CAPGPU_ASSERT(budget > 0.0);
  return Megahertz{f_max.value * std::pow(e_min / budget, 1.0 / gamma)};
}

}  // namespace capgpu::workload
