// Exhaustive feature selection with k-fold cross-validation (paper Sec 6.1).
//
// The paper's CPU-side workload fits and tests a model on *every possible
// feature subset* of the Alibaba PAI trace and keeps the subset with the
// lowest cross-validation MSE. This is the real algorithm (not a stand-in):
// linear least squares per fold via the linalg QR solver. The DES uses
// CpuTaskSim to model its timing; this class is what you would actually run
// on the host CPU, and what examples/tests exercise.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "linalg/matrix.hpp"

namespace capgpu::workload {

/// A regression dataset: rows of features plus a target.
struct Dataset {
  linalg::Matrix x;                       ///< n_samples x n_features
  linalg::Vector y;                       ///< n_samples
  std::vector<std::string> feature_names; ///< size n_features

  [[nodiscard]] std::size_t samples() const { return x.rows(); }
  [[nodiscard]] std::size_t features() const { return x.cols(); }
};

/// Configuration of the search.
struct FeatureSelectionConfig {
  std::size_t k_folds{5};
  bool include_intercept{true};
  /// Safety valve: abort if the subset count exceeds this (2^d growth).
  std::uint64_t max_subsets{1u << 22};
};

/// Result of evaluating one subset.
struct SubsetScore {
  std::uint64_t mask{0};  ///< bit i set => feature i included
  double cv_mse{0.0};
};

/// Outcome of the exhaustive search.
struct FeatureSelectionResult {
  SubsetScore best;
  std::uint64_t subsets_evaluated{0};
  /// Scores of every subset, in evaluation order (mask ascending).
  std::vector<SubsetScore> all_scores;

  [[nodiscard]] std::vector<std::string> best_features(
      const Dataset& data) const;
};

/// Exhaustive subset search minimising k-fold CV mean squared error.
class ExhaustiveFeatureSelection {
 public:
  explicit ExhaustiveFeatureSelection(FeatureSelectionConfig config = {});

  /// Evaluates a single subset (bitmask over features). Exposed so the DES
  /// calibration and tests can time individual evaluations.
  [[nodiscard]] double evaluate_subset(const Dataset& data,
                                       std::uint64_t mask) const;

  /// Runs the full search. `progress` (optional) is called after each
  /// subset with the number evaluated so far.
  [[nodiscard]] FeatureSelectionResult run(
      const Dataset& data,
      const std::function<void(std::uint64_t)>& progress = {}) const;

 private:
  FeatureSelectionConfig config_;
};

}  // namespace capgpu::workload
