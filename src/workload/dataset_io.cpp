#include "workload/dataset_io.hpp"

#include <fstream>
#include <sstream>
#include <vector>

#include "common/error.hpp"

namespace capgpu::workload {

namespace {

std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  std::istringstream in(line);
  while (std::getline(in, cell, ',')) cells.push_back(cell);
  if (!line.empty() && line.back() == ',') cells.emplace_back();
  return cells;
}

double parse_cell(const std::string& cell, std::size_t row,
                  const std::string& column) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(cell, &pos);
    CAPGPU_REQUIRE(pos == cell.size(), "trailing characters");
    return v;
  } catch (const std::exception&) {
    throw InvalidArgument("non-numeric cell '" + cell + "' in column " +
                          column + ", data row " + std::to_string(row));
  }
}

}  // namespace

Dataset load_dataset_csv(std::istream& in, const std::string& target_column) {
  std::string line;
  CAPGPU_REQUIRE(static_cast<bool>(std::getline(in, line)),
                 "CSV is empty (no header row)");
  const std::vector<std::string> header = split_csv_line(line);

  std::size_t target_index = header.size();
  std::vector<std::string> feature_names;
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i] == target_column) {
      CAPGPU_REQUIRE(target_index == header.size(),
                     "duplicate target column in header");
      target_index = i;
    } else {
      feature_names.push_back(header[i]);
    }
  }
  CAPGPU_REQUIRE(target_index < header.size(),
                 "target column '" + target_column + "' not in header");
  CAPGPU_REQUIRE(!feature_names.empty(), "CSV has no feature columns");

  std::vector<std::vector<double>> rows;
  std::vector<double> targets;
  std::size_t row_number = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++row_number;
    const auto cells = split_csv_line(line);
    CAPGPU_REQUIRE(cells.size() == header.size(),
                   "row " + std::to_string(row_number) + " has " +
                       std::to_string(cells.size()) + " cells, header has " +
                       std::to_string(header.size()));
    std::vector<double> features;
    features.reserve(feature_names.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const double v = parse_cell(cells[i], row_number, header[i]);
      if (i == target_index) {
        targets.push_back(v);
      } else {
        features.push_back(v);
      }
    }
    rows.push_back(std::move(features));
  }
  CAPGPU_REQUIRE(!rows.empty(), "CSV has no data rows");

  Dataset d;
  d.feature_names = std::move(feature_names);
  d.x = linalg::Matrix(rows.size(), d.feature_names.size());
  d.y = linalg::Vector(rows.size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    for (std::size_t c = 0; c < rows[r].size(); ++c) d.x(r, c) = rows[r][c];
    d.y[r] = targets[r];
  }
  return d;
}

Dataset load_dataset_csv_file(const std::string& path,
                              const std::string& target_column) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open dataset CSV: " + path);
  return load_dataset_csv(in, target_column);
}

void save_dataset_csv(std::ostream& out, const Dataset& dataset,
                      const std::string& target_column) {
  // Round-trippable doubles.
  out.precision(17);
  for (const auto& name : dataset.feature_names) out << name << ',';
  out << target_column << '\n';
  for (std::size_t r = 0; r < dataset.samples(); ++r) {
    for (std::size_t c = 0; c < dataset.features(); ++c) {
      out << dataset.x(r, c) << ',';
    }
    out << dataset.y[r] << '\n';
  }
}

}  // namespace capgpu::workload
