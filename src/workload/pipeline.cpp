#include "workload/pipeline.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "telemetry/metric_names.hpp"
#include "telemetry/trace.hpp"
#include "workload/latency_law.hpp"

namespace capgpu::workload {

namespace {
std::size_t default_queue_capacity(const StreamParams& p) {
  return p.queue_capacity ? p.queue_capacity : 2 * p.model.batch_size;
}
}  // namespace

InferenceStream::InferenceStream(sim::Engine& engine, hw::ServerModel& server,
                                 std::size_t gpu_index, StreamParams params,
                                 Rng rng)
    : engine_(&engine),
      server_(&server),
      gpu_index_(gpu_index),
      params_(std::move(params)),
      rng_(rng),
      queue_(default_queue_capacity(params_)),
      workers_(params_.n_preprocess_workers),
      batch_size_(params_.model.batch_size),
      images_(params_.model.batch_size / params_.model.e_min_batch_s) {
  CAPGPU_REQUIRE(gpu_index < server.gpu_count(), "gpu_index out of range");
  CAPGPU_REQUIRE(params_.n_preprocess_workers > 0,
                 "need at least one preprocessing worker");
  CAPGPU_REQUIRE(params_.model.batch_size > 0, "batch size must be positive");
  CAPGPU_REQUIRE(queue_.capacity() >= params_.model.batch_size,
                 "queue must hold at least one batch");

  auto& registry = telemetry::MetricsRegistry::current();
  const telemetry::Labels by_model{{"model", params_.model.name}};
  images_metric_ = &registry.counter(telemetry::metric::kImagesCompleted,
                                     "Images completed by the GPU stage",
                                     by_model);
  batches_metric_ = &registry.counter(telemetry::metric::kBatchesCompleted,
                                      "Batches executed by the GPU stage",
                                      by_model);
  telemetry::HistogramSpec latency_spec;
  latency_spec.min_bound = 1e-3;  // 1 ms .. 1000 s of batch execution
  latency_spec.decades = 6;
  latency_metric_ = &registry.histogram(
      telemetry::metric::kBatchLatencySeconds,
      "GPU batch execution latency (the quantity under SLO)", latency_spec,
      by_model);
  auto& tracer = telemetry::Tracer::current();
  const std::string track_name =
      "gpu" + std::to_string(gpu_index_) + ":" + params_.model.name;
  trace_tid_ = tracer.register_track(track_name);
  if (params_.stage_stats) {
    for (std::size_t s = 0; s < kStageCount; ++s) {
      stage_sketch_[s] = &registry.sketch(
          telemetry::metric::kStageLatencySeconds,
          "Per-request latency by pipeline stage",
          {{"model", params_.model.name}, {"stage", kStageNames[s]}});
      stage_tid_[s] = tracer.register_track(track_name + "/" + kStageNames[s]);
    }
    request_sketch_ = &registry.sketch(
        telemetry::metric::kRequestLatencySeconds,
        "End-to-end request latency (arrival to batch completion)", by_model);
  }
}

void InferenceStream::set_gpu_busy_util(double util) {
  CAPGPU_REQUIRE(util >= 0.0 && util <= 1.0, "utilization must be in [0,1]");
  params_.model.gpu_busy_util = util;
  if (gpu_busy_) {
    server_->gpu(gpu_index_).set_utilization(util);
  }
}

void InferenceStream::start() {
  CAPGPU_REQUIRE(!started_, "stream already started");
  started_ = true;
  for (std::size_t w = 0; w < workers_.size(); ++w) worker_start_image(w);
  consumer_try_start();
}

double InferenceStream::max_images_per_s() const {
  return static_cast<double>(params_.model.batch_size) /
         params_.model.e_min_batch_s;
}

double InferenceStream::preprocess_duration() {
  const Megahertz f = preprocess_frequency ? preprocess_frequency()
                                           : server_->cpu().frequency();
  const double f_ghz = f.value / 1000.0;
  const double base = params_.model.preprocess_s_ghz / f_ghz;
  const double j = params_.model.jitter_frac;
  return base * rng_.uniform(1.0 - j, 1.0 + j);
}

double InferenceStream::batch_duration() {
  const auto& gpu = server_->gpu(gpu_index_);
  const double base =
      latency_at(params_.model.e_min_for_batch(batch_size_),
                 params_.model.gpu_f_max, gpu.core_clock(),
                 params_.model.gamma) *
      gpu.memory_slowdown();
  const double j = params_.model.jitter_frac;
  return base * rng_.uniform(1.0 - j, 1.0 + j);
}

void InferenceStream::set_batch_size(std::size_t batch) {
  batch_size_ = std::clamp<std::size_t>(batch, 1, queue_.capacity());
  // A consumer parked on the old threshold must not stall behind it; move
  // the threshold (fires immediately if the queue already suffices).
  queue_.update_consumer_threshold(batch_size_);
}

void InferenceStream::set_worker_computing(std::size_t w, bool computing) {
  if (workers_[w].computing == computing) return;
  workers_[w].computing = computing;
  if (on_worker_compute_change) {
    on_worker_compute_change(computing ? +1 : -1);
  }
}

void InferenceStream::worker_start_image(std::size_t w) {
  const sim::SimTime now = engine_->now();
  sim::SimTime arrival = now;  // closed loop: requests materialise on demand
  if (params_.open_loop) {
    if (pending_arrivals_.empty()) {
      idle_workers_.push_back(w);  // nothing to do; submit_requests wakes us
      return;
    }
    arrival = pending_arrivals_.front();
    pending_arrivals_.pop_front();
  }
  RequestTimeline& timeline = workers_[w].timeline;
  timeline = RequestTimeline{};
  timeline.arrival = arrival;
  timeline.preprocess_start = now;
  set_worker_computing(w, true);
  const double compute = preprocess_duration();
  engine_->schedule_after(compute,
                          [this, w, compute] { worker_finish_image(w, compute); });
}

void InferenceStream::submit_requests(std::size_t n_images) {
  CAPGPU_REQUIRE(params_.open_loop,
                 "submit_requests is only valid in open-loop mode");
  const sim::SimTime now = engine_->now();
  for (std::size_t i = 0; i < n_images; ++i) pending_arrivals_.push_back(now);
  while (!idle_workers_.empty() && !pending_arrivals_.empty()) {
    const std::size_t w = idle_workers_.back();
    idle_workers_.pop_back();
    worker_start_image(w);
  }
}

void InferenceStream::worker_finish_image(std::size_t w, double compute) {
  set_worker_computing(w, false);  // compute done; may still block on queue
  workers_[w].timeline.preprocess_done = engine_->now();
  preprocess_compute_.record(engine_->now(), compute);
  worker_try_push(w);
}

void InferenceStream::worker_try_push(std::size_t w) {
  if (queue_.try_push(workers_[w].timeline, engine_->now())) {
    preprocess_latency_.record(
        engine_->now(), engine_->now() - workers_[w].timeline.preprocess_start);
    worker_start_image(w);
  } else {
    queue_.wait_for_space([this, w] { worker_try_push(w); });
  }
}

void InferenceStream::consumer_try_start() {
  const std::size_t batch = batch_size_;
  if (queue_.size() >= batch) {
    auto items = queue_.pop(batch);
    const sim::SimTime now = engine_->now();
    gpu_busy_ = true;
    server_->gpu(gpu_index_).set_utilization(params_.model.gpu_busy_util);
    for (auto& item : items) {
      item.batch_start = now;
      queue_delay_.record(now, now - item.enqueued);
    }
    batch_span_ = telemetry::Tracer::current().begin_span(trace_tid_, "batch",
                                                         "workload");
    const double exec = batch_duration();
    engine_->schedule_after(exec, [this, exec,
                                   items = std::move(items)]() mutable {
      consumer_finish_batch(exec, items);
    });
  } else {
    queue_.wait_for_items(batch, [this] { consumer_try_start(); });
  }
}

void InferenceStream::consumer_finish_batch(
    double exec_latency, std::vector<RequestTimeline>& items) {
  const sim::SimTime now = engine_->now();
  gpu_busy_ = false;
  server_->gpu(gpu_index_).set_utilization(0.0);
  batch_latency_.record(now, exec_latency);
  images_.record(now, static_cast<double>(items.size()));
  images_completed_ += items.size();
  ++batches_completed_;
  latency_metric_->observe(exec_latency);
  images_metric_->inc(static_cast<double>(items.size()));
  batches_metric_->inc();
  for (auto& item : items) item.completed = now;
  if (params_.stage_stats) record_stage_stats(exec_latency, items);
  if (batch_span_ != 0) {
    telemetry::Tracer::current().end_span(
        batch_span_, {{"images", static_cast<double>(items.size())},
                      {"exec_s", exec_latency}});
    batch_span_ = 0;
  }
  consumer_try_start();
}

void InferenceStream::record_stage_stats(
    double exec_latency, const std::vector<RequestTimeline>& items) {
  const auto n = static_cast<std::uint64_t>(items.size());
  const std::size_t count = items.size();
  constexpr auto kPq = static_cast<std::size_t>(Stage::kPreprocessQueue);
  constexpr auto kCpu = static_cast<std::size_t>(Stage::kCpuPreprocess);
  constexpr auto kBq = static_cast<std::size_t>(Stage::kGpuBatchQueue);
  constexpr auto kExec = static_cast<std::size_t>(Stage::kGpuExec);
  const bool open = params_.open_loop;
  using telemetry::QuantileSketch;
  // This is the pipeline's hot loop — the selfperf timeline-overhead guard
  // holds the whole block under 5% of the event rate. A steady-state
  // deterministic pipeline produces the same per-batch stage durations
  // every batch (to within ULP jiggle, which the sketch quantization
  // absorbs), so the common case is one fused traversal comparing the
  // batch's quantized durations against the last distinct batch's span
  // records: on a match the batch is deferred as a pending replay and no
  // sketch is touched at all.
  bool recorded = false;
  if (rec_valid_ && rec_cpu_.n == n) {
    const std::uint64_t* qc = rec_cpu_.quant.data();
    const std::uint64_t* qb = rec_bq_.quant.data();
    const std::uint64_t* qt = rec_total_.quant.data();
    const std::uint64_t* qp = open ? rec_pq_.quant.data() : nullptr;
    std::uint64_t diff =
        QuantileSketch::quantized_bits(exec_latency) ^ rec_exec_.quant[0];
    for (std::size_t i = 0; i < count; ++i) {
      const RequestTimeline& tl = items[i];
      diff |= QuantileSketch::quantized_bits(tl.preprocess_done -
                                             tl.preprocess_start) ^
              qc[i];
      diff |=
          QuantileSketch::quantized_bits(tl.batch_start - tl.preprocess_done) ^
          qb[i];
      diff |= QuantileSketch::quantized_bits(tl.completed - tl.arrival) ^
              qt[i];
      if (open) {
        diff |= QuantileSketch::quantized_bits(tl.preprocess_start -
                                               tl.arrival) ^
                qp[i];
      }
    }
    if (diff == 0) {
      ++pending_batches_;
      stage_sum_[kCpu] += rec_cpu_.quant_sum;
      stage_sum_[kBq] += rec_bq_.quant_sum;
      stage_sum_[kExec] += rec_exec_.quant_sum * static_cast<double>(n);
      if (open) stage_sum_[kPq] += rec_pq_.quant_sum;
      recorded = true;
    }
  }
  if (!recorded) {
    // Fingerprint miss: flush the deferred batches against the old
    // records, then observe this batch directly while rebuilding them.
    flush_stage_stats();
    stage_scratch_.resize((open ? 4 : 3) * count);
    double* cpu_lane = stage_scratch_.data();
    double* queue_lane = cpu_lane + count;
    double* total_lane = queue_lane + count;
    double* pq_lane = total_lane + count;
    for (std::size_t i = 0; i < count; ++i) {
      const RequestTimeline& tl = items[i];
      cpu_lane[i] = tl.preprocess_done - tl.preprocess_start;
      queue_lane[i] = tl.batch_start - tl.preprocess_done;
      total_lane[i] = tl.completed - tl.arrival;
      if (open) pq_lane[i] = tl.preprocess_start - tl.arrival;
    }
    if (open) {
      stage_sum_[kPq] +=
          stage_sketch_[kPq]->observe_span_record(pq_lane, count, rec_pq_);
    } else {
      // Closed loop: arrival == preprocess_start by construction, so the
      // preprocess-queue stage is identically zero.
      stage_sketch_[kPq]->observe_many(0.0, n);
    }
    stage_sum_[kCpu] +=
        stage_sketch_[kCpu]->observe_span_record(cpu_lane, count, rec_cpu_);
    stage_sum_[kBq] +=
        stage_sketch_[kBq]->observe_span_record(queue_lane, count, rec_bq_);
    request_sketch_->observe_span_record(total_lane, count, rec_total_);
    // GPU execution is shared by the whole batch: record a 1-element span
    // and multiply it out, so replays stay quantization-consistent.
    stage_sketch_[kExec]->observe_span_record(&exec_latency, 1, rec_exec_);
    if (n > 1) stage_sketch_[kExec]->apply_record(rec_exec_, n - 1);
    stage_sum_[kExec] += rec_exec_.quant_sum * static_cast<double>(n);
    rec_valid_ = true;
  }
  for (std::size_t s = 0; s < kStageCount; ++s) stage_count_[s] += n;

  auto& tracer = telemetry::Tracer::current();
  if (!tracer.enabled()) return;
  // One aggregated span per stage per batch (min start to max end across
  // the batch's requests) keeps the trace volume proportional to batches,
  // not images, while still showing where the batch's time went.
  for (std::size_t s = 0; s < kStageCount; ++s) {
    double t0 = 0.0;
    double t1 = 0.0;
    double sum = 0.0;
    for (std::size_t i = 0; i < items.size(); ++i) {
      const auto& tl = items[i];
      const double end = (s == 0)   ? tl.preprocess_start
                         : (s == 1) ? tl.preprocess_done
                         : (s == 2) ? tl.batch_start
                                    : tl.completed;
      const double dur = tl.stage_seconds(static_cast<Stage>(s));
      const double start = end - dur;
      if (i == 0 || start < t0) t0 = start;
      if (i == 0 || end > t1) t1 = end;
      sum += dur;
    }
    tracer.complete(stage_tid_[s], kStageNames[s], "workload", t0, t1,
                    {{"images", static_cast<double>(n)},
                     {"mean_s", sum / static_cast<double>(n)}});
  }
}

void InferenceStream::flush_stage_stats() {
  if (pending_batches_ == 0) return;
  const std::uint64_t k = pending_batches_;
  pending_batches_ = 0;
  const std::uint64_t n = rec_cpu_.n;
  constexpr auto kPq = static_cast<std::size_t>(Stage::kPreprocessQueue);
  constexpr auto kCpu = static_cast<std::size_t>(Stage::kCpuPreprocess);
  constexpr auto kBq = static_cast<std::size_t>(Stage::kGpuBatchQueue);
  constexpr auto kExec = static_cast<std::size_t>(Stage::kGpuExec);
  if (params_.open_loop) {
    stage_sketch_[kPq]->apply_record(rec_pq_, k);
  } else {
    stage_sketch_[kPq]->observe_many(0.0, k * n);
  }
  stage_sketch_[kCpu]->apply_record(rec_cpu_, k);
  stage_sketch_[kBq]->apply_record(rec_bq_, k);
  request_sketch_->apply_record(rec_total_, k);
  stage_sketch_[kExec]->apply_record(rec_exec_, k * n);
}

std::array<double, kStageCount> InferenceStream::take_stage_period_means() {
  flush_stage_stats();
  std::array<double, kStageCount> means{};
  for (std::size_t s = 0; s < kStageCount; ++s) {
    means[s] = stage_count_[s]
                   ? stage_sum_[s] / static_cast<double>(stage_count_[s])
                   : 0.0;
    stage_sum_[s] = 0.0;
    stage_count_[s] = 0;
  }
  return means;
}

}  // namespace capgpu::workload
