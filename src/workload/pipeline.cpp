#include "workload/pipeline.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "telemetry/metric_names.hpp"
#include "telemetry/trace.hpp"
#include "workload/latency_law.hpp"

namespace capgpu::workload {

namespace {
std::size_t default_queue_capacity(const StreamParams& p) {
  return p.queue_capacity ? p.queue_capacity : 2 * p.model.batch_size;
}
}  // namespace

InferenceStream::InferenceStream(sim::Engine& engine, hw::ServerModel& server,
                                 std::size_t gpu_index, StreamParams params,
                                 Rng rng)
    : engine_(&engine),
      server_(&server),
      gpu_index_(gpu_index),
      params_(std::move(params)),
      rng_(rng),
      queue_(default_queue_capacity(params_)),
      workers_(params_.n_preprocess_workers),
      batch_size_(params_.model.batch_size),
      images_(params_.model.batch_size / params_.model.e_min_batch_s) {
  CAPGPU_REQUIRE(gpu_index < server.gpu_count(), "gpu_index out of range");
  CAPGPU_REQUIRE(params_.n_preprocess_workers > 0,
                 "need at least one preprocessing worker");
  CAPGPU_REQUIRE(params_.model.batch_size > 0, "batch size must be positive");
  CAPGPU_REQUIRE(queue_.capacity() >= params_.model.batch_size,
                 "queue must hold at least one batch");

  auto& registry = telemetry::MetricsRegistry::current();
  const telemetry::Labels by_model{{"model", params_.model.name}};
  images_metric_ = &registry.counter(telemetry::metric::kImagesCompleted,
                                     "Images completed by the GPU stage",
                                     by_model);
  batches_metric_ = &registry.counter(telemetry::metric::kBatchesCompleted,
                                      "Batches executed by the GPU stage",
                                      by_model);
  telemetry::HistogramSpec latency_spec;
  latency_spec.min_bound = 1e-3;  // 1 ms .. 1000 s of batch execution
  latency_spec.decades = 6;
  latency_metric_ = &registry.histogram(
      telemetry::metric::kBatchLatencySeconds,
      "GPU batch execution latency (the quantity under SLO)", latency_spec,
      by_model);
  trace_tid_ = telemetry::Tracer::current().register_track(
      "gpu" + std::to_string(gpu_index_) + ":" + params_.model.name);
}

void InferenceStream::set_gpu_busy_util(double util) {
  CAPGPU_REQUIRE(util >= 0.0 && util <= 1.0, "utilization must be in [0,1]");
  params_.model.gpu_busy_util = util;
  if (gpu_busy_) {
    server_->gpu(gpu_index_).set_utilization(util);
  }
}

void InferenceStream::start() {
  CAPGPU_REQUIRE(!started_, "stream already started");
  started_ = true;
  for (std::size_t w = 0; w < workers_.size(); ++w) worker_start_image(w);
  consumer_try_start();
}

double InferenceStream::max_images_per_s() const {
  return static_cast<double>(params_.model.batch_size) /
         params_.model.e_min_batch_s;
}

double InferenceStream::preprocess_duration() {
  const Megahertz f = preprocess_frequency ? preprocess_frequency()
                                           : server_->cpu().frequency();
  const double f_ghz = f.value / 1000.0;
  const double base = params_.model.preprocess_s_ghz / f_ghz;
  const double j = params_.model.jitter_frac;
  return base * rng_.uniform(1.0 - j, 1.0 + j);
}

double InferenceStream::batch_duration() {
  const auto& gpu = server_->gpu(gpu_index_);
  const double base =
      latency_at(params_.model.e_min_for_batch(batch_size_),
                 params_.model.gpu_f_max, gpu.core_clock(),
                 params_.model.gamma) *
      gpu.memory_slowdown();
  const double j = params_.model.jitter_frac;
  return base * rng_.uniform(1.0 - j, 1.0 + j);
}

void InferenceStream::set_batch_size(std::size_t batch) {
  batch_size_ = std::clamp<std::size_t>(batch, 1, queue_.capacity());
  // A consumer parked on the old threshold must not stall behind it; move
  // the threshold (fires immediately if the queue already suffices).
  queue_.update_consumer_threshold(batch_size_);
}

void InferenceStream::set_worker_computing(std::size_t w, bool computing) {
  if (workers_[w].computing == computing) return;
  workers_[w].computing = computing;
  if (on_worker_compute_change) {
    on_worker_compute_change(computing ? +1 : -1);
  }
}

void InferenceStream::worker_start_image(std::size_t w) {
  if (params_.open_loop) {
    if (pending_requests_ == 0) {
      idle_workers_.push_back(w);  // nothing to do; submit_requests wakes us
      return;
    }
    --pending_requests_;
  }
  workers_[w].image_started = engine_->now();
  set_worker_computing(w, true);
  const double compute = preprocess_duration();
  engine_->schedule_after(compute,
                          [this, w, compute] { worker_finish_image(w, compute); });
}

void InferenceStream::submit_requests(std::size_t n_images) {
  CAPGPU_REQUIRE(params_.open_loop,
                 "submit_requests is only valid in open-loop mode");
  pending_requests_ += n_images;
  while (!idle_workers_.empty() && pending_requests_ > 0) {
    const std::size_t w = idle_workers_.back();
    idle_workers_.pop_back();
    worker_start_image(w);
  }
}

void InferenceStream::worker_finish_image(std::size_t w, double compute) {
  set_worker_computing(w, false);  // compute done; may still block on queue
  preprocess_compute_.record(engine_->now(), compute);
  worker_try_push(w);
}

void InferenceStream::worker_try_push(std::size_t w) {
  if (queue_.try_push(engine_->now())) {
    preprocess_latency_.record(engine_->now(),
                               engine_->now() - workers_[w].image_started);
    worker_start_image(w);
  } else {
    queue_.wait_for_space([this, w] { worker_try_push(w); });
  }
}

void InferenceStream::consumer_try_start() {
  const std::size_t batch = batch_size_;
  if (queue_.size() >= batch) {
    auto stamps = queue_.pop(batch);
    gpu_busy_ = true;
    server_->gpu(gpu_index_).set_utilization(params_.model.gpu_busy_util);
    for (const auto stamp : stamps) {
      queue_delay_.record(engine_->now(), engine_->now() - stamp);
    }
    batch_span_ = telemetry::Tracer::current().begin_span(trace_tid_, "batch",
                                                         "workload");
    const double exec = batch_duration();
    engine_->schedule_after(
        exec, [this, exec, stamps] { consumer_finish_batch(exec, stamps); });
  } else {
    queue_.wait_for_items(batch, [this] { consumer_try_start(); });
  }
}

void InferenceStream::consumer_finish_batch(
    double exec_latency, const std::vector<sim::SimTime>& stamps) {
  gpu_busy_ = false;
  server_->gpu(gpu_index_).set_utilization(0.0);
  batch_latency_.record(engine_->now(), exec_latency);
  images_.record(engine_->now(), static_cast<double>(stamps.size()));
  images_completed_ += stamps.size();
  ++batches_completed_;
  latency_metric_->observe(exec_latency);
  images_metric_->inc(static_cast<double>(stamps.size()));
  batches_metric_->inc();
  if (batch_span_ != 0) {
    telemetry::Tracer::current().end_span(
        batch_span_, {{"images", static_cast<double>(stamps.size())},
                      {"exec_s", exec_latency}});
    batch_span_ = 0;
  }
  consumer_try_start();
}

}  // namespace capgpu::workload
