#include "workload/pipeline.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "telemetry/metric_names.hpp"
#include "telemetry/trace.hpp"
#include "workload/latency_law.hpp"

namespace capgpu::workload {

namespace {
std::size_t default_queue_capacity(const StreamParams& p) {
  return p.queue_capacity ? p.queue_capacity : 2 * p.model.batch_size;
}
}  // namespace

InferenceStream::InferenceStream(sim::Engine& engine, hw::ServerModel& server,
                                 std::size_t gpu_index, StreamParams params,
                                 Rng rng)
    : engine_(&engine),
      server_(&server),
      gpu_index_(gpu_index),
      params_(std::move(params)),
      rng_(rng),
      queue_(default_queue_capacity(params_)),
      workers_(params_.n_preprocess_workers),
      batch_size_(params_.model.batch_size),
      images_(params_.model.batch_size / params_.model.e_min_batch_s) {
  CAPGPU_REQUIRE(gpu_index < server.gpu_count(), "gpu_index out of range");
  CAPGPU_REQUIRE(params_.n_preprocess_workers > 0,
                 "need at least one preprocessing worker");
  CAPGPU_REQUIRE(params_.model.batch_size > 0, "batch size must be positive");
  CAPGPU_REQUIRE(queue_.capacity() >= params_.model.batch_size,
                 "queue must hold at least one batch");

  // Worst-case live requests: one per worker, a full queue, and one batch
  // executing on the GPU. Reserving it up front keeps acquire()/release()
  // off the allocator for the whole run.
  pool_.reserve(workers_.size() + 2 * queue_.capacity());
  batch_ids_.resize(queue_.capacity());
  blocked_workers_.reserve(workers_.size());
  idle_workers_.reserve(workers_.size());
  pending_arrivals_.reserve(256);
  if (params_.stage_stats) {
    stage_scratch_.reserve(4 * queue_.capacity());
  }

  auto& registry = telemetry::MetricsRegistry::current();
  const telemetry::Labels by_model{{"model", params_.model.name}};
  images_metric_ = &registry.counter(telemetry::metric::kImagesCompleted,
                                     "Images completed by the GPU stage",
                                     by_model);
  batches_metric_ = &registry.counter(telemetry::metric::kBatchesCompleted,
                                      "Batches executed by the GPU stage",
                                      by_model);
  telemetry::HistogramSpec latency_spec;
  latency_spec.min_bound = 1e-3;  // 1 ms .. 1000 s of batch execution
  latency_spec.decades = 6;
  latency_metric_ = &registry.histogram(
      telemetry::metric::kBatchLatencySeconds,
      "GPU batch execution latency (the quantity under SLO)", latency_spec,
      by_model);
  auto& tracer = telemetry::Tracer::current();
  const std::string track_name =
      "gpu" + std::to_string(gpu_index_) + ":" + params_.model.name;
  trace_tid_ = tracer.register_track(track_name);
  if (params_.stage_stats) {
    for (std::size_t s = 0; s < kStageCount; ++s) {
      stage_sketch_[s] = &registry.sketch(
          telemetry::metric::kStageLatencySeconds,
          "Per-request latency by pipeline stage",
          {{"model", params_.model.name}, {"stage", kStageNames[s]}});
      stage_tid_[s] = tracer.register_track(track_name + "/" + kStageNames[s]);
    }
    request_sketch_ = &registry.sketch(
        telemetry::metric::kRequestLatencySeconds,
        "End-to-end request latency (arrival to batch completion)", by_model);
  }
}

void InferenceStream::set_gpu_busy_util(double util) {
  CAPGPU_REQUIRE(util >= 0.0 && util <= 1.0, "utilization must be in [0,1]");
  params_.model.gpu_busy_util = util;
  if (gpu_busy_) {
    server_->gpu(gpu_index_).set_utilization(util);
  }
}

void InferenceStream::start() {
  CAPGPU_REQUIRE(!started_, "stream already started");
  started_ = true;
  for (std::size_t w = 0; w < workers_.size(); ++w) worker_start_image(w);
  consumer_try_start();
}

double InferenceStream::max_images_per_s() const {
  return static_cast<double>(params_.model.batch_size) /
         params_.model.e_min_batch_s;
}

double InferenceStream::preprocess_duration() {
  const Megahertz f = preprocess_frequency ? preprocess_frequency()
                                           : server_->cpu().frequency();
  const double f_ghz = f.value / 1000.0;
  const double base = params_.model.preprocess_s_ghz / f_ghz;
  const double j = params_.model.jitter_frac;
  return base * rng_.uniform(1.0 - j, 1.0 + j);
}

double InferenceStream::batch_duration() {
  const auto& gpu = server_->gpu(gpu_index_);
  const double base =
      latency_at(params_.model.e_min_for_batch(batch_size_),
                 params_.model.gpu_f_max, gpu.core_clock(),
                 params_.model.gamma) *
      gpu.memory_slowdown();
  const double j = params_.model.jitter_frac;
  return base * rng_.uniform(1.0 - j, 1.0 + j);
}

void InferenceStream::set_batch_size(std::size_t batch) {
  batch_size_ = std::clamp<std::size_t>(batch, 1, queue_.capacity());
  // A consumer parked on the old threshold must not stall behind it; move
  // the threshold (fires immediately if the queue already suffices).
  if (consumer_waiting_) {
    consumer_threshold_ = batch_size_;
    if (queue_.size() >= consumer_threshold_) {
      consumer_waiting_ = false;
      consumer_try_start();
    }
  }
}

void InferenceStream::set_worker_computing(std::size_t w, bool computing) {
  if (workers_[w].computing == computing) return;
  workers_[w].computing = computing;
  if (on_worker_compute_change) {
    on_worker_compute_change(computing ? +1 : -1);
  }
}

void InferenceStream::worker_start_image(std::size_t w) {
  const sim::SimTime now = engine_->now();
  sim::SimTime arrival = now;  // closed loop: requests materialise on demand
  if (params_.open_loop) {
    if (pending_arrivals_.empty() || pending_arrivals_.front() > now) {
      // Nothing has arrived yet; submit/wakeup re-starts us.
      idle_workers_.push_back(w);
      maybe_arm_arrival_wakeup();
      return;
    }
    arrival = pending_arrivals_.front();
    pending_arrivals_.pop_front();
  }
  const RequestId id = pool_.acquire();
  workers_[w].req = id;
  pool_.arrival[id] = arrival;
  pool_.preprocess_start[id] = now;
  set_worker_computing(w, true);
  const double compute = preprocess_duration();
  workers_[w].compute = compute;
  // Workers are self-perpetuating event chains: in the common case this
  // start runs inside the worker's own completion callback, so the fired
  // event re-arms in place (no slot recycle, no callback rebuild, one
  // sift-down). When the start comes from another event — initial start,
  // a blocked worker woken by the consumer, an arrival wakeup — the stored
  // id is not the firing event and we fall back to a fresh schedule.
  if (!engine_->try_reschedule_firing(workers_[w].event, compute)) {
    workers_[w].event = engine_->schedule_after(
        compute, [this, w] { worker_finish_image(w); });
  }
}

void InferenceStream::submit_requests(std::size_t n_images) {
  CAPGPU_REQUIRE(params_.open_loop,
                 "submit_requests is only valid in open-loop mode");
  const sim::SimTime now = engine_->now();
  for (std::size_t i = 0; i < n_images; ++i) pending_arrivals_.push_back(now);
  wake_ready_arrivals();
}

void InferenceStream::submit_arrivals(const double* times_s, std::size_t n) {
  CAPGPU_REQUIRE(params_.open_loop,
                 "submit_arrivals is only valid in open-loop mode");
  pending_arrivals_.append(times_s, n);
  wake_ready_arrivals();
}

void InferenceStream::wake_ready_arrivals() {
  const sim::SimTime now = engine_->now();
  while (!idle_workers_.empty() && !pending_arrivals_.empty() &&
         pending_arrivals_.front() <= now) {
    const std::size_t w = idle_workers_.back();
    idle_workers_.pop_back();
    worker_start_image(w);
  }
  maybe_arm_arrival_wakeup();
}

void InferenceStream::maybe_arm_arrival_wakeup() {
  // Only needed when workers idle ahead of a future arrival (bulk mode);
  // busy workers re-check the pending ring the moment they free up.
  if (arrival_wakeup_ != 0 || idle_workers_.empty() ||
      pending_arrivals_.empty()) {
    return;
  }
  arrival_wakeup_ = engine_->schedule_at(pending_arrivals_.front(), [this] {
    arrival_wakeup_ = 0;
    wake_ready_arrivals();
  });
}

void InferenceStream::worker_finish_image(std::size_t w) {
  set_worker_computing(w, false);  // compute done; may still block on queue
  pool_.preprocess_done[workers_[w].req] = engine_->now();
  preprocess_compute_.record(engine_->now(), workers_[w].compute);
  worker_try_push(w);
}

void InferenceStream::worker_try_push(std::size_t w) {
  if (!queue_.full()) {
    const RequestId id = workers_[w].req;
    pool_.enqueued[id] = engine_->now();
    queue_.push(id);
    // The push that reaches the batch threshold starts the consumer
    // synchronously (it may pop this very id into a batch; the pool lanes
    // stay valid either way).
    if (consumer_waiting_ && queue_.size() >= consumer_threshold_) {
      consumer_waiting_ = false;
      consumer_try_start();
    }
    preprocess_latency_.record(engine_->now(),
                               engine_->now() - pool_.preprocess_start[id]);
    worker_start_image(w);
  } else {
    blocked_workers_.push_back(w);  // consumer_try_start wakes us LIFO
  }
}

void InferenceStream::consumer_try_start() {
  const std::size_t batch = batch_size_;
  if (queue_.size() >= batch) {
    queue_.pop_into(batch_ids_.data(), batch);
    in_flight_ = batch;
    // Wake blocked producers newest-first until the freed space is gone —
    // before the batch stamps, matching the historical queue's pop order.
    while (!queue_.full() && !blocked_workers_.empty()) {
      const std::size_t w = blocked_workers_.back();
      blocked_workers_.pop_back();
      worker_try_push(w);
    }
    const sim::SimTime now = engine_->now();
    gpu_busy_ = true;
    server_->gpu(gpu_index_).set_utilization(params_.model.gpu_busy_util);
    for (std::size_t i = 0; i < batch; ++i) {
      const RequestId id = batch_ids_[i];
      pool_.batch_start[id] = now;
      queue_delay_.record(now, now - pool_.enqueued[id]);
    }
    batch_span_ = telemetry::Tracer::current().begin_span(trace_tid_, "batch",
                                                         "workload");
    const double exec = batch_duration();
    batch_exec_ = exec;
    // Saturated streams chain batch after batch from inside the previous
    // completion: reuse the fired event like the workers do.
    if (!engine_->try_reschedule_firing(batch_event_, exec)) {
      batch_event_ = engine_->schedule_after(
          exec, [this] { consumer_finish_batch(batch_exec_); });
    }
  } else {
    consumer_waiting_ = true;
    consumer_threshold_ = batch;
  }
}

void InferenceStream::consumer_finish_batch(double exec_latency) {
  const sim::SimTime now = engine_->now();
  const std::size_t count = in_flight_;
  gpu_busy_ = false;
  server_->gpu(gpu_index_).set_utilization(0.0);
  batch_latency_.record(now, exec_latency);
  images_.record(now, static_cast<double>(count));
  images_completed_ += count;
  ++batches_completed_;
  latency_metric_->observe(exec_latency);
  images_metric_->inc(static_cast<double>(count));
  batches_metric_->inc();
  // Completion is batch-wide: `now` is every request's completed stamp,
  // passed straight into the attribution fan-out instead of written per id.
  if (params_.stage_stats) {
    record_stage_stats(exec_latency, batch_ids_.data(), count, now);
  }
  if (batch_span_ != 0) {
    telemetry::Tracer::current().end_span(
        batch_span_, {{"images", static_cast<double>(count)},
                      {"exec_s", exec_latency}});
    batch_span_ = 0;
  }
  for (std::size_t i = 0; i < count; ++i) pool_.release(batch_ids_[i]);
  in_flight_ = 0;
  consumer_try_start();
}

void InferenceStream::record_stage_stats(double exec_latency,
                                         const RequestId* ids,
                                         std::size_t count,
                                         sim::SimTime completed) {
  const auto n = static_cast<std::uint64_t>(count);
  constexpr auto kPq = static_cast<std::size_t>(Stage::kPreprocessQueue);
  constexpr auto kCpu = static_cast<std::size_t>(Stage::kCpuPreprocess);
  constexpr auto kBq = static_cast<std::size_t>(Stage::kGpuBatchQueue);
  constexpr auto kExec = static_cast<std::size_t>(Stage::kGpuExec);
  const bool open = params_.open_loop;
  using telemetry::QuantileSketch;
  const sim::SimTime* arrival = pool_.arrival.data();
  const sim::SimTime* pre_start = pool_.preprocess_start.data();
  const sim::SimTime* pre_done = pool_.preprocess_done.data();
  const sim::SimTime* bstart = pool_.batch_start.data();
  // This is the pipeline's hot loop — the selfperf timeline-overhead guard
  // holds the whole block under 5% of the event rate. A steady-state
  // deterministic pipeline produces the same per-batch stage durations
  // every batch (to within ULP jiggle, which the sketch quantization
  // absorbs), so the common case is one fused traversal comparing the
  // batch's quantized durations against the last distinct batch's span
  // records: on a match the batch is deferred as a pending replay and no
  // sketch is touched at all.
  bool recorded = false;
  if (rec_valid_ && rec_cpu_.n == n) {
    const std::uint64_t* qc = rec_cpu_.quant.data();
    const std::uint64_t* qb = rec_bq_.quant.data();
    const std::uint64_t* qt = rec_total_.quant.data();
    const std::uint64_t* qp = open ? rec_pq_.quant.data() : nullptr;
    std::uint64_t diff =
        QuantileSketch::quantized_bits(exec_latency) ^ rec_exec_.quant[0];
    for (std::size_t i = 0; i < count; ++i) {
      const RequestId id = ids[i];
      diff |= QuantileSketch::quantized_bits(pre_done[id] - pre_start[id]) ^
              qc[i];
      diff |= QuantileSketch::quantized_bits(bstart[id] - pre_done[id]) ^
              qb[i];
      diff |= QuantileSketch::quantized_bits(completed - arrival[id]) ^ qt[i];
      if (open) {
        diff |= QuantileSketch::quantized_bits(pre_start[id] - arrival[id]) ^
                qp[i];
      }
    }
    if (diff == 0) {
      ++pending_batches_;
      stage_sum_[kCpu] += rec_cpu_.quant_sum;
      stage_sum_[kBq] += rec_bq_.quant_sum;
      stage_sum_[kExec] += rec_exec_.quant_sum * static_cast<double>(n);
      if (open) stage_sum_[kPq] += rec_pq_.quant_sum;
      recorded = true;
    }
  }
  if (!recorded) {
    // Fingerprint miss: flush the deferred batches against the old
    // records, then observe this batch directly while rebuilding them.
    flush_stage_stats();
    stage_scratch_.resize((open ? 4 : 3) * count);
    double* cpu_lane = stage_scratch_.data();
    double* queue_lane = cpu_lane + count;
    double* total_lane = queue_lane + count;
    double* pq_lane = total_lane + count;
    for (std::size_t i = 0; i < count; ++i) {
      const RequestId id = ids[i];
      cpu_lane[i] = pre_done[id] - pre_start[id];
      queue_lane[i] = bstart[id] - pre_done[id];
      total_lane[i] = completed - arrival[id];
      if (open) pq_lane[i] = pre_start[id] - arrival[id];
    }
    if (open) {
      stage_sum_[kPq] +=
          stage_sketch_[kPq]->observe_span_record(pq_lane, count, rec_pq_);
    } else {
      // Closed loop: arrival == preprocess_start by construction, so the
      // preprocess-queue stage is identically zero.
      stage_sketch_[kPq]->observe_many(0.0, n);
    }
    stage_sum_[kCpu] +=
        stage_sketch_[kCpu]->observe_span_record(cpu_lane, count, rec_cpu_);
    stage_sum_[kBq] +=
        stage_sketch_[kBq]->observe_span_record(queue_lane, count, rec_bq_);
    request_sketch_->observe_span_record(total_lane, count, rec_total_);
    // GPU execution is shared by the whole batch: record a 1-element span
    // and multiply it out, so replays stay quantization-consistent.
    stage_sketch_[kExec]->observe_span_record(&exec_latency, 1, rec_exec_);
    if (n > 1) stage_sketch_[kExec]->apply_record(rec_exec_, n - 1);
    stage_sum_[kExec] += rec_exec_.quant_sum * static_cast<double>(n);
    rec_valid_ = true;
  }
  for (std::size_t s = 0; s < kStageCount; ++s) stage_count_[s] += n;

  static_assert(telemetry::kEnergyStageCount == kStageCount,
                "energy ledger stage layout must mirror the pipeline's");
  if (energy_recording_) {
    // Both branches above leave rec_* describing this batch (the hit path
    // matched them, the miss path rebuilt them), so the quantized stage
    // sums come for free.
    telemetry::EnergyBatch b;
    b.start_s = completed - exec_latency;
    b.end_s = completed;
    b.images = static_cast<std::uint32_t>(n);
    b.stage_s[kPq] = open ? rec_pq_.quant_sum : 0.0;
    b.stage_s[kCpu] = rec_cpu_.quant_sum;
    b.stage_s[kBq] = rec_bq_.quant_sum;
    b.stage_s[kExec] = rec_exec_.quant_sum * static_cast<double>(n);
    energy_batches_.push_back(b);
  }

  auto& tracer = telemetry::Tracer::current();
  if (!tracer.enabled()) return;
  // One aggregated span per stage per batch (min start to max end across
  // the batch's requests) keeps the trace volume proportional to batches,
  // not images, while still showing where the batch's time went.
  for (std::size_t s = 0; s < kStageCount; ++s) {
    double t0 = 0.0;
    double t1 = 0.0;
    double sum = 0.0;
    for (std::size_t i = 0; i < count; ++i) {
      const RequestId id = ids[i];
      double end = 0.0;
      double dur = 0.0;
      switch (static_cast<Stage>(s)) {
        case Stage::kPreprocessQueue:
          end = pre_start[id];
          dur = pre_start[id] - arrival[id];
          break;
        case Stage::kCpuPreprocess:
          end = pre_done[id];
          dur = pre_done[id] - pre_start[id];
          break;
        case Stage::kGpuBatchQueue:
          end = bstart[id];
          dur = bstart[id] - pre_done[id];
          break;
        case Stage::kGpuExec:
          end = completed;
          dur = completed - bstart[id];
          break;
      }
      const double start = end - dur;
      if (i == 0 || start < t0) t0 = start;
      if (i == 0 || end > t1) t1 = end;
      sum += dur;
    }
    tracer.complete(stage_tid_[s], kStageNames[s], "workload", t0, t1,
                    {{"images", static_cast<double>(n)},
                     {"mean_s", sum / static_cast<double>(n)}});
  }
}

void InferenceStream::flush_stage_stats() {
  if (pending_batches_ == 0) return;
  const std::uint64_t k = pending_batches_;
  pending_batches_ = 0;
  const std::uint64_t n = rec_cpu_.n;
  constexpr auto kPq = static_cast<std::size_t>(Stage::kPreprocessQueue);
  constexpr auto kCpu = static_cast<std::size_t>(Stage::kCpuPreprocess);
  constexpr auto kBq = static_cast<std::size_t>(Stage::kGpuBatchQueue);
  constexpr auto kExec = static_cast<std::size_t>(Stage::kGpuExec);
  if (params_.open_loop) {
    stage_sketch_[kPq]->apply_record(rec_pq_, k);
  } else {
    stage_sketch_[kPq]->observe_many(0.0, k * n);
  }
  stage_sketch_[kCpu]->apply_record(rec_cpu_, k);
  stage_sketch_[kBq]->apply_record(rec_bq_, k);
  request_sketch_->apply_record(rec_total_, k);
  stage_sketch_[kExec]->apply_record(rec_exec_, k * n);
}

std::array<double, kStageCount> InferenceStream::take_stage_period_means() {
  flush_stage_stats();
  std::array<double, kStageCount> means{};
  for (std::size_t s = 0; s < kStageCount; ++s) {
    means[s] = stage_count_[s]
                   ? stage_sum_[s] / static_cast<double>(stage_count_[s])
                   : 0.0;
    stage_sum_[s] = 0.0;
    stage_count_[s] = 0;
  }
  return means;
}

}  // namespace capgpu::workload
