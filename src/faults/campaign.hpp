// Declarative chaos campaigns with resilience scoring.
//
// A campaign is a staged fault timeline over a rack of CapGPU-capped rigs:
// a JSON document names the domain topology, the workload shape, the
// coordinator's health-management knobs, and a list of stages, each
// attaching one scripted fault (faults::DomainFault) to one domain node.
// run_campaign() assembles the rack — one single-GPU rig per leaf of the
// DomainTree, each driven by its own hardened control loop — executes the
// timeline as engine events, and scores every stage into a
// telemetry::ResilienceEntry (MTTR, SLO error-budget burned during and
// after the fault, recovery overshoot, fail-safe dwell), pushed into
// ResilienceRegistry::current() so --resilience-out renders the scorecard.
//
// The A/B the acceptance test cares about: the same campaign run with
// coordinator health management on (`health_managed = true`) must burn
// strictly less error budget than with it off — quarantining dark rigs at
// their minimum frees budget for the healthy, burning ones.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "faults/domain_tree.hpp"
#include "rack/allocation.hpp"
#include "rack/coordinator.hpp"
#include "telemetry/resilience.hpp"

namespace capgpu::faults {

/// One stage of the campaign timeline: a named fault on a domain node.
struct CampaignStage {
  std::string name;
  std::string node;  ///< domain path ("", "rackR", "rackR/pduP", ...)
  DomainFault fault;
};

/// The parsed campaign document.
struct CampaignConfig {
  std::string name{"campaign"};
  std::uint64_t seed{0xC0FFEEULL};
  DomainTopology topology{};
  double rack_budget_w{2400.0};
  std::size_t periods{150};
  double period_s{4.0};
  /// Coordinator rebalance cadence, in control periods.
  std::size_t rebalance_every{2};
  /// Offered load as a fraction of each stream's peak throughput
  /// (0 = saturated closed-loop serving).
  double offered_load{0.0};
  /// Latency SLO applied to every stream (seconds).
  double slo_s{0.05};
  /// Per-rig budget bounds handed to the coordinator. The default min sits
  /// at a single-resnet50 rig's feasible floor (~500 W at minimum clocks),
  /// so a quarantined rig's pinned budget is watts it actually stops using.
  rack::AllocationBounds bounds{500.0, 650.0};
  /// Health-management knobs; `enabled` is overridden by the
  /// `health_managed` argument of run_campaign().
  rack::RigHealthConfig health{};
  std::vector<CampaignStage> stages;
};

/// Parses a campaign JSON document (see docs/fault_model.md for the
/// schema). Throws InvalidArgument on malformed JSON, unknown fault
/// kinds, bad domain paths, or out-of-domain numbers.
[[nodiscard]] CampaignConfig parse_campaign(const std::string& json_text);

/// Checks the config's domain; throws InvalidArgument naming the field.
[[nodiscard]] CampaignConfig validated(CampaignConfig config);

/// Aggregate outcome of one campaign run (per-stage scorecards land in
/// telemetry::ResilienceRegistry::current()).
struct CampaignResult {
  std::string variant;  ///< "hardened" or "baseline"
  /// Lifetime error-budget fraction consumed, summed misses over summed
  /// checks across every rig: (miss rate) / (1 - objective).
  double total_burn{0.0};
  double mean_rack_power_w{0.0};
  double rack_images{0.0};  ///< images completed across all rigs
  std::size_t failsafe_engagements{0};
  std::size_t health_transitions{0};
  std::vector<telemetry::ResilienceEntry> stages;  ///< copy of the entries
};

/// Runs the campaign once. `health_managed` switches the coordinator's
/// rig-health layer (the control loops are always hardened — the A/B
/// isolates the coordinator's contribution). Scorecards are appended to
/// ResilienceRegistry::current() with variant "hardened" / "baseline".
[[nodiscard]] CampaignResult run_campaign(const CampaignConfig& config,
                                          bool health_managed);

}  // namespace capgpu::faults
