// Correlated fault domains over a rack of rigs.
//
// Real outages are rarely independent: a PDU brownout dims every server
// hanging off that PDU, a rack-level budget slash squeezes every rig in
// the rack, a bad meter firmware rollout corrupts a whole hardware batch
// at once. The DomainTree models that correlation structure as a small
// fixed hierarchy — row → rack → PDU → rig — where a scripted fault
// attached to any node fans out to every descendant rig's fault plan.
//
// Determinism: each rig's composed hal::FaultPlan carries a seed derived
// from the tree seed and the rig's global index only, so the same campaign
// JSON replays bit-for-bit regardless of how many worker threads drive the
// rigs (--jobs N invariance, same contract as the rest of the repo).
//
// Fault classes and their fan-out (docs/fault_model.md has the table):
//   brownout      meter goes dark on every descendant rig for the window,
//                 and the rack budget scales by (1 - magnitude) while the
//                 sagged feed cannot deliver full power;
//   budget_slash  pure budget event: the rack budget scales by
//                 (1 - magnitude) for the window, rigs stay healthy;
//   meter_bug     firmware bug: every descendant meter serves NaN inside
//                 the window (hal::FaultPlan::meter_nan);
//   blackout      meter dark + actuation blackout on every descendant —
//                 the rig is unreachable, commands throw.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "hal/fault_injection.hpp"

namespace capgpu::faults {

/// Shape of the domain hierarchy. Rigs are numbered globally in
/// depth-first order: rig index = ((row * racks + rack) * pdus_per_rack
/// + pdu) * rigs_per_pdu + slot. `rows` defaults to 1 — the single
/// implicit row every pre-fleet campaign assumed — and with rows == 1 the
/// node paths stay the legacy three-component form ("rackR/pduP/rigI"),
/// so existing campaign JSON replays bit-for-bit. With rows > 1 every
/// path gains a leading "rowW/" component and `racks` means racks per
/// row.
struct DomainTopology {
  std::size_t racks{1};
  std::size_t pdus_per_rack{2};
  std::size_t rigs_per_pdu{2};
  /// Rows of `racks` racks each. Declared last so the long-standing
  /// three-field aggregate init `{racks, pdus, rigs}` keeps meaning a
  /// single implicit row.
  std::size_t rows{1};

  [[nodiscard]] std::size_t total_rigs() const {
    return rows * racks * pdus_per_rack * rigs_per_pdu;
  }
  [[nodiscard]] std::size_t total_racks() const { return rows * racks; }
};

/// Checks the topology's domain (every dimension >= 1); throws
/// InvalidArgument naming the offending field.
[[nodiscard]] DomainTopology validated(DomainTopology topology);

/// The four scripted fault classes.
enum class DomainFaultKind { kBrownout, kBudgetSlash, kMeterBug, kBlackout };

/// Lower-case kind name ("brownout" / "budget_slash" / "meter_bug" /
/// "blackout").
[[nodiscard]] const char* fault_kind_name(DomainFaultKind kind);

/// Parses a kind name; throws InvalidArgument on an unknown name.
[[nodiscard]] DomainFaultKind fault_kind_from(const std::string& name);

/// One scripted fault on one domain node.
struct DomainFault {
  DomainFaultKind kind{DomainFaultKind::kBrownout};
  double start_s{0.0};
  double duration_s{0.0};
  /// Fraction of the feed's capacity lost (brownout / budget_slash only,
  /// in (0, 1)); ignored for meter_bug and blackout.
  double magnitude{0.25};

  [[nodiscard]] double end_s() const { return start_s + duration_s; }
};

/// A window during which the deliverable rack budget is scaled. Produced
/// by brownout and budget_slash faults; the campaign runner multiplies
/// every active scale into the coordinator's rack budget.
struct BudgetEvent {
  double start_s{0.0};
  double end_s{0.0};
  double scale{1.0};  ///< multiplier on the rack budget, in (0, 1)
  std::string node;   ///< the faulted node's path
  DomainFaultKind kind{DomainFaultKind::kBrownout};
};

/// The fault-domain hierarchy for one campaign.
class DomainTree {
 public:
  /// Throws InvalidArgument when the topology fails validation.
  DomainTree(DomainTopology topology, std::uint64_t seed);

  [[nodiscard]] const DomainTopology& topology() const { return topology_; }
  [[nodiscard]] std::size_t rig_count() const { return paths_.size(); }

  /// The rig's node path, e.g. "rack0/pdu1/rig0" (rows == 1) or
  /// "row1/rack0/pdu1/rig0" (rows > 1).
  [[nodiscard]] const std::string& rig_path(std::size_t rig) const;

  /// Attaches a scripted fault to a node. `node` is "" for the whole
  /// facility, then one path component per tier: with the implicit single
  /// row, "rackR", "rackR/pduP", or "rackR/pduP/rigI"; with rows > 1 every
  /// path starts with "rowW" ("row1", "row1/rack0", ...). Throws
  /// InvalidArgument for a malformed path, an index outside the topology,
  /// or a fault with a non-positive duration / out-of-range magnitude.
  void add_fault(const std::string& node, DomainFault fault);

  /// Global indices of every rig at or below `node` (validates the path).
  [[nodiscard]] std::vector<std::size_t> rigs_under(
      const std::string& node) const;

  /// The composed fault plan for one rig: every attached fault whose
  /// domain contains the rig contributes its windows. The plan's seed
  /// depends only on the tree seed and the rig index, never on insertion
  /// order of unrelated faults.
  [[nodiscard]] hal::FaultPlan rig_plan(std::size_t rig) const;

  /// Budget events from every attached brownout / budget_slash, in
  /// insertion order.
  [[nodiscard]] const std::vector<BudgetEvent>& budget_events() const {
    return budget_events_;
  }

  /// Product of every budget event's scale active at `now` (1.0 when the
  /// feed is clean).
  [[nodiscard]] double budget_scale(double now) const;

  /// Product of the scales of budget events attached to exactly `node`
  /// (not its descendants) active at `now`. The fleet cascade applies each
  /// feed degradation at its own tier — a row brownout shrinks the row's
  /// deliverable watts, a PDU brownout shrinks only its rigs' ceilings —
  /// instead of folding every event into one rack-level scale the way
  /// budget_scale() does. Validates the path.
  [[nodiscard]] double node_scale(const std::string& node, double now) const;

  /// The attached faults, in insertion order (node path, fault).
  [[nodiscard]] const std::vector<std::pair<std::string, DomainFault>>&
  faults() const {
    return faults_;
  }

 private:
  DomainTopology topology_;
  std::uint64_t seed_;
  std::vector<std::string> paths_;  ///< per-rig node paths
  std::vector<std::pair<std::string, DomainFault>> faults_;
  std::vector<BudgetEvent> budget_events_;
};

}  // namespace capgpu::faults
