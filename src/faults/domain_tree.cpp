#include "faults/domain_tree.hpp"

#include "common/error.hpp"

namespace capgpu::faults {

namespace {

/// Parses "name<index>" (e.g. "rack0", "pdu12"); returns false on any
/// other shape.
bool parse_component(const std::string& text, const char* name,
                     std::size_t& index) {
  const std::size_t len = std::string(name).size();
  if (text.size() <= len || text.compare(0, len, name) != 0) return false;
  std::size_t value = 0;
  for (std::size_t i = len; i < text.size(); ++i) {
    const char c = text[i];
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::size_t>(c - '0');
  }
  index = value;
  return true;
}

/// Splits a node path on '/'; "" yields no components (the row root).
std::vector<std::string> split_path(const std::string& node) {
  std::vector<std::string> parts;
  std::size_t pos = 0;
  while (pos < node.size()) {
    const std::size_t slash = node.find('/', pos);
    const std::size_t end = slash == std::string::npos ? node.size() : slash;
    parts.push_back(node.substr(pos, end - pos));
    pos = end + 1;
  }
  return parts;
}

}  // namespace

DomainTopology validated(DomainTopology topology) {
  CAPGPU_REQUIRE(topology.rows >= 1, "topology needs at least one row");
  CAPGPU_REQUIRE(topology.racks >= 1, "topology needs at least one rack");
  CAPGPU_REQUIRE(topology.pdus_per_rack >= 1,
                 "topology needs at least one PDU per rack");
  CAPGPU_REQUIRE(topology.rigs_per_pdu >= 1,
                 "topology needs at least one rig per PDU");
  return topology;
}

const char* fault_kind_name(DomainFaultKind kind) {
  switch (kind) {
    case DomainFaultKind::kBrownout: return "brownout";
    case DomainFaultKind::kBudgetSlash: return "budget_slash";
    case DomainFaultKind::kMeterBug: return "meter_bug";
    case DomainFaultKind::kBlackout: return "blackout";
  }
  return "unknown";
}

DomainFaultKind fault_kind_from(const std::string& name) {
  if (name == "brownout") return DomainFaultKind::kBrownout;
  if (name == "budget_slash") return DomainFaultKind::kBudgetSlash;
  if (name == "meter_bug") return DomainFaultKind::kMeterBug;
  if (name == "blackout") return DomainFaultKind::kBlackout;
  throw InvalidArgument("unknown fault kind: \"" + name +
                        "\" (want brownout / budget_slash / meter_bug / "
                        "blackout)");
}

DomainTree::DomainTree(DomainTopology topology, std::uint64_t seed)
    : topology_(validated(topology)), seed_(seed) {
  paths_.reserve(topology_.total_rigs());
  for (std::size_t w = 0; w < topology_.rows; ++w) {
    // The single-row facility keeps the legacy three-component paths so
    // pre-fleet campaign JSON and scorecards replay byte-for-byte.
    const std::string row_prefix =
        topology_.rows > 1 ? "row" + std::to_string(w) + "/" : "";
    for (std::size_t r = 0; r < topology_.racks; ++r) {
      for (std::size_t p = 0; p < topology_.pdus_per_rack; ++p) {
        for (std::size_t g = 0; g < topology_.rigs_per_pdu; ++g) {
          paths_.push_back(row_prefix + "rack" + std::to_string(r) + "/pdu" +
                           std::to_string(p) + "/rig" + std::to_string(g));
        }
      }
    }
  }
}

const std::string& DomainTree::rig_path(std::size_t rig) const {
  CAPGPU_REQUIRE(rig < paths_.size(), "rig index out of range");
  return paths_[rig];
}

std::vector<std::size_t> DomainTree::rigs_under(
    const std::string& node) const {
  const std::vector<std::string> parts = split_path(node);
  // With the implicit single row the first component is "rackR" (legacy
  // paths); with rows > 1 every non-root path starts with "rowW".
  const std::size_t tiers = topology_.rows > 1 ? 4 : 3;
  CAPGPU_REQUIRE(parts.size() <= tiers,
                 "node path has too many components: \"" + node + "\"");
  std::size_t row = 0;
  std::size_t rack = 0;
  std::size_t pdu = 0;
  std::size_t rig = 0;
  std::size_t depth = 0;  // deepest tier the path names (0 = facility)
  if (topology_.rows > 1 && !parts.empty()) {
    CAPGPU_REQUIRE(parse_component(parts[0], "row", row) &&
                       row < topology_.rows,
                   "bad row component in node path: \"" + node + "\"");
    depth = 1;
  }
  const std::size_t shift = topology_.rows > 1 ? 1 : 0;
  if (parts.size() >= shift + 1) {
    CAPGPU_REQUIRE(parse_component(parts[shift], "rack", rack) &&
                       rack < topology_.racks,
                   "bad rack component in node path: \"" + node + "\"");
    depth = 2;
  }
  if (parts.size() >= shift + 2) {
    CAPGPU_REQUIRE(parse_component(parts[shift + 1], "pdu", pdu) &&
                       pdu < topology_.pdus_per_rack,
                   "bad pdu component in node path: \"" + node + "\"");
    depth = 3;
  }
  if (parts.size() >= shift + 3) {
    CAPGPU_REQUIRE(parse_component(parts[shift + 2], "rig", rig) &&
                       rig < topology_.rigs_per_pdu,
                   "bad rig component in node path: \"" + node + "\"");
    depth = 4;
  }

  std::vector<std::size_t> out;
  const std::size_t rows_lo = depth >= 1 ? row : 0;
  const std::size_t rows_hi = depth >= 1 ? row + 1 : topology_.rows;
  const std::size_t racks_lo = depth >= 2 ? rack : 0;
  const std::size_t racks_hi = depth >= 2 ? rack + 1 : topology_.racks;
  const std::size_t pdus_lo = depth >= 3 ? pdu : 0;
  const std::size_t pdus_hi =
      depth >= 3 ? pdu + 1 : topology_.pdus_per_rack;
  const std::size_t rigs_lo = depth >= 4 ? rig : 0;
  const std::size_t rigs_hi =
      depth >= 4 ? rig + 1 : topology_.rigs_per_pdu;
  for (std::size_t w = rows_lo; w < rows_hi; ++w) {
    for (std::size_t r = racks_lo; r < racks_hi; ++r) {
      for (std::size_t p = pdus_lo; p < pdus_hi; ++p) {
        for (std::size_t g = rigs_lo; g < rigs_hi; ++g) {
          out.push_back(((w * topology_.racks + r) * topology_.pdus_per_rack +
                         p) *
                            topology_.rigs_per_pdu +
                        g);
        }
      }
    }
  }
  return out;
}

void DomainTree::add_fault(const std::string& node, DomainFault fault) {
  (void)rigs_under(node);  // validates the path
  CAPGPU_REQUIRE(fault.start_s >= 0.0, "fault start_s must be >= 0");
  CAPGPU_REQUIRE(fault.duration_s > 0.0, "fault duration_s must be positive");
  if (fault.kind == DomainFaultKind::kBrownout ||
      fault.kind == DomainFaultKind::kBudgetSlash) {
    CAPGPU_REQUIRE(fault.magnitude > 0.0 && fault.magnitude < 1.0,
                   "fault magnitude must be in (0, 1)");
    budget_events_.push_back({fault.start_s, fault.end_s(),
                              1.0 - fault.magnitude, node, fault.kind});
  }
  faults_.emplace_back(node, fault);
}

hal::FaultPlan DomainTree::rig_plan(std::size_t rig) const {
  CAPGPU_REQUIRE(rig < paths_.size(), "rig index out of range");
  hal::FaultPlan plan;
  // Seed depends only on (tree seed, rig index): the plan replays
  // bit-for-bit for any --jobs N and any fault insertion order.
  plan.seed = seed_ ^ (0x9E3779B97F4A7C15ULL * (rig + 1));
  const std::string& path = paths_[rig];
  for (const auto& [node, fault] : faults_) {
    // The fault's domain contains this rig iff the node path is a prefix
    // of the rig's path on a component boundary ("" contains everything).
    const bool contains =
        node.empty() ||
        (path.size() >= node.size() &&
         path.compare(0, node.size(), node) == 0 &&
         (path.size() == node.size() || path[node.size()] == '/'));
    if (!contains) continue;
    const hal::FaultWindow window{Seconds{fault.start_s},
                                  Seconds{fault.end_s()}};
    switch (fault.kind) {
      case DomainFaultKind::kBrownout:
        plan.meter_dark.push_back(window);
        break;
      case DomainFaultKind::kBudgetSlash:
        break;  // budget event only; rigs keep seeing clean hardware
      case DomainFaultKind::kMeterBug:
        plan.meter_nan.push_back(window);
        break;
      case DomainFaultKind::kBlackout:
        plan.meter_dark.push_back(window);
        plan.actuation_blackout.push_back(window);
        break;
    }
  }
  return plan;
}

double DomainTree::budget_scale(double now) const {
  double scale = 1.0;
  for (const auto& event : budget_events_) {
    if (now >= event.start_s && now < event.end_s) scale *= event.scale;
  }
  return scale;
}

double DomainTree::node_scale(const std::string& node, double now) const {
  (void)rigs_under(node);  // validates the path
  double scale = 1.0;
  for (const auto& event : budget_events_) {
    if (event.node == node && now >= event.start_s && now < event.end_s) {
      scale *= event.scale;
    }
  }
  return scale;
}

}  // namespace capgpu::faults
