#include "faults/campaign.hpp"

#include <cmath>
#include <memory>
#include <utility>

#include "common/error.hpp"
#include "common/json.hpp"
#include "core/capgpu_controller.hpp"
#include "core/control_loop.hpp"
#include "core/rig.hpp"
#include "telemetry/slo.hpp"
#include "workload/model_zoo.hpp"

namespace capgpu::faults {

namespace {

DomainFault parse_fault(const json::Value& v) {
  DomainFault fault;
  fault.kind = fault_kind_from(v.string_or("kind", "brownout"));
  fault.start_s = v.number_or("start_s", 0.0);
  fault.duration_s = v.number_or("duration_s", 0.0);
  fault.magnitude = v.number_or("magnitude", fault.magnitude);
  return fault;
}

}  // namespace

CampaignConfig parse_campaign(const std::string& json_text) {
  const json::Value doc = json::parse(json_text);
  CAPGPU_REQUIRE(doc.is_object(), "campaign document must be a JSON object");
  CampaignConfig cfg;
  cfg.name = doc.string_or("name", cfg.name);
  cfg.seed = static_cast<std::uint64_t>(
      doc.number_or("seed", static_cast<double>(cfg.seed)));
  if (doc.contains("topology")) {
    const json::Value& t = doc.at("topology");
    cfg.topology.rows = static_cast<std::size_t>(t.number_or("rows", 1.0));
    cfg.topology.racks = static_cast<std::size_t>(t.number_or("racks", 1.0));
    cfg.topology.pdus_per_rack =
        static_cast<std::size_t>(t.number_or("pdus_per_rack", 2.0));
    cfg.topology.rigs_per_pdu =
        static_cast<std::size_t>(t.number_or("rigs_per_pdu", 2.0));
  }
  cfg.rack_budget_w = doc.number_or("rack_budget_w", cfg.rack_budget_w);
  cfg.periods = static_cast<std::size_t>(
      doc.number_or("periods", static_cast<double>(cfg.periods)));
  cfg.period_s = doc.number_or("period_s", cfg.period_s);
  cfg.rebalance_every = static_cast<std::size_t>(doc.number_or(
      "rebalance_every", static_cast<double>(cfg.rebalance_every)));
  cfg.offered_load = doc.number_or("offered_load", cfg.offered_load);
  cfg.slo_s = doc.number_or("slo_s", cfg.slo_s);
  if (doc.contains("bounds")) {
    const json::Value& b = doc.at("bounds");
    cfg.bounds.min = b.number_or("min_w", cfg.bounds.min);
    cfg.bounds.max = b.number_or("max_w", cfg.bounds.max);
  }
  if (doc.contains("health")) {
    const json::Value& h = doc.at("health");
    cfg.health.stale_report_s =
        h.number_or("stale_report_s", cfg.health.stale_report_s);
    cfg.health.dead_after_s =
        h.number_or("dead_after_s", cfg.health.dead_after_s);
    cfg.health.residual_anomaly_watts = h.number_or(
        "residual_anomaly_watts", cfg.health.residual_anomaly_watts);
    cfg.health.reintegrate_rebalances = static_cast<std::size_t>(
        h.number_or("reintegrate_rebalances",
                    static_cast<double>(cfg.health.reintegrate_rebalances)));
  }
  if (doc.contains("stages")) {
    for (const json::Value& s : doc.at("stages").as_array()) {
      CAPGPU_REQUIRE(s.is_object(), "each stage must be a JSON object");
      CampaignStage stage;
      stage.node = s.string_or("node", "");
      stage.fault = parse_fault(s.at("fault"));
      stage.name = s.string_or("name", fault_kind_name(stage.fault.kind));
      cfg.stages.push_back(std::move(stage));
    }
  }
  return validated(std::move(cfg));
}

CampaignConfig validated(CampaignConfig config) {
  config.topology = validated(config.topology);
  CAPGPU_REQUIRE(config.rack_budget_w > 0.0,
                 "rack_budget_w must be positive");
  CAPGPU_REQUIRE(config.periods > 0, "periods must be positive");
  CAPGPU_REQUIRE(config.period_s > 0.0, "period_s must be positive");
  CAPGPU_REQUIRE(config.rebalance_every >= 1,
                 "rebalance_every must be >= 1");
  CAPGPU_REQUIRE(config.offered_load >= 0.0 && config.offered_load <= 1.0,
                 "offered_load must be in [0, 1]");
  CAPGPU_REQUIRE(config.slo_s > 0.0, "slo_s must be positive");
  CAPGPU_REQUIRE(
      config.bounds.min > 0.0 && config.bounds.max >= config.bounds.min,
      "bounds must satisfy 0 < min_w <= max_w");
  // Validates the stage nodes and fault shapes (and, as a side effect,
  // the health knobs once health management is enabled).
  DomainTree tree(config.topology, config.seed);
  for (const auto& stage : config.stages) {
    tree.add_fault(stage.node, stage.fault);
  }
  rack::RigHealthConfig health = config.health;
  health.enabled = true;
  (void)rack::validated(health);
  return config;
}

namespace {

/// One rig of the campaign rack: the testbed, its controller, its hardened
/// loop, and the campaign-side SLO accounting.
struct RigRun {
  std::unique_ptr<core::ServerRig> rig;
  std::unique_ptr<core::CapGpuController> controller;
  std::unique_ptr<core::ControlLoop> loop;
  std::unique_ptr<telemetry::SloBurnMonitor> monitor;
  double last_budget_w{0.0};
  double images{0.0};
};

/// Per-period observation of the whole rack.
struct PeriodSnap {
  double t{0.0};
  double rack_power_w{0.0};
  double budget_w{0.0};
  std::vector<int> failsafe;   ///< per-rig FailSafeState (0 nominal)
  std::vector<int> health;     ///< per-rig coordinator RigHealth
  std::vector<std::uint64_t> checked;
  std::vector<std::uint64_t> missed;
  std::vector<std::uint64_t> engagements;
};

double last_power(const core::ControlLoop& loop) {
  return loop.power_trace().empty() ? 0.0
                                    : loop.power_trace().values().back();
}

/// Index of the last snap with t <= `time` (-1 when none).
int snap_at(const std::vector<PeriodSnap>& snaps, double time) {
  int idx = -1;
  for (std::size_t k = 0; k < snaps.size(); ++k) {
    if (snaps[k].t <= time) idx = static_cast<int>(k);
  }
  return idx;
}

/// Error-budget fraction burned between two snaps (exclusive, inclusive]
/// summed over `rigs`: miss rate over the window divided by the budget.
double burn_between(const std::vector<PeriodSnap>& snaps, int from, int to,
                    const std::vector<std::size_t>& rigs, double objective) {
  if (to < 0) return 0.0;
  std::uint64_t checked = 0;
  std::uint64_t missed = 0;
  for (std::size_t i : rigs) {
    const std::uint64_t c0 = from >= 0 ? snaps[from].checked[i] : 0;
    const std::uint64_t m0 = from >= 0 ? snaps[from].missed[i] : 0;
    checked += snaps[to].checked[i] - c0;
    missed += snaps[to].missed[i] - m0;
  }
  if (checked == 0) return 0.0;
  const double miss_rate =
      static_cast<double>(missed) / static_cast<double>(checked);
  return miss_rate / (1.0 - objective);
}

}  // namespace

CampaignResult run_campaign(const CampaignConfig& config,
                            bool health_managed) {
  const CampaignConfig cfg = validated(config);
  DomainTree tree(cfg.topology, cfg.seed);
  for (const auto& stage : cfg.stages) {
    tree.add_fault(stage.node, stage.fault);
  }

  const std::size_t n = tree.rig_count();
  std::vector<RigRun> rigs(n);

  rack::RackCoordinator coord(Watts{cfg.rack_budget_w},
                              rack::RackPolicy::kDemandProportional);
  if (health_managed) {
    rack::RigHealthConfig health = cfg.health;
    health.enabled = true;
    coord.set_health_config(health);
  }

  const double initial_budget_w = cfg.rack_budget_w / static_cast<double>(n);
  const double period_s = cfg.period_s;
  for (std::size_t i = 0; i < n; ++i) {
    RigRun& r = rigs[i];
    core::RigConfig rc;
    rc.models = {workload::resnet50_v100()};
    rc.seed = 100 + i;
    rc.faults = tree.rig_plan(i);
    if (cfg.offered_load > 0.0) rc.offered_load = {{0.0, cfg.offered_load}};
    r.rig = std::make_unique<core::ServerRig>(rc);
    r.controller = std::make_unique<core::CapGpuController>(
        core::CapGpuConfig{}, r.rig->device_ranges(),
        r.rig->analytic_power_model(), Watts{initial_budget_w},
        r.rig->latency_models());
    r.controller->set_slo(1, cfg.slo_s);
    core::ControlLoopConfig lc;
    lc.period = Seconds{period_s};
    // Every loop runs hardened regardless of `health_managed`: the A/B
    // isolates the coordinator's rig-health layer, not the loop's own
    // fail-safe (which earlier benches already score).
    lc.failsafe = core::FailSafeConfig{};
    auto* rig_ptr = r.rig.get();
    r.loop = std::make_unique<core::ControlLoop>(
        rig_ptr->engine(), rig_ptr->control_hal(), rig_ptr->rapl(),
        *r.controller, lc,
        [rig_ptr] { return rig_ptr->normalized_throughputs(); });
    r.monitor =
        std::make_unique<telemetry::SloBurnMonitor>(telemetry::SloBurnConfig{});
    r.last_budget_w = initial_budget_w;

    auto* mon = r.monitor.get();
    RigRun* rr = &r;  // stable: rigs never reallocates after construction
    const double slo = cfg.slo_s;
    r.loop->on_period = [rig_ptr, mon, rr, period_s, slo](std::size_t) {
      const double now = rig_ptr->engine().now();
      auto& s = rig_ptr->stream(0);
      auto& lat = s.batch_latency();
      const std::size_t cnt = lat.count(now, period_s);
      const auto misses = static_cast<std::uint64_t>(std::llround(
          lat.miss_rate(now, period_s, slo) * static_cast<double>(cnt)));
      mon->record(now, cnt, misses);
      rr->images += s.images_throughput().rate(now, period_s) * period_s;
      (void)s.take_stage_period_means();
      lat.trim(now);
      s.images_throughput().trim(now);
      s.queue_delay().trim(now);
      s.preprocess_latency().trim(now);
    };
    r.loop->start();

    rack::ServerEndpoint ep;
    ep.name = tree.rig_path(i);
    auto* ctl = r.controller.get();
    auto* loop = r.loop.get();
    ep.set_budget = [ctl, rr](Watts w) {
      rr->last_budget_w = w.value;
      ctl->set_set_point(w);
    };
    ep.measured_power = [loop] { return last_power(*loop); };
    ep.demand = [rig_ptr] { return rig_ptr->gpu_demand(); };
    ep.bounds = cfg.bounds;
    ep.report_age = [loop, rig_ptr] {
      const auto* fs = loop->failsafe();
      return fs != nullptr ? fs->seconds_since_fresh(rig_ptr->engine().now())
                           : 0.0;
    };
    ep.failsafe_state = [loop] {
      const auto* fs = loop->failsafe();
      return fs != nullptr ? static_cast<int>(fs->state()) : -1;
    };
    // One-sided residual: only over-budget draw votes against the rig. A
    // lightly-loaded rig legitimately sits under its allocation.
    ep.power_residual = [loop, rr] {
      const double p = last_power(*loop);
      return p > rr->last_budget_w ? p - rr->last_budget_w : 0.0;
    };
    ep.slo_burn = [mon] { return mon->fast_burn(); };
    coord.add_server(std::move(ep));
  }

  // Lockstep drive: advance every rig one control period, then let the
  // coordinator rebalance on its cadence with the sim clock (so the health
  // watchdogs' second-denominated deadlines mean what they say). Budget
  // events scale the deliverable rack budget at rebalance granularity.
  std::vector<PeriodSnap> snaps;
  snaps.reserve(cfg.periods);
  double effective_budget_w = cfg.rack_budget_w;
  for (std::size_t k = 1; k <= cfg.periods; ++k) {
    for (RigRun& r : rigs) {
      r.rig->engine().run_until(r.rig->engine().now() + period_s);
    }
    const double now = static_cast<double>(k) * period_s;
    if (k % cfg.rebalance_every == 0) {
      effective_budget_w = cfg.rack_budget_w * tree.budget_scale(now);
      coord.set_rack_budget(Watts{effective_budget_w});
      coord.rebalance(now);
    }
    PeriodSnap snap;
    snap.t = now;
    snap.rack_power_w = coord.total_power();
    snap.budget_w = effective_budget_w;
    snap.failsafe.reserve(n);
    snap.health.reserve(n);
    snap.checked.reserve(n);
    snap.missed.reserve(n);
    snap.engagements.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      const auto* fs = rigs[i].loop->failsafe();
      snap.failsafe.push_back(fs != nullptr ? static_cast<int>(fs->state())
                                            : 0);
      snap.health.push_back(static_cast<int>(coord.health(i)));
      snap.checked.push_back(rigs[i].monitor->checked_total());
      snap.missed.push_back(rigs[i].monitor->missed_total());
      snap.engagements.push_back(fs != nullptr ? fs->engagements() : 0);
    }
    snaps.push_back(std::move(snap));
  }
  for (RigRun& r : rigs) r.loop->stop();

  // --- scoring ---
  CampaignResult result;
  result.variant = health_managed ? "hardened" : "baseline";
  const double objective = rigs[0].monitor->config().objective;
  const int pid = rigs[0].rig->trace_pid();

  std::vector<std::size_t> all_rigs(n);
  for (std::size_t i = 0; i < n; ++i) all_rigs[i] = i;

  auto& registry = telemetry::ResilienceRegistry::current();
  for (const auto& stage : cfg.stages) {
    const std::vector<std::size_t> affected = tree.rigs_under(stage.node);
    const double fault_start = stage.fault.start_s;
    const double fault_end = stage.fault.end_s();

    telemetry::ResilienceEntry entry;
    entry.pid = pid;
    entry.campaign = cfg.name;
    entry.variant = result.variant;
    entry.stage = stage.name;
    entry.fault_kind = fault_kind_name(stage.fault.kind);
    entry.domain = stage.node.empty() ? "row" : stage.node;
    entry.fault_start_s = fault_start;
    entry.fault_end_s = fault_end;

    // Detection: the first coordinator demotion of an affected rig at or
    // after fault onset.
    for (const auto& tr : coord.health_log()) {
      if (tr.time_s < fault_start ||
          tr.to == rack::RigHealth::kHealthy) {
        continue;
      }
      bool ours = false;
      for (std::size_t i : affected) ours |= tr.server == tree.rig_path(i);
      if (ours) {
        entry.detected_at_s = tr.time_s;
        break;
      }
    }

    // Recovery: the first of 3 consecutive post-fault snaps in which every
    // affected rig's governor is nominal and (under health management) the
    // coordinator considers it healthy again.
    const auto snap_good = [&](const PeriodSnap& s) {
      for (std::size_t i : affected) {
        if (s.failsafe[i] != 0) return false;
        if (health_managed && s.health[i] != 0) return false;
      }
      return true;
    };
    constexpr std::size_t kSustain = 3;
    for (std::size_t k = 0; k + kSustain <= snaps.size(); ++k) {
      if (snaps[k].t < fault_end) continue;
      bool good = true;
      for (std::size_t j = 0; j < kSustain; ++j) {
        good &= snap_good(snaps[k + j]);
      }
      if (good) {
        entry.recovered_at_s = snaps[k].t;
        entry.mttr_s = entry.recovered_at_s - fault_end;
        break;
      }
    }

    const int idx_start = snap_at(snaps, fault_start);
    const int idx_end = snap_at(snaps, fault_end);
    const int idx_last = static_cast<int>(snaps.size()) - 1;
    // Burn over the whole rack, not just the faulted domain: the point of
    // health management is that the *other* rigs absorb the slack.
    entry.slo_burn_during =
        burn_between(snaps, idx_start, idx_end, all_rigs, objective);
    entry.slo_burn_after =
        burn_between(snaps, idx_end, idx_last, all_rigs, objective);

    const double recovery_horizon =
        entry.recovered_at_s >= 0.0 ? entry.recovered_at_s : snaps.back().t;
    for (const PeriodSnap& s : snaps) {
      if (s.t <= fault_end || s.t > recovery_horizon) continue;
      const double over = s.rack_power_w - s.budget_w;
      if (over > entry.recovery_overshoot_w) {
        entry.recovery_overshoot_w = over;
      }
    }
    for (const PeriodSnap& s : snaps) {
      if (s.t < fault_start) continue;
      for (std::size_t i : affected) {
        if (s.failsafe[i] != 0) entry.failsafe_dwell_s += period_s;
      }
    }
    for (std::size_t i : affected) {
      const std::uint64_t e0 =
          idx_start >= 0 ? snaps[idx_start].engagements[i] : 0;
      entry.failsafe_entries += snaps.back().engagements[i] - e0;
    }
    for (const auto& tr : coord.health_log()) {
      if (tr.time_s < fault_start) continue;
      for (std::size_t i : affected) {
        if (tr.server == tree.rig_path(i)) {
          ++entry.health_transitions;
          break;
        }
      }
    }

    result.stages.push_back(entry);
    registry.add(std::move(entry));
  }

  std::uint64_t checked = 0;
  std::uint64_t missed = 0;
  for (std::size_t i = 0; i < n; ++i) {
    checked += rigs[i].monitor->checked_total();
    missed += rigs[i].monitor->missed_total();
    result.rack_images += rigs[i].images;
    const auto* fs = rigs[i].loop->failsafe();
    if (fs != nullptr) result.failsafe_engagements += fs->engagements();
  }
  if (checked > 0) {
    result.total_burn = (static_cast<double>(missed) /
                         static_cast<double>(checked)) /
                        (1.0 - objective);
  }
  double power_sum = 0.0;
  for (const PeriodSnap& s : snaps) power_sum += s.rack_power_w;
  result.mean_rack_power_w =
      snaps.empty() ? 0.0 : power_sum / static_cast<double>(snaps.size());
  result.health_transitions = coord.health_log().size();
  return result;
}

}  // namespace capgpu::faults
