// Work-stealing thread pool for embarrassingly-parallel simulations.
//
// Each worker owns a deque: it pops its own tasks LIFO (cache-warm) and
// steals FIFO from a victim when empty, so a burst of submissions spreads
// across workers without a single contended queue. Queues are tiny —
// scenario granularity is whole simulations — so plain mutexes per deque
// are cheap, keep the pool trivially correct under ThreadSanitizer, and
// leave the lock-free fanciness to engines that need microsecond tasks.
//
// Tasks must not throw: the runner layer catches per-scenario exceptions
// and replays them on the caller. A task that does throw anyway is caught,
// stashed, and rethrown from the next wait_idle() so nothing is lost
// silently and the pool keeps draining.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace capgpu::runner {

class ThreadPool {
 public:
  using Task = std::function<void()>;

  /// Spawns `threads` workers (>= 1).
  explicit ThreadPool(std::size_t threads);

  /// Joins all workers; outstanding tasks are completed first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Round-robins across worker deques; a worker
  /// submitting from inside a task pushes to its own deque.
  void submit(Task task);

  /// Blocks until every submitted task has finished, then rethrows the
  /// first exception a task leaked (if any).
  void wait_idle();

  /// Runs `fn(0) .. fn(count - 1)` across the workers and blocks until all
  /// have finished — one parallel phase plus its barrier, the shape both
  /// the scenario runner and the fleet layer's lockstep epochs need. `fn`
  /// is shared by every worker and must be safe to invoke concurrently
  /// with distinct indices. Exceptions leaked by `fn` surface from the
  /// barrier exactly as from wait_idle(); callers that need deterministic
  /// error attribution should catch inside `fn` and stash per index.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn);

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Concurrency to use for `--jobs 0`: the hardware thread count, or 1
  /// when it cannot be determined.
  [[nodiscard]] static std::size_t hardware_jobs();

 private:
  struct WorkerQueue {
    std::mutex mutex;
    std::deque<Task> tasks;
  };

  void worker_loop(std::size_t index);
  bool try_pop(std::size_t index, Task& out);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;

  std::mutex state_mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::size_t unfinished_{0};  ///< submitted, not yet completed
  std::size_t unclaimed_{0};   ///< submitted, no worker claimed yet
  std::size_t next_queue_{0};
  std::exception_ptr leaked_exception_;
  bool stop_{false};
};

}  // namespace capgpu::runner
