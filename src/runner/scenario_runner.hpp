// Deterministic parallel execution of independent simulation scenarios.
//
// A scenario is one self-contained experiment: it builds its own
// sim::Engine + rig + controller from an index (and whatever seeds that
// index implies) and returns a value. ScenarioRunner executes N scenarios
// on a work-stealing pool and delivers results in scenario-index order, so
// a bench that renders its table from the returned vector prints the same
// bytes under `--jobs 1` and `--jobs 64`.
//
// Determinism contract (see docs/performance.md):
//  - results are merged in scenario-index order, never completion order;
//  - each scenario runs under a private telemetry scope
//    (telemetry::ScenarioTelemetry): all MetricsRegistry::current() /
//    Tracer::current() instrumentation lands in per-scenario instances,
//    which are folded into the launching thread's registry/tracer in index
//    order after the join — Prometheus and Chrome-trace exports are
//    byte-identical for any worker count;
//  - scenario bodies must not touch shared mutable state (no stdout —
//    return printable rows instead) and must derive all randomness from
//    their index;
//  - failures are deterministic too: every scenario runs even when
//    another throws, and after the join the exception of the *lowest*
//    failed index is rethrown with telemetry of scenarios 0..i-1 merged —
//    the same error and the same export no matter the worker count.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "runner/thread_pool.hpp"

namespace capgpu::runner {

struct ScenarioOptions {
  /// Worker threads; 1 runs inline on the caller (no pool), 0 means
  /// ThreadPool::hardware_jobs().
  std::size_t jobs{1};
};

class ScenarioRunner {
 public:
  explicit ScenarioRunner(ScenarioOptions options = {});

  /// Runs body(0..count-1), blocking until all scenarios finished.
  void run(std::size_t count, const std::function<void(std::size_t)>& body);

  /// Convenience: collects one result per scenario, in index order.
  /// The result type must be default-constructible and movable.
  template <typename Fn>
  auto map(std::size_t count, Fn&& fn)
      -> std::vector<decltype(fn(std::size_t{0}))> {
    std::vector<decltype(fn(std::size_t{0}))> results(count);
    run(count, [&](std::size_t i) { results[i] = fn(i); });
    return results;
  }

  [[nodiscard]] std::size_t jobs() const { return jobs_; }

  /// Scenarios executed and merged process-wide across all runners (bench
  /// run summaries, --summary-out).
  [[nodiscard]] static std::uint64_t scenarios_executed();

 private:
  std::size_t jobs_;
  static std::atomic<std::uint64_t> scenarios_merged_;
};

}  // namespace capgpu::runner
