#include "runner/thread_pool.hpp"

#include <utility>

#include "common/error.hpp"

namespace capgpu::runner {

namespace {
thread_local std::size_t t_worker_index = static_cast<std::size_t>(-1);
}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  CAPGPU_REQUIRE(threads >= 1, "thread pool needs at least one worker");
  queues_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock lock(state_mutex_);
    idle_.wait(lock, [this] { return unfinished_ == 0; });
    stop_ = true;
  }
  work_available_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(Task task) {
  CAPGPU_REQUIRE(static_cast<bool>(task), "cannot submit a null task");
  std::size_t target;
  {
    std::lock_guard lock(state_mutex_);
    target = t_worker_index < queues_.size()
                 ? t_worker_index
                 : next_queue_++ % queues_.size();
  }
  {
    std::lock_guard lock(queues_[target]->mutex);
    queues_[target]->tasks.push_back(std::move(task));
  }
  // The task is visible in its queue before the claim ticket exists, so a
  // worker that wins a ticket is guaranteed to find work.
  {
    std::lock_guard lock(state_mutex_);
    ++unfinished_;
    ++unclaimed_;
  }
  work_available_.notify_one();
}

bool ThreadPool::try_pop(std::size_t index, Task& out) {
  // Own queue: LIFO for locality.
  {
    WorkerQueue& own = *queues_[index];
    std::lock_guard lock(own.mutex);
    if (!own.tasks.empty()) {
      out = std::move(own.tasks.back());
      own.tasks.pop_back();
      return true;
    }
  }
  // Steal: FIFO from the next victims in ring order, so the oldest work
  // migrates first and two idle workers scan different victims.
  for (std::size_t k = 1; k < queues_.size(); ++k) {
    WorkerQueue& victim = *queues_[(index + k) % queues_.size()];
    std::lock_guard lock(victim.mutex);
    if (!victim.tasks.empty()) {
      out = std::move(victim.tasks.front());
      victim.tasks.pop_front();
      return true;
    }
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t index) {
  t_worker_index = index;
  for (;;) {
    // Claim a ticket before touching the queues: tickets are 1:1 with
    // submitted tasks and every pop is preceded by a claim, so holding one
    // guarantees a task is (or is about to be) findable.
    {
      std::unique_lock lock(state_mutex_);
      work_available_.wait(lock,
                           [this] { return stop_ || unclaimed_ > 0; });
      if (unclaimed_ == 0) return;  // stop requested and nothing queued
      --unclaimed_;
    }
    Task task;
    while (!try_pop(index, task)) {
      // Only transiently possible: our reserved task is being pushed to a
      // queue we already scanned. Rescan.
      std::this_thread::yield();
    }
    try {
      task();
    } catch (...) {
      std::lock_guard lock(state_mutex_);
      if (!leaked_exception_) leaked_exception_ = std::current_exception();
    }
    bool drained = false;
    {
      std::lock_guard lock(state_mutex_);
      drained = --unfinished_ == 0;
    }
    if (drained) idle_.notify_all();
  }
}

void ThreadPool::wait_idle() {
  std::exception_ptr leaked;
  {
    std::unique_lock lock(state_mutex_);
    idle_.wait(lock, [this] { return unfinished_ == 0; });
    leaked = std::exchange(leaked_exception_, nullptr);
  }
  if (leaked) std::rethrow_exception(leaked);
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  CAPGPU_REQUIRE(static_cast<bool>(fn), "parallel_for needs a function");
  for (std::size_t i = 0; i < count; ++i) {
    submit([&fn, i] { fn(i); });
  }
  wait_idle();
}

std::size_t ThreadPool::hardware_jobs() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

}  // namespace capgpu::runner
