#include "runner/scenario_runner.hpp"

#include <exception>
#include <memory>

#include "telemetry/scope.hpp"

namespace capgpu::runner {

ScenarioRunner::ScenarioRunner(ScenarioOptions options)
    : jobs_(options.jobs == 0 ? ThreadPool::hardware_jobs() : options.jobs) {}

void ScenarioRunner::run(std::size_t count,
                         const std::function<void(std::size_t)>& body) {
  if (count == 0) return;

  // Merge targets: whatever telemetry is current on the launching thread
  // (the process singletons in a bench, a test's private instances when it
  // installed its own scope).
  telemetry::MetricsRegistry& parent_metrics =
      telemetry::MetricsRegistry::current();
  telemetry::Tracer& parent_tracer = telemetry::Tracer::current();
  telemetry::SloRegistry& parent_slo = telemetry::SloRegistry::current();
  telemetry::FlightRecorder& parent_flight =
      telemetry::FlightRecorder::current();
  telemetry::ResilienceRegistry& parent_resilience =
      telemetry::ResilienceRegistry::current();
  telemetry::EnergyRegistry& parent_energy =
      telemetry::EnergyRegistry::current();

  struct ScenarioState {
    std::unique_ptr<telemetry::ScenarioTelemetry> telemetry;
    std::exception_ptr error;
    bool ran{false};
  };
  std::vector<ScenarioState> states(count);

  // Every scenario runs even when another fails: which scenarios executed
  // (and therefore which error is rethrown and what telemetry merges) must
  // not depend on completion timing, or the error path would differ
  // between --jobs values.
  auto run_one = [&](std::size_t i) {
    ScenarioState& state = states[i];
    state.telemetry = std::make_unique<telemetry::ScenarioTelemetry>(
        parent_tracer, parent_flight);
    telemetry::ScenarioTelemetry::Binding bind(*state.telemetry);
    state.ran = true;
    try {
      body(i);
    } catch (...) {
      state.error = std::current_exception();
    }
  };

  if (jobs_ <= 1) {
    for (std::size_t i = 0; i < count; ++i) run_one(i);
  } else {
    ThreadPool pool(jobs_ < count ? jobs_ : count);
    pool.parallel_for(count, run_one);
  }

  // Ordered merge-on-join: scenario order, stopping at the lowest failed
  // index — exactly the telemetry a sequential run would have accumulated
  // before dying there.
  for (std::size_t i = 0; i < count; ++i) {
    ScenarioState& state = states[i];
    if (state.error) std::rethrow_exception(state.error);
    if (state.ran) {
      state.telemetry->merge_into(parent_metrics, parent_tracer, parent_slo,
                                  parent_flight, parent_resilience,
                                  parent_energy);
      ++scenarios_merged_;
    }
  }
}

std::atomic<std::uint64_t> ScenarioRunner::scenarios_merged_{0};

std::uint64_t ScenarioRunner::scenarios_executed() {
  return scenarios_merged_.load(std::memory_order_relaxed);
}

}  // namespace capgpu::runner
