// Move-only callable wrapper with inline (small-buffer) storage.
//
// The DES schedules tens of millions of events per experiment, and almost
// every callback is a lambda capturing a couple of pointers. std::function
// heap-allocates once its (implementation-defined, typically 16-24 byte)
// inline buffer overflows, which puts malloc/free on the engine's fire
// path. SmallCallback stores any callable up to kInlineBytes in place and
// only falls back to the heap beyond that, so the common case is
// allocation-free. Move-only: the engine never needs to copy a callback.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace capgpu::sim {

class SmallCallback {
 public:
  /// Inline capacity, sized for a lambda capturing six pointers/doubles.
  static constexpr std::size_t kInlineBytes = 48;

  SmallCallback() = default;
  SmallCallback(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallCallback> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  SmallCallback(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &inline_ops<Fn>;
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &heap_ops<Fn>;
    }
    invoke_ = ops_->invoke;
  }

  SmallCallback(SmallCallback&& other) noexcept
      : ops_(other.ops_), invoke_(other.invoke_) {
    if (ops_) ops_->relocate(buf_, other.buf_);
    other.ops_ = nullptr;
  }

  SmallCallback& operator=(SmallCallback&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      invoke_ = other.invoke_;
      if (ops_) ops_->relocate(buf_, other.buf_);
      other.ops_ = nullptr;
    }
    return *this;
  }

  SmallCallback(const SmallCallback&) = delete;
  SmallCallback& operator=(const SmallCallback&) = delete;

  ~SmallCallback() { reset(); }

  void reset() noexcept {
    if (ops_) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  // Invoking through the cached pointer skips the ops-table indirection —
  // one dependent load instead of two on the engine's fire path.
  void operator()() { invoke_(buf_); }

 private:
  struct Ops {
    void (*invoke)(void*);
    /// Move-constructs into dst from src and destroys src.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void*);
  };

  template <typename Fn>
  static constexpr Ops inline_ops = {
      [](void* p) { (*std::launder(reinterpret_cast<Fn*>(p)))(); },
      [](void* dst, void* src) {
        Fn* s = std::launder(reinterpret_cast<Fn*>(src));
        ::new (dst) Fn(std::move(*s));
        s->~Fn();
      },
      [](void* p) { std::launder(reinterpret_cast<Fn*>(p))->~Fn(); }};

  // Heap case: the buffer holds only a Fn* (trivially destructible), the
  // callable itself lives behind it.
  template <typename Fn>
  static constexpr Ops heap_ops = {
      [](void* p) { (**std::launder(reinterpret_cast<Fn**>(p)))(); },
      [](void* dst, void* src) {
        ::new (dst) Fn*(*std::launder(reinterpret_cast<Fn**>(src)));
      },
      [](void* p) { delete *std::launder(reinterpret_cast<Fn**>(p)); }};

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  const Ops* ops_{nullptr};
  void (*invoke_)(void*){nullptr};  ///< cached ops_->invoke (hot path)
};

}  // namespace capgpu::sim
