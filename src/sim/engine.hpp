// Discrete-event simulation kernel.
//
// The workload pipeline (preprocessing, queueing, batching, GPU execution)
// and the 1 Hz power meter / 4 s control loop all run as events on this
// engine. Events at equal timestamps execute in scheduling order
// (deterministic FIFO tie-break), which keeps every experiment reproducible.
//
// Hot-path layout (this is the innermost loop of every experiment):
//  - event state lives in a recycled slot pool indexed by the heap nodes,
//    so the fire path touches no associative container;
//  - callbacks are stored in SmallCallback's inline buffer, so scheduling
//    the common capture-a-few-pointers lambda performs no heap allocation;
//  - the heap is indexed: every slot records where its node sits, so
//    cancel() removes the node in place (O(log n) on a heap of *live*
//    events) instead of leaving a tombstone — watchdog patterns that arm
//    and cancel far-out deadlines cannot bloat the heap or the slot pool.
//
// EventIds encode (slot index, generation); a recycled slot bumps its
// generation, so stale ids from fired or cancelled events can never touch
// a newer event occupying the same slot.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/small_callback.hpp"

namespace capgpu::sim {

/// Simulated wall-clock, in seconds since simulation start.
using SimTime = double;

/// Handle used to cancel a scheduled event. Id 0 is never issued.
using EventId = std::uint64_t;

/// Single-threaded discrete-event engine.
class Engine {
 public:
  using Callback = SmallCallback;

  Engine();

  /// Current simulated time.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `cb` at absolute time `at` (>= now). Returns a cancellable id.
  EventId schedule_at(SimTime at, Callback cb);

  /// Schedules `cb` after `delay` seconds (delay >= 0).
  EventId schedule_after(SimTime delay, Callback cb);

  /// Schedules `cb` every `period` seconds, first firing at now() + period.
  /// The periodic event reschedules itself until cancelled — including
  /// cancellation from inside its own callback.
  EventId schedule_periodic(SimTime period, Callback cb);

  /// One-shot self-reschedule fast path. Valid only while `id`'s own
  /// callback is executing: re-arms the same slot and callback to fire
  /// again at now() + delay, so a self-perpetuating chain (a preprocess
  /// worker, a batch consumer) skips the slot recycle, the callback
  /// reconstruction, and the heap pop+push of a fresh schedule_after —
  /// the fired node is overwritten in place like a periodic reschedule.
  /// The id stays valid for the whole chain (same slot, same generation),
  /// so cancel(id) between firings still stops it. Returns false when
  /// `id` is not the currently-firing event (e.g. the chain is being
  /// restarted from another event's callback) — callers then fall back
  /// to schedule_after.
  bool try_reschedule_firing(EventId id, SimTime delay);

  /// Cancels a pending event; a no-op for already-fired or unknown ids.
  void cancel(EventId id);

  /// Runs events with time <= `until`; afterwards now() == `until` even if
  /// the queue drained earlier.
  void run_until(SimTime until);

  /// Runs a single event if one is pending; returns false when idle.
  bool step();

  /// Number of events executed so far.
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }

  /// Number of events currently pending (excluding cancelled ones).
  [[nodiscard]] std::size_t pending() const { return live_count_; }

 private:
  struct Slot {
    Callback cb;
    SimTime period{0.0};
    std::uint32_t generation{1};
    bool periodic{false};
    bool live{false};
    /// True while this slot's callback is executing in place (periodic
    /// fire). A cancel() during that window marks the slot dead but defers
    /// destroying the callback to fire_top — a closure must not destroy
    /// itself mid-invocation.
    bool firing{false};
    /// Index of this slot's node in heap_, maintained by every sift so
    /// cancel() can remove the node without a search.
    std::uint32_t heap_pos{0};
  };
  struct Node {
    SimTime time;
    std::uint64_t seq;  // FIFO tie-break for equal timestamps
    std::uint32_t slot;
    std::uint32_t generation;
  };

  /// Strict total order (seq is unique), so the fire sequence is the same
  /// for any heap shape — arity is purely a performance choice.
  static bool earlier(const Node& a, const Node& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  /// Writes `node` at heap index `i` and records the position in its slot.
  void place(std::size_t i, const Node& node) {
    heap_[i] = node;
    slot_ref(node.slot).heap_pos = static_cast<std::uint32_t>(i);
  }
  void sift_up(std::size_t i, const Node& value);
  /// Places `value` at position `i` after moving smaller descendants up.
  void sift_down(std::size_t i, const Node& value);
  void heap_push(const Node& node);
  /// Removes and returns the minimum; heap must be non-empty.
  Node heap_pop();
  /// Removes the node at heap index `pos` (cancel path).
  void remove_at(std::size_t pos);
  /// Overwrites the minimum with `node` and restores the heap with one
  /// sift-down — the periodic-reschedule fast path (no pop + sift-up).
  void replace_top(const Node& node) { sift_down(0, node); }

  /// Slots live in fixed-size chunks: addresses stay valid while a
  /// callback runs (even when it schedules events that grow the pool), and
  /// indexing is a shift+mask, not a division like std::deque's.
  static constexpr std::uint32_t kChunkShift = 6;
  static constexpr std::uint32_t kChunkSize = 1u << kChunkShift;

  [[nodiscard]] Slot& slot_ref(std::uint32_t slot) {
    return chunks_[slot >> kChunkShift][slot & (kChunkSize - 1)];
  }

  std::uint32_t alloc_slot();
  void recycle_slot(std::uint32_t slot);
  void push_node(SimTime time, std::uint32_t slot, std::uint32_t generation);
  /// Pops the top node and runs it if still live; returns true when a
  /// callback executed.
  bool fire_top();

  static EventId make_id(std::uint32_t slot, std::uint32_t generation) {
    return (static_cast<EventId>(slot) << 32) | generation;
  }

  /// Sentinel for firing_slot_ when no callback is executing.
  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;

  SimTime now_{0.0};
  std::uint64_t next_seq_{0};
  /// Slot whose callback fire_top is currently invoking; gates
  /// try_reschedule_firing to the self-reschedule case only.
  std::uint32_t firing_slot_{kNoSlot};
  /// Set when the firing one-shot re-armed itself; fire_top then turns the
  /// pending pop + push into a replace-top with resched_node_.
  bool resched_armed_{false};
  Node resched_node_{};
  std::uint64_t executed_{0};
  std::size_t live_count_{0};
  // Indexed binary min-heap (slots track their node's position). Binary
  // beats higher arities here: the min-of-k child selection is a chain of
  // data-dependent branches, and with k=2 it is one well-predicted
  // comparison per level (measured ~1.6x faster fires than 4-ary).
  std::vector<Node> heap_;
  std::vector<std::unique_ptr<Slot[]>> chunks_;
  std::uint32_t slot_count_{0};  ///< slots constructed across all chunks
  std::vector<std::uint32_t> free_slots_;
};

}  // namespace capgpu::sim
