// Discrete-event simulation kernel.
//
// The workload pipeline (preprocessing, queueing, batching, GPU execution)
// and the 1 Hz power meter / 4 s control loop all run as events on this
// engine. Events at equal timestamps execute in scheduling order
// (deterministic FIFO tie-break), which keeps every experiment reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <unordered_map>
#include <vector>

namespace capgpu::sim {

/// Simulated wall-clock, in seconds since simulation start.
using SimTime = double;

/// Handle used to cancel a scheduled event. Id 0 is never issued.
using EventId = std::uint64_t;

/// Single-threaded discrete-event engine.
class Engine {
 public:
  using Callback = std::function<void()>;

  /// Current simulated time.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `cb` at absolute time `at` (>= now). Returns a cancellable id.
  EventId schedule_at(SimTime at, Callback cb);

  /// Schedules `cb` after `delay` seconds (delay >= 0).
  EventId schedule_after(SimTime delay, Callback cb);

  /// Schedules `cb` every `period` seconds, first firing at now() + period.
  /// The periodic event reschedules itself until cancelled.
  EventId schedule_periodic(SimTime period, Callback cb);

  /// Cancels a pending event; a no-op for already-fired or unknown ids.
  void cancel(EventId id);

  /// Runs events with time <= `until`; afterwards now() == `until` even if
  /// the queue drained earlier.
  void run_until(SimTime until);

  /// Runs a single event if one is pending; returns false when idle.
  bool step();

  /// Number of events executed so far.
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }

  /// Number of events currently pending (excluding cancelled ones).
  [[nodiscard]] std::size_t pending() const { return live_.size(); }

 private:
  struct State {
    Callback cb;
    bool periodic{false};
    SimTime period{0.0};
  };
  struct Node {
    SimTime time;
    std::uint64_t seq;  // FIFO tie-break for equal timestamps
    EventId id;
  };
  struct Later {
    bool operator()(const Node& a, const Node& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  SimTime now_{0.0};
  std::uint64_t next_seq_{0};
  EventId next_id_{1};
  std::uint64_t executed_{0};
  std::priority_queue<Node, std::vector<Node>, Later> queue_;
  std::unordered_map<EventId, State> live_;
};

}  // namespace capgpu::sim
