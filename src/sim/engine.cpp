#include "sim/engine.hpp"

#include "common/error.hpp"

namespace capgpu::sim {

namespace {
// A fresh engine is cheap (a few KB) but never grows in the hot loop for
// typical rigs: ~32 concurrent timers cover pipeline + meter + governors.
constexpr std::size_t kInitialCapacity = 64;
// Heap arity = 1 << kAryShift. Binary measured fastest: wider nodes halve
// the depth but pay ~k/2 unpredictable compares per level (4-ary was ~1.6x
// slower on the periodic-timer workload of bench_engine_selfperf).
constexpr std::size_t kAryShift = 1;
constexpr std::size_t kAry = std::size_t{1} << kAryShift;
}  // namespace

Engine::Engine() {
  heap_.reserve(kInitialCapacity);
  free_slots_.reserve(kInitialCapacity);
}

std::uint32_t Engine::alloc_slot() {
  if (!free_slots_.empty()) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  if ((slot_count_ & (kChunkSize - 1)) == 0) {
    chunks_.push_back(std::make_unique<Slot[]>(kChunkSize));
  }
  return slot_count_++;
}

void Engine::recycle_slot(std::uint32_t slot) {
  Slot& s = slot_ref(slot);
  s.cb.reset();
  s.live = false;
  s.periodic = false;
  // Invalidate every outstanding id for this incarnation; generation 0 is
  // skipped on wrap so no EventId is ever 0.
  if (++s.generation == 0) s.generation = 1;
  free_slots_.push_back(slot);
}

void Engine::sift_up(std::size_t i, const Node& value) {
  while (i > 0) {
    const std::size_t parent = (i - 1) >> kAryShift;
    if (!earlier(value, heap_[parent])) break;
    place(i, heap_[parent]);
    i = parent;
  }
  place(i, value);
}

void Engine::sift_down(std::size_t i, const Node& value) {
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t first = (i << kAryShift) + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t end = first + kAry < n ? first + kAry : n;
    for (std::size_t c = first + 1; c < end; ++c) {
      if (earlier(heap_[c], heap_[best])) best = c;
    }
    if (!earlier(heap_[best], value)) break;
    place(i, heap_[best]);
    i = best;
  }
  place(i, value);
}

void Engine::heap_push(const Node& node) {
  heap_.push_back(node);  // grow; sift_up overwrites from the hole
  sift_up(heap_.size() - 1, node);
}

Engine::Node Engine::heap_pop() {
  const Node top = heap_[0];
  const Node last = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0, last);
  return top;
}

void Engine::remove_at(std::size_t pos) {
  const Node last = heap_.back();
  heap_.pop_back();
  if (pos == heap_.size()) return;  // removed the tail itself
  // The tail may belong above or below the vacated position.
  if (pos > 0 && earlier(last, heap_[(pos - 1) >> kAryShift])) {
    sift_up(pos, last);
  } else {
    sift_down(pos, last);
  }
}

void Engine::push_node(SimTime time, std::uint32_t slot,
                       std::uint32_t generation) {
  heap_push(Node{time, next_seq_++, slot, generation});
}

EventId Engine::schedule_at(SimTime at, Callback cb) {
  CAPGPU_REQUIRE(at >= now_, "cannot schedule an event in the past");
  CAPGPU_REQUIRE(static_cast<bool>(cb), "cannot schedule a null callback");
  const std::uint32_t slot = alloc_slot();
  Slot& s = slot_ref(slot);
  s.cb = std::move(cb);
  s.periodic = false;
  s.period = 0.0;
  s.live = true;
  ++live_count_;
  push_node(at, slot, s.generation);
  return make_id(slot, s.generation);
}

EventId Engine::schedule_after(SimTime delay, Callback cb) {
  CAPGPU_REQUIRE(delay >= 0.0, "negative delay");
  return schedule_at(now_ + delay, std::move(cb));
}

EventId Engine::schedule_periodic(SimTime period, Callback cb) {
  CAPGPU_REQUIRE(period > 0.0, "periodic events need a positive period");
  CAPGPU_REQUIRE(static_cast<bool>(cb), "cannot schedule a null callback");
  const std::uint32_t slot = alloc_slot();
  Slot& s = slot_ref(slot);
  s.cb = std::move(cb);
  s.periodic = true;
  s.period = period;
  s.live = true;
  ++live_count_;
  push_node(now_ + period, slot, s.generation);
  return make_id(slot, s.generation);
}

bool Engine::try_reschedule_firing(EventId id, SimTime delay) {
  CAPGPU_REQUIRE(delay >= 0.0, "negative delay");
  const auto slot = static_cast<std::uint32_t>(id >> 32);
  const auto generation = static_cast<std::uint32_t>(id);
  if (slot != firing_slot_) return false;
  Slot& s = slot_ref(slot);
  if (s.generation != generation) return false;
  CAPGPU_REQUIRE(!s.periodic, "periodic events reschedule themselves");
  CAPGPU_REQUIRE(!resched_armed_ && !s.live,
                 "event already rescheduled during this firing");
  // The seq is drawn here — at the call, exactly where schedule_after
  // would draw it — so the FIFO tie-break order is identical whichever
  // path a caller takes.
  resched_node_ = Node{now_ + delay, next_seq_++, slot, generation};
  resched_armed_ = true;
  s.live = true;
  ++live_count_;
  return true;
}

void Engine::cancel(EventId id) {
  const auto slot = static_cast<std::uint32_t>(id >> 32);
  const auto generation = static_cast<std::uint32_t>(id);
  if (slot >= slot_count_) return;
  Slot& s = slot_ref(slot);
  if (s.generation != generation || !s.live) return;
  s.live = false;
  --live_count_;
  // A callback cancelling itself mid-invocation: its node is the one
  // fire_top is holding at the top, and a closure must not destroy itself,
  // so fire_top removes the node and recycles the slot after it returns.
  if (s.firing) return;
  remove_at(s.heap_pos);
  recycle_slot(slot);
}

bool Engine::fire_top() {
  const Node node = heap_.front();

  Slot& s = slot_ref(node.slot);
  // cancel() removes nodes eagerly, so a stale or dead node reaching the
  // top would be an engine bug; discard it rather than corrupt the run.
  if (s.generation != node.generation) {
    heap_pop();
    return false;
  }
  if (!s.live) {
    heap_pop();
    recycle_slot(node.slot);
    return false;
  }

  now_ = node.time;
  ++executed_;
  if (!s.periodic) {
    // Invoke in place: the slot stays occupied until after the callback
    // returns (so new events cannot reuse it mid-invocation, and the
    // closure is not destroyed while it runs), but it is already dead —
    // a cancel() of our id from inside the callback is a plain no-op.
    // The fired node also stays at the heap top while the callback runs
    // (everything the callback schedules is strictly later than
    // (node.time, node.seq), so the heap property holds); when the
    // callback re-arms itself via try_reschedule_firing the pop + push
    // collapses into a replace-top, the same fast path periodic events
    // use.
    s.live = false;
    --live_count_;
    s.firing = true;
    firing_slot_ = node.slot;
    resched_armed_ = false;
    try {
      s.cb();
    } catch (...) {
      s.firing = false;
      firing_slot_ = kNoSlot;
      // schedule_after'd work survives a throwing callback, so a
      // rescheduled chain does too.
      if (resched_armed_ && s.live) {
        replace_top(resched_node_);
      } else {
        heap_pop();
        recycle_slot(node.slot);
      }
      throw;
    }
    s.firing = false;
    firing_slot_ = kNoSlot;
    if (resched_armed_ && s.live) {
      replace_top(resched_node_);
    } else {
      heap_pop();
      recycle_slot(node.slot);
    }
    return true;
  }

  // Periodic: run in place — the slot reference is stable (chunked pool)
  // even if the callback grows it, and a self-cancel only marks the slot
  // dead (cancel defers the destroy while `firing` is set). The fired
  // node also stays at the heap top while the callback runs: anything the
  // callback schedules is strictly later than (node.time, node.seq), so
  // the heap property holds, and the reschedule becomes a replace-top —
  // one sift-down instead of a pop plus a push. Reschedule only if the
  // callback did not cancel its own event — rescheduling up front could
  // resurrect a series that cancelled itself.
  const SimTime next_time = node.time + s.period;
  s.firing = true;
  firing_slot_ = node.slot;
  try {
    s.cb();
  } catch (...) {
    // Keep the seed engine's contract: a throwing periodic callback stays
    // scheduled (its reschedule used to be pushed before the invocation).
    s.firing = false;
    firing_slot_ = kNoSlot;
    if (s.live) {
      replace_top(Node{next_time, next_seq_++, node.slot, node.generation});
    } else {
      heap_pop();
      recycle_slot(node.slot);
    }
    throw;
  }
  s.firing = false;
  firing_slot_ = kNoSlot;
  if (s.live) {
    replace_top(Node{next_time, next_seq_++, node.slot, node.generation});
  } else {
    // Cancelled from inside its own callback: let the slot go instead of
    // rescheduling (the pre-overhaul engine could resurrect this series).
    heap_pop();
    recycle_slot(node.slot);
  }
  return true;
}

bool Engine::step() {
  while (!heap_.empty()) {
    if (fire_top()) return true;
  }
  return false;
}

void Engine::run_until(SimTime until) {
  CAPGPU_REQUIRE(until >= now_, "run_until target is in the past");
  while (!heap_.empty() && heap_.front().time <= until) {
    fire_top();
  }
  now_ = until;
}

}  // namespace capgpu::sim
