#include "sim/engine.hpp"

#include "common/error.hpp"

namespace capgpu::sim {

EventId Engine::schedule_at(SimTime at, Callback cb) {
  CAPGPU_REQUIRE(at >= now_, "cannot schedule an event in the past");
  CAPGPU_REQUIRE(static_cast<bool>(cb), "cannot schedule a null callback");
  const EventId id = next_id_++;
  live_.emplace(id, State{std::move(cb), false, 0.0});
  queue_.push(Node{at, next_seq_++, id});
  return id;
}

EventId Engine::schedule_after(SimTime delay, Callback cb) {
  CAPGPU_REQUIRE(delay >= 0.0, "negative delay");
  return schedule_at(now_ + delay, std::move(cb));
}

EventId Engine::schedule_periodic(SimTime period, Callback cb) {
  CAPGPU_REQUIRE(period > 0.0, "periodic events need a positive period");
  CAPGPU_REQUIRE(static_cast<bool>(cb), "cannot schedule a null callback");
  const EventId id = next_id_++;
  live_.emplace(id, State{std::move(cb), true, period});
  queue_.push(Node{now_ + period, next_seq_++, id});
  return id;
}

void Engine::cancel(EventId id) { live_.erase(id); }

bool Engine::step() {
  while (!queue_.empty()) {
    const Node node = queue_.top();
    queue_.pop();
    auto it = live_.find(node.id);
    if (it == live_.end()) continue;  // cancelled
    now_ = node.time;
    ++executed_;
    if (it->second.periodic) {
      queue_.push(Node{node.time + it->second.period, next_seq_++, node.id});
      // The callback may cancel its own periodic event, so copy it first.
      Callback cb = it->second.cb;
      cb();
    } else {
      Callback cb = std::move(it->second.cb);
      live_.erase(it);
      cb();
    }
    return true;
  }
  return false;
}

void Engine::run_until(SimTime until) {
  CAPGPU_REQUIRE(until >= now_, "run_until target is in the past");
  for (;;) {
    // Drop cancelled heads so the time check below sees a live event.
    while (!queue_.empty() && !live_.contains(queue_.top().id)) queue_.pop();
    if (queue_.empty() || queue_.top().time > until) break;
    step();
  }
  now_ = until;
}

}  // namespace capgpu::sim
