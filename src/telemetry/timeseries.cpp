#include "telemetry/timeseries.hpp"

#include "common/error.hpp"

namespace capgpu::telemetry {

void TimeSeries::add(double time, double value) {
  times_.push_back(time);
  values_.push_back(value);
}

double TimeSeries::time_at(std::size_t i) const {
  CAPGPU_ASSERT(i < times_.size());
  return times_[i];
}

double TimeSeries::value_at(std::size_t i) const {
  CAPGPU_ASSERT(i < values_.size());
  return values_[i];
}

RunningStats TimeSeries::stats_from(std::size_t first) const {
  RunningStats s;
  for (std::size_t i = first; i < values_.size(); ++i) s.add(values_[i]);
  return s;
}

std::size_t TimeSeries::count_above(double limit, std::size_t first) const {
  std::size_t n = 0;
  for (std::size_t i = first; i < values_.size(); ++i)
    if (values_[i] > limit) ++n;
  return n;
}

std::size_t TimeSeries::settling_index(double target, double band) const {
  std::size_t idx = values_.size();
  for (std::size_t i = values_.size(); i-- > 0;) {
    const double err = values_[i] - target;
    if (err > band || err < -band) break;
    idx = i;
  }
  return idx;
}

}  // namespace capgpu::telemetry
