// Power-capping audit: breaker-risk metrics over a power trace.
//
// Circuit breakers trip on sustained overcurrent, not instantaneous blips:
// what matters operationally is how long and how far a trace sat above the
// cap, and the worst contiguous excess-energy burst. These metrics
// summarise a run the way a capacity engineer would read it.
#pragma once

#include "common/units.hpp"
#include "telemetry/timeseries.hpp"

namespace capgpu::telemetry {

/// Breaker-risk summary of one power trace against a (possibly moving) cap.
struct CappingAudit {
  std::size_t samples{0};
  std::size_t violation_samples{0};    ///< samples above cap + tolerance
  double violation_fraction{0.0};
  double worst_excess_watts{0.0};      ///< max (p - cap) over the trace
  std::size_t longest_streak{0};       ///< consecutive violating samples
  /// Excess energy above the cap, integrated over violating samples
  /// (watt-seconds): the quantity thermal breaker elements integrate.
  double excess_joules{0.0};
  /// Mean headroom (cap - p) over non-violating samples: the budget the
  /// controller left unused.
  double mean_headroom_watts{0.0};
};

/// Audits `power` against a fixed cap. `sample_seconds` is the spacing of
/// the trace samples (the control period); `tolerance` is the violation
/// dead-band.
[[nodiscard]] CappingAudit audit_capping(const TimeSeries& power, Watts cap,
                                         double sample_seconds,
                                         double tolerance_watts = 5.0,
                                         std::size_t skip = 0);

/// Audits against a per-sample cap trace (set-point schedules); both series
/// must be the same length.
[[nodiscard]] CappingAudit audit_capping(const TimeSeries& power,
                                         const TimeSeries& cap,
                                         double sample_seconds,
                                         double tolerance_watts = 5.0,
                                         std::size_t skip = 0);

}  // namespace capgpu::telemetry
