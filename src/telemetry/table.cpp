#include "telemetry/table.hpp"

#include <algorithm>
#include <iomanip>
#include <iostream>
#include <sstream>

namespace capgpu::telemetry {

std::string fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

Table& Table::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
  return *this;
}

Table& Table::add_row(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
  return *this;
}

Table& Table::add_row(const std::string& label,
                      const std::vector<double>& values, int precision) {
  std::vector<std::string> row{label};
  for (double v : values) row.push_back(fmt(v, precision));
  return add_row(std::move(row));
}

std::string Table::render() const {
  std::vector<std::size_t> widths;
  auto grow = [&](const std::vector<std::string>& row) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i)
      widths[i] = std::max(widths[i], row[i].size());
  };
  grow(header_);
  for (const auto& r : rows_) grow(r);

  std::ostringstream os;
  os << "== " << title_ << " ==\n";
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string{};
      os << std::left << std::setw(static_cast<int>(widths[i]) + 2) << cell;
    }
    os << '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (std::size_t w : widths) total += w + 2;
    os << std::string(total, '-') << '\n';
  }
  for (const auto& r : rows_) emit(r);
  return os.str();
}

void Table::print() const { std::cout << render() << std::flush; }

}  // namespace capgpu::telemetry
