#include "telemetry/slo.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

#include "common/error.hpp"
#include "telemetry/metric_names.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/sketch.hpp"

namespace capgpu::telemetry {

SloBurnMonitor::SloBurnMonitor(SloBurnConfig config) : config_(config) {
  CAPGPU_REQUIRE(config.objective > 0.0 && config.objective < 1.0,
                 "SLO objective must be in (0, 1)");
  CAPGPU_REQUIRE(config.fast_window_s > 0.0 &&
                     config.slow_window_s >= config.fast_window_s,
                 "burn windows must be positive with slow >= fast");
  CAPGPU_REQUIRE(config.burn_threshold > 0.0,
                 "burn threshold must be positive");
  CAPGPU_REQUIRE(config.clear_fraction > 0.0 && config.clear_fraction <= 1.0,
                 "clear fraction must be in (0, 1]");
}

double SloBurnMonitor::window_burn(double now, double window_s) const {
  std::uint64_t checked = 0;
  std::uint64_t missed = 0;
  for (auto it = samples_.rbegin(); it != samples_.rend(); ++it) {
    if (it->time <= now - window_s) break;
    checked += it->checked;
    missed += it->missed;
  }
  if (checked == 0) return 0.0;
  const double miss_rate =
      static_cast<double>(missed) / static_cast<double>(checked);
  return miss_rate / (1.0 - config_.objective);
}

SloBurnMonitor::Transition SloBurnMonitor::record(double now,
                                                  std::uint64_t checked,
                                                  std::uint64_t missed) {
  if (!config_.enabled) return Transition::kNone;
  CAPGPU_REQUIRE(missed <= checked, "missed cannot exceed checked");
  samples_.push_back({now, checked, missed});
  while (!samples_.empty() &&
         samples_.front().time <= now - config_.slow_window_s) {
    samples_.pop_front();
  }
  checked_total_ += checked;
  missed_total_ += missed;
  fast_burn_ = window_burn(now, config_.fast_window_s);
  slow_burn_ = window_burn(now, config_.slow_window_s);

  // A tiny epsilon keeps ">= threshold" robust against the float division
  // in window_burn: a burn landing exactly on the threshold must fire.
  const double eps = 1e-9 * config_.burn_threshold;
  if (!alerting_) {
    if (fast_burn_ >= config_.burn_threshold - eps &&
        slow_burn_ >= config_.burn_threshold - eps) {
      alerting_ = true;
      ++alerts_fired_;
      return Transition::kFired;
    }
  } else {
    const double clear_level = config_.burn_threshold * config_.clear_fraction;
    if (fast_burn_ < clear_level && slow_burn_ < clear_level) {
      alerting_ = false;
      return Transition::kCleared;
    }
  }
  return Transition::kNone;
}

double SloBurnMonitor::budget_consumed() const {
  if (checked_total_ == 0) return 0.0;
  const double miss_rate = static_cast<double>(missed_total_) /
                           static_cast<double>(checked_total_);
  return miss_rate / (1.0 - config_.objective);
}

namespace {
thread_local SloRegistry* t_current_slo_registry = nullptr;
}  // namespace

SloRegistry& SloRegistry::global() {
  static SloRegistry registry;
  return registry;
}

SloRegistry& SloRegistry::current() {
  return t_current_slo_registry ? *t_current_slo_registry : global();
}

SloRegistry::ScopedCurrent::ScopedCurrent(SloRegistry& registry)
    : previous_(t_current_slo_registry) {
  t_current_slo_registry = &registry;
}

SloRegistry::ScopedCurrent::~ScopedCurrent() {
  t_current_slo_registry = previous_;
}

void SloRegistry::add(SloEntry entry) { entries_.push_back(std::move(entry)); }

void SloRegistry::merge_from(const SloRegistry& other, int pid_offset) {
  entries_.reserve(entries_.size() + other.entries_.size());
  for (SloEntry entry : other.entries_) {
    entry.pid += pid_offset;
    entries_.push_back(std::move(entry));
  }
}

namespace {

// Same shortest-stable rendering as the Prometheus exporter, so report
// bytes stay deterministic.
std::string render_number(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.10g", std::isfinite(v) ? v : 0.0);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void write_quantile_entry(std::ostream& out, const std::string& model,
                          const std::string& stage, const QuantileSketch& s,
                          bool& first) {
  out << (first ? "\n    " : ",\n    ");
  first = false;
  out << "{\"model\":\"" << json_escape(model) << "\",\"stage\":\""
      << json_escape(stage) << "\",\"relative_error\":"
      << render_number(s.spec().relative_error)
      << ",\"count\":" << s.count();
  static constexpr const char* kQuantileKeys[kSummaryQuantileCount] = {
      "p50", "p95", "p99", "p999"};
  for (std::size_t q = 0; q < kSummaryQuantileCount; ++q) {
    out << ",\"" << kQuantileKeys[q]
        << "\":" << render_number(s.quantile(kSummaryQuantiles[q]));
  }
  const double mean =
      s.count() ? s.sum() / static_cast<double>(s.count()) : 0.0;
  out << ",\"mean\":" << render_number(mean)
      << ",\"max\":" << render_number(s.max()) << '}';
}

std::string label_value(const Labels& labels, const std::string& key) {
  for (const auto& [k, v] : labels) {
    if (k == key) return v;
  }
  return "";
}

}  // namespace

void write_slo_report(const SloRegistry& slo, const MetricsRegistry& metrics,
                      std::ostream& out) {
  out << "{\n  \"entries\": [";
  bool first = true;
  for (const SloEntry& e : slo.entries()) {
    out << (first ? "\n    " : ",\n    ");
    first = false;
    out << "{\"pid\":" << e.pid << ",\"policy\":\"" << json_escape(e.policy)
        << "\",\"model\":\"" << json_escape(e.model)
        << "\",\"objective\":" << render_number(e.objective)
        << ",\"slo_seconds\":" << render_number(e.slo_seconds)
        << ",\"checked\":" << e.checked << ",\"missed\":" << e.missed
        << ",\"budget_consumed\":" << render_number(e.budget_consumed)
        << ",\"fast_burn\":" << render_number(e.final_fast_burn)
        << ",\"slow_burn\":" << render_number(e.final_slow_burn)
        << ",\"alerts\":" << e.alerts << ",\"episodes\":[";
    for (std::size_t i = 0; i < e.episodes.size(); ++i) {
      const SloAlertEpisode& ep = e.episodes[i];
      if (i) out << ',';
      out << "{\"fired_at_s\":" << render_number(ep.fired_at_s)
          << ",\"cleared_at_s\":"
          << render_number(ep.cleared ? ep.cleared_at_s : 0.0)
          << ",\"cleared\":" << (ep.cleared ? "true" : "false") << '}';
    }
    out << "]}";
  }
  out << "\n  ],\n  \"stage_quantiles\": [";

  first = true;
  for (const auto* family : metrics.families()) {
    const bool is_stage = family->name == metric::kStageLatencySeconds;
    const bool is_total = family->name == metric::kRequestLatencySeconds;
    if (!is_stage && !is_total) continue;
    for (const auto& [key, inst] : family->series) {
      (void)key;
      if (!inst->sketch) continue;
      write_quantile_entry(out, label_value(inst->labels, "model"),
                           is_stage ? label_value(inst->labels, "stage")
                                    : "total",
                           *inst->sketch, first);
    }
  }
  out << "\n  ]\n}\n";
}

std::string to_slo_report(const SloRegistry& slo,
                          const MetricsRegistry& metrics) {
  std::ostringstream out;
  write_slo_report(slo, metrics, out);
  return out.str();
}

void save_slo_report(const SloRegistry& slo, const MetricsRegistry& metrics,
                     const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw Error("cannot write SLO report file: " + path);
  write_slo_report(slo, metrics, out);
}

}  // namespace capgpu::telemetry
