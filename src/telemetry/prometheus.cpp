#include "telemetry/prometheus.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

#include "common/error.hpp"
#include "telemetry/sketch.hpp"

namespace capgpu::telemetry {

namespace {

// Shortest stable rendering: integral values print as integers (counter
// and bucket counts read naturally), everything else as %.10g. Non-finite
// values must use the exposition-format spellings "NaN" / "+Inf" / "-Inf"
// — %g would print lowercase "nan"/"inf", which Prometheus rejects (gauges
// can legitimately hold NaN, e.g. a meter dark fault).
std::string format_value(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0.0 ? "+Inf" : "-Inf";
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  return buf;
}

std::string escape_label_value(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string escape_help(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

/// Renders `{k="v",...}` with an optional extra (le) pair appended; empty
/// string when there are no labels at all.
std::string label_block(const Labels& labels, const std::string& extra_key,
                        const std::string& extra_value) {
  if (labels.empty() && extra_key.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k;
    out += "=\"";
    out += escape_label_value(v);
    out += '"';
  }
  if (!extra_key.empty()) {
    if (!first) out += ',';
    out += extra_key;
    out += "=\"";
    out += extra_value;
    out += '"';
  }
  out += '}';
  return out;
}

const char* type_name(MetricType type) {
  switch (type) {
    case MetricType::kCounter: return "counter";
    case MetricType::kGauge: return "gauge";
    case MetricType::kHistogram: return "histogram";
    case MetricType::kSketch: return "summary";
  }
  return "untyped";
}

}  // namespace

void write_prometheus(const MetricsRegistry& registry, std::ostream& out) {
  for (const auto* family : registry.families()) {
    out << "# HELP " << family->name << ' ' << escape_help(family->help)
        << '\n';
    out << "# TYPE " << family->name << ' ' << type_name(family->type)
        << '\n';
    for (const auto& [key, inst] : family->series) {
      (void)key;
      switch (family->type) {
        case MetricType::kCounter:
          out << family->name << label_block(inst->labels, "", "") << ' '
              << format_value(inst->counter.value()) << '\n';
          break;
        case MetricType::kGauge:
          out << family->name << label_block(inst->labels, "", "") << ' '
              << format_value(inst->gauge.value()) << '\n';
          break;
        case MetricType::kHistogram: {
          const LogLinearHistogram& h = *inst->histogram;
          std::uint64_t cumulative = 0;
          for (std::size_t i = 0; i < h.upper_bounds().size(); ++i) {
            cumulative += h.counts()[i];
            out << family->name << "_bucket"
                << label_block(inst->labels, "le",
                               format_value(h.upper_bounds()[i]))
                << ' ' << cumulative << '\n';
          }
          cumulative += h.counts().back();
          out << family->name << "_bucket"
              << label_block(inst->labels, "le", "+Inf") << ' ' << cumulative
              << '\n';
          out << family->name << "_sum" << label_block(inst->labels, "", "")
              << ' ' << format_value(h.sum()) << '\n';
          out << family->name << "_count" << label_block(inst->labels, "", "")
              << ' ' << h.count() << '\n';
          break;
        }
        case MetricType::kSketch: {
          const QuantileSketch& s = *inst->sketch;
          for (double q : kSummaryQuantiles) {
            out << family->name
                << label_block(inst->labels, "quantile", format_value(q))
                << ' ' << format_value(s.quantile(q)) << '\n';
          }
          out << family->name << "_sum" << label_block(inst->labels, "", "")
              << ' ' << format_value(s.sum()) << '\n';
          out << family->name << "_count" << label_block(inst->labels, "", "")
              << ' ' << s.count() << '\n';
          break;
        }
      }
    }
  }
}

std::string to_prometheus(const MetricsRegistry& registry) {
  std::ostringstream out;
  write_prometheus(registry, out);
  return out.str();
}

void save_prometheus(const MetricsRegistry& registry,
                     const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw Error("cannot write metrics file: " + path);
  write_prometheus(registry, out);
}

}  // namespace capgpu::telemetry
