#include "telemetry/energy.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

#include "common/error.hpp"
#include "telemetry/metric_names.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/sketch.hpp"

namespace capgpu::telemetry {

EnergyLedger::EnergyLedger(std::string policy, int pid, std::size_t gpus,
                           std::vector<std::string> model_names)
    : policy_(std::move(policy)),
      pid_(pid),
      gpus_(gpus),
      model_names_(std::move(model_names)) {
  CAPGPU_REQUIRE(gpus_ > 0, "energy ledger needs at least one GPU slot");
  auto& registry = MetricsRegistry::current();
  stage_counters_.resize(model_names_.size());
  request_sketches_.resize(model_names_.size());
  period_batches_.resize(model_names_.size());
  for (std::size_t i = 0; i < model_names_.size(); ++i) {
    for (std::size_t s = 0; s < kEnergyStageCount; ++s) {
      stage_counters_[i][s] = &registry.counter(
          metric::kEnergyJoules,
          "Metered energy attributed to requests, by pipeline stage",
          {{"model", model_names_[i]}, {"stage", kEnergyStageNames[s]}});
    }
    request_sketches_[i] = &registry.sketch(
        metric::kRequestEnergyJoules,
        "Per-request attributed energy", {{"model", model_names_[i]}});
  }
  idle_counter_ = &registry.counter(
      metric::kEnergyIdleJoules,
      "Metered energy not attributable to batch execution (idle GPU time)",
      {});
}

void EnergyLedger::begin_period(double cap_watts, double avg_power_watts,
                                double period_s) {
  CAPGPU_REQUIRE(!period_open_, "energy period already open");
  CAPGPU_REQUIRE(period_s > 0.0, "energy period length must be positive");
  period_open_ = true;
  period_s_ = period_s;
  period_energy_j_ = avg_power_watts * period_s;
  const auto key = static_cast<long long>(std::llround(cap_watts * 10.0));
  CapAccum& cap = caps_[key];
  if (cap.periods == 0) {
    cap.cap_watts = cap_watts;
    cap.models.resize(model_names_.size());
  }
  period_cap_ = &cap;
}

void EnergyLedger::add_batches(std::size_t stream, const EnergyBatch* batches,
                               std::size_t count) {
  CAPGPU_REQUIRE(period_open_, "add_batches outside an open energy period");
  CAPGPU_REQUIRE(stream < period_batches_.size(),
                 "energy ledger stream index out of range");
  period_batches_[stream].insert(period_batches_[stream].end(), batches,
                                 batches + count);
}

void EnergyLedger::end_period() {
  CAPGPU_REQUIRE(period_open_, "end_period without begin_period");
  period_open_ = false;
  CapAccum& cap = *period_cap_;
  ++cap.periods;
  cap.total_joules += period_energy_j_;
  total_joules_ += period_energy_j_;

  // GPU-seconds the period's batches actually occupied; the duty cycle
  // caps at 1 (a batch straddling the period boundary is attributed
  // wholly to its completion period, so busy_s can slightly exceed the
  // period's capacity).
  double busy_s = 0.0;
  for (const auto& batches : period_batches_) {
    for (const EnergyBatch& b : batches) busy_s += b.end_s - b.start_s;
  }
  const double capacity_s = static_cast<double>(gpus_) * period_s_;
  const double duty = busy_s > 0.0 ? std::min(1.0, busy_s / capacity_s) : 0.0;
  const double active_j = period_energy_j_ * duty;
  const double idle_j = period_energy_j_ - active_j;
  cap.active_joules += active_j;
  cap.idle_joules += idle_j;
  idle_counter_->inc(idle_j);

  for (std::size_t i = 0; i < period_batches_.size(); ++i) {
    auto& batches = period_batches_[i];
    if (batches.empty()) continue;
    ModelAccum& model = cap.models[i];
    for (const EnergyBatch& b : batches) {
      // Active energy apportioned by GPU-exec occupancy share; within the
      // batch, stages split by summed request residency.
      const double batch_j = active_j * ((b.end_s - b.start_s) / busy_s);
      double residency_s = 0.0;
      for (double s : b.stage_s) residency_s += s;
      model.energy_joules += batch_j;
      model.requests += b.images;
      ++model.batches;
      cap.requests += b.images;
      ++cap.batches;
      for (std::size_t s = 0; s < kEnergyStageCount; ++s) {
        const double stage_j =
            residency_s > 0.0 ? batch_j * (b.stage_s[s] / residency_s) : 0.0;
        model.stage_joules[s] += stage_j;
        stage_counters_[i][s]->inc(stage_j);
      }
      if (b.images > 0) {
        request_sketches_[i]->observe_many(
            batch_j / static_cast<double>(b.images), b.images);
      }
    }
    batches.clear();
  }
  period_cap_ = nullptr;
}

void EnergyLedger::finalize(EnergyRegistry& registry) const {
  CAPGPU_REQUIRE(!period_open_, "finalize with an open energy period");
  for (const auto& [key, cap] : caps_) {
    (void)key;
    EnergyCapSummary summary;
    summary.pid = pid_;
    summary.policy = policy_;
    summary.cap_watts = cap.cap_watts;
    summary.periods = cap.periods;
    summary.total_joules = cap.total_joules;
    summary.active_joules = cap.active_joules;
    summary.idle_joules = cap.idle_joules;
    summary.requests = cap.requests;
    summary.batches = cap.batches;
    registry.add_cap(std::move(summary));
    for (std::size_t i = 0; i < cap.models.size(); ++i) {
      const ModelAccum& model = cap.models[i];
      if (model.batches == 0) continue;
      EnergyEntry entry;
      entry.pid = pid_;
      entry.policy = policy_;
      entry.model = model_names_[i];
      entry.cap_watts = cap.cap_watts;
      entry.energy_joules = model.energy_joules;
      entry.stage_joules = model.stage_joules;
      entry.requests = model.requests;
      entry.batches = model.batches;
      registry.add_entry(std::move(entry));
    }
  }
}

namespace {
thread_local EnergyRegistry* t_current_energy_registry = nullptr;
}  // namespace

EnergyRegistry& EnergyRegistry::global() {
  static EnergyRegistry registry;
  return registry;
}

EnergyRegistry& EnergyRegistry::current() {
  return t_current_energy_registry ? *t_current_energy_registry : global();
}

EnergyRegistry::ScopedCurrent::ScopedCurrent(EnergyRegistry& registry)
    : previous_(t_current_energy_registry) {
  t_current_energy_registry = &registry;
}

EnergyRegistry::ScopedCurrent::~ScopedCurrent() {
  t_current_energy_registry = previous_;
}

void EnergyRegistry::add_entry(EnergyEntry entry) {
  entries_.push_back(std::move(entry));
}

void EnergyRegistry::add_cap(EnergyCapSummary cap) {
  caps_.push_back(std::move(cap));
}

void EnergyRegistry::merge_from(const EnergyRegistry& other, int pid_offset) {
  entries_.reserve(entries_.size() + other.entries_.size());
  for (EnergyEntry entry : other.entries_) {
    entry.pid += pid_offset;
    entries_.push_back(std::move(entry));
  }
  caps_.reserve(caps_.size() + other.caps_.size());
  for (EnergyCapSummary cap : other.caps_) {
    cap.pid += pid_offset;
    caps_.push_back(std::move(cap));
  }
}

namespace {

// Same shortest-stable rendering as the SLO report writer, so report bytes
// stay deterministic across platforms.
std::string render_number(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.10g", std::isfinite(v) ? v : 0.0);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Stage with the largest attributed joules across every entry matching
/// the cap summary (same pid + cap bucket); "" when nothing attributed.
std::string dominant_stage(const EnergyRegistry& energy,
                           const EnergyCapSummary& cap) {
  std::array<double, kEnergyStageCount> totals{};
  const auto key = std::llround(cap.cap_watts * 10.0);
  for (const EnergyEntry& e : energy.entries()) {
    if (e.pid != cap.pid || std::llround(e.cap_watts * 10.0) != key) continue;
    for (std::size_t s = 0; s < kEnergyStageCount; ++s) {
      totals[s] += e.stage_joules[s];
    }
  }
  std::size_t best = 0;
  double best_j = 0.0;
  for (std::size_t s = 0; s < kEnergyStageCount; ++s) {
    if (totals[s] > best_j) {
      best_j = totals[s];
      best = s;
    }
  }
  return best_j > 0.0 ? kEnergyStageNames[best] : "";
}

}  // namespace

void write_energy_report(const EnergyRegistry& energy, std::ostream& out) {
  out << "{\n  \"entries\": [";
  bool first = true;
  for (const EnergyEntry& e : energy.entries()) {
    out << (first ? "\n    " : ",\n    ");
    first = false;
    const double jpr =
        e.requests ? e.energy_joules / static_cast<double>(e.requests) : 0.0;
    out << "{\"pid\":" << e.pid << ",\"policy\":\"" << json_escape(e.policy)
        << "\",\"model\":\"" << json_escape(e.model)
        << "\",\"cap_watts\":" << render_number(e.cap_watts)
        << ",\"energy_joules\":" << render_number(e.energy_joules)
        << ",\"stage_joules\":{";
    for (std::size_t s = 0; s < kEnergyStageCount; ++s) {
      out << (s ? "," : "") << '"' << kEnergyStageNames[s]
          << "\":" << render_number(e.stage_joules[s]);
    }
    out << "},\"requests\":" << e.requests << ",\"batches\":" << e.batches
        << ",\"joules_per_request\":" << render_number(jpr) << '}';
  }
  out << "\n  ],\n  \"caps\": [";
  first = true;
  for (const EnergyCapSummary& c : energy.caps()) {
    out << (first ? "\n    " : ",\n    ");
    first = false;
    const double jpr =
        c.requests ? c.total_joules / static_cast<double>(c.requests) : 0.0;
    const double rpkj =
        c.total_joules > 0.0
            ? static_cast<double>(c.requests) / (c.total_joules / 1e3)
            : 0.0;
    const double idle_frac =
        c.total_joules > 0.0 ? c.idle_joules / c.total_joules : 0.0;
    out << "{\"pid\":" << c.pid << ",\"policy\":\"" << json_escape(c.policy)
        << "\",\"cap_watts\":" << render_number(c.cap_watts)
        << ",\"periods\":" << c.periods
        << ",\"total_joules\":" << render_number(c.total_joules)
        << ",\"active_joules\":" << render_number(c.active_joules)
        << ",\"idle_joules\":" << render_number(c.idle_joules)
        << ",\"idle_fraction\":" << render_number(idle_frac)
        << ",\"requests\":" << c.requests << ",\"batches\":" << c.batches
        << ",\"joules_per_request\":" << render_number(jpr)
        << ",\"requests_per_kilojoule\":" << render_number(rpkj)
        << ",\"dominant_stage\":\""
        << json_escape(dominant_stage(energy, c)) << "\"}";
  }
  out << "\n  ]\n}\n";
}

std::string to_energy_report(const EnergyRegistry& energy) {
  std::ostringstream out;
  write_energy_report(energy, out);
  return out.str();
}

void save_energy_report(const EnergyRegistry& energy,
                        const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw Error("cannot write energy report file: " + path);
  write_energy_report(energy, out);
}

}  // namespace capgpu::telemetry
