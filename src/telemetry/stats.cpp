#include "telemetry/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace capgpu::telemetry {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& o) {
  if (o.count_ == 0) return;
  if (count_ == 0) {
    *this = o;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(o.count_);
  const double delta = o.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += o.m2_ + delta * delta * na * nb / n;
  count_ += o.count_;
  sum_ += o.sum_;
  min_ = std::min(min_, o.min_);
  max_ = std::max(max_, o.max_);
}

void RunningStats::reset() { *this = RunningStats{}; }

double RunningStats::mean() const { return count_ ? mean_ : 0.0; }

double RunningStats::variance() const {
  return count_ ? m2_ / static_cast<double>(count_) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::sample_stddev() const {
  return count_ > 1 ? std::sqrt(m2_ / static_cast<double>(count_ - 1)) : 0.0;
}

double RunningStats::min() const { return min_; }
double RunningStats::max() const { return max_; }
double RunningStats::sum() const { return sum_; }

void PercentileTracker::add(double x) {
  samples_.push_back(x);
  sorted_ = false;
}

void PercentileTracker::reset() {
  samples_.clear();
  sorted_ = true;
}

double PercentileTracker::quantile(double q) const {
  CAPGPU_REQUIRE(!samples_.empty(), "quantile of empty tracker");
  CAPGPU_REQUIRE(q >= 0.0 && q <= 1.0, "quantile q must be in [0,1]");
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= samples_.size()) return samples_.back();
  return samples_[lo] * (1.0 - frac) + samples_[lo + 1] * frac;
}

void RatioCounter::add(bool hit) {
  ++total_;
  if (hit) ++hits_;
}

void RatioCounter::reset() { *this = RatioCounter{}; }

double RatioCounter::ratio() const {
  return total_ ? static_cast<double>(hits_) / static_cast<double>(total_) : 0.0;
}

}  // namespace capgpu::telemetry
