// Fixed-bin histogram, mostly for latency distributions in benches.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace capgpu::telemetry {

/// Uniform-bin histogram over [lo, hi); out-of-range samples land in
/// saturating under/overflow bins.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  void reset();

  [[nodiscard]] std::size_t bins() const { return counts_.size(); }
  [[nodiscard]] std::size_t bin_count(std::size_t i) const;
  [[nodiscard]] std::size_t underflow() const { return underflow_; }
  [[nodiscard]] std::size_t overflow() const { return overflow_; }
  [[nodiscard]] std::size_t total() const { return total_; }
  /// Center of bin i.
  [[nodiscard]] double bin_center(std::size_t i) const;

  /// Renders a compact ASCII bar chart (one line per bin).
  [[nodiscard]] std::string to_ascii(std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_{0};
  std::size_t overflow_{0};
  std::size_t total_{0};
};

}  // namespace capgpu::telemetry
