#include "telemetry/audit.hpp"

#include <algorithm>
#include <functional>

#include "common/error.hpp"

namespace capgpu::telemetry {

namespace {

CappingAudit audit_impl(const TimeSeries& power,
                        const std::function<double(std::size_t)>& cap_at,
                        double sample_seconds, double tolerance_watts,
                        std::size_t skip) {
  CAPGPU_REQUIRE(sample_seconds > 0.0, "sample spacing must be positive");
  CAPGPU_REQUIRE(tolerance_watts >= 0.0, "tolerance must be >= 0");
  CappingAudit audit;
  std::size_t streak = 0;
  double headroom_sum = 0.0;
  std::size_t headroom_n = 0;
  for (std::size_t i = skip; i < power.size(); ++i) {
    const double p = power.value_at(i);
    const double cap = cap_at(i);
    ++audit.samples;
    const double excess = p - cap;
    if (excess > tolerance_watts) {
      ++audit.violation_samples;
      ++streak;
      audit.longest_streak = std::max(audit.longest_streak, streak);
      audit.worst_excess_watts = std::max(audit.worst_excess_watts, excess);
      audit.excess_joules += excess * sample_seconds;
    } else {
      streak = 0;
      if (excess < 0.0) {
        headroom_sum += -excess;
        ++headroom_n;
      }
    }
  }
  if (audit.samples > 0) {
    audit.violation_fraction =
        static_cast<double>(audit.violation_samples) /
        static_cast<double>(audit.samples);
  }
  if (headroom_n > 0) {
    audit.mean_headroom_watts = headroom_sum / static_cast<double>(headroom_n);
  }
  return audit;
}

}  // namespace

CappingAudit audit_capping(const TimeSeries& power, Watts cap,
                           double sample_seconds, double tolerance_watts,
                           std::size_t skip) {
  return audit_impl(
      power, [&](std::size_t) { return cap.value; }, sample_seconds,
      tolerance_watts, skip);
}

CappingAudit audit_capping(const TimeSeries& power, const TimeSeries& cap,
                           double sample_seconds, double tolerance_watts,
                           std::size_t skip) {
  CAPGPU_REQUIRE(cap.size() == power.size(),
                 "cap trace must match the power trace");
  return audit_impl(
      power, [&](std::size_t i) { return cap.value_at(i); }, sample_seconds,
      tolerance_watts, skip);
}

}  // namespace capgpu::telemetry
