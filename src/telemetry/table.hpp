// ASCII table rendering; every bench prints its paper table/figure rows
// through this so the output format is uniform.
#pragma once

#include <string>
#include <vector>

namespace capgpu::telemetry {

/// Column-aligned ASCII table with a title.
class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  Table& set_header(std::vector<std::string> header);
  Table& add_row(std::vector<std::string> row);

  /// Convenience: formats doubles with the given precision.
  Table& add_row(const std::string& label, const std::vector<double>& values,
                 int precision = 2);

  [[nodiscard]] std::string render() const;
  void print() const;  ///< render() to stdout.

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision.
[[nodiscard]] std::string fmt(double v, int precision = 2);

}  // namespace capgpu::telemetry
