// Canonical metric names for the observability registry.
//
// Every metric the library registers is named here — one constant per
// series family — so instrumentation sites cannot drift apart on spelling
// and scripts/check_metrics_docs.sh can verify each name is documented in
// docs/observability.md. Naming follows the Prometheus conventions:
// `capgpu_<subsystem>_<quantity>_<unit>`, `_total` suffix on counters.
#pragma once

namespace capgpu::telemetry::metric {

// --- control loop (core::ControlLoop) ---
inline constexpr const char* kLoopPeriods = "capgpu_loop_periods_total";
inline constexpr const char* kLoopSkippedPeriods =
    "capgpu_loop_skipped_periods_total";
inline constexpr const char* kLoopDeadbandPeriods =
    "capgpu_loop_deadband_periods_total";
inline constexpr const char* kLoopLevelTransitions =
    "capgpu_loop_level_transitions_total";
inline constexpr const char* kServerPowerWatts = "capgpu_server_power_watts";
inline constexpr const char* kPowerErrorWatts =
    "capgpu_loop_power_error_watts";
inline constexpr const char* kDeviceFrequencyMhz =
    "capgpu_device_frequency_mhz";

// --- inference pipeline (workload::InferenceStream) ---
inline constexpr const char* kBatchLatencySeconds =
    "capgpu_gpu_batch_latency_seconds";
inline constexpr const char* kImagesCompleted =
    "capgpu_gpu_images_completed_total";
inline constexpr const char* kBatchesCompleted = "capgpu_gpu_batches_total";

// --- request-level latency attribution (workload::InferenceStream) ---
inline constexpr const char* kStageLatencySeconds =
    "capgpu_request_stage_latency_seconds";
inline constexpr const char* kRequestLatencySeconds =
    "capgpu_request_latency_seconds";

// --- SLO accounting (core::ServerRig) ---
inline constexpr const char* kSloChecks = "capgpu_slo_checked_batches_total";
inline constexpr const char* kSloMisses = "capgpu_slo_missed_batches_total";

// --- SLO error budget / burn-rate alerting (telemetry::SloBurnMonitor) ---
inline constexpr const char* kSloBurnRate = "capgpu_slo_burn_rate";
inline constexpr const char* kSloBurnAlertActive =
    "capgpu_slo_burn_alert_active";
inline constexpr const char* kSloBurnAlerts = "capgpu_slo_burn_alerts_total";
inline constexpr const char* kSloBudgetConsumed =
    "capgpu_slo_error_budget_consumed_ratio";

// --- protection governors (core::emergency / core::thermal_governor) ---
inline constexpr const char* kEmergencyEngagements =
    "capgpu_emergency_engagements_total";
inline constexpr const char* kEmergencyReleases =
    "capgpu_emergency_releases_total";
inline constexpr const char* kEmergencyThrottledBoards =
    "capgpu_emergency_throttled_boards";
inline constexpr const char* kThermalCeilingMhz = "capgpu_thermal_ceiling_mhz";
inline constexpr const char* kThermalBindingPeriods =
    "capgpu_thermal_binding_periods_total";

// --- rack coordination (rack::RackCoordinator) ---
inline constexpr const char* kRackRebalances = "capgpu_rack_rebalances_total";
inline constexpr const char* kRackServerBudgetWatts =
    "capgpu_rack_server_budget_watts";
inline constexpr const char* kRackServerDemand = "capgpu_rack_server_demand";
inline constexpr const char* kRackRigHealth = "capgpu_rack_rig_health";
inline constexpr const char* kRackHealthTransitions =
    "capgpu_rack_rig_health_transitions_total";
inline constexpr const char* kRackQuarantinedBudgetWatts =
    "capgpu_rack_quarantined_budget_watts";

// --- fleet simulation (fleet::FleetSim hierarchical budget cascade) ---
inline constexpr const char* kFleetEpochs = "capgpu_fleet_epochs_total";
inline constexpr const char* kFleetRigPeriods =
    "capgpu_fleet_rig_periods_total";
inline constexpr const char* kFleetCascades = "capgpu_fleet_cascades_total";
inline constexpr const char* kFleetRowBudgetWatts =
    "capgpu_fleet_row_budget_watts";
inline constexpr const char* kFleetRackBudgetWatts =
    "capgpu_fleet_rack_budget_watts";
inline constexpr const char* kFleetDeliverableWatts =
    "capgpu_fleet_deliverable_watts";
inline constexpr const char* kFleetOversubscribedWatts =
    "capgpu_fleet_oversubscribed_watts";

// --- fail-safe hardening (core::FailSafeGovernor / core::ControlLoop) ---
inline constexpr const char* kLoopHeldPeriods =
    "capgpu_loop_held_periods_total";
inline constexpr const char* kSamplesRejected =
    "capgpu_loop_samples_rejected_total";
inline constexpr const char* kSampleHoldovers =
    "capgpu_loop_sample_holdover_periods_total";
inline constexpr const char* kActuationRetries =
    "capgpu_loop_actuation_retries_total";
inline constexpr const char* kActuationFailures =
    "capgpu_loop_actuation_failures_total";
inline constexpr const char* kReadbackMismatches =
    "capgpu_loop_readback_mismatches_total";
inline constexpr const char* kFailsafeEngagements =
    "capgpu_failsafe_engagements_total";
inline constexpr const char* kFailsafeReleases =
    "capgpu_failsafe_releases_total";
inline constexpr const char* kFailsafeState = "capgpu_failsafe_state";

// --- controller flight recorder (telemetry::FlightRecorder) ---
inline constexpr const char* kCtlFlightRecords =
    "capgpu_ctl_flight_records_total";
inline constexpr const char* kCtlFlightDroppedRecords =
    "capgpu_ctl_flight_dropped_records_total";
inline constexpr const char* kCtlPowerPredictionErrorEwma =
    "capgpu_ctl_power_prediction_error_ewma_watts";
inline constexpr const char* kCtlLatencyPredictionErrorEwma =
    "capgpu_ctl_latency_prediction_error_ewma_seconds";
inline constexpr const char* kCtlPowerPredictionError =
    "capgpu_ctl_power_prediction_error_watts";
inline constexpr const char* kCtlBindingPeriods =
    "capgpu_ctl_binding_periods_total";
inline constexpr const char* kCtlBindingFraction =
    "capgpu_ctl_binding_fraction_ratio";
inline constexpr const char* kCtlQpIterations = "capgpu_ctl_qp_iterations";
inline constexpr const char* kCtlSolverPath =
    "capgpu_ctl_solver_path_total";
inline constexpr const char* kCtlFallbackTransitions =
    "capgpu_ctl_fallback_transitions_total";

// --- energy attribution (telemetry::EnergyLedger) ---
inline constexpr const char* kEnergyJoules = "capgpu_energy_joules_total";
inline constexpr const char* kEnergyIdleJoules =
    "capgpu_energy_idle_joules_total";
inline constexpr const char* kRequestEnergyJoules =
    "capgpu_request_energy_joules";

// --- fault injection (hal::FaultyServerHal) ---
inline constexpr const char* kFaultInjections =
    "capgpu_fault_injections_total";

// --- HAL (hal::AcpiPowerMeter / hal::NvmlSim) ---
inline constexpr const char* kMeterSamples = "capgpu_meter_samples_total";
inline constexpr const char* kMeterPowerWatts = "capgpu_meter_power_watts";
inline constexpr const char* kHalClockCommands =
    "capgpu_hal_clock_commands_total";

}  // namespace capgpu::telemetry::metric
