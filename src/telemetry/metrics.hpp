// Unified metrics registry: labeled counters, gauges and log-linear
// histograms for every subsystem (control loop, pipeline, governors, rack,
// HAL).
//
// Usage mirrors the Prometheus client model: instrumentation sites register
// once (name + help + label set) and keep the returned reference, so the
// hot path is a single add on a pre-resolved slot — no lookup, no
// allocation. Registration of an already-known (name, labels) pair returns
// the same instrument, which lets short-lived components (one rig per
// bench run) accumulate into process-wide series.
//
// Thread-compatible, like the rest of the library: concurrent reads are
// fine, concurrent mutation needs external synchronisation (the DES is
// single-threaded). Parallel scenario execution (runner::ScenarioRunner)
// gives every scenario a private registry bound to its worker thread via
// current()/ScopedCurrent and merges the instances back into the parent
// registry in scenario order, so exports stay deterministic under any
// --jobs value.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace capgpu::telemetry {

/// Label set as (key, value) pairs. Keys must match
/// [a-zA-Z_][a-zA-Z0-9_]*; values are free-form. Order does not matter:
/// the registry canonicalises by key.
using Labels = std::vector<std::pair<std::string, std::string>>;

enum class MetricType { kCounter, kGauge, kHistogram, kSketch };

class QuantileSketch;
struct QuantileSketchSpec;

/// Monotonically increasing count (resets only with the registry).
class Counter {
 public:
  void inc(double delta = 1.0) noexcept { value_ += delta; }
  [[nodiscard]] double value() const noexcept { return value_; }

 private:
  double value_{0.0};
};

/// Point-in-time value.
class Gauge {
 public:
  void set(double v) noexcept { value_ = v; }
  void add(double delta) noexcept { value_ += delta; }
  [[nodiscard]] double value() const noexcept { return value_; }

 private:
  double value_{0.0};
};

/// Bucket layout of a log-linear histogram: `decades` decades starting at
/// `min_bound`, each decade split into `buckets_per_decade` linear buckets
/// (HdrHistogram-style). With the defaults the upper bounds are
/// 0.001, 0.004, 0.007, 0.01, 0.04, 0.07, 0.1, ... — wide dynamic range,
/// bounded relative error, and O(1) bucket selection.
struct HistogramSpec {
  double min_bound{1e-3};
  std::size_t decades{6};
  std::size_t buckets_per_decade{3};
};

/// Fixed-layout histogram with log-spaced decades and linearly subdivided
/// buckets inside each decade. Observations <= min_bound land in the
/// bottom bucket; observations beyond the last bound land in the implicit
/// +Inf bucket.
class LogLinearHistogram {
 public:
  explicit LogLinearHistogram(HistogramSpec spec);

  void observe(double x) noexcept;

  /// Index into counts() for a value (last index = +Inf bucket).
  [[nodiscard]] std::size_t bucket_index(double x) const noexcept;

  /// Inclusive upper bounds, one per finite bucket.
  [[nodiscard]] const std::vector<double>& upper_bounds() const {
    return bounds_;
  }
  /// Per-bucket observation counts; size() == upper_bounds().size() + 1,
  /// the extra slot being the +Inf bucket.
  [[nodiscard]] const std::vector<std::uint64_t>& counts() const {
    return counts_;
  }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] const HistogramSpec& spec() const { return spec_; }

  /// Adds another histogram's observations; both must share one spec.
  void merge_from(const LogLinearHistogram& other);

 private:
  HistogramSpec spec_;
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;
  double sum_{0.0};
  std::uint64_t count_{0};
};

/// One labeled series within a family.
struct Instrument {
  Labels labels;  ///< canonical (key-sorted) order
  MetricType type{MetricType::kCounter};
  Counter counter;
  Gauge gauge;
  std::unique_ptr<LogLinearHistogram> histogram;
  std::unique_ptr<QuantileSketch> sketch;

  Instrument();
  ~Instrument();
};

/// The registry. Families are keyed by metric name; each family owns its
/// labeled series. Instrument references stay valid until clear().
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create. Throws InvalidArgument on a malformed name/label key
  /// or when `name` already exists with a different type.
  Counter& counter(const std::string& name, const std::string& help,
                   const Labels& labels = {});
  Gauge& gauge(const std::string& name, const std::string& help,
               const Labels& labels = {});
  LogLinearHistogram& histogram(const std::string& name,
                                const std::string& help,
                                HistogramSpec spec = {},
                                const Labels& labels = {});
  /// Streaming quantile sketch, exported as a Prometheus summary
  /// (p50/p95/p99/p99.9 + _sum + _count). Spec must match on re-lookup.
  QuantileSketch& sketch(const std::string& name, const std::string& help,
                         const Labels& labels = {});

  /// One metric family (all series sharing a name).
  struct Family {
    std::string name;
    std::string help;
    MetricType type{MetricType::kCounter};
    /// Canonical label serialisation -> series, ordered for deterministic
    /// export.
    std::map<std::string, std::unique_ptr<Instrument>> series;
  };

  /// Families in registration order (exporter input).
  [[nodiscard]] std::vector<const Family*> families() const;
  [[nodiscard]] std::vector<std::string> metric_names() const;
  [[nodiscard]] std::size_t series_count() const;

  /// Drops every family and series; outstanding references dangle, so this
  /// is for test isolation only.
  void clear();

  /// Folds another registry into this one: counters and histograms
  /// accumulate, gauges take the other registry's value (last merge in
  /// call order wins, mirroring sequential execution). Families and series
  /// missing here are created in the other registry's registration order,
  /// so merging scenario registries in scenario order reproduces the
  /// sequential export byte for byte.
  void merge_from(const MetricsRegistry& other);

  /// The process-wide registry.
  static MetricsRegistry& global();

  /// The registry instrumentation on this thread writes to: the one set by
  /// ScopedCurrent (runner worker threads), global() otherwise.
  static MetricsRegistry& current();

  /// Rebinds current() for this thread for the guard's lifetime (RAII).
  class ScopedCurrent {
   public:
    explicit ScopedCurrent(MetricsRegistry& registry);
    ~ScopedCurrent();
    ScopedCurrent(const ScopedCurrent&) = delete;
    ScopedCurrent& operator=(const ScopedCurrent&) = delete;

   private:
    MetricsRegistry* previous_;
  };

 private:
  Instrument& find_or_create(const std::string& name, const std::string& help,
                             MetricType type, const Labels& labels);

  std::map<std::string, std::unique_ptr<Family>> families_;
  std::vector<Family*> order_;
};

}  // namespace capgpu::telemetry
