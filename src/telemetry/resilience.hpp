// Resilience scorecards for chaos campaigns.
//
// A chaos campaign injects a scripted fault (PDU brownout, budget slash,
// meter firmware bug, blackout) into a rack of rigs and asks: how fast did
// the system notice, how much SLO error budget burned while it reacted,
// and did recovery overshoot? One ResilienceEntry answers those questions
// for one campaign stage; the registry accumulates entries across
// scenarios with the same global/current/ScopedCurrent discipline as
// SloRegistry, so parallel sweeps merge deterministically in scenario
// order and --resilience-out is byte-identical for any --jobs count.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace capgpu::telemetry {

/// Scorecard for one fault stage of one campaign run. Times are virtual
/// seconds; -1 marks "never happened" (no detection / no recovery).
struct ResilienceEntry {
  int pid{0};              ///< trace pid of the producing run
  std::string campaign;    ///< campaign name (or bench name)
  std::string variant;     ///< e.g. "hardened" / "baseline"
  std::string stage;       ///< stage name from the campaign timeline
  std::string fault_kind;  ///< brownout / budget_slash / meter_bug / blackout
  std::string domain;      ///< faulted node path, e.g. "rack0/pdu0"
  double fault_start_s{0.0};
  double fault_end_s{0.0};
  /// When the health layer first demoted an affected rig (-1 = never).
  double detected_at_s{-1.0};
  /// When service was restored after the fault cleared (-1 = never).
  double recovered_at_s{-1.0};
  /// Mean time to recover: recovered_at_s - fault_end_s (-1 = never).
  double mttr_s{-1.0};
  /// Error-budget fractions burned across all streams, split at fault end.
  double slo_burn_during{0.0};
  double slo_burn_after{0.0};
  /// Peak rack power above the budget while recovering (W, 0 = none).
  double recovery_overshoot_w{0.0};
  /// Total rig-seconds spent in fail-safe degradation.
  double failsafe_dwell_s{0.0};
  std::uint64_t failsafe_entries{0};    ///< governor engagements observed
  std::uint64_t health_transitions{0};  ///< coordinator health-state changes
};

/// Accumulates ResilienceEntry records across runs; same scoping contract
/// as SloRegistry (global()/current()/ScopedCurrent + ordered merge).
class ResilienceRegistry {
 public:
  ResilienceRegistry() = default;
  ResilienceRegistry(const ResilienceRegistry&) = delete;
  ResilienceRegistry& operator=(const ResilienceRegistry&) = delete;

  void add(ResilienceEntry entry);

  [[nodiscard]] const std::vector<ResilienceEntry>& entries() const {
    return entries_;
  }
  void clear() { entries_.clear(); }

  /// Appends another registry's entries, shifting their pids by
  /// `pid_offset` (the parent tracer's pid captured before its merge).
  void merge_from(const ResilienceRegistry& other, int pid_offset);

  static ResilienceRegistry& global();
  static ResilienceRegistry& current();

  class ScopedCurrent {
   public:
    explicit ScopedCurrent(ResilienceRegistry& registry);
    ~ScopedCurrent();
    ScopedCurrent(const ScopedCurrent&) = delete;
    ScopedCurrent& operator=(const ScopedCurrent&) = delete;

   private:
    ResilienceRegistry* previous_;
  };

 private:
  std::vector<ResilienceEntry> entries_;
};

/// Renders the resilience report JSON ({"campaigns": [...]}) — one object
/// per entry, registry order. Deterministic byte-for-byte.
void write_resilience_report(const ResilienceRegistry& registry,
                             std::ostream& out);
std::string to_resilience_report(const ResilienceRegistry& registry);
void save_resilience_report(const ResilienceRegistry& registry,
                            const std::string& path);

}  // namespace capgpu::telemetry
