// Mergeable streaming quantile sketch with a bounded relative error
// (DDSketch-style: Masson, Rim & Lee, VLDB'19).
//
// Values map to geometrically spaced buckets: bucket i covers
// (gamma^(i-1), gamma^i] with gamma = (1+alpha)/(1-alpha), so any quantile
// estimate is within relative error alpha of the true sample quantile, at
// O(log(max/min)) memory and O(1) per observation — no samples stored.
//
// Sketches merge by adding bucket counts, which is associative and
// commutative over integer counts; merging per-scenario sketches in
// scenario order therefore reproduces the sequential run's state exactly
// (runner::ScenarioRunner determinism contract). Benches use sketches for
// per-stage request-latency quantiles (p50/p95/p99/p99.9) where a
// log-linear histogram's fixed decade layout would be too coarse at the
// tail.
#pragma once

#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace capgpu::telemetry {

/// Sketch accuracy configuration.
struct QuantileSketchSpec {
  /// Relative error bound alpha: quantile(q) is within a factor
  /// [1-alpha, 1+alpha] of the true sample quantile.
  double relative_error{0.01};
  /// Observations below this magnitude collapse into the zero bucket and
  /// report as 0.0 (latencies below a microsecond are noise here).
  double min_trackable{1e-6};
};

/// One bucket delta of a recorded span (consecutive equal keys merged).
struct SpanUpdate {
  int key;
  std::uint32_t count;
};

/// Replayable summary of one observed span: the quantized values (the
/// span's fingerprint) plus the count/sum/bucket deltas the span produced.
/// Produced by QuantileSketch::observe_span_record; a caller that sees the
/// same quantized values again can re-apply the deltas in O(distinct
/// buckets) via apply_record instead of re-observing every element — the
/// workload pipeline uses this to keep steady-state attribution off the
/// hot path. Keys are absolute, so sketch bucket growth between record and
/// replay is harmless.
struct SpanRecord {
  std::vector<std::uint64_t> quant;
  std::vector<SpanUpdate> updates;
  std::uint64_t n{0};
  std::uint64_t zeros{0};
  /// Sum of the quantized clamped values (what observe_span returns).
  double quant_sum{0.0};
  /// Min/max over the span's non-zero quantized values (+/-inf when none).
  double qmin{0.0};
  double qmax{0.0};
};

/// The sketch. Tracks non-negative values (negatives clamp into the zero
/// bucket). Thread-compatible like the rest of the telemetry layer.
class QuantileSketch {
 public:
  explicit QuantileSketch(QuantileSketchSpec spec = {});

  void observe(double x) noexcept { observe_many(x, 1); }
  /// Bulk observation: `n` samples of the same value, one bucket update.
  /// The pipeline uses this for per-batch stages where every image in the
  /// batch shares one latency (GPU execution).
  ///
  /// Inline fast path: deterministic simulations observe short cycles of
  /// repeated durations, so a small direct-mapped (value -> bucket key)
  /// memo skips the log() in bucket_key on almost every call — the
  /// selfperf timeline-overhead guard holds this path under 5% of the
  /// pipeline's event rate.
  void observe_many(double x, std::uint64_t n) noexcept {
    if (n == 0 || std::isnan(x)) return;
    if (!(x > 0.0)) x = 0.0;
    count_ += n;
    sum_ += x * static_cast<double>(n);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
    if (x < spec_.min_trackable) {
      zero_count_ += n;
      return;
    }
    // Quantize to 14 mantissa bits (2^-14 ~ 6e-5 relative, well inside any
    // sensible alpha) before the lookup: durations come from subtracting
    // large absolute sim times, so "the same" duration jiggles at the ULP
    // level and would never match an exact-value memo.
    const std::uint64_t q = std::bit_cast<std::uint64_t>(x) & kQuantMask;
    const std::size_t slot =
        static_cast<std::size_t>(q >> kQuantBits) & (kMemoSlots - 1);
    if (memo_bits_[slot] == q) {
      // A memoized key was inserted before; growth only ever extends the
      // dense bucket range, so key - offset_ stays in bounds.
      buckets_[static_cast<std::size_t>(memo_key_[slot] - offset_)] += n;
      return;
    }
    insert_slow(q, n, slot);
  }

  /// Bulk observation of `n` contiguous values. Values must be finite;
  /// negatives clamp to the zero bucket. Returns the sum of the quantized
  /// clamped values (within 2^-14 relative of the exact sum, far inside the
  /// sketch's error bound) so callers keeping a running total do not
  /// re-traverse the span.
  double observe_span(const double* v, std::size_t n) noexcept {
    return observe_span_record(v, n, span_scratch_);
  }

  /// observe_span that additionally fills `rec` with the span's fingerprint
  /// and deltas. A caller whose next span's quantized values (compare via
  /// quantized_bits) equal rec.quant can skip re-observation and call
  /// apply_record(rec, 1) instead.
  double observe_span_record(const double* v, std::size_t n,
                             SpanRecord& rec) noexcept;

  /// Re-applies a span record `k` more times (k * rec.n observations), as
  /// if the recorded span had been observed k additional times. Valid on
  /// any sketch with the same spec as the recording one.
  void apply_record(const SpanRecord& rec, std::uint64_t k) noexcept;

  /// Quantized bit pattern of a clamped span value — the unit of span
  /// fingerprint comparison against SpanRecord::quant.
  [[nodiscard]] static std::uint64_t quantized_bits(double x) noexcept {
    const double c = x > 0.0 ? x : 0.0;
    return std::bit_cast<std::uint64_t>(c) & kQuantMask;
  }

  /// Estimate of the q-quantile (q in [0, 1]), within the configured
  /// relative error of the true sample quantile. Returns 0 when empty.
  [[nodiscard]] double quantile(double q) const;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  /// Smallest / largest observed value; 0 when empty.
  [[nodiscard]] double min() const noexcept { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return count_ ? max_ : 0.0; }
  [[nodiscard]] const QuantileSketchSpec& spec() const { return spec_; }
  /// Buckets currently allocated (memory diagnostic).
  [[nodiscard]] std::size_t bucket_count() const { return buckets_.size(); }

  /// Adds another sketch's observations; both must share one spec.
  void merge_from(const QuantileSketch& other);

 private:
  static constexpr std::size_t kMemoSlots = 16;
  /// Mantissa bits dropped by the memo quantization (keeps the top 14).
  static constexpr unsigned kQuantBits = 38;
  static constexpr std::uint64_t kQuantMask =
      ~((std::uint64_t{1} << kQuantBits) - 1);

  [[nodiscard]] int bucket_key(double x) const noexcept;
  [[nodiscard]] double bucket_value(int key) const noexcept;
  void grow_to(int key) noexcept;
  /// Memo miss: computes the key for the quantized value, inserts, and
  /// refreshes `slot`.
  void insert_slow(std::uint64_t qbits, std::uint64_t n,
                   std::size_t slot) noexcept;

  QuantileSketchSpec spec_;
  double gamma_{0.0};
  double inv_log_gamma_{0.0};
  /// Memoized (quantized value bits, bucket key) pairs; the sentinel has
  /// low bits set, which a masked value never does.
  std::uint64_t memo_bits_[kMemoSlots];
  int memo_key_[kMemoSlots]{};
  /// Dense bucket counts; buckets_[i] holds key = offset_ + i.
  std::vector<std::uint64_t> buckets_;
  int offset_{0};
  /// Reused record for plain observe_span calls.
  SpanRecord span_scratch_;
  std::uint64_t zero_count_{0};
  std::uint64_t count_{0};
  double sum_{0.0};
  /// +/-inf identity elements keep every update path a plain compare; the
  /// accessors report 0 while the sketch is empty.
  double min_{std::numeric_limits<double>::infinity()};
  double max_{-std::numeric_limits<double>::infinity()};
};

/// The quantiles every summary export reports, highest-resolution tail
/// last. Shared by the Prometheus exporter and the SLO report writer.
inline constexpr double kSummaryQuantiles[] = {0.5, 0.95, 0.99, 0.999};
inline constexpr std::size_t kSummaryQuantileCount = 4;

}  // namespace capgpu::telemetry
