#include "telemetry/sketch.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace capgpu::telemetry {

QuantileSketch::QuantileSketch(QuantileSketchSpec spec) : spec_(spec) {
  CAPGPU_REQUIRE(spec.relative_error > 0.0 && spec.relative_error < 1.0,
                 "sketch relative error must be in (0, 1)");
  CAPGPU_REQUIRE(spec.min_trackable > 0.0,
                 "sketch min_trackable must be positive");
  gamma_ = (1.0 + spec.relative_error) / (1.0 - spec.relative_error);
  inv_log_gamma_ = 1.0 / std::log(gamma_);
  for (std::size_t i = 0; i < kMemoSlots; ++i) {
    memo_bits_[i] = ~std::uint64_t{0};
  }
}

int QuantileSketch::bucket_key(double x) const noexcept {
  // Bucket i covers (gamma^(i-1), gamma^i]: ceil of the log-gamma index.
  return static_cast<int>(std::ceil(std::log(x) * inv_log_gamma_ - 1e-9));
}

double QuantileSketch::bucket_value(int key) const noexcept {
  // Midpoint estimate 2*gamma^i/(gamma+1): relative error <= alpha for any
  // value inside the bucket.
  return 2.0 * std::pow(gamma_, static_cast<double>(key)) / (gamma_ + 1.0);
}

void QuantileSketch::grow_to(int key) noexcept {
  if (buckets_.empty()) {
    buckets_.assign(1, 0);
    offset_ = key;
    return;
  }
  if (key < offset_) {
    buckets_.insert(buckets_.begin(), static_cast<std::size_t>(offset_ - key),
                    0);
    offset_ = key;
  } else if (key >= offset_ + static_cast<int>(buckets_.size())) {
    buckets_.resize(static_cast<std::size_t>(key - offset_) + 1, 0);
  }
}

// Kept out of line (cold): inlining the grow/log path into observe_span's
// loop would spill the hot locals around every call.
__attribute__((noinline)) void QuantileSketch::insert_slow(
    std::uint64_t qbits, std::uint64_t n, std::size_t slot) noexcept {
  // Keyed on the quantized value so every double sharing `qbits` lands in
  // one bucket: the 2^-14 quantization error is far inside any sensible
  // relative_error and keeps the sketch deterministic.
  const int key = bucket_key(std::bit_cast<double>(qbits));
  grow_to(key);
  buckets_[static_cast<std::size_t>(key - offset_)] += n;
  memo_bits_[slot] = qbits;
  memo_key_[slot] = key;
}

double QuantileSketch::observe_span_record(const double* v, std::size_t n,
                                           SpanRecord& rec) noexcept {
  rec.quant.resize(n);
  rec.updates.clear();
  rec.n = n;
  rec.zeros = 0;
  rec.quant_sum = 0.0;
  rec.qmin = std::numeric_limits<double>::infinity();
  rec.qmax = -std::numeric_limits<double>::infinity();
  if (n == 0) return 0.0;
  // The record (and therefore everything the sketch accumulates on the
  // span path) is built from quantized values, so any span with the same
  // quantized fingerprint produces the byte-identical contribution whether
  // observed here or replayed via apply_record.
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double x = v[i] > 0.0 ? v[i] : 0.0;
    const std::uint64_t q = std::bit_cast<std::uint64_t>(x) & kQuantMask;
    rec.quant[i] = q;
    sum += std::bit_cast<double>(q);
  }
  rec.quant_sum = sum;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t q = rec.quant[i];
    const double qx = std::bit_cast<double>(q);
    if (qx < spec_.min_trackable) {
      ++rec.zeros;
      continue;
    }
    const std::size_t slot =
        static_cast<std::size_t>(q >> kQuantBits) & (kMemoSlots - 1);
    int key;
    if (memo_bits_[slot] == q) {
      key = memo_key_[slot];
    } else {
      // Grow eagerly: once a key sits in the value memo, observe_many's
      // fast path indexes buckets_ without a bounds check.
      key = bucket_key(qx);
      grow_to(key);
      memo_bits_[slot] = q;
      memo_key_[slot] = key;
    }
    // min/max from the quantized value: under-reads the exact one by at
    // most 2^-14 relative, far inside the sketch's error bound.
    if (qx < rec.qmin) rec.qmin = qx;
    if (qx > rec.qmax) rec.qmax = qx;
    if (!rec.updates.empty() && rec.updates.back().key == key) {
      ++rec.updates.back().count;
    } else {
      rec.updates.push_back({key, 1});
    }
  }
  apply_record(rec, 1);
  return sum;
}

void QuantileSketch::apply_record(const SpanRecord& rec,
                                  std::uint64_t k) noexcept {
  if (k == 0 || rec.n == 0) return;
  count_ += k * rec.n;
  sum_ += static_cast<double>(k) * rec.quant_sum;
  zero_count_ += k * rec.zeros;
  for (const SpanUpdate& u : rec.updates) {
    grow_to(u.key);  // no-op unless the record came from another sketch
    buckets_[static_cast<std::size_t>(u.key - offset_)] += k * u.count;
  }
  if (rec.qmin < min_) min_ = rec.qmin;
  if (rec.qmax > max_) max_ = rec.qmax;
  if (rec.zeros != 0) {
    if (min_ > 0.0) min_ = 0.0;
    if (max_ < 0.0) max_ = 0.0;  // every observation so far was zero
  }
}

double QuantileSketch::quantile(double q) const {
  CAPGPU_REQUIRE(q >= 0.0 && q <= 1.0, "quantile must be in [0, 1]");
  if (count_ == 0) return 0.0;
  // Rank of the q-quantile in the sorted sample (0-based, nearest-rank).
  const auto rank = static_cast<std::uint64_t>(
      q * static_cast<double>(count_ - 1) + 0.5);
  if (rank < zero_count_) return 0.0;
  std::uint64_t cumulative = zero_count_;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    cumulative += buckets_[i];
    if (cumulative > rank) {
      return bucket_value(offset_ + static_cast<int>(i));
    }
  }
  return max();  // float fall-through safety: the top bucket
}

void QuantileSketch::merge_from(const QuantileSketch& other) {
  CAPGPU_REQUIRE(spec_.relative_error == other.spec_.relative_error &&
                     spec_.min_trackable == other.spec_.min_trackable,
                 "cannot merge sketches with different specs");
  if (other.count_ == 0) return;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
  sum_ += other.sum_;
  zero_count_ += other.zero_count_;
  if (!other.buckets_.empty()) {
    // One growth to the union range up front instead of a grow_to (and a
    // possible reallocation + shift) per occupied bucket.
    grow_to(other.offset_);
    grow_to(other.offset_ + static_cast<int>(other.buckets_.size()) - 1);
  }
  for (std::size_t i = 0; i < other.buckets_.size(); ++i) {
    if (other.buckets_[i] == 0) continue;
    const int key = other.offset_ + static_cast<int>(i);
    buckets_[static_cast<std::size_t>(key - offset_)] += other.buckets_[i];
  }
}

}  // namespace capgpu::telemetry
