#include "telemetry/resilience.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace capgpu::telemetry {

namespace {
thread_local ResilienceRegistry* t_current_resilience_registry = nullptr;

// Same shortest-stable rendering as the SLO report, so bytes stay
// deterministic across platforms.
std::string render_number(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.10g", std::isfinite(v) ? v : 0.0);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

ResilienceRegistry& ResilienceRegistry::global() {
  static ResilienceRegistry registry;
  return registry;
}

ResilienceRegistry& ResilienceRegistry::current() {
  return t_current_resilience_registry ? *t_current_resilience_registry
                                       : global();
}

ResilienceRegistry::ScopedCurrent::ScopedCurrent(ResilienceRegistry& registry)
    : previous_(t_current_resilience_registry) {
  t_current_resilience_registry = &registry;
}

ResilienceRegistry::ScopedCurrent::~ScopedCurrent() {
  t_current_resilience_registry = previous_;
}

void ResilienceRegistry::add(ResilienceEntry entry) {
  entries_.push_back(std::move(entry));
}

void ResilienceRegistry::merge_from(const ResilienceRegistry& other,
                                    int pid_offset) {
  entries_.reserve(entries_.size() + other.entries_.size());
  for (ResilienceEntry entry : other.entries_) {
    entry.pid += pid_offset;
    entries_.push_back(std::move(entry));
  }
}

void write_resilience_report(const ResilienceRegistry& registry,
                             std::ostream& out) {
  out << "{\n  \"campaigns\": [";
  bool first = true;
  for (const ResilienceEntry& e : registry.entries()) {
    out << (first ? "\n    " : ",\n    ");
    first = false;
    out << "{\"pid\":" << e.pid << ",\"campaign\":\""
        << json_escape(e.campaign) << "\",\"variant\":\""
        << json_escape(e.variant) << "\",\"stage\":\"" << json_escape(e.stage)
        << "\",\"fault_kind\":\"" << json_escape(e.fault_kind)
        << "\",\"domain\":\"" << json_escape(e.domain)
        << "\",\"fault_start_s\":" << render_number(e.fault_start_s)
        << ",\"fault_end_s\":" << render_number(e.fault_end_s)
        << ",\"detected_at_s\":" << render_number(e.detected_at_s)
        << ",\"recovered_at_s\":" << render_number(e.recovered_at_s)
        << ",\"mttr_s\":" << render_number(e.mttr_s)
        << ",\"slo_burn_during\":" << render_number(e.slo_burn_during)
        << ",\"slo_burn_after\":" << render_number(e.slo_burn_after)
        << ",\"recovery_overshoot_w\":" << render_number(e.recovery_overshoot_w)
        << ",\"failsafe_dwell_s\":" << render_number(e.failsafe_dwell_s)
        << ",\"failsafe_entries\":" << e.failsafe_entries
        << ",\"health_transitions\":" << e.health_transitions << '}';
  }
  out << "\n  ]\n}\n";
}

std::string to_resilience_report(const ResilienceRegistry& registry) {
  std::ostringstream out;
  write_resilience_report(registry, out);
  return out.str();
}

void save_resilience_report(const ResilienceRegistry& registry,
                            const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw Error("cannot write resilience report file: " + path);
  write_resilience_report(registry, out);
}

}  // namespace capgpu::telemetry
