// Named time series used to record control traces (power, frequencies,
// latency) for benches and EXPERIMENTS.md figures.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "telemetry/stats.hpp"

namespace capgpu::telemetry {

/// A (time, value) series with a name and a unit label.
class TimeSeries {
 public:
  TimeSeries() = default;
  TimeSeries(std::string name, std::string unit)
      : name_(std::move(name)), unit_(std::move(unit)) {}

  void add(double time, double value);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::string& unit() const { return unit_; }
  [[nodiscard]] std::size_t size() const { return times_.size(); }
  [[nodiscard]] bool empty() const { return times_.empty(); }
  [[nodiscard]] double time_at(std::size_t i) const;
  [[nodiscard]] double value_at(std::size_t i) const;
  [[nodiscard]] const std::vector<double>& times() const { return times_; }
  [[nodiscard]] const std::vector<double>& values() const { return values_; }

  /// Stats over values with index >= first (steady-state analysis: the paper
  /// keeps the last 80 of 100 control periods).
  [[nodiscard]] RunningStats stats_from(std::size_t first) const;
  [[nodiscard]] RunningStats stats() const { return stats_from(0); }

  /// Number of samples strictly above `limit` from index `first` on
  /// (power-cap violation count).
  [[nodiscard]] std::size_t count_above(double limit, std::size_t first = 0) const;

  /// First index from which all subsequent values stay within +/- band of
  /// `target`; returns size() when never settled. This is the settling time
  /// in samples.
  [[nodiscard]] std::size_t settling_index(double target, double band) const;

 private:
  std::string name_;
  std::string unit_;
  std::vector<double> times_;
  std::vector<double> values_;
};

}  // namespace capgpu::telemetry
