// Control-loop tracing against simulated time.
//
// Records span ('X'), instant ('i') and counter ('C') events with
// timestamps taken from a registered clock (the sim::Engine of the active
// rig — see telemetry/runtime.hpp) and exports them as Chrome trace-event
// JSON (loadable in Perfetto / chrome://tracing) or as a JSONL structured
// event stream, which replaces ad-hoc log forensics on the control path.
//
// Recording is off by default: every emit call is a cheap early-return
// until a bench enables it via --trace-out. Tracks model the subsystems
// (control loop, per-GPU pipelines, governors, rack) as named threads;
// each ServerRig opens a new "process" so sequential runs inside one bench
// binary do not overlap on the timeline.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <unordered_map>
#include <vector>

namespace capgpu::telemetry {

/// One key/value pair attached to an event. Numbers are kept unquoted in
/// the JSON output so Perfetto can plot counter tracks.
struct TraceArg {
  TraceArg(std::string k, double v);
  TraceArg(std::string k, std::string v);
  TraceArg(std::string k, const char* v) : TraceArg(std::move(k), std::string(v)) {}

  std::string key;
  std::string value;  ///< pre-rendered
  bool is_number{false};
};

/// One recorded event (Chrome trace-event fields).
struct TraceEvent {
  char phase{'i'};      ///< 'X' span, 'i' instant, 'C' counter, 'M' metadata
  std::string name;
  std::string category;
  int pid{0};
  int tid{0};
  double ts_us{0.0};
  double dur_us{0.0};   ///< 'X' only
  std::vector<TraceArg> args;
};

/// The recorder. Thread-compatible (the DES is single-threaded).
class Tracer {
 public:
  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Process-wide tracer.
  static Tracer& global();

  /// The tracer instrumentation on this thread writes to: the one set by
  /// ScopedCurrent (runner worker threads), global() otherwise.
  static Tracer& current();

  /// Rebinds current() for this thread for the guard's lifetime (RAII).
  class ScopedCurrent {
   public:
    explicit ScopedCurrent(Tracer& tracer);
    ~ScopedCurrent();
    ScopedCurrent(const ScopedCurrent&) = delete;
    ScopedCurrent& operator=(const ScopedCurrent&) = delete;

   private:
    Tracer* previous_;
  };

  /// Appends another tracer's events, shifting their pids past this
  /// tracer's so runs stay distinct on the timeline. Merging scenario
  /// tracers in scenario order reproduces the sequential export byte for
  /// byte. The source is drained.
  void merge_from(Tracer&& other);

  void set_enabled(bool enabled) { enabled_ = enabled; }
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  /// Hard cap on recorded events; further emits are counted as dropped.
  void set_max_events(std::size_t max) { max_events_ = max; }
  [[nodiscard]] std::size_t dropped() const { return dropped_; }

  /// Virtual-time source in seconds (null clears). Without a clock all
  /// timestamps are 0.
  void set_clock(std::function<double()> now_seconds);
  [[nodiscard]] double now_seconds() const;

  /// Opens a new trace process (one per rig/run): bumps the pid, resets
  /// track numbering and emits process_name metadata. Returns the pid.
  int begin_run(const std::string& name);

  /// Pid of the most recent begin_run (0 before the first). merge_from
  /// shifts incoming pids past this value, so it doubles as the offset
  /// sibling registries (telemetry::SloRegistry) need to stay aligned.
  [[nodiscard]] int pid() const noexcept { return pid_; }

  /// Registers a named track (thread) under the current pid.
  int register_track(const std::string& name);

  /// Complete span over [t0_s, t1_s] (virtual seconds).
  void complete(int tid, const std::string& name, const std::string& category,
                double t0_s, double t1_s, std::vector<TraceArg> args = {});
  /// Instant event at the current clock.
  void instant(int tid, const std::string& name, const std::string& category,
               std::vector<TraceArg> args = {});
  /// Counter sample at the current clock (args are the plotted values).
  void counter(int tid, const std::string& name, const std::string& category,
               std::vector<TraceArg> args);

  /// Open-span API for work that spans multiple DES events (e.g. a GPU
  /// batch): begin stamps the clock, end emits the 'X' event. Returns 0
  /// while disabled; end_span(0) is a no-op.
  std::uint64_t begin_span(int tid, const std::string& name,
                           const std::string& category);
  void end_span(std::uint64_t span, std::vector<TraceArg> args = {});

  [[nodiscard]] const std::vector<TraceEvent>& events() const {
    return events_;
  }
  [[nodiscard]] std::size_t size() const { return events_.size(); }
  void clear();

  /// Chrome trace-event JSON ({"traceEvents": [...]}); open in Perfetto.
  void write_chrome_json(std::ostream& out) const;
  /// One JSON object per line (structured event stream).
  void write_jsonl(std::ostream& out) const;
  void save_chrome_json(const std::string& path) const;
  void save_jsonl(const std::string& path) const;

 private:
  struct OpenSpan {
    int tid{0};
    std::string name;
    std::string category;
    double t0_s{0.0};
  };

  void push(TraceEvent event);

  bool enabled_{false};
  std::function<double()> clock_;
  std::size_t max_events_{2'000'000};
  std::size_t dropped_{0};
  int pid_{0};
  int next_tid_{1};
  std::uint64_t next_span_{1};
  std::vector<TraceEvent> events_;
  std::unordered_map<std::uint64_t, OpenSpan> open_spans_;
};

}  // namespace capgpu::telemetry
