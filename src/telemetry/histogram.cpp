#include "telemetry/histogram.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"

namespace capgpu::telemetry {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  CAPGPU_REQUIRE(hi > lo, "Histogram: hi must exceed lo");
  CAPGPU_REQUIRE(bins > 0, "Histogram: needs at least one bin");
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  const double w = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto idx = static_cast<std::size_t>((x - lo_) / w);
  idx = std::min(idx, counts_.size() - 1);
  ++counts_[idx];
}

void Histogram::reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  underflow_ = overflow_ = total_ = 0;
}

std::size_t Histogram::bin_count(std::size_t i) const {
  CAPGPU_ASSERT(i < counts_.size());
  return counts_[i];
}

double Histogram::bin_center(std::size_t i) const {
  CAPGPU_ASSERT(i < counts_.size());
  const double w = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + (static_cast<double>(i) + 0.5) * w;
}

std::string Histogram::to_ascii(std::size_t width) const {
  std::size_t peak = 1;
  for (std::size_t c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar = counts_[i] * width / peak;
    os << bin_center(i) << "\t" << counts_[i] << "\t"
       << std::string(bar, '#') << '\n';
  }
  return os.str();
}

}  // namespace capgpu::telemetry
