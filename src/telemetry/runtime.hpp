// Wiring between a simulation's virtual clock and the process-wide
// observability singletons (Tracer timestamps, Log sim-time prefixes).
//
// A ServerRig attaches its engine on construction and detaches on
// destruction. Attachment is owner-tracked so a stale rig being destroyed
// after a newer one attached does not tear down the newer clock.
#pragma once

#include <functional>

namespace capgpu::telemetry {

/// Registers `now_seconds` as the virtual-time source for the global
/// Tracer and the Log prefix. `owner` identifies the caller (usually
/// `this`) for detach.
void attach_time_source(const void* owner,
                        std::function<double()> now_seconds);

/// Clears the time source if `owner` is the current owner; no-op
/// otherwise.
void detach_time_source(const void* owner);

}  // namespace capgpu::telemetry
