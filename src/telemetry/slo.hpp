// SLO error-budget accounting with multi-window burn-rate alerting.
//
// Follows the SRE playbook: an SLO objective (fraction of batches that must
// meet their latency target) defines an error budget of 1-objective; the
// burn rate is how many times faster than budget-neutral the pipeline is
// consuming it (miss_rate / (1 - objective)). An alert fires only when BOTH
// a fast window (default 1 virtual minute — catches cliffs quickly) and a
// slow window (default 10 virtual minutes — suppresses blips) burn at or
// above the threshold, and clears with hysteresis once both windows drop
// below threshold * clear_fraction. All windows are virtual time: the DES
// clock, not wall time, so results are reproducible and --jobs independent.
//
// core::ServerRig feeds one SloBurnMonitor per stream from its per-period
// SLO miss counts and surfaces transitions as metrics
// (capgpu_slo_burn_rate / _alert_active / _alerts_total /
// _error_budget_consumed_ratio), trace instants (slo_burn_alert /
// slo_burn_clear) and SloRegistry entries, which --slo-report-out renders
// as a JSON artifact for tools/capgpu_report.
#pragma once

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <string>
#include <vector>

namespace capgpu::telemetry {

class MetricsRegistry;

/// Burn-rate alerting policy. The defaults implement the classic
/// "fast + slow window must agree" page condition on a 99% objective.
struct SloBurnConfig {
  /// Master switch: a disabled monitor records nothing and never alerts.
  bool enabled{true};
  /// Target fraction of checked batches that must meet the SLO (in (0,1)).
  /// The error budget is 1 - objective.
  double objective{0.99};
  /// Fast alerting window, virtual seconds.
  double fast_window_s{60.0};
  /// Slow alerting window, virtual seconds. Also the retention horizon.
  double slow_window_s{600.0};
  /// Alert when both windows burn at >= this multiple of budget-neutral.
  double burn_threshold{10.0};
  /// Hysteresis: clear only once both windows drop below
  /// burn_threshold * clear_fraction.
  double clear_fraction{0.5};
};

/// Tracks one SLO's budget burn across the two windows.
class SloBurnMonitor {
 public:
  enum class Transition { kNone, kFired, kCleared };

  explicit SloBurnMonitor(SloBurnConfig config = {});

  /// Records one sampling period's SLO accounting (`checked` batches,
  /// `missed` of them over target) at virtual time `now` and evaluates the
  /// alert condition. No-op returning kNone when disabled.
  Transition record(double now, std::uint64_t checked, std::uint64_t missed);

  /// Burn rates over the respective windows ending at the last sample.
  [[nodiscard]] double fast_burn() const { return fast_burn_; }
  [[nodiscard]] double slow_burn() const { return slow_burn_; }
  [[nodiscard]] bool alerting() const { return alerting_; }
  [[nodiscard]] std::uint64_t alerts_fired() const { return alerts_fired_; }

  [[nodiscard]] std::uint64_t checked_total() const { return checked_total_; }
  [[nodiscard]] std::uint64_t missed_total() const { return missed_total_; }

  /// Fraction of the lifetime error budget consumed:
  /// miss_rate_lifetime / (1 - objective). 1.0 means the budget is gone.
  [[nodiscard]] double budget_consumed() const;

  [[nodiscard]] const SloBurnConfig& config() const { return config_; }

 private:
  [[nodiscard]] double window_burn(double now, double window_s) const;

  struct Sample {
    double time;
    std::uint64_t checked;
    std::uint64_t missed;
  };

  SloBurnConfig config_;
  std::deque<Sample> samples_;
  double fast_burn_{0.0};
  double slow_burn_{0.0};
  bool alerting_{false};
  std::uint64_t alerts_fired_{0};
  std::uint64_t checked_total_{0};
  std::uint64_t missed_total_{0};
};

/// One alert episode on the virtual timeline (cleared == false means it was
/// still firing when the run ended).
struct SloAlertEpisode {
  double fired_at_s{0.0};
  double cleared_at_s{0.0};
  bool cleared{false};
};

/// Final burn accounting for one (policy, model) SLO, tagged with the trace
/// pid of the rig that produced it so report consumers can join against the
/// event stream.
struct SloEntry {
  int pid{0};
  std::string policy;
  std::string model;
  double objective{0.0};
  double slo_seconds{0.0};  ///< last active SLO target
  std::uint64_t checked{0};
  std::uint64_t missed{0};
  double budget_consumed{0.0};
  double final_fast_burn{0.0};
  double final_slow_burn{0.0};
  std::uint64_t alerts{0};
  std::vector<SloAlertEpisode> episodes;
};

/// Accumulates SloEntry records across runs, with the same
/// global/current/ScopedCurrent discipline as MetricsRegistry so parallel
/// scenarios stay isolated and merge deterministically in scenario order.
class SloRegistry {
 public:
  SloRegistry() = default;
  SloRegistry(const SloRegistry&) = delete;
  SloRegistry& operator=(const SloRegistry&) = delete;

  /// Appends an entry (call once per monitor at end of run).
  void add(SloEntry entry);

  [[nodiscard]] const std::vector<SloEntry>& entries() const {
    return entries_;
  }
  void clear() { entries_.clear(); }

  /// Appends another registry's entries, shifting their pids by
  /// `pid_offset` — pass the parent tracer's pid captured *before*
  /// Tracer::merge_from so entry pids keep matching the merged event
  /// stream.
  void merge_from(const SloRegistry& other, int pid_offset);

  static SloRegistry& global();
  static SloRegistry& current();

  class ScopedCurrent {
   public:
    explicit ScopedCurrent(SloRegistry& registry);
    ~ScopedCurrent();
    ScopedCurrent(const ScopedCurrent&) = delete;
    ScopedCurrent& operator=(const ScopedCurrent&) = delete;

   private:
    SloRegistry* previous_;
  };

 private:
  std::vector<SloEntry> entries_;
};

/// Renders the SLO report JSON: every registry entry (burn accounting +
/// alert episodes) plus the per-model/per-stage latency quantiles from the
/// metrics registry's sketches. Deterministic byte-for-byte given the same
/// registries.
void write_slo_report(const SloRegistry& slo, const MetricsRegistry& metrics,
                      std::ostream& out);
std::string to_slo_report(const SloRegistry& slo,
                          const MetricsRegistry& metrics);
void save_slo_report(const SloRegistry& slo, const MetricsRegistry& metrics,
                     const std::string& path);

}  // namespace capgpu::telemetry
