// Control-loop flight recorder: one structured FlightRecord per control
// period, streamed to --flight-out JSONL.
//
// Each record is self-contained: the validated samples the loop saw, the
// commands it chose, the MPC's full replay state (model gains, weights,
// effective bounds, QP diagnostics) and — filled one period later — the
// realized outcome and prediction-error residuals. Self-containment is the
// point: tools/capgpu_ctl_replay re-executes the recorded controller on any
// single record without walking the log, and asserts the caps come out
// bit-identical (doubles serialize at %.17g, which round-trips exactly).
//
// The recorder is a bounded ring (oldest records drop first, counted), off
// by default, and follows the library's telemetry scoping pattern:
// global()/current()/ScopedCurrent plus merge_from(other, pid_offset) so
// parallel scenario sweeps produce byte-identical logs for any --jobs.
// While finalizing records it derives the controller-health metrics
// (prediction-error EWMAs, binding-constraint fractions, QP iteration
// histogram, fail-safe transitions) and emits anomaly trace instants.
#pragma once

#include <cstddef>
#include <deque>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace capgpu::json {
class Value;
}

namespace capgpu::telemetry {

class Counter;
class Gauge;
class LogLinearHistogram;
class MetricsRegistry;

/// MPC replay state + QP diagnostics of one acted period. `present` is
/// false for held periods and for policies that do not describe themselves
/// (baselines): such records document the loop but cannot be re-solved.
struct FlightMpcState {
  bool present{false};
  /// Power measurement fed to the MPC (measured + PRBS excitation when
  /// adaptive identification is on) — the solver's actual input.
  double fed_power_w{0.0};
  // Identified difference model dp = A * dF + C at this period (post-RLS).
  std::vector<double> gains_w_per_mhz;
  double offset_w{0.0};
  /// Control-penalty weights as handed to the MPC (post EMA smoothing,
  /// priority division and quantization).
  std::vector<double> weights;
  std::vector<double> f_min_mhz;  ///< effective floors (SLO bounds applied)
  std::vector<double> f_max_mhz;  ///< effective ceilings (thermal applied)
  std::vector<double> f_lo_mhz;   ///< device spec range, lower
  std::vector<double> f_hi_mhz;   ///< device spec range, upper
  std::vector<int> device_kinds;  ///< 0 = CPU, 1 = GPU
  // MpcConfig of the solving controller.
  std::size_t prediction_horizon{0};
  std::size_t control_horizon{0};
  double tracking_weight{0.0};
  double reference_decay{0.0};
  double violation_decay{0.0};
  double regularization{0.0};
  // Decision and predicted trajectory.
  std::vector<double> deltas_mhz;          ///< applied first moves d(k)
  std::vector<double> planned_deltas_mhz;  ///< full stacked solution (n*M)
  double predicted_power_w{0.0};           ///< p(k+1|k), clamped first move
  std::vector<double> predicted_power_horizon_w;  ///< p(k+i|k), i=1..P
  std::vector<double> predicted_latency_s;        ///< per device, 0 = no model
  // QP diagnostics.
  std::size_t qp_iterations{0};
  bool qp_converged{false};
  bool cache_hit{false};
  bool warm_start_hit{false};
  /// QP solver's analytic fast path certified (bitwise equal to the
  /// active-set solve it replaced).
  bool fast_path_hit{false};
  /// Structured banded/Woodbury tier certified (equal to the active-set
  /// optimum to solver tolerance; replay re-enables the tier to match).
  bool structured_hit{false};
  double qp_objective{0.0};
  std::size_t active_set_size{0};
  std::vector<int> floor_binding;    ///< per device, first-move floor active
  std::vector<int> ceiling_binding;  ///< per device, first-move ceiling active
};

/// One control period, as the loop experienced it.
struct FlightRecord {
  int pid{0};            ///< trace pid of the owning rig/run
  std::size_t period{0};
  double t_s{0.0};       ///< sim time at the end of the period
  std::string policy;
  double measured_power_w{0.0};
  double set_point_w{0.0};
  double error_w{0.0};
  bool held{false};           ///< commands held, policy not consulted
  std::string hold_reason;    ///< deadband / sensor_gap / dark / recovering /
                              ///< failsafe_degrade (held=false for the latter)
  int failsafe_state{-1};     ///< FailSafeState as int; -1 = unhardened loop
  std::string failsafe_cause; ///< why the governor last engaged (meter_dark /
                              ///< actuation_fail); "" while nominal
  std::vector<double> freqs_mhz;    ///< fractional commands entering the period
  std::vector<double> targets_mhz;  ///< fractional commands after the decision
  std::vector<double> utilization;
  std::vector<double> normalized_throughput;
  FlightMpcState mpc;
  // Realized outcomes. Latencies are annotated by the rig at the end of
  // this period; power and the residuals are filled when the next record
  // arrives (finalization).
  bool outcome_filled{false};
  double realized_power_w{0.0};
  /// Next period's measured power minus this period's p(k+1|k).
  double power_residual_w{0.0};
  std::vector<double> realized_latency_s;  ///< per device, mean batch latency
  /// Realized mean latency this period minus the previous record's
  /// prediction (the caps that shaped this period were chosen then).
  std::vector<double> latency_residual_s;

  /// One JSONL line (no trailing newline). Doubles print at %.17g.
  [[nodiscard]] std::string to_jsonl() const;
  /// Inverse of to_jsonl for one parsed line.
  [[nodiscard]] static FlightRecord from_json(const json::Value& v);
};

/// Ring-buffered per-period sink with controller-health derivation.
class FlightRecorder {
 public:
  FlightRecorder() = default;
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  void set_enabled(bool enabled) { enabled_ = enabled; }
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  /// Ring capacity; the oldest records drop (and count) once exceeded.
  void set_capacity(std::size_t capacity) { capacity_ = capacity; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Admits one period's record: finalizes the previous pending record of
  /// the same pid (residuals, health metrics, anomaly instants), then
  /// stores `rec`. No-op when disabled.
  void record(FlightRecord rec);

  /// The most recently admitted record, for late annotation (the rig adds
  /// realized latencies from its end-of-period callback). Null when empty.
  [[nodiscard]] FlightRecord* pending();

  /// Finalizes the trailing pending record (its residuals stay unfilled —
  /// there is no next period — but it is marked complete). Idempotent;
  /// save_jsonl calls it implicitly.
  void finish();

  [[nodiscard]] const std::deque<FlightRecord>& records() const {
    return records_;
  }
  [[nodiscard]] std::size_t dropped() const noexcept { return dropped_; }
  void clear();

  void write_jsonl(std::ostream& out) const;
  void save_jsonl(const std::string& path);

  /// Appends another recorder's records with their pids shifted by
  /// `pid_offset` (the parent tracer's pid count before its own merge —
  /// the same offset SloRegistry uses), keeping flight logs byte-identical
  /// across --jobs values. Finalizes the other recorder first.
  void merge_from(FlightRecorder&& other, int pid_offset);

  /// The process-wide recorder.
  static FlightRecorder& global();
  /// The recorder instrumentation on this thread writes to: the one set by
  /// ScopedCurrent (runner worker threads), global() otherwise.
  static FlightRecorder& current();

  /// Rebinds current() for this thread for the guard's lifetime (RAII).
  class ScopedCurrent {
   public:
    explicit ScopedCurrent(FlightRecorder& recorder);
    ~ScopedCurrent();
    ScopedCurrent(const ScopedCurrent&) = delete;
    ScopedCurrent& operator=(const ScopedCurrent&) = delete;

   private:
    FlightRecorder* previous_;
  };

 private:
  /// Per-run derivation state (keyed by pid), not merged or serialized.
  struct RunHealth {
    double power_err_ewma{0.0};
    bool power_err_seen{false};
    std::vector<double> latency_err_ewma;
    std::vector<char> latency_err_seen;
    std::vector<double> prev_predicted_latency_s;
    std::size_t acted_periods{0};
    std::size_t floor_binding_periods{0};
    std::size_t ceiling_binding_periods{0};
    int prev_failsafe_state{-1};
    int trace_tid{0};
    // Pre-resolved metric handles (registry instrument references are
    // stable): the per-period hot path is a plain add/set with no name
    // hashing or label allocation, which keeps recorder overhead inside
    // the 5% budget guarded by bench_pipeline_selfperf. Rebound whenever
    // the thread's registry changes; the derived-health handles stay null
    // until their first event so series appear exactly as they used to.
    MetricsRegistry* registry{nullptr};
    Counter* records_total{nullptr};
    Counter* dropped_total{nullptr};
    Gauge* power_ewma_gauge{nullptr};
    LogLinearHistogram* power_err_hist{nullptr};
    LogLinearHistogram* qp_iter_hist{nullptr};
    /// capgpu_ctl_solver_path_total, one handle per tier in the order
    /// cache / structured / warm / fast / cold (see solver_path_index).
    Counter* path_counters[5]{};
    Counter* floor_periods_counter{nullptr};
    Counter* ceiling_periods_counter{nullptr};
    Gauge* floor_fraction_gauge{nullptr};
    Gauge* ceiling_fraction_gauge{nullptr};
    std::vector<Gauge*> latency_ewma_gauges;
  };

  /// The pid's health slot with metric handles bound to the thread's
  /// current registry (re-resolving them if the registry changed).
  RunHealth& health_for(int pid, const std::string& policy);

  /// Fills `prev`'s realized power + residuals from `next` and folds the
  /// completed record into the health metrics.
  void finalize(FlightRecord& prev, const FlightRecord* next);

  bool enabled_{false};
  std::size_t capacity_{65536};
  std::deque<FlightRecord> records_;
  std::size_t dropped_{0};
  bool pending_open_{false};  ///< records_.back() awaits finalization
  std::map<int, RunHealth> health_;
};

}  // namespace capgpu::telemetry
