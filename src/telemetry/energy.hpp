// Per-request energy attribution: the ledger that turns the rig's metered
// power trace into joules-per-inference accounting.
//
// Every control period the rig integrates the pristine power meter over the
// period (E = P_avg * T) and hands the ledger the batches that completed in
// it. The ledger splits the period's energy into an active share — the
// fraction of GPU-seconds actually occupied by batch execution
// (duty = min(1, busy_s / (gpus * T))) — and an idle remainder. Active
// energy is apportioned to batches by their GPU-exec occupancy share, then
// within a batch to pipeline stages by request-residency share (the same
// quantized per-stage durations the latency sketches record, so attribution
// adds no hot-path work beyond an EnergyBatch append per batch). Results
// accumulate per (power-cap, model) — caps keyed at 0.1 W, matching
// capgpu_report's bucketing — and surface three ways:
//
//   * metrics: capgpu_energy_joules_total{model,stage},
//     capgpu_energy_idle_joules_total, and a per-request
//     capgpu_request_energy_joules{model} sketch
//   * EnergyRegistry entries rendered by --energy-out
//     (write_energy_report): per-{cap,model} stage joules plus a per-cap
//     efficiency summary (joules/request, requests/kJ, idle fraction,
//     dominant energy stage)
//   * the --summary-out energy block in bench/common
//
// The registry follows the SloRegistry discipline (global / thread-local
// current / ScopedCurrent / scenario-order merge_from) so --energy-out is
// byte-identical for any --jobs N. Total ledger joules reconcile with the
// integrated meter trace exactly: both are the same per-period P_avg * T
// samples.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace capgpu::telemetry {

class Counter;
class MetricsRegistry;
class QuantileSketch;

/// Pipeline stage count / labels, mirroring workload::kStageCount and
/// workload::kStageNames (telemetry cannot depend on workload; pipeline.cpp
/// static_asserts the two stay in lockstep).
inline constexpr std::size_t kEnergyStageCount = 4;
inline constexpr const char* kEnergyStageNames[kEnergyStageCount] = {
    "preprocess_queue",
    "cpu_preprocess",
    "gpu_batch_queue",
    "gpu_exec",
};

/// One completed GPU batch as the pipeline hands it to the ledger: the
/// exec interval plus the summed per-request stage residencies (quantized
/// exactly like the latency sketches, so replayed batches stay consistent).
struct EnergyBatch {
  double start_s{0.0};  ///< GPU exec start (completed - exec latency)
  double end_s{0.0};    ///< completion stamp
  std::uint32_t images{0};
  /// Sum over the batch's requests of each stage's duration, seconds
  /// (stage_s[kGpuExec] is exec latency * images).
  std::array<double, kEnergyStageCount> stage_s{};
};

/// Final per-(cap, model) energy attribution, tagged with the trace pid of
/// the rig that produced it (joins --energy-out against the event stream).
struct EnergyEntry {
  int pid{0};
  std::string policy;
  std::string model;
  double cap_watts{0.0};
  double energy_joules{0.0};  ///< active energy attributed to this model
  std::array<double, kEnergyStageCount> stage_joules{};
  std::uint64_t requests{0};
  std::uint64_t batches{0};
};

/// Per-cap rollup: the meter-integral bookkeeping --energy-out's
/// efficiency summary is computed from.
struct EnergyCapSummary {
  int pid{0};
  std::string policy;
  double cap_watts{0.0};
  std::uint64_t periods{0};
  double total_joules{0.0};   ///< integrated meter energy at this cap
  double active_joules{0.0};  ///< attributed to batch execution
  double idle_joules{0.0};    ///< total - active
  std::uint64_t requests{0};
  std::uint64_t batches{0};
};

/// Accumulates one rig run's energy attribution. Construct per run (after
/// the rig's trace pid exists), feed each control period, finalize() once
/// into EnergyRegistry::current().
class EnergyLedger {
 public:
  /// Registers the energy metrics ({model, stage} counters, idle counter,
  /// per-request sketches) in MetricsRegistry::current(). `gpus` is the
  /// number of GPU execution slots (one per stream on the paper's rig) —
  /// the denominator of the duty cycle.
  EnergyLedger(std::string policy, int pid, std::size_t gpus,
               std::vector<std::string> model_names);

  EnergyLedger(const EnergyLedger&) = delete;
  EnergyLedger& operator=(const EnergyLedger&) = delete;

  /// Opens period accounting: `cap_watts` is the active set point,
  /// `avg_power_watts` the meter average over the period, `period_s` its
  /// length. E = avg_power * period_s joules enter the ledger.
  void begin_period(double cap_watts, double avg_power_watts, double period_s);
  /// Adds the batches stream `stream` completed this period.
  void add_batches(std::size_t stream, const EnergyBatch* batches,
                   std::size_t count);
  /// Closes the period: splits the energy active/idle, apportions the
  /// active share across the period's batches and bumps the metrics.
  void end_period();

  /// Pushes the per-cap accumulators into `registry` (cap order, then
  /// stream order — deterministic). Call once, after the run.
  void finalize(class EnergyRegistry& registry) const;

  /// Total joules integrated so far (sum of every period's P_avg * T).
  [[nodiscard]] double total_joules() const { return total_joules_; }

 private:
  struct ModelAccum {
    double energy_joules{0.0};
    std::array<double, kEnergyStageCount> stage_joules{};
    std::uint64_t requests{0};
    std::uint64_t batches{0};
  };
  struct CapAccum {
    double cap_watts{0.0};
    std::uint64_t periods{0};
    double total_joules{0.0};
    double active_joules{0.0};
    double idle_joules{0.0};
    std::uint64_t requests{0};
    std::uint64_t batches{0};
    std::vector<ModelAccum> models;
  };

  std::string policy_;
  int pid_;
  std::size_t gpus_;
  std::vector<std::string> model_names_;

  // Metric handles, resolved once (indexed [stream][stage] / [stream]).
  std::vector<std::array<Counter*, kEnergyStageCount>> stage_counters_;
  Counter* idle_counter_{nullptr};
  std::vector<QuantileSketch*> request_sketches_;

  // Period scratch (between begin_period and end_period).
  bool period_open_{false};
  double period_energy_j_{0.0};
  double period_s_{0.0};
  CapAccum* period_cap_{nullptr};
  std::vector<std::vector<EnergyBatch>> period_batches_;  ///< per stream

  /// Accumulators keyed by llround(cap * 10) — 0.1 W buckets, the same
  /// rounding capgpu_report uses to group periods by cap.
  std::map<long long, CapAccum> caps_;
  double total_joules_{0.0};
};

/// Accumulates finalized ledgers across runs, with the same
/// global/current/ScopedCurrent discipline as SloRegistry so parallel
/// scenarios stay isolated and merge deterministically in scenario order.
class EnergyRegistry {
 public:
  EnergyRegistry() = default;
  EnergyRegistry(const EnergyRegistry&) = delete;
  EnergyRegistry& operator=(const EnergyRegistry&) = delete;

  void add_entry(EnergyEntry entry);
  void add_cap(EnergyCapSummary cap);

  [[nodiscard]] const std::vector<EnergyEntry>& entries() const {
    return entries_;
  }
  [[nodiscard]] const std::vector<EnergyCapSummary>& caps() const {
    return caps_;
  }
  void clear() {
    entries_.clear();
    caps_.clear();
  }

  /// Appends another registry's records, shifting their pids by
  /// `pid_offset` — pass the parent tracer's pid captured *before*
  /// Tracer::merge_from, exactly as for SloRegistry.
  void merge_from(const EnergyRegistry& other, int pid_offset);

  static EnergyRegistry& global();
  static EnergyRegistry& current();

  class ScopedCurrent {
   public:
    explicit ScopedCurrent(EnergyRegistry& registry);
    ~ScopedCurrent();
    ScopedCurrent(const ScopedCurrent&) = delete;
    ScopedCurrent& operator=(const ScopedCurrent&) = delete;

   private:
    EnergyRegistry* previous_;
  };

 private:
  std::vector<EnergyEntry> entries_;
  std::vector<EnergyCapSummary> caps_;
};

/// Renders the --energy-out JSON: every per-{cap,model} entry (stage
/// joules, joules/request) plus the per-cap efficiency summary
/// (joules/request, requests/kJ, idle fraction, dominant energy stage).
/// Deterministic byte-for-byte given the same registry.
void write_energy_report(const EnergyRegistry& energy, std::ostream& out);
std::string to_energy_report(const EnergyRegistry& energy);
void save_energy_report(const EnergyRegistry& energy, const std::string& path);

}  // namespace capgpu::telemetry
