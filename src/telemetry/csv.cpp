#include "telemetry/csv.hpp"

#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace capgpu::telemetry {

namespace {
std::string escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}
}  // namespace

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) *out_ << ',';
    *out_ << escape(fields[i]);
  }
  *out_ << '\n';
}

void CsvWriter::write_row(const std::vector<double>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) *out_ << ',';
    *out_ << fields[i];
  }
  *out_ << '\n';
}

void write_series_csv(std::ostream& out,
                      const std::vector<const TimeSeries*>& series) {
  CAPGPU_REQUIRE(!series.empty(), "write_series_csv: no series");
  const std::size_t n = series.front()->size();
  for (const auto* s : series) {
    CAPGPU_REQUIRE(s->size() == n, "write_series_csv: length mismatch");
  }
  CsvWriter w(out);
  std::vector<std::string> header{"time"};
  for (const auto* s : series) header.push_back(s->name());
  w.write_row(header);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> row{series.front()->time_at(i)};
    for (const auto* s : series) row.push_back(s->value_at(i));
    w.write_row(row);
  }
}

void save_series_csv(const std::string& path,
                     const std::vector<const TimeSeries*>& series) {
  std::ofstream out(path);
  if (!out) throw Error("cannot open CSV file for writing: " + path);
  write_series_csv(out, series);
}

}  // namespace capgpu::telemetry
