#include "telemetry/flight.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <utility>

#include "common/error.hpp"
#include "common/json.hpp"
#include "telemetry/metric_names.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace capgpu::telemetry {
namespace {

/// EWMA smoothing for the prediction-error health gauges.
constexpr double kEwmaAlpha = 0.2;
/// |power residual| above this emits a flight_prediction_anomaly instant.
constexpr double kPowerAnomalyWatts = 50.0;

/// QP iteration counts are small integers: 2 decades from 1 give bounds up
/// to 100 with ~0.2-decade resolution.
constexpr HistogramSpec kIterationSpec{1.0, 2, 5};
/// |power residual| spans sub-watt noise to hundreds of watts on a fault.
constexpr HistogramSpec kResidualSpec{0.1, 5, 3};

const char* failsafe_name(int state) {
  switch (state) {
    case 0: return "nominal";
    case 1: return "degraded";
    case 2: return "recovering";
    default: return "unknown";
  }
}

// Tier attribution for capgpu_ctl_solver_path_total. The tiers are mutually
// exclusive in the controller; the most-specific-first ordering keeps
// attribution deterministic even for hand-edited logs.
constexpr const char* kSolverPathNames[5] = {"cache", "structured", "warm",
                                             "fast", "cold"};

std::size_t solver_path_index(const FlightMpcState& m) {
  if (m.cache_hit) return 0;
  if (m.structured_hit) return 1;
  if (m.warm_start_hit) return 2;
  if (m.fast_path_hit) return 3;
  return 4;
}

// --- JSONL rendering -------------------------------------------------------
// Doubles print at %.17g: every finite double round-trips exactly through
// strtod, which is what makes replay bit-identical. Bools print as 0/1.

void append_double(std::string& out, double v) {
  if (!std::isfinite(v)) {  // JSON has no nan/inf; records never hold them
    out += '0';
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

/// Comma-managed key/value appender for one flat JSON object.
class ObjectBuilder {
 public:
  explicit ObjectBuilder(std::string& out) : out_(out) { out_ += '{'; }
  void close() { out_ += '}'; }

  void num(const char* key, double v) {
    field(key);
    append_double(out_, v);
  }
  void integer(const char* key, long long v) {
    field(key);
    out_ += std::to_string(v);
  }
  void boolean(const char* key, bool v) {
    field(key);
    out_ += v ? '1' : '0';
  }
  void str(const char* key, const std::string& v) {
    field(key);
    append_escaped(out_, v);
  }
  void nums(const char* key, const std::vector<double>& v) {
    field(key);
    out_ += '[';
    for (std::size_t i = 0; i < v.size(); ++i) {
      if (i > 0) out_ += ',';
      append_double(out_, v[i]);
    }
    out_ += ']';
  }
  void ints(const char* key, const std::vector<int>& v) {
    field(key);
    out_ += '[';
    for (std::size_t i = 0; i < v.size(); ++i) {
      if (i > 0) out_ += ',';
      out_ += std::to_string(v[i]);
    }
    out_ += ']';
  }
  void null(const char* key) {
    field(key);
    out_ += "null";
  }
  /// Starts a nested object value; the caller builds and closes it.
  void field(const char* key) {
    if (!first_) out_ += ',';
    first_ = false;
    out_ += '"';
    out_ += key;
    out_ += "\":";
  }

 private:
  std::string& out_;
  bool first_{true};
};

// --- JSON reading ----------------------------------------------------------

std::vector<double> numbers_at(const json::Value& v, const char* key) {
  std::vector<double> out;
  if (!v.contains(key)) return out;
  const json::Array& arr = v.at(key).as_array();
  out.reserve(arr.size());
  for (const json::Value& e : arr) out.push_back(e.as_number());
  return out;
}

std::vector<int> ints_at(const json::Value& v, const char* key) {
  std::vector<int> out;
  if (!v.contains(key)) return out;
  const json::Array& arr = v.at(key).as_array();
  out.reserve(arr.size());
  for (const json::Value& e : arr) {
    out.push_back(static_cast<int>(e.as_number()));
  }
  return out;
}

bool bool_at(const json::Value& v, const char* key) {
  return v.number_or(key, 0.0) != 0.0;
}

std::size_t size_at(const json::Value& v, const char* key) {
  return static_cast<std::size_t>(v.number_or(key, 0.0));
}

thread_local FlightRecorder* t_current_recorder = nullptr;

}  // namespace

std::string FlightRecord::to_jsonl() const {
  std::string out;
  out.reserve(1024);
  ObjectBuilder b(out);
  b.integer("pid", pid);
  b.integer("period", static_cast<long long>(period));
  b.num("t_s", t_s);
  b.str("policy", policy);
  b.num("measured_power_w", measured_power_w);
  b.num("set_point_w", set_point_w);
  b.num("error_w", error_w);
  b.boolean("held", held);
  b.str("hold_reason", hold_reason);
  b.integer("failsafe_state", failsafe_state);
  b.str("failsafe_cause", failsafe_cause);
  b.nums("freqs_mhz", freqs_mhz);
  b.nums("targets_mhz", targets_mhz);
  b.nums("utilization", utilization);
  b.nums("normalized_throughput", normalized_throughput);
  b.boolean("outcome_filled", outcome_filled);
  b.num("realized_power_w", realized_power_w);
  b.num("power_residual_w", power_residual_w);
  b.nums("realized_latency_s", realized_latency_s);
  b.nums("latency_residual_s", latency_residual_s);
  if (!mpc.present) {
    b.null("mpc");
  } else {
    b.field("mpc");
    ObjectBuilder m(out);
    m.num("fed_power_w", mpc.fed_power_w);
    m.nums("gains_w_per_mhz", mpc.gains_w_per_mhz);
    m.num("offset_w", mpc.offset_w);
    m.nums("weights", mpc.weights);
    m.nums("f_min_mhz", mpc.f_min_mhz);
    m.nums("f_max_mhz", mpc.f_max_mhz);
    m.nums("f_lo_mhz", mpc.f_lo_mhz);
    m.nums("f_hi_mhz", mpc.f_hi_mhz);
    m.ints("device_kinds", mpc.device_kinds);
    m.integer("prediction_horizon",
              static_cast<long long>(mpc.prediction_horizon));
    m.integer("control_horizon", static_cast<long long>(mpc.control_horizon));
    m.num("tracking_weight", mpc.tracking_weight);
    m.num("reference_decay", mpc.reference_decay);
    m.num("violation_decay", mpc.violation_decay);
    m.num("regularization", mpc.regularization);
    m.nums("deltas_mhz", mpc.deltas_mhz);
    m.nums("planned_deltas_mhz", mpc.planned_deltas_mhz);
    m.num("predicted_power_w", mpc.predicted_power_w);
    m.nums("predicted_power_horizon_w", mpc.predicted_power_horizon_w);
    m.nums("predicted_latency_s", mpc.predicted_latency_s);
    m.integer("qp_iterations", static_cast<long long>(mpc.qp_iterations));
    m.boolean("qp_converged", mpc.qp_converged);
    m.boolean("cache_hit", mpc.cache_hit);
    m.boolean("warm_start_hit", mpc.warm_start_hit);
    m.boolean("fast_path_hit", mpc.fast_path_hit);
    m.boolean("structured_hit", mpc.structured_hit);
    m.num("qp_objective", mpc.qp_objective);
    m.integer("active_set_size", static_cast<long long>(mpc.active_set_size));
    m.ints("floor_binding", mpc.floor_binding);
    m.ints("ceiling_binding", mpc.ceiling_binding);
    m.close();
  }
  b.close();
  return out;
}

FlightRecord FlightRecord::from_json(const json::Value& v) {
  FlightRecord rec;
  rec.pid = static_cast<int>(v.number_or("pid", 0.0));
  rec.period = size_at(v, "period");
  rec.t_s = v.number_or("t_s", 0.0);
  rec.policy = v.string_or("policy", "");
  rec.measured_power_w = v.number_or("measured_power_w", 0.0);
  rec.set_point_w = v.number_or("set_point_w", 0.0);
  rec.error_w = v.number_or("error_w", 0.0);
  rec.held = bool_at(v, "held");
  rec.hold_reason = v.string_or("hold_reason", "");
  rec.failsafe_state = static_cast<int>(v.number_or("failsafe_state", -1.0));
  rec.failsafe_cause = v.string_or("failsafe_cause", "");
  rec.freqs_mhz = numbers_at(v, "freqs_mhz");
  rec.targets_mhz = numbers_at(v, "targets_mhz");
  rec.utilization = numbers_at(v, "utilization");
  rec.normalized_throughput = numbers_at(v, "normalized_throughput");
  rec.outcome_filled = bool_at(v, "outcome_filled");
  rec.realized_power_w = v.number_or("realized_power_w", 0.0);
  rec.power_residual_w = v.number_or("power_residual_w", 0.0);
  rec.realized_latency_s = numbers_at(v, "realized_latency_s");
  rec.latency_residual_s = numbers_at(v, "latency_residual_s");
  if (v.contains("mpc") && v.at("mpc").is_object()) {
    const json::Value& m = v.at("mpc");
    FlightMpcState& mpc = rec.mpc;
    mpc.present = true;
    mpc.fed_power_w = m.number_or("fed_power_w", 0.0);
    mpc.gains_w_per_mhz = numbers_at(m, "gains_w_per_mhz");
    mpc.offset_w = m.number_or("offset_w", 0.0);
    mpc.weights = numbers_at(m, "weights");
    mpc.f_min_mhz = numbers_at(m, "f_min_mhz");
    mpc.f_max_mhz = numbers_at(m, "f_max_mhz");
    mpc.f_lo_mhz = numbers_at(m, "f_lo_mhz");
    mpc.f_hi_mhz = numbers_at(m, "f_hi_mhz");
    mpc.device_kinds = ints_at(m, "device_kinds");
    mpc.prediction_horizon = size_at(m, "prediction_horizon");
    mpc.control_horizon = size_at(m, "control_horizon");
    mpc.tracking_weight = m.number_or("tracking_weight", 0.0);
    mpc.reference_decay = m.number_or("reference_decay", 0.0);
    mpc.violation_decay = m.number_or("violation_decay", 0.0);
    mpc.regularization = m.number_or("regularization", 0.0);
    mpc.deltas_mhz = numbers_at(m, "deltas_mhz");
    mpc.planned_deltas_mhz = numbers_at(m, "planned_deltas_mhz");
    mpc.predicted_power_w = m.number_or("predicted_power_w", 0.0);
    mpc.predicted_power_horizon_w = numbers_at(m, "predicted_power_horizon_w");
    mpc.predicted_latency_s = numbers_at(m, "predicted_latency_s");
    mpc.qp_iterations = size_at(m, "qp_iterations");
    mpc.qp_converged = bool_at(m, "qp_converged");
    mpc.cache_hit = bool_at(m, "cache_hit");
    mpc.warm_start_hit = bool_at(m, "warm_start_hit");
    // Absent in logs recorded before the tiered solve: default false, which
    // replays as a plain active-set solve (the tiers are bitwise-neutral).
    mpc.fast_path_hit = bool_at(m, "fast_path_hit");
    mpc.structured_hit = bool_at(m, "structured_hit");
    mpc.qp_objective = m.number_or("qp_objective", 0.0);
    mpc.active_set_size = size_at(m, "active_set_size");
    mpc.floor_binding = ints_at(m, "floor_binding");
    mpc.ceiling_binding = ints_at(m, "ceiling_binding");
  }
  return rec;
}

FlightRecorder::RunHealth& FlightRecorder::health_for(
    int pid, const std::string& policy) {
  RunHealth& h = health_[pid];
  auto& registry = MetricsRegistry::current();
  if (h.registry != &registry) {
    h.registry = &registry;
    h.records_total =
        &registry.counter(metric::kCtlFlightRecords,
                          "Flight records admitted to the recorder ring",
                          {{"policy", policy}});
    // Derived-health handles re-bind lazily on their next event.
    h.dropped_total = nullptr;
    h.power_ewma_gauge = nullptr;
    h.power_err_hist = nullptr;
    h.qp_iter_hist = nullptr;
    for (Counter*& c : h.path_counters) c = nullptr;
    h.floor_periods_counter = nullptr;
    h.ceiling_periods_counter = nullptr;
    h.floor_fraction_gauge = nullptr;
    h.ceiling_fraction_gauge = nullptr;
    h.latency_ewma_gauges.clear();
  }
  return h;
}

void FlightRecorder::record(FlightRecord rec) {
  if (!enabled_) return;
  if (pending_open_ && !records_.empty()) {
    FlightRecord& prev = records_.back();
    finalize(prev, prev.pid == rec.pid ? &rec : nullptr);
  }
  RunHealth& h = health_for(rec.pid, rec.policy);
  h.records_total->inc();
  if (capacity_ > 0 && records_.size() >= capacity_) {
    records_.pop_front();
    ++dropped_;
    if (h.dropped_total == nullptr) {
      h.dropped_total = &MetricsRegistry::current().counter(
          metric::kCtlFlightDroppedRecords,
          "Flight records evicted from the full recorder ring",
          {{"policy", rec.policy}});
    }
    h.dropped_total->inc();
  }
  records_.push_back(std::move(rec));
  pending_open_ = true;
}

FlightRecord* FlightRecorder::pending() {
  if (!enabled_ || !pending_open_ || records_.empty()) return nullptr;
  return &records_.back();
}

void FlightRecorder::finish() {
  if (pending_open_ && !records_.empty()) {
    finalize(records_.back(), nullptr);
  }
  pending_open_ = false;
}

void FlightRecorder::clear() {
  records_.clear();
  dropped_ = 0;
  pending_open_ = false;
  health_.clear();
}

void FlightRecorder::finalize(FlightRecord& prev, const FlightRecord* next) {
  if (prev.outcome_filled) return;
  prev.outcome_filled = true;
  // The trailing record of a run has no next period: its realized latency
  // (annotated by the rig) stands, but there is no next-step power, no
  // residuals, and — to keep health derivation on the run's own thread and
  // deterministic under --jobs — no metric or trace emission either.
  if (next == nullptr) return;

  RunHealth& h = health_for(prev.pid, prev.policy);
  auto& registry = MetricsRegistry::current();
  prev.realized_power_w = next->measured_power_w;

  const std::size_t n = prev.realized_latency_s.size();
  prev.latency_residual_s.assign(n, 0.0);
  if (h.prev_predicted_latency_s.size() == n) {
    if (h.latency_err_ewma.size() != n) {
      h.latency_err_ewma.assign(n, 0.0);
      h.latency_err_seen.assign(n, 0);
    }
    if (h.latency_ewma_gauges.size() != n) {
      h.latency_ewma_gauges.assign(n, nullptr);
    }
    for (std::size_t i = 0; i < n; ++i) {
      const double predicted = h.prev_predicted_latency_s[i];
      if (predicted <= 0.0 || prev.realized_latency_s[i] <= 0.0) continue;
      const double residual = prev.realized_latency_s[i] - predicted;
      prev.latency_residual_s[i] = residual;
      h.latency_err_ewma[i] =
          h.latency_err_seen[i] != 0
              ? (1.0 - kEwmaAlpha) * h.latency_err_ewma[i] +
                    kEwmaAlpha * std::abs(residual)
              : std::abs(residual);
      h.latency_err_seen[i] = 1;
      if (h.latency_ewma_gauges[i] == nullptr) {
        h.latency_ewma_gauges[i] = &registry.gauge(
            metric::kCtlLatencyPredictionErrorEwma,
            "EWMA of |realized - predicted| device latency",
            {{"policy", prev.policy}, {"device", std::to_string(i)}});
      }
      h.latency_ewma_gauges[i]->set(h.latency_err_ewma[i]);
    }
  }

  if (prev.mpc.present) {
    const double residual = next->measured_power_w - prev.mpc.predicted_power_w;
    prev.power_residual_w = residual;
    h.power_err_ewma = h.power_err_seen
                           ? (1.0 - kEwmaAlpha) * h.power_err_ewma +
                                 kEwmaAlpha * std::abs(residual)
                           : std::abs(residual);
    h.power_err_seen = true;
    if (h.power_ewma_gauge == nullptr) {
      const Labels policy_labels = {{"policy", prev.policy}};
      h.power_ewma_gauge = &registry.gauge(
          metric::kCtlPowerPredictionErrorEwma,
          "EWMA of |measured(k+1) - predicted(k+1|k)| server power",
          policy_labels);
      h.power_err_hist = &registry.histogram(
          metric::kCtlPowerPredictionError,
          "One-step server-power prediction error magnitude", kResidualSpec,
          policy_labels);
      h.qp_iter_hist = &registry.histogram(
          metric::kCtlQpIterations,
          "Active-set QP iterations per control period", kIterationSpec,
          policy_labels);
    }
    h.power_ewma_gauge->set(h.power_err_ewma);
    h.power_err_hist->observe(std::abs(residual));
    h.qp_iter_hist->observe(static_cast<double>(prev.mpc.qp_iterations));

    const std::size_t path_idx = solver_path_index(prev.mpc);
    if (h.path_counters[path_idx] == nullptr) {
      h.path_counters[path_idx] = &registry.counter(
          metric::kCtlSolverPath, "Acted periods by control-solve tier",
          {{"policy", prev.policy}, {"path", kSolverPathNames[path_idx]}});
    }
    h.path_counters[path_idx]->inc();

    ++h.acted_periods;
    bool floor_any = false;
    bool ceiling_any = false;
    for (int f : prev.mpc.floor_binding) floor_any = floor_any || f != 0;
    for (int c : prev.mpc.ceiling_binding) ceiling_any = ceiling_any || c != 0;
    if (floor_any) {
      ++h.floor_binding_periods;
      if (h.floor_periods_counter == nullptr) {
        h.floor_periods_counter = &registry.counter(
            metric::kCtlBindingPeriods,
            "Control periods with a binding frequency constraint",
            {{"policy", prev.policy}, {"constraint", "floor"}});
      }
      h.floor_periods_counter->inc();
    }
    if (ceiling_any) {
      ++h.ceiling_binding_periods;
      if (h.ceiling_periods_counter == nullptr) {
        h.ceiling_periods_counter = &registry.counter(
            metric::kCtlBindingPeriods,
            "Control periods with a binding frequency constraint",
            {{"policy", prev.policy}, {"constraint", "ceiling"}});
      }
      h.ceiling_periods_counter->inc();
    }
    const double acted = static_cast<double>(h.acted_periods);
    if (h.floor_fraction_gauge == nullptr) {
      h.floor_fraction_gauge = &registry.gauge(
          metric::kCtlBindingFraction,
          "Fraction of acted periods with a binding constraint",
          {{"policy", prev.policy}, {"constraint", "floor"}});
      h.ceiling_fraction_gauge = &registry.gauge(
          metric::kCtlBindingFraction,
          "Fraction of acted periods with a binding constraint",
          {{"policy", prev.policy}, {"constraint", "ceiling"}});
    }
    h.floor_fraction_gauge->set(static_cast<double>(h.floor_binding_periods) /
                                acted);
    h.ceiling_fraction_gauge->set(
        static_cast<double>(h.ceiling_binding_periods) / acted);
    h.prev_predicted_latency_s = prev.mpc.predicted_latency_s;

    Tracer& tracer = Tracer::current();
    if (tracer.enabled()) {
      if (h.trace_tid == 0) h.trace_tid = tracer.register_track("flight");
      if (std::abs(residual) > kPowerAnomalyWatts) {
        tracer.instant(h.trace_tid, "flight_prediction_anomaly", "control",
                       {{"power_residual_w", residual},
                        {"period", static_cast<double>(prev.period)}});
      }
      if (!prev.mpc.qp_converged) {
        tracer.instant(
            h.trace_tid, "flight_qp_fallback", "control",
            {{"qp_iterations", static_cast<double>(prev.mpc.qp_iterations)},
             {"period", static_cast<double>(prev.period)}});
      }
    }
  }

  if (h.prev_failsafe_state >= 0 && prev.failsafe_state >= 0 &&
      prev.failsafe_state != h.prev_failsafe_state) {
    registry
        .counter(metric::kCtlFallbackTransitions,
                 "Fail-safe governor state transitions seen by the recorder",
                 {{"policy", prev.policy},
                  {"kind", std::string(failsafe_name(h.prev_failsafe_state)) +
                               "_to_" + failsafe_name(prev.failsafe_state)},
                  {"cause", prev.failsafe_cause.empty()
                                ? "none"
                                : prev.failsafe_cause}})
        .inc();
  }
  h.prev_failsafe_state = prev.failsafe_state;
}

void FlightRecorder::write_jsonl(std::ostream& out) const {
  for (const FlightRecord& rec : records_) {
    out << rec.to_jsonl() << '\n';
  }
}

void FlightRecorder::save_jsonl(const std::string& path) {
  finish();
  std::ofstream out(path, std::ios::binary);
  if (!out) throw Error("cannot open flight log for writing: " + path);
  write_jsonl(out);
}

void FlightRecorder::merge_from(FlightRecorder&& other, int pid_offset) {
  other.finish();
  for (FlightRecord& rec : other.records_) {
    rec.pid += pid_offset;
    if (capacity_ > 0 && records_.size() >= capacity_) {
      records_.pop_front();
      ++dropped_;
    }
    records_.push_back(std::move(rec));
  }
  dropped_ += other.dropped_;
  other.clear();
}

FlightRecorder& FlightRecorder::global() {
  static FlightRecorder recorder;
  return recorder;
}

FlightRecorder& FlightRecorder::current() {
  return t_current_recorder != nullptr ? *t_current_recorder : global();
}

FlightRecorder::ScopedCurrent::ScopedCurrent(FlightRecorder& recorder)
    : previous_(t_current_recorder) {
  t_current_recorder = &recorder;
}

FlightRecorder::ScopedCurrent::~ScopedCurrent() {
  t_current_recorder = previous_;
}

}  // namespace capgpu::telemetry
