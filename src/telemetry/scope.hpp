// Per-scenario telemetry isolation for parallel experiment execution.
//
// A ScenarioTelemetry owns a private MetricsRegistry + Tracer for one
// simulation scenario. While a Binding is alive on a thread, every
// MetricsRegistry::current() / Tracer::current() call on that thread — all
// library instrumentation — lands in the scenario's instances instead of
// the process-wide singletons. After the scenario completes, merge_into()
// folds the instances into a parent (usually the registry/tracer that was
// current on the launching thread); the runner merges scenarios in index
// order, which makes Prometheus and Chrome-trace exports byte-identical
// for any worker count.
#pragma once

#include "telemetry/energy.hpp"
#include "telemetry/flight.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/resilience.hpp"
#include "telemetry/slo.hpp"
#include "telemetry/trace.hpp"

namespace capgpu::telemetry {

class ScenarioTelemetry {
 public:
  /// `like` provides the tracer configuration to inherit (enabled flag and
  /// event cap) — pass the parent tracer the merge will target. The flight
  /// recorder inherits its configuration from `flight_like` (typically the
  /// recorder that was current on the launching thread).
  explicit ScenarioTelemetry(const Tracer& like,
                             const FlightRecorder& flight_like) {
    tracer_.set_enabled(like.enabled());
    flight_.set_enabled(flight_like.enabled());
    flight_.set_capacity(flight_like.capacity());
  }

  [[nodiscard]] MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] Tracer& tracer() { return tracer_; }
  [[nodiscard]] SloRegistry& slo() { return slo_; }
  [[nodiscard]] FlightRecorder& flight() { return flight_; }
  [[nodiscard]] ResilienceRegistry& resilience() { return resilience_; }
  [[nodiscard]] EnergyRegistry& energy() { return energy_; }

  /// Folds this scenario's telemetry into the parent instances. Call from
  /// one thread at a time, in scenario order.
  void merge_into(MetricsRegistry& metrics, Tracer& tracer, SloRegistry& slo,
                  FlightRecorder& flight, ResilienceRegistry& resilience,
                  EnergyRegistry& energy) {
    // Capture the parent's pid count before the tracer merge shifts this
    // scenario's events past it: SLO entries, flight records and resilience
    // scorecards need the same offset to keep pointing at their rig's
    // events.
    const int pid_offset = tracer.pid();
    metrics.merge_from(metrics_);
    tracer.merge_from(std::move(tracer_));
    slo.merge_from(slo_, pid_offset);
    flight.merge_from(std::move(flight_), pid_offset);
    resilience.merge_from(resilience_, pid_offset);
    energy.merge_from(energy_, pid_offset);
  }

  /// RAII binding making this scenario's instances the thread's current
  /// telemetry. Stack-nestable.
  class Binding {
   public:
    explicit Binding(ScenarioTelemetry& scope)
        : metrics_(scope.metrics_),
          tracer_(scope.tracer_),
          slo_(scope.slo_),
          flight_(scope.flight_),
          resilience_(scope.resilience_),
          energy_(scope.energy_) {}

   private:
    MetricsRegistry::ScopedCurrent metrics_;
    Tracer::ScopedCurrent tracer_;
    SloRegistry::ScopedCurrent slo_;
    FlightRecorder::ScopedCurrent flight_;
    ResilienceRegistry::ScopedCurrent resilience_;
    EnergyRegistry::ScopedCurrent energy_;
  };

 private:
  MetricsRegistry metrics_;
  Tracer tracer_;
  SloRegistry slo_;
  FlightRecorder flight_;
  ResilienceRegistry resilience_;
  EnergyRegistry energy_;
};

}  // namespace capgpu::telemetry
