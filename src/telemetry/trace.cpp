#include "telemetry/trace.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <utility>

#include "common/error.hpp"

namespace capgpu::telemetry {

namespace {

std::string render_number(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.10g", std::isfinite(v) ? v : 0.0);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void write_args(std::ostream& out, const std::vector<TraceArg>& args) {
  out << '{';
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (i) out << ',';
    out << '"' << json_escape(args[i].key) << "\":";
    if (args[i].is_number) {
      out << args[i].value;
    } else {
      out << '"' << json_escape(args[i].value) << '"';
    }
  }
  out << '}';
}

void write_event(std::ostream& out, const TraceEvent& e) {
  out << "{\"name\":\"" << json_escape(e.name) << "\",\"cat\":\""
      << json_escape(e.category) << "\",\"ph\":\"" << e.phase
      << "\",\"pid\":" << e.pid << ",\"tid\":" << e.tid
      << ",\"ts\":" << render_number(e.ts_us);
  if (e.phase == 'X') out << ",\"dur\":" << render_number(e.dur_us);
  if (e.phase == 'i') out << ",\"s\":\"t\"";
  if (!e.args.empty() || e.phase == 'C') {
    out << ",\"args\":";
    write_args(out, e.args);
  }
  out << '}';
}

}  // namespace

TraceArg::TraceArg(std::string k, double v)
    : key(std::move(k)), value(render_number(v)), is_number(true) {}

TraceArg::TraceArg(std::string k, std::string v)
    : key(std::move(k)), value(std::move(v)) {}

namespace {
thread_local Tracer* t_current_tracer = nullptr;
}  // namespace

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

Tracer& Tracer::current() {
  return t_current_tracer ? *t_current_tracer : global();
}

Tracer::ScopedCurrent::ScopedCurrent(Tracer& tracer)
    : previous_(t_current_tracer) {
  t_current_tracer = &tracer;
}

Tracer::ScopedCurrent::~ScopedCurrent() { t_current_tracer = previous_; }

void Tracer::merge_from(Tracer&& other) {
  const int pid_base = pid_;
  for (TraceEvent& e : other.events_) {
    e.pid += pid_base;
    push(std::move(e));
  }
  pid_ += other.pid_;
  dropped_ += other.dropped_;
  other.clear();
  other.pid_ = 0;
  other.next_tid_ = 1;
}

void Tracer::set_clock(std::function<double()> now_seconds) {
  clock_ = std::move(now_seconds);
}

double Tracer::now_seconds() const { return clock_ ? clock_() : 0.0; }

void Tracer::push(TraceEvent event) {
  if (events_.size() >= max_events_) {
    ++dropped_;
    return;
  }
  events_.push_back(std::move(event));
}

int Tracer::begin_run(const std::string& name) {
  ++pid_;
  next_tid_ = 1;
  if (enabled_) {
    TraceEvent e;
    e.phase = 'M';
    e.name = "process_name";
    e.category = "__metadata";
    e.pid = pid_;
    e.tid = 0;
    e.args.emplace_back("name", name);
    push(std::move(e));
  }
  return pid_;
}

int Tracer::register_track(const std::string& name) {
  const int tid = next_tid_++;
  if (enabled_) {
    TraceEvent e;
    e.phase = 'M';
    e.name = "thread_name";
    e.category = "__metadata";
    e.pid = pid_;
    e.tid = tid;
    e.args.emplace_back("name", name);
    push(std::move(e));
  }
  return tid;
}

void Tracer::complete(int tid, const std::string& name,
                      const std::string& category, double t0_s, double t1_s,
                      std::vector<TraceArg> args) {
  if (!enabled_) return;
  TraceEvent e;
  e.phase = 'X';
  e.name = name;
  e.category = category;
  e.pid = pid_;
  e.tid = tid;
  e.ts_us = t0_s * 1e6;
  e.dur_us = (t1_s - t0_s) * 1e6;
  e.args = std::move(args);
  push(std::move(e));
}

void Tracer::instant(int tid, const std::string& name,
                     const std::string& category,
                     std::vector<TraceArg> args) {
  if (!enabled_) return;
  TraceEvent e;
  e.phase = 'i';
  e.name = name;
  e.category = category;
  e.pid = pid_;
  e.tid = tid;
  e.ts_us = now_seconds() * 1e6;
  e.args = std::move(args);
  push(std::move(e));
}

void Tracer::counter(int tid, const std::string& name,
                     const std::string& category,
                     std::vector<TraceArg> args) {
  if (!enabled_) return;
  TraceEvent e;
  e.phase = 'C';
  e.name = name;
  e.category = category;
  e.pid = pid_;
  e.tid = tid;
  e.ts_us = now_seconds() * 1e6;
  e.args = std::move(args);
  push(std::move(e));
}

std::uint64_t Tracer::begin_span(int tid, const std::string& name,
                                 const std::string& category) {
  if (!enabled_) return 0;
  const std::uint64_t id = next_span_++;
  open_spans_.emplace(id, OpenSpan{tid, name, category, now_seconds()});
  return id;
}

void Tracer::end_span(std::uint64_t span, std::vector<TraceArg> args) {
  if (span == 0) return;
  auto it = open_spans_.find(span);
  if (it == open_spans_.end()) return;
  const OpenSpan open = std::move(it->second);
  open_spans_.erase(it);
  complete(open.tid, open.name, open.category, open.t0_s, now_seconds(),
           std::move(args));
}

void Tracer::clear() {
  events_.clear();
  open_spans_.clear();
  dropped_ = 0;
}

void Tracer::write_chrome_json(std::ostream& out) const {
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  for (std::size_t i = 0; i < events_.size(); ++i) {
    out << (i ? ",\n" : "\n");
    write_event(out, events_[i]);
  }
  out << "\n]}\n";
}

void Tracer::write_jsonl(std::ostream& out) const {
  for (const auto& e : events_) {
    write_event(out, e);
    out << '\n';
  }
}

void Tracer::save_chrome_json(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw Error("cannot write trace file: " + path);
  write_chrome_json(out);
}

void Tracer::save_jsonl(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw Error("cannot write event stream file: " + path);
  write_jsonl(out);
}

}  // namespace capgpu::telemetry
