#include "telemetry/runtime.hpp"

#include "common/log.hpp"
#include "telemetry/trace.hpp"

namespace capgpu::telemetry {

namespace {
const void* g_clock_owner = nullptr;
}  // namespace

void attach_time_source(const void* owner,
                        std::function<double()> now_seconds) {
  g_clock_owner = owner;
  Tracer::global().set_clock(now_seconds);
  Log::set_time_source(std::move(now_seconds));
}

void detach_time_source(const void* owner) {
  if (owner != g_clock_owner) return;
  g_clock_owner = nullptr;
  Tracer::global().set_clock(nullptr);
  Log::set_time_source(nullptr);
}

}  // namespace capgpu::telemetry
