#include "telemetry/runtime.hpp"

#include "common/log.hpp"
#include "telemetry/trace.hpp"

namespace capgpu::telemetry {

namespace {
// Thread-local: each runner worker wires its scenario's engine to its own
// current() tracer and log prefix without racing other workers or the
// main thread.
thread_local const void* t_clock_owner = nullptr;
}  // namespace

void attach_time_source(const void* owner,
                        std::function<double()> now_seconds) {
  t_clock_owner = owner;
  Tracer::current().set_clock(now_seconds);
  Log::set_time_source(std::move(now_seconds));
}

void detach_time_source(const void* owner) {
  if (owner != t_clock_owner) return;
  t_clock_owner = nullptr;
  Tracer::current().set_clock(nullptr);
  Log::set_time_source(nullptr);
}

}  // namespace capgpu::telemetry
