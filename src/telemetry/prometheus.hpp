// Prometheus text exposition (version 0.0.4) of a MetricsRegistry.
//
// Output is deterministic — families in registration order, series in
// canonical label order — so golden tests can pin the exact bytes.
#pragma once

#include <iosfwd>
#include <string>

#include "telemetry/metrics.hpp"

namespace capgpu::telemetry {

/// Writes `# HELP` / `# TYPE` headers and every series. Histograms expand
/// to cumulative `_bucket{le=...}` series plus `_sum` and `_count`.
void write_prometheus(const MetricsRegistry& registry, std::ostream& out);

/// Convenience: exposition as a string.
[[nodiscard]] std::string to_prometheus(const MetricsRegistry& registry);

/// Writes the exposition to `path`. Throws capgpu::Error when the file
/// cannot be created.
void save_prometheus(const MetricsRegistry& registry, const std::string& path);

}  // namespace capgpu::telemetry
