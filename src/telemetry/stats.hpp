// Streaming and exact statistics used by monitors and benches.
#pragma once

#include <cstddef>
#include <vector>

namespace capgpu::telemetry {

/// Numerically stable streaming mean/variance/min/max (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& o);
  void reset();

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double variance() const;   ///< population variance
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double sample_stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double sum() const;

 private:
  std::size_t count_{0};
  double mean_{0.0};
  double m2_{0.0};
  double min_{0.0};
  double max_{0.0};
  double sum_{0.0};
};

/// Exact percentile tracker: stores samples and answers quantile queries with
/// linear interpolation (type-7, same convention as numpy.percentile).
class PercentileTracker {
 public:
  void add(double x);
  void reset();

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  /// q in [0, 1]; e.g. quantile(0.5) is the median. Requires count() > 0.
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double median() const { return quantile(0.5); }

  [[nodiscard]] const std::vector<double>& samples() const { return samples_; }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_{true};
};

/// Fraction of samples for which `pred` held; used for SLO miss rates.
class RatioCounter {
 public:
  void add(bool hit);
  void reset();
  [[nodiscard]] std::size_t total() const { return total_; }
  [[nodiscard]] std::size_t hits() const { return hits_; }
  [[nodiscard]] double ratio() const;  ///< hits / total, 0 when empty.

 private:
  std::size_t total_{0};
  std::size_t hits_{0};
};

}  // namespace capgpu::telemetry
