// CSV output for traces and experiment results.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "telemetry/timeseries.hpp"

namespace capgpu::telemetry {

/// Streams rows of a CSV file with proper quoting.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(&out) {}

  /// Writes a header / data row. Fields containing separators or quotes are
  /// quoted per RFC 4180.
  void write_row(const std::vector<std::string>& fields);
  void write_row(const std::vector<double>& fields);

 private:
  std::ostream* out_;
};

/// Writes several time series sharing a time axis as columns
/// (time,name1,name2,...). Series are sampled by index; all series must have
/// the same length.
void write_series_csv(std::ostream& out, const std::vector<const TimeSeries*>& series);

/// Saves series to a file path; creates/truncates the file.
void save_series_csv(const std::string& path, const std::vector<const TimeSeries*>& series);

}  // namespace capgpu::telemetry
