#include "telemetry/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "telemetry/sketch.hpp"

namespace capgpu::telemetry {

// Out of line so unique_ptr<QuantileSketch> sees the complete type.
Instrument::Instrument() = default;
Instrument::~Instrument() = default;

namespace {

bool valid_identifier(const std::string& s) {
  if (s.empty()) return false;
  auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
  };
  if (!head(s.front())) return false;
  return std::all_of(s.begin(), s.end(), [&](char c) {
    return head(c) || (c >= '0' && c <= '9');
  });
}

Labels canonical_labels(const Labels& labels) {
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    CAPGPU_REQUIRE(valid_identifier(sorted[i].first),
                   "invalid label key: " + sorted[i].first);
    CAPGPU_REQUIRE(i == 0 || sorted[i - 1].first != sorted[i].first,
                   "duplicate label key: " + sorted[i].first);
  }
  return sorted;
}

std::string serialize(const Labels& canonical) {
  std::string key;
  for (const auto& [k, v] : canonical) {
    key += k;
    key += '\x1f';  // unit separator: cannot appear in a label key
    key += v;
    key += '\x1e';
  }
  return key;
}

}  // namespace

LogLinearHistogram::LogLinearHistogram(HistogramSpec spec) : spec_(spec) {
  CAPGPU_REQUIRE(spec.min_bound > 0.0, "histogram min_bound must be > 0");
  CAPGPU_REQUIRE(spec.decades >= 1, "histogram needs at least one decade");
  CAPGPU_REQUIRE(spec.buckets_per_decade >= 1,
                 "histogram needs at least one bucket per decade");
  bounds_.reserve(1 + spec.decades * spec.buckets_per_decade);
  bounds_.push_back(spec.min_bound);
  for (std::size_t d = 0; d < spec.decades; ++d) {
    const double lo = spec.min_bound * std::pow(10.0, static_cast<double>(d));
    for (std::size_t i = 1; i <= spec.buckets_per_decade; ++i) {
      bounds_.push_back(lo * (1.0 + 9.0 * static_cast<double>(i) /
                                        static_cast<double>(
                                            spec.buckets_per_decade)));
    }
  }
  counts_.assign(bounds_.size() + 1, 0);
}

std::size_t LogLinearHistogram::bucket_index(double x) const noexcept {
  std::size_t idx = 0;
  if (x > spec_.min_bound) {
    // O(1) locate via the decade exponent, then a float-safety fix-up of at
    // most one step so `le` bounds stay exactly inclusive.
    const double rel = x / spec_.min_bound;
    double d = std::floor(std::log10(rel));
    d = std::clamp(d, 0.0, static_cast<double>(spec_.decades - 1));
    const double lo = spec_.min_bound * std::pow(10.0, d);
    const double pos = (x / lo - 1.0) * static_cast<double>(
                                            spec_.buckets_per_decade) / 9.0;
    const auto i = static_cast<std::ptrdiff_t>(std::ceil(pos));
    auto raw = static_cast<std::ptrdiff_t>(d) *
                   static_cast<std::ptrdiff_t>(spec_.buckets_per_decade) +
               std::clamp<std::ptrdiff_t>(
                   i, 0,
                   static_cast<std::ptrdiff_t>(spec_.buckets_per_decade));
    idx = static_cast<std::size_t>(std::max<std::ptrdiff_t>(raw, 0));
    while (idx > 0 && x <= bounds_[idx - 1]) --idx;
    while (idx < bounds_.size() && x > bounds_[idx]) ++idx;
  }
  return idx;
}

void LogLinearHistogram::observe(double x) noexcept {
  ++counts_[bucket_index(x)];
  sum_ += x;
  ++count_;
}

void LogLinearHistogram::merge_from(const LogLinearHistogram& other) {
  CAPGPU_REQUIRE(bounds_ == other.bounds_,
                 "cannot merge histograms with different bucket layouts");
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  sum_ += other.sum_;
  count_ += other.count_;
}

namespace {
thread_local MetricsRegistry* t_current_registry = nullptr;
}  // namespace

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

MetricsRegistry& MetricsRegistry::current() {
  return t_current_registry ? *t_current_registry : global();
}

MetricsRegistry::ScopedCurrent::ScopedCurrent(MetricsRegistry& registry)
    : previous_(t_current_registry) {
  t_current_registry = &registry;
}

MetricsRegistry::ScopedCurrent::~ScopedCurrent() {
  t_current_registry = previous_;
}

void MetricsRegistry::merge_from(const MetricsRegistry& other) {
  for (const Family* family : other.families()) {
    for (const auto& [key, series] : family->series) {
      Instrument& mine =
          find_or_create(family->name, family->help, family->type,
                         series->labels);
      switch (family->type) {
        case MetricType::kCounter:
          mine.counter.inc(series->counter.value());
          break;
        case MetricType::kGauge:
          mine.gauge.set(series->gauge.value());
          break;
        case MetricType::kHistogram:
          if (series->histogram) {
            if (!mine.histogram) {
              mine.histogram = std::make_unique<LogLinearHistogram>(
                  series->histogram->spec());
            }
            mine.histogram->merge_from(*series->histogram);
          }
          break;
        case MetricType::kSketch:
          if (series->sketch) {
            if (!mine.sketch) {
              mine.sketch =
                  std::make_unique<QuantileSketch>(series->sketch->spec());
            }
            mine.sketch->merge_from(*series->sketch);
          }
          break;
      }
    }
  }
}

Instrument& MetricsRegistry::find_or_create(const std::string& name,
                                            const std::string& help,
                                            MetricType type,
                                            const Labels& labels) {
  CAPGPU_REQUIRE(valid_identifier(name), "invalid metric name: " + name);
  auto it = families_.find(name);
  if (it == families_.end()) {
    auto family = std::make_unique<Family>();
    family->name = name;
    family->help = help;
    family->type = type;
    order_.push_back(family.get());
    it = families_.emplace(name, std::move(family)).first;
  }
  Family& family = *it->second;
  CAPGPU_REQUIRE(family.type == type,
                 "metric already registered with a different type: " + name);

  Labels canonical = canonical_labels(labels);
  const std::string key = serialize(canonical);
  auto sit = family.series.find(key);
  if (sit == family.series.end()) {
    auto inst = std::make_unique<Instrument>();
    inst->labels = std::move(canonical);
    inst->type = type;
    sit = family.series.emplace(key, std::move(inst)).first;
  }
  return *sit->second;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& help,
                                  const Labels& labels) {
  return find_or_create(name, help, MetricType::kCounter, labels).counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const std::string& help,
                              const Labels& labels) {
  return find_or_create(name, help, MetricType::kGauge, labels).gauge;
}

LogLinearHistogram& MetricsRegistry::histogram(const std::string& name,
                                               const std::string& help,
                                               HistogramSpec spec,
                                               const Labels& labels) {
  Instrument& inst =
      find_or_create(name, help, MetricType::kHistogram, labels);
  if (!inst.histogram) {
    inst.histogram = std::make_unique<LogLinearHistogram>(spec);
  }
  return *inst.histogram;
}

QuantileSketch& MetricsRegistry::sketch(const std::string& name,
                                        const std::string& help,
                                        const Labels& labels) {
  Instrument& inst = find_or_create(name, help, MetricType::kSketch, labels);
  if (!inst.sketch) {
    inst.sketch = std::make_unique<QuantileSketch>();
  }
  return *inst.sketch;
}

std::vector<const MetricsRegistry::Family*> MetricsRegistry::families() const {
  return {order_.begin(), order_.end()};
}

std::vector<std::string> MetricsRegistry::metric_names() const {
  std::vector<std::string> names;
  names.reserve(order_.size());
  for (const Family* f : order_) names.push_back(f->name);
  return names;
}

std::size_t MetricsRegistry::series_count() const {
  std::size_t n = 0;
  for (const Family* f : order_) n += f->series.size();
  return n;
}

void MetricsRegistry::clear() {
  order_.clear();
  families_.clear();
}

}  // namespace capgpu::telemetry
