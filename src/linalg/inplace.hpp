// Allocation-free factorisations on caller-owned strided buffers.
//
// The active-set QP solver factors one KKT system per iteration and the MPC
// controller one per control period; sizes change with the working set, so
// Lu/Cholesky objects (which own their storage) would allocate on every
// solve. These variants run the *identical* arithmetic on the leading n x n
// block of a row-major buffer with a fixed leading stride, so a workspace
// sized for the largest system serves every smaller one without touching the
// heap. Bit-for-bit agreement with Lu/Cholesky is load-bearing: the solver's
// iterates — and hence every bench output — must not move when a caller
// switches to the in-place path.
#pragma once

#include <cstddef>

namespace capgpu::linalg {

/// PA = LU factorisation with partial pivoting, in place on the leading
/// n x n block of `a` (row-major, leading stride `stride` >= n). `piv` must
/// hold n entries; on return it is the row permutation, as in Lu.
/// Throws NumericalError when singular to working precision (|pivot| < 1e-13).
void lu_factor_inplace(double* a, std::size_t n, std::size_t stride,
                       std::size_t* piv);

/// Solves A x = b from a factorisation produced by lu_factor_inplace.
/// `x` receives the solution; `b` and `x` must not alias.
void lu_solve_inplace(const double* lu, std::size_t n, std::size_t stride,
                      const std::size_t* piv, const double* b, double* x);

/// Cholesky A = L L^T of the leading n x n block of `a` into the lower
/// triangle of `l` (both row-major with leading stride `stride`; the upper
/// triangle of `l` is left untouched and never read). Returns false when the
/// matrix is not positive definite — the caller decides whether to throw,
/// matching the Cholesky constructor's NumericalError.
[[nodiscard]] bool cholesky_factor_inplace(const double* a, double* l,
                                           std::size_t n, std::size_t stride);

}  // namespace capgpu::linalg
