// Eigenvalues of real (non-symmetric) matrices.
//
// Used by the stability analysis (paper Sec 4.4): the closed-loop dynamics of
// the server under CapGPU's control law form a small real matrix whose poles
// (eigenvalues) must lie strictly inside the unit circle for p(k) -> P_s.
#pragma once

#include <complex>
#include <vector>

#include "linalg/matrix.hpp"

namespace capgpu::linalg {

/// All eigenvalues of a real square matrix, computed via Hessenberg
/// reduction followed by the shifted QR (Francis) iteration. Complex
/// conjugate pairs are returned as such.
/// Throws NumericalError if the iteration fails to converge.
[[nodiscard]] std::vector<std::complex<double>> eigenvalues(const Matrix& a);

/// Spectral radius: max |lambda_i|.
[[nodiscard]] double spectral_radius(const Matrix& a);

/// True when every eigenvalue lies strictly inside the unit circle
/// (discrete-time asymptotic stability), with margin `tol`.
[[nodiscard]] bool is_schur_stable(const Matrix& a, double tol = 1e-9);

}  // namespace capgpu::linalg
