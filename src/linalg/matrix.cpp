#include "linalg/matrix.hpp"

#include <cmath>
#include <sstream>

#include "common/error.hpp"

namespace capgpu::linalg {

double& Vector::operator[](std::size_t i) {
  CAPGPU_ASSERT(i < data_.size());
  return data_[i];
}

double Vector::operator[](std::size_t i) const {
  CAPGPU_ASSERT(i < data_.size());
  return data_[i];
}

Vector& Vector::operator+=(const Vector& o) {
  CAPGPU_ASSERT(size() == o.size());
  for (std::size_t i = 0; i < size(); ++i) data_[i] += o.data_[i];
  return *this;
}

Vector& Vector::operator-=(const Vector& o) {
  CAPGPU_ASSERT(size() == o.size());
  for (std::size_t i = 0; i < size(); ++i) data_[i] -= o.data_[i];
  return *this;
}

Vector& Vector::operator*=(double s) {
  for (auto& v : data_) v *= s;
  return *this;
}

double Vector::dot(const Vector& o) const {
  CAPGPU_ASSERT(size() == o.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < size(); ++i) acc += data_[i] * o.data_[i];
  return acc;
}

double Vector::norm2() const { return std::sqrt(dot(*this)); }

double Vector::norm_inf() const {
  double m = 0.0;
  for (double v : data_) m = std::max(m, std::abs(v));
  return m;
}

std::string Vector::to_string() const {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < size(); ++i) {
    if (i) os << ", ";
    os << data_[i];
  }
  os << ']';
  return os.str();
}

Vector operator+(Vector a, const Vector& b) { return a += b; }
Vector operator-(Vector a, const Vector& b) { return a -= b; }
Vector operator*(double s, Vector v) { return v *= s; }
Vector operator*(Vector v, double s) { return v *= s; }

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ ? rows.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    CAPGPU_REQUIRE(r.size() == cols_, "ragged initializer for Matrix");
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::diag(const Vector& d) {
  Matrix m(d.size(), d.size());
  for (std::size_t i = 0; i < d.size(); ++i) m(i, i) = d[i];
  return m;
}

double& Matrix::operator()(std::size_t r, std::size_t c) {
  CAPGPU_ASSERT(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

double Matrix::operator()(std::size_t r, std::size_t c) const {
  CAPGPU_ASSERT(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

std::span<const double> Matrix::row(std::size_t r) const {
  CAPGPU_ASSERT(r < rows_);
  return {data_.data() + r * cols_, cols_};
}

std::span<double> Matrix::row(std::size_t r) {
  CAPGPU_ASSERT(r < rows_);
  return {data_.data() + r * cols_, cols_};
}

Matrix& Matrix::operator+=(const Matrix& o) {
  CAPGPU_ASSERT(rows_ == o.rows_ && cols_ == o.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += o.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& o) {
  CAPGPU_ASSERT(rows_ == o.rows_ && cols_ == o.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= o.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (auto& v : data_) v *= s;
  return *this;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Vector Matrix::operator*(const Vector& x) const {
  CAPGPU_ASSERT(cols_ == x.size());
  Vector y(rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    const double* row_ptr = data_.data() + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) acc += row_ptr[c] * x[c];
    y[r] = acc;
  }
  return y;
}

Matrix Matrix::operator*(const Matrix& o) const {
  CAPGPU_ASSERT(cols_ == o.rows_);
  Matrix out(rows_, o.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(r, k);
      if (a == 0.0) continue;
      for (std::size_t c = 0; c < o.cols_; ++c) out(r, c) += a * o(k, c);
    }
  }
  return out;
}

double Matrix::norm_fro() const {
  double acc = 0.0;
  for (double v : data_) acc += v * v;
  return std::sqrt(acc);
}

double Matrix::norm_inf() const {
  double m = 0.0;
  for (double v : data_) m = std::max(m, std::abs(v));
  return m;
}

std::string Matrix::to_string() const {
  std::ostringstream os;
  for (std::size_t r = 0; r < rows_; ++r) {
    os << (r == 0 ? "[" : " ");
    for (std::size_t c = 0; c < cols_; ++c) {
      if (c) os << ", ";
      os << (*this)(r, c);
    }
    os << (r + 1 == rows_ ? "]" : ";\n");
  }
  return os.str();
}

Matrix operator+(Matrix a, const Matrix& b) { return a += b; }
Matrix operator-(Matrix a, const Matrix& b) { return a -= b; }
Matrix operator*(double s, Matrix m) { return m *= s; }

bool approx_equal(const Matrix& a, const Matrix& b, double tol) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (std::size_t r = 0; r < a.rows(); ++r)
    for (std::size_t c = 0; c < a.cols(); ++c)
      if (std::abs(a(r, c) - b(r, c)) > tol) return false;
  return true;
}

bool approx_equal(const Vector& a, const Vector& b, double tol) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (std::abs(a[i] - b[i]) > tol) return false;
  return true;
}

}  // namespace capgpu::linalg
