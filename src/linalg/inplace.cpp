#include "linalg/inplace.hpp"

#include <cmath>
#include <utility>

#include "common/error.hpp"

namespace capgpu::linalg {

// Mirrors Lu::Lu (lu.cpp) statement for statement; only the addressing
// differs (explicit stride instead of Matrix::operator()).
void lu_factor_inplace(double* a, std::size_t n, std::size_t stride,
                       std::size_t* piv) {
  for (std::size_t i = 0; i < n; ++i) piv[i] = i;
  for (std::size_t k = 0; k < n; ++k) {
    std::size_t p = k;
    double best = std::abs(a[k * stride + k]);
    for (std::size_t i = k + 1; i < n; ++i) {
      const double v = std::abs(a[i * stride + k]);
      if (v > best) {
        best = v;
        p = i;
      }
    }
    if (best < 1e-13) {
      throw NumericalError("LU: matrix is singular to working precision");
    }
    if (p != k) {
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(a[p * stride + c], a[k * stride + c]);
      }
      std::swap(piv[p], piv[k]);
    }
    const double pivot = a[k * stride + k];
    for (std::size_t i = k + 1; i < n; ++i) {
      const double m = a[i * stride + k] / pivot;
      a[i * stride + k] = m;
      for (std::size_t c = k + 1; c < n; ++c) {
        a[i * stride + c] -= m * a[k * stride + c];
      }
    }
  }
}

// Mirrors Lu::solve (lu.cpp).
void lu_solve_inplace(const double* lu, std::size_t n, std::size_t stride,
                      const std::size_t* piv, const double* b, double* x) {
  for (std::size_t i = 0; i < n; ++i) x[i] = b[piv[i]];
  for (std::size_t i = 1; i < n; ++i) {
    double acc = x[i];
    for (std::size_t c = 0; c < i; ++c) acc -= lu[i * stride + c] * x[c];
    x[i] = acc;
  }
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = x[ii];
    for (std::size_t c = ii + 1; c < n; ++c) acc -= lu[ii * stride + c] * x[c];
    x[ii] = acc / lu[ii * stride + ii];
  }
}

// Mirrors Cholesky::Cholesky (cholesky.cpp), with the throw replaced by a
// false return so hot paths can reject without an exception.
bool cholesky_factor_inplace(const double* a, double* l, std::size_t n,
                             std::size_t stride) {
  for (std::size_t j = 0; j < n; ++j) {
    double d = a[j * stride + j];
    for (std::size_t k = 0; k < j; ++k) d -= l[j * stride + k] * l[j * stride + k];
    if (d <= 0.0) return false;
    l[j * stride + j] = std::sqrt(d);
    for (std::size_t i = j + 1; i < n; ++i) {
      double s = a[i * stride + j];
      for (std::size_t k = 0; k < j; ++k) s -= l[i * stride + k] * l[j * stride + k];
      l[i * stride + j] = s / l[j * stride + j];
    }
  }
  return true;
}

}  // namespace capgpu::linalg
