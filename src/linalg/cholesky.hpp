// Cholesky factorisation for symmetric positive-definite systems.
//
// The MPC Hessian H = S^T Q S + R is SPD by construction, so the QP solver's
// KKT systems are solved with Cholesky where possible.
#pragma once

#include "linalg/matrix.hpp"

namespace capgpu::linalg {

/// A = L L^T for symmetric positive-definite A.
/// Throws NumericalError when A is not (numerically) positive definite.
class Cholesky {
 public:
  explicit Cholesky(const Matrix& a);

  [[nodiscard]] Vector solve(const Vector& b) const;
  [[nodiscard]] const Matrix& l() const { return l_; }

 private:
  Matrix l_;
};

/// True if `a` is symmetric within `tol`.
[[nodiscard]] bool is_symmetric(const Matrix& a, double tol = 1e-9);

}  // namespace capgpu::linalg
