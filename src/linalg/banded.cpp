#include "linalg/banded.hpp"

#include <cmath>

namespace capgpu::linalg {

namespace {

// Band accessor: entry (i, j) with i - bw <= j <= i.
inline std::size_t slot(std::size_t i, std::size_t j, std::size_t bw) {
  return i * (bw + 1) + (j + bw - i);
}

}  // namespace

std::size_t lower_bandwidth(const double* a, std::size_t n,
                            std::size_t stride) {
  std::size_t bw = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j + bw < i; ++j) {  // only below the current band
      if (a[i * stride + j] != 0.0) bw = i - j;
    }
  }
  return bw;
}

void pack_lower_band(const double* a, std::size_t n, std::size_t stride,
                     std::size_t bw, double* ab) {
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = 0; k <= bw; ++k) {
      // Slot k holds column i - bw + k; slots left of column 0 stay zero.
      ab[i * (bw + 1) + k] =
          i + k >= bw ? a[i * stride + (i + k - bw)] : 0.0;
    }
  }
}

// Restriction of the cholesky_factor_inplace recurrence to the band: for
// in-band (i, j) the dense inner sum over k < j only has nonzero terms for
// k >= i - bw (L(i, k) is exactly zero further left), so skipping them
// changes no bits on exactly-banded inputs.
bool banded_cholesky_factor(const double* ab, double* lb, std::size_t n,
                            std::size_t bw) {
  for (std::size_t j = 0; j < n; ++j) {
    const std::size_t k0 = j >= bw ? j - bw : 0;
    double d = ab[slot(j, j, bw)];
    for (std::size_t k = k0; k < j; ++k) {
      const double ljk = lb[slot(j, k, bw)];
      d -= ljk * ljk;
    }
    if (d <= 0.0) return false;
    lb[slot(j, j, bw)] = std::sqrt(d);
    const std::size_t imax = std::min(j + bw, n - 1);
    for (std::size_t i = j + 1; i <= imax; ++i) {
      // Both L(i, k) and L(j, k) must be in band: k >= i - bw dominates.
      const std::size_t ki = i >= bw ? i - bw : 0;
      double s = ab[slot(i, j, bw)];
      for (std::size_t k = ki; k < j; ++k) {
        s -= lb[slot(i, k, bw)] * lb[slot(j, k, bw)];
      }
      lb[slot(i, j, bw)] = s / lb[slot(j, j, bw)];
    }
  }
  return true;
}

void banded_cholesky_solve(const double* lb, std::size_t n, std::size_t bw,
                           const double* b, double* x) {
  // Forward: L y = b.
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t k0 = i >= bw ? i - bw : 0;
    double acc = b[i];
    for (std::size_t k = k0; k < i; ++k) acc -= lb[slot(i, k, bw)] * x[k];
    x[i] = acc / lb[slot(i, i, bw)];
  }
  // Backward: L^T x = y; column i of L^T is row entries L(c, i), c <= i + bw.
  for (std::size_t ii = n; ii-- > 0;) {
    const std::size_t cmax = std::min(ii + bw, n - 1);
    double acc = x[ii];
    for (std::size_t c = ii + 1; c <= cmax; ++c) {
      acc -= lb[slot(c, ii, bw)] * x[c];
    }
    x[ii] = acc / lb[slot(ii, ii, bw)];
  }
}

}  // namespace capgpu::linalg
