// LU decomposition with partial pivoting, plus solve / inverse / determinant.
#pragma once

#include <vector>

#include "linalg/matrix.hpp"

namespace capgpu::linalg {

/// PA = LU factorisation of a square matrix with partial (row) pivoting.
/// Throws NumericalError if the matrix is singular to working precision.
class Lu {
 public:
  explicit Lu(const Matrix& a);

  /// Solves A x = b.
  [[nodiscard]] Vector solve(const Vector& b) const;
  /// Solves A X = B column-by-column.
  [[nodiscard]] Matrix solve(const Matrix& b) const;
  /// det(A), including the pivot sign.
  [[nodiscard]] double determinant() const;

  [[nodiscard]] std::size_t dim() const { return lu_.rows(); }

 private:
  Matrix lu_;                    // packed L (unit diag) and U
  std::vector<std::size_t> piv_; // row permutation
  int pivot_sign_{1};
};

/// Convenience: solve A x = b in one call.
[[nodiscard]] Vector lu_solve(const Matrix& a, const Vector& b);

/// Inverse of a square matrix (prefer Lu::solve where possible).
[[nodiscard]] Matrix inverse(const Matrix& a);

}  // namespace capgpu::linalg
