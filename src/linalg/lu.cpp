#include "linalg/lu.hpp"

#include <cmath>

#include "common/error.hpp"

namespace capgpu::linalg {

Lu::Lu(const Matrix& a) : lu_(a) {
  CAPGPU_REQUIRE(a.rows() == a.cols(), "LU requires a square matrix");
  const std::size_t n = a.rows();
  piv_.resize(n);
  for (std::size_t i = 0; i < n; ++i) piv_[i] = i;

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivot: largest |entry| in column k at or below the diagonal.
    std::size_t p = k;
    double best = std::abs(lu_(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      const double v = std::abs(lu_(i, k));
      if (v > best) {
        best = v;
        p = i;
      }
    }
    if (best < 1e-13) {
      throw NumericalError("LU: matrix is singular to working precision");
    }
    if (p != k) {
      for (std::size_t c = 0; c < n; ++c) std::swap(lu_(p, c), lu_(k, c));
      std::swap(piv_[p], piv_[k]);
      pivot_sign_ = -pivot_sign_;
    }
    const double pivot = lu_(k, k);
    for (std::size_t i = k + 1; i < n; ++i) {
      const double m = lu_(i, k) / pivot;
      lu_(i, k) = m;
      for (std::size_t c = k + 1; c < n; ++c) lu_(i, c) -= m * lu_(k, c);
    }
  }
}

Vector Lu::solve(const Vector& b) const {
  const std::size_t n = dim();
  CAPGPU_REQUIRE(b.size() == n, "LU solve: dimension mismatch");
  Vector x(n);
  // Apply permutation, then forward substitution with unit-lower L.
  for (std::size_t i = 0; i < n; ++i) x[i] = b[piv_[i]];
  for (std::size_t i = 1; i < n; ++i) {
    double acc = x[i];
    for (std::size_t c = 0; c < i; ++c) acc -= lu_(i, c) * x[c];
    x[i] = acc;
  }
  // Back substitution with U.
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = x[ii];
    for (std::size_t c = ii + 1; c < n; ++c) acc -= lu_(ii, c) * x[c];
    x[ii] = acc / lu_(ii, ii);
  }
  return x;
}

Matrix Lu::solve(const Matrix& b) const {
  CAPGPU_REQUIRE(b.rows() == dim(), "LU solve: dimension mismatch");
  Matrix x(b.rows(), b.cols());
  for (std::size_t c = 0; c < b.cols(); ++c) {
    Vector col(b.rows());
    for (std::size_t r = 0; r < b.rows(); ++r) col[r] = b(r, c);
    const Vector sol = solve(col);
    for (std::size_t r = 0; r < b.rows(); ++r) x(r, c) = sol[r];
  }
  return x;
}

double Lu::determinant() const {
  double det = pivot_sign_;
  for (std::size_t i = 0; i < dim(); ++i) det *= lu_(i, i);
  return det;
}

Vector lu_solve(const Matrix& a, const Vector& b) { return Lu(a).solve(b); }

Matrix inverse(const Matrix& a) {
  return Lu(a).solve(Matrix::identity(a.rows()));
}

}  // namespace capgpu::linalg
