// Small dense linear algebra.
//
// CapGPU's control problems are tiny (a server has one CPU domain and up to
// ~16 GPUs; MPC decision vectors have a few dozen entries), so this module
// favours clarity and numerical robustness over blocking/vectorisation.
// Storage is row-major contiguous.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

namespace capgpu::linalg {

/// Dense column vector of doubles.
class Vector {
 public:
  Vector() = default;
  explicit Vector(std::size_t n, double fill = 0.0) : data_(n, fill) {}
  Vector(std::initializer_list<double> values) : data_(values) {}
  explicit Vector(std::vector<double> values) : data_(std::move(values)) {}

  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  double& operator[](std::size_t i);
  double operator[](std::size_t i) const;

  [[nodiscard]] std::span<const double> span() const { return data_; }
  [[nodiscard]] std::span<double> span() { return data_; }
  [[nodiscard]] const std::vector<double>& data() const { return data_; }

  Vector& operator+=(const Vector& o);
  Vector& operator-=(const Vector& o);
  Vector& operator*=(double s);

  [[nodiscard]] double dot(const Vector& o) const;
  [[nodiscard]] double norm2() const;      ///< Euclidean norm.
  [[nodiscard]] double norm_inf() const;   ///< Max absolute entry.

  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<double> data_;
};

[[nodiscard]] Vector operator+(Vector a, const Vector& b);
[[nodiscard]] Vector operator-(Vector a, const Vector& b);
[[nodiscard]] Vector operator*(double s, Vector v);
[[nodiscard]] Vector operator*(Vector v, double s);

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  /// Builds from nested initializer lists; all rows must have equal length.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  [[nodiscard]] static Matrix identity(std::size_t n);
  /// Diagonal matrix from the given vector.
  [[nodiscard]] static Matrix diag(const Vector& d);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c);
  double operator()(std::size_t r, std::size_t c) const;

  [[nodiscard]] std::span<const double> row(std::size_t r) const;
  [[nodiscard]] std::span<double> row(std::size_t r);

  Matrix& operator+=(const Matrix& o);
  Matrix& operator-=(const Matrix& o);
  Matrix& operator*=(double s);

  [[nodiscard]] Matrix transposed() const;

  /// Matrix-vector product. Requires cols() == x.size().
  [[nodiscard]] Vector operator*(const Vector& x) const;
  /// Matrix-matrix product. Requires cols() == o.rows().
  [[nodiscard]] Matrix operator*(const Matrix& o) const;

  /// Frobenius norm.
  [[nodiscard]] double norm_fro() const;
  /// Max absolute entry.
  [[nodiscard]] double norm_inf() const;

  [[nodiscard]] std::string to_string() const;

 private:
  std::size_t rows_{0};
  std::size_t cols_{0};
  std::vector<double> data_;
};

[[nodiscard]] Matrix operator+(Matrix a, const Matrix& b);
[[nodiscard]] Matrix operator-(Matrix a, const Matrix& b);
[[nodiscard]] Matrix operator*(double s, Matrix m);

/// True when every pairwise entry differs by at most `tol`.
[[nodiscard]] bool approx_equal(const Matrix& a, const Matrix& b, double tol);
[[nodiscard]] bool approx_equal(const Vector& a, const Vector& b, double tol);

}  // namespace capgpu::linalg
