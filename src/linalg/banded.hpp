// Banded Cholesky in compact band storage.
//
// The MPC control penalty yields, in device-major variable order, a
// block-diagonal (hence banded) SPD matrix whose bandwidth is set by the
// control horizon, not the problem dimension. Factoring it in band form
// costs O(n * bw^2) instead of the dense O(n^3), which is what makes the
// structured control-solve tier ~linear in horizon length.
//
// Storage: a lower band with bandwidth `bw` keeps row i's in-band entries
// A(i, i-bw..i) at ab[i*(bw+1) + (col - i + bw)]; slots that fall left of
// column 0 are ignored. The factor uses the same layout.
//
// The inner loops run the identical multiply/subtract recurrence as
// cholesky_factor_inplace restricted to in-band indices. For an input whose
// out-of-band entries are exactly zero the dense recurrence produces exact
// zeros there too (every excluded term is a multiply by 0.0), so the banded
// factor and solve agree bit for bit with the dense path on exactly-banded
// matrices — the property the structured-tier tests pin.
#pragma once

#include <cstddef>

namespace capgpu::linalg {

/// Number of doubles a band of bandwidth `bw` over an n x n matrix needs.
[[nodiscard]] constexpr std::size_t band_size(std::size_t n, std::size_t bw) {
  return n * (bw + 1);
}

/// Smallest `bw` such that a(i, j) == 0 whenever |i - j| > bw, scanning the
/// lower triangle of the leading n x n block (row-major, leading stride
/// `stride`). A is assumed symmetric.
[[nodiscard]] std::size_t lower_bandwidth(const double* a, std::size_t n,
                                          std::size_t stride);

/// Copies the lower band of the dense leading n x n block of `a` into
/// compact band storage `ab` (band_size(n, bw) doubles).
void pack_lower_band(const double* a, std::size_t n, std::size_t stride,
                     std::size_t bw, double* ab);

/// Cholesky A = L L^T of a banded SPD matrix given in compact band storage
/// `ab`; the factor lands in `lb` (same layout, may alias `ab`). Returns
/// false when the matrix is not positive definite, mirroring
/// cholesky_factor_inplace.
[[nodiscard]] bool banded_cholesky_factor(const double* ab, double* lb,
                                          std::size_t n, std::size_t bw);

/// Solves A x = b from a factor produced by banded_cholesky_factor
/// (forward then transposed-back substitution). `b` and `x` must not alias.
void banded_cholesky_solve(const double* lb, std::size_t n, std::size_t bw,
                           const double* b, double* x);

}  // namespace capgpu::linalg
