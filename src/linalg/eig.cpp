#include "linalg/eig.hpp"

#include <cmath>

#include "common/error.hpp"

namespace capgpu::linalg {

namespace {

/// Reduces `a` to upper Hessenberg form in place by Householder similarity
/// transforms (eigenvalues are preserved).
void to_hessenberg(Matrix& a) {
  const std::size_t n = a.rows();
  if (n < 3) return;
  for (std::size_t k = 0; k + 2 < n; ++k) {
    double scale = 0.0;
    for (std::size_t i = k + 1; i < n; ++i) scale += std::abs(a(i, k));
    if (scale == 0.0) continue;

    // Build the Householder vector v for column k below the subdiagonal.
    std::vector<double> v(n, 0.0);
    double h = 0.0;
    for (std::size_t i = k + 1; i < n; ++i) {
      v[i] = a(i, k) / scale;
      h += v[i] * v[i];
    }
    double g = std::sqrt(h);
    if (v[k + 1] > 0.0) g = -g;
    h -= v[k + 1] * g;
    v[k + 1] -= g;
    if (h == 0.0) continue;

    // A <- (I - v v^T / h) A (I - v v^T / h)
    for (std::size_t j = 0; j < n; ++j) {  // left multiply
      double f = 0.0;
      for (std::size_t i = k + 1; i < n; ++i) f += v[i] * a(i, j);
      f /= h;
      for (std::size_t i = k + 1; i < n; ++i) a(i, j) -= f * v[i];
    }
    for (std::size_t i = 0; i < n; ++i) {  // right multiply
      double f = 0.0;
      for (std::size_t j = k + 1; j < n; ++j) f += a(i, j) * v[j];
      f /= h;
      for (std::size_t j = k + 1; j < n; ++j) a(i, j) -= f * v[j];
    }
    a(k + 1, k) = scale * g;
    for (std::size_t i = k + 2; i < n; ++i) a(i, k) = 0.0;
  }
}

/// Francis double-shift QR on an upper Hessenberg matrix; returns the
/// eigenvalues. Classic HQR scheme (cf. Golub & Van Loan / EISPACK hqr).
std::vector<std::complex<double>> hqr(Matrix& a) {
  const std::size_t size = a.rows();
  std::vector<std::complex<double>> eig;
  eig.reserve(size);
  if (size == 0) return eig;

  // Overall scale for deflation tests.
  double anorm = 0.0;
  for (std::size_t i = 0; i < size; ++i)
    for (std::size_t j = (i > 0 ? i - 1 : 0); j < size; ++j)
      anorm += std::abs(a(i, j));
  if (anorm == 0.0) anorm = 1.0;

  long n = static_cast<long>(size) - 1;  // index of the active trailing block
  double t = 0.0;                        // accumulated exceptional shifts
  while (n >= 0) {
    int its = 0;
    long l;
    for (;;) {
      // Find a small subdiagonal element to split the matrix.
      for (l = n; l >= 1; --l) {
        const double s =
            std::abs(a(l - 1, l - 1)) + std::abs(a(l, l));
        const double scale = (s == 0.0) ? anorm : s;
        if (std::abs(a(l, l - 1)) <= 1e-15 * scale) {
          a(l, l - 1) = 0.0;
          break;
        }
      }
      double x = a(n, n);
      if (l == n) {  // one real eigenvalue deflates
        eig.emplace_back(x + t, 0.0);
        --n;
        break;
      }
      double y = a(n - 1, n - 1);
      double w = a(n, n - 1) * a(n - 1, n);
      if (l == n - 1) {  // a 2x2 block deflates
        const double p2 = 0.5 * (y - x);
        const double q2 = p2 * p2 + w;
        const double z2 = std::sqrt(std::abs(q2));
        x += t;
        if (q2 >= 0.0) {  // two real roots
          const double z = p2 + (p2 >= 0.0 ? z2 : -z2);
          eig.emplace_back(x + z, 0.0);
          eig.emplace_back(z != 0.0 ? x - w / z : x + z, 0.0);
        } else {  // complex conjugate pair
          eig.emplace_back(x + p2, z2);
          eig.emplace_back(x + p2, -z2);
        }
        n -= 2;
        break;
      }
      // No deflation yet: perform a double-shift QR sweep.
      if (its == 60) {
        throw NumericalError("eigenvalues: QR iteration did not converge");
      }
      double p = 0.0, q = 0.0, z = 0.0, r = 0.0, s = 0.0;
      if (its == 10 || its == 20) {  // exceptional shift
        t += x;
        for (long i = 0; i <= n; ++i) a(i, i) -= x;
        s = std::abs(a(n, n - 1)) + std::abs(a(n - 1, n - 2));
        x = y = 0.75 * s;
        w = -0.4375 * s * s;
      }
      ++its;
      long m;
      for (m = n - 2; m >= l; --m) {  // look for two consecutive small subdiagonals
        z = a(m, m);
        r = x - z;
        s = y - z;
        p = (r * s - w) / a(m + 1, m) + a(m, m + 1);
        q = a(m + 1, m + 1) - z - r - s;
        r = a(m + 2, m + 1);
        s = std::abs(p) + std::abs(q) + std::abs(r);
        p /= s;
        q /= s;
        r /= s;
        if (m == l) break;
        const double u =
            std::abs(a(m, m - 1)) * (std::abs(q) + std::abs(r));
        const double v = std::abs(p) * (std::abs(a(m - 1, m - 1)) +
                                        std::abs(z) + std::abs(a(m + 1, m + 1)));
        if (u <= 1e-15 * v) break;
      }
      for (long i = m + 2; i <= n; ++i) {
        a(i, i - 2) = 0.0;
        if (i != m + 2) a(i, i - 3) = 0.0;
      }
      for (long k = m; k <= n - 1; ++k) {  // the QR sweep itself
        if (k != m) {
          p = a(k, k - 1);
          q = a(k + 1, k - 1);
          r = (k != n - 1) ? a(k + 2, k - 1) : 0.0;
          x = std::abs(p) + std::abs(q) + std::abs(r);
          if (x != 0.0) {
            p /= x;
            q /= x;
            r /= x;
          }
        }
        s = std::sqrt(p * p + q * q + r * r);
        if (p < 0.0) s = -s;
        if (s == 0.0) continue;
        if (k == m) {
          if (l != m) a(k, k - 1) = -a(k, k - 1);
        } else {
          a(k, k - 1) = -s * x;
        }
        p += s;
        x = p / s;
        y = q / s;
        z = r / s;
        q /= p;
        r /= p;
        for (long j = k; j <= n; ++j) {  // row modification
          p = a(k, j) + q * a(k + 1, j);
          if (k != n - 1) {
            p += r * a(k + 2, j);
            a(k + 2, j) -= p * z;
          }
          a(k + 1, j) -= p * y;
          a(k, j) -= p * x;
        }
        const long mmin = (n < k + 3) ? n : k + 3;
        for (long i = l; i <= mmin; ++i) {  // column modification
          p = x * a(i, k) + y * a(i, k + 1);
          if (k != n - 1) {
            p += z * a(i, k + 2);
            a(i, k + 2) -= p * r;
          }
          a(i, k + 1) -= p * q;
          a(i, k) -= p;
        }
      }
    }
  }
  return eig;
}

}  // namespace

std::vector<std::complex<double>> eigenvalues(const Matrix& a) {
  CAPGPU_REQUIRE(a.rows() == a.cols(), "eigenvalues: matrix must be square");
  Matrix h = a;
  to_hessenberg(h);
  return hqr(h);
}

double spectral_radius(const Matrix& a) {
  double rho = 0.0;
  for (const auto& lambda : eigenvalues(a)) rho = std::max(rho, std::abs(lambda));
  return rho;
}

bool is_schur_stable(const Matrix& a, double tol) {
  return spectral_radius(a) < 1.0 - tol;
}

}  // namespace capgpu::linalg
