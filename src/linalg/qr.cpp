#include "linalg/qr.hpp"

#include <cmath>

#include "common/error.hpp"

namespace capgpu::linalg {

Qr::Qr(const Matrix& a) : qr_(a), householder_(a.cols()) {
  CAPGPU_REQUIRE(a.rows() >= a.cols(), "QR requires rows >= cols");
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();

  for (std::size_t k = 0; k < n; ++k) {
    // Norm of the k-th column below (and including) the diagonal.
    double norm = 0.0;
    for (std::size_t i = k; i < m; ++i) norm = std::hypot(norm, qr_(i, k));
    if (norm != 0.0) {
      if (qr_(k, k) < 0.0) norm = -norm;
      for (std::size_t i = k; i < m; ++i) qr_(i, k) /= norm;
      qr_(k, k) += 1.0;
      // Apply the reflector to the remaining columns.
      for (std::size_t j = k + 1; j < n; ++j) {
        double s = 0.0;
        for (std::size_t i = k; i < m; ++i) s += qr_(i, k) * qr_(i, j);
        s = -s / qr_(k, k);
        for (std::size_t i = k; i < m; ++i) qr_(i, j) += s * qr_(i, k);
      }
    }
    householder_[k] = -norm;
  }
}

bool Qr::full_rank(double tol) const {
  for (std::size_t k = 0; k < qr_.cols(); ++k) {
    if (std::abs(householder_[k]) <= tol) return false;
  }
  return true;
}

Matrix Qr::r() const {
  const std::size_t n = qr_.cols();
  Matrix out(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    out(i, i) = householder_[i];
    for (std::size_t j = i + 1; j < n; ++j) out(i, j) = qr_(i, j);
  }
  return out;
}

Vector Qr::solve(const Vector& b) const {
  const std::size_t m = qr_.rows();
  const std::size_t n = qr_.cols();
  CAPGPU_REQUIRE(b.size() == m, "QR solve: dimension mismatch");
  if (!full_rank()) {
    throw NumericalError("QR: matrix is rank deficient");
  }
  Vector y = b;
  // Apply Q^T to b.
  for (std::size_t k = 0; k < n; ++k) {
    if (qr_(k, k) == 0.0) continue;
    double s = 0.0;
    for (std::size_t i = k; i < m; ++i) s += qr_(i, k) * y[i];
    s = -s / qr_(k, k);
    for (std::size_t i = k; i < m; ++i) y[i] += s * qr_(i, k);
  }
  // Back substitution with R.
  Vector x(n);
  for (std::size_t kk = n; kk-- > 0;) {
    double acc = y[kk];
    for (std::size_t j = kk + 1; j < n; ++j) acc -= qr_(kk, j) * x[j];
    x[kk] = acc / householder_[kk];
  }
  return x;
}

Vector lstsq(const Matrix& a, const Vector& b) { return Qr(a).solve(b); }

FitResult lstsq_fit(const Matrix& a, const Vector& b) {
  FitResult fit;
  fit.coefficients = lstsq(a, b);
  const Vector pred = a * fit.coefficients;

  double mean = 0.0;
  for (std::size_t i = 0; i < b.size(); ++i) mean += b[i];
  mean /= static_cast<double>(b.size());

  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (std::size_t i = 0; i < b.size(); ++i) {
    ss_res += (b[i] - pred[i]) * (b[i] - pred[i]);
    ss_tot += (b[i] - mean) * (b[i] - mean);
  }
  fit.rmse = std::sqrt(ss_res / static_cast<double>(b.size()));
  fit.r_squared = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

}  // namespace capgpu::linalg
