// Householder QR factorisation and linear least squares.
//
// Least squares is the workhorse of CapGPU's system identification (paper
// Sec 4.2): we fit the affine power model p = A·F + C from frequency sweeps.
#pragma once

#include "linalg/matrix.hpp"

namespace capgpu::linalg {

/// Householder QR of an m-by-n matrix with m >= n.
class Qr {
 public:
  explicit Qr(const Matrix& a);

  /// Minimises ||A x - b||_2. Throws NumericalError when A is rank deficient.
  [[nodiscard]] Vector solve(const Vector& b) const;

  /// The upper-triangular factor R (n-by-n).
  [[nodiscard]] Matrix r() const;

  /// True if all diagonal entries of R exceed `tol` in magnitude.
  [[nodiscard]] bool full_rank(double tol = 1e-10) const;

 private:
  Matrix qr_;           // packed Householder vectors + R
  Vector householder_;  // leading coefficients of the reflectors
};

/// One-shot least squares: argmin_x ||A x - b||_2.
[[nodiscard]] Vector lstsq(const Matrix& a, const Vector& b);

/// Result of a least-squares fit together with its goodness of fit.
struct FitResult {
  Vector coefficients;
  double r_squared{0.0};   ///< 1 - SS_res / SS_tot of the fit.
  double rmse{0.0};        ///< Root mean squared residual.
};

/// Least squares with R^2 / RMSE diagnostics (against the mean-only model).
[[nodiscard]] FitResult lstsq_fit(const Matrix& a, const Vector& b);

}  // namespace capgpu::linalg
