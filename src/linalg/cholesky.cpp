#include "linalg/cholesky.hpp"

#include <cmath>

#include "common/error.hpp"

namespace capgpu::linalg {

Cholesky::Cholesky(const Matrix& a) : l_(a.rows(), a.cols()) {
  CAPGPU_REQUIRE(a.rows() == a.cols(), "Cholesky requires a square matrix");
  const std::size_t n = a.rows();
  for (std::size_t j = 0; j < n; ++j) {
    double d = a(j, j);
    for (std::size_t k = 0; k < j; ++k) d -= l_(j, k) * l_(j, k);
    if (d <= 0.0) {
      throw NumericalError("Cholesky: matrix is not positive definite");
    }
    l_(j, j) = std::sqrt(d);
    for (std::size_t i = j + 1; i < n; ++i) {
      double s = a(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= l_(i, k) * l_(j, k);
      l_(i, j) = s / l_(j, j);
    }
  }
}

Vector Cholesky::solve(const Vector& b) const {
  const std::size_t n = l_.rows();
  CAPGPU_REQUIRE(b.size() == n, "Cholesky solve: dimension mismatch");
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = b[i];
    for (std::size_t k = 0; k < i; ++k) acc -= l_(i, k) * y[k];
    y[i] = acc / l_(i, i);
  }
  Vector x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) acc -= l_(k, ii) * x[k];
    x[ii] = acc / l_(ii, ii);
  }
  return x;
}

bool is_symmetric(const Matrix& a, double tol) {
  if (a.rows() != a.cols()) return false;
  for (std::size_t r = 0; r < a.rows(); ++r)
    for (std::size_t c = r + 1; c < a.cols(); ++c)
      if (std::abs(a(r, c) - a(c, r)) > tol) return false;
  return true;
}

}  // namespace capgpu::linalg
