// Rack-level power coordination over CapGPU-capped servers.
//
// Data centers enforce caps on racks and rows, not just servers (the
// paper's motivation; Meta's Dynamo and Google's medium-voltage capping
// work at this scope). The coordinator periodically re-divides a rack
// budget across registered servers and pushes per-server set points into
// their CapGPU controllers. Three policies are provided:
//
//   kEqual               — static equal shares (the naive strawman),
//   kDemandProportional  — spare budget follows each server's demand
//                          signal (e.g. GPU throughput deficit),
//   kPriorityAware       — higher-priority servers fill to their maximum
//                          first (cf. priority-aware capping at Google).
//
// The coordinator is transport-agnostic: servers register std::function
// endpoints, so the same code drives simulated rigs or a fleet RPC layer.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "rack/allocation.hpp"
#include "telemetry/metrics.hpp"

namespace capgpu::rack {

/// Allocation policy.
enum class RackPolicy { kEqual, kDemandProportional, kPriorityAware };

/// Per-rig health as the coordinator sees it. Ordered by severity: the
/// numeric value is exported on the capgpu_rack_rig_health gauge and a
/// larger value always means "worse".
enum class RigHealth : int {
  kHealthy = 0,   ///< reporting fresh data, tracking its budget
  kDegraded = 1,  ///< suspicious (stale-ish reports or residual anomaly)
  kFailsafe = 2,  ///< the rig's own governor reports degradation
  kDead = 3,      ///< no fresh report past the dead watchdog deadline
};

/// Lower-case state name ("healthy" / "degraded" / "failsafe" / "dead").
[[nodiscard]] const char* rig_health_name(RigHealth health);

/// Health-management knobs (see docs/fault_model.md for the state
/// machine). Disabled by default so an unconfigured coordinator behaves
/// exactly as before health management existed.
struct RigHealthConfig {
  bool enabled{false};
  /// Demote to degraded once a rig's last fresh report is older than this.
  double stale_report_s{12.0};
  /// Demote to dead once the last fresh report is older than this.
  double dead_after_s{40.0};
  /// Demote to degraded when the rig's |measured - budget| tracking
  /// residual exceeds this (flight-recorder-style anomaly at rack scope).
  double residual_anomaly_watts{150.0};
  /// Consecutive clean rebalances required before a quarantined or
  /// degraded rig is promoted back to healthy (hysteresis: a flapping rig
  /// cannot oscillate the allocation).
  std::size_t reintegrate_rebalances{3};
};

/// Checks the config's domain; throws InvalidArgument naming the field.
[[nodiscard]] RigHealthConfig validated(RigHealthConfig config);

/// One health-state change, kept in a public log so chaos campaigns can
/// score detection latency and quarantine dwell without scraping metrics.
struct RigHealthTransition {
  std::string server;
  double time_s{0.0};
  RigHealth from{RigHealth::kHealthy};
  RigHealth to{RigHealth::kHealthy};
  std::string cause;  ///< stale_report / dead_watchdog / failsafe_reported /
                      ///< residual_anomaly / reintegrated
};

/// Registration record of one server.
struct ServerEndpoint {
  std::string name;
  /// Pushes a new power budget into the server's capping controller.
  std::function<void(Watts)> set_budget;
  /// Last measured server power (for rack telemetry).
  std::function<double()> measured_power;
  /// Demand signal in [0, 1]; larger = wants more budget. Used by
  /// kDemandProportional (a good choice: mean GPU throughput deficit).
  std::function<double()> demand;
  /// Priority for kPriorityAware (larger = more important).
  double priority{1.0};
  /// Per-server budget bounds (min protects against starvation; max is
  /// the server's feasible ceiling).
  AllocationBounds bounds{600.0, 1300.0};

  // --- optional health signals (all may be null; a missing signal simply
  // --- never votes against the rig) ---
  /// Seconds since the rig last produced an accepted-fresh power reading
  /// (core::FailSafeGovernor::seconds_since_fresh). Feeds the stale-report
  /// and dead watchdogs.
  std::function<double()> report_age;
  /// The rig's own FailSafeState as int (0 nominal / 1 degraded /
  /// 2 recovering); -1 for an unhardened loop.
  std::function<int()> failsafe_state;
  /// |measured - budget| tracking residual in watts (anomaly signal).
  std::function<double()> power_residual;
  /// SLO error-budget burn signal, >= 0 (e.g. the fast-window burn rate).
  /// Healthy rigs with burning SLOs attract the budget drained away from
  /// quarantined rigs.
  std::function<double()> slo_burn;
};

/// The rack budget divider.
class RackCoordinator {
 public:
  /// `demand_smoothing` is the EMA factor applied to each server's demand
  /// signal across rebalances (1 = use raw samples). Budgets feed back
  /// into demand — a server granted more budget clocks up and its
  /// headroom-based demand falls — so an unsmoothed loop can bang-bang
  /// between allocations.
  RackCoordinator(Watts rack_budget, RackPolicy policy,
                  double demand_smoothing = 0.3);

  /// Registers a server. Throws InvalidArgument at registration time — not
  /// on the first rebalance — for a missing set_budget / measured_power
  /// endpoint, an empty or duplicate name, a non-positive priority, or
  /// budget bounds outside 0 < min <= max.
  void add_server(ServerEndpoint endpoint);
  [[nodiscard]] std::size_t server_count() const { return servers_.size(); }

  /// Replaces server `i`'s budget bounds (registration order). The fleet
  /// cascade uses this to push feed-degradation ceilings — a browned-out
  /// PDU lowers its rigs' deliverable max — before each rebalance. Throws
  /// InvalidArgument for an out-of-range index or bounds outside
  /// 0 < min <= max.
  void set_server_bounds(std::size_t i, AllocationBounds bounds);
  [[nodiscard]] const AllocationBounds& server_bounds(std::size_t i) const;

  void set_rack_budget(Watts budget);
  [[nodiscard]] Watts rack_budget() const { return rack_budget_; }
  void set_policy(RackPolicy policy) { policy_ = policy; }
  [[nodiscard]] RackPolicy policy() const { return policy_; }

  /// Enables / reconfigures health management (validates the config).
  void set_health_config(RigHealthConfig config);
  [[nodiscard]] const RigHealthConfig& health_config() const {
    return health_config_;
  }

  /// Recomputes per-server budgets from the current demand signals and
  /// pushes them to every server. Returns the budgets, in registration
  /// order. The no-argument overload uses the rebalance count as the
  /// clock; pass the sim time explicitly when health management's
  /// second-denominated watchdogs should mean what they say.
  std::vector<double> rebalance();
  std::vector<double> rebalance(double now);

  /// Health state of server `i` (registration order). kHealthy for every
  /// rig while health management is disabled.
  [[nodiscard]] RigHealth health(std::size_t i) const;

  /// Every health-state change so far, in occurrence order.
  [[nodiscard]] const std::vector<RigHealthTransition>& health_log() const {
    return health_log_;
  }

  /// Budget currently pinned to quarantined (failsafe/dead) rigs at their
  /// guaranteed minimum, as of the latest rebalance.
  [[nodiscard]] double quarantined_budget() const {
    return quarantined_budget_w_;
  }

  /// Budgets from the latest rebalance (empty before the first call).
  [[nodiscard]] const std::vector<double>& budgets() const { return budgets_; }

  /// Sum of the servers' measured power right now.
  [[nodiscard]] double total_power() const;

  /// True when the guaranteed minima alone exceed the rack budget — the
  /// rack is oversubscribed beyond what capping can absorb and load must
  /// be shed (paper Sec 4.4's infeasibility caveat, at rack scope).
  [[nodiscard]] bool oversubscribed() const;

  /// Smoothed demand values from the latest rebalance (diagnostics).
  [[nodiscard]] const std::vector<double>& smoothed_demand() const {
    return smoothed_demand_;
  }

 private:
  /// Per-rig health bookkeeping (parallel to servers_).
  struct RigHealthState {
    RigHealth state{RigHealth::kHealthy};
    std::size_t clean_streak{0};
    telemetry::Gauge* gauge{nullptr};
  };

  /// One rebalance's health sweep: demote immediately on a bad signal,
  /// promote back to healthy only after the hysteresis streak.
  void update_health(double now);
  void transition(std::size_t i, double now, RigHealth to, const char* cause);

  Watts rack_budget_;
  RackPolicy policy_;
  double demand_smoothing_;
  RigHealthConfig health_config_;
  std::vector<ServerEndpoint> servers_;
  std::vector<double> budgets_;
  std::vector<double> smoothed_demand_;
  std::vector<RigHealthState> rig_health_;
  std::vector<RigHealthTransition> health_log_;
  double quarantined_budget_w_{0.0};
  double auto_clock_{0.0};  ///< no-arg rebalance() pseudo-time

  // Observability: rebalance counter plus per-server budget/demand gauges
  // {server=<name>}; each rebalance is an instant trace event.
  telemetry::Counter* rebalances_metric_{nullptr};
  telemetry::Gauge* quarantined_metric_{nullptr};
  std::vector<telemetry::Gauge*> budget_metrics_;
  std::vector<telemetry::Gauge*> demand_metrics_;
  int trace_tid_{0};
};

}  // namespace capgpu::rack
