// Rack-level power coordination over CapGPU-capped servers.
//
// Data centers enforce caps on racks and rows, not just servers (the
// paper's motivation; Meta's Dynamo and Google's medium-voltage capping
// work at this scope). The coordinator periodically re-divides a rack
// budget across registered servers and pushes per-server set points into
// their CapGPU controllers. Three policies are provided:
//
//   kEqual               — static equal shares (the naive strawman),
//   kDemandProportional  — spare budget follows each server's demand
//                          signal (e.g. GPU throughput deficit),
//   kPriorityAware       — higher-priority servers fill to their maximum
//                          first (cf. priority-aware capping at Google).
//
// The coordinator is transport-agnostic: servers register std::function
// endpoints, so the same code drives simulated rigs or a fleet RPC layer.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "rack/allocation.hpp"
#include "telemetry/metrics.hpp"

namespace capgpu::rack {

/// Allocation policy.
enum class RackPolicy { kEqual, kDemandProportional, kPriorityAware };

/// Registration record of one server.
struct ServerEndpoint {
  std::string name;
  /// Pushes a new power budget into the server's capping controller.
  std::function<void(Watts)> set_budget;
  /// Last measured server power (for rack telemetry).
  std::function<double()> measured_power;
  /// Demand signal in [0, 1]; larger = wants more budget. Used by
  /// kDemandProportional (a good choice: mean GPU throughput deficit).
  std::function<double()> demand;
  /// Priority for kPriorityAware (larger = more important).
  double priority{1.0};
  /// Per-server budget bounds (min protects against starvation; max is
  /// the server's feasible ceiling).
  AllocationBounds bounds{600.0, 1300.0};
};

/// The rack budget divider.
class RackCoordinator {
 public:
  /// `demand_smoothing` is the EMA factor applied to each server's demand
  /// signal across rebalances (1 = use raw samples). Budgets feed back
  /// into demand — a server granted more budget clocks up and its
  /// headroom-based demand falls — so an unsmoothed loop can bang-bang
  /// between allocations.
  RackCoordinator(Watts rack_budget, RackPolicy policy,
                  double demand_smoothing = 0.3);

  void add_server(ServerEndpoint endpoint);
  [[nodiscard]] std::size_t server_count() const { return servers_.size(); }

  void set_rack_budget(Watts budget);
  [[nodiscard]] Watts rack_budget() const { return rack_budget_; }
  void set_policy(RackPolicy policy) { policy_ = policy; }
  [[nodiscard]] RackPolicy policy() const { return policy_; }

  /// Recomputes per-server budgets from the current demand signals and
  /// pushes them to every server. Returns the budgets, in registration
  /// order.
  std::vector<double> rebalance();

  /// Budgets from the latest rebalance (empty before the first call).
  [[nodiscard]] const std::vector<double>& budgets() const { return budgets_; }

  /// Sum of the servers' measured power right now.
  [[nodiscard]] double total_power() const;

  /// True when the guaranteed minima alone exceed the rack budget — the
  /// rack is oversubscribed beyond what capping can absorb and load must
  /// be shed (paper Sec 4.4's infeasibility caveat, at rack scope).
  [[nodiscard]] bool oversubscribed() const;

  /// Smoothed demand values from the latest rebalance (diagnostics).
  [[nodiscard]] const std::vector<double>& smoothed_demand() const {
    return smoothed_demand_;
  }

 private:
  Watts rack_budget_;
  RackPolicy policy_;
  double demand_smoothing_;
  std::vector<ServerEndpoint> servers_;
  std::vector<double> budgets_;
  std::vector<double> smoothed_demand_;

  // Observability: rebalance counter plus per-server budget/demand gauges
  // {server=<name>}; each rebalance is an instant trace event.
  telemetry::Counter* rebalances_metric_{nullptr};
  std::vector<telemetry::Gauge*> budget_metrics_;
  std::vector<telemetry::Gauge*> demand_metrics_;
  int trace_tid_{0};
};

}  // namespace capgpu::rack
