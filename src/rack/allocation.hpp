// Budget allocation primitives for rack-level power management.
//
// Rack coordinators repeatedly solve the same small problem: divide a total
// budget among servers proportionally to weights, subject to per-server
// minimum and maximum budgets. The clamped-proportional allocation here is
// the water-filling solution: clamp violators to their bounds and
// redistribute the remainder among the rest until a fixed point.
#pragma once

#include <vector>

namespace capgpu::rack {

/// One server's allocation constraints.
struct AllocationBounds {
  double min{0.0};
  double max{0.0};
};

/// Splits `total` across entries proportionally to `weights`, respecting
/// per-entry [min, max] bounds.
///
/// Behaviour at the edges:
///  - sum(min) > total: every entry gets its min (the rack is
///    oversubscribed past the guarantees; the caller must shed load),
///  - sum(max) < total: every entry gets its max (spare budget unusable),
///  - zero/negative total weight: remaining budget splits equally.
/// Weights must be >= 0; bounds must satisfy 0 <= min <= max.
[[nodiscard]] std::vector<double> proportional_allocation(
    double total, const std::vector<AllocationBounds>& bounds,
    const std::vector<double>& weights);

}  // namespace capgpu::rack
