#include "rack/allocation.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"

namespace capgpu::rack {

std::vector<double> proportional_allocation(
    double total, const std::vector<AllocationBounds>& bounds,
    const std::vector<double>& weights) {
  const std::size_t n = bounds.size();
  CAPGPU_REQUIRE(n > 0, "allocation needs at least one entry");
  CAPGPU_REQUIRE(weights.size() == n, "weights size mismatch");
  CAPGPU_REQUIRE(total >= 0.0, "total budget must be >= 0");
  double min_sum = 0.0;
  double max_sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    CAPGPU_REQUIRE(bounds[i].min >= 0.0 && bounds[i].max >= bounds[i].min,
                   "invalid allocation bounds");
    CAPGPU_REQUIRE(weights[i] >= 0.0, "weights must be >= 0");
    min_sum += bounds[i].min;
    max_sum += bounds[i].max;
  }

  std::vector<double> out(n);
  if (min_sum >= total) {
    for (std::size_t i = 0; i < n; ++i) out[i] = bounds[i].min;
    return out;
  }
  if (max_sum <= total) {
    for (std::size_t i = 0; i < n; ++i) out[i] = bounds[i].max;
    return out;
  }

  // Water-filling: everyone starts at min; distribute the spare
  // proportionally among entries not yet at max, clamping and
  // redistributing until the spare is exhausted (at most n rounds: each
  // round permanently saturates at least one entry).
  for (std::size_t i = 0; i < n; ++i) out[i] = bounds[i].min;
  double spare = total - min_sum;
  std::vector<bool> saturated(n, false);
  for (std::size_t round = 0; round < n && spare > 1e-9; ++round) {
    double weight_sum = 0.0;
    std::size_t open = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (!saturated[i]) {
        weight_sum += weights[i];
        ++open;
      }
    }
    if (open == 0) break;
    bool clamped_any = false;
    double returned = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (saturated[i]) continue;
      const double share = weight_sum > 1e-12
                               ? weights[i] / weight_sum
                               : 1.0 / static_cast<double>(open);
      const double grant = spare * share;
      const double headroom = bounds[i].max - out[i];
      if (grant >= headroom) {
        out[i] = bounds[i].max;
        returned += grant - headroom;
        saturated[i] = true;
        clamped_any = true;
      } else {
        out[i] += grant;
      }
    }
    spare = returned;
    if (!clamped_any) break;  // everything granted in full
  }
  return out;
}

}  // namespace capgpu::rack
