#include "rack/coordinator.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/log.hpp"
#include "telemetry/metric_names.hpp"
#include "telemetry/trace.hpp"

namespace capgpu::rack {

const char* rig_health_name(RigHealth health) {
  switch (health) {
    case RigHealth::kHealthy: return "healthy";
    case RigHealth::kDegraded: return "degraded";
    case RigHealth::kFailsafe: return "failsafe";
    case RigHealth::kDead: return "dead";
  }
  return "unknown";
}

RigHealthConfig validated(RigHealthConfig config) {
  CAPGPU_REQUIRE(config.stale_report_s > 0.0,
                 "stale_report_s must be positive");
  CAPGPU_REQUIRE(config.dead_after_s >= config.stale_report_s,
                 "dead_after_s must be >= stale_report_s");
  CAPGPU_REQUIRE(config.residual_anomaly_watts > 0.0,
                 "residual_anomaly_watts must be positive");
  CAPGPU_REQUIRE(config.reintegrate_rebalances >= 1,
                 "reintegrate_rebalances must be >= 1 (hysteresis)");
  return config;
}

RackCoordinator::RackCoordinator(Watts rack_budget, RackPolicy policy,
                                 double demand_smoothing)
    : rack_budget_(rack_budget),
      policy_(policy),
      demand_smoothing_(demand_smoothing) {
  CAPGPU_REQUIRE(rack_budget.value > 0.0, "rack budget must be positive");
  CAPGPU_REQUIRE(demand_smoothing > 0.0 && demand_smoothing <= 1.0,
                 "demand_smoothing must be in (0, 1]");
  rebalances_metric_ = &telemetry::MetricsRegistry::current().counter(
      telemetry::metric::kRackRebalances,
      "Rack budget rebalances pushed to the servers");
  trace_tid_ = telemetry::Tracer::current().register_track("rack");
}

void RackCoordinator::add_server(ServerEndpoint endpoint) {
  CAPGPU_REQUIRE(static_cast<bool>(endpoint.set_budget),
                 "server needs a set_budget endpoint");
  CAPGPU_REQUIRE(static_cast<bool>(endpoint.measured_power),
                 "server needs a measured_power endpoint");
  CAPGPU_REQUIRE(endpoint.priority > 0.0, "priority must be positive");
  CAPGPU_REQUIRE(!endpoint.name.empty(), "server needs a non-empty name");
  for (const auto& s : servers_) {
    CAPGPU_REQUIRE(s.name != endpoint.name,
                   "duplicate server name: \"" + endpoint.name + "\"");
  }
  // Validate the budget bounds here rather than letting the first
  // rebalance's proportional_allocation reject them: a misconfigured rig
  // should fail at registration, not minutes into a campaign.
  CAPGPU_REQUIRE(
      endpoint.bounds.min > 0.0 && endpoint.bounds.max >= endpoint.bounds.min,
      "server budget bounds must satisfy 0 < min <= max (server \"" +
          endpoint.name + "\")");
  auto& registry = telemetry::MetricsRegistry::current();
  const telemetry::Labels by_server{{"server", endpoint.name}};
  budget_metrics_.push_back(
      &registry.gauge(telemetry::metric::kRackServerBudgetWatts,
                      "Power budget allocated to the server", by_server));
  demand_metrics_.push_back(
      &registry.gauge(telemetry::metric::kRackServerDemand,
                      "Smoothed demand signal in [0,1]", by_server));
  RigHealthState hs;
  if (health_config_.enabled) {
    hs.gauge = &registry.gauge(
        telemetry::metric::kRackRigHealth,
        "Coordinator-side rig health: 0 healthy, 1 degraded, 2 failsafe, "
        "3 dead",
        by_server);
  }
  rig_health_.push_back(hs);
  servers_.push_back(std::move(endpoint));
}

void RackCoordinator::set_server_bounds(std::size_t i,
                                        AllocationBounds bounds) {
  CAPGPU_REQUIRE(i < servers_.size(), "server index out of range");
  CAPGPU_REQUIRE(bounds.min > 0.0 && bounds.max >= bounds.min,
                 "server budget bounds must satisfy 0 < min <= max (server \"" +
                     servers_[i].name + "\")");
  servers_[i].bounds = bounds;
}

const AllocationBounds& RackCoordinator::server_bounds(std::size_t i) const {
  CAPGPU_REQUIRE(i < servers_.size(), "server index out of range");
  return servers_[i].bounds;
}

void RackCoordinator::set_health_config(RigHealthConfig config) {
  health_config_ = validated(config);
  if (!health_config_.enabled) return;
  auto& registry = telemetry::MetricsRegistry::current();
  if (quarantined_metric_ == nullptr) {
    quarantined_metric_ = &registry.gauge(
        telemetry::metric::kRackQuarantinedBudgetWatts,
        "Budget pinned to quarantined (failsafe/dead) rigs at their minimum");
  }
  for (std::size_t i = 0; i < servers_.size(); ++i) {
    if (rig_health_[i].gauge == nullptr) {
      rig_health_[i].gauge = &registry.gauge(
          telemetry::metric::kRackRigHealth,
          "Coordinator-side rig health: 0 healthy, 1 degraded, 2 failsafe, "
          "3 dead",
          {{"server", servers_[i].name}});
    }
  }
}

RigHealth RackCoordinator::health(std::size_t i) const {
  CAPGPU_REQUIRE(i < rig_health_.size(), "server index out of range");
  return rig_health_[i].state;
}

void RackCoordinator::transition(std::size_t i, double now, RigHealth to,
                                 const char* cause) {
  RigHealthState& hs = rig_health_[i];
  const RigHealth from = hs.state;
  hs.state = to;
  health_log_.push_back({servers_[i].name, now, from, to, cause});
  telemetry::MetricsRegistry::current()
      .counter(telemetry::metric::kRackHealthTransitions,
               "Coordinator rig health-state transitions",
               {{"server", servers_[i].name},
                {"to", rig_health_name(to)},
                {"cause", cause}})
      .inc();
  if (hs.gauge != nullptr) {
    hs.gauge->set(static_cast<double>(static_cast<int>(to)));
  }
  auto& tracer = telemetry::Tracer::current();
  if (tracer.enabled()) {
    tracer.instant(trace_tid_, "rig_health_transition", "rack",
                   {{servers_[i].name,
                     static_cast<double>(static_cast<int>(to))},
                    {"from", static_cast<double>(static_cast<int>(from))}});
  }
  CAPGPU_LOG_WARN << "rack health: " << servers_[i].name << " "
                  << rig_health_name(from) << " -> " << rig_health_name(to)
                  << " (" << cause << ")";
}

void RackCoordinator::update_health(double now) {
  for (std::size_t i = 0; i < servers_.size(); ++i) {
    const ServerEndpoint& s = servers_[i];
    RigHealthState& hs = rig_health_[i];
    const double age = s.report_age ? s.report_age() : 0.0;
    const int fs = s.failsafe_state ? s.failsafe_state() : -1;
    const double residual = s.power_residual ? s.power_residual() : 0.0;

    // Worst matching condition wins; demotion is immediate.
    RigHealth target = RigHealth::kHealthy;
    const char* cause = nullptr;
    if (age > health_config_.dead_after_s) {
      target = RigHealth::kDead;
      cause = "dead_watchdog";
    } else if (fs == 1) {
      target = RigHealth::kFailsafe;
      cause = "failsafe_reported";
    } else if (age > health_config_.stale_report_s) {
      target = RigHealth::kDegraded;
      cause = "stale_report";
    } else if (residual > health_config_.residual_anomaly_watts) {
      target = RigHealth::kDegraded;
      cause = "residual_anomaly";
    } else if (fs == 2) {
      target = RigHealth::kDegraded;
      cause = "failsafe_recovering";
    }

    if (static_cast<int>(target) > static_cast<int>(hs.state)) {
      transition(i, now, target, cause);
      hs.clean_streak = 0;
    } else if (target == RigHealth::kHealthy) {
      // Promotion is hysteretic: only after reintegrate_rebalances
      // consecutive clean sweeps, and straight back to healthy — a rig
      // flapping between clean and faulty keeps resetting the streak and
      // stays quarantined.
      if (hs.state != RigHealth::kHealthy &&
          ++hs.clean_streak >= health_config_.reintegrate_rebalances) {
        transition(i, now, RigHealth::kHealthy, "reintegrated");
        hs.clean_streak = 0;
      }
    } else {
      // Improved but not clean: hold the current state, restart the count.
      hs.clean_streak = 0;
    }
  }
}

void RackCoordinator::set_rack_budget(Watts budget) {
  CAPGPU_REQUIRE(budget.value > 0.0, "rack budget must be positive");
  rack_budget_ = budget;
}

std::vector<double> RackCoordinator::rebalance() {
  // No sim clock supplied: count rebalances, so the health watchdogs (if
  // enabled) read "rebalances since" rather than seconds.
  auto_clock_ += 1.0;
  return rebalance(auto_clock_);
}

std::vector<double> RackCoordinator::rebalance(double now) {
  CAPGPU_REQUIRE(!servers_.empty(), "no servers registered");
  const std::size_t n = servers_.size();
  if (health_config_.enabled) update_health(now);

  std::vector<AllocationBounds> bounds;
  bounds.reserve(n);
  for (const auto& s : servers_) bounds.push_back(s.bounds);

  std::vector<double> weights(n, 1.0);
  switch (policy_) {
    case RackPolicy::kEqual:
      break;  // uniform weights
    case RackPolicy::kDemandProportional:
      smoothed_demand_.resize(n, -1.0);
      for (std::size_t i = 0; i < n; ++i) {
        const double raw = std::clamp(
            servers_[i].demand ? servers_[i].demand() : 0.0, 0.0, 1.0);
        smoothed_demand_[i] =
            smoothed_demand_[i] < 0.0
                ? raw
                : demand_smoothing_ * raw +
                      (1.0 - demand_smoothing_) * smoothed_demand_[i];
        weights[i] = smoothed_demand_[i];
      }
      break;
    case RackPolicy::kPriorityAware:
      // Steeply super-linear in priority so higher tiers fill to their max
      // before lower tiers receive spare budget (approximates strict
      // priority water-filling while staying a single allocation pass).
      for (std::size_t i = 0; i < n; ++i) {
        const double p = servers_[i].priority;
        weights[i] = p * p * p * p;
      }
      break;
  }

  if (health_config_.enabled) {
    for (std::size_t i = 0; i < n; ++i) {
      if (rig_health_[i].state == RigHealth::kFailsafe ||
          rig_health_[i].state == RigHealth::kDead) {
        // Quarantine: pin to the guaranteed minimum. A dead or fail-safe
        // rig is stepping toward minimum clocks anyway — budget above min
        // would be stranded while healthy rigs throttle.
        bounds[i] = {servers_[i].bounds.min, servers_[i].bounds.min};
        weights[i] = 0.0;
      } else if (servers_[i].slo_burn) {
        // Freed budget flows preferentially toward rigs whose SLOs are
        // burning: boost their share of the spare proportionally to the
        // (clamped) burn signal.
        const double burn = std::clamp(servers_[i].slo_burn(), 0.0, 10.0);
        weights[i] *= 1.0 + burn;
      }
    }
  }

  budgets_ = proportional_allocation(rack_budget_.value, bounds, weights);
  if (health_config_.enabled) {
    quarantined_budget_w_ = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (rig_health_[i].state == RigHealth::kFailsafe ||
          rig_health_[i].state == RigHealth::kDead) {
        quarantined_budget_w_ += budgets_[i];
      }
    }
    if (quarantined_metric_ != nullptr) {
      quarantined_metric_->set(quarantined_budget_w_);
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    servers_[i].set_budget(Watts{budgets_[i]});
    budget_metrics_[i]->set(budgets_[i]);
    demand_metrics_[i]->set(i < smoothed_demand_.size() ? smoothed_demand_[i]
                                                        : 0.0);
  }
  rebalances_metric_->inc();
  auto& tracer = telemetry::Tracer::current();
  if (tracer.enabled()) {
    std::vector<telemetry::TraceArg> args;
    args.emplace_back("rack_budget_w", rack_budget_.value);
    for (std::size_t i = 0; i < n; ++i) {
      args.emplace_back(servers_[i].name, budgets_[i]);
    }
    tracer.instant(trace_tid_, "rack_rebalance", "rack", std::move(args));
  }
  return budgets_;
}

double RackCoordinator::total_power() const {
  double total = 0.0;
  for (const auto& s : servers_) total += s.measured_power();
  return total;
}

bool RackCoordinator::oversubscribed() const {
  double min_sum = 0.0;
  for (const auto& s : servers_) min_sum += s.bounds.min;
  return min_sum > rack_budget_.value;
}

}  // namespace capgpu::rack
