#include "rack/coordinator.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "telemetry/metric_names.hpp"
#include "telemetry/trace.hpp"

namespace capgpu::rack {

RackCoordinator::RackCoordinator(Watts rack_budget, RackPolicy policy,
                                 double demand_smoothing)
    : rack_budget_(rack_budget),
      policy_(policy),
      demand_smoothing_(demand_smoothing) {
  CAPGPU_REQUIRE(rack_budget.value > 0.0, "rack budget must be positive");
  CAPGPU_REQUIRE(demand_smoothing > 0.0 && demand_smoothing <= 1.0,
                 "demand_smoothing must be in (0, 1]");
  rebalances_metric_ = &telemetry::MetricsRegistry::current().counter(
      telemetry::metric::kRackRebalances,
      "Rack budget rebalances pushed to the servers");
  trace_tid_ = telemetry::Tracer::current().register_track("rack");
}

void RackCoordinator::add_server(ServerEndpoint endpoint) {
  CAPGPU_REQUIRE(static_cast<bool>(endpoint.set_budget),
                 "server needs a set_budget endpoint");
  CAPGPU_REQUIRE(static_cast<bool>(endpoint.measured_power),
                 "server needs a measured_power endpoint");
  CAPGPU_REQUIRE(endpoint.priority > 0.0, "priority must be positive");
  auto& registry = telemetry::MetricsRegistry::current();
  const telemetry::Labels by_server{{"server", endpoint.name}};
  budget_metrics_.push_back(
      &registry.gauge(telemetry::metric::kRackServerBudgetWatts,
                      "Power budget allocated to the server", by_server));
  demand_metrics_.push_back(
      &registry.gauge(telemetry::metric::kRackServerDemand,
                      "Smoothed demand signal in [0,1]", by_server));
  servers_.push_back(std::move(endpoint));
}

void RackCoordinator::set_rack_budget(Watts budget) {
  CAPGPU_REQUIRE(budget.value > 0.0, "rack budget must be positive");
  rack_budget_ = budget;
}

std::vector<double> RackCoordinator::rebalance() {
  CAPGPU_REQUIRE(!servers_.empty(), "no servers registered");
  const std::size_t n = servers_.size();

  std::vector<AllocationBounds> bounds;
  bounds.reserve(n);
  for (const auto& s : servers_) bounds.push_back(s.bounds);

  std::vector<double> weights(n, 1.0);
  switch (policy_) {
    case RackPolicy::kEqual:
      break;  // uniform weights
    case RackPolicy::kDemandProportional:
      smoothed_demand_.resize(n, -1.0);
      for (std::size_t i = 0; i < n; ++i) {
        const double raw = std::clamp(
            servers_[i].demand ? servers_[i].demand() : 0.0, 0.0, 1.0);
        smoothed_demand_[i] =
            smoothed_demand_[i] < 0.0
                ? raw
                : demand_smoothing_ * raw +
                      (1.0 - demand_smoothing_) * smoothed_demand_[i];
        weights[i] = smoothed_demand_[i];
      }
      break;
    case RackPolicy::kPriorityAware:
      // Steeply super-linear in priority so higher tiers fill to their max
      // before lower tiers receive spare budget (approximates strict
      // priority water-filling while staying a single allocation pass).
      for (std::size_t i = 0; i < n; ++i) {
        const double p = servers_[i].priority;
        weights[i] = p * p * p * p;
      }
      break;
  }

  budgets_ = proportional_allocation(rack_budget_.value, bounds, weights);
  for (std::size_t i = 0; i < n; ++i) {
    servers_[i].set_budget(Watts{budgets_[i]});
    budget_metrics_[i]->set(budgets_[i]);
    demand_metrics_[i]->set(i < smoothed_demand_.size() ? smoothed_demand_[i]
                                                        : 0.0);
  }
  rebalances_metric_->inc();
  auto& tracer = telemetry::Tracer::current();
  if (tracer.enabled()) {
    std::vector<telemetry::TraceArg> args;
    args.emplace_back("rack_budget_w", rack_budget_.value);
    for (std::size_t i = 0; i < n; ++i) {
      args.emplace_back(servers_[i].name, budgets_[i]);
    }
    tracer.instant(trace_tid_, "rack_rebalance", "rack", std::move(args));
  }
  return budgets_;
}

double RackCoordinator::total_power() const {
  double total = 0.0;
  for (const auto& s : servers_) total += s.measured_power();
  return total;
}

bool RackCoordinator::oversubscribed() const {
  double min_sum = 0.0;
  for (const auto& s : servers_) min_sum += s.bounds.min;
  return min_sum > rack_budget_.value;
}

}  // namespace capgpu::rack
